// 1D spectrum analysis — exercises the real-to-complex transform and the
// double-buffered large-1D engine on a signal-processing workload.
//
// A long real signal (three tones + deterministic noise) is analysed two
// ways: RealFft1d on the raw samples (half-spectrum peak picking), and
// DoubleBuffer1d on the complexified signal (the engine for transforms
// larger than the cache buffer). Both must find the same tones.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <random>

#include "common/aligned.h"
#include "common/timer.h"
#include "fft/double_buffer_1d.h"
#include "fft1d/real.h"

using namespace bwfft;

int main() {
  const idx_t n = 1 << 20;
  const idx_t tones[3] = {4321, 65537, 262144 + 17};
  const double amps[3] = {1.0, 0.6, 0.3};

  dvec signal(static_cast<std::size_t>(n));
  std::mt19937_64 gen(42);
  std::uniform_real_distribution<double> noise(-0.05, 0.05);
  for (idx_t j = 0; j < n; ++j) {
    double v = noise(gen);
    for (int t = 0; t < 3; ++t) {
      v += amps[t] * std::cos(2.0 * std::numbers::pi_v<double> *
                              static_cast<double>(tones[t] * j) / n);
    }
    signal[static_cast<std::size_t>(j)] = v;
  }

  // Path 1: real-to-complex transform (half spectrum).
  RealFft1d rplan(n);
  cvec half(static_cast<std::size_t>(rplan.spectrum_size()));
  Timer t1;
  rplan.forward(signal.data(), half.data());
  const double secs_real = t1.seconds();

  // Peak picking: the three largest non-DC bins.
  std::vector<std::pair<double, idx_t>> mags;
  for (idx_t k = 1; k < rplan.spectrum_size() - 1; ++k) {
    mags.push_back({std::abs(half[static_cast<std::size_t>(k)]), k});
  }
  std::partial_sort(mags.begin(), mags.begin() + 3, mags.end(),
                    [](auto& a, auto& b) { return a.first > b.first; });

  // Path 2: complex transform through the double-buffered 1D engine.
  cvec cx(static_cast<std::size_t>(n));
  for (idx_t j = 0; j < n; ++j) cx[static_cast<std::size_t>(j)] = cplx(signal[static_cast<std::size_t>(j)], 0.0);
  cvec spec(static_cast<std::size_t>(n));
  DoubleBuffer1d cplan(n, Direction::Forward, {});
  Timer t2;
  cplan.execute(cx.data(), spec.data());
  const double secs_cplx = t2.seconds();

  std::printf("Spectrum analysis of 2^20 real samples\n");
  std::printf("  real-to-complex transform: %.2f ms;  double-buffered "
              "complex: %.2f ms (a=%lld, b=%lld)\n",
              secs_real * 1e3, secs_cplx * 1e3,
              static_cast<long long>(cplan.factor_a()),
              static_cast<long long>(cplan.factor_b()));

  bool ok = true;
  std::printf("  detected tones (bin: amplitude, cross-check):\n");
  for (int t = 0; t < 3; ++t) {
    const idx_t bin = mags[static_cast<std::size_t>(t)].second;
    const double amp = 2.0 * mags[static_cast<std::size_t>(t)].first / n;
    const double amp2 = 2.0 * std::abs(spec[static_cast<std::size_t>(bin)]) / n;
    const bool hit =
        std::find(std::begin(tones), std::end(tones), bin) != std::end(tones);
    std::printf("    bin %7lld: %.3f (real path), %.3f (complex path) %s\n",
                static_cast<long long>(bin), amp, amp2,
                hit ? "[expected tone]" : "[UNEXPECTED]");
    ok = ok && hit && std::abs(amp - amp2) < 1e-9;
  }
  return ok ? 0 : 1;
}
