// SPL explorer — the formalism of §II-C as a runnable demo.
//
// Prints the paper's factorisations (Cooley–Tukey, the rotated 3D
// decomposition, the Table III dual-socket write matrices) and verifies
// each against the dense DFT numerically, mirroring how SPIRAL-derived
// implementations are validated.
#include <cstdio>

#include "common/rng.h"
#include "spl/algorithms.h"
#include "spl/lower.h"

using namespace bwfft;
using namespace bwfft::spl;

namespace {

void show(const char* title, const ExprPtr& got, const ExprPtr& want) {
  const double err = max_abs_diff(*got, *want);
  std::printf("%s\n  %s\n  max |got - dense| = %.2e  [%s]\n\n", title,
              got->str().c_str(), err, err < 1e-10 ? "OK" : "MISMATCH");
}

}  // namespace

int main() {
  std::printf("SPL factorisations from the paper, verified against dense "
              "semantics\n\n");

  show("Cooley-Tukey: DFT_8 = (DFT_2 (x) I_4) D (I_2 (x) DFT_4) L",
       cooley_tukey(2, 4), dft(8));

  show("2D pencil: DFT_{4x4}", dft2d_pencil(4, 4),
       kron(dft(4), dft(4)));

  show("2D blocked (mu=2): DFT_{4x8}", dft2d_blocked(4, 8, 2),
       kron(dft(4), dft(8)));

  show("3D rotated (mu=2): DFT_{2x4x4}", dft3d_rotated(2, 4, 4, 2),
       kron(dft(2), kron(dft(4), dft(4))));

  show("3D slab-pencil: DFT_{2x4x4}", dft3d_slab_pencil(2, 4, 4),
       kron(dft(2), kron(dft(4), dft(4))));

  show("Dual-socket (Table III, sk=2): DFT_{4x4x4}",
       dft3d_dual_socket(4, 4, 4, 2, 2),
       kron(dft(4), kron(dft(4), dft(4))));

  std::printf("Rotation operator K_4^{2,3} (cube 2x3x4 -> 4x2x3):\n  %s\n",
              rotation_k(2, 3, 4)->str().c_str());
  std::printf("Stage-1 write matrix W_{b=8,i=1} for 2x4x4, mu=2:\n  %s\n\n",
              write_matrix_stage1(2, 4, 4, 2, 8, 1)->str().c_str());

  // Lowering: from formula to executable plan (the SPIRAL role).
  auto term = dft3d_rotated(4, 4, 8, 4);
  Program prog = lower(*term);
  std::printf("Lowered plan for the rotated 3D decomposition of "
              "DFT_{4x4x8}:\n%s", prog.describe().c_str());
  auto x = random_cvec(term->cols());
  auto got = prog.run(x);
  auto want = (*term)(x);
  double err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    err = std::max(err, std::abs(got[i] - want[i]));
  }
  std::printf("plan vs formula: max err = %.2e  [%s]\n", err,
              err < 1e-10 ? "OK" : "MISMATCH");
  return 0;
}
