// Quickstart: plan and execute a 3D FFT with the double-buffered engine,
// verify it against the inverse transform, and print the throughput.
#include <cstdio>

#include "benchutil/metrics.h"
#include "common/rng.h"
#include "common/timer.h"
#include "fft/fft.h"

int main() {
  using namespace bwfft;
  const idx_t k = 64, n = 64, m = 64;
  const idx_t total = k * n * m;

  // Input: deterministic random complex cube.
  cvec signal = random_cvec(total);
  cvec spectrum(static_cast<std::size_t>(total));

  // Plan once; execute many times. The default engine is the paper's
  // double-buffered soft-DMA algorithm.
  FftOptions opts;
  Fft3d forward(k, n, m, Direction::Forward, opts);
  opts.normalize_inverse = true;
  Fft3d inverse(k, n, m, Direction::Inverse, opts);

  cvec work = signal;  // execute() may clobber its input
  Timer t;
  forward.execute(work.data(), spectrum.data());
  const double secs = t.seconds();

  // Round-trip check.
  cvec restored(static_cast<std::size_t>(total));
  inverse.execute(spectrum.data(), restored.data());
  double err = 0.0;
  for (idx_t i = 0; i < total; ++i) {
    err = std::max(err, std::abs(restored[static_cast<std::size_t>(i)] -
                                 signal[static_cast<std::size_t>(i)]));
  }

  std::printf("3D FFT %lldx%lldx%lld (%s engine)\n",
              static_cast<long long>(k), static_cast<long long>(n),
              static_cast<long long>(m), forward.engine_name());
  std::printf("  forward: %.3f ms, %.2f pseudo-Gflop/s\n", secs * 1e3,
              fft_gflops(static_cast<double>(total), secs));
  std::printf("  round-trip max error: %.3e\n", err);
  return err < 1e-10 ? 0 : 1;
}
