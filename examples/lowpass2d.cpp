// 2D spectral low-pass filter — image-processing style consumer of the
// 2D transform.
//
// Builds a synthetic "image" of a smooth gradient plus high-frequency
// checker noise, forward-transforms it with the double-buffered 2D FFT,
// zeroes every mode above a cutoff radius, inverse-transforms, and
// verifies (a) the round trip preserved the smooth component and (b) the
// checker energy is gone.
#include <cmath>
#include <cstdio>

#include "common/aligned.h"
#include "fft/fft.h"

using namespace bwfft;

namespace {

double freq_mag(idx_t i, idx_t n) {
  const double f = static_cast<double>(i <= n / 2 ? i : i - n);
  return f;
}

}  // namespace

int main() {
  const idx_t N = 512, M = 512;
  const idx_t total = N * M;

  // Smooth component: low-frequency sinusoid. Noise: Nyquist checker.
  cvec smooth(static_cast<std::size_t>(total)), image(static_cast<std::size_t>(total));
  for (idx_t y = 0; y < N; ++y) {
    for (idx_t x = 0; x < M; ++x) {
      const double s =
          std::sin(2.0 * 3.14159265358979 * (2.0 * static_cast<double>(x) / M)) +
          0.5 * std::cos(2.0 * 3.14159265358979 * (3.0 * static_cast<double>(y) / N));
      const double checker = ((x + y) % 2 == 0) ? 0.25 : -0.25;
      const std::size_t at = static_cast<std::size_t>(y * M + x);
      smooth[at] = cplx(s, 0);
      image[at] = cplx(s + checker, 0);
    }
  }

  FftOptions opts;
  Fft2d fwd(N, M, Direction::Forward, opts);
  opts.normalize_inverse = true;
  Fft2d inv(N, M, Direction::Inverse, opts);

  cvec spec(static_cast<std::size_t>(total));
  cvec work = image;
  fwd.execute(work.data(), spec.data());

  // Ideal low-pass: keep |k| <= 8.
  const double cutoff = 8.0;
  idx_t kept = 0;
  for (idx_t y = 0; y < N; ++y) {
    for (idx_t x = 0; x < M; ++x) {
      const double fy = freq_mag(y, N), fx = freq_mag(x, M);
      if (std::hypot(fx, fy) > cutoff) {
        spec[static_cast<std::size_t>(y * M + x)] = cplx(0, 0);
      } else {
        ++kept;
      }
    }
  }

  cvec filtered(static_cast<std::size_t>(total));
  inv.execute(spec.data(), filtered.data());

  double err_vs_smooth = 0.0;
  for (idx_t i = 0; i < total; ++i) {
    err_vs_smooth = std::max(err_vs_smooth,
                             std::abs(filtered[static_cast<std::size_t>(i)] -
                                      smooth[static_cast<std::size_t>(i)]));
  }

  std::printf("2D low-pass filter on %lldx%lld (%s engine)\n",
              static_cast<long long>(N), static_cast<long long>(M),
              fwd.engine_name());
  std::printf("  modes kept: %lld of %lld\n", static_cast<long long>(kept),
              static_cast<long long>(total));
  std::printf("  max |filtered - smooth component| = %.3e\n", err_vs_smooth);
  // The checker sits exactly at Nyquist, far above the cutoff, so the
  // filtered image must equal the smooth component to FFT accuracy.
  return err_vs_smooth < 1e-10 ? 0 : 1;
}
