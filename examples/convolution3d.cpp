// FFT-based 3D circular convolution — the convolution theorem exercised
// end to end on the public API, validated against direct summation.
//
// Convolves a random field with a compact kernel: out = IFFT(FFT(a) .*
// FFT(b)) / N, then checks a handful of output points against the O(N^2)
// direct circular convolution.
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "common/timer.h"
#include "fft/fft.h"

using namespace bwfft;

int main() {
  const idx_t N = 32;
  const idx_t total = N * N * N;

  cvec a = random_cvec(total, 1);
  // Compact Gaussian-ish kernel around the origin (periodic).
  cvec b(static_cast<std::size_t>(total), cplx(0, 0));
  for (idx_t z = 0; z < 3; ++z) {
    for (idx_t y = 0; y < 3; ++y) {
      for (idx_t x = 0; x < 3; ++x) {
        const double w = std::exp(-0.5 * static_cast<double>(x * x + y * y + z * z));
        b[static_cast<std::size_t>(z * N * N + y * N + x)] = cplx(w, 0);
      }
    }
  }

  FftOptions opts;
  Fft3d fwd(N, N, N, Direction::Forward, opts);
  opts.normalize_inverse = true;
  Fft3d inv(N, N, N, Direction::Inverse, opts);

  Timer t;
  cvec fa(static_cast<std::size_t>(total)), fb(static_cast<std::size_t>(total));
  cvec wa = a, wb = b;
  fwd.execute(wa.data(), fa.data());
  fwd.execute(wb.data(), fb.data());
  for (idx_t i = 0; i < total; ++i) {
    fa[static_cast<std::size_t>(i)] *= fb[static_cast<std::size_t>(i)];
  }
  cvec conv(static_cast<std::size_t>(total));
  inv.execute(fa.data(), conv.data());
  const double secs = t.seconds();

  // Spot-check against direct circular convolution: out[p] = sum_q a[q] b[p-q].
  // The kernel support is 3^3, so the direct sum per point is cheap.
  double err = 0.0;
  for (idx_t probe : {idx_t{0}, idx_t{123}, idx_t{total / 2}, total - 1}) {
    const idx_t pz = probe / (N * N), py = (probe / N) % N, px = probe % N;
    cplx direct(0, 0);
    for (idx_t z = 0; z < 3; ++z) {
      for (idx_t y = 0; y < 3; ++y) {
        for (idx_t x = 0; x < 3; ++x) {
          const idx_t qz = (pz - z + N) % N, qy = (py - y + N) % N,
                      qx = (px - x + N) % N;
          direct += a[static_cast<std::size_t>(qz * N * N + qy * N + qx)] *
                    b[static_cast<std::size_t>(z * N * N + y * N + x)];
        }
      }
    }
    err = std::max(err, std::abs(direct - conv[static_cast<std::size_t>(probe)]));
  }

  std::printf("3D circular convolution on %lld^3 via the convolution "
              "theorem (%s engine)\n",
              static_cast<long long>(N), fwd.engine_name());
  std::printf("  3 transforms + pointwise product: %.3f ms\n", secs * 1e3);
  std::printf("  max spot-check error vs direct convolution: %.3e\n", err);
  return err < 1e-9 ? 0 : 1;
}
