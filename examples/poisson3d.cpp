// Spectral Poisson solver — the classic consumer of large 3D FFTs (the
// workload class the paper's introduction motivates: fat-memory-node
// scientific codes).
//
// Solves  laplacian(u) = f  on the periodic unit cube: forward-transform
// f, divide each mode by the discrete Laplacian eigenvalue
// -( (2 pi kx)^2 + (2 pi ky)^2 + (2 pi kz)^2 ), inverse-transform. The
// example manufactures f from a known u (a sum of plane waves), solves,
// and reports the max error against the analytic solution.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "common/aligned.h"
#include "common/timer.h"
#include "fft/fft.h"

using namespace bwfft;

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi_v<double>;

/// Signed frequency for bin i of an n-point axis: 0..n/2, then negative.
double freq(idx_t i, idx_t n) {
  return static_cast<double>(i <= n / 2 ? i : i - n);
}

}  // namespace

int main() {
  const idx_t N = 64;
  const idx_t total = N * N * N;

  // Manufactured solution: u = sin(2 pi (x + 2y)) + cos(2 pi (3z - x)).
  // Then f = lap(u) = -(2 pi)^2 (5 sin(...) + 10 cos(...)).
  cvec u_exact(static_cast<std::size_t>(total));
  cvec f(static_cast<std::size_t>(total));
  for (idx_t z = 0; z < N; ++z) {
    for (idx_t y = 0; y < N; ++y) {
      for (idx_t x = 0; x < N; ++x) {
        const double xs = static_cast<double>(x) / N;
        const double ys = static_cast<double>(y) / N;
        const double zs = static_cast<double>(z) / N;
        const double s = std::sin(kTwoPi * (xs + 2 * ys));
        const double c = std::cos(kTwoPi * (3 * zs - xs));
        const std::size_t at = static_cast<std::size_t>(z * N * N + y * N + x);
        u_exact[at] = cplx(s + c, 0.0);
        f[at] = cplx(-kTwoPi * kTwoPi * (5.0 * s + 10.0 * c), 0.0);
      }
    }
  }

  FftOptions opts;  // default double-buffer engine
  Fft3d fwd(N, N, N, Direction::Forward, opts);
  Fft3d inv(N, N, N, Direction::Inverse, opts);

  Timer timer;
  cvec spec(static_cast<std::size_t>(total));
  fwd.execute(f.data(), spec.data());

  // Divide by the Laplacian symbol; the k=0 mode is the free constant —
  // pin it to zero mean, matching the zero-mean manufactured solution.
  for (idx_t z = 0; z < N; ++z) {
    for (idx_t y = 0; y < N; ++y) {
      for (idx_t x = 0; x < N; ++x) {
        const double kx = kTwoPi * freq(x, N);
        const double ky = kTwoPi * freq(y, N);
        const double kz = kTwoPi * freq(z, N);
        const double sym = -(kx * kx + ky * ky + kz * kz);
        const std::size_t at = static_cast<std::size_t>(z * N * N + y * N + x);
        spec[at] = (sym == 0.0) ? cplx(0, 0) : spec[at] / sym;
      }
    }
  }

  cvec u(static_cast<std::size_t>(total));
  inv.execute(spec.data(), u.data());
  const double scale = 1.0 / static_cast<double>(total);
  double err = 0.0;
  for (idx_t i = 0; i < total; ++i) {
    err = std::max(err, std::abs(u[static_cast<std::size_t>(i)] * scale -
                                 u_exact[static_cast<std::size_t>(i)]));
  }
  const double secs = timer.seconds();

  std::printf("Spectral Poisson solve on %lld^3 periodic grid (%s engine)\n",
              static_cast<long long>(N), fwd.engine_name());
  std::printf("  solve time (fwd + symbol + inv): %.3f ms\n", secs * 1e3);
  std::printf("  max |u - u_exact| = %.3e\n", err);
  return err < 1e-8 ? 0 : 1;
}
