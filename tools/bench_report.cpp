// bench_report — validate and pretty-print BENCH_*.json trajectory files.
//
//   bench_report FILE...
//   bench_report --trajectory FILE...
//
// Each file is parsed, checked against the bwfft-bench-v1 schema
// (benchutil/bench_schema) and summarised as a table; any malformed file
// makes the exit status non-zero, so check.sh can use this as the schema
// gate for the committed trajectory.
//
// --trajectory pivots the files the other way: one row per (engine,
// dims) configuration, one column per label (file order), cells showing
// pct-of-peak — the whole performance trajectory of the repo at a
// glance, and the quickest way to confirm a PR moved the rows it claims.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "benchutil/bench_schema.h"
#include "benchutil/json.h"

using namespace bwfft;

namespace {

bool load_report(const char* path, BenchReport* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) {
    std::fprintf(stderr, "bench_report: cannot open %s\n", path);
    return false;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);

  std::string err;
  const Json doc = Json::parse(text, &err);
  if (doc.is_null() && !err.empty()) {
    std::fprintf(stderr, "bench_report: %s: parse error: %s\n", path,
                 err.c_str());
    return false;
  }
  if (!validate_bench_report(doc, &err)) {
    std::fprintf(stderr, "bench_report: %s: invalid: %s\n", path,
                 err.c_str());
    return false;
  }
  *out = bench_report_from_json(doc);
  return true;
}

std::string row_key(const BenchRow& row) {
  std::string key = row.engine;
  key += " ";
  for (std::size_t i = 0; i < row.dims.size(); ++i) {
    key += (i ? "x" : "") + std::to_string(row.dims[i]);
  }
  return key;
}

/// --trajectory: aggregate every file into one config-by-label
/// pct-of-peak table. Configs missing from a label print "-".
bool report_trajectory(const std::vector<const char*>& paths) {
  std::vector<BenchReport> reports;
  for (const char* path : paths) {
    BenchReport rep;
    if (!load_report(path, &rep)) return false;
    reports.push_back(std::move(rep));
  }
  // Keep first-seen config order so the table reads like the bench grid.
  std::vector<std::string> configs;
  std::map<std::string, std::vector<double>> cells;  // key -> pct per label
  for (std::size_t r = 0; r < reports.size(); ++r) {
    for (const BenchRow& row : reports[r].rows) {
      const std::string key = row_key(row);
      auto it = cells.find(key);
      if (it == cells.end()) {
        configs.push_back(key);
        it = cells.emplace(key, std::vector<double>(reports.size(), -1.0))
                 .first;
      }
      it->second[r] = row.pct_of_peak;
    }
  }
  std::printf("%-28s", "config");
  for (const BenchReport& rep : reports) {
    std::printf(" %9s", rep.label.c_str());
  }
  std::printf("\n");
  for (const std::string& key : configs) {
    std::printf("%-28s", key.c_str());
    for (double pct : cells[key]) {
      if (pct < 0.0) {
        std::printf(" %9s", "-");
      } else {
        std::printf(" %8.1f%%", pct);
      }
    }
    std::printf("\n");
  }
  for (const BenchReport& rep : reports) {
    std::printf("stream: %s = %.1f GB/s\n", rep.label.c_str(),
                rep.stream_gbs);
  }
  return true;
}

bool report_file(const char* path) {
  BenchReport rep;
  if (!load_report(path, &rep)) return false;

  std::printf("%s: label=%s stream=%.1f GB/s, %zu rows\n", path,
              rep.label.c_str(), rep.stream_gbs, rep.rows.size());
  std::printf("  %-14s %-14s %10s %10s %7s  stages\n", "engine", "dims",
              "best ms", "GF/s", "%peak");
  for (const BenchRow& row : rep.rows) {
    std::string engine = row.engine;
    if (!row.resolved.empty()) engine += "->" + row.resolved;
    std::string dims;
    for (std::size_t i = 0; i < row.dims.size(); ++i) {
      dims += (i ? "x" : "") + std::to_string(row.dims[i]);
    }
    std::string stages;
    for (const BenchStage& s : row.stages) {
      if (!stages.empty()) stages += " | ";
      char sb[96];
      std::snprintf(sb, sizeof(sb), "%s %.0f%%", s.name.c_str(),
                    s.pct_of_peak);
      stages += sb;
    }
    std::printf("  %-14s %-14s %10.3f %10.2f %6.1f%%  %s\n",
                engine.c_str(), dims.c_str(), row.best_seconds * 1e3,
                row.pseudo_gflops, row.pct_of_peak, stages.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s [--trajectory] FILE...\n", argv[0]);
    return 2;
  }
  if (std::string(argv[1]) == "--trajectory") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s --trajectory FILE...\n", argv[0]);
      return 2;
    }
    std::vector<const char*> paths(argv + 2, argv + argc);
    return report_trajectory(paths) ? 0 : 1;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    if (!report_file(argv[i])) all_ok = false;
  }
  return all_ok ? 0 : 1;
}
