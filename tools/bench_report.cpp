// bench_report — validate and pretty-print BENCH_*.json trajectory files.
//
//   bench_report FILE...
//   bench_report --trajectory FILE...
//   bench_report --check BASELINE CURRENT [--tolerance PCT]
//
// Each file is parsed, checked against the bwfft-bench-v1 schema
// (benchutil/bench_schema) and summarised as a table; any malformed file
// makes the exit status non-zero, so check.sh can use this as the schema
// gate for the committed trajectory.
//
// --trajectory pivots the files the other way: one row per (engine,
// dims) configuration, one column per label, cells showing pct-of-peak —
// the whole performance trajectory of the repo at a glance, and the
// quickest way to confirm a PR moved the rows it claims. Files named
// BENCH_PR<k>.json are ordered by the numeric <k> (PR10 after PR9, not
// after PR1); other files keep their command-line position at the end.
//
// --check is the CI perf gate: every (engine, dims) row of BASELINE must
// hold its pct-of-peak within the tolerance (default 25%, a relative
// drop) in CURRENT, rows under the 2% noise floor excepted. Any
// regression or vanished configuration exits non-zero with one line per
// offender, so the quality job can fail a PR that slows an engine down.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "benchutil/bench_schema.h"
#include "benchutil/json.h"

using namespace bwfft;

namespace {

bool load_report(const char* path, BenchReport* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) {
    std::fprintf(stderr, "bench_report: cannot open %s\n", path);
    return false;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);

  std::string err;
  const Json doc = Json::parse(text, &err);
  if (doc.is_null() && !err.empty()) {
    std::fprintf(stderr, "bench_report: %s: parse error: %s\n", path,
                 err.c_str());
    return false;
  }
  if (!validate_bench_report(doc, &err)) {
    std::fprintf(stderr, "bench_report: %s: invalid: %s\n", path,
                 err.c_str());
    return false;
  }
  *out = bench_report_from_json(doc);
  return true;
}

/// Numeric trajectory position of a path: the <k> of a BENCH_PR<k>.json
/// basename, or -1 for anything else. Lexicographic shell globs hand us
/// PR10 before PR2; the trajectory must read in PR order.
int pr_number(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::string prefix = "BENCH_PR";
  if (base.rfind(prefix, 0) != 0) return -1;
  std::size_t i = prefix.size(), digits = 0;
  long value = 0;
  while (i < base.size() &&
         std::isdigit(static_cast<unsigned char>(base[i]))) {
    value = value * 10 + (base[i] - '0');
    ++i;
    ++digits;
  }
  if (digits == 0 || base.substr(i) != ".json") return -1;
  return static_cast<int>(value);
}

/// --trajectory: aggregate every file into one config-by-label
/// pct-of-peak table, columns in PR-number order. Configs missing from a
/// label print "-".
bool report_trajectory(std::vector<const char*> paths) {
  const auto order = [](const char* p) {
    const int k = pr_number(p);
    return k < 0 ? std::numeric_limits<int>::max() : k;  // others last
  };
  std::stable_sort(
      paths.begin(), paths.end(),
      [&](const char* a, const char* b) { return order(a) < order(b); });
  std::vector<BenchReport> reports;
  for (const char* path : paths) {
    BenchReport rep;
    if (!load_report(path, &rep)) return false;
    reports.push_back(std::move(rep));
  }
  // Keep first-seen config order so the table reads like the bench grid.
  std::vector<std::string> configs;
  std::map<std::string, std::vector<double>> cells;  // key -> pct per label
  for (std::size_t r = 0; r < reports.size(); ++r) {
    for (const BenchRow& row : reports[r].rows) {
      const std::string key = bench_config_key(row);
      auto it = cells.find(key);
      if (it == cells.end()) {
        configs.push_back(key);
        it = cells.emplace(key, std::vector<double>(reports.size(), -1.0))
                 .first;
      }
      it->second[r] = row.pct_of_peak;
    }
  }
  std::printf("%-28s", "config");
  for (const BenchReport& rep : reports) {
    std::printf(" %9s", rep.label.c_str());
  }
  std::printf("\n");
  for (const std::string& key : configs) {
    std::printf("%-28s", key.c_str());
    for (double pct : cells[key]) {
      if (pct < 0.0) {
        std::printf(" %9s", "-");
      } else {
        std::printf(" %8.1f%%", pct);
      }
    }
    std::printf("\n");
  }
  for (const BenchReport& rep : reports) {
    std::printf("stream: %s = %.1f GB/s\n", rep.label.c_str(),
                rep.stream_gbs);
  }
  return true;
}

/// --check: the perf-regression gate. Exit truth table: true only when
/// every above-floor baseline config is present and within tolerance.
bool report_check(const char* baseline_path, const char* current_path,
                  double tolerance_pct) {
  BenchReport baseline, current;
  if (!load_report(baseline_path, &baseline) ||
      !load_report(current_path, &current)) {
    return false;
  }
  const BenchCheckResult result =
      check_bench_regression(baseline, current, tolerance_pct);
  std::printf(
      "bench_report: check %s (label %s) vs %s (label %s), "
      "tolerance %.0f%%\n",
      current_path, current.label.c_str(), baseline_path,
      baseline.label.c_str(), tolerance_pct);
  std::printf(
      "  %d configs compared, %d below the %.0f%% noise floor skipped\n",
      result.compared, result.skipped, kBenchCheckFloorPct);
  for (const BenchCheckIssue& issue : result.regressions) {
    if (issue.current_pct < 0.0) {
      std::printf("  REGRESSION %-28s baseline %5.1f%% -> missing\n",
                  issue.config.c_str(), issue.baseline_pct);
    } else {
      std::printf("  REGRESSION %-28s baseline %5.1f%% -> %5.1f%% of peak\n",
                  issue.config.c_str(), issue.baseline_pct,
                  issue.current_pct);
    }
  }
  if (!result.ok()) {
    std::printf("bench_report: %zu regression(s) beyond tolerance\n",
                result.regressions.size());
    return false;
  }
  std::printf("bench_report: no regressions\n");
  return true;
}

bool report_file(const char* path) {
  BenchReport rep;
  if (!load_report(path, &rep)) return false;

  std::printf("%s: label=%s stream=%.1f GB/s, %zu rows\n", path,
              rep.label.c_str(), rep.stream_gbs, rep.rows.size());
  std::printf("  %-14s %-14s %10s %10s %7s  stages\n", "engine", "dims",
              "best ms", "GF/s", "%peak");
  for (const BenchRow& row : rep.rows) {
    std::string engine = row.engine;
    if (!row.resolved.empty()) engine += "->" + row.resolved;
    std::string dims;
    for (std::size_t i = 0; i < row.dims.size(); ++i) {
      dims += (i ? "x" : "") + std::to_string(row.dims[i]);
    }
    std::string stages;
    for (const BenchStage& s : row.stages) {
      if (!stages.empty()) stages += " | ";
      char sb[96];
      std::snprintf(sb, sizeof(sb), "%s %.0f%%", s.name.c_str(),
                    s.pct_of_peak);
      stages += sb;
    }
    std::printf("  %-14s %-14s %10.3f %10.2f %6.1f%%  %s\n",
                engine.c_str(), dims.c_str(), row.best_seconds * 1e3,
                row.pseudo_gflops, row.pct_of_peak, stages.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s FILE... | --trajectory FILE... | "
                 "--check BASELINE CURRENT [--tolerance PCT]\n",
                 argv[0]);
    return 2;
  }
  if (std::string(argv[1]) == "--trajectory") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s --trajectory FILE...\n", argv[0]);
      return 2;
    }
    std::vector<const char*> paths(argv + 2, argv + argc);
    return report_trajectory(paths) ? 0 : 1;
  }
  if (std::string(argv[1]) == "--check") {
    double tolerance = 25.0;
    if (argc == 6 && std::string(argv[4]) == "--tolerance") {
      char* end = nullptr;
      tolerance = std::strtod(argv[5], &end);
      if (end == argv[5] || *end != '\0' || tolerance < 0.0) {
        std::fprintf(stderr, "bench_report: bad tolerance '%s'\n", argv[5]);
        return 2;
      }
    } else if (argc != 4) {
      std::fprintf(stderr,
                   "usage: %s --check BASELINE CURRENT [--tolerance PCT]\n",
                   argv[0]);
      return 2;
    }
    return report_check(argv[2], argv[3], tolerance) ? 0 : 1;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    if (!report_file(argv[i])) all_ok = false;
  }
  return all_ok ? 0 : 1;
}
