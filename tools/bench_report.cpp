// bench_report — validate and pretty-print BENCH_*.json trajectory files.
//
//   bench_report FILE...
//
// Each file is parsed, checked against the bwfft-bench-v1 schema
// (benchutil/bench_schema) and summarised as a table; any malformed file
// makes the exit status non-zero, so check.sh can use this as the schema
// gate for the committed trajectory.
#include <cstdio>
#include <string>
#include <vector>

#include "benchutil/bench_schema.h"
#include "benchutil/json.h"

using namespace bwfft;

namespace {

bool report_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) {
    std::fprintf(stderr, "bench_report: cannot open %s\n", path);
    return false;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);

  std::string err;
  const Json doc = Json::parse(text, &err);
  if (doc.is_null() && !err.empty()) {
    std::fprintf(stderr, "bench_report: %s: parse error: %s\n", path,
                 err.c_str());
    return false;
  }
  if (!validate_bench_report(doc, &err)) {
    std::fprintf(stderr, "bench_report: %s: invalid: %s\n", path,
                 err.c_str());
    return false;
  }
  const BenchReport rep = bench_report_from_json(doc);

  std::printf("%s: label=%s stream=%.1f GB/s, %zu rows\n", path,
              rep.label.c_str(), rep.stream_gbs, rep.rows.size());
  std::printf("  %-14s %-14s %10s %10s %7s  stages\n", "engine", "dims",
              "best ms", "GF/s", "%peak");
  for (const BenchRow& row : rep.rows) {
    std::string engine = row.engine;
    if (!row.resolved.empty()) engine += "->" + row.resolved;
    std::string dims;
    for (std::size_t i = 0; i < row.dims.size(); ++i) {
      dims += (i ? "x" : "") + std::to_string(row.dims[i]);
    }
    std::string stages;
    for (const BenchStage& s : row.stages) {
      if (!stages.empty()) stages += " | ";
      char sb[96];
      std::snprintf(sb, sizeof(sb), "%s %.0f%%", s.name.c_str(),
                    s.pct_of_peak);
      stages += sb;
    }
    std::printf("  %-14s %-14s %10.3f %10.2f %6.1f%%  %s\n",
                engine.c_str(), dims.c_str(), row.best_seconds * 1e3,
                row.pseudo_gflops, row.pct_of_peak, stages.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n", argv[0]);
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    if (!report_file(argv[i])) all_ok = false;
  }
  return all_ok ? 0 : 1;
}
