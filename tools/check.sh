#!/usr/bin/env bash
# tools/check.sh — build and run the tier-1 suite under sanitizers.
#
#   ./tools/check.sh            # ASan+UBSan, then TSan
#   ./tools/check.sh asan       # just ASan+UBSan
#   ./tools/check.sh tsan       # just TSan
#
# Each configuration gets its own build tree (build-asan/, build-tsan/) so
# the trees can be rebuilt incrementally; suppressions/ files are exported
# through the sanitizer runtime options. Any sanitizer report fails the
# corresponding ctest run (halt_on_error / abort_on_error), so a zero exit
# status here means the whole suite ran report-free under both runtimes.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
if [[ $# -eq 0 ]]; then
  CONFIGS=(asan tsan)
else
  CONFIGS=("$@")
fi

run_config() {
  local name="$1" sanitize="$2"
  local build="$ROOT/build-$name"
  echo "=== [$name] configure: -DBWFFT_SANITIZE=$sanitize ==="
  cmake -B "$build" -S "$ROOT" -DBWFFT_SANITIZE="$sanitize" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "=== [$name] build ==="
  cmake --build "$build" -j "$JOBS"
  echo "=== [$name] ctest -L sanitize ==="
  (
    cd "$build"
    export ASAN_OPTIONS="abort_on_error=1:detect_stack_use_after_return=1"
    export LSAN_OPTIONS="suppressions=$ROOT/suppressions/asan.supp"
    export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$ROOT/suppressions/ubsan.supp"
    export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=$ROOT/suppressions/tsan.supp"
    ctest -L sanitize --output-on-failure -j "$JOBS"
  )
  echo "=== [$name] clean ==="
}

for cfg in "${CONFIGS[@]}"; do
  case "$cfg" in
    asan) run_config asan "address;undefined" ;;
    tsan) run_config tsan "thread" ;;
    *) echo "unknown config '$cfg' (expected: asan, tsan)" >&2; exit 2 ;;
  esac
done

echo "all sanitizer configurations clean"
