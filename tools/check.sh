#!/usr/bin/env bash
# tools/check.sh — build and run the test suite in the checked configurations.
#
#   ./tools/check.sh            # ASan+UBSan, then TSan
#   ./tools/check.sh asan       # just ASan+UBSan
#   ./tools/check.sh tsan       # just TSan
#   ./tools/check.sh quick      # plain build: tier-1 suite + bench smoke
#   ./tools/check.sh --quick    # same as quick
#   ./tools/check.sh faults     # ASan+UBSan: fault tests, then the tier-1
#                               # suite once per BWFFT_FAULTS fault family
#   ./tools/check.sh lint       # static checks: bwfft_lint sweep over the
#                               # tuner grid + seeded-defect assertions
#   ./tools/check.sh chaos      # exec-service fault-family sweep (shed /
#                               # poison / corrupt / slow-batch) under
#                               # ASan+UBSan, then TSan; writes a chaos
#                               # report for the CI artifact
#   ./tools/check.sh ci         # the hosted-CI chain: quick, lint, asan, tsan
#
# Build trees live under BWFFT_BUILD_DIR (default: the repo root), one per
# configuration (build-asan/, build-tsan/, build-quick/) so each can be
# rebuilt incrementally; suppressions/ files are exported through the
# sanitizer runtime options. Any sanitizer report fails the corresponding
# ctest run (halt_on_error / abort_on_error), so a zero exit status here
# means the whole suite ran report-free under both runtimes.
#
# Exit codes are distinct per failing mode, so CI and driver scripts can
# tell which gate fell over without parsing logs:
#
#   0   everything requested passed
#   2   usage error (unknown mode)
#   10  asan failed        11  tsan failed
#   12  quick failed       13  faults failed
#   14  lint failed        15  chaos failed
#
# The quick configuration is the fast pre-push gate: an uninstrumented
# RelWithDebInfo build running `ctest -L tier1`, then a bench smoke —
# bench/run_all --smoke swept through tools/bench_report, which validates
# the emitted BENCH json against the bwfft-bench-v1 schema, then gated
# against bench/baselines/bench_smoke_baseline.json with
# `bench_report --check` (any engine losing over 60% of its baseline
# pct-of-peak fails the run) and pivoted with --trajectory across the
# committed BENCH_PR*.json history — and a tune smoke: bwfft_tune twice
# against a temp wisdom file, asserting the second run is wisdom-warmed
# ("wisdom: hit").
#
# The faults configuration reuses the ASan+UBSan tree: first the targeted
# `ctest -L fault` suite (spawn/stall injections live there — they need a
# harness that expects the failure), then the ENTIRE tier-1 suite once per
# always-recoverable fault family with BWFFT_FAULTS exported, proving that
# persistent alloc/pin/wisdom failures degrade every test in the tree to
# the fallback path without a single wrong result or leak.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_BASE="${BWFFT_BUILD_DIR:-$ROOT}"
JOBS="${JOBS:-$(nproc)}"

usage() {
  echo "usage: $0 [asan|tsan|quick|faults|lint|chaos|ci ...]" >&2
  exit 2
}

exit_code_for() {
  case "$1" in
    asan) echo 10 ;;
    tsan) echo 11 ;;
    quick|--quick) echo 12 ;;
    faults) echo 13 ;;
    lint) echo 14 ;;
    chaos) echo 15 ;;
    *) echo 2 ;;
  esac
}

run_config() {
  local name="$1" sanitize="$2"
  local build="$BUILD_BASE/build-$name"
  echo "=== [$name] configure: -DBWFFT_SANITIZE=$sanitize ==="
  cmake -B "$build" -S "$ROOT" -DBWFFT_SANITIZE="$sanitize" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "=== [$name] build ==="
  cmake --build "$build" -j "$JOBS"
  echo "=== [$name] ctest -L sanitize ==="
  (
    cd "$build"
    export ASAN_OPTIONS="abort_on_error=1:detect_stack_use_after_return=1"
    export LSAN_OPTIONS="suppressions=$ROOT/suppressions/asan.supp"
    export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$ROOT/suppressions/ubsan.supp"
    export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=$ROOT/suppressions/tsan.supp"
    ctest -L sanitize --output-on-failure -j "$JOBS"
  )
  echo "=== [$name] clean ==="
}

run_quick() {
  local build="$BUILD_BASE/build-quick"
  echo "=== [quick] configure ==="
  cmake -B "$build" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "=== [quick] build ==="
  cmake --build "$build" -j "$JOBS"
  echo "=== [quick] ctest -L tier1 ==="
  ctest --test-dir "$build" -L tier1 --output-on-failure -j "$JOBS"
  echo "=== [quick] bench smoke ==="
  local smoke="$build/bench_smoke.json"
  "$build/bench/run_all" --smoke --label smoke --out "$smoke"
  "$build/tools/bench_report" "$smoke"
  echo "=== [quick] bench regression gate ==="
  # Generous tolerance: CI runners and laptops differ from the committed
  # baseline's host by far more than a real in-tree regression would
  # move a row, and pct-of-peak already folds out the bandwidth
  # difference. The gate exists to catch an engine falling off a cliff
  # (wrong path planned, vectorisation lost), not a 10% wobble.
  "$build/tools/bench_report" --check \
      "$ROOT/bench/baselines/bench_smoke_baseline.json" "$smoke" \
      --tolerance 60
  echo "=== [quick] perf trajectory ==="
  "$build/tools/bench_report" --trajectory "$ROOT"/BENCH_PR*.json
  echo "=== [quick] tune smoke ==="
  local wisdom_dir
  wisdom_dir="$(mktemp -d)"
  trap 'rm -rf "$wisdom_dir"' RETURN
  local wisdom="$wisdom_dir/wisdom.json"
  "$build/tools/bwfft_tune" --dims 64x64x64 --level estimate \
      --wisdom "$wisdom"
  # The second invocation must be served from the saved wisdom file —
  # no re-ranking, no measuring.
  "$build/tools/bwfft_tune" --dims 64x64x64 --level estimate \
      --wisdom "$wisdom" | tee "$wisdom_dir/second.log"
  grep -q "wisdom: hit" "$wisdom_dir/second.log"
  echo "=== [quick] clean ==="
}

run_faults() {
  local build="$BUILD_BASE/build-asan"
  echo "=== [faults] configure: -DBWFFT_SANITIZE=address;undefined ==="
  cmake -B "$build" -S "$ROOT" -DBWFFT_SANITIZE="address;undefined" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "=== [faults] build ==="
  cmake --build "$build" -j "$JOBS"
  (
    cd "$build"
    export ASAN_OPTIONS="abort_on_error=1:detect_stack_use_after_return=1"
    export LSAN_OPTIONS="suppressions=$ROOT/suppressions/asan.supp"
    export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$ROOT/suppressions/ubsan.supp"

    # Targeted injections first: the spawn/stall/recovery tests install
    # their own fault plans and assert the exact degradation taken.
    echo "=== [faults] ctest -L fault ==="
    ctest -L fault --output-on-failure -j "$JOBS"

    # Then the whole tier-1 suite under each always-recoverable family:
    # every test must pass unchanged while the preferred path fails on
    # every hit. The fault-labeled tests are excluded (they ran above and
    # manage their own plans); the wisdom families also exclude the tune
    # directory, whose persistence tests intentionally assert the
    # healthy save path.
    local fam exclude
    for fam in "alloc.huge:*" "alloc.numa:*" "pin:*" \
               "wisdom.torn:*" "wisdom.corrupt:*"; do
      exclude="fault"
      case "$fam" in wisdom.*) exclude="fault|tune" ;; esac
      echo "=== [faults] ctest -L tier1 with BWFFT_FAULTS=\"$fam\" ==="
      BWFFT_FAULTS="$fam" ctest -L tier1 -LE "$exclude" \
          --output-on-failure -j "$JOBS"
    done
  )
  echo "=== [faults] clean ==="
}

run_chaos() {
  # The overload-resilience acceptance sweep (docs/INTERNALS.md §14):
  # `ctest -L chaos` drives every exec fault family — typed sheds,
  # per-tenant quota bounces, bit-exact retries, quarantine + rebuild of
  # poisoned plans, Parseval-caught corruption, the synthetic slow-batch
  # heartbeat and the combined producers-over-capacity storm — first
  # under ASan+UBSan (memory safety across the shed/retry/requeue paths),
  # then under TSan (the dispatcher, watchdog and producers race by
  # design). Both legs reuse the standing sanitizer trees. The full ctest
  # output lands in chaos_report.txt for the CI artifact.
  local report="$BUILD_BASE/chaos_report.txt"
  mkdir -p "$BUILD_BASE"
  : > "$report"
  local leg build sanitize
  for leg in asan tsan; do
    build="$BUILD_BASE/build-$leg"
    case "$leg" in
      asan) sanitize="address;undefined" ;;
      tsan) sanitize="thread" ;;
    esac
    echo "=== [chaos/$leg] configure: -DBWFFT_SANITIZE=$sanitize ==="
    cmake -B "$build" -S "$ROOT" -DBWFFT_SANITIZE="$sanitize" \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
    echo "=== [chaos/$leg] build ==="
    cmake --build "$build" -j "$JOBS"
    echo "=== [chaos/$leg] ctest -L chaos ==="
    (
      cd "$build"
      export ASAN_OPTIONS="abort_on_error=1:detect_stack_use_after_return=1"
      export LSAN_OPTIONS="suppressions=$ROOT/suppressions/asan.supp"
      export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$ROOT/suppressions/ubsan.supp"
      export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=$ROOT/suppressions/tsan.supp"
      echo "--- chaos leg: $leg ---" >> "$report"
      ctest -L chaos --output-on-failure -j "$JOBS" 2>&1 | tee -a "$report"
    )
  done
  echo "=== [chaos] report: $report ==="
}

run_lint() {
  local build="$BUILD_BASE/build-quick"
  echo "=== [lint] configure ==="
  cmake -B "$build" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "=== [lint] build bwfft_lint ==="
  cmake --build "$build" -j "$JOBS" --target bwfft_lint
  echo "=== [lint] static sweep over the tuner grid ==="
  "$build/tools/bwfft_lint"
  # Seeded defects: every mode must be CAUGHT (nonzero exit). An inject
  # that slips through exits 0, which fails this gate — the verifier is
  # itself verified.
  local mode
  for mode in store-overlap store-gap missing-fence epoch-alias \
              schedule-half schedule-dup; do
    echo "=== [lint] inject $mode (must be caught) ==="
    if "$build/tools/bwfft_lint" --inject "$mode" > /dev/null; then
      echo "inject $mode was NOT caught" >&2
      return 1
    fi
  done
  echo "=== [lint] clean ==="
}

# Internal: run exactly one mode in a child process, where `set -e` is
# fully effective (inside an `if !`/`||` guard the shell suspends -e, so
# the parent drives each mode through a re-invocation instead).
if [[ "${1:-}" == "--one" ]]; then
  [[ $# -eq 2 ]] || usage
  case "$2" in
    asan) run_config asan "address;undefined" ;;
    tsan) run_config tsan "thread" ;;
    quick|--quick) run_quick ;;
    faults) run_faults ;;
    lint) run_lint ;;
    chaos) run_chaos ;;
    *) usage ;;
  esac
  exit 0
fi

if [[ $# -eq 0 ]]; then
  CONFIGS=(asan tsan)
else
  CONFIGS=("$@")
fi

# Validate and expand (`ci` is the hosted pipeline's chain: the quick
# gate plus both sanitizer sweeps).
MODES=()
for cfg in "${CONFIGS[@]}"; do
  case "$cfg" in
    asan|tsan|quick|--quick|faults|lint|chaos) MODES+=("$cfg") ;;
    ci) MODES+=(quick lint asan tsan) ;;
    *) echo "unknown config '$cfg' (expected: asan, tsan, quick, faults, lint, chaos, ci)" >&2
       exit 2 ;;
  esac
done

for cfg in "${MODES[@]}"; do
  "${BASH_SOURCE[0]}" --one "$cfg" || exit "$(exit_code_for "$cfg")"
done

echo "all requested configurations clean"
