// bwfft_verify — correctness-tooling CLI.
//
//   bwfft_verify spl --dims KxNxM|NxM [--mu MU] [--socket-split SK]
//       Build the paper's factorisations for the given problem, run the
//       SPL static verifier over every term, probe the L/K nodes for
//       permutation-ness, and verify the lowered program of the 1D
//       four-step term. Exit 0 iff everything is clean.
//
//   bwfft_verify pipeline [--threads P] [--compute PC] [--block ELEMS]
//                         [--iters N]
//       Run a synthetic copy stage through DoubleBufferPipeline under the
//       hazard checker: audits the Table II schedule trace and the
//       load/compute partition maps, and prints the report.
//
// Both subcommands print a human-readable report and exit non-zero when a
// violation is found, so the tool slots into CI next to `ctest`.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/hazard_checker.h"
#include "common/rng.h"
#include "common/topology.h"
#include "parallel/roles.h"
#include "parallel/team.h"
#include "pipeline/pipeline.h"
#include "spl/algorithms.h"
#include "spl/lower.h"
#include "spl/verify.h"

using namespace bwfft;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s spl --dims KxNxM|NxM [--mu MU] [--socket-split SK]\n"
               "       %s pipeline [--threads P] [--compute PC] "
               "[--block ELEMS] [--iters N]\n",
               argv0, argv0);
  std::exit(2);
}

std::vector<idx_t> parse_dims(const std::string& s) {
  std::vector<idx_t> dims;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find('x', pos);
    if (next == std::string::npos) next = s.size();
    dims.push_back(std::atoll(s.substr(pos, next - pos).c_str()));
    pos = next + 1;
  }
  return dims;
}

int check_term(const char* name, const spl::Expr& term, bool expect_perm) {
  const spl::VerifyReport rep = spl::verify(term);
  int failures = 0;
  if (!rep.ok()) {
    std::printf("  %-22s FAIL\n    %s\n", name, rep.str().c_str());
    ++failures;
  } else {
    std::printf("  %-22s ok (%zu nodes)\n", name, rep.nodes);
  }
  if (expect_perm && !spl::is_permutation(term)) {
    std::printf("  %-22s FAIL: not a permutation\n", name);
    ++failures;
  }
  return failures;
}

int run_spl(const std::vector<idx_t>& dims, idx_t mu, bool mu_requested,
            int sk) {
  int failures = 0;
  int skipped = 0;
  std::printf("spl verify:\n");
  // An inapplicable packet size used to skip the blocked variants
  // SILENTLY, so `--mu 3` on an odd row length reported CLEAN and exit 0
  // without verifying anything the caller asked for. Now every skip
  // prints, and a skip of an explicitly requested --mu is a failure.
  const bool mu_ok = mu >= 1 && dims.back() % mu == 0;
  if (!mu_ok && mu_requested) {
    std::printf("  %-22s FAIL: requested --mu %lld does not divide m=%lld\n",
                "packet size", static_cast<long long>(mu),
                static_cast<long long>(dims.back()));
    ++failures;
  }
  if (dims.size() == 2) {
    const idx_t n = dims[0], m = dims[1];
    failures += check_term("dft2d_pencil", *spl::dft2d_pencil(n, m), false);
    failures +=
        check_term("dft2d_transposed", *spl::dft2d_transposed(n, m), false);
    if (mu_ok) {
      failures +=
          check_term("dft2d_blocked", *spl::dft2d_blocked(n, m, mu), false);
    } else {
      std::printf("  %-22s skipped (mu=%lld does not divide m=%lld)\n",
                  "dft2d_blocked", (long long)mu, (long long)m);
      ++skipped;
    }
    failures += check_term("L (stride perm)", *spl::stride_perm(n * m, m), true);
  } else {
    const idx_t k = dims[0], n = dims[1], m = dims[2];
    failures += check_term("dft3d_pencil", *spl::dft3d_pencil(k, n, m), false);
    if (mu_ok) {
      failures +=
          check_term("dft3d_rotated", *spl::dft3d_rotated(k, n, m, mu), false);
      failures += check_term("rotation_k_blocked",
                             *spl::rotation_k_blocked(k, n, m, mu), true);
      if (sk > 1 && k % sk == 0) {
        failures += check_term("dft3d_dual_socket",
                               *spl::dft3d_dual_socket(k, n, m, mu, sk), false);
      } else if (sk > 1) {
        std::printf("  %-22s skipped (socket split %lld does not divide k=%lld)\n",
                    "dft3d_dual_socket", (long long)sk, (long long)k);
        ++skipped;
      }
    } else {
      std::printf("  %-22s skipped (mu=%lld does not divide m=%lld)\n",
                  "dft3d_rotated/blocked", (long long)mu, (long long)m);
      skipped += 2;
      if (sk > 1) {
        std::printf("  %-22s skipped (needs a valid mu)\n",
                    "dft3d_dual_socket");
        ++skipped;
      }
    }
    failures += check_term("rotation_k", *spl::rotation_k(k, n, m), true);
  }

  // Lowered-plan conservation on the four-step 1D term of the total size.
  idx_t total = 1;
  for (idx_t d : dims) total *= d;
  idx_t a = 1;
  while (a * a < total) a *= 2;
  if (total % a == 0) {
    const auto term = spl::dft1d_four_step(a, total / a);
    const spl::Program prog = spl::lower(*term);
    const spl::VerifyReport rep = spl::verify(prog);
    if (!rep.ok()) {
      std::printf("  %-22s FAIL\n    %s\n", "lowered four-step", rep.str().c_str());
      ++failures;
    } else {
      std::printf("  %-22s ok (%zu ops conserve %lld elements)\n",
                  "lowered four-step", prog.ops().size(),
                  static_cast<long long>(total));
    }
  } else {
    std::printf("  %-22s skipped (%lld is not split by a=%lld)\n",
                "lowered four-step", static_cast<long long>(total),
                static_cast<long long>(a));
    ++skipped;
  }
  std::printf("spl verify: %s (%d skipped, %d failures)\n",
              failures == 0 ? "CLEAN" : "VIOLATIONS", skipped, failures);
  return failures == 0 ? 0 : 1;
}

int run_pipeline(int threads, int compute, idx_t block, idx_t iters) {
  const MachineTopology topo = host_topology();
  if (threads <= 0) threads = topo.total_threads();
  if (compute < 0) compute = threads <= 1 ? threads : threads / 2;
  std::printf("pipeline hazard check: threads=%d compute=%d block=%lld "
              "iters=%lld\n",
              threads, compute, static_cast<long long>(block),
              static_cast<long long>(iters));

  ThreadTeam team(threads);
  RolePlan roles = make_role_plan(threads, compute, topo);
  DoubleBufferPipeline pipe(team, roles, block);

  // Synthetic copy stage shaped like a real FFT stage (load / in-place
  // compute / store over per-rank chunks).
  const idx_t total = block * iters;
  cvec src = random_cvec(total, 7);
  cvec dst(static_cast<std::size_t>(total));
  PipelineStage stage;
  stage.iterations = iters;
  stage.load = [&](idx_t i, cplx* buf, int rank, int parts) {
    auto [b, e] = ThreadTeam::chunk(block, parts, rank);
    std::memcpy(buf + b, src.data() + i * block + b,
                static_cast<std::size_t>(e - b) * sizeof(cplx));
  };
  stage.compute = [&](idx_t, cplx* buf, int rank, int parts) {
    auto [b, e] = ThreadTeam::chunk(block, parts, rank);
    for (idx_t j = b; j < e; ++j) buf[j] *= 2.0;
  };
  stage.store = [&](idx_t i, const cplx* buf, int rank, int parts) {
    auto [b, e] = ThreadTeam::chunk(block, parts, rank);
    std::memcpy(dst.data() + i * block + b, buf + b,
                static_cast<std::size_t>(e - b) * sizeof(cplx));
  };

  analysis::HazardChecker checker(pipe);
  const analysis::HazardReport rep = checker.check(stage);
  std::printf("%s\n", rep.str().c_str());

  // Data integrity double-check on top of the schedule audit.
  for (idx_t j = 0; j < total; ++j) {
    if (dst[static_cast<std::size_t>(j)] != src[static_cast<std::size_t>(j)] * 2.0) {
      std::printf("data corruption at element %lld\n",
                  static_cast<long long>(j));
      return 1;
    }
  }
  return rep.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string cmd = argv[1];

  std::vector<idx_t> dims;
  idx_t mu = 2, block = 4096, iters = 16;
  bool mu_requested = false;
  int threads = 0, compute = -1, sk = 2;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--dims") {
      dims = parse_dims(next());
    } else if (arg == "--mu") {
      mu = std::atoll(next().c_str());
      mu_requested = true;
    } else if (arg == "--socket-split") {
      sk = std::atoi(next().c_str());
    } else if (arg == "--threads") {
      threads = std::atoi(next().c_str());
    } else if (arg == "--compute") {
      compute = std::atoi(next().c_str());
    } else if (arg == "--block") {
      block = std::atoll(next().c_str());
    } else if (arg == "--iters") {
      iters = std::atoll(next().c_str());
    } else {
      usage(argv[0]);
    }
  }

  try {
    if (cmd == "spl") {
      if (dims.empty()) dims = {8, 8, 8};
      if (dims.size() != 2 && dims.size() != 3) usage(argv[0]);
      return run_spl(dims, mu, mu_requested, sk);
    }
    if (cmd == "pipeline") {
      return run_pipeline(threads, compute, block, iters);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage(argv[0]);
}
