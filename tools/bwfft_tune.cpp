// bwfft_tune — run the planner/autotuner and manage wisdom files.
//
//   bwfft_tune --dims 128x128x128 [--level estimate|measure|exhaustive]
//              [--threads P] [--inverse] [--wisdom file.json]
//
// Resolves an EngineKind::Auto plan for the given transform and prints
// the candidate table: the cost-model estimate for every grid point,
// measured times for the candidates the chosen level executed, and the
// winning configuration. With --wisdom the file is loaded first (a
// matching entry short-circuits the whole pass — the printed source line
// says so) and the merged store is saved back, so a second invocation
// reports "wisdom: hit" and does no measuring. Corrupt wisdom files are
// reported and treated as empty, never fatal.
#include <cstdio>
#include <string>
#include <vector>

#include "benchutil/args.h"
#include "fft/options.h"
#include "tune/tuner.h"
#include "tune/wisdom.h"

using namespace bwfft;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dims KxNxM|NxM "
               "[--level estimate|measure|exhaustive] [--threads P] "
               "[--inverse] [--wisdom file.json]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<idx_t> dims{128, 128, 128};
  TuneLevel level = TuneLevel::Estimate;
  int threads = 0;
  bool inverse = false;
  std::string wisdom_path;

  const std::vector<std::string> args(argv + 1, argv + argc);
  std::string err;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](std::string* value) {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        usage(argv[0]);
      }
      *value = args[++i];
    };
    std::string token;
    if (arg == "--dims") {
      next(&token);
      if (!cli::parse_dims(token, &dims, &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        usage(argv[0]);
      }
    } else if (arg == "--level") {
      next(&token);
      if (!tune_level_from_name(token, &level)) {
        std::fprintf(stderr, "unknown --level '%s'\n", token.c_str());
        usage(argv[0]);
      }
    } else if (arg == "--threads") {
      next(&token);
      long long v = 0;
      if (!cli::parse_int(token, 1, &v, &err)) {
        std::fprintf(stderr, "bad --threads: %s\n", err.c_str());
        usage(argv[0]);
      }
      threads = static_cast<int>(v);
    } else if (arg == "--inverse") {
      inverse = true;
    } else if (arg == "--wisdom") {
      next(&token);
      if (token.empty()) {
        std::fprintf(stderr, "--wisdom requires a non-empty path\n");
        usage(argv[0]);
      }
      wisdom_path = token;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      usage(argv[0]);
    }
  }

  if (!wisdom_path.empty()) {
    tune::Wisdom file_wisdom;
    std::string werr;
    int skipped = 0;
    if (tune::load_wisdom_file_guarded(&file_wisdom, wisdom_path, &werr,
                                       &skipped)) {
      if (skipped > 0) {
        std::fprintf(stderr, "wisdom: skipped %d malformed entries\n",
                     skipped);
      }
      tune::global_wisdom_merge(file_wisdom);
      std::printf("wisdom: loaded %zu entries from %s\n", file_wisdom.size(),
                  wisdom_path.c_str());
    } else {
      std::fprintf(stderr, "wisdom: %s (starting fresh)\n", werr.c_str());
    }
  }

  FftOptions opts;
  opts.engine = EngineKind::Auto;
  opts.tune_level = level;
  opts.threads = threads;
  const Direction dir = inverse ? Direction::Inverse : Direction::Forward;

  std::printf("tune: dims=");
  for (std::size_t i = 0; i < dims.size(); ++i) {
    std::printf("%s%lld", i ? "x" : "", static_cast<long long>(dims[i]));
  }
  std::printf(" dir=%s level=%s\n", inverse ? "inverse" : "forward",
              tune_level_name(level));

  tune::TuneReport report;
  const FftOptions resolved = tune::resolve_auto(dims, dir, opts, &report);

  if (report.from_wisdom) {
    std::printf("wisdom: hit — no measurement needed\n");
  } else {
    std::printf("wisdom: miss — ranked %zu candidates, measured %d "
                "(model bandwidth %.1f GB/s)\n",
                report.candidates.size(), report.measured_count,
                report.stream_bw_gbs);
    std::printf("  %-44s %12s %12s\n", "candidate", "est ms", "measured ms");
    for (const tune::TuneCandidate& c : report.candidates) {
      char measured[32] = "-";
      if (c.measured_seconds >= 0.0) {
        std::snprintf(measured, sizeof(measured), "%.3f",
                      c.measured_seconds * 1e3);
      }
      std::printf("  %-44s %12.3f %12s%s\n",
                  tune::candidate_label(c).c_str(), c.est_seconds * 1e3,
                  measured,
                  tune::same_config(c, report.chosen) ? "  <- chosen" : "");
    }
  }
  std::printf("chosen: %s (engine=%s)\n",
              tune::candidate_label(report.chosen).c_str(),
              engine_name(resolved.engine));

  if (!wisdom_path.empty()) {
    std::string werr;
    const tune::Wisdom snapshot = tune::global_wisdom_snapshot();
    if (!snapshot.save_file(wisdom_path, &werr)) {
      std::fprintf(stderr, "wisdom: %s\n", werr.c_str());
      return 1;
    }
    std::printf("wisdom: saved %zu entries to %s\n", snapshot.size(),
                wisdom_path.c_str());
  }
  return 0;
}
