// bwfft_cli — command-line driver for the library.
//
//   bwfft_cli --dims 128x128x128|512x512|4194304
//             [--engine dbuf|stagepar|slab|pencil]
//             [--threads P] [--compute PC] [--block ELEMS] [--reps R]
//             [--inverse] [--verify] [--no-nt] [--mu MU] [--stats]
//             [--trace out.json]
//
// Plans the transform, times `reps` executions, prints pseudo-Gflop/s and
// (optionally) verifies against the dense reference (small sizes) or the
// inverse round trip (any size). With --stats the run is replayed once
// under the observability layer and a counter dump plus a per-stage
// roofline (%-of-achievable-peak against the measured STREAM bandwidth)
// is printed; --trace additionally writes a chrome://tracing JSON file.
//
// Argument parsing lives in benchutil/args.{h,cpp} so the strict
// validation is unit-tested; every numeric flag rejects trailing garbage,
// overflow and out-of-range values instead of feeding atoll() results
// into plan construction.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <chrono>
#include <future>
#include <mutex>
#include <thread>

#include "benchutil/args.h"
#include "benchutil/metrics.h"
#include "common/rng.h"
#include "common/timer.h"
#include "exec/batch_executor.h"
#include "fault/fault.h"
#include "fft/double_buffer.h"
#include "fft/fft.h"
#include "fft/reference.h"
#include "kernels/isa.h"
#include "obs/obs.h"
#include "stream/stream.h"
#include "tune/wisdom.h"

using namespace bwfft;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dims KxNxM|NxM|N [--engine "
               "dbuf|stagepar|slab|pencil|reference|auto] [--threads P] "
               "[--compute PC] [--block ELEMS] [--mu MU] [--reps R] "
               "[--inverse] [--verify] [--no-nt] [--stats] [--verbose] "
               "[--isa auto|scalar|avx2|avx512] [--dispatch] "
               "[--trace out.json] [--tune estimate|measure|exhaustive] "
               "[--wisdom file.json] [--serve] [--requests N] "
               "[--producers P] [--queue CAP] [--deadline-ms MS] "
               "[--quota-rate R] [--quota-burst B] [--integrity FRAC] "
               "[--retries N] [--batch-every N] [--tenants N]\n",
               argv0);
  std::exit(2);
}

EngineKind engine_kind(const std::string& s) {
  EngineKind kind = EngineKind::Reference;
  engine_kind_from_name(s, &kind);  // s was validated by parse_args
  return kind;
}

/// A typed rejection is the service shedding load as designed (queue
/// full, deadline, CoDel shed, quota) — counted and reported, but not an
/// exit-code failure like a wrong result or an exhausted recovery.
bool is_typed_rejection(ErrorCode code) {
  return code == ErrorCode::kQueueFull || code == ErrorCode::kTimeout ||
         code == ErrorCode::kOverloaded || code == ErrorCode::kQuotaExceeded;
}

/// --serve: run the configured transform as a service workload —
/// `producers` threads submit `requests` requests to one BatchExecutor
/// (persistent team, shared plan cache, bounded two-lane queue, optional
/// quotas / deadlines / retries / integrity sampling) and the
/// throughput/latency/overload-control numbers are printed. Non-zero on
/// any hard-failed request (typed rejections are tallied, not fatal).
int run_serve(const cli::Options& a, const FftOptions& base_opts,
              Direction dir, idx_t total) {
  exec::ServeOptions sopts;
  sopts.threads = a.threads;
  sopts.queue_capacity = static_cast<std::size_t>(a.queue_cap);
  sopts.plan = base_opts;
  sopts.admission.quota_rate = a.quota_rate;
  sopts.admission.quota_burst = a.quota_burst;
  sopts.integrity_fraction = a.integrity;
  sopts.watchdog = true;
  exec::BatchExecutor executor(sopts);

  const cvec seed = random_cvec(total);
  std::vector<cvec> ins, outs;
  for (int p = 0; p < a.producers; ++p) {
    ins.push_back(seed);
    outs.emplace_back(static_cast<std::size_t>(total));
  }

  std::printf(
      "serve: %d requests, %d producers, queue=%d, deadline=%d ms, "
      "quota=%.1f/s burst=%.0f, integrity=%.2f, retries=%d\n",
      a.requests, a.producers, a.queue_cap, a.deadline_ms, a.quota_rate,
      a.quota_burst, a.integrity, a.retries);
  int failed = 0, rejected = 0;
  std::mutex fail_mu;
  Timer wall;
  std::vector<std::thread> tt;
  for (int p = 0; p < a.producers; ++p) {
    tt.emplace_back([&, p] {
      std::vector<std::future<ExecReport>> pending;
      for (int r = p; r < a.requests; r += a.producers) {
        exec::Request req;
        req.dims = a.dims;
        req.dir = dir;
        req.in = ins[static_cast<std::size_t>(p)].data();
        req.out = outs[static_cast<std::size_t>(p)].data();
        if (a.deadline_ms > 0) {
          req.deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(a.deadline_ms);
        }
        if (a.batch_every > 0 && r % a.batch_every == 0) {
          req.lane = exec::Lane::kBatch;
        }
        req.tenant = "tenant-" + std::to_string(p % a.tenants);
        req.retry.max_attempts = a.retries;
        pending.push_back(executor.submit(std::move(req)));
      }
      for (auto& f : pending) {
        const ExecReport rep = f.get();
        if (rep.status.ok()) continue;
        std::lock_guard<std::mutex> lk(fail_mu);
        if (is_typed_rejection(rep.status.code())) {
          ++rejected;
        } else {
          ++failed;
          std::fprintf(stderr, "serve: request failed: %s\n",
                       rep.status.str().c_str());
        }
      }
    });
  }
  for (auto& t : tt) t.join();
  const double secs = wall.seconds();

  const exec::ExecStats st = executor.stats();
  std::printf("serve: %.1f requests/s (%d in %.3f s)\n",
              static_cast<double>(a.requests) / secs, a.requests, secs);
  std::printf(
      "serve: queue wait p50=%.3f ms p99=%.3f ms; end-to-end p50=%.3f ms "
      "p99=%.3f ms\n",
      static_cast<double>(st.queue_wait.quantile_ns(0.50)) / 1e6,
      static_cast<double>(st.queue_wait.quantile_ns(0.99)) / 1e6,
      static_cast<double>(st.end_to_end.quantile_ns(0.50)) / 1e6,
      static_cast<double>(st.end_to_end.quantile_ns(0.99)) / 1e6);
  std::printf(
      "serve: batches=%llu occupancy=%.2f (max %zu) peak_queue=%zu "
      "completed=%llu failed=%llu\n",
      static_cast<unsigned long long>(st.batches), st.batch_occupancy(),
      st.max_batch_occupancy, st.peak_queue_depth,
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.failed));
  std::printf(
      "serve: rejected_full=%llu timed_out=%llu shed=%llu quota=%llu "
      "retried=%llu quarantined=%llu\n",
      static_cast<unsigned long long>(st.rejected_full),
      static_cast<unsigned long long>(st.timed_out),
      static_cast<unsigned long long>(st.shed),
      static_cast<unsigned long long>(st.quota_rejected),
      static_cast<unsigned long long>(st.retried),
      static_cast<unsigned long long>(st.quarantined));
  std::printf(
      "serve: integrity checked=%llu failed=%llu; watchdog scans=%llu "
      "slow_batches=%llu drift_events=%llu\n",
      static_cast<unsigned long long>(st.integrity_checked),
      static_cast<unsigned long long>(st.integrity_failed),
      static_cast<unsigned long long>(st.watchdog_scans),
      static_cast<unsigned long long>(st.slow_batches),
      static_cast<unsigned long long>(st.latency_drift_events));
  for (std::size_t l = 0; l < exec::kLaneCount; ++l) {
    if (st.submitted_by_lane[l] == 0) continue;
    std::printf(
        "serve: lane %-11s submitted=%llu completed=%llu wait "
        "p50=%.3f ms p99=%.3f ms\n",
        exec::lane_name(static_cast<exec::Lane>(static_cast<int>(l))),
        static_cast<unsigned long long>(st.submitted_by_lane[l]),
        static_cast<unsigned long long>(st.completed_by_lane[l]),
        static_cast<double>(st.lane_queue_wait[l].quantile_ns(0.50)) / 1e6,
        static_cast<double>(st.lane_queue_wait[l].quantile_ns(0.99)) / 1e6);
  }
  if (rejected > 0) {
    std::printf("serve: %d requests rejected with typed backpressure\n",
                rejected);
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Options a;
  std::string err;
  if (!cli::parse_args(std::vector<std::string>(argv + 1, argv + argc), &a,
                       &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    usage(argv[0]);
  }
  if (!a.isa.empty()) {
    kernels::Isa isa = kernels::Isa::Auto;
    kernels::isa_from_name(a.isa, &isa);  // a.isa was validated by parse_args
    kernels::set_isa_override(isa);
  }
  if (a.dispatch) {
    // Print where the same binary lands on this host (cpuid, BWFFT_ISA,
    // overrides) and exit — the CI dispatch-report check drives this.
    std::fputs(kernels::dispatch_report().c_str(), stdout);
    return 0;
  }
  const EngineKind kind = engine_kind(a.engine);
  if (a.dims.size() == 1 && kind == EngineKind::SlabPencil) {
    std::fprintf(stderr, "--engine slab is a 3D decomposition; 1D sizes "
                         "take dbuf|stagepar|pencil|reference|auto\n");
    usage(argv[0]);
  }
  idx_t total = 1;
  for (idx_t d : a.dims) total *= d;

  FftOptions opts;
  opts.engine = kind;
  opts.threads = a.threads;
  opts.compute_threads = a.compute;
  opts.block_elems = a.block;
  opts.packet_elems = a.mu;
  opts.nontemporal = a.nontemporal;
  if (!a.isa.empty()) kernels::isa_from_name(a.isa, &opts.isa);
  if (!a.tune.empty()) tune_level_from_name(a.tune, &opts.tune_level);
  const Direction dir = a.inverse ? Direction::Inverse : Direction::Forward;

  // Wisdom file: load (tolerantly) before planning so an auto plan can
  // skip measurement, save the merged store afterwards.
  if (!a.wisdom_path.empty()) {
    tune::Wisdom file_wisdom;
    std::string werr;
    int skipped = 0;
    if (tune::load_wisdom_file_guarded(&file_wisdom, a.wisdom_path, &werr,
                                       &skipped)) {
      if (skipped > 0) {
        std::fprintf(stderr, "wisdom: skipped %d malformed entries in %s\n",
                     skipped, a.wisdom_path.c_str());
      }
      tune::global_wisdom_merge(file_wisdom);
    } else {
      std::fprintf(stderr, "wisdom: %s (starting fresh)\n", werr.c_str());
    }
  }

  if (a.serve) return run_serve(a, opts, dir, total);

  cvec original = random_cvec(total);
  cvec in(original.size()), out(original.size());

  std::printf("dims=");
  for (std::size_t i = 0; i < a.dims.size(); ++i) {
    std::printf("%s%lld", i ? "x" : "", static_cast<long long>(a.dims[i]));
  }
  std::printf(" engine=%s dir=%s threads=%d\n", engine_name(kind),
              a.inverse ? "inverse" : "forward",
              a.threads > 0 ? a.threads : opts.topo.total_threads());

  std::unique_ptr<MdEngine> plan1;  // huge-1D path (INTERNALS.md §15)
  std::unique_ptr<Fft2d> plan2;
  std::unique_ptr<Fft3d> plan3;
  if (a.dims.size() == 1) {
    plan1 = make_engine(a.dims, dir, opts);
  } else if (a.dims.size() == 2) {
    plan2 = std::make_unique<Fft2d>(a.dims[0], a.dims[1], dir, opts);
  } else {
    plan3 = std::make_unique<Fft3d>(a.dims[0], a.dims[1], a.dims[2], dir,
                                    opts);
  }
  if (kind == EngineKind::Auto) {
    std::printf("auto (%s): resolved to engine=%s\n",
                tune_level_name(opts.tune_level),
                plan1   ? plan1->name()
                : plan2 ? plan2->engine_name()
                        : plan3->engine_name());
  }
  if (!a.wisdom_path.empty()) {
    std::string werr;
    if (!tune::global_wisdom_snapshot().save_file(a.wisdom_path, &werr)) {
      std::fprintf(stderr, "wisdom: %s\n", werr.c_str());
      return 1;
    }
  }
  // Runs go through the no-throw recovery API: an injected or real
  // failure degrades the plan (fewer threads, plain memory, reference
  // engine) instead of aborting the tool, and --verbose shows what the
  // recovery layer did.
  ExecReport rep;
  auto run_once = [&]() -> Status {
    std::copy(original.begin(), original.end(), in.begin());
    if (plan1) {
      // MdEngine has no recovery ladder yet; surface a thrown Error as
      // the same typed Status the 2D/3D facades return.
      try {
        plan1->execute(in.data(), out.data());
      } catch (const Error& e) {
        return Status(e.code(), e.what());
      }
      rep.engine = plan1->name();
      return Status::Ok();
    }
    return plan2 ? plan2->try_execute(in.data(), out.data(), &rep)
                 : plan3->try_execute(in.data(), out.data(), &rep);
  };

  double best = 1e30;
  for (int r = 0; r < a.reps; ++r) {
    Timer t;
    const Status st = run_once();
    if (!st.ok()) {
      std::fprintf(stderr, "execute failed: %s\n", st.str().c_str());
      const std::string freport = fault::report();
      if (!freport.empty()) std::fprintf(stderr, "%s", freport.c_str());
      return 1;
    }
    best = std::min(best, t.seconds());
  }
  std::printf("best of %d: %.3f ms, %.2f pseudo-Gflop/s\n", a.reps,
              best * 1e3, fft_gflops(static_cast<double>(total), best));

  if (a.verbose) {
    std::printf("status: %s (engine=%s, threads=%d, retries=%d)\n",
                rep.status.str().c_str(), rep.engine.c_str(),
                rep.threads_used, rep.retries);
    // fault::report() covers both the fired injection sites and the
    // degradation notes (the same lines ExecReport::degradations carries).
    const std::string freport = fault::report();
    if (!freport.empty()) std::printf("%s", freport.c_str());
    std::printf(
        "faults injected=%llu retries=%llu degradations=%llu\n",
        static_cast<unsigned long long>(fault::injected_count()),
        static_cast<unsigned long long>(fault::retried_count()),
        static_cast<unsigned long long>(fault::degraded_count()));
  }

  // Observed replay: one extra execution with counters zeroed and the
  // slice recorder armed. Kept out of the timed loop so the published
  // number is never measured with tracing on.
  if (a.stats || !a.trace_path.empty()) {
    obs::reset_counters();
    obs::start_trace();
    if (const Status st = run_once(); !st.ok()) {
      std::fprintf(stderr, "observed replay failed: %s\n", st.str().c_str());
      return 1;
    }
    obs::stop_trace();
    const std::vector<obs::Slice> slices = obs::drain_trace();

    if (!a.trace_path.empty()) {
      if (obs::write_chrome_trace(a.trace_path, slices)) {
        std::printf("trace: %zu slices -> %s (load in chrome://tracing)\n",
                    slices.size(), a.trace_path.c_str());
        if (obs::dropped_slices() > 0) {
          std::printf("trace: %llu slices dropped (ring full)\n",
                      static_cast<unsigned long long>(obs::dropped_slices()));
        }
      } else {
        std::fprintf(stderr, "trace: cannot write %s\n",
                     a.trace_path.c_str());
        return 1;
      }
#if !defined(BWFFT_OBS)
      std::printf("trace: built with BWFFT_OBS=OFF — no instrumentation\n");
#endif
    }

    if (a.stats) {
      obs::print_counters(obs::counters());
      const double bw = measured_stream_bandwidth_gbs();
      const double stage_bytes =
          2.0 * static_cast<double>(total) * sizeof(cplx);
      const auto roof = obs::roofline_from_trace(slices, stage_bytes, bw);
      if (!roof.empty()) obs::print_roofline(roof, bw);
      if (kind == EngineKind::DoubleBuffer && a.dims.size() >= 2) {
        DoubleBufferEngine eng(a.dims, dir, opts);
        std::copy(original.begin(), original.end(), in.begin());
        eng.execute(in.data(), out.data());
        const auto& st = eng.last_stats();
        for (std::size_t s = 0; s < st.size(); ++s) {
          std::printf("  stage %zu: %.3f ms, %lld iters x %lld rows/block\n",
                      s, st[s].seconds * 1e3,
                      static_cast<long long>(st[s].iterations),
                      static_cast<long long>(st[s].block_rows));
        }
      }
    }
  }

  if (a.verify) {
    cvec want(original.size());
    if (total <= (1 << 18)) {
      // Dense-oracle check for small sizes.
      cvec ref_in = original;
      if (a.dims.size() == 1) {
        reference_dft_1d(ref_in.data(), want.data(), a.dims[0], dir);
      } else if (a.dims.size() == 2) {
        reference_dft_2d(ref_in.data(), want.data(), a.dims[0], a.dims[1],
                         dir);
      } else {
        reference_dft_3d(ref_in.data(), want.data(), a.dims[0], a.dims[1],
                         a.dims[2], dir);
      }
      double verr = 0.0;
      for (idx_t i = 0; i < total; ++i) {
        verr = std::max(verr, std::abs(want[static_cast<std::size_t>(i)] -
                                       out[static_cast<std::size_t>(i)]));
      }
      std::printf("verify vs dense reference: max err = %.3e [%s]\n", verr,
                  verr < 1e-8 ? "OK" : "FAIL");
      return verr < 1e-8 ? 0 : 1;
    }
    // Round-trip check for large sizes.
    FftOptions iopts = opts;
    iopts.normalize_inverse = true;
    const Direction idir = a.inverse ? Direction::Forward : Direction::Inverse;
    cvec back(original.size());
    if (a.dims.size() == 1) {
      make_engine(a.dims, idir, iopts)->execute(out.data(), back.data());
    } else if (a.dims.size() == 2) {
      Fft2d invp(a.dims[0], a.dims[1], idir, iopts);
      invp.execute(out.data(), back.data());
    } else {
      Fft3d invp(a.dims[0], a.dims[1], a.dims[2], idir, iopts);
      invp.execute(out.data(), back.data());
    }
    double verr = 0.0;
    const double scale =
        a.inverse ? static_cast<double>(total) : 1.0;  // inv∘fwd picks up N
    for (idx_t i = 0; i < total; ++i) {
      verr = std::max(verr, std::abs(back[static_cast<std::size_t>(i)] / scale -
                                     original[static_cast<std::size_t>(i)]));
    }
    std::printf("verify round-trip: max err = %.3e [%s]\n", verr,
                verr < 1e-8 ? "OK" : "FAIL");
    return verr < 1e-8 ? 0 : 1;
  }
  return 0;
}
