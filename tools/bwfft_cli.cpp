// bwfft_cli — command-line driver for the library.
//
//   bwfft_cli --dims 128x128x128 [--engine dbuf|stagepar|slab|pencil]
//             [--threads P] [--compute PC] [--block ELEMS] [--reps R]
//             [--inverse] [--verify] [--no-nt] [--mu MU] [--stats]
//
// Plans the transform, times `reps` executions, prints pseudo-Gflop/s and
// (optionally) verifies against the dense reference (small sizes) or the
// inverse round trip (any size).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchutil/metrics.h"
#include "common/rng.h"
#include "common/timer.h"
#include "fft/double_buffer.h"
#include "fft/fft.h"
#include "fft/reference.h"

using namespace bwfft;

namespace {

struct Args {
  std::vector<idx_t> dims{128, 128, 128};
  EngineKind engine = EngineKind::DoubleBuffer;
  int threads = 0;
  int compute = -1;
  idx_t block = 0;
  idx_t mu = 0;
  int reps = 3;
  bool inverse = false;
  bool verify = false;
  bool nontemporal = true;
  bool stats = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dims KxNxM|NxM [--engine "
               "dbuf|stagepar|slab|pencil|reference] [--threads P] "
               "[--compute PC] [--block ELEMS] [--mu MU] [--reps R] "
               "[--inverse] [--verify] [--no-nt] [--stats]\n",
               argv0);
  std::exit(2);
}

std::vector<idx_t> parse_dims(const std::string& s) {
  std::vector<idx_t> dims;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find('x', pos);
    if (next == std::string::npos) next = s.size();
    dims.push_back(std::atoll(s.substr(pos, next - pos).c_str()));
    pos = next + 1;
  }
  return dims;
}

EngineKind parse_engine(const std::string& s) {
  if (s == "dbuf" || s == "double-buffer") return EngineKind::DoubleBuffer;
  if (s == "stagepar" || s == "stage-parallel") return EngineKind::StageParallel;
  if (s == "slab" || s == "slab-pencil") return EngineKind::SlabPencil;
  if (s == "pencil") return EngineKind::Pencil;
  if (s == "reference") return EngineKind::Reference;
  std::fprintf(stderr, "unknown engine '%s'\n", s.c_str());
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--dims") {
      a.dims = parse_dims(next());
    } else if (arg == "--engine") {
      a.engine = parse_engine(next());
    } else if (arg == "--threads") {
      a.threads = std::atoi(next().c_str());
    } else if (arg == "--compute") {
      a.compute = std::atoi(next().c_str());
    } else if (arg == "--block") {
      a.block = std::atoll(next().c_str());
    } else if (arg == "--mu") {
      a.mu = std::atoll(next().c_str());
    } else if (arg == "--reps") {
      a.reps = std::atoi(next().c_str());
    } else if (arg == "--inverse") {
      a.inverse = true;
    } else if (arg == "--verify") {
      a.verify = true;
    } else if (arg == "--no-nt") {
      a.nontemporal = false;
    } else if (arg == "--stats") {
      a.stats = true;
    } else {
      usage(argv[0]);
    }
  }
  if (a.dims.size() != 2 && a.dims.size() != 3) usage(argv[0]);
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  idx_t total = 1;
  for (idx_t d : a.dims) total *= d;

  FftOptions opts;
  opts.engine = a.engine;
  opts.threads = a.threads;
  opts.compute_threads = a.compute;
  opts.block_elems = a.block;
  opts.packet_elems = a.mu;
  opts.nontemporal = a.nontemporal;
  const Direction dir = a.inverse ? Direction::Inverse : Direction::Forward;

  cvec original = random_cvec(total);
  cvec in(original.size()), out(original.size());

  auto describe = [&] {
    std::printf("dims=");
    for (std::size_t i = 0; i < a.dims.size(); ++i) {
      std::printf("%s%lld", i ? "x" : "", static_cast<long long>(a.dims[i]));
    }
    std::printf(" engine=%s dir=%s threads=%d\n", engine_name(a.engine),
                a.inverse ? "inverse" : "forward",
                a.threads > 0 ? a.threads : opts.topo.total_threads());
  };
  describe();

  double best = 1e30;
  auto time_reps = [&](auto& plan) {
    for (int r = 0; r < a.reps; ++r) {
      std::copy(original.begin(), original.end(), in.begin());
      Timer t;
      plan.execute(in.data(), out.data());
      best = std::min(best, t.seconds());
    }
  };

  if (a.dims.size() == 2) {
    Fft2d plan(a.dims[0], a.dims[1], dir, opts);
    time_reps(plan);
  } else {
    Fft3d plan(a.dims[0], a.dims[1], a.dims[2], dir, opts);
    time_reps(plan);
  }
  std::printf("best of %d: %.3f ms, %.2f pseudo-Gflop/s\n", a.reps,
              best * 1e3, fft_gflops(static_cast<double>(total), best));

  if (a.stats && a.engine == EngineKind::DoubleBuffer) {
    DoubleBufferEngine eng(a.dims, dir, opts);
    std::copy(original.begin(), original.end(), in.begin());
    eng.execute(in.data(), out.data());
    const auto& st = eng.last_stats();
    for (std::size_t s = 0; s < st.size(); ++s) {
      std::printf("  stage %zu: %.3f ms, %lld iters x %lld rows/block\n", s,
                  st[s].seconds * 1e3, static_cast<long long>(st[s].iterations),
                  static_cast<long long>(st[s].block_rows));
    }
  }

  if (a.verify) {
    cvec want(original.size());
    if (total <= (1 << 18)) {
      // Dense-oracle check for small sizes.
      cvec ref_in = original;
      if (a.dims.size() == 2) {
        reference_dft_2d(ref_in.data(), want.data(), a.dims[0], a.dims[1], dir);
      } else {
        reference_dft_3d(ref_in.data(), want.data(), a.dims[0], a.dims[1],
                         a.dims[2], dir);
      }
      double err = 0.0;
      for (idx_t i = 0; i < total; ++i) {
        err = std::max(err, std::abs(want[static_cast<std::size_t>(i)] -
                                     out[static_cast<std::size_t>(i)]));
      }
      std::printf("verify vs dense reference: max err = %.3e [%s]\n", err,
                  err < 1e-8 ? "OK" : "FAIL");
      return err < 1e-8 ? 0 : 1;
    }
    // Round-trip check for large sizes.
    FftOptions iopts = opts;
    iopts.normalize_inverse = true;
    const Direction idir = a.inverse ? Direction::Forward : Direction::Inverse;
    cvec back(original.size());
    if (a.dims.size() == 2) {
      Fft2d invp(a.dims[0], a.dims[1], idir, iopts);
      invp.execute(out.data(), back.data());
    } else {
      Fft3d invp(a.dims[0], a.dims[1], a.dims[2], idir, iopts);
      invp.execute(out.data(), back.data());
    }
    double err = 0.0;
    const double scale =
        a.inverse ? static_cast<double>(total) : 1.0;  // inv∘fwd picks up N
    for (idx_t i = 0; i < total; ++i) {
      err = std::max(err, std::abs(back[static_cast<std::size_t>(i)] / scale -
                                   original[static_cast<std::size_t>(i)]));
    }
    std::printf("verify round-trip: max err = %.3e [%s]\n", err,
                err < 1e-8 ? "OK" : "FAIL");
    return err < 1e-8 ? 0 : 1;
  }
  return 0;
}
