// bwfft_cli — command-line driver for the library.
//
//   bwfft_cli --dims 128x128x128 [--engine dbuf|stagepar|slab|pencil]
//             [--threads P] [--compute PC] [--block ELEMS] [--reps R]
//             [--inverse] [--verify] [--no-nt] [--mu MU] [--stats]
//             [--trace out.json]
//
// Plans the transform, times `reps` executions, prints pseudo-Gflop/s and
// (optionally) verifies against the dense reference (small sizes) or the
// inverse round trip (any size). With --stats the run is replayed once
// under the observability layer and a counter dump plus a per-stage
// roofline (%-of-achievable-peak against the measured STREAM bandwidth)
// is printed; --trace additionally writes a chrome://tracing JSON file.
//
// Argument parsing lives in benchutil/args.{h,cpp} so the strict
// validation is unit-tested; every numeric flag rejects trailing garbage,
// overflow and out-of-range values instead of feeding atoll() results
// into plan construction.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/args.h"
#include "benchutil/metrics.h"
#include "common/rng.h"
#include "common/timer.h"
#include "fault/fault.h"
#include "fft/double_buffer.h"
#include "fft/fft.h"
#include "fft/reference.h"
#include "obs/obs.h"
#include "stream/stream.h"
#include "tune/wisdom.h"

using namespace bwfft;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dims KxNxM|NxM [--engine "
               "dbuf|stagepar|slab|pencil|reference|auto] [--threads P] "
               "[--compute PC] [--block ELEMS] [--mu MU] [--reps R] "
               "[--inverse] [--verify] [--no-nt] [--stats] [--verbose] "
               "[--trace out.json] [--tune estimate|measure|exhaustive] "
               "[--wisdom file.json]\n",
               argv0);
  std::exit(2);
}

EngineKind engine_kind(const std::string& s) {
  EngineKind kind = EngineKind::Reference;
  engine_kind_from_name(s, &kind);  // s was validated by parse_args
  return kind;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Options a;
  std::string err;
  if (!cli::parse_args(std::vector<std::string>(argv + 1, argv + argc), &a,
                       &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    usage(argv[0]);
  }
  const EngineKind kind = engine_kind(a.engine);
  idx_t total = 1;
  for (idx_t d : a.dims) total *= d;

  FftOptions opts;
  opts.engine = kind;
  opts.threads = a.threads;
  opts.compute_threads = a.compute;
  opts.block_elems = a.block;
  opts.packet_elems = a.mu;
  opts.nontemporal = a.nontemporal;
  if (!a.tune.empty()) tune_level_from_name(a.tune, &opts.tune_level);
  const Direction dir = a.inverse ? Direction::Inverse : Direction::Forward;

  // Wisdom file: load (tolerantly) before planning so an auto plan can
  // skip measurement, save the merged store afterwards.
  if (!a.wisdom_path.empty()) {
    tune::Wisdom file_wisdom;
    std::string werr;
    int skipped = 0;
    if (tune::load_wisdom_file_guarded(&file_wisdom, a.wisdom_path, &werr,
                                       &skipped)) {
      if (skipped > 0) {
        std::fprintf(stderr, "wisdom: skipped %d malformed entries in %s\n",
                     skipped, a.wisdom_path.c_str());
      }
      tune::global_wisdom_merge(file_wisdom);
    } else {
      std::fprintf(stderr, "wisdom: %s (starting fresh)\n", werr.c_str());
    }
  }

  cvec original = random_cvec(total);
  cvec in(original.size()), out(original.size());

  std::printf("dims=");
  for (std::size_t i = 0; i < a.dims.size(); ++i) {
    std::printf("%s%lld", i ? "x" : "", static_cast<long long>(a.dims[i]));
  }
  std::printf(" engine=%s dir=%s threads=%d\n", engine_name(kind),
              a.inverse ? "inverse" : "forward",
              a.threads > 0 ? a.threads : opts.topo.total_threads());

  std::unique_ptr<Fft2d> plan2;
  std::unique_ptr<Fft3d> plan3;
  if (a.dims.size() == 2) {
    plan2 = std::make_unique<Fft2d>(a.dims[0], a.dims[1], dir, opts);
  } else {
    plan3 = std::make_unique<Fft3d>(a.dims[0], a.dims[1], a.dims[2], dir,
                                    opts);
  }
  if (kind == EngineKind::Auto) {
    std::printf("auto (%s): resolved to engine=%s\n",
                tune_level_name(opts.tune_level),
                plan2 ? plan2->engine_name() : plan3->engine_name());
  }
  if (!a.wisdom_path.empty()) {
    std::string werr;
    if (!tune::global_wisdom_snapshot().save_file(a.wisdom_path, &werr)) {
      std::fprintf(stderr, "wisdom: %s\n", werr.c_str());
      return 1;
    }
  }
  // Runs go through the no-throw recovery API: an injected or real
  // failure degrades the plan (fewer threads, plain memory, reference
  // engine) instead of aborting the tool, and --verbose shows what the
  // recovery layer did.
  ExecReport rep;
  auto run_once = [&]() -> Status {
    std::copy(original.begin(), original.end(), in.begin());
    return plan2 ? plan2->try_execute(in.data(), out.data(), &rep)
                 : plan3->try_execute(in.data(), out.data(), &rep);
  };

  double best = 1e30;
  for (int r = 0; r < a.reps; ++r) {
    Timer t;
    const Status st = run_once();
    if (!st.ok()) {
      std::fprintf(stderr, "execute failed: %s\n", st.str().c_str());
      const std::string freport = fault::report();
      if (!freport.empty()) std::fprintf(stderr, "%s", freport.c_str());
      return 1;
    }
    best = std::min(best, t.seconds());
  }
  std::printf("best of %d: %.3f ms, %.2f pseudo-Gflop/s\n", a.reps,
              best * 1e3, fft_gflops(static_cast<double>(total), best));

  if (a.verbose) {
    std::printf("status: %s (engine=%s, threads=%d, retries=%d)\n",
                rep.status.str().c_str(), rep.engine.c_str(),
                rep.threads_used, rep.retries);
    // fault::report() covers both the fired injection sites and the
    // degradation notes (the same lines ExecReport::degradations carries).
    const std::string freport = fault::report();
    if (!freport.empty()) std::printf("%s", freport.c_str());
    std::printf(
        "faults injected=%llu retries=%llu degradations=%llu\n",
        static_cast<unsigned long long>(fault::injected_count()),
        static_cast<unsigned long long>(fault::retried_count()),
        static_cast<unsigned long long>(fault::degraded_count()));
  }

  // Observed replay: one extra execution with counters zeroed and the
  // slice recorder armed. Kept out of the timed loop so the published
  // number is never measured with tracing on.
  if (a.stats || !a.trace_path.empty()) {
    obs::reset_counters();
    obs::start_trace();
    if (const Status st = run_once(); !st.ok()) {
      std::fprintf(stderr, "observed replay failed: %s\n", st.str().c_str());
      return 1;
    }
    obs::stop_trace();
    const std::vector<obs::Slice> slices = obs::drain_trace();

    if (!a.trace_path.empty()) {
      if (obs::write_chrome_trace(a.trace_path, slices)) {
        std::printf("trace: %zu slices -> %s (load in chrome://tracing)\n",
                    slices.size(), a.trace_path.c_str());
        if (obs::dropped_slices() > 0) {
          std::printf("trace: %llu slices dropped (ring full)\n",
                      static_cast<unsigned long long>(obs::dropped_slices()));
        }
      } else {
        std::fprintf(stderr, "trace: cannot write %s\n",
                     a.trace_path.c_str());
        return 1;
      }
#if !defined(BWFFT_OBS)
      std::printf("trace: built with BWFFT_OBS=OFF — no instrumentation\n");
#endif
    }

    if (a.stats) {
      obs::print_counters(obs::counters());
      const double bw = measured_stream_bandwidth_gbs();
      const double stage_bytes =
          2.0 * static_cast<double>(total) * sizeof(cplx);
      const auto roof = obs::roofline_from_trace(slices, stage_bytes, bw);
      if (!roof.empty()) obs::print_roofline(roof, bw);
      if (kind == EngineKind::DoubleBuffer) {
        DoubleBufferEngine eng(a.dims, dir, opts);
        std::copy(original.begin(), original.end(), in.begin());
        eng.execute(in.data(), out.data());
        const auto& st = eng.last_stats();
        for (std::size_t s = 0; s < st.size(); ++s) {
          std::printf("  stage %zu: %.3f ms, %lld iters x %lld rows/block\n",
                      s, st[s].seconds * 1e3,
                      static_cast<long long>(st[s].iterations),
                      static_cast<long long>(st[s].block_rows));
        }
      }
    }
  }

  if (a.verify) {
    cvec want(original.size());
    if (total <= (1 << 18)) {
      // Dense-oracle check for small sizes.
      cvec ref_in = original;
      if (a.dims.size() == 2) {
        reference_dft_2d(ref_in.data(), want.data(), a.dims[0], a.dims[1],
                         dir);
      } else {
        reference_dft_3d(ref_in.data(), want.data(), a.dims[0], a.dims[1],
                         a.dims[2], dir);
      }
      double verr = 0.0;
      for (idx_t i = 0; i < total; ++i) {
        verr = std::max(verr, std::abs(want[static_cast<std::size_t>(i)] -
                                       out[static_cast<std::size_t>(i)]));
      }
      std::printf("verify vs dense reference: max err = %.3e [%s]\n", verr,
                  verr < 1e-8 ? "OK" : "FAIL");
      return verr < 1e-8 ? 0 : 1;
    }
    // Round-trip check for large sizes.
    FftOptions iopts = opts;
    iopts.normalize_inverse = true;
    const Direction idir = a.inverse ? Direction::Forward : Direction::Inverse;
    cvec back(original.size());
    if (a.dims.size() == 2) {
      Fft2d invp(a.dims[0], a.dims[1], idir, iopts);
      invp.execute(out.data(), back.data());
    } else {
      Fft3d invp(a.dims[0], a.dims[1], a.dims[2], idir, iopts);
      invp.execute(out.data(), back.data());
    }
    double verr = 0.0;
    const double scale =
        a.inverse ? static_cast<double>(total) : 1.0;  // inv∘fwd picks up N
    for (idx_t i = 0; i < total; ++i) {
      verr = std::max(verr, std::abs(back[static_cast<std::size_t>(i)] / scale -
                                     original[static_cast<std::size_t>(i)]));
    }
    std::printf("verify round-trip: max err = %.3e [%s]\n", verr,
                verr < 1e-8 ? "OK" : "FAIL");
    return verr < 1e-8 ? 0 : 1;
  }
  return 0;
}
