// bwfft_lint — static verification sweep over the planner's whole grid.
//
// For each representative transform shape this tool:
//   1. symbolically verifies every candidate the tuner would consider
//      (tune::enumerate_candidates x all engines): per-thread store
//      windows pairwise disjoint and jointly covering, NT-store/fence
//      pairing, double-buffer epoch aliasing, stage-to-stage element
//      conservation — all by interval algebra, nothing executes;
//   2. verifies the Table II schedule symbolically for every distinct
//      role split the grid produces, and cross-checks that the runtime
//      hazard checker (analysis::audit_schedule) agrees with the
//      symbolic checker on the same trace;
//   3. runs the SPL static verifier over the expression trees and
//      lowered programs of the shape's algorithm variants.
//
// `--inject MODE` seeds one deliberate defect into an otherwise valid
// model or trace and exits nonzero ONLY IF the static pass catches it
// (and, for schedule defects, the runtime checker agrees) — the CI wiring
// marks those invocations as must-fail, so a verifier that goes blind
// turns the build red.
//
// Exit codes: 0 = everything proven clean, 1 = violations (or an inject
// that was caught — the expected outcome under --inject), 2 = usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/hazard_checker.h"
#include "analysis/static_verify.h"
#include "common/types.h"
#include "fft/options.h"
#include "parallel/roles.h"
#include "spl/algorithms.h"
#include "spl/lower.h"
#include "spl/verify.h"
#include "tune/candidates.h"

using namespace bwfft;

namespace {

struct LintOptions {
  std::vector<std::vector<idx_t>> dims_list;
  int threads = 8;  // fixed default: the sweep must not depend on the host
  std::string inject;
  bool verbose = false;
};

struct LintTally {
  int configs_verified = 0;
  int configs_skipped = 0;
  int schedules_verified = 0;
  int spl_verified = 0;
  int violations = 0;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: bwfft_lint [--dims AxB[xC]]... [--threads N] [-v|--verbose]\n"
      "                  [--inject MODE]\n"
      "  Statically verifies every tuner candidate at the given shapes\n"
      "  (default: 64x64x64 32x64x128 48x48x48 256x256).\n"
      "  MODE: store-overlap | store-gap | missing-fence | epoch-alias |\n"
      "        schedule-half | schedule-dup  (seeded defect; exit 1 =\n"
      "        caught, the expected outcome)\n");
  return 2;
}

bool parse_dims(const char* s, std::vector<idx_t>* out) {
  out->clear();
  idx_t cur = 0;
  bool any = false;
  for (const char* p = s;; ++p) {
    if (*p >= '0' && *p <= '9') {
      cur = cur * 10 + (*p - '0');
      any = true;
    } else if (*p == 'x' || *p == '\0') {
      if (!any || cur <= 0) return false;
      out->push_back(cur);
      cur = 0;
      any = false;
      if (*p == '\0') break;
    } else {
      return false;
    }
  }
  return out->size() == 2 || out->size() == 3;
}

std::string dims_str(const std::vector<idx_t>& dims) {
  std::string s;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    s += (i ? "x" : "") + std::to_string(dims[i]);
  }
  return s;
}

/// The compute split the double-buffer engine would resolve for a
/// candidate (mirrors the engine's own default: even split, whole team
/// when p == 1).
int resolved_compute(int threads, int compute_threads) {
  if (compute_threads >= 0) return compute_threads;
  return threads <= 1 ? threads : threads / 2;
}

// ---------------------------------------------------------------------------
// Leg 1+2: the tuner grid, engine models, and schedule cross-check.
// ---------------------------------------------------------------------------

void lint_grid(const std::vector<idx_t>& dims, const LintOptions& opt,
               LintTally* tally) {
  FftOptions req;
  req.threads = opt.threads;
  const auto grid = tune::enumerate_candidates(dims, req);

  std::vector<int> splits_seen;
  for (const auto& c : grid) {
    const FftOptions opts = tune::apply_candidate(c, req);
    analysis::PlanModel model;
    std::string why;
    if (!analysis::build_plan_model(dims, opts, &model, &why)) {
      ++tally->configs_skipped;
      if (opt.verbose) {
        std::printf("  skip  %s %s: %s\n", dims_str(dims).c_str(),
                    tune::candidate_label(c).c_str(), why.c_str());
      }
      continue;
    }
    const analysis::StaticReport rep = analysis::verify_plan(model);
    if (!rep.ok()) {
      std::printf("FAIL  %s\n%s\n", model.label().c_str(), rep.str().c_str());
      tally->violations += static_cast<int>(rep.issues.size());
    } else {
      ++tally->configs_verified;
      if (opt.verbose) {
        std::printf("  ok    %s (%zu proofs)\n", model.label().c_str(),
                    rep.checks);
      }
    }

    // Schedule leg: one symbolic + runtime agreement pass per distinct
    // role split the grid produces (the schedule depends only on the
    // split, not on block/packet knobs).
    if (c.engine != EngineKind::DoubleBuffer) continue;
    const int pc = resolved_compute(opt.threads, c.compute_threads);
    bool seen = false;
    for (int s : splits_seen) seen = seen || s == pc;
    if (seen) continue;
    splits_seen.push_back(pc);
    const RolePlan roles = make_role_plan(opt.threads, pc, req.topo);
    for (idx_t iters : {idx_t{1}, idx_t{2}, idx_t{5}, idx_t{8}}) {
      const analysis::Trace trace = analysis::make_table2_trace(iters, roles);
      const analysis::HazardReport sym =
          analysis::verify_schedule_symbolic(trace, iters, roles);
      const analysis::HazardReport dyn =
          analysis::audit_schedule(trace, iters, roles);
      if (!sym.clean() || !dyn.clean()) {
        std::printf("FAIL  schedule p=%d pc=%d iters=%lld\n", opt.threads, pc,
                    static_cast<long long>(iters));
        if (!sym.clean()) std::printf("  symbolic: %s", sym.str().c_str());
        if (!dyn.clean()) std::printf("  runtime:  %s", dyn.str().c_str());
        ++tally->violations;
      } else {
        ++tally->schedules_verified;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Leg 3: SPL expression trees and lowered programs.
// ---------------------------------------------------------------------------

void lint_one_term(const char* name, const spl::ExprPtr& term,
                   const LintOptions& opt, LintTally* tally) {
  const spl::VerifyReport tr = spl::verify(*term);
  if (!tr.ok()) {
    std::printf("FAIL  spl term %s\n%s\n", name, tr.str().c_str());
    tally->violations += static_cast<int>(tr.issues.size());
    return;
  }
  const spl::Program prog = spl::lower(*term);
  const spl::VerifyReport pr = spl::verify(prog);
  if (!pr.ok()) {
    std::printf("FAIL  spl program %s\n%s\n", name, pr.str().c_str());
    tally->violations += static_cast<int>(pr.issues.size());
    return;
  }
  ++tally->spl_verified;
  if (opt.verbose) {
    std::printf("  ok    spl %s (%zu + %zu nodes)\n", name, tr.nodes,
                pr.nodes);
  }
}

/// Largest packet size in {8,4,2,1} dividing m — what packet resolution
/// would pick for the blocked variants.
idx_t pick_mu(idx_t m) {
  for (idx_t mu : {idx_t{8}, idx_t{4}, idx_t{2}}) {
    if (m % mu == 0) return mu;
  }
  return 1;
}

void lint_spl(const std::vector<idx_t>& dims, const LintOptions& opt,
              LintTally* tally) {
  if (dims.size() == 2) {
    const idx_t n = dims[0], m = dims[1];
    lint_one_term("dft2d_pencil", spl::dft2d_pencil(n, m), opt, tally);
    lint_one_term("dft2d_transposed", spl::dft2d_transposed(n, m), opt,
                  tally);
    lint_one_term("dft2d_blocked", spl::dft2d_blocked(n, m, pick_mu(m)), opt,
                  tally);
  } else {
    const idx_t k = dims[0], n = dims[1], m = dims[2];
    const idx_t mu = pick_mu(m);
    lint_one_term("dft3d_pencil", spl::dft3d_pencil(k, n, m), opt, tally);
    lint_one_term("dft3d_slab_pencil", spl::dft3d_slab_pencil(k, n, m), opt,
                  tally);
    lint_one_term("rotation_k", spl::rotation_k(k, n, m), opt, tally);
    lint_one_term("rotation_k_blocked",
                  spl::rotation_k_blocked(k, n, m, mu), opt, tally);
    lint_one_term("dft3d_rotated", spl::dft3d_rotated(k, n, m, mu), opt,
                  tally);
  }
}

// ---------------------------------------------------------------------------
// --inject: seed one defect; exit 1 only when the verifiers catch it.
// ---------------------------------------------------------------------------

/// A valid double-buffer model to corrupt: first default-config DB
/// candidate of the first shape. Dies if the model cannot be built — the
/// inject harness needs a working baseline.
bool inject_base_model(const LintOptions& opt, analysis::PlanModel* model) {
  FftOptions req;
  req.threads = opt.threads;
  req.engine = EngineKind::DoubleBuffer;
  std::string why;
  if (!analysis::build_plan_model(opt.dims_list.front(), req, model, &why)) {
    std::fprintf(stderr, "inject: cannot build baseline model: %s\n",
                 why.c_str());
    return false;
  }
  return true;
}

/// First stage with at least two store windows (every representative
/// shape has one; parts >= 2 needs threads >= 4 for the default split).
analysis::StageModel* corruptible_stage(analysis::PlanModel* model) {
  for (auto& st : model->stages) {
    if (st.stores.size() >= 2) return &st;
  }
  return nullptr;
}

int run_inject(const LintOptions& opt) {
  const std::string& mode = opt.inject;
  if (mode == "store-overlap" || mode == "store-gap" ||
      mode == "missing-fence" || mode == "epoch-alias") {
    analysis::PlanModel model;
    if (!inject_base_model(opt, &model)) return 2;
    analysis::StageModel* st = corruptible_stage(&model);
    if (st == nullptr) {
      std::fprintf(stderr, "inject: no stage with >= 2 store windows\n");
      return 2;
    }
    if (mode == "store-overlap") {
      // Rank 1 rewrites rank 0's window: overlap AND a gap where rank 1
      // should have written.
      st->stores[1].iv = st->stores[0].iv;
    } else if (mode == "store-gap") {
      st->stores.pop_back();
    } else if (mode == "missing-fence") {
      if (!st->nt_store) {
        std::fprintf(stderr, "inject: baseline stage is not NT\n");
        return 2;
      }
      st->fence_before_publish = false;
    } else {  // epoch-alias
      if (st->buf_loads.size() < 2) {
        std::fprintf(stderr, "inject: baseline stage is not pipelined with"
                             " >= 2 data ranks\n");
        return 2;
      }
      // Rank 1's load window collides with rank 0's pending store.
      st->buf_loads[1].iv = st->buf_stores[0].iv;
    }
    const analysis::StaticReport rep = analysis::verify_plan(model);
    std::printf("inject %s on %s:\n%s\n", mode.c_str(),
                model.label().c_str(), rep.str().c_str());
    if (rep.ok()) {
      std::printf("inject %s: NOT CAUGHT — the static pass is blind\n",
                  mode.c_str());
      return 0;  // must-fail CI wiring turns this into a red build
    }
    std::printf("inject %s: caught (%zu issues)\n", mode.c_str(),
                rep.issues.size());
    return 1;
  }

  if (mode == "schedule-half" || mode == "schedule-dup") {
    // A split with data threads: the Table II schedule, not the degraded
    // sequential one.
    FftOptions req;
    const int pc = resolved_compute(opt.threads, -1);
    const RolePlan roles = make_role_plan(opt.threads, pc, req.topo);
    if (roles.data == 0) {
      std::fprintf(stderr, "inject: need a split with data threads\n");
      return 2;
    }
    const idx_t iters = 4;
    analysis::Trace trace = analysis::make_table2_trace(iters, roles);
    if (mode == "schedule-half") {
      trace.front().half ^= 1;
    } else {
      trace.push_back(trace.front());
    }
    const analysis::HazardReport sym =
        analysis::verify_schedule_symbolic(trace, iters, roles);
    const analysis::HazardReport dyn =
        analysis::audit_schedule(trace, iters, roles);
    std::printf("inject %s: symbolic %s, runtime %s\n", mode.c_str(),
                sym.clean() ? "MISSED" : "caught",
                dyn.clean() ? "MISSED" : "caught");
    if (!sym.clean()) std::printf("%s\n", sym.str().c_str());
    // Both checkers must reject — a miss by either one (or a
    // disagreement) exits 0 and fails the must-fail CI assertion.
    return (!sym.clean() && !dyn.clean()) ? 1 : 0;
  }

  std::fprintf(stderr, "unknown inject mode '%s'\n", mode.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  LintOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--dims") && i + 1 < argc) {
      std::vector<idx_t> d;
      if (!parse_dims(argv[++i], &d)) return usage();
      opt.dims_list.push_back(std::move(d));
    } else if (!std::strcmp(a, "--threads") && i + 1 < argc) {
      opt.threads = std::atoi(argv[++i]);
      if (opt.threads < 1) return usage();
    } else if (!std::strcmp(a, "--inject") && i + 1 < argc) {
      opt.inject = argv[++i];
    } else if (!std::strcmp(a, "-v") || !std::strcmp(a, "--verbose")) {
      opt.verbose = true;
    } else {
      return usage();
    }
  }
  if (opt.dims_list.empty()) {
    opt.dims_list = {{64, 64, 64}, {32, 64, 128}, {48, 48, 48}, {256, 256}};
  }

  if (!opt.inject.empty()) return run_inject(opt);

  LintTally tally;
  for (const auto& dims : opt.dims_list) {
    std::printf("lint %s (threads=%d)\n", dims_str(dims).c_str(),
                opt.threads);
    lint_grid(dims, opt, &tally);
    lint_spl(dims, opt, &tally);
  }
  std::printf(
      "bwfft_lint: %d configurations proven, %d skipped, %d schedule "
      "traces cross-checked, %d SPL terms verified\n",
      tally.configs_verified, tally.configs_skipped,
      tally.schedules_verified, tally.spl_verified);
  if (tally.violations > 0) {
    std::printf("bwfft_lint: FAIL (%d violations)\n", tally.violations);
    return 1;
  }
  std::printf("bwfft_lint: CLEAN\n");
  return 0;
}
