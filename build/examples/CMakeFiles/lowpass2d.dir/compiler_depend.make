# Empty compiler generated dependencies file for lowpass2d.
# This may be replaced when dependencies are built.
