file(REMOVE_RECURSE
  "CMakeFiles/lowpass2d.dir/lowpass2d.cpp.o"
  "CMakeFiles/lowpass2d.dir/lowpass2d.cpp.o.d"
  "lowpass2d"
  "lowpass2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowpass2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
