# Empty dependencies file for spl_explorer.
# This may be replaced when dependencies are built.
