file(REMOVE_RECURSE
  "CMakeFiles/spl_explorer.dir/spl_explorer.cpp.o"
  "CMakeFiles/spl_explorer.dir/spl_explorer.cpp.o.d"
  "spl_explorer"
  "spl_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spl_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
