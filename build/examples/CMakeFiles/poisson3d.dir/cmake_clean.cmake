file(REMOVE_RECURSE
  "CMakeFiles/poisson3d.dir/poisson3d.cpp.o"
  "CMakeFiles/poisson3d.dir/poisson3d.cpp.o.d"
  "poisson3d"
  "poisson3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisson3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
