
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/convolution3d.cpp" "examples/CMakeFiles/convolution3d.dir/convolution3d.cpp.o" "gcc" "examples/CMakeFiles/convolution3d.dir/convolution3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fft/CMakeFiles/bwfft_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/spl/CMakeFiles/bwfft_spl.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/bwfft_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/benchutil/CMakeFiles/bwfft_benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/bwfft_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/fft1d/CMakeFiles/bwfft_fft1d.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bwfft_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/bwfft_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bwfft_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bwfft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
