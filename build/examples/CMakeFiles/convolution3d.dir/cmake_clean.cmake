file(REMOVE_RECURSE
  "CMakeFiles/convolution3d.dir/convolution3d.cpp.o"
  "CMakeFiles/convolution3d.dir/convolution3d.cpp.o.d"
  "convolution3d"
  "convolution3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolution3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
