# Empty dependencies file for convolution3d.
# This may be replaced when dependencies are built.
