# Empty compiler generated dependencies file for spectrum1d.
# This may be replaced when dependencies are built.
