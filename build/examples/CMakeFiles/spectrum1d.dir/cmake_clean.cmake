file(REMOVE_RECURSE
  "CMakeFiles/spectrum1d.dir/spectrum1d.cpp.o"
  "CMakeFiles/spectrum1d.dir/spectrum1d.cpp.o.d"
  "spectrum1d"
  "spectrum1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
