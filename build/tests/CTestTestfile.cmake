# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/spl_expr_test[1]_include.cmake")
include("/root/repo/build/tests/spl_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/fft1d_test[1]_include.cmake")
include("/root/repo/build/tests/engines_test[1]_include.cmake")
include("/root/repo/build/tests/dual_socket_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/spl_lower_test[1]_include.cmake")
include("/root/repo/build/tests/fft1d_split_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/engine_properties_test[1]_include.cmake")
include("/root/repo/build/tests/real_fft_test[1]_include.cmake")
include("/root/repo/build/tests/double_buffer_1d_test[1]_include.cmake")
include("/root/repo/build/tests/facade_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
