# Empty compiler generated dependencies file for engine_properties_test.
# This may be replaced when dependencies are built.
