# Empty dependencies file for dual_socket_test.
# This may be replaced when dependencies are built.
