file(REMOVE_RECURSE
  "CMakeFiles/dual_socket_test.dir/dual_socket_test.cpp.o"
  "CMakeFiles/dual_socket_test.dir/dual_socket_test.cpp.o.d"
  "dual_socket_test"
  "dual_socket_test.pdb"
  "dual_socket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_socket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
