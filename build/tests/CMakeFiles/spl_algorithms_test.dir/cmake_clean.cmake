file(REMOVE_RECURSE
  "CMakeFiles/spl_algorithms_test.dir/spl_algorithms_test.cpp.o"
  "CMakeFiles/spl_algorithms_test.dir/spl_algorithms_test.cpp.o.d"
  "spl_algorithms_test"
  "spl_algorithms_test.pdb"
  "spl_algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spl_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
