# Empty dependencies file for spl_algorithms_test.
# This may be replaced when dependencies are built.
