file(REMOVE_RECURSE
  "CMakeFiles/spl_expr_test.dir/spl_expr_test.cpp.o"
  "CMakeFiles/spl_expr_test.dir/spl_expr_test.cpp.o.d"
  "spl_expr_test"
  "spl_expr_test.pdb"
  "spl_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spl_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
