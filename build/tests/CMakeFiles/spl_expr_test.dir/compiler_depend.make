# Empty compiler generated dependencies file for spl_expr_test.
# This may be replaced when dependencies are built.
