file(REMOVE_RECURSE
  "CMakeFiles/spl_lower_test.dir/spl_lower_test.cpp.o"
  "CMakeFiles/spl_lower_test.dir/spl_lower_test.cpp.o.d"
  "spl_lower_test"
  "spl_lower_test.pdb"
  "spl_lower_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spl_lower_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
