# Empty dependencies file for spl_lower_test.
# This may be replaced when dependencies are built.
