file(REMOVE_RECURSE
  "CMakeFiles/fft1d_split_test.dir/fft1d_split_test.cpp.o"
  "CMakeFiles/fft1d_split_test.dir/fft1d_split_test.cpp.o.d"
  "fft1d_split_test"
  "fft1d_split_test.pdb"
  "fft1d_split_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft1d_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
