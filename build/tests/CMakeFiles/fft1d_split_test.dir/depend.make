# Empty dependencies file for fft1d_split_test.
# This may be replaced when dependencies are built.
