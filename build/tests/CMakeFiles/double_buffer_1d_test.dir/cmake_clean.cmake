file(REMOVE_RECURSE
  "CMakeFiles/double_buffer_1d_test.dir/double_buffer_1d_test.cpp.o"
  "CMakeFiles/double_buffer_1d_test.dir/double_buffer_1d_test.cpp.o.d"
  "double_buffer_1d_test"
  "double_buffer_1d_test.pdb"
  "double_buffer_1d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/double_buffer_1d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
