# Empty compiler generated dependencies file for double_buffer_1d_test.
# This may be replaced when dependencies are built.
