file(REMOVE_RECURSE
  "libbwfft_kernels.a"
)
