# Empty dependencies file for bwfft_kernels.
# This may be replaced when dependencies are built.
