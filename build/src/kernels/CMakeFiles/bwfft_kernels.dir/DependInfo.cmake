
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/codelets.cpp" "src/kernels/CMakeFiles/bwfft_kernels.dir/codelets.cpp.o" "gcc" "src/kernels/CMakeFiles/bwfft_kernels.dir/codelets.cpp.o.d"
  "/root/repo/src/kernels/twiddle.cpp" "src/kernels/CMakeFiles/bwfft_kernels.dir/twiddle.cpp.o" "gcc" "src/kernels/CMakeFiles/bwfft_kernels.dir/twiddle.cpp.o.d"
  "/root/repo/src/kernels/vecops.cpp" "src/kernels/CMakeFiles/bwfft_kernels.dir/vecops.cpp.o" "gcc" "src/kernels/CMakeFiles/bwfft_kernels.dir/vecops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bwfft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
