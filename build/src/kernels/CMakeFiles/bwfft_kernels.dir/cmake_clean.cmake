file(REMOVE_RECURSE
  "CMakeFiles/bwfft_kernels.dir/codelets.cpp.o"
  "CMakeFiles/bwfft_kernels.dir/codelets.cpp.o.d"
  "CMakeFiles/bwfft_kernels.dir/twiddle.cpp.o"
  "CMakeFiles/bwfft_kernels.dir/twiddle.cpp.o.d"
  "CMakeFiles/bwfft_kernels.dir/vecops.cpp.o"
  "CMakeFiles/bwfft_kernels.dir/vecops.cpp.o.d"
  "libbwfft_kernels.a"
  "libbwfft_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwfft_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
