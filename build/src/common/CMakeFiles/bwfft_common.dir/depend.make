# Empty dependencies file for bwfft_common.
# This may be replaced when dependencies are built.
