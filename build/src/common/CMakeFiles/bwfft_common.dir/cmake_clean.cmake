file(REMOVE_RECURSE
  "CMakeFiles/bwfft_common.dir/aligned.cpp.o"
  "CMakeFiles/bwfft_common.dir/aligned.cpp.o.d"
  "CMakeFiles/bwfft_common.dir/cpu.cpp.o"
  "CMakeFiles/bwfft_common.dir/cpu.cpp.o.d"
  "CMakeFiles/bwfft_common.dir/topology.cpp.o"
  "CMakeFiles/bwfft_common.dir/topology.cpp.o.d"
  "libbwfft_common.a"
  "libbwfft_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwfft_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
