file(REMOVE_RECURSE
  "libbwfft_common.a"
)
