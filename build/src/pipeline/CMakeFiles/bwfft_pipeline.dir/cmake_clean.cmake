file(REMOVE_RECURSE
  "CMakeFiles/bwfft_pipeline.dir/pipeline.cpp.o"
  "CMakeFiles/bwfft_pipeline.dir/pipeline.cpp.o.d"
  "libbwfft_pipeline.a"
  "libbwfft_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwfft_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
