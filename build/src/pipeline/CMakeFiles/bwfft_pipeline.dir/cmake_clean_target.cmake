file(REMOVE_RECURSE
  "libbwfft_pipeline.a"
)
