# Empty compiler generated dependencies file for bwfft_pipeline.
# This may be replaced when dependencies are built.
