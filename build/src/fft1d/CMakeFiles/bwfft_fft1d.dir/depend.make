# Empty dependencies file for bwfft_fft1d.
# This may be replaced when dependencies are built.
