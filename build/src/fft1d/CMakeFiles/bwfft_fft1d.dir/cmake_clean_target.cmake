file(REMOVE_RECURSE
  "libbwfft_fft1d.a"
)
