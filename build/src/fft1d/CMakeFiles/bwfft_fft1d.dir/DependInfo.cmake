
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fft1d/fft1d.cpp" "src/fft1d/CMakeFiles/bwfft_fft1d.dir/fft1d.cpp.o" "gcc" "src/fft1d/CMakeFiles/bwfft_fft1d.dir/fft1d.cpp.o.d"
  "/root/repo/src/fft1d/fft1d_split.cpp" "src/fft1d/CMakeFiles/bwfft_fft1d.dir/fft1d_split.cpp.o" "gcc" "src/fft1d/CMakeFiles/bwfft_fft1d.dir/fft1d_split.cpp.o.d"
  "/root/repo/src/fft1d/mixed_radix.cpp" "src/fft1d/CMakeFiles/bwfft_fft1d.dir/mixed_radix.cpp.o" "gcc" "src/fft1d/CMakeFiles/bwfft_fft1d.dir/mixed_radix.cpp.o.d"
  "/root/repo/src/fft1d/real.cpp" "src/fft1d/CMakeFiles/bwfft_fft1d.dir/real.cpp.o" "gcc" "src/fft1d/CMakeFiles/bwfft_fft1d.dir/real.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/bwfft_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bwfft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
