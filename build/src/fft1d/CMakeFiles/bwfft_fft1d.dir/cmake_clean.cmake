file(REMOVE_RECURSE
  "CMakeFiles/bwfft_fft1d.dir/fft1d.cpp.o"
  "CMakeFiles/bwfft_fft1d.dir/fft1d.cpp.o.d"
  "CMakeFiles/bwfft_fft1d.dir/fft1d_split.cpp.o"
  "CMakeFiles/bwfft_fft1d.dir/fft1d_split.cpp.o.d"
  "CMakeFiles/bwfft_fft1d.dir/mixed_radix.cpp.o"
  "CMakeFiles/bwfft_fft1d.dir/mixed_radix.cpp.o.d"
  "CMakeFiles/bwfft_fft1d.dir/real.cpp.o"
  "CMakeFiles/bwfft_fft1d.dir/real.cpp.o.d"
  "libbwfft_fft1d.a"
  "libbwfft_fft1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwfft_fft1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
