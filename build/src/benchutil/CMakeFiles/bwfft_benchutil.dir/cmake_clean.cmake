file(REMOVE_RECURSE
  "CMakeFiles/bwfft_benchutil.dir/metrics.cpp.o"
  "CMakeFiles/bwfft_benchutil.dir/metrics.cpp.o.d"
  "CMakeFiles/bwfft_benchutil.dir/table.cpp.o"
  "CMakeFiles/bwfft_benchutil.dir/table.cpp.o.d"
  "libbwfft_benchutil.a"
  "libbwfft_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwfft_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
