file(REMOVE_RECURSE
  "libbwfft_benchutil.a"
)
