
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchutil/metrics.cpp" "src/benchutil/CMakeFiles/bwfft_benchutil.dir/metrics.cpp.o" "gcc" "src/benchutil/CMakeFiles/bwfft_benchutil.dir/metrics.cpp.o.d"
  "/root/repo/src/benchutil/table.cpp" "src/benchutil/CMakeFiles/bwfft_benchutil.dir/table.cpp.o" "gcc" "src/benchutil/CMakeFiles/bwfft_benchutil.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bwfft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
