# Empty compiler generated dependencies file for bwfft_benchutil.
# This may be replaced when dependencies are built.
