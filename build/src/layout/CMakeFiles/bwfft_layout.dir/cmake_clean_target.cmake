file(REMOVE_RECURSE
  "libbwfft_layout.a"
)
