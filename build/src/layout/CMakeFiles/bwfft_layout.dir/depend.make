# Empty dependencies file for bwfft_layout.
# This may be replaced when dependencies are built.
