
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/format.cpp" "src/layout/CMakeFiles/bwfft_layout.dir/format.cpp.o" "gcc" "src/layout/CMakeFiles/bwfft_layout.dir/format.cpp.o.d"
  "/root/repo/src/layout/rotate.cpp" "src/layout/CMakeFiles/bwfft_layout.dir/rotate.cpp.o" "gcc" "src/layout/CMakeFiles/bwfft_layout.dir/rotate.cpp.o.d"
  "/root/repo/src/layout/stream_copy.cpp" "src/layout/CMakeFiles/bwfft_layout.dir/stream_copy.cpp.o" "gcc" "src/layout/CMakeFiles/bwfft_layout.dir/stream_copy.cpp.o.d"
  "/root/repo/src/layout/transpose.cpp" "src/layout/CMakeFiles/bwfft_layout.dir/transpose.cpp.o" "gcc" "src/layout/CMakeFiles/bwfft_layout.dir/transpose.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bwfft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
