file(REMOVE_RECURSE
  "CMakeFiles/bwfft_layout.dir/format.cpp.o"
  "CMakeFiles/bwfft_layout.dir/format.cpp.o.d"
  "CMakeFiles/bwfft_layout.dir/rotate.cpp.o"
  "CMakeFiles/bwfft_layout.dir/rotate.cpp.o.d"
  "CMakeFiles/bwfft_layout.dir/stream_copy.cpp.o"
  "CMakeFiles/bwfft_layout.dir/stream_copy.cpp.o.d"
  "CMakeFiles/bwfft_layout.dir/transpose.cpp.o"
  "CMakeFiles/bwfft_layout.dir/transpose.cpp.o.d"
  "libbwfft_layout.a"
  "libbwfft_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwfft_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
