file(REMOVE_RECURSE
  "libbwfft_spl.a"
)
