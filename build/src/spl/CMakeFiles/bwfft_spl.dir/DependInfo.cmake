
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spl/algorithms.cpp" "src/spl/CMakeFiles/bwfft_spl.dir/algorithms.cpp.o" "gcc" "src/spl/CMakeFiles/bwfft_spl.dir/algorithms.cpp.o.d"
  "/root/repo/src/spl/expr.cpp" "src/spl/CMakeFiles/bwfft_spl.dir/expr.cpp.o" "gcc" "src/spl/CMakeFiles/bwfft_spl.dir/expr.cpp.o.d"
  "/root/repo/src/spl/lower.cpp" "src/spl/CMakeFiles/bwfft_spl.dir/lower.cpp.o" "gcc" "src/spl/CMakeFiles/bwfft_spl.dir/lower.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bwfft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fft1d/CMakeFiles/bwfft_fft1d.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/bwfft_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bwfft_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
