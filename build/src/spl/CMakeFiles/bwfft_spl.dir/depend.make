# Empty dependencies file for bwfft_spl.
# This may be replaced when dependencies are built.
