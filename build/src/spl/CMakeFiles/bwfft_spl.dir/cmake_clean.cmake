file(REMOVE_RECURSE
  "CMakeFiles/bwfft_spl.dir/algorithms.cpp.o"
  "CMakeFiles/bwfft_spl.dir/algorithms.cpp.o.d"
  "CMakeFiles/bwfft_spl.dir/expr.cpp.o"
  "CMakeFiles/bwfft_spl.dir/expr.cpp.o.d"
  "CMakeFiles/bwfft_spl.dir/lower.cpp.o"
  "CMakeFiles/bwfft_spl.dir/lower.cpp.o.d"
  "libbwfft_spl.a"
  "libbwfft_spl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwfft_spl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
