file(REMOVE_RECURSE
  "libbwfft_fft.a"
)
