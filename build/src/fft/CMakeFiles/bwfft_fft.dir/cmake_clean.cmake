file(REMOVE_RECURSE
  "CMakeFiles/bwfft_fft.dir/double_buffer.cpp.o"
  "CMakeFiles/bwfft_fft.dir/double_buffer.cpp.o.d"
  "CMakeFiles/bwfft_fft.dir/double_buffer_1d.cpp.o"
  "CMakeFiles/bwfft_fft.dir/double_buffer_1d.cpp.o.d"
  "CMakeFiles/bwfft_fft.dir/dual_socket.cpp.o"
  "CMakeFiles/bwfft_fft.dir/dual_socket.cpp.o.d"
  "CMakeFiles/bwfft_fft.dir/fft.cpp.o"
  "CMakeFiles/bwfft_fft.dir/fft.cpp.o.d"
  "CMakeFiles/bwfft_fft.dir/pencil.cpp.o"
  "CMakeFiles/bwfft_fft.dir/pencil.cpp.o.d"
  "CMakeFiles/bwfft_fft.dir/reference.cpp.o"
  "CMakeFiles/bwfft_fft.dir/reference.cpp.o.d"
  "CMakeFiles/bwfft_fft.dir/slab_pencil.cpp.o"
  "CMakeFiles/bwfft_fft.dir/slab_pencil.cpp.o.d"
  "CMakeFiles/bwfft_fft.dir/stage_parallel.cpp.o"
  "CMakeFiles/bwfft_fft.dir/stage_parallel.cpp.o.d"
  "libbwfft_fft.a"
  "libbwfft_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwfft_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
