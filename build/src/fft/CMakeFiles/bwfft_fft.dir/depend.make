# Empty dependencies file for bwfft_fft.
# This may be replaced when dependencies are built.
