# Empty compiler generated dependencies file for bwfft_fft.
# This may be replaced when dependencies are built.
