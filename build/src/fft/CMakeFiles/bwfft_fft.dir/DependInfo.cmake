
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fft/double_buffer.cpp" "src/fft/CMakeFiles/bwfft_fft.dir/double_buffer.cpp.o" "gcc" "src/fft/CMakeFiles/bwfft_fft.dir/double_buffer.cpp.o.d"
  "/root/repo/src/fft/double_buffer_1d.cpp" "src/fft/CMakeFiles/bwfft_fft.dir/double_buffer_1d.cpp.o" "gcc" "src/fft/CMakeFiles/bwfft_fft.dir/double_buffer_1d.cpp.o.d"
  "/root/repo/src/fft/dual_socket.cpp" "src/fft/CMakeFiles/bwfft_fft.dir/dual_socket.cpp.o" "gcc" "src/fft/CMakeFiles/bwfft_fft.dir/dual_socket.cpp.o.d"
  "/root/repo/src/fft/fft.cpp" "src/fft/CMakeFiles/bwfft_fft.dir/fft.cpp.o" "gcc" "src/fft/CMakeFiles/bwfft_fft.dir/fft.cpp.o.d"
  "/root/repo/src/fft/pencil.cpp" "src/fft/CMakeFiles/bwfft_fft.dir/pencil.cpp.o" "gcc" "src/fft/CMakeFiles/bwfft_fft.dir/pencil.cpp.o.d"
  "/root/repo/src/fft/reference.cpp" "src/fft/CMakeFiles/bwfft_fft.dir/reference.cpp.o" "gcc" "src/fft/CMakeFiles/bwfft_fft.dir/reference.cpp.o.d"
  "/root/repo/src/fft/slab_pencil.cpp" "src/fft/CMakeFiles/bwfft_fft.dir/slab_pencil.cpp.o" "gcc" "src/fft/CMakeFiles/bwfft_fft.dir/slab_pencil.cpp.o.d"
  "/root/repo/src/fft/stage_parallel.cpp" "src/fft/CMakeFiles/bwfft_fft.dir/stage_parallel.cpp.o" "gcc" "src/fft/CMakeFiles/bwfft_fft.dir/stage_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fft1d/CMakeFiles/bwfft_fft1d.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/bwfft_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bwfft_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/bwfft_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bwfft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bwfft_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
