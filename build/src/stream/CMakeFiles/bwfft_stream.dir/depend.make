# Empty dependencies file for bwfft_stream.
# This may be replaced when dependencies are built.
