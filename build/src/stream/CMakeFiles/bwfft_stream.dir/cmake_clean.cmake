file(REMOVE_RECURSE
  "CMakeFiles/bwfft_stream.dir/stream.cpp.o"
  "CMakeFiles/bwfft_stream.dir/stream.cpp.o.d"
  "libbwfft_stream.a"
  "libbwfft_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwfft_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
