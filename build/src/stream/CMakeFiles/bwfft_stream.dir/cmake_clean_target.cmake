file(REMOVE_RECURSE
  "libbwfft_stream.a"
)
