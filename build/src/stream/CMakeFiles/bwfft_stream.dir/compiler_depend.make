# Empty compiler generated dependencies file for bwfft_stream.
# This may be replaced when dependencies are built.
