# Empty dependencies file for bwfft_parallel.
# This may be replaced when dependencies are built.
