file(REMOVE_RECURSE
  "CMakeFiles/bwfft_parallel.dir/affinity.cpp.o"
  "CMakeFiles/bwfft_parallel.dir/affinity.cpp.o.d"
  "CMakeFiles/bwfft_parallel.dir/roles.cpp.o"
  "CMakeFiles/bwfft_parallel.dir/roles.cpp.o.d"
  "CMakeFiles/bwfft_parallel.dir/team.cpp.o"
  "CMakeFiles/bwfft_parallel.dir/team.cpp.o.d"
  "libbwfft_parallel.a"
  "libbwfft_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwfft_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
