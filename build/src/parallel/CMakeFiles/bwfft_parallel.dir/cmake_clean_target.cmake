file(REMOVE_RECURSE
  "libbwfft_parallel.a"
)
