file(REMOVE_RECURSE
  "CMakeFiles/fig10_dual_socket.dir/fig10_dual_socket.cpp.o"
  "CMakeFiles/fig10_dual_socket.dir/fig10_dual_socket.cpp.o.d"
  "fig10_dual_socket"
  "fig10_dual_socket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dual_socket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
