# Empty dependencies file for fig10_dual_socket.
# This may be replaced when dependencies are built.
