file(REMOVE_RECURSE
  "CMakeFiles/stream_bw.dir/stream_bw.cpp.o"
  "CMakeFiles/stream_bw.dir/stream_bw.cpp.o.d"
  "stream_bw"
  "stream_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
