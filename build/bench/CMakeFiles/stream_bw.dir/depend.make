# Empty dependencies file for stream_bw.
# This may be replaced when dependencies are built.
