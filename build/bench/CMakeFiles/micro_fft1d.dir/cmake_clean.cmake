file(REMOVE_RECURSE
  "CMakeFiles/micro_fft1d.dir/micro_fft1d.cpp.o"
  "CMakeFiles/micro_fft1d.dir/micro_fft1d.cpp.o.d"
  "micro_fft1d"
  "micro_fft1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fft1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
