# Empty compiler generated dependencies file for micro_fft1d.
# This may be replaced when dependencies are built.
