file(REMOVE_RECURSE
  "CMakeFiles/ext_large1d.dir/ext_large1d.cpp.o"
  "CMakeFiles/ext_large1d.dir/ext_large1d.cpp.o.d"
  "ext_large1d"
  "ext_large1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_large1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
