# Empty compiler generated dependencies file for ext_large1d.
# This may be replaced when dependencies are built.
