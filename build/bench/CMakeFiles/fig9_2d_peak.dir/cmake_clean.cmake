file(REMOVE_RECURSE
  "CMakeFiles/fig9_2d_peak.dir/fig9_2d_peak.cpp.o"
  "CMakeFiles/fig9_2d_peak.dir/fig9_2d_peak.cpp.o.d"
  "fig9_2d_peak"
  "fig9_2d_peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_2d_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
