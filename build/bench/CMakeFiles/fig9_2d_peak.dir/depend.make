# Empty dependencies file for fig9_2d_peak.
# This may be replaced when dependencies are built.
