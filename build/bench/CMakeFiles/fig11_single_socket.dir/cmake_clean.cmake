file(REMOVE_RECURSE
  "CMakeFiles/fig11_single_socket.dir/fig11_single_socket.cpp.o"
  "CMakeFiles/fig11_single_socket.dir/fig11_single_socket.cpp.o.d"
  "fig11_single_socket"
  "fig11_single_socket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_single_socket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
