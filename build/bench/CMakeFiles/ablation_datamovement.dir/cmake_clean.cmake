file(REMOVE_RECURSE
  "CMakeFiles/ablation_datamovement.dir/ablation_datamovement.cpp.o"
  "CMakeFiles/ablation_datamovement.dir/ablation_datamovement.cpp.o.d"
  "ablation_datamovement"
  "ablation_datamovement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_datamovement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
