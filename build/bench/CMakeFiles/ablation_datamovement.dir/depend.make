# Empty dependencies file for ablation_datamovement.
# This may be replaced when dependencies are built.
