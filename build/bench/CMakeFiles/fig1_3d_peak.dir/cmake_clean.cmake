file(REMOVE_RECURSE
  "CMakeFiles/fig1_3d_peak.dir/fig1_3d_peak.cpp.o"
  "CMakeFiles/fig1_3d_peak.dir/fig1_3d_peak.cpp.o.d"
  "fig1_3d_peak"
  "fig1_3d_peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_3d_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
