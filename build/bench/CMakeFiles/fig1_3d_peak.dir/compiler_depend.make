# Empty compiler generated dependencies file for fig1_3d_peak.
# This may be replaced when dependencies are built.
