# Empty compiler generated dependencies file for bwfft_cli.
# This may be replaced when dependencies are built.
