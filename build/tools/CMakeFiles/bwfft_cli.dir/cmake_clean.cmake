file(REMOVE_RECURSE
  "CMakeFiles/bwfft_cli.dir/bwfft_cli.cpp.o"
  "CMakeFiles/bwfft_cli.dir/bwfft_cli.cpp.o.d"
  "bwfft_cli"
  "bwfft_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwfft_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
