# Sanitizer wiring for checked builds.
#
# Usage:  cmake -B build-asan -DBWFFT_SANITIZE="address;undefined"
#         cmake -B build-tsan -DBWFFT_SANITIZE=thread
#
# BWFFT_SANITIZE is a semicolon- (or comma-) separated subset of
# {address, undefined, leak, thread}. Combinations are validated: TSan is
# incompatible with ASan/LSan, so "thread" must appear alone or with
# "undefined". When any sanitizer is active:
#
#   * -fsanitize=... is applied to all compile and link steps, together
#     with -fno-omit-frame-pointer and -g for usable reports;
#   * every registered test gains the CTest label "sanitize", so
#     `ctest -L sanitize` runs the tier-1 suite under the instrumented
#     binaries;
#   * BWFFT_CHECKED defaults ON (see top-level CMakeLists.txt) so the
#     hazard checker / SPL verifier hooks run under the sanitizer too.
#
# Runtime suppressions live in suppressions/; tools/check.sh exports the
# matching ASAN_OPTIONS / UBSAN_OPTIONS / TSAN_OPTIONS automatically.

set(BWFFT_SANITIZE "" CACHE STRING
    "Sanitizers to build with: subset of address;undefined;leak;thread")

set(BWFFT_SANITIZE_ACTIVE FALSE)

if(BWFFT_SANITIZE)
  string(REPLACE "," ";" _bwfft_san_list "${BWFFT_SANITIZE}")
  list(REMOVE_DUPLICATES _bwfft_san_list)

  set(_bwfft_san_known address undefined leak thread)
  foreach(_s IN LISTS _bwfft_san_list)
    if(NOT _s IN_LIST _bwfft_san_known)
      message(FATAL_ERROR
        "BWFFT_SANITIZE: unknown sanitizer '${_s}' "
        "(expected a subset of: ${_bwfft_san_known})")
    endif()
  endforeach()

  if("thread" IN_LIST _bwfft_san_list)
    foreach(_bad address leak)
      if(_bad IN_LIST _bwfft_san_list)
        message(FATAL_ERROR
          "BWFFT_SANITIZE: 'thread' cannot be combined with '${_bad}' "
          "(TSan and ASan/LSan use incompatible shadow memory)")
      endif()
    endforeach()
  endif()

  string(JOIN "," _bwfft_san_joined ${_bwfft_san_list})
  message(STATUS "bwfft: building with -fsanitize=${_bwfft_san_joined}")

  add_compile_options(-fsanitize=${_bwfft_san_joined} -fno-omit-frame-pointer -g)
  add_link_options(-fsanitize=${_bwfft_san_joined})
  if("undefined" IN_LIST _bwfft_san_list)
    # Abort (and fail the test) on the first UB report instead of printing
    # and continuing; keeps `ctest -L sanitize` honest.
    add_compile_options(-fno-sanitize-recover=undefined)
  endif()
  if("thread" IN_LIST _bwfft_san_list)
    add_compile_definitions(BWFFT_TSAN=1)
  endif()

  set(BWFFT_SANITIZE_ACTIVE TRUE)
endif()
