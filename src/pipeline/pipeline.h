// Double-buffered software pipeline — the paper's core mechanism
// (§III-B/III-C, Table II, Fig 6).
//
// A stage of the multidimensional FFT is tiled into `iterations` blocks.
// Each block passes through three tasks:
//
//   Load    t[i mod 2] = R_{b,i} x        (data threads, streaming read)
//   Compute t[h] = (I_{b/m} (x) DFT_m) t[h]   (compute threads, in cache)
//   Store   y = W_{b,i} t[i mod 2]        (data threads, rotated NT write)
//
// Software pipelining skews the tasks across a double buffer t[0]/t[1] so
// that while the compute threads work on one half, the data threads retire
// the previous block and stream in the next (Table II):
//
//   step i:  data threads:    Store(i-2) then Load(i)   on t[i mod 2]
//            compute threads: Compute(i-1)              on t[(i+1) mod 2]
//            team barrier
//
// Steps 0..1 form the prologue, steps 2..iterations-1 the steady state and
// steps iterations..iterations+1 the epilogue. The store precedes the load
// on the same half and both are partitioned identically across the data
// threads, so no thread overwrites a region another is still storing.
//
// The shared buffer lives in the last-level cache: its total size follows
// the paper's policy b = LLC/2 (both halves together), leaving the rest of
// the LLC for twiddles and temporaries (§IV-A).
#pragma once

#include <functional>
#include <mutex>
#include <vector>

#include "common/aligned.h"
#include "common/topology.h"
#include "parallel/roles.h"
#include "parallel/team.h"

namespace bwfft {

/// Callbacks of one tiled stage. Each receives the block index, the buffer
/// half to use, and its partition (rank of `parts`); implementations must
/// touch only their partition so tasks can run concurrently.
struct PipelineStage {
  idx_t iterations = 0;
  std::function<void(idx_t iter, cplx* buf, int rank, int parts)> load;
  std::function<void(idx_t iter, cplx* buf, int rank, int parts)> compute;
  std::function<void(idx_t iter, const cplx* buf, int rank, int parts)> store;
};

class DoubleBufferPipeline {
 public:
  /// Schedule-trace event (tests validate the Table II schedule with it).
  struct TraceEvent {
    idx_t step;
    enum class Kind { Load, Compute, Store } kind;
    idx_t iter;
    int half;
    int tid;
  };

  /// `block_elems` is the size of ONE buffer half (= one block b); the
  /// pipeline allocates 2*block_elems for the two halves.
  DoubleBufferPipeline(ThreadTeam& team, RolePlan roles, idx_t block_elems);

  idx_t block_elems() const { return block_elems_; }
  const RolePlan& roles() const { return roles_; }

  /// Run one stage with full overlap (Table II). With no data threads in
  /// the role plan the stage degrades gracefully: compute threads execute
  /// load/compute/store back-to-back per iteration (no overlap).
  void execute(const PipelineStage& stage);

  /// Run the stage WITHOUT software pipelining: every step does
  /// load -> barrier -> compute -> barrier -> store with all threads
  /// cooperating on each task. Used by the overlap-ablation benchmark.
  void execute_unpipelined(const PipelineStage& stage);

  /// Record the schedule of subsequent execute() calls into `sink`
  /// (nullptr disables). Not for timed runs.
  void set_trace(std::vector<TraceEvent>* sink) { trace_ = sink; }

  /// Aggregate busy time per task kind over one execute() call, summed
  /// across the threads of each role group. busy/(wall * group size) is
  /// the utilisation of that role — the soft-DMA balance the thread-split
  /// ablation inspects.
  struct RoleUtilization {
    double wall_seconds = 0.0;
    double load_seconds = 0.0;     // data threads (or compute fallback)
    double store_seconds = 0.0;    // data threads (or compute fallback)
    double compute_seconds = 0.0;  // compute threads
  };

  /// Enable/disable utilisation collection (small timing overhead per
  /// task); results from the last execute() via last_utilization().
  void set_collect_utilization(bool on) { collect_util_ = on; }
  const RoleUtilization& last_utilization() const { return util_; }

 private:
  cplx* half(int h) { return buffer_.data() + h * block_elems_; }
  void record(idx_t step, TraceEvent::Kind kind, idx_t iter, int h, int tid);
  /// Team barrier with obs accounting (barrier-wait ns, 'B' slices).
  void wait_at_barrier(idx_t step);

  ThreadTeam& team_;
  RolePlan roles_;
  idx_t block_elems_;
  AlignedBuffer<cplx> buffer_;
  std::vector<TraceEvent>* trace_ = nullptr;
  std::mutex trace_mu_;
  bool collect_util_ = false;
  RoleUtilization util_;
};

/// The paper's buffer policy (§IV-A): the two halves together take half of
/// the LLC; returns the per-half block size in complex elements.
idx_t default_block_elems(const MachineTopology& topo);

}  // namespace bwfft
