#include "pipeline/pipeline.h"

#include <chrono>
#include <thread>

#include "common/error.h"
#include "common/timer.h"
#include "fault/fault.h"
#include "layout/stream_copy.h"
#include "obs/obs.h"

namespace bwfft {

DoubleBufferPipeline::DoubleBufferPipeline(ThreadTeam& team, RolePlan roles,
                                           idx_t block_elems)
    : team_(team),
      roles_(std::move(roles)),
      block_elems_(block_elems),
      // The shared double buffer is the hottest multi-MB allocation in
      // the system (every block passes through it twice); prefer huge
      // pages for it, degrading to plain aligned memory when they are
      // unavailable (fault site "alloc.huge").
      buffer_(static_cast<std::size_t>(2 * block_elems),
              AllocPlacement::HugePage) {
  BWFFT_CHECK(block_elems > 0, "pipeline block must be non-empty");
  BWFFT_CHECK(roles_.total == team.size(),
              "role plan size must match team size");
}

void DoubleBufferPipeline::wait_at_barrier([[maybe_unused]] idx_t step) {
#if defined(BWFFT_FAULT)
  // Straggler injector with epoch selection: "pipeline.stall/<step>=<ms>"
  // delays one thread at the chosen pipeline step (the @skip field picks
  // which of the arrivals at that step stalls). The team's stall watchdog
  // then diagnoses the loss as kStall instead of hanging.
  if (fault::active()) {
    std::int64_t delay_ms = 0;
    if (fault::should_fire_value(fault::kSitePipelineStall,
                                 static_cast<long long>(step), &delay_ms)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(delay_ms > 0 ? delay_ms : 1000));
    }
  }
#endif
  // One slice + BarrierWaitNs per thread per step: the wait time IS the
  // pipeline's load-imbalance signal (a starved role shows up here).
  BWFFT_OBS_TASK(obs_wait, "barrier", 'B', step, BarrierWaitNs);
  team_.barrier().arrive_and_wait();
}

void DoubleBufferPipeline::record(idx_t step, TraceEvent::Kind kind,
                                  idx_t iter, int h, int tid) {
  if (!trace_) return;
  std::lock_guard<std::mutex> lk(trace_mu_);
  trace_->push_back({step, kind, iter, h, tid});
}

void DoubleBufferPipeline::execute(const PipelineStage& stage) {
  BWFFT_CHECK(stage.iterations >= 1, "stage needs >= 1 iteration");
  const idx_t iters = stage.iterations;
  const bool util = collect_util_;
  if (util) util_ = RoleUtilization{};
  Timer wall;

  // Per-thread busy-time accumulation, merged under the trace mutex when
  // the thread finishes its run body.
  auto merge_util = [&](double load_s, double compute_s, double store_s) {
    if (!util) return;
    std::lock_guard<std::mutex> lk(trace_mu_);
    util_.load_seconds += load_s;
    util_.compute_seconds += compute_s;
    util_.store_seconds += store_s;
  };

  if (roles_.data == 0) {
    // No soft-DMA threads: sequential load/compute/store per iteration on
    // the compute group. Correct, but with no overlap.
    team_.run([&](int tid) {
      const int rank = roles_.group_rank(tid);
      const int parts = roles_.compute;
      double t_load = 0, t_comp = 0, t_store = 0;
      for (idx_t i = 0; i < iters; ++i) {
        cplx* buf = half(static_cast<int>(i % 2));
        Timer t;
        {
          BWFFT_OBS_TASK(obs_task, "load", 'L', i, LoadBusyNs);
          stage.load(i, buf, rank, parts);
        }
        t_load += t.seconds();
        record(i, TraceEvent::Kind::Load, i, static_cast<int>(i % 2), tid);
        wait_at_barrier(i);
        t.reset();
        {
          BWFFT_OBS_TASK(obs_task, "compute", 'C', i, ComputeBusyNs);
          stage.compute(i, buf, rank, parts);
        }
        t_comp += t.seconds();
        record(i, TraceEvent::Kind::Compute, i, static_cast<int>(i % 2), tid);
        wait_at_barrier(i);
        t.reset();
        {
          BWFFT_OBS_TASK(obs_task, "store", 'S', i, StoreBusyNs);
          stage.store(i, buf, rank, parts);
        }
        t_store += t.seconds();
        record(i, TraceEvent::Kind::Store, i, static_cast<int>(i % 2), tid);
        // The store may be non-temporal; drain the write-combining
        // buffers before the barrier publishes the output (the overlap
        // path fences every data step — this keeps the degraded path
        // under the same fence-pairing rule the static verifier proves).
        stream_fence();
        wait_at_barrier(i);
      }
      merge_util(t_load, t_comp, t_store);
    });
    if (util) util_.wall_seconds = wall.seconds();
    return;
  }

  // Table II schedule. Steps 0 .. iters+1; at step i the data threads
  // retire block i-2 and fetch block i on half (i mod 2) while the compute
  // threads transform block i-1 on the other half.
  team_.run([&](int tid) {
    const bool is_compute = roles_.is_compute(tid);
    const int rank = roles_.group_rank(tid);
    const int parts = is_compute ? roles_.compute : roles_.data;
    double t_load = 0, t_comp = 0, t_store = 0;
    for (idx_t step = 0; step < iters + 2; ++step) {
      if (!is_compute) {
        const int h = static_cast<int>(step % 2);
        if (step >= 2) {
          Timer t;
          {
            BWFFT_OBS_TASK(obs_task, "store", 'S', step - 2, StoreBusyNs);
            stage.store(step - 2, half(h), rank, parts);
          }
          t_store += t.seconds();
          record(step, TraceEvent::Kind::Store, step - 2, h, tid);
        }
        if (step < iters) {
          Timer t;
          {
            BWFFT_OBS_TASK(obs_task, "load", 'L', step, LoadBusyNs);
            stage.load(step, half(h), rank, parts);
          }
          t_load += t.seconds();
          record(step, TraceEvent::Kind::Load, step, h, tid);
        }
        // Make the streaming stores of this step globally visible before
        // the barrier hands the half back to the compute threads.
        stream_fence();
      } else {
        if (step >= 1 && step <= iters) {
          const int h = static_cast<int>((step + 1) % 2);
          Timer t;
          {
            BWFFT_OBS_TASK(obs_task, "compute", 'C', step - 1, ComputeBusyNs);
            stage.compute(step - 1, half(h), rank, parts);
          }
          t_comp += t.seconds();
          record(step, TraceEvent::Kind::Compute, step - 1, h, tid);
        }
      }
      wait_at_barrier(step);
    }
    merge_util(t_load, t_comp, t_store);
  });
  if (util) util_.wall_seconds = wall.seconds();
}

void DoubleBufferPipeline::execute_unpipelined(const PipelineStage& stage) {
  BWFFT_CHECK(stage.iterations >= 1, "stage needs >= 1 iteration");
  team_.run([&](int tid) {
    const int parts = roles_.total;
    for (idx_t i = 0; i < stage.iterations; ++i) {
      cplx* buf = half(0);
      stage.load(i, buf, tid, parts);
      wait_at_barrier(i);
      stage.compute(i, buf, tid, parts);
      wait_at_barrier(i);
      stage.store(i, buf, tid, parts);
      stream_fence();  // NT stores must be visible before the barrier
      wait_at_barrier(i);
    }
  });
}

idx_t default_block_elems(const MachineTopology& topo) {
  // Both halves together occupy LLC/2 (§IV-A): per-half block = LLC/4.
  return std::max<idx_t>(topo.shared_buffer_elems() / 2, 1);
}

}  // namespace bwfft
