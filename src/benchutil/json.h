// Minimal JSON value: build, serialize, parse.
//
// The bench trajectory (BENCH_*.json), the chrome-trace validator tests
// and tools/bench_report need machine-readable output without an external
// dependency, so this is a deliberately small subset: objects keep
// insertion order, numbers are doubles (exact for the int64 range the
// counters use in practice is NOT guaranteed — counters are serialized as
// integers when they fit), strings support the standard escapes. Parsing
// is strict recursive descent; any trailing junk is an error.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bwfft {

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}           // NOLINT
  Json(double d) : type_(Type::Number), num_(d) {}        // NOLINT
  Json(int v) : type_(Type::Number), num_(v) {}           // NOLINT
  Json(std::int64_t v)                                    // NOLINT
      : type_(Type::Number), num_(static_cast<double>(v)), int_(v),
        is_int_(true) {}
  Json(std::uint64_t v)                                   // NOLINT
      : type_(Type::Number), num_(static_cast<double>(v)),
        int_(static_cast<std::int64_t>(v)), is_int_(true) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::String), str_(s) {}             // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const { return bool_; }
  double as_double() const { return num_; }
  std::int64_t as_int() const {
    return is_int_ ? int_ : static_cast<std::int64_t>(num_);
  }
  const std::string& as_string() const { return str_; }
  const std::vector<Json>& items() const { return arr_; }

  /// Array append.
  void push_back(Json v) { arr_.push_back(std::move(v)); }
  std::size_t size() const { return arr_.size(); }
  const Json& operator[](std::size_t i) const { return arr_[i]; }

  /// Object set (insertion order preserved on dump).
  void set(const std::string& key, Json v);
  /// Object lookup; nullptr if absent or not an object.
  const Json* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  /// Serialize. `indent` > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  /// Strict parse of a complete document. Returns a Null value and sets
  /// *err on malformed input (when err != nullptr).
  static Json parse(const std::string& text, std::string* err = nullptr);
  static bool valid(const std::string& text, std::string* err = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool is_int_ = false;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace bwfft
