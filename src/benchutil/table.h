// Minimal fixed-width table printer for the figure harnesses, so each
// bench binary can emit the same rows/series the paper's plots show.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace bwfft {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add one row; cells are preformatted strings.
  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns to `os`.
  void print(std::ostream& os = std::cout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers for bench output.
std::string fmt_double(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace bwfft
