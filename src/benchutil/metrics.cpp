#include "benchutil/metrics.h"

#include <cmath>

namespace bwfft {

double fft_flops(double n_total) {
  return 5.0 * n_total * std::log2(n_total);
}

double fft_gflops(double n_total, double seconds) {
  return fft_flops(n_total) / seconds / 1e9;
}

double io_bound_seconds(double n_total, int nr_stages, double bandwidth_gbs) {
  const double bytes = 2.0 * n_total * nr_stages * sizeof(cplx);
  return bytes / (bandwidth_gbs * 1e9);
}

double achievable_peak_gflops(double n_total, int nr_stages,
                              double bandwidth_gbs) {
  return fft_flops(n_total) / io_bound_seconds(n_total, nr_stages,
                                               bandwidth_gbs) /
         1e9;
}

}  // namespace bwfft
