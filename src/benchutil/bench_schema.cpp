#include "benchutil/bench_schema.h"

#include <map>

namespace bwfft {

Json bench_report_to_json(const BenchReport& report) {
  Json doc = Json::object();
  doc.set("schema", kBenchSchemaName);
  doc.set("label", report.label);
  doc.set("stream_gbs", report.stream_gbs);
  Json results = Json::array();
  for (const BenchRow& row : report.rows) {
    Json r = Json::object();
    r.set("engine", row.engine);
    if (!row.resolved.empty()) r.set("resolved", row.resolved);
    Json dims = Json::array();
    for (idx_t d : row.dims) dims.push_back(static_cast<std::int64_t>(d));
    r.set("dims", std::move(dims));
    r.set("best_seconds", row.best_seconds);
    r.set("pseudo_gflops", row.pseudo_gflops);
    r.set("pct_of_peak", row.pct_of_peak);
    Json counters = Json::object();
    for (const auto& [name, value] : row.counters) counters.set(name, value);
    r.set("counters", std::move(counters));
    Json stages = Json::array();
    for (const BenchStage& s : row.stages) {
      Json stage = Json::object();
      stage.set("name", s.name);
      stage.set("seconds", s.seconds);
      stage.set("pct_of_peak", s.pct_of_peak);
      stages.push_back(std::move(stage));
    }
    r.set("stages", std::move(stages));
    results.push_back(std::move(r));
  }
  doc.set("results", std::move(results));
  return doc;
}

namespace {

bool fail(std::string* err, const std::string& msg) {
  if (err) *err = msg;
  return false;
}

bool require_number(const Json& obj, const char* key, std::string* err,
                    bool positive = false) {
  const Json* v = obj.find(key);
  if (!v || !v->is_number()) {
    return fail(err, std::string("missing or non-numeric '") + key + "'");
  }
  if (positive && v->as_double() <= 0.0) {
    return fail(err, std::string("'") + key + "' must be > 0");
  }
  return true;
}

}  // namespace

bool validate_bench_report(const Json& doc, std::string* err) {
  if (!doc.is_object()) return fail(err, "document is not an object");
  const Json* schema = doc.find("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != kBenchSchemaName) {
    return fail(err, std::string("schema must be \"") + kBenchSchemaName +
                         "\"");
  }
  const Json* label = doc.find("label");
  if (!label || !label->is_string() || label->as_string().empty()) {
    return fail(err, "missing or empty 'label'");
  }
  if (!require_number(doc, "stream_gbs", err, /*positive=*/true)) return false;
  const Json* results = doc.find("results");
  if (!results || !results->is_array() || results->size() == 0) {
    return fail(err, "missing or empty 'results' array");
  }
  for (std::size_t i = 0; i < results->size(); ++i) {
    const Json& row = (*results)[i];
    const std::string where = "results[" + std::to_string(i) + "]: ";
    std::string e;
    if (!row.is_object()) return fail(err, where + "not an object");
    const Json* engine = row.find("engine");
    if (!engine || !engine->is_string() || engine->as_string().empty()) {
      return fail(err, where + "missing or empty 'engine'");
    }
    if (const Json* resolved = row.find("resolved")) {
      if (!resolved->is_string() || resolved->as_string().empty()) {
        return fail(err, where + "'resolved' must be a non-empty string");
      }
    }
    const Json* dims = row.find("dims");
    if (!dims || !dims->is_array() || dims->size() < 1 || dims->size() > 3) {
      return fail(err, where + "'dims' must be an array of 1 to 3 sizes");
    }
    for (std::size_t d = 0; d < dims->size(); ++d) {
      if (!(*dims)[d].is_number() || (*dims)[d].as_int() < 1) {
        return fail(err, where + "'dims' entries must be positive integers");
      }
    }
    if (!require_number(row, "best_seconds", &e, /*positive=*/true) ||
        !require_number(row, "pseudo_gflops", &e, /*positive=*/true) ||
        !require_number(row, "pct_of_peak", &e)) {
      return fail(err, where + e);
    }
    const Json* counters = row.find("counters");
    if (!counters || !counters->is_object()) {
      return fail(err, where + "missing 'counters' object");
    }
    for (const auto& [name, value] : counters->members()) {
      if (!value.is_number() || value.as_double() < 0) {
        return fail(err, where + "counter '" + name + "' must be >= 0");
      }
    }
    const Json* stages = row.find("stages");
    if (!stages || !stages->is_array()) {
      return fail(err, where + "missing 'stages' array");
    }
    for (std::size_t s = 0; s < stages->size(); ++s) {
      const Json& stage = (*stages)[s];
      const Json* name = stage.find("name");
      if (!stage.is_object() || !name || !name->is_string()) {
        return fail(err, where + "stage entries need a string 'name'");
      }
      if (!require_number(stage, "seconds", &e, /*positive=*/true) ||
          !require_number(stage, "pct_of_peak", &e)) {
        return fail(err, where + "stage '" + name->as_string() + "': " + e);
      }
    }
  }
  if (err) err->clear();
  return true;
}

BenchReport bench_report_from_json(const Json& doc) {
  BenchReport report;
  if (const Json* label = doc.find("label")) report.label = label->as_string();
  if (const Json* bw = doc.find("stream_gbs")) {
    report.stream_gbs = bw->as_double();
  }
  const Json* results = doc.find("results");
  if (!results) return report;
  for (std::size_t i = 0; i < results->size(); ++i) {
    const Json& r = (*results)[i];
    BenchRow row;
    if (const Json* v = r.find("engine")) row.engine = v->as_string();
    if (const Json* v = r.find("resolved")) row.resolved = v->as_string();
    if (const Json* v = r.find("dims")) {
      for (std::size_t d = 0; d < v->size(); ++d) {
        row.dims.push_back(static_cast<idx_t>((*v)[d].as_int()));
      }
    }
    if (const Json* v = r.find("best_seconds")) {
      row.best_seconds = v->as_double();
    }
    if (const Json* v = r.find("pseudo_gflops")) {
      row.pseudo_gflops = v->as_double();
    }
    if (const Json* v = r.find("pct_of_peak")) row.pct_of_peak = v->as_double();
    if (const Json* v = r.find("counters")) {
      for (const auto& [name, value] : v->members()) {
        row.counters.emplace_back(
            name, static_cast<std::uint64_t>(value.as_int()));
      }
    }
    if (const Json* v = r.find("stages")) {
      for (std::size_t s = 0; s < v->size(); ++s) {
        const Json& stage = (*v)[s];
        BenchStage bs;
        if (const Json* n = stage.find("name")) bs.name = n->as_string();
        if (const Json* sec = stage.find("seconds")) {
          bs.seconds = sec->as_double();
        }
        if (const Json* pct = stage.find("pct_of_peak")) {
          bs.pct_of_peak = pct->as_double();
        }
        row.stages.push_back(std::move(bs));
      }
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::string bench_config_key(const BenchRow& row) {
  std::string key = row.engine;
  key += " ";
  for (std::size_t i = 0; i < row.dims.size(); ++i) {
    key += (i ? "x" : "") + std::to_string(row.dims[i]);
  }
  return key;
}

BenchCheckResult check_bench_regression(const BenchReport& baseline,
                                        const BenchReport& current,
                                        double tolerance_pct) {
  std::map<std::string, double> got;
  for (const BenchRow& row : current.rows) {
    // First row wins on a duplicate key — matches the trajectory table.
    got.emplace(bench_config_key(row), row.pct_of_peak);
  }
  BenchCheckResult result;
  const double keep = 1.0 - tolerance_pct / 100.0;
  for (const BenchRow& row : baseline.rows) {
    const std::string key = bench_config_key(row);
    if (row.pct_of_peak < kBenchCheckFloorPct) {
      ++result.skipped;
      continue;
    }
    const auto it = got.find(key);
    if (it == got.end()) {
      result.regressions.push_back({key, row.pct_of_peak, -1.0});
      continue;
    }
    ++result.compared;
    if (it->second < row.pct_of_peak * keep) {
      result.regressions.push_back({key, row.pct_of_peak, it->second});
    }
  }
  return result;
}

}  // namespace bwfft
