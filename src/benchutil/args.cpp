#include "benchutil/args.h"

#include <cerrno>
#include <cstdlib>

namespace bwfft::cli {

bool parse_int(const std::string& token, long long min_value, long long* out,
               std::string* err) {
  if (token.empty()) {
    if (err) *err = "empty numeric value";
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || errno == ERANGE) {
    if (err) *err = "'" + token + "' is not a valid integer";
    return false;
  }
  if (v < min_value) {
    if (err) {
      *err = "'" + token + "' is out of range (must be >= " +
             std::to_string(min_value) + ")";
    }
    return false;
  }
  *out = v;
  return true;
}

bool parse_double(const std::string& token, double min_value,
                  double max_value, double* out, std::string* err) {
  if (token.empty()) {
    if (err) *err = "empty numeric value";
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || errno == ERANGE ||
      !(v == v) /* NaN */ || v > 1e300 || v < -1e300) {
    if (err) *err = "'" + token + "' is not a valid number";
    return false;
  }
  if (v < min_value || v > max_value) {
    if (err) {
      *err = "'" + token + "' is out of range [" +
             std::to_string(min_value) + ", " + std::to_string(max_value) +
             "]";
    }
    return false;
  }
  *out = v;
  return true;
}

bool parse_dims(const std::string& token, std::vector<idx_t>* out,
                std::string* err) {
  std::vector<idx_t> dims;
  std::size_t pos = 0;
  while (pos <= token.size()) {
    std::size_t next = token.find('x', pos);
    if (next == std::string::npos) next = token.size();
    long long v = 0;
    if (!parse_int(token.substr(pos, next - pos), 1, &v, err)) {
      if (err) *err = "bad --dims '" + token + "': " + *err;
      return false;
    }
    dims.push_back(static_cast<idx_t>(v));
    pos = next + 1;
  }
  if (dims.size() > 3) {
    if (err) {
      *err = "bad --dims '" + token + "': expected 1 to 3 'x'-separated " +
             "dimensions, got " + std::to_string(dims.size());
    }
    return false;
  }
  *out = std::move(dims);
  return true;
}

bool valid_engine(const std::string& name) {
  return name == "dbuf" || name == "double-buffer" || name == "stagepar" ||
         name == "stage-parallel" || name == "slab" || name == "slab-pencil" ||
         name == "pencil" || name == "reference" || name == "auto";
}

bool valid_tune_level(const std::string& name) {
  return name == "estimate" || name == "measure" || name == "exhaustive";
}

bool valid_isa(const std::string& name) {
  // Mirrors kernels::isa_from_name without the dependency (this library
  // sits below the kernel layer): auto, scalar, avx2, avx512(+f alias).
  return name == "auto" || name == "scalar" || name == "avx2" ||
         name == "avx512" || name == "avx512f";
}

bool parse_args(const std::vector<std::string>& args, Options* out,
                std::string* err) {
  Options o;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](std::string* value) {
      if (i + 1 >= args.size()) {
        if (err) *err = arg + " requires a value";
        return false;
      }
      *value = args[++i];
      return true;
    };
    auto next_int = [&](long long min_value, long long* value) {
      std::string token;
      if (!next(&token)) return false;
      if (!parse_int(token, min_value, value, err)) {
        if (err) *err = "bad " + arg + ": " + *err;
        return false;
      }
      return true;
    };
    auto next_double = [&](double min_value, double max_value,
                           double* value) {
      std::string token;
      if (!next(&token)) return false;
      if (!parse_double(token, min_value, max_value, value, err)) {
        if (err) *err = "bad " + arg + ": " + *err;
        return false;
      }
      return true;
    };
    if (arg == "--dims") {
      std::string token;
      if (!next(&token)) return false;
      if (!parse_dims(token, &o.dims, err)) return false;
    } else if (arg == "--engine") {
      std::string token;
      if (!next(&token)) return false;
      if (!valid_engine(token)) {
        if (err) *err = "unknown engine '" + token + "'";
        return false;
      }
      o.engine = token;
    } else if (arg == "--threads") {
      long long v = 0;
      if (!next_int(1, &v)) return false;
      o.threads = static_cast<int>(v);
    } else if (arg == "--compute") {
      long long v = 0;
      if (!next_int(0, &v)) return false;
      o.compute = static_cast<int>(v);
    } else if (arg == "--block") {
      long long v = 0;
      if (!next_int(1, &v)) return false;
      o.block = static_cast<idx_t>(v);
    } else if (arg == "--mu") {
      long long v = 0;
      if (!next_int(1, &v)) return false;
      o.mu = static_cast<idx_t>(v);
    } else if (arg == "--reps") {
      long long v = 0;
      if (!next_int(1, &v)) return false;
      o.reps = static_cast<int>(v);
    } else if (arg == "--inverse") {
      o.inverse = true;
    } else if (arg == "--verify") {
      o.verify = true;
    } else if (arg == "--no-nt") {
      o.nontemporal = false;
    } else if (arg == "--stats") {
      o.stats = true;
    } else if (arg == "--verbose") {
      o.verbose = true;
    } else if (arg == "--dispatch") {
      o.dispatch = true;
    } else if (arg == "--isa") {
      std::string token;
      if (!next(&token)) return false;
      if (!valid_isa(token)) {
        if (err) {
          *err = "bad --isa '" + token +
                 "' (expected auto, scalar, avx2 or avx512)";
        }
        return false;
      }
      o.isa = token;
    } else if (arg == "--trace") {
      std::string token;
      if (!next(&token)) return false;
      if (token.empty()) {
        if (err) *err = "--trace requires a non-empty path";
        return false;
      }
      o.trace_path = token;
    } else if (arg == "--tune") {
      std::string token;
      if (!next(&token)) return false;
      if (!valid_tune_level(token)) {
        if (err) {
          *err = "bad --tune '" + token +
                 "' (expected estimate, measure or exhaustive)";
        }
        return false;
      }
      o.tune = token;
    } else if (arg == "--serve") {
      o.serve = true;
    } else if (arg == "--requests") {
      long long v = 0;
      if (!next_int(1, &v)) return false;
      o.requests = static_cast<int>(v);
    } else if (arg == "--producers") {
      long long v = 0;
      if (!next_int(1, &v)) return false;
      o.producers = static_cast<int>(v);
    } else if (arg == "--queue") {
      long long v = 0;
      if (!next_int(1, &v)) return false;
      o.queue_cap = static_cast<int>(v);
    } else if (arg == "--deadline-ms") {
      long long v = 0;
      if (!next_int(1, &v)) return false;
      o.deadline_ms = static_cast<int>(v);
    } else if (arg == "--quota-rate") {
      if (!next_double(0.0, 1e9, &o.quota_rate)) return false;
    } else if (arg == "--quota-burst") {
      if (!next_double(1.0, 1e9, &o.quota_burst)) return false;
    } else if (arg == "--integrity") {
      if (!next_double(0.0, 1.0, &o.integrity)) return false;
    } else if (arg == "--retries") {
      long long v = 0;
      if (!next_int(1, &v)) return false;
      o.retries = static_cast<int>(v);
    } else if (arg == "--batch-every") {
      long long v = 0;
      if (!next_int(0, &v)) return false;
      o.batch_every = static_cast<int>(v);
    } else if (arg == "--tenants") {
      long long v = 0;
      if (!next_int(1, &v)) return false;
      o.tenants = static_cast<int>(v);
    } else if (arg == "--wisdom") {
      std::string token;
      if (!next(&token)) return false;
      if (token.empty()) {
        if (err) *err = "--wisdom requires a non-empty path";
        return false;
      }
      o.wisdom_path = token;
    } else {
      if (err) *err = "unknown argument '" + arg + "'";
      return false;
    }
  }
  // --tune means "let the planner choose", which only the auto engine
  // does; an explicit conflicting --engine is rejected rather than
  // silently ignored (flag order must not matter).
  if (!o.tune.empty()) {
    if (o.engine != "auto" && o.engine != "dbuf") {
      // "dbuf" is the untouched default; a deliberate non-auto engine is
      // a contradiction with --tune.
      if (err) {
        *err = "--tune requires --engine auto (got '" + o.engine + "')";
      }
      return false;
    }
    o.engine = "auto";
  }
  *out = std::move(o);
  return true;
}

}  // namespace bwfft::cli
