#include "benchutil/json.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bwfft {

void Json::set(const std::string& key, Json v) {
  for (auto& [k, val] : obj_) {
    if (k == key) {
      val = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::Null:
      out += "null";
      break;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Type::Number: {
      char buf[40];
      if (is_int_) {
        std::snprintf(buf, sizeof(buf), "%" PRId64, int_);
      } else if (std::isfinite(num_)) {
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
      } else {
        std::snprintf(buf, sizeof(buf), "null");  // JSON has no inf/nan
      }
      out += buf;
      break;
    }
    case Type::String:
      append_escaped(out, str_);
      break;
    case Type::Array: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        append_newline_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::Object: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

struct Parser {
  const char* p;
  const char* end;
  std::string err;

  bool fail(const std::string& msg) {
    if (err.empty()) err = msg;
    return false;
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool literal(const char* lit) {
    const char* q = lit;
    const char* save = p;
    while (*q) {
      if (p >= end || *p != *q) {
        p = save;
        return fail(std::string("expected '") + lit + "'");
      }
      ++p;
      ++q;
    }
    return true;
  }

  bool parse_string(std::string* out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p >= end) return fail("truncated escape");
        switch (*p++) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (end - p < 4) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p++;
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad hex digit in \\u escape");
            }
            // Minimal UTF-8 encoding (no surrogate-pair handling; the
            // bench schema is ASCII).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out->push_back(c);
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_value(Json* out) {
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    switch (*p) {
      case '{': {
        ++p;
        *out = Json::object();
        skip_ws();
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (p >= end || *p != ':') return fail("expected ':'");
          ++p;
          Json v;
          if (!parse_value(&v)) return false;
          out->set(key, std::move(v));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++p;
        *out = Json::array();
        skip_ws();
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        for (;;) {
          Json v;
          if (!parse_value(&v)) return false;
          out->push_back(std::move(v));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Json(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        *out = Json(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = Json(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        *out = Json();
        return true;
      default: {
        // Number: validate the JSON grammar shape, convert with strtod.
        const char* start = p;
        if (p < end && *p == '-') ++p;
        if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) {
          return fail("invalid number");
        }
        while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
        bool integral = true;
        if (p < end && *p == '.') {
          integral = false;
          ++p;
          if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) {
            return fail("invalid fraction");
          }
          while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
        }
        if (p < end && (*p == 'e' || *p == 'E')) {
          integral = false;
          ++p;
          if (p < end && (*p == '+' || *p == '-')) ++p;
          if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) {
            return fail("invalid exponent");
          }
          while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
        }
        const std::string token(start, p);
        if (integral) {
          *out = Json(static_cast<std::int64_t>(
              std::strtoll(token.c_str(), nullptr, 10)));
        } else {
          *out = Json(std::strtod(token.c_str(), nullptr));
        }
        return true;
      }
    }
  }
};

}  // namespace

Json Json::parse(const std::string& text, std::string* err) {
  Parser parser{text.data(), text.data() + text.size(), {}};
  Json out;
  bool ok = parser.parse_value(&out);
  if (ok) {
    parser.skip_ws();
    if (parser.p != parser.end) {
      ok = parser.fail("trailing characters after document");
    }
  }
  if (!ok) {
    if (err) *err = parser.err;
    return Json();
  }
  if (err) err->clear();
  return out;
}

bool Json::valid(const std::string& text, std::string* err) {
  std::string e;
  Json v = parse(text, &e);
  if (err) *err = e;
  return e.empty();
}

}  // namespace bwfft
