// The BENCH_*.json schema — the machine-readable perf trajectory every
// PR appends to.
//
// Top level:
//   {
//     "schema": "bwfft-bench-v1",
//     "label": "PR2",                     // trajectory point
//     "stream_gbs": <measured STREAM bandwidth>,
//     "results": [ <row>... ]
//   }
// Row:
//   {
//     "engine": "double-buffer",
//     "resolved": "double-buffer",    // optional: what "auto" picked
//     "dims": [128, 128, 128],
//     "best_seconds": 0.0123,
//     "pseudo_gflops": 45.6,              // 5 N log2 N / best_seconds
//     "pct_of_peak": 78.9,                // vs STREAM achievable peak
//     "counters": {"bytes_loaded": ..., ...},   // obs counters, one run
//     "stages": [{"name": ..., "seconds": ..., "pct_of_peak": ...}, ...]
//   }
//
// build/validate live here (not in the bench binary) so tests and
// tools/bench_report share one definition of "valid".
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "benchutil/json.h"
#include "common/types.h"

namespace bwfft {

inline constexpr const char* kBenchSchemaName = "bwfft-bench-v1";

struct BenchStage {
  std::string name;
  double seconds = 0.0;
  double pct_of_peak = 0.0;
};

struct BenchRow {
  std::string engine;
  /// Concrete engine an "auto" row resolved to; empty for direct rows
  /// (serialized only when non-empty).
  std::string resolved;
  std::vector<idx_t> dims;
  double best_seconds = 0.0;
  double pseudo_gflops = 0.0;
  double pct_of_peak = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<BenchStage> stages;
};

struct BenchReport {
  std::string label;
  double stream_gbs = 0.0;
  std::vector<BenchRow> rows;
};

/// Serialize a report to the schema above.
Json bench_report_to_json(const BenchReport& report);

/// Validate a parsed document against the schema; false with a
/// diagnostic in *err on the first violation.
bool validate_bench_report(const Json& doc, std::string* err);

/// Decode a validated document (call validate_bench_report first).
BenchReport bench_report_from_json(const Json& doc);

// ---------------------------------------------------------------------------
// Perf-regression gate (bench_report --check): compare two reports row by
// row on the (engine, dims) key and flag every configuration whose
// pct-of-peak dropped by more than the tolerance. pct-of-peak is the
// compared metric (not wall time) so the gate survives runner-to-runner
// bandwidth differences: both sides are normalised by their own STREAM
// roofline.

/// The (engine, dims) configuration key, e.g. "double-buffer 64x64x64".
/// The `resolved` engine is deliberately not part of the key: an auto row
/// stays comparable across PRs even when the planner's pick changes.
std::string bench_config_key(const BenchRow& row);

/// Baseline rows under this pct-of-peak are skipped: near the noise
/// floor a 50% "regression" is scheduler jitter, not a code change (the
/// dense reference rows live here by design).
inline constexpr double kBenchCheckFloorPct = 2.0;

struct BenchCheckIssue {
  std::string config;
  double baseline_pct = 0.0;
  /// Negative when the configuration vanished from the current report.
  double current_pct = -1.0;
};

struct BenchCheckResult {
  std::vector<BenchCheckIssue> regressions;
  int compared = 0;
  int skipped = 0;
  bool ok() const { return regressions.empty(); }
};

/// Flag every baseline configuration whose current pct-of-peak fell more
/// than `tolerance_pct` percent below the baseline value (relative drop:
/// current < baseline * (1 - tolerance/100)), or which is missing from
/// `current` entirely. Configurations only present in `current` are new
/// rows and never flagged.
BenchCheckResult check_bench_regression(const BenchReport& baseline,
                                        const BenchReport& current,
                                        double tolerance_pct);

}  // namespace bwfft
