// The BENCH_*.json schema — the machine-readable perf trajectory every
// PR appends to.
//
// Top level:
//   {
//     "schema": "bwfft-bench-v1",
//     "label": "PR2",                     // trajectory point
//     "stream_gbs": <measured STREAM bandwidth>,
//     "results": [ <row>... ]
//   }
// Row:
//   {
//     "engine": "double-buffer",
//     "resolved": "double-buffer",    // optional: what "auto" picked
//     "dims": [128, 128, 128],
//     "best_seconds": 0.0123,
//     "pseudo_gflops": 45.6,              // 5 N log2 N / best_seconds
//     "pct_of_peak": 78.9,                // vs STREAM achievable peak
//     "counters": {"bytes_loaded": ..., ...},   // obs counters, one run
//     "stages": [{"name": ..., "seconds": ..., "pct_of_peak": ...}, ...]
//   }
//
// build/validate live here (not in the bench binary) so tests and
// tools/bench_report share one definition of "valid".
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "benchutil/json.h"
#include "common/types.h"

namespace bwfft {

inline constexpr const char* kBenchSchemaName = "bwfft-bench-v1";

struct BenchStage {
  std::string name;
  double seconds = 0.0;
  double pct_of_peak = 0.0;
};

struct BenchRow {
  std::string engine;
  /// Concrete engine an "auto" row resolved to; empty for direct rows
  /// (serialized only when non-empty).
  std::string resolved;
  std::vector<idx_t> dims;
  double best_seconds = 0.0;
  double pseudo_gflops = 0.0;
  double pct_of_peak = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<BenchStage> stages;
};

struct BenchReport {
  std::string label;
  double stream_gbs = 0.0;
  std::vector<BenchRow> rows;
};

/// Serialize a report to the schema above.
Json bench_report_to_json(const BenchReport& report);

/// Validate a parsed document against the schema; false with a
/// diagnostic in *err on the first violation.
bool validate_bench_report(const Json& doc, std::string* err);

/// Decode a validated document (call validate_bench_report first).
BenchReport bench_report_from_json(const Json& doc);

}  // namespace bwfft
