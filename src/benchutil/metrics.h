// Performance metrics of the paper's evaluation (§V).
//
// Pseudo-Gflop/s uses the conventional 5 N log2 N flop estimate divided by
// wall time — proportional to inverse runtime, the accepted FFT metric.
// P_io is the "achievable peak": the rate of an FFT whose stages stream
// all data at the STREAM bandwidth with infinite compute:
//
//   P_io = 5 N log2(N) * BW / (2 * N * nr_stages * sizeof(cplx))
//
// (the paper writes sizeof(double) and separately notes the factor two for
// complex data; both accesses — read and write — per stage give the other
// factor two).
#pragma once

#include "common/types.h"

namespace bwfft {

/// 5 N log2 N — the pseudo flop count for an FFT of N total points.
double fft_flops(double n_total);

/// Pseudo-Gflop/s for an FFT of `n_total` points taking `seconds`.
double fft_gflops(double n_total, double seconds);

/// Achievable-peak pseudo-Gflop/s at the given STREAM bandwidth for an
/// algorithm making `nr_stages` full read+write round trips over the
/// `n_total` complex-double data set.
double achievable_peak_gflops(double n_total, int nr_stages,
                              double bandwidth_gbs);

/// Seconds a perfect streaming implementation would need (the roofline
/// time bound used for %-of-peak).
double io_bound_seconds(double n_total, int nr_stages, double bandwidth_gbs);

}  // namespace bwfft
