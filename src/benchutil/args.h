// Strict command-line parsing for bwfft_cli, refactored out of the tool
// so tests can drive it directly.
//
// The previous in-tool parser used std::atoll with no validation, so
// `--dims 0x0`, `--dims x128` or `--dims 12ax34` silently produced 0 or
// garbage dimensions and crashed (or divided by zero) deep inside plan
// construction. Every numeric token here must consume its whole string
// and land in an explicit validity range or the parse fails with a
// message naming the offending flag.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace bwfft::cli {

/// Parsed bwfft_cli options. Engine stays a (validated) string so this
/// header does not depend on the fft layer.
struct Options {
  std::vector<idx_t> dims{128, 128, 128};
  std::string engine = "dbuf";
  int threads = 0;    ///< 0 = topology default
  int compute = -1;   ///< -1 = even split
  idx_t block = 0;    ///< 0 = LLC/2 policy
  idx_t mu = 0;       ///< 0 = auto packet size
  int reps = 3;
  bool inverse = false;
  bool verify = false;
  bool nontemporal = true;
  bool stats = false;
  bool verbose = false;  ///< print the degradation / fault report
  bool dispatch = false; ///< print the kernel ISA dispatch report and exit
  std::string isa;       ///< --isa request; empty = auto (runtime dispatch)
  std::string trace_path;  ///< empty = no chrome-trace export
  std::string tune;        ///< --tune level; empty = no autotuning
  std::string wisdom_path; ///< --wisdom file; empty = no persistence
  bool serve = false;      ///< run the exec::BatchExecutor serving demo
  int requests = 64;       ///< --requests per --serve session
  int producers = 4;       ///< concurrent --serve submitter threads
  int queue_cap = 256;     ///< --queue submission-queue capacity
  int deadline_ms = 0;     ///< --deadline-ms per-request deadline; 0 = none
  double quota_rate = 0.0; ///< --quota-rate tokens/s per tenant; 0 = off
  double quota_burst = 16.0;  ///< --quota-burst token-bucket capacity
  double integrity = 0.0;  ///< --integrity sampled check fraction [0,1]
  int retries = 1;         ///< --retries total attempts per request
  int batch_every = 0;     ///< --batch-every: every Nth request rides the
                           ///< batch lane (0 = all interactive)
  int tenants = 1;         ///< --tenants distinct quota identities
};

/// Strict base-10 integer: the whole token must parse and the value must
/// be >= min_value (overflow is rejected). Returns false with a
/// diagnostic in *err.
bool parse_int(const std::string& token, long long min_value, long long* out,
               std::string* err);

/// Strict decimal floating-point value in [min_value, max_value]; the
/// whole token must parse (NaN/inf and trailing garbage are rejected).
bool parse_double(const std::string& token, double min_value,
                  double max_value, double* out, std::string* err);

/// Strict "N" / "KxN" / "KxNxM" dims parser: 1 to 3 'x'-separated
/// tokens, each a positive integer (one token is a huge-1D transform).
bool parse_dims(const std::string& token, std::vector<idx_t>* out,
                std::string* err);

/// Accepted --engine spellings (includes "auto").
bool valid_engine(const std::string& name);

/// Accepted --tune levels: estimate, measure, exhaustive.
bool valid_tune_level(const std::string& name);

/// Accepted --isa spellings: auto, scalar, avx2, avx512 (kernels/isa.h).
bool valid_isa(const std::string& name);

/// Parse the full argument vector (argv[1..argc)). On failure returns
/// false with a usage-ready message in *err; *out is unspecified.
bool parse_args(const std::vector<std::string>& args, Options* out,
                std::string* err);

}  // namespace bwfft::cli
