#include "benchutil/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace bwfft {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "  " << std::left << std::setw(static_cast<int>(width[c])) << cell;
    }
    os << "\n";
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < width.size(); ++c) {
    rule += "  " + std::string(width[c], '-');
  }
  os << rule << "\n";
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << 100.0 * fraction << "%";
  return os.str();
}

}  // namespace bwfft
