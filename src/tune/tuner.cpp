#include "tune/tuner.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "common/aligned.h"
#include "common/error.h"
#include "common/timer.h"
#include "fft/engine.h"
#include "kernels/isa.h"
#include "obs/obs.h"
#include "stream/stream.h"
#include "tune/wisdom.h"

namespace bwfft::tune {

namespace {

/// Candidates timed at Measure level on top of the model's top-K.
constexpr int kMeasureTopK = 3;

/// Time one candidate: plan once, one warm-up execute, then best of two
/// timed executes over a deterministic input. Returns a negative time
/// when the engine rejects the configuration.
double measure_candidate(const TuneCandidate& c,
                         const std::vector<idx_t>& dims, Direction dir,
                         const FftOptions& base) {
  idx_t total = 1;
  for (idx_t d : dims) total *= d;
  try {
    const FftOptions opts = apply_candidate(c, base);
    std::unique_ptr<MdEngine> engine = make_engine(dims, dir, opts);
    cvec in(static_cast<std::size_t>(total)), out(in.size());
    for (idx_t i = 0; i < total; ++i) {
      // Cheap non-constant fill; tuning compares configs, it does not
      // need spectral variety.
      in[static_cast<std::size_t>(i)] =
          cplx(static_cast<double>(i & 255) - 128.0,
               static_cast<double>((i >> 4) & 255) - 128.0);
    }
    const cvec original = in;
    engine->execute(in.data(), out.data());  // warm-up (touches pages)
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 2; ++rep) {
      std::copy(original.begin(), original.end(), in.begin());
      Timer t;
      engine->execute(in.data(), out.data());
      best = std::min(best, t.seconds());
    }
    BWFFT_OBS_COUNT(TuneMeasure, 1);
    return best;
  } catch (const Error&) {
    return -1.0;  // engine rejected the knob combination
  }
}

WisdomEntry entry_for(const std::vector<idx_t>& dims, Direction dir,
                      const std::string& fingerprint, const TuneReport& rep,
                      TuneLevel level) {
  WisdomEntry e;
  e.dims = dims;
  e.dir = dir;
  e.fingerprint = fingerprint;
  e.config = rep.chosen;
  e.seconds = rep.chosen.measured_seconds > 0.0 ? rep.chosen.measured_seconds
                                                : 0.0;
  e.level = level;
  return e;
}

}  // namespace

double ensure_bandwidth_calibrated() {
  if (!host_bandwidth_calibrated()) {
    calibrate_host_bandwidth(measured_stream_bandwidth_gbs());
  }
  return host_topology().stream_bw_gbs;
}

TuneReport tune_transform(const std::vector<idx_t>& dims, Direction dir,
                          const FftOptions& req) {
  TuneReport rep;
  // A caller-supplied topology with a real (non-placeholder) bandwidth is
  // trusted; the default host topology gets calibrated from STREAM once.
  MachineTopology topo = req.topo;
  if (!host_bandwidth_calibrated() &&
      topo.stream_bw_gbs == MachineTopology{}.stream_bw_gbs) {
    ensure_bandwidth_calibrated();
    topo.stream_bw_gbs = host_topology().stream_bw_gbs;
  }
  rep.stream_bw_gbs = topo.stream_bw_gbs;

  rep.candidates = enumerate_candidates(dims, req);
  BWFFT_CHECK(!rep.candidates.empty(), "no tuning candidates for transform");
  for (TuneCandidate& c : rep.candidates) {
    c.est_seconds = estimate_seconds(c, dims, topo, req.threads);
  }
  std::stable_sort(rep.candidates.begin(), rep.candidates.end(),
                   [](const TuneCandidate& a, const TuneCandidate& b) {
                     return a.est_seconds < b.est_seconds;
                   });

  if (req.tune_level == TuneLevel::Estimate) {
    rep.chosen = rep.candidates.front();
    return rep;
  }

  // Measured levels: time the selected subset and take the fastest that
  // actually planned. The default double-buffer config is always in the
  // measured set, so the winner is at worst the default.
  const int grid = static_cast<int>(rep.candidates.size());
  const int top_k = req.tune_level == TuneLevel::Exhaustive
                        ? grid
                        : std::min(kMeasureTopK, grid);
  const TuneCandidate baseline = default_candidate();
  bool baseline_measured = false;
  for (int i = 0; i < grid; ++i) {
    TuneCandidate& c = rep.candidates[static_cast<std::size_t>(i)];
    const bool is_baseline = same_config(c, baseline);
    if (i >= top_k && !(is_baseline && !baseline_measured)) continue;
    c.measured_seconds = measure_candidate(c, dims, dir, req);
    if (c.measured_seconds >= 0.0) ++rep.measured_count;
    if (is_baseline) baseline_measured = true;
  }
  if (!baseline_measured && req.engine == EngineKind::Auto) {
    // The grid can omit the exact baseline when the caller pinned a knob;
    // in the pure-Auto case it is always present, but guard anyway.
    TuneCandidate c = baseline;
    c.est_seconds = estimate_seconds(c, dims, topo, req.threads);
    c.measured_seconds = measure_candidate(c, dims, dir, req);
    if (c.measured_seconds >= 0.0) ++rep.measured_count;
    rep.candidates.push_back(c);
  }

  const TuneCandidate* best = nullptr;
  for (const TuneCandidate& c : rep.candidates) {
    if (c.measured_seconds < 0.0) continue;
    if (!best || c.measured_seconds < best->measured_seconds) best = &c;
  }
  // Every measured candidate can fail only if the engines reject the
  // whole grid, which the default config never is.
  BWFFT_CHECK(best != nullptr, "no tuning candidate could be planned");
  rep.chosen = *best;
  return rep;
}

FftOptions resolve_auto(const std::vector<idx_t>& dims, Direction dir,
                        const FftOptions& req, TuneReport* report) {
  BWFFT_CHECK(dims.size() >= 1 && dims.size() <= 3,
              "only 1D, 2D and 3D transforms are supported");
  // Wisdom keys compose the topology fingerprint with the ACTIVE ISA so
  // a config measured with AVX-512 kernels is never replayed onto a run
  // forced down to scalar (BWFFT_ISA / force_scalar) or vice versa.
  const std::string fingerprint =
      topology_fingerprint(req.topo) + "-" +
      kernels::isa_name(kernels::resolve_isa(req.isa));

  WisdomEntry remembered;
  if (global_wisdom_lookup(dims, dir, fingerprint, &remembered) &&
      static_cast<int>(remembered.level) >=
          static_cast<int>(req.tune_level)) {
    if (report) {
      TuneReport rep;
      rep.chosen = remembered.config;
      rep.chosen.measured_seconds =
          remembered.seconds > 0.0 ? remembered.seconds : -1.0;
      rep.from_wisdom = true;
      rep.stream_bw_gbs = req.topo.stream_bw_gbs;
      *report = std::move(rep);
    }
    return apply_candidate(remembered.config, req);
  }

  TuneReport rep = tune_transform(dims, dir, req);
  global_wisdom_record(entry_for(dims, dir, fingerprint, rep,
                                 req.tune_level));
  FftOptions resolved = apply_candidate(rep.chosen, req);
  if (report) *report = std::move(rep);
  BWFFT_CHECK(resolved.engine != EngineKind::Auto,
              "tuner must resolve to a concrete engine");
  return resolved;
}

}  // namespace bwfft::tune
