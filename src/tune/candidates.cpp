#include "tune/candidates.h"

#include <algorithm>
#include <cstdio>

#include <cmath>

#include "common/error.h"
#include "fft/stage.h"
#include "fft1d/large.h"
#include "kernels/isa.h"

namespace bwfft::tune {

namespace {

/// Fraction of each streamed cacheline actually used when moving
/// mu-element packets (mu = 0 means the auto cacheline packet).
double packet_efficiency(idx_t mu) {
  if (mu <= 0) mu = kMu;
  const double bytes = static_cast<double>(mu) * sizeof(cplx);
  return std::min(1.0, bytes / static_cast<double>(kCachelineBytes));
}

/// Strided pencil passes touch one element per cacheline.
constexpr double kStridedEfficiency =
    static_cast<double>(sizeof(cplx)) / kCachelineBytes;

/// Fraction of STREAM the double-buffer pipeline sustains at a perfectly
/// balanced split (the paper measures 74-92% of the achievable peak).
constexpr double kOverlapEfficiency = 0.85;

/// Per pipeline iteration fixed cost (barrier hand-off, task dispatch).
constexpr double kIterationOverheadSeconds = 4e-6;

/// Sustained per-core FFT arithmetic rate by instruction set, in GF/s —
/// deliberately coarse (the model ranks, it does not predict): one FMA
/// port's worth of scalar work, then the 4x / 8x lane widths discounted
/// for the shuffle/tail overhead of real kernels.
double isa_gflops_per_core(kernels::Isa isa) {
  switch (kernels::resolve_isa(isa)) {
    case kernels::Isa::Avx512: return 16.0;
    case kernels::Isa::Avx2: return 8.0;
    default: return 2.0;
  }
}

}  // namespace

TuneCandidate default_candidate() { return TuneCandidate{}; }

FftOptions apply_candidate(const TuneCandidate& c, FftOptions base) {
  base.engine = c.engine;
  base.compute_threads = c.compute_threads;
  base.block_elems = c.block_elems;
  base.packet_elems = c.packet_elems;
  base.factor_n1 = c.factor_n1;
  base.nontemporal = c.nontemporal;
  base.isa = c.isa;
  return base;
}

bool same_config(const TuneCandidate& a, const TuneCandidate& b) {
  return a.engine == b.engine && a.compute_threads == b.compute_threads &&
         a.block_elems == b.block_elems && a.packet_elems == b.packet_elems &&
         a.factor_n1 == b.factor_n1 && a.nontemporal == b.nontemporal &&
         a.isa == b.isa;
}

std::string candidate_label(const TuneCandidate& c) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s c=%d b=%lld mu=%lld f1=%lld nt=%d isa=%s",
                engine_name(c.engine), c.compute_threads,
                static_cast<long long>(c.block_elems),
                static_cast<long long>(c.packet_elems),
                static_cast<long long>(c.factor_n1),
                c.nontemporal ? 1 : 0, kernels::isa_name(c.isa));
  return buf;
}

namespace {

/// The 1D grid: engine x compute split x block x factorization x nt x
/// isa. The packet axis is absent — Fft1dLarge derives a packet per
/// factor — and in its place the four-step factorization is enumerated:
/// the near-square n1 plus the x2 / /2 skews that still divide n, so
/// measurement can catch hosts where an asymmetric split (cheaper column
/// gathers vs cheaper row scatters) wins.
std::vector<TuneCandidate> enumerate_candidates_1d(idx_t n,
                                                   const FftOptions& req) {
  const int p = req.threads > 0 ? req.threads : req.topo.total_threads();

  std::vector<EngineKind> engines;
  if (req.engine != EngineKind::Auto) {
    engines = {req.engine};
  } else {
    engines = {EngineKind::DoubleBuffer, EngineKind::StageParallel};
    // The naive-DIT baseline only plans at powers of two; never enumerate
    // a candidate the engine would reject.
    if (is_pow2(n)) engines.push_back(EngineKind::Pencil);
  }

  std::vector<idx_t> factors;
  if (req.factor_n1 > 0) {
    factors = {req.factor_n1};
  } else {
    const idx_t f0 = Fft1dLarge::choose_factors(n, 0).first;
    factors = {f0};
    if (f0 > 1) {
      for (idx_t skew : {f0 / 2, f0 * 2}) {
        if (skew >= 2 && skew != f0 && n % skew == 0 && n / skew >= 2) {
          factors.push_back(skew);
        }
      }
    }
  }

  std::vector<int> splits;
  if (req.compute_threads >= 0) {
    splits = {req.compute_threads};
  } else {
    splits = {-1};
    if (p >= 4 && (3 * p) / 4 < p) splits.push_back((3 * p) / 4);
  }

  std::vector<idx_t> blocks;
  if (req.block_elems > 0) {
    blocks = {req.block_elems};
  } else {
    blocks = {0};
    const idx_t policy = req.topo.shared_buffer_elems() / 2;
    const idx_t half = policy / 2;
    if (half > 0 && half < req.topo.shared_buffer_elems()) {
      blocks.push_back(half);
    }
  }

  const bool nt_values[] = {true, false};

  std::vector<kernels::Isa> isas;
  if (req.isa != kernels::Isa::Auto) {
    isas = {req.isa};
  } else {
    isas = {kernels::Isa::Auto};
    if (kernels::detected_isa() == kernels::Isa::Avx512) {
      isas.push_back(kernels::Isa::Avx2);
    }
  }

  std::vector<TuneCandidate> out;
  for (EngineKind e : engines) {
    const bool is_four_step = e == EngineKind::DoubleBuffer;
    const bool tunes_isa = e != EngineKind::Reference;
    for (int c : splits) {
      if (!is_four_step && c != splits.front()) continue;
      for (idx_t b : blocks) {
        if (!is_four_step && b != blocks.front()) continue;
        for (idx_t f : factors) {
          if (!is_four_step && f != factors.front()) continue;
          for (bool nt : nt_values) {
            if (!is_four_step && nt != nt_values[0]) continue;
            for (kernels::Isa isa : isas) {
              if (!tunes_isa && isa != isas.front()) continue;
              TuneCandidate cand;
              cand.engine = e;
              cand.compute_threads = is_four_step ? c : -1;
              cand.block_elems = is_four_step ? b : 0;
              cand.packet_elems = 0;
              cand.factor_n1 = is_four_step ? f : 0;
              cand.nontemporal = is_four_step ? nt : true;
              cand.isa = tunes_isa ? isa : kernels::Isa::Auto;
              out.push_back(cand);
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace

std::vector<TuneCandidate> enumerate_candidates(const std::vector<idx_t>& dims,
                                                const FftOptions& req) {
  BWFFT_CHECK(dims.size() >= 1 && dims.size() <= 3,
              "tuning supports 1D, 2D and 3D transforms");
  if (dims.size() == 1) return enumerate_candidates_1d(dims[0], req);
  const int p = req.threads > 0 ? req.threads : req.topo.total_threads();
  const idx_t m = dims.back();  // fast dimension: mu must divide it

  // Axis values. A knob the caller pinned collapses to that single value.
  std::vector<EngineKind> engines;
  if (req.engine != EngineKind::Auto) {
    engines = {req.engine};
  } else {
    engines = {EngineKind::DoubleBuffer, EngineKind::StageParallel,
               EngineKind::Pencil};
    if (dims.size() == 3) engines.push_back(EngineKind::SlabPencil);
  }

  std::vector<int> splits;  // double-buffer only; others ignore it
  if (req.compute_threads >= 0) {
    splits = {req.compute_threads};
  } else {
    splits = {-1};
    // More compute threads than data threads: for compute-heavy stages
    // the even split starves the FFT side (§IV-B discussion).
    if (p >= 4 && (3 * p) / 4 < p) splits.push_back((3 * p) / 4);
  }

  std::vector<idx_t> blocks;
  if (req.block_elems > 0) {
    blocks = {req.block_elems};
  } else {
    blocks = {0};
    // Half the policy block: twice the iterations, half the cache
    // footprint — wins when the LLC is shared with the application.
    const idx_t policy = req.topo.shared_buffer_elems() / 2;
    const idx_t half = policy / 2;
    if (half > 0 && half < req.topo.shared_buffer_elems()) {
      blocks.push_back(half);
    }
  }

  std::vector<idx_t> packets;
  if (req.packet_elems > 0) {
    packets = {req.packet_elems};
  } else {
    packets = {0};
    // Where the auto packet widens past the cacheline (AVX-512 dispatch,
    // see auto_packet_cap), keep the one-cacheline §III-A packet as an
    // explicit candidate so measurement can reject the wider packet on
    // hosts where it loses (e.g. under heavy downclocking).
    if (m % kMu == 0 && packet_size_for(m, auto_packet_cap()) != kMu) {
      packets.push_back(kMu);
    }
    // The element-wise (mu = 1) and half-cacheline variants of the
    // §III-A ablation, only where they divide the fast dimension.
    if (m % 2 == 0) packets.push_back(2);
    packets.push_back(1);
  }

  const bool nt_values[] = {true, false};

  // ISA axis: a pinned request collapses to itself; otherwise Auto (the
  // runtime-dispatched best) plus each strictly narrower SIMD set the
  // host can execute — measurement can then catch machines where the
  // widest vectors lose (AVX-512 downclocking). Scalar is never
  // enumerated: on these bandwidth-bound engines it can only tie.
  std::vector<kernels::Isa> isas;
  if (req.isa != kernels::Isa::Auto) {
    isas = {req.isa};
  } else {
    isas = {kernels::Isa::Auto};
    if (kernels::detected_isa() == kernels::Isa::Avx512) {
      isas.push_back(kernels::Isa::Avx2);
    }
  }

  std::vector<TuneCandidate> out;
  for (EngineKind e : engines) {
    const bool tunes_split = e == EngineKind::DoubleBuffer;
    const bool tunes_block = e == EngineKind::DoubleBuffer;
    const bool tunes_packet =
        e == EngineKind::DoubleBuffer || e == EngineKind::StageParallel;
    const bool tunes_nt =
        e == EngineKind::DoubleBuffer || e == EngineKind::StageParallel;
    const bool tunes_isa =
        e == EngineKind::DoubleBuffer || e == EngineKind::StageParallel;
    for (int c : splits) {
      if (!tunes_split && c != splits.front()) continue;
      for (idx_t b : blocks) {
        if (!tunes_block && b != blocks.front()) continue;
        for (idx_t mu : packets) {
          if (!tunes_packet && mu != packets.front()) continue;
          if (mu > 0 && m % mu != 0) continue;
          for (bool nt : nt_values) {
            if (!tunes_nt && nt != nt_values[0]) continue;
            for (kernels::Isa isa : isas) {
              if (!tunes_isa && isa != isas.front()) continue;
              TuneCandidate cand;
              cand.engine = e;
              cand.compute_threads = tunes_split ? c : -1;
              cand.block_elems = tunes_block ? b : 0;
              cand.packet_elems = tunes_packet ? mu : 0;
              cand.nontemporal = tunes_nt ? nt : true;
              cand.isa = tunes_isa ? isa : kernels::Isa::Auto;
              out.push_back(cand);
            }
          }
        }
      }
    }
  }
  return out;
}

double estimate_seconds(const TuneCandidate& c, const std::vector<idx_t>& dims,
                        const MachineTopology& topo, int threads) {
  double n = 1.0;
  for (idx_t d : dims) n *= static_cast<double>(d);
  const int rank = static_cast<int>(dims.size());
  const double bw = std::max(topo.stream_bw_gbs, 1e-3) * 1e9;  // bytes/s
  const double bytes = n * sizeof(cplx);  // one pass over the data, one way

  // Store-side traffic: without NT stores every streamed line is first
  // read for ownership, doubling the write cost (§IV-A).
  const double write = bytes * (c.nontemporal ? 1.0 : 2.0);
  const double mu_eff = packet_efficiency(c.packet_elems);

  if (rank == 1 && (c.engine == EngineKind::Pencil ||
                    c.engine == EngineKind::StageParallel ||
                    c.engine == EngineKind::DoubleBuffer)) {
    const idx_t len = dims[0];
    const double t = std::log2(std::max(2.0, n));

    // Flat Stockham: ping-pong between the array and its scratch once
    // per greedy radix-16 level; sizes whose working set (data +
    // scratch) stays LLC-resident collapse to one DRAM round trip.
    const auto flat_model = [&] {
      const double levels = std::max(1.0, std::ceil(t / 4.0));
      const double passes =
          4.0 * bytes <= static_cast<double>(topo.llc_bytes) ? 1.0 : levels;
      const double io = passes * (bytes + bytes) / bw;
      const double compute =
          5.0 * n * t / (isa_gflops_per_core(c.isa) * 1e9);
      return std::max(io, compute);
    };

    switch (c.engine) {
      case EngineKind::Pencil: {
        // Bit-reversal scatter at one element per cacheline, then
        // log2(n) in-place DIT sweeps over the whole array.
        const double bitrev = (bytes + bytes) / (bw * kStridedEfficiency);
        return bitrev + t * (bytes + bytes) / bw;
      }
      case EngineKind::StageParallel:
        return flat_model();
      case EngineKind::DoubleBuffer: {
        // Two software-pipelined passes (fft1d/large.h): packet-strided
        // column gathers + NT packet stores, then contiguous row loads +
        // packet-transposed scatters. This is the bandwidth term that
        // ranks the factorization axis: the packet widths (and so the
        // streamed-line utilisation) follow from each factor, and a
        // group that outgrows the pipeline block costs its cache
        // residency.
        const auto [f1, f2] = Fft1dLarge::choose_factors(len, c.factor_n1);
        if (f1 <= 1) return flat_model();  // degenerate split
        const int p = threads > 0 ? threads : topo.total_threads();
        const int pc =
            c.compute_threads >= 0
                ? std::clamp(c.compute_threads, 1, std::max(1, p - 1))
                : std::max(1, p / 2);
        const double cf = static_cast<double>(pc) / p;
        const double balance = std::max(0.1, 4.0 * cf * (1.0 - cf));
        const double eff = kOverlapEfficiency * balance;
        const idx_t mu1 = std::min(packet_size_for(f2), f2);
        const idx_t mu2 = std::min(packet_size_for(f1), f1);
        const idx_t block =
            c.block_elems > 0
                ? c.block_elems
                : std::max<idx_t>(1, topo.shared_buffer_elems() / 2);
        const double group =
            static_cast<double>(std::max(f1 * mu1, mu2 * f2));
        const double spill =
            std::max(1.0, group / static_cast<double>(block));
        const double io1 =
            (bytes + write) / (bw * packet_efficiency(mu1)) * spill;
        const double io2 =
            (bytes / bw + write / (bw * packet_efficiency(mu2))) * spill;
        const double rate =
            static_cast<double>(pc) * isa_gflops_per_core(c.isa) * 1e9;
        // 5 n log2(f) per pass plus ~6 flops/elem of twiddle diagonal.
        const double fl1 =
            5.0 * n * std::log2(std::max(2.0, static_cast<double>(f1))) +
            6.0 * n;
        const double fl2 =
            5.0 * n * std::log2(std::max(2.0, static_cast<double>(f2)));
        const double iters =
            2.0 * std::max(1.0, n / static_cast<double>(block));
        if (p <= 1) {
          // One thread runs load/compute/store sequentially: a pass
          // costs io + compute, with neither overlap nor the
          // starved-role balance penalty (cf = 1 would charge 10x).
          return io1 + fl1 / rate + io2 + fl2 / rate +
                 iters * kIterationOverheadSeconds;
        }
        return (std::max(io1, fl1 / rate) + std::max(io2, fl2 / rate)) /
                   eff +
               iters * kIterationOverheadSeconds;
      }
      default: break;
    }
  }

  switch (c.engine) {
    case EngineKind::Pencil: {
      // Stage 0 runs at unit stride; every later dimension walks the
      // array at its natural stride, one element per cacheline each way.
      const double stage0 = (bytes + bytes) / bw;
      const double strided = (bytes + bytes) / (bw * kStridedEfficiency);
      return stage0 + (rank - 1) * strided;
    }
    case EngineKind::StageParallel: {
      // Per stage: a unit-stride batch-FFT pass, then a full-array
      // rotation whose scatter moves mu-element packets.
      const double fft_pass = (bytes + write) / bw;
      const double rotate_pass = bytes / bw + write / (bw * mu_eff);
      return rank * (fft_pass + rotate_pass);
    }
    case EngineKind::SlabPencil: {
      // Per-slab 2D transform (two passes over the cube) then strided z
      // pencils. When a slab overflows the LLC the 2D stage pays its own
      // intermediate round trip.
      const double slab_bytes =
          static_cast<double>(dims[1]) * static_cast<double>(dims[2]) *
          sizeof(cplx);
      const double slab_passes =
          slab_bytes > static_cast<double>(topo.llc_bytes) ? 3.0 : 2.0;
      const double slab = slab_passes * (bytes + bytes) / bw;
      const double z = (bytes + bytes) / (bw * kStridedEfficiency);
      return slab + z;
    }
    case EngineKind::DoubleBuffer: {
      // Per stage the pipeline overlaps data movement with compute, so a
      // stage costs max(io, compute) at STREAM scaled by the overlap
      // efficiency of the compute/data split, plus a fixed pipeline cost
      // per block iteration. The compute term is what makes the model
      // dispatch-aware: 5 n log2(d) flops per stage against the per-core
      // rate of the candidate's resolved ISA.
      const int p = threads > 0 ? threads : topo.total_threads();
      const int pc = c.compute_threads >= 0
                         ? std::clamp(c.compute_threads, 1, std::max(1, p - 1))
                         : std::max(1, p / 2);
      const double cf = static_cast<double>(pc) / p;
      // 4 c (1 - c) is 1 at the even split and decays toward a
      // starved-role pipeline at the extremes.
      const double balance = std::max(0.1, 4.0 * cf * (1.0 - cf));
      const double eff = kOverlapEfficiency * balance;
      const idx_t block = c.block_elems > 0
                              ? c.block_elems
                              : std::max<idx_t>(1, topo.shared_buffer_elems() / 2);
      const double iters =
          std::max(1.0, n / static_cast<double>(block));
      const double compute_rate =
          static_cast<double>(pc) * isa_gflops_per_core(c.isa) * 1e9;
      double total = 0.0;
      for (idx_t d : dims) {
        const double io = bytes / bw + write / (bw * mu_eff);
        const double flops =
            5.0 * n * std::log2(std::max(2.0, static_cast<double>(d)));
        const double compute = flops / compute_rate;
        total += std::max(io, compute) / eff +
                 iters * kIterationOverheadSeconds;
      }
      return total;
    }
    case EngineKind::Reference:
      // O(n^2) per dimension: model the arithmetic, not the bandwidth.
      return [&] {
        double cost = 0.0;
        for (idx_t d : dims) cost += n * static_cast<double>(d);
        return cost / 1e9;
      }();
    case EngineKind::Auto:
      break;
  }
  throw Error("estimate_seconds: candidate engine must be concrete");
}

}  // namespace bwfft::tune
