#include "tune/wisdom.h"

#include <cstdio>
#include <mutex>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "fault/fault.h"

namespace bwfft::tune {

namespace {

int level_rank(TuneLevel level) { return static_cast<int>(level); }

const char* dir_name(Direction d) {
  return d == Direction::Forward ? "forward" : "inverse";
}

bool dir_from_name(const std::string& s, Direction* out) {
  if (s == "forward") {
    *out = Direction::Forward;
    return true;
  }
  if (s == "inverse") {
    *out = Direction::Inverse;
    return true;
  }
  return false;
}

/// Deeper wisdom wins: higher tune level, then faster measured time.
bool better_than(const WisdomEntry& a, const WisdomEntry& b) {
  if (level_rank(a.level) != level_rank(b.level)) {
    return level_rank(a.level) > level_rank(b.level);
  }
  if (a.seconds > 0.0 && b.seconds > 0.0) return a.seconds < b.seconds;
  return a.seconds > 0.0 && b.seconds <= 0.0;
}

bool entry_from_json(const Json& j, WisdomEntry* out) {
  if (!j.is_object()) return false;
  WisdomEntry e;
  const Json* dims = j.find("dims");
  if (!dims || !dims->is_array() || dims->size() < 1 || dims->size() > 3) {
    return false;
  }
  for (std::size_t i = 0; i < dims->size(); ++i) {
    if (!(*dims)[i].is_number() || (*dims)[i].as_int() < 1) return false;
    e.dims.push_back(static_cast<idx_t>((*dims)[i].as_int()));
  }
  const Json* dir = j.find("dir");
  if (!dir || !dir->is_string() || !dir_from_name(dir->as_string(), &e.dir)) {
    return false;
  }
  const Json* fp = j.find("fingerprint");
  if (!fp || !fp->is_string() || fp->as_string().empty()) return false;
  e.fingerprint = fp->as_string();
  const Json* engine = j.find("engine");
  if (!engine || !engine->is_string() ||
      !engine_kind_from_name(engine->as_string(), &e.config.engine) ||
      e.config.engine == EngineKind::Auto) {
    return false;
  }
  const Json* ct = j.find("compute_threads");
  if (!ct || !ct->is_number() || ct->as_int() < -1) return false;
  e.config.compute_threads = static_cast<int>(ct->as_int());
  const Json* block = j.find("block_elems");
  if (!block || !block->is_number() || block->as_int() < 0) return false;
  e.config.block_elems = static_cast<idx_t>(block->as_int());
  const Json* mu = j.find("packet_elems");
  if (!mu || !mu->is_number() || mu->as_int() < 0) return false;
  e.config.packet_elems = static_cast<idx_t>(mu->as_int());
  const Json* nt = j.find("nontemporal");
  if (!nt || !nt->is_bool()) return false;
  e.config.nontemporal = nt->as_bool();
  // Optional (absent in pre-1D wisdom files): missing means the
  // near-square policy (0).
  if (const Json* f1 = j.find("factor_n1")) {
    if (!f1->is_number() || f1->as_int() < 0) return false;
    e.config.factor_n1 = static_cast<idx_t>(f1->as_int());
  }
  // Optional (absent in pre-ISA wisdom files): missing means Auto.
  if (const Json* isa = j.find("isa")) {
    if (!isa->is_string() ||
        !kernels::isa_from_name(isa->as_string(), &e.config.isa)) {
      return false;
    }
  }
  const Json* seconds = j.find("seconds");
  if (!seconds || !seconds->is_number() || seconds->as_double() < 0.0) {
    return false;
  }
  e.seconds = seconds->as_double();
  const Json* level = j.find("level");
  if (!level || !level->is_string() ||
      !tune_level_from_name(level->as_string(), &e.level)) {
    return false;
  }
  *out = std::move(e);
  return true;
}

}  // namespace

std::string topology_fingerprint(const MachineTopology& topo) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "s%dc%dt%dllc%zu", topo.sockets,
                topo.cores_per_socket, topo.smt_per_core, topo.llc_bytes);
  return buf;
}

std::string Wisdom::key(const std::vector<idx_t>& dims, Direction dir,
                        const std::string& fingerprint) {
  std::string k;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    k += (i ? "x" : "") + std::to_string(dims[i]);
  }
  k += dir == Direction::Forward ? ":f:" : ":i:";
  k += fingerprint;
  return k;
}

const WisdomEntry* Wisdom::lookup(const std::vector<idx_t>& dims,
                                  Direction dir,
                                  const std::string& fingerprint) const {
  const auto it = entries_.find(key(dims, dir, fingerprint));
  return it == entries_.end() ? nullptr : &it->second;
}

void Wisdom::record(const WisdomEntry& entry) {
  const std::string k = key(entry.dims, entry.dir, entry.fingerprint);
  const auto it = entries_.find(k);
  if (it == entries_.end() || better_than(entry, it->second)) {
    entries_[k] = entry;
  }
}

void Wisdom::merge(const Wisdom& other) {
  for (const auto& [k, entry] : other.entries_) record(entry);
}

Json Wisdom::to_json() const {
  Json doc = Json::object();
  doc.set("schema", kWisdomSchemaName);
  Json entries = Json::array();
  for (const auto& [k, e] : entries_) {
    Json j = Json::object();
    Json dims = Json::array();
    for (idx_t d : e.dims) dims.push_back(static_cast<std::int64_t>(d));
    j.set("dims", std::move(dims));
    j.set("dir", dir_name(e.dir));
    j.set("fingerprint", e.fingerprint);
    j.set("engine", engine_name(e.config.engine));
    j.set("compute_threads", static_cast<std::int64_t>(e.config.compute_threads));
    j.set("block_elems", static_cast<std::int64_t>(e.config.block_elems));
    j.set("packet_elems", static_cast<std::int64_t>(e.config.packet_elems));
    j.set("nontemporal", e.config.nontemporal);
    j.set("factor_n1", static_cast<std::int64_t>(e.config.factor_n1));
    j.set("isa", kernels::isa_name(e.config.isa));
    j.set("seconds", e.seconds);
    j.set("level", tune_level_name(e.level));
    entries.push_back(std::move(j));
  }
  doc.set("entries", std::move(entries));
  return doc;
}

bool Wisdom::from_json(const Json& doc, std::string* err, int* skipped) {
  if (!doc.is_object()) {
    if (err) *err = "wisdom document is not an object";
    return false;
  }
  const Json* schema = doc.find("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != kWisdomSchemaName) {
    if (err) {
      *err = std::string("wisdom schema must be \"") + kWisdomSchemaName +
             "\"";
    }
    return false;
  }
  const Json* entries = doc.find("entries");
  if (!entries || !entries->is_array()) {
    if (err) *err = "wisdom 'entries' must be an array";
    return false;
  }
  int dropped = 0;
  for (std::size_t i = 0; i < entries->size(); ++i) {
    WisdomEntry e;
    if (entry_from_json((*entries)[i], &e)) {
      record(e);
    } else {
      ++dropped;  // one corrupt entry must not poison the rest
    }
  }
  if (skipped) *skipped = dropped;
  if (err) err->clear();
  return true;
}

bool Wisdom::load_file(const std::string& path, std::string* err,
                       int* skipped) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[1 << 14];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    if (err) *err = "read error on " + path;
    return false;
  }
  if (BWFFT_FAULT_POINT(fault::kSiteWisdomCorrupt)) {
    // Injected on-disk corruption: truncate mid-document, as a torn
    // write from a crashed process without the atomic-rename path would.
    text.resize(text.size() / 2);
  }
  std::string parse_err;
  const Json doc = Json::parse(text, &parse_err);
  if (doc.is_null() && !parse_err.empty()) {
    if (err) *err = path + ": " + parse_err;
    return false;
  }
  if (!from_json(doc, err, skipped)) {
    if (err) *err = path + ": " + *err;
    return false;
  }
  return true;
}

bool Wisdom::save_file(const std::string& path, std::string* err) const {
  // Crash-safe: write `<path>.tmp`, flush it to disk, then atomically
  // rename over the destination. A crash between any two steps leaves
  // either the previous file or a stray .tmp — never a half-written
  // document at `path` itself.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    if (err) *err = "cannot write " + tmp;
    return false;
  }
  const std::string text = to_json().dump(2) + "\n";
  std::size_t want = text.size();
  const bool torn = BWFFT_FAULT_POINT(fault::kSiteWisdomTorn);
  if (torn) want /= 2;  // simulate a crash mid-write of the temp file
  bool ok = std::fwrite(text.data(), 1, want, f) == want;
  if (ok && !torn) {
    ok = std::fflush(f) == 0;
#ifndef _WIN32
    if (ok) ok = ::fsync(::fileno(f)) == 0;
#endif
  }
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed || torn) {
    // A real short write cleans up; the injected tear simulates a crash
    // and leaves the partial .tmp behind — loaders never look at it.
    if (!torn) std::remove(tmp.c_str());
    if (err) {
      *err = torn ? "injected torn write to " + tmp
                  : "short write to " + tmp;
    }
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (err) *err = "cannot rename " + tmp + " over " + path;
    return false;
  }
  return true;
}

bool load_wisdom_file_guarded(Wisdom* store, const std::string& path,
                              std::string* err, int* skipped) {
  // Probe first so a merely missing file is not treated as corruption.
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (!probe) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::fclose(probe);
  if (store->load_file(path, err, skipped)) return true;
  // The file exists but does not parse as wisdom: quarantine it so the
  // next run starts clean and re-tunes instead of tripping over it again.
  const std::string quarantine = path + ".corrupt";
  std::remove(quarantine.c_str());
  std::rename(path.c_str(), quarantine.c_str());
  fault::note_degrade("corrupt wisdom file quarantined; planner re-tunes");
  if (err) *err += " (quarantined to " + quarantine + ")";
  return false;
}

// ---------------------------------------------------------------------------
// Process-wide store

namespace {

struct GlobalWisdom {
  std::mutex mu;
  Wisdom wisdom;
};

GlobalWisdom& global_store() {
  static GlobalWisdom* g = new GlobalWisdom;  // leaked: usable at exit
  return *g;
}

}  // namespace

bool global_wisdom_lookup(const std::vector<idx_t>& dims, Direction dir,
                          const std::string& fingerprint, WisdomEntry* out) {
  GlobalWisdom& g = global_store();
  std::lock_guard<std::mutex> lk(g.mu);
  const WisdomEntry* e = g.wisdom.lookup(dims, dir, fingerprint);
  if (!e) return false;
  if (out) *out = *e;
  return true;
}

void global_wisdom_record(const WisdomEntry& entry) {
  GlobalWisdom& g = global_store();
  std::lock_guard<std::mutex> lk(g.mu);
  g.wisdom.record(entry);
}

void global_wisdom_merge(const Wisdom& other) {
  GlobalWisdom& g = global_store();
  std::lock_guard<std::mutex> lk(g.mu);
  g.wisdom.merge(other);
}

Wisdom global_wisdom_snapshot() {
  GlobalWisdom& g = global_store();
  std::lock_guard<std::mutex> lk(g.mu);
  return g.wisdom;
}

void global_wisdom_clear() {
  GlobalWisdom& g = global_store();
  std::lock_guard<std::mutex> lk(g.mu);
  g.wisdom.clear();
}

}  // namespace bwfft::tune
