// Thread-safe in-process plan cache — the serving-path primitive.
//
// Plan construction is expensive (twiddle tables, thread team spin-up,
// and for EngineKind::Auto a whole tuning pass), so a server handling
// many requests for the same transform must build the plan once and
// share it. PlanCache keys plans by (dims, direction, requested
// options — an Auto request stays keyed as Auto, so the tuning cost is
// paid once per shape) and hands out shared_ptr<CachedPlan>; entries are
// evicted LRU when either the plan count or the estimated byte footprint
// exceeds the configured limits. Evicted plans stay alive for the
// callers still holding them.
//
// Concurrency: lookups are serialised by one mutex, but plan
// construction happens outside it — concurrent callers of the same key
// wait on the entry being built instead of building duplicates, and
// callers of other keys proceed. Cache hits and misses are counted into
// the obs layer (plan_cache_hit / plan_cache_miss) as well as into local
// stats.
//
// CachedPlan::execute serialises executions of one plan internally:
// engines own scratch buffers and a thread team, so a shared plan must
// not run re-entrantly. Callers wanting execute-level parallelism across
// identical transforms should clone (acquire with distinct `variant`
// tags) rather than share.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/thread_safety.h"
#include "common/error.h"
#include "common/types.h"
#include "fft/engine.h"
#include "fft/fft.h"
#include "fft/options.h"

namespace bwfft::tune {

/// An immutable planned transform shared between callers. Execution is
/// internally serialised (one execute at a time per plan).
class CachedPlan {
 public:
  CachedPlan(std::vector<idx_t> dims, Direction dir,
             const FftOptions& requested);

  void execute(cplx* in, cplx* out);
  void execute_inplace(cplx* data);

  /// No-throw execute through the recovery policy (docs/INTERNALS.md §10):
  /// a stalled or lost worker rebuilds the engine with half the thread
  /// budget and retries; allocation failure falls back to the reference
  /// engine. Degradations are sticky — options() reports the
  /// configuration the plan has degraded to. Serialised like execute.
  Status try_execute(cplx* in, cplx* out, ExecReport* rep = nullptr);

  const std::vector<idx_t>& dims() const { return dims_; }
  Direction direction() const { return dir_; }
  /// The concrete options the engine was built with (Auto resolved).
  const FftOptions& options() const { return resolved_; }
  const char* engine_name() const { return engine_->name(); }
  idx_t total_elems() const { return total_; }

  /// Rough resident footprint used for the cache's byte bound: the
  /// engine's working arrays scale with the transform size (intermediate
  /// plus shared buffer), plus a fixed allowance for twiddles and team.
  std::size_t footprint_bytes() const;

 private:
  std::vector<idx_t> dims_;
  Direction dir_;
  // resolved_ and engine_ are written at construction and then only under
  // exec_mu_ (sticky degradation inside try_execute); the read-mostly
  // accessors options()/engine_name() stay lock-free by design, so the
  // two fields are deliberately not GUARDED_BY(exec_mu_).
  FftOptions resolved_;
  std::unique_ptr<MdEngine> engine_;
  idx_t total_ = 1;
  Mutex exec_mu_;
  cvec inplace_work_ BWFFT_GUARDED_BY(exec_mu_);  // sized by execute_inplace
};

class PlanCache {
 public:
  struct Limits {
    std::size_t max_plans = 32;
    std::size_t max_bytes = std::size_t{1} << 30;  // 1 GiB of plan state
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;  ///< targeted erase() calls (quarantine)
    std::size_t plans = 0;  ///< currently cached
    std::size_t bytes = 0;  ///< estimated footprint of cached plans
  };

  PlanCache();
  explicit PlanCache(Limits limits);

  /// The shared plan for a transform, building (and possibly tuning) it
  /// on first request. Throws what plan construction throws; waiters on
  /// a key whose build failed retry the construction themselves and
  /// observe the failure the same way.
  std::shared_ptr<CachedPlan> acquire(const std::vector<idx_t>& dims,
                                      Direction dir, FftOptions opts = {},
                                      const std::string& variant = "");

  /// Evict one specific entry — the quarantine hook of the exec watchdog
  /// (docs/INTERNALS.md §14). The plan stays alive for callers still
  /// holding it; the next acquire of the key rebuilds. An entry still
  /// building is left to its builder (erase returns false, like a miss).
  /// True when a completed entry was dropped.
  bool erase(const std::vector<idx_t>& dims, Direction dir,
             FftOptions opts = {}, const std::string& variant = "");

  Stats stats() const;
  void clear();
  void set_limits(Limits limits);

  /// Process-wide cache used by callers that do not manage their own.
  static PlanCache& global();

 private:
  struct Entry {
    std::shared_ptr<CachedPlan> plan;  // null while building
    bool building = true;
    bool failed = false;
    std::list<std::string>::iterator lru_pos;  // valid when !building
  };

  static std::string key_of(const std::vector<idx_t>& dims, Direction dir,
                            const FftOptions& opts,
                            const std::string& variant);
  /// Drop LRU entries until within limits. Caller holds mu_ (checked by
  /// the clang -Wthread-safety legs).
  void evict_locked() BWFFT_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar cv_;  // signalled when a building entry completes or is erased
  Limits limits_ BWFFT_GUARDED_BY(mu_);
  std::map<std::string, Entry> entries_ BWFFT_GUARDED_BY(mu_);
  /// front = most recently used
  std::list<std::string> lru_ BWFFT_GUARDED_BY(mu_);
  Stats stats_ BWFFT_GUARDED_BY(mu_);
};

}  // namespace bwfft::tune
