// Candidate configurations and the bandwidth cost model that ranks them.
//
// The paper's speedup is a configuration story: the right engine per
// machine (§V: FFTW itself switches to slab-pencil on the AMD boxes), the
// compute/data thread split, the pipeline block b (§IV-A), the rotation
// packet mu (§III-A) and non-temporal stores (§IV-A). The tuner
// enumerates that grid once per transform shape and ranks it with a cost
// model in the spirit of the roofline math in src/obs: every stage is a
// read + write round trip over the working set, so its time is
// bytes / (STREAM bandwidth x an efficiency factor) — strided access
// wastes cachelines, missing overlap serialises movement behind compute,
// write-allocate doubles store traffic without NT stores.
#pragma once

#include <string>
#include <vector>

#include "common/topology.h"
#include "common/types.h"
#include "fft/options.h"

namespace bwfft::tune {

/// One point of the tuning grid: the tunable subset of FftOptions plus
/// the model / measurement results for it.
struct TuneCandidate {
  EngineKind engine = EngineKind::DoubleBuffer;
  int compute_threads = -1;  ///< -1 = even split
  idx_t block_elems = 0;     ///< 0 = LLC/2 policy
  idx_t packet_elems = 0;    ///< 0 = auto (cacheline packet)
  idx_t factor_n1 = 0;       ///< 1D four-step split; 0 = near-square policy
  bool nontemporal = true;
  kernels::Isa isa = kernels::Isa::Auto;  ///< codelet ISA request

  double est_seconds = 0.0;       ///< cost-model estimate
  double measured_seconds = -1.0;  ///< wall time; < 0 = not measured
};

/// The untouched-defaults double-buffer config — the baseline the tuner
/// must never lose to (it is always part of the measured set).
TuneCandidate default_candidate();

/// Copy a candidate's knobs onto `base` (engine becomes concrete).
FftOptions apply_candidate(const TuneCandidate& c, FftOptions base);

/// True when two candidates denote the same configuration (results
/// ignored).
bool same_config(const TuneCandidate& a, const TuneCandidate& b);

/// Human-readable one-liner, e.g. "double-buffer c=-1 b=0 mu=0 nt=1
/// isa=auto".
std::string candidate_label(const TuneCandidate& c);

/// Enumerate the candidate grid for a transform shape: engine kind x
/// compute split x block size x packet size x non-temporal. Engines that
/// ignore a knob contribute one entry per remaining axis; slab-pencil is
/// 3D-only; the dense reference oracle is never a candidate. Knobs the
/// caller pinned in `req` (threads, explicit mu/block/compute) are
/// respected, shrinking the grid. 1D shapes swap the packet axis for the
/// four-step factorization axis (the near-square n1 plus its x2 / /2
/// skews, where they divide n); the naive-DIT baseline is enumerated
/// only at power-of-two sizes, where it can plan.
std::vector<TuneCandidate> enumerate_candidates(const std::vector<idx_t>& dims,
                                                const FftOptions& req);

/// Cost-model estimate in seconds for one candidate on `topo` (uses
/// topo.stream_bw_gbs — calibrate before estimating). Returns a finite
/// time for every enumerated candidate; knob combinations the engines
/// would reject are not enumerated in the first place.
double estimate_seconds(const TuneCandidate& c, const std::vector<idx_t>& dims,
                        const MachineTopology& topo, int threads);

}  // namespace bwfft::tune
