// Persistent planner wisdom — best-known configs per transform shape.
//
// FFTW-style: tuning is expensive (Measure executes candidate plans), so
// its result is remembered, keyed by (dims, direction, topology
// fingerprint), and can be serialized to a JSON file that survives the
// process. A wisdom-warmed plan construction skips measurement entirely.
// Files written by other machines merge harmlessly: the fingerprint keeps
// their entries from being applied here.
//
// Schema ("bwfft-wisdom-v1"):
//   {"schema": "bwfft-wisdom-v1",
//    "entries": [{"dims": [64,64,64], "dir": "forward",
//                 "fingerprint": "s1c8t1llc33554432",
//                 "engine": "double-buffer", "compute_threads": -1,
//                 "block_elems": 0, "packet_elems": 0,
//                 "nontemporal": true, "isa": "auto", "seconds": 1.2e-3,
//                 "level": "measure"}]}
//
// "isa" is optional (pre-ISA files omit it; missing parses as "auto").
// The tuner additionally suffixes the fingerprint with the active ISA
// ("...-avx512"), so entries measured under one dispatch state are not
// replayed under another.
//
// Loading tolerates damage: a malformed document fails the load without
// touching the in-memory store; malformed *entries* inside a valid
// document are skipped individually, so one corrupt line cannot poison
// the rest of the file.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "benchutil/json.h"
#include "common/topology.h"
#include "common/types.h"
#include "fft/options.h"
#include "tune/candidates.h"

namespace bwfft::tune {

inline constexpr const char* kWisdomSchemaName = "bwfft-wisdom-v1";

/// A remembered configuration: the candidate knobs plus how it was
/// obtained (tune level, measured time when the level executed plans).
struct WisdomEntry {
  std::vector<idx_t> dims;
  Direction dir = Direction::Forward;
  std::string fingerprint;
  TuneCandidate config;
  double seconds = 0.0;  ///< measured wall time; 0 = estimate-only
  TuneLevel level = TuneLevel::Estimate;
};

/// Key machines by what the planner depends on, not by name: socket /
/// core / SMT counts and LLC size. Bandwidth is deliberately excluded —
/// it varies a few percent run to run and would fracture the store.
std::string topology_fingerprint(const MachineTopology& topo);

/// In-memory wisdom store. Not internally synchronized; the process-wide
/// instance behind the global_wisdom_* helpers below is.
class Wisdom {
 public:
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Best-known entry for a transform shape; nullptr when unknown.
  const WisdomEntry* lookup(const std::vector<idx_t>& dims, Direction dir,
                            const std::string& fingerprint) const;

  /// Remember an entry. An existing entry for the same key is replaced
  /// only by deeper wisdom: a higher tune level, or the same level with a
  /// faster measured time.
  void record(const WisdomEntry& entry);

  /// Record every entry of `other` (same replace-only-with-better rule).
  void merge(const Wisdom& other);

  Json to_json() const;

  /// Parse `doc` and merge its entries into this store. A document that
  /// is not wisdom-shaped fails with *err and leaves the store untouched;
  /// individually malformed entries are skipped (their count is added to
  /// *skipped when given).
  bool from_json(const Json& doc, std::string* err, int* skipped = nullptr);

  /// load_file merges `path` into this store with from_json's tolerance;
  /// a missing or unreadable file and a corrupt document both return
  /// false with a diagnostic, leaving the store untouched.
  bool load_file(const std::string& path, std::string* err,
                 int* skipped = nullptr);

  /// Crash-safe save: writes `<path>.tmp`, fsyncs, then atomically
  /// renames over `path`, so a crash mid-save can never leave a torn
  /// document where loaders look.
  bool save_file(const std::string& path, std::string* err) const;

 private:
  static std::string key(const std::vector<idx_t>& dims, Direction dir,
                         const std::string& fingerprint);
  std::map<std::string, WisdomEntry> entries_;
};

/// Load with quarantine: like Wisdom::load_file, but a file that exists
/// and fails to parse is moved aside to `<path>.corrupt` so the next run
/// starts clean and re-tunes instead of tripping over it again. A merely
/// missing file is not quarantined. Returns false with the diagnostic on
/// any failure.
bool load_wisdom_file_guarded(Wisdom* store, const std::string& path,
                              std::string* err, int* skipped = nullptr);

/// Process-wide wisdom shared by every EngineKind::Auto resolution (a
/// mutex serialises access; safe from concurrent plan constructions).
bool global_wisdom_lookup(const std::vector<idx_t>& dims, Direction dir,
                          const std::string& fingerprint, WisdomEntry* out);
void global_wisdom_record(const WisdomEntry& entry);
void global_wisdom_merge(const Wisdom& other);
Wisdom global_wisdom_snapshot();
void global_wisdom_clear();

}  // namespace bwfft::tune
