#include "tune/plan_cache.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"
#include "layout/stream_copy.h"
#include "obs/obs.h"
#include "tune/tuner.h"

namespace bwfft::tune {

CachedPlan::CachedPlan(std::vector<idx_t> dims, Direction dir,
                       const FftOptions& requested)
    : dims_(std::move(dims)), dir_(dir), resolved_(requested) {
  // Resolve Auto here rather than inside make_engine so options()
  // reports the concrete configuration that actually runs.
  if (resolved_.engine == EngineKind::Auto) {
    resolved_ = resolve_auto(dims_, dir_, resolved_);
  }
  // Recovering construction: a spawn failure or placed-alloc exhaustion
  // degrades resolved_ (fewer threads, then the reference engine) instead
  // of failing the plan — a shared plan dying on a transient construction
  // failure would fail every waiter at once.
  engine_ = make_engine_recovering(dims_, dir_, resolved_);
  for (idx_t d : dims_) total_ *= d;
}

void CachedPlan::execute(cplx* in, cplx* out) {
  MutexLock lk(exec_mu_);
  engine_->execute(in, out);
}

void CachedPlan::execute_inplace(cplx* data) {
  MutexLock lk(exec_mu_);
  inplace_work_.resize(static_cast<std::size_t>(total_));
  engine_->execute(data, inplace_work_.data());
  copy_stream(data, inplace_work_.data(), total_, resolved_.nontemporal);
  if (resolved_.nontemporal) stream_fence();
}

Status CachedPlan::try_execute(cplx* in, cplx* out, ExecReport* rep) {
  MutexLock lk(exec_mu_);
  return try_execute_recovering(dims_, dir_, resolved_, engine_, in, out,
                                rep);
}

std::size_t CachedPlan::footprint_bytes() const {
  const std::size_t data = static_cast<std::size_t>(total_) * sizeof(cplx);
  return 2 * data + (std::size_t{1} << 20);
}

PlanCache::PlanCache() : PlanCache(Limits()) {}
PlanCache::PlanCache(Limits limits) : limits_(limits) {}

std::string PlanCache::key_of(const std::vector<idx_t>& dims, Direction dir,
                              const FftOptions& opts,
                              const std::string& variant) {
  std::string k;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    k += (i ? "x" : "") + std::to_string(dims[i]);
  }
  char buf[176];
  std::snprintf(buf, sizeof(buf),
                ":%c:e%d:t%d:c%d:b%lld:mu%lld:f1%lld:nt%d:lvl%d:pin%d:norm%d",
                dir == Direction::Forward ? 'f' : 'i',
                static_cast<int>(opts.engine), opts.threads,
                opts.compute_threads,
                static_cast<long long>(opts.block_elems),
                static_cast<long long>(opts.packet_elems),
                static_cast<long long>(opts.factor_n1),
                opts.nontemporal ? 1 : 0, static_cast<int>(opts.tune_level),
                (opts.pin_threads ? 1 : 0) | (opts.team_pool ? 2 : 0),
                opts.normalize_inverse ? 1 : 0);
  k += buf;
  if (!variant.empty()) k += ":" + variant;
  return k;
}

std::shared_ptr<CachedPlan> PlanCache::acquire(const std::vector<idx_t>& dims,
                                               Direction dir, FftOptions opts,
                                               const std::string& variant) {
  const std::string key = key_of(dims, dir, opts, variant);
  // The build happens outside mu_, so the function is three scoped
  // critical sections (find-or-reserve, record-failure, publish) instead
  // of one unique_lock with unlock/lock gaps — the scoped shape is what
  // the clang thread-safety analysis can follow.
  {
    MutexLock lk(mu_);
    for (;;) {
      auto it = entries_.find(key);
      if (it == entries_.end()) break;  // miss: build below
      Entry& e = it->second;
      if (e.building) {
        // Another caller is constructing this plan; share its result
        // rather than building a duplicate.
        for (;;) {
          auto again = entries_.find(key);
          if (again == entries_.end() || !again->second.building) break;
          cv_.wait(mu_);
        }
        continue;  // re-find: the build may have failed and been erased
      }
      ++stats_.hits;
      BWFFT_OBS_COUNT(PlanCacheHit, 1);
      lru_.erase(e.lru_pos);
      lru_.push_front(key);
      e.lru_pos = lru_.begin();
      return e.plan;
    }

    ++stats_.misses;
    BWFFT_OBS_COUNT(PlanCacheMiss, 1);
    entries_.emplace(key, Entry{});  // placeholder: building
  }

  std::shared_ptr<CachedPlan> plan;
  try {
    plan = std::make_shared<CachedPlan>(dims, dir, opts);
  } catch (...) {
    {
      MutexLock lk(mu_);
      entries_.erase(key);
    }
    cv_.notify_all();
    throw;
  }

  {
    MutexLock lk(mu_);
    Entry& e = entries_[key];
    e.plan = plan;
    e.building = false;
    lru_.push_front(key);
    e.lru_pos = lru_.begin();
    stats_.plans = entries_.size();
    stats_.bytes += plan->footprint_bytes();
    evict_locked();
  }
  cv_.notify_all();
  return plan;
}

bool PlanCache::erase(const std::vector<idx_t>& dims, Direction dir,
                      FftOptions opts, const std::string& variant) {
  const std::string key = key_of(dims, dir, opts, variant);
  MutexLock lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.building) return false;
  stats_.bytes -= it->second.plan->footprint_bytes();
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  ++stats_.invalidations;
  stats_.plans = entries_.size();
  return true;
}

void PlanCache::evict_locked() {
  // Walk from the LRU tail; skip entries still building (they are not in
  // lru_ anyway). Never evict the most recent entry: a cache whose
  // limits are smaller than one plan still has to serve that plan.
  while (lru_.size() > 1 && (entries_.size() > limits_.max_plans ||
                             stats_.bytes > limits_.max_bytes)) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    if (it == entries_.end()) continue;
    stats_.bytes -= it->second.plan->footprint_bytes();
    entries_.erase(it);
    ++stats_.evictions;
  }
  stats_.plans = entries_.size();
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lk(mu_);
  return stats_;
}

void PlanCache::clear() {
  MutexLock lk(mu_);
  // Entries under construction are owned by their builder; forget only
  // the completed ones.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.building) {
      ++it;
    } else {
      it = entries_.erase(it);
    }
  }
  lru_.clear();
  stats_.plans = entries_.size();
  stats_.bytes = 0;
}

void PlanCache::set_limits(Limits limits) {
  MutexLock lk(mu_);
  limits_ = limits;
  evict_locked();
}

PlanCache& PlanCache::global() {
  static PlanCache* cache = new PlanCache;  // leaked: usable at exit
  return *cache;
}

}  // namespace bwfft::tune
