// The planner/autotuner behind EngineKind::Auto.
//
// Three effort levels (FftOptions::tune_level):
//   Estimate   — rank the candidate grid with the bandwidth cost model
//                (candidates.h) and take the winner; never executes.
//   Measure    — additionally time the top-K model-ranked candidates plus
//                the default double-buffer config on warm-up executes and
//                take the fastest measured one. Because the default
//                config is always in the measured set, the chosen plan is
//                never slower than the default beyond timing noise.
//   Exhaustive — time every candidate in the grid.
//
// resolve_auto() is the facade entry point: wisdom first (a remembered
// config at a sufficient level skips all measurement), then a tuning
// pass whose result is recorded into the process-wide wisdom. The first
// tuning pass also calibrates host_topology().stream_bw_gbs from a real
// STREAM run (src/stream) unless a rate was already published.
#pragma once

#include <vector>

#include "common/types.h"
#include "fft/options.h"
#include "tune/candidates.h"

namespace bwfft::tune {

/// What the tuner did and saw — for reporting and tests.
struct TuneReport {
  TuneCandidate chosen;
  /// The full grid, sorted by cost-model estimate (best first). After a
  /// Measure/Exhaustive pass the measured_seconds of timed entries are
  /// filled in.
  std::vector<TuneCandidate> candidates;
  bool from_wisdom = false;  ///< wisdom hit: no ranking, no measuring
  int measured_count = 0;    ///< candidate configs actually executed
  double stream_bw_gbs = 0.0;  ///< bandwidth the cost model used
};

/// Make sure host_topology() reports a measured STREAM bandwidth: runs
/// src/stream once and publishes the rate unless one was already
/// calibrated. Returns the bandwidth in effect.
double ensure_bandwidth_calibrated();

/// One full tuning pass (enumerate, estimate, measure per `req.tune_level`,
/// choose). Ignores and does not touch wisdom.
TuneReport tune_transform(const std::vector<idx_t>& dims, Direction dir,
                          const FftOptions& req);

/// Resolve EngineKind::Auto to concrete options: wisdom lookup first
/// (a hit at >= the requested level is reused verbatim), else a
/// tune_transform pass recorded into the global wisdom. The returned
/// options never carry EngineKind::Auto.
FftOptions resolve_auto(const std::vector<idx_t>& dims, Direction dir,
                        const FftOptions& req, TuneReport* report = nullptr);

}  // namespace bwfft::tune
