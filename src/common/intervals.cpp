#include "common/intervals.h"

#include <algorithm>
#include <sstream>

namespace bwfft {

namespace {

constexpr std::size_t kMaxIssues = 32;

struct Run {
  idx_t begin;
  idx_t end;
  int owner;
};

const char* kind_name(IntervalIssue::Kind k) {
  switch (k) {
    case IntervalIssue::Kind::Overlap: return "overlap";
    case IntervalIssue::Kind::Gap: return "gap";
    case IntervalIssue::Kind::OutOfBounds: return "out-of-bounds";
  }
  return "?";
}

void add_issue(PartitionReport& rep, IntervalIssue::Kind kind, idx_t begin,
               idx_t end, int a, int b) {
  if (rep.issues.size() >= kMaxIssues) return;
  // Merge with the previous issue when it is the same defect continuing
  // (same kind and owners, abutting ranges) — a systematically shifted
  // partition otherwise produces one issue per run.
  if (!rep.issues.empty()) {
    IntervalIssue& last = rep.issues.back();
    if (last.kind == kind && last.owner_a == a && last.owner_b == b &&
        last.end == begin) {
      last.end = end;
      return;
    }
  }
  rep.issues.push_back({kind, begin, end, a, b});
}

}  // namespace

std::string StridedInterval::str() const {
  std::ostringstream os;
  if (count <= 1) {
    os << "[" << begin << ", " << begin + width << ")";
  } else {
    os << count << " x [" << begin << "+" << stride << "k, " << begin
       << "+" << stride << "k+" << width << ")";
  }
  return os.str();
}

std::string IntervalIssue::str() const {
  std::ostringstream os;
  os << "[" << kind_name(kind) << "] elements [" << begin << ", " << end
     << ")";
  if (kind == Kind::Overlap) {
    os << " written by owner " << owner_a;
    if (owner_b != owner_a) os << " and owner " << owner_b;
    else os << " twice";
  } else if (kind == Kind::OutOfBounds) {
    os << " outside the output (owner " << owner_a << ")";
  } else {
    os << " written by no owner";
  }
  return os.str();
}

std::string PartitionReport::str() const {
  std::ostringstream os;
  if (ok()) {
    os << "partition clean: " << runs << " runs cover " << covered << " of "
       << total << " elements";
    return os.str();
  }
  os << "partition: " << issues.size() << " issue(s)";
  if (issues.size() >= kMaxIssues) os << " (list capped)";
  os << " over " << runs << " runs, total " << total;
  for (const auto& i : issues) os << "\n  " << i.str();
  return os.str();
}

PartitionReport check_partition(const std::vector<OwnedWindow>& windows,
                                idx_t total, bool require_cover) {
  PartitionReport rep;
  rep.total = total;

  std::vector<Run> runs;
  for (const OwnedWindow& w : windows) {
    const StridedInterval& iv = w.iv;
    if (iv.width <= 0 || iv.count <= 0) continue;  // empty window
    if (iv.self_overlapping()) {
      // Runs collide with their successors; report the first collision
      // without expanding (the expansion below assumes sorted-disjoint
      // runs within one interval only for the merge fast path).
      add_issue(rep, IntervalIssue::Kind::Overlap, iv.begin + iv.stride,
                iv.begin + iv.width, w.owner, w.owner);
    }
    if (iv.count > 1 && iv.stride == iv.width) {
      // Abutting runs are one contiguous range — common for row chunks
      // expressed as per-row intervals.
      runs.push_back({iv.begin, iv.begin + iv.width * iv.count, w.owner});
      rep.runs += 1;
      continue;
    }
    for (idx_t i = 0; i < iv.count; ++i) {
      const idx_t b = iv.begin + i * iv.stride;
      runs.push_back({b, b + iv.width, w.owner});
    }
    rep.runs += static_cast<std::size_t>(iv.count);
  }

  std::sort(runs.begin(), runs.end(), [](const Run& a, const Run& b) {
    if (a.begin != b.begin) return a.begin < b.begin;
    return a.end < b.end;
  });

  // Sweep left to right. `frontier` is the rightmost end seen so far and
  // `frontier_owner` who wrote up to it; a run starting before the
  // frontier overlaps, a run starting past it (under require_cover)
  // leaves a gap.
  idx_t frontier = 0;
  int frontier_owner = -1;
  for (const Run& r : runs) {
    if (r.begin < 0 || r.end > total) {
      const idx_t ob = r.begin < 0 ? r.begin : std::max(r.begin, total);
      const idx_t oe = r.begin < 0 ? std::min(r.end, idx_t{0}) : r.end;
      add_issue(rep, IntervalIssue::Kind::OutOfBounds, ob, oe, r.owner, -1);
    }
    if (r.begin < frontier) {
      add_issue(rep, IntervalIssue::Kind::Overlap, r.begin,
                std::min(r.end, frontier), frontier_owner, r.owner);
    } else if (require_cover && r.begin > frontier) {
      add_issue(rep, IntervalIssue::Kind::Gap, frontier, r.begin, -1, -1);
    }
    const idx_t cb = std::clamp(r.begin, idx_t{0}, total);
    const idx_t ce = std::clamp(r.end, idx_t{0}, total);
    rep.covered += std::max(idx_t{0}, ce - std::max(cb, frontier));
    if (r.end > frontier) {
      frontier = r.end;
      frontier_owner = r.owner;
    }
  }
  if (require_cover && frontier < total) {
    add_issue(rep, IntervalIssue::Kind::Gap, frontier, total, -1, -1);
  }
  return rep;
}

bool stride_perm_is_bijection(idx_t total, idx_t sub) {
  if (total < 1 || sub < 1 || total % sub != 0) return false;
  const idx_t m = total / sub;
  // Inputs j with j mod sub == r are j = r, r+sub, ..., i.e. j div sub
  // sweeps [0, m); their images are r*m + [0, m) — exactly the r-th
  // width-m block. The sub blocks partition [0, total), and within one
  // block the map j div sub -> offset is the identity on [0, m), so the
  // whole map is a bijection. Nothing further to enumerate: the only
  // failure modes are the divisibility/positivity preconditions above.
  return m >= 1;
}

}  // namespace bwfft
