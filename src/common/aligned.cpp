#include "common/aligned.h"

#include <cstdlib>
#include <mutex>
#include <unordered_map>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "fault/fault.h"

namespace bwfft {

namespace {

/// mmap-backed allocations and their lengths, so aligned_free_placed can
/// tell an munmap from a std::free. Placement allocations happen at plan
/// construction (a handful per plan), so a mutexed map costs nothing on
/// the execute path.
struct MmapRegistry {
  std::mutex mu;
  std::unordered_map<void*, std::size_t> len;
};

MmapRegistry& mmap_registry() {
  static MmapRegistry* r = new MmapRegistry;  // leaked: usable at exit
  return *r;
}

/// Best-effort mmap path shared by the HugePage and NumaLocal
/// preferences. NUMA locality needs no syscall here: Linux' default
/// first-touch policy places each page on the node of the thread that
/// first writes it, which is exactly what the per-domain slab threads do.
void* try_mmap_placed(std::size_t bytes, bool huge) {
#if defined(__linux__)
  const std::size_t page = 4096;
  const std::size_t len = (bytes + page - 1) / page * page;
  void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return nullptr;
#if defined(MADV_HUGEPAGE)
  if (huge) ::madvise(p, len, MADV_HUGEPAGE);  // advisory; failure is fine
#else
  (void)huge;
#endif
  MmapRegistry& r = mmap_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.len.emplace(p, len);
  return p;
#else
  (void)bytes;
  (void)huge;
  return nullptr;
#endif
}

}  // namespace

void* aligned_alloc_bytes(std::size_t bytes, std::size_t align) {
  if (bytes == 0) return nullptr;
  if (BWFFT_FAULT_POINT(fault::kSiteAllocAligned)) throw std::bad_alloc();
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  std::size_t rounded = (bytes + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void aligned_free(void* p) noexcept { std::free(p); }

const char* placement_name(AllocPlacement p) {
  switch (p) {
    case AllocPlacement::Plain: return "plain";
    case AllocPlacement::HugePage: return "huge-page";
    case AllocPlacement::NumaLocal: return "numa-local";
  }
  return "?";
}

void* aligned_alloc_placed(std::size_t bytes, AllocPlacement want,
                           AllocPlacement* got) {
  if (got) *got = AllocPlacement::Plain;
  if (bytes == 0) return nullptr;

  if (want == AllocPlacement::HugePage) {
    if (!BWFFT_FAULT_POINT(fault::kSiteAllocHuge)) {
      if (void* p = try_mmap_placed(bytes, /*huge=*/true)) {
        if (got) *got = AllocPlacement::HugePage;
        return p;
      }
    }
    fault::note_degrade(
        "huge-page allocation unavailable; using plain aligned memory");
  } else if (want == AllocPlacement::NumaLocal) {
    if (!BWFFT_FAULT_POINT(fault::kSiteAllocNuma)) {
      if (void* p = try_mmap_placed(bytes, /*huge=*/false)) {
        if (got) *got = AllocPlacement::NumaLocal;
        return p;
      }
    }
    fault::note_degrade(
        "NUMA-local allocation unavailable; using plain aligned memory");
  }

  try {
    return aligned_alloc_bytes(bytes);
  } catch (const std::bad_alloc&) {
    throw Error(ErrorCode::kAllocFailed,
                "aligned allocation of " + std::to_string(bytes) +
                    " bytes failed (placement " + placement_name(want) + ")");
  }
}

void aligned_free_placed(void* p) noexcept {
  if (p == nullptr) return;
#if defined(__linux__)
  {
    MmapRegistry& r = mmap_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    const auto it = r.len.find(p);
    if (it != r.len.end()) {
      const std::size_t len = it->second;
      r.len.erase(it);
      ::munmap(p, len);
      return;
    }
  }
#endif
  aligned_free(p);  // plain fallback allocation
}

}  // namespace bwfft
