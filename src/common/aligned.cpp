#include "common/aligned.h"

#include <cstdlib>

namespace bwfft {

void* aligned_alloc_bytes(std::size_t bytes, std::size_t align) {
  if (bytes == 0) return nullptr;
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  std::size_t rounded = (bytes + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void aligned_free(void* p) noexcept { std::free(p); }

}  // namespace bwfft
