// Runtime CPU feature and cache detection.
//
// The data-movement layer chooses between temporal and non-temporal store
// paths and between scalar and AVX kernels based on these queries; the
// double-buffer policy sizes its shared buffer from the last-level cache.
#pragma once

#include <cstddef>
#include <string>

namespace bwfft {

/// Features relevant to the kernels in this library.
struct CpuFeatures {
  bool sse2 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
};

/// Detect features of the host CPU (cached after first call).
const CpuFeatures& cpu_features();

/// Best-effort size of the last-level cache in bytes. Reads sysfs on Linux;
/// falls back to 8 MiB (the LLC of the paper's single-socket machines) when
/// detection fails.
std::size_t llc_bytes();

/// Number of online logical CPUs.
int online_cpus();

/// Human-readable summary, e.g. "avx2+fma, LLC 8 MiB, 8 cpus".
std::string cpu_summary();

}  // namespace bwfft
