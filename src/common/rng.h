// Deterministic random data generation for tests and benchmarks.
#pragma once

#include <random>

#include "common/aligned.h"
#include "common/types.h"

namespace bwfft {

/// Fill `v` with complex values uniform in [-1,1] x [-1,1]i, deterministic
/// for a given seed. Used by every test/bench so runs are reproducible.
inline void fill_random(cplx* v, idx_t n, std::uint64_t seed = 0x5eed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (idx_t i = 0; i < n; ++i) v[i] = cplx(dist(gen), dist(gen));
}

inline cvec random_cvec(idx_t n, std::uint64_t seed = 0x5eed) {
  cvec v(static_cast<std::size_t>(n));
  fill_random(v.data(), n, seed);
  return v;
}

}  // namespace bwfft
