// Wall-clock and cycle timers.
//
// The paper times runs with the rdtsc time-stamp counter; we expose both
// rdtsc (x86 only) and std::chrono::steady_clock and use the latter for all
// reported numbers, since TSC-to-seconds conversion needs the nominal
// frequency which is unreliable inside VMs.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace bwfft {

/// Read the x86 time-stamp counter (0 on non-x86 builds).
inline std::uint64_t rdtsc() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return 0;
#endif
}

/// Simple steady-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace bwfft
