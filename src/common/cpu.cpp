#include "common/cpu.h"

#include <fstream>
#include <sstream>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#endif

namespace bwfft {

namespace {

CpuFeatures detect_features() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
  unsigned eax, ebx, ecx, edx;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.sse2 = (edx >> 26) & 1;
    f.avx = (ecx >> 28) & 1;
    f.fma = (ecx >> 12) & 1;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx >> 5) & 1;
    f.avx512f = (ebx >> 16) & 1;
  }
#endif
  return f;
}

// Parse strings like "8192K" / "12M" from sysfs cache size files.
std::size_t parse_cache_size(const std::string& s) {
  if (s.empty()) return 0;
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(s[i] - '0');
    ++i;
  }
  if (i < s.size()) {
    char unit = s[i];
    if (unit == 'K' || unit == 'k') value <<= 10;
    if (unit == 'M' || unit == 'm') value <<= 20;
    if (unit == 'G' || unit == 'g') value <<= 30;
  }
  return value;
}

std::size_t detect_llc() {
  // Walk cpu0's cache indices and keep the largest unified/data cache.
  std::size_t best = 0;
  for (int index = 0; index < 8; ++index) {
    std::ostringstream base;
    base << "/sys/devices/system/cpu/cpu0/cache/index" << index;
    std::ifstream size_file(base.str() + "/size");
    if (!size_file) break;
    std::string size_str;
    size_file >> size_str;
    std::ifstream type_file(base.str() + "/type");
    std::string type;
    type_file >> type;
    if (type == "Instruction") continue;
    best = std::max(best, parse_cache_size(size_str));
  }
  if (best == 0) best = 8u << 20;  // paper's single-socket LLC as fallback
  return best;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect_features();
  return f;
}

std::size_t llc_bytes() {
  static const std::size_t sz = detect_llc();
  return sz;
}

int online_cpus() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::string cpu_summary() {
  const CpuFeatures& f = cpu_features();
  std::ostringstream os;
  os << (f.avx512f ? "avx512f" : f.avx2 ? "avx2" : f.avx ? "avx" : "sse2")
     << (f.fma ? "+fma" : "") << ", LLC " << (llc_bytes() >> 20) << " MiB, "
     << online_cpus() << " cpus";
  return os.str();
}

}  // namespace bwfft
