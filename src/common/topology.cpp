#include "common/topology.h"

#include <algorithm>
#include <atomic>

#include "common/cpu.h"

namespace bwfft {

namespace machines {

MachineTopology kabylake_7700k() {
  MachineTopology t;
  t.name = "Intel Kaby Lake 7700K";
  t.sockets = 1;
  t.cores_per_socket = 4;
  t.smt_per_core = 2;
  t.llc_bytes = 8u << 20;
  t.stream_bw_gbs = 40.0;
  return t;
}

MachineTopology haswell_4770k() {
  MachineTopology t;
  t.name = "Intel Haswell 4770K";
  t.sockets = 1;
  t.cores_per_socket = 4;
  t.smt_per_core = 2;
  t.llc_bytes = 8u << 20;
  t.stream_bw_gbs = 20.0;
  return t;
}

MachineTopology amd_fx8350() {
  MachineTopology t;
  t.name = "AMD FX-8350";
  t.sockets = 1;
  t.cores_per_socket = 8;
  t.smt_per_core = 1;
  t.llc_bytes = 8u << 20;
  t.stream_bw_gbs = 12.0;
  return t;
}

MachineTopology haswell_2667v3() {
  MachineTopology t;
  t.name = "Intel Haswell 2667v3 (2 sockets)";
  t.sockets = 2;
  t.cores_per_socket = 4;
  t.smt_per_core = 2;
  t.llc_bytes = 20u << 20;
  t.stream_bw_gbs = 85.0;
  t.link_bw_gbs = 19.2;  // QPI 9.6 GT/s, two links
  return t;
}

MachineTopology amd_6276() {
  MachineTopology t;
  t.name = "AMD 6276 Interlagos (2 sockets)";
  t.sockets = 2;
  t.cores_per_socket = 8;
  t.smt_per_core = 1;
  t.llc_bytes = 16u << 20;
  t.stream_bw_gbs = 20.0;
  t.link_bw_gbs = 12.8;  // HyperTransport 3.1; close to local memory bw
  return t;
}

}  // namespace machines

namespace {

/// Calibrated STREAM bandwidth in GB/s; 0 until published. One shared
/// slot is enough: the host has one memory system.
std::atomic<double> g_calibrated_bw{0.0};

}  // namespace

MachineTopology host_topology() {
  // sysfs walks (LLC size, online CPU mask) are not free and FftOptions
  // default-initialises its topology member on every construction, so
  // detect once per process.
  static const MachineTopology detected = [] {
    MachineTopology t;
    t.name = "host";
    t.sockets = 1;
    t.cores_per_socket = online_cpus();
    t.smt_per_core = 1;
    // Cap the modelled LLC: virtualised environments report the host's
    // whole cache slice (hundreds of MiB), which would make the
    // "cache-resident" shared buffer larger than many working sets. Real
    // LLCs in the paper's machine class are 8-20 MiB.
    t.llc_bytes = std::min<std::size_t>(llc_bytes(), 32u << 20);
    t.stream_bw_gbs = 10.0;  // placeholder until calibrated
    return t;
  }();
  MachineTopology t = detected;
  const double bw = g_calibrated_bw.load(std::memory_order_relaxed);
  if (bw > 0.0) t.stream_bw_gbs = bw;
  return t;
}

void calibrate_host_bandwidth(double gbs) {
  if (gbs > 0.0) g_calibrated_bw.store(gbs, std::memory_order_relaxed);
}

bool host_bandwidth_calibrated() {
  return g_calibrated_bw.load(std::memory_order_relaxed) > 0.0;
}

}  // namespace bwfft
