// Strided-interval algebra — the symbolic footprint representation used
// by the static plan verifier (src/analysis/static_verify) and the SPL
// permutation checks (src/spl/verify).
//
// Every write window a bwfft engine emits is a union of equally-spaced
// equal-width runs: a contiguous row chunk is one run; a rotated store
// K_{cp}^{a,b} (x) I_mu lands one mu-packet every rows*mu elements; a
// pencil pass touches one column segment per row. StridedInterval captures
// exactly that shape, so a whole (iteration, rank) write-set is one
// object instead of a sentinel-probed bitmap, and partition questions
// ("are the per-thread windows disjoint? do they cover the output?")
// become a sort + sweep over run endpoints — O(R log R) in the number of
// runs, independent of the transform size.
//
// Coverage never needs to be tested directly: for windows proven pairwise
// disjoint and contained in [0, total), covering [0, total) is equivalent
// to their element counts summing to total. check_partition() reports
// exact gap locations anyway (they fall out of the sweep for free), which
// makes violation reports actionable.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace bwfft {

/// Union of `count` half-open runs [begin + i*stride, begin + i*stride +
/// width) for i in [0, count). A contiguous range is width = n, count = 1.
struct StridedInterval {
  idx_t begin = 0;
  idx_t width = 0;   ///< elements per run
  idx_t stride = 0;  ///< distance between run starts (unused when count==1)
  idx_t count = 1;   ///< number of runs

  idx_t elems() const { return width * count; }
  /// One past the last element of the last run (0 for an empty interval).
  idx_t end() const {
    if (width <= 0 || count <= 0) return begin;
    return begin + (count - 1) * stride + width;
  }
  /// A run overlaps its successor (stride < width with count > 1) — the
  /// interval double-writes elements all by itself.
  bool self_overlapping() const { return count > 1 && stride < width; }

  static StridedInterval contiguous(idx_t begin, idx_t len) {
    return {begin, len, 0, 1};
  }

  std::string str() const;
};

/// A write window tagged with the thread (or task) that owns it.
struct OwnedWindow {
  int owner = -1;
  StridedInterval iv;
};

struct IntervalIssue {
  enum class Kind {
    Overlap,      ///< two owners (or one self-overlapping window) collide
    Gap,          ///< no owner writes [begin, end)
    OutOfBounds,  ///< a run escapes [0, total)
  };

  Kind kind;
  idx_t begin = 0;    ///< first offending element
  idx_t end = 0;      ///< one past the last offending element
  int owner_a = -1;   ///< owner involved (-1 for gaps)
  int owner_b = -1;   ///< second owner for overlaps (-1 otherwise)

  std::string str() const;
};

struct PartitionReport {
  idx_t total = 0;        ///< the index space checked, [0, total)
  std::size_t runs = 0;   ///< expanded runs swept
  idx_t covered = 0;      ///< distinct elements written at least once
  std::vector<IntervalIssue> issues;

  bool ok() const { return issues.empty(); }
  std::string str() const;
};

/// Prove the windows pairwise disjoint and contained in [0, total); with
/// `require_cover`, also that they jointly cover [0, total) exactly.
/// Adjacent defects of the same kind collapse into one issue, and the
/// issue list is capped (the report says so) — one violation already
/// fails a lint run, the rest is diagnostics.
PartitionReport check_partition(const std::vector<OwnedWindow>& windows,
                                idx_t total, bool require_cover);

/// True iff the map j -> (j mod sub) * (total/sub) + j div sub is a
/// bijection on [0, total), proven symbolically: the image of residue
/// class r (sub-strided inputs) is the contiguous block [r*m, (r+1)*m),
/// and the blocks for r = 0..sub-1 tile [0, total). Requires sub >= 1 and
/// sub | total — anything else returns false. O(1); replaces the O(n)
/// seen-vector probe for L nodes.
bool stride_perm_is_bijection(idx_t total, idx_t sub);

}  // namespace bwfft
