// Machine topology model.
//
// The paper evaluates on five machines (one/two sockets, Intel/AMD, with
// and without SMT). Thread-role assignment (compute vs soft-DMA data
// threads), pinning, the buffer-size policy and the dual-socket slab-pencil
// decomposition all depend on the topology, so it is modelled explicitly
// rather than assumed. Profiles for the paper's machines are provided so
// the figure harnesses can report the same roofline model even when run on
// different hardware; `host()` builds a profile from the running machine.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace bwfft {

/// Topology and bandwidth description of one machine.
struct MachineTopology {
  std::string name;
  int sockets = 1;
  int cores_per_socket = 1;
  int smt_per_core = 1;        ///< hardware threads per core (Intel HT = 2)
  std::size_t llc_bytes = 8u << 20;  ///< shared last-level cache per socket
  double stream_bw_gbs = 10.0;       ///< STREAM bandwidth, whole machine GB/s
  double link_bw_gbs = 0.0;          ///< cross-socket link bandwidth (QPI/HT)

  int total_threads() const { return sockets * cores_per_socket * smt_per_core; }
  int threads_per_socket() const { return cores_per_socket * smt_per_core; }

  /// Buffer-size policy from §IV-A: half of the LLC (in complex elements).
  idx_t shared_buffer_elems() const {
    return static_cast<idx_t>(llc_bytes / 2 / sizeof(cplx));
  }
};

/// Profiles of the machines evaluated in the paper (§V, experimental setup).
namespace machines {
MachineTopology kabylake_7700k();    ///< 1 socket, 4c/8t, 8 MB L3, 40 GB/s
MachineTopology haswell_4770k();     ///< 1 socket, 4c/8t, 8 MB L3, 20 GB/s
MachineTopology amd_fx8350();        ///< 1 socket, 8c/8t, 8 MB L3, 12 GB/s
MachineTopology haswell_2667v3();    ///< 2 sockets, 8c/16t, 20 MB L3, 85 GB/s
MachineTopology amd_6276();          ///< 2 sockets, 16c/16t, 16 MB L3, 20 GB/s
}  // namespace machines

/// Topology of the machine this process runs on. LLC and CPU count are
/// detected once (function-local static — FftOptions default-constructs
/// one of these per plan, so detection must not re-read sysfs every
/// time); bandwidth starts at a conservative placeholder until
/// calibrate_host_bandwidth() publishes a measured STREAM rate.
MachineTopology host_topology();

/// Publish a measured STREAM bandwidth (GB/s); subsequent host_topology()
/// calls report it in stream_bw_gbs. The autotuner calls this with the
/// rate from src/stream so cost models stop using the placeholder.
/// Non-positive values are ignored. Thread-safe.
void calibrate_host_bandwidth(double gbs);

/// True once calibrate_host_bandwidth() has published a real rate.
bool host_bandwidth_calibrated();

}  // namespace bwfft
