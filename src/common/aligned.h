// Cacheline/SIMD-aligned memory management.
//
// All transform buffers are 64-byte aligned so that (a) AVX loads/stores can
// use aligned forms, (b) non-temporal stores operate on whole cachelines and
// (c) the blocked transpositions move naturally aligned mu-packets.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace bwfft {

/// Allocate `bytes` of 64-byte-aligned storage. Throws std::bad_alloc.
/// Fault site "alloc.aligned" injects that failure deterministically.
void* aligned_alloc_bytes(std::size_t bytes, std::size_t align = kCachelineBytes);

/// Free storage obtained from aligned_alloc_bytes.
void aligned_free(void* p) noexcept;

/// Where a large transform buffer should live. These are *preferences*
/// with a graceful fallback chain (HugePage/NumaLocal -> Plain): a failed
/// preferred placement degrades to plain aligned memory and records a
/// fault::note_degrade instead of failing the plan. Fault sites
/// "alloc.huge" / "alloc.numa" inject the preferred-path failures.
enum class AllocPlacement {
  Plain,     ///< std::aligned_alloc
  HugePage,  ///< mmap + MADV_HUGEPAGE: fewer TLB misses on multi-MB buffers
  NumaLocal, ///< mmap + first-touch placement on the touching thread's node
};

const char* placement_name(AllocPlacement p);

/// Allocate with a placement preference. Returns 64-byte-aligned (in
/// fact page-aligned for mmap placements) storage; *got reports the
/// placement actually obtained. Throws bwfft::Error(kAllocFailed) when
/// even the plain fallback cannot be satisfied.
void* aligned_alloc_placed(std::size_t bytes, AllocPlacement want,
                           AllocPlacement* got = nullptr);

/// Free storage obtained from aligned_alloc_placed (any placement).
void aligned_free_placed(void* p) noexcept;

/// STL-compatible allocator yielding 64-byte-aligned storage.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(aligned_alloc_bytes(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { aligned_free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// Aligned vector of complex values — the standard working container.
using cvec = std::vector<cplx, AlignedAllocator<cplx>>;
/// Aligned vector of doubles (split-format planes, STREAM buffers).
using dvec = std::vector<double, AlignedAllocator<double>>;

/// A fixed-size, owning, aligned buffer of T. Unlike std::vector it never
/// value-initialises its contents, which matters when buffers are tens of
/// gigabytes and will be written by first-touch-placement threads anyway.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n)
      : ptr_(static_cast<T*>(aligned_alloc_bytes(n * sizeof(T)))), size_(n) {}
  /// Placement-preferring variant: large pipeline/work buffers ask for
  /// huge pages (or NUMA-local pages) and degrade to plain aligned
  /// memory when the preference cannot be satisfied.
  AlignedBuffer(std::size_t n, AllocPlacement want)
      : ptr_(static_cast<T*>(aligned_alloc_placed(n * sizeof(T), want))),
        size_(n),
        placed_(true) {}
  ~AlignedBuffer() { release(); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& o) noexcept
      : ptr_(o.ptr_), size_(o.size_), placed_(o.placed_) {
    o.ptr_ = nullptr;
    o.size_ = 0;
    o.placed_ = false;
  }
  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      release();
      ptr_ = o.ptr_;
      size_ = o.size_;
      placed_ = o.placed_;
      o.ptr_ = nullptr;
      o.size_ = 0;
      o.placed_ = false;
    }
    return *this;
  }

  T* data() noexcept { return ptr_; }
  const T* data() const noexcept { return ptr_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  T& operator[](std::size_t i) noexcept { return ptr_[i]; }
  const T& operator[](std::size_t i) const noexcept { return ptr_[i]; }
  T* begin() noexcept { return ptr_; }
  T* end() noexcept { return ptr_ + size_; }

 private:
  void release() noexcept {
    if (placed_) {
      aligned_free_placed(ptr_);
    } else {
      aligned_free(ptr_);
    }
  }

  T* ptr_ = nullptr;
  std::size_t size_ = 0;
  bool placed_ = false;
};

}  // namespace bwfft
