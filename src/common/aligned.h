// Cacheline/SIMD-aligned memory management.
//
// All transform buffers are 64-byte aligned so that (a) AVX loads/stores can
// use aligned forms, (b) non-temporal stores operate on whole cachelines and
// (c) the blocked transpositions move naturally aligned mu-packets.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace bwfft {

/// Allocate `bytes` of 64-byte-aligned storage. Throws std::bad_alloc.
void* aligned_alloc_bytes(std::size_t bytes, std::size_t align = kCachelineBytes);

/// Free storage obtained from aligned_alloc_bytes.
void aligned_free(void* p) noexcept;

/// STL-compatible allocator yielding 64-byte-aligned storage.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(aligned_alloc_bytes(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { aligned_free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// Aligned vector of complex values — the standard working container.
using cvec = std::vector<cplx, AlignedAllocator<cplx>>;
/// Aligned vector of doubles (split-format planes, STREAM buffers).
using dvec = std::vector<double, AlignedAllocator<double>>;

/// A fixed-size, owning, aligned buffer of T. Unlike std::vector it never
/// value-initialises its contents, which matters when buffers are tens of
/// gigabytes and will be written by first-touch-placement threads anyway.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n)
      : ptr_(static_cast<T*>(aligned_alloc_bytes(n * sizeof(T)))), size_(n) {}
  ~AlignedBuffer() { aligned_free(ptr_); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& o) noexcept
      : ptr_(o.ptr_), size_(o.size_) {
    o.ptr_ = nullptr;
    o.size_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      aligned_free(ptr_);
      ptr_ = o.ptr_;
      size_ = o.size_;
      o.ptr_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }

  T* data() noexcept { return ptr_; }
  const T* data() const noexcept { return ptr_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  T& operator[](std::size_t i) noexcept { return ptr_[i]; }
  const T& operator[](std::size_t i) const noexcept { return ptr_[i]; }
  T* begin() noexcept { return ptr_; }
  T* end() noexcept { return ptr_ + size_; }

 private:
  T* ptr_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace bwfft
