// Error handling used across the library.
//
// Configuration errors (bad sizes, mismatched dimensions) throw
// bwfft::Error; internal invariant violations use BWFFT_ASSERT which is
// active in all build types — the cost is negligible next to the
// memory-bound workloads this library targets.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bwfft {

/// Exception thrown on invalid plan configuration or argument errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace bwfft

/// Check a user-facing precondition; throws bwfft::Error on failure.
#define BWFFT_CHECK(cond, msg)                                    \
  do {                                                            \
    if (!(cond)) {                                                \
      ::bwfft::detail::throw_error(__FILE__, __LINE__,            \
                                   std::string("check failed: ") \
                                       + #cond + " — " + (msg)); \
    }                                                             \
  } while (0)

/// Internal invariant; failure indicates a library bug.
#define BWFFT_ASSERT(cond)                                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::bwfft::detail::throw_error(__FILE__, __LINE__,                     \
                                   std::string("internal invariant: ") + \
                                       #cond);                             \
    }                                                                      \
  } while (0)
