// Error handling used across the library.
//
// Three layers:
//
//   * ErrorCode — a small taxonomy of the ways an engine can fail. Every
//     bwfft::Error carries one, so engine boundaries can tell a stalled
//     worker (retryable with a smaller team) from a bad plan (not
//     retryable) without string-matching what() text.
//
//   * Error — the exception thrown on invalid configuration and internal
//     failures. Configuration errors (bad sizes, mismatched dimensions)
//     throw code kBadPlan via BWFFT_CHECK; internal invariant violations
//     use BWFFT_ASSERT (kInternal), active in all build types — the cost
//     is negligible next to the memory-bound workloads this library
//     targets.
//
//   * Status — the no-throw result type of the engine-boundary APIs
//     (Fft2d/Fft3d::try_execute). A Status is either ok() or carries the
//     ErrorCode + message of the failure that survived the degradation /
//     retry policy (docs/INTERNALS.md §10).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace bwfft {

/// Failure taxonomy at engine boundaries.
enum class ErrorCode : int {
  kOk = 0,
  kBadPlan,               ///< invalid configuration / argument error
  kAllocFailed,           ///< aligned allocation could not be satisfied
  kAffinityUnavailable,   ///< thread pinning rejected by the OS
  kWorkerLost,            ///< a team thread died or could not be spawned
  kStall,                 ///< a worker never reached a team barrier
  kWisdomCorrupt,         ///< wisdom file failed to parse (torn write)
  kQueueFull,             ///< exec service rejected a submit (backpressure)
  kTimeout,               ///< request deadline expired before completion
  kOverloaded,            ///< admission control shed the request (CoDel)
  kQuotaExceeded,         ///< per-tenant token bucket out of tokens
  kDataCorrupt,           ///< output failed an integrity spot-check
  kInternal,              ///< library invariant violated (a bwfft bug)
};

/// Stable kebab-case name ("ok", "bad-plan", "stall", ...).
const char* error_code_name(ErrorCode code);

/// Exception thrown on invalid plan configuration, argument errors and
/// internal failures; carries the ErrorCode the status layer reports.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what)
      : std::runtime_error(what), code_(ErrorCode::kBadPlan) {}
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// No-throw result of the engine-boundary APIs. Either ok() or a code +
/// message describing the failure that exhausted the recovery policy.
class Status {
 public:
  Status() = default;  // ok
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "ok" or "<code-name>: <message>".
  std::string str() const {
    if (ok()) return "ok";
    return std::string(error_code_name(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kBadPlan: return "bad-plan";
    case ErrorCode::kAllocFailed: return "alloc-failed";
    case ErrorCode::kAffinityUnavailable: return "affinity-unavailable";
    case ErrorCode::kWorkerLost: return "worker-lost";
    case ErrorCode::kStall: return "stall";
    case ErrorCode::kWisdomCorrupt: return "wisdom-corrupt";
    case ErrorCode::kQueueFull: return "queue-full";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kQuotaExceeded: return "quota-exceeded";
    case ErrorCode::kDataCorrupt: return "data-corrupt";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

namespace detail {
[[noreturn]] inline void throw_error(const char* file, int line,
                                     const std::string& msg,
                                     ErrorCode code = ErrorCode::kBadPlan) {
  std::ostringstream os;
  os << file << ":" << line << ": " << msg;
  throw Error(code, os.str());
}
}  // namespace detail

}  // namespace bwfft

/// Check a user-facing precondition; throws bwfft::Error (kBadPlan) on
/// failure.
#define BWFFT_CHECK(cond, msg)                                    \
  do {                                                            \
    if (!(cond)) {                                                \
      ::bwfft::detail::throw_error(__FILE__, __LINE__,            \
                                   std::string("check failed: ") \
                                       + #cond + " — " + (msg)); \
    }                                                             \
  } while (0)

/// Internal invariant; failure indicates a library bug (kInternal).
#define BWFFT_ASSERT(cond)                                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::bwfft::detail::throw_error(__FILE__, __LINE__,                     \
                                   std::string("internal invariant: ") + \
                                       #cond,                              \
                                   ::bwfft::ErrorCode::kInternal);         \
    }                                                                      \
  } while (0)
