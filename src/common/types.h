// Core scalar and complex types shared across the bwfft library.
//
// The library computes double-precision complex transforms, matching the
// evaluation in the paper (all experiments are double-precision complex).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace bwfft {

/// Complex double — the element type of every transform in the library.
using cplx = std::complex<double>;

/// Index type used for element counts and strides. Signed, so that loop
/// arithmetic with differences cannot silently wrap.
using idx_t = std::ptrdiff_t;

/// Cacheline size assumed throughout the data-movement layer. The paper's
/// blocked transpositions move data in cacheline-size packets `mu`.
inline constexpr std::size_t kCachelineBytes = 64;

/// Number of complex doubles per cacheline — the packet size `mu` used by
/// the blocked transpose (L (x) I_mu) and rotation (K (x) I_mu) operators.
inline constexpr idx_t kMu = static_cast<idx_t>(kCachelineBytes / sizeof(cplx));

/// Transform direction. Forward uses exp(-2*pi*i/n) roots (the paper's
/// convention); Inverse uses the conjugate roots and no scaling unless
/// requested explicitly.
enum class Direction : int {
  Forward = -1,
  Inverse = +1,
};

/// Sign of the exponent for a direction: -1 for forward, +1 for inverse.
constexpr int sign_of(Direction d) { return static_cast<int>(d); }

}  // namespace bwfft
