// Clang Thread Safety Analysis shim + annotated lock primitives.
//
// The lock surface of the library (ThreadTeam, TeamPool, PlanCache,
// BoundedQueue, BatchExecutor) encodes its invariants in comments today:
// "mu_ guards teams_", "caller holds mu_". Clang's -Wthread-safety turns
// those comments into compile-time facts: members carry GUARDED_BY, lock
// protocols carry REQUIRES/EXCLUDES, and a forgotten lock (or a lock held
// across a call that re-acquires it) becomes a build error instead of a
// TSan report that depends on the schedule.
//
// libstdc++'s std::mutex is not annotated, so annotating members with raw
// std::mutex would warn on every use. Instead this header provides thin
// annotated wrappers in the Abseil style:
//
//   * bwfft::Mutex      — a std::mutex declared as a TSA capability;
//   * bwfft::MutexLock  — a scoped lock_guard over Mutex;
//   * bwfft::CondVar    — std::condition_variable_any waiting on Mutex
//                         directly (Mutex is BasicLockable), with
//                         wait/wait_until/wait_for REQUIRES(mu).
//
// The macros expand to __attribute__((...)) under clang and to nothing
// elsewhere, so GCC builds (and builds that predate the analysis) see
// plain std primitives with zero overhead. The clang CI legs compile with
// -DBWFFT_THREAD_SAFETY=ON, which adds -Wthread-safety -Werror.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define BWFFT_TSA(x) __attribute__((x))
#else
#define BWFFT_TSA(x)  // no-op outside clang
#endif

#define BWFFT_CAPABILITY(x) BWFFT_TSA(capability(x))
#define BWFFT_SCOPED_CAPABILITY BWFFT_TSA(scoped_lockable)
#define BWFFT_GUARDED_BY(x) BWFFT_TSA(guarded_by(x))
#define BWFFT_PT_GUARDED_BY(x) BWFFT_TSA(pt_guarded_by(x))
#define BWFFT_ACQUIRE(...) BWFFT_TSA(acquire_capability(__VA_ARGS__))
#define BWFFT_RELEASE(...) BWFFT_TSA(release_capability(__VA_ARGS__))
#define BWFFT_TRY_ACQUIRE(...) BWFFT_TSA(try_acquire_capability(__VA_ARGS__))
#define BWFFT_REQUIRES(...) BWFFT_TSA(requires_capability(__VA_ARGS__))
#define BWFFT_EXCLUDES(...) BWFFT_TSA(locks_excluded(__VA_ARGS__))
#define BWFFT_RETURN_CAPABILITY(x) BWFFT_TSA(lock_returned(x))
#define BWFFT_NO_THREAD_SAFETY_ANALYSIS BWFFT_TSA(no_thread_safety_analysis)

namespace bwfft {

/// std::mutex declared as a thread-safety capability. Satisfies
/// BasicLockable, so std::condition_variable_any can wait on it directly
/// and std::lock_guard<Mutex> works (though MutexLock is preferred — it
/// carries the scoped-capability annotation).
class BWFFT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BWFFT_ACQUIRE() { mu_.lock(); }
  void unlock() BWFFT_RELEASE() { mu_.unlock(); }
  bool try_lock() BWFFT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex — the annotated replacement for
/// std::lock_guard / std::unique_lock in guarded-member code.
class BWFFT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BWFFT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() BWFFT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting on bwfft::Mutex. Built on
/// std::condition_variable_any (Mutex is BasicLockable, not a
/// std::unique_lock<std::mutex>), with wait/wait_until annotated
/// REQUIRES(mu) so the analysis proves every waiter holds the lock.
///
/// Deliberately predicate-free: callers write explicit
///   while (!condition) cv.wait(mu);
/// loops so the condition reads stay in the enclosing function body,
/// where the analysis can see the lock is held (it does not propagate
/// lock sets into lambda bodies).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  // The analysis cannot see through condition_variable_any's internal
  // unlock/relock, hence the body-level opt-out; the REQUIRES contract
  // on the interface is what callers are checked against.
  void wait(Mutex& mu) BWFFT_REQUIRES(mu) BWFFT_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      BWFFT_REQUIRES(mu) BWFFT_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(mu, deadline);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace bwfft
