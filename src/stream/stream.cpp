#include "stream/stream.h"

#include <algorithm>

#include "common/aligned.h"
#include "common/cpu.h"
#include "common/timer.h"
#include "common/types.h"
#include "obs/obs.h"
#include "parallel/team.h"

namespace bwfft {

StreamResult run_stream(std::size_t elems, int threads, int reps) {
  AlignedBuffer<double> a(elems), b(elems), c(elems);
  ThreadTeam team(std::max(threads, 1));
  const idx_t n = static_cast<idx_t>(elems);

  parallel_for_chunks(team, n, [&](int, idx_t lo, idx_t hi) {
    for (idx_t i = lo; i < hi; ++i) {
      a[static_cast<std::size_t>(i)] = 1.0;
      b[static_cast<std::size_t>(i)] = 2.0;
      c[static_cast<std::size_t>(i)] = 0.0;
    }
  });

  const double scalar = 3.0;
  [[maybe_unused]] const std::uint64_t arr_bytes =
      static_cast<std::uint64_t>(elems) * sizeof(double);
  double best[4] = {1e30, 1e30, 1e30, 1e30};
  for (int r = 0; r < reps; ++r) {
    Timer t;
    {
      BWFFT_OBS_SCOPE(obs_k, "stream-copy", 'X', r);
      BWFFT_OBS_COUNT(BytesLoaded, arr_bytes);
      BWFFT_OBS_COUNT(BytesStored, arr_bytes);
      parallel_for_chunks(team, n, [&](int, idx_t lo, idx_t hi) {
        for (idx_t i = lo; i < hi; ++i)
          c[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)];
      });
    }
    best[0] = std::min(best[0], t.seconds());

    t.reset();
    {
      BWFFT_OBS_SCOPE(obs_k, "stream-scale", 'X', r);
      BWFFT_OBS_COUNT(BytesLoaded, arr_bytes);
      BWFFT_OBS_COUNT(BytesStored, arr_bytes);
      parallel_for_chunks(team, n, [&](int, idx_t lo, idx_t hi) {
        for (idx_t i = lo; i < hi; ++i)
          b[static_cast<std::size_t>(i)] =
              scalar * c[static_cast<std::size_t>(i)];
      });
    }
    best[1] = std::min(best[1], t.seconds());

    t.reset();
    {
      BWFFT_OBS_SCOPE(obs_k, "stream-add", 'X', r);
      BWFFT_OBS_COUNT(BytesLoaded, 2 * arr_bytes);
      BWFFT_OBS_COUNT(BytesStored, arr_bytes);
      parallel_for_chunks(team, n, [&](int, idx_t lo, idx_t hi) {
        for (idx_t i = lo; i < hi; ++i)
          c[static_cast<std::size_t>(i)] =
              a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)];
      });
    }
    best[2] = std::min(best[2], t.seconds());

    t.reset();
    {
      BWFFT_OBS_SCOPE(obs_k, "stream-triad", 'X', r);
      BWFFT_OBS_COUNT(BytesLoaded, 2 * arr_bytes);
      BWFFT_OBS_COUNT(BytesStored, arr_bytes);
      parallel_for_chunks(team, n, [&](int, idx_t lo, idx_t hi) {
        for (idx_t i = lo; i < hi; ++i)
          a[static_cast<std::size_t>(i)] =
              b[static_cast<std::size_t>(i)] +
              scalar * c[static_cast<std::size_t>(i)];
      });
    }
    best[3] = std::min(best[3], t.seconds());
  }

  const double bytes = static_cast<double>(elems) * sizeof(double);
  StreamResult res;
  res.copy_gbs = 2.0 * bytes / best[0] / 1e9;
  res.scale_gbs = 2.0 * bytes / best[1] / 1e9;
  res.add_gbs = 3.0 * bytes / best[2] / 1e9;
  res.triad_gbs = 3.0 * bytes / best[3] / 1e9;
  return res;
}

double measured_stream_bandwidth_gbs() {
  static const double bw = [] {
    // 4x the LLC per array, but bounded: virtualised LLC reports can be
    // hundreds of MiB and first-touching gigabytes would dominate runtime.
    const std::size_t bytes = std::clamp<std::size_t>(llc_bytes() * 4,
                                                      32u << 20, 64u << 20);
    return run_stream(bytes / sizeof(double), online_cpus()).best();
  }();
  return bw;
}

}  // namespace bwfft
