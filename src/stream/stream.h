// STREAM-style bandwidth measurement (McCalpin [1]).
//
// The paper normalises every figure against the "achievable peak": the
// pseudo-Gflop/s rate attainable if each FFT stage streamed its data at
// the STREAM bandwidth. This module measures Copy/Scale/Add/Triad over
// arrays far larger than the LLC, parallelised across a thread team, and
// reports the best-of-k rates the same way the original benchmark does.
#pragma once

#include <cstddef>

namespace bwfft {

struct StreamResult {
  double copy_gbs = 0.0;
  double scale_gbs = 0.0;
  double add_gbs = 0.0;
  double triad_gbs = 0.0;

  /// The rate the roofline model uses (the paper quotes a single STREAM
  /// number per machine); Triad is the customary choice.
  double best() const { return triad_gbs; }
};

/// Run the four kernels `reps` times over arrays of `elems` doubles each
/// with `threads` workers; returns best-rep bandwidths in GB/s.
StreamResult run_stream(std::size_t elems, int threads, int reps = 5);

/// Measure (and cache) the host's STREAM bandwidth with default sizing:
/// 4x LLC per array, all CPUs.
double measured_stream_bandwidth_gbs();

}  // namespace bwfft
