// SPL static verifier — structural checks over expression trees and
// lowered plans, run before anything executes.
//
// The Expr constructors fail fast on locally-detectable mistakes, but the
// trees they build are an open hierarchy: rewrite passes, user-defined
// nodes, and hand-assembled Programs can all introduce inconsistencies the
// constructors never see. This pass re-derives the invariants the library
// depends on:
//
//   * dimension compatibility along every ∘ chain (and between every
//     combinator and its children);
//   * L (stride permutation) nodes are genuine permutations — the index
//     map i -> (i mod sub)·(total/sub) + i div sub is re-checked for
//     bijectivity, and is_permutation() probes arbitrary square operators
//     (e.g. the K rotation compositions) for the same property;
//   * G/S (gather/scatter) windows stay inside their vectors;
//   * diagonals contain only finite entries (a NaN twiddle table is the
//     classic silent-corruption bug);
//   * lowered Programs conserve element counts at every op.
//
// In checked builds (BWFFT_CHECKED) lower() verifies its input term and
// its output Program automatically, and Program::run re-verifies before
// executing, so a malformed plan throws bwfft::Error instead of quietly
// producing garbage.
#pragma once

#include <string>
#include <vector>

#include "spl/expr.h"
#include "spl/lower.h"

namespace bwfft::spl {

struct VerifyIssue {
  enum class Kind {
    ComposeMismatch,  ///< adjacent ∘ factors with cols != rows
    NotPermutation,   ///< an L node whose index map is not a bijection
    WindowBounds,     ///< a G/S window reaching outside its vector
    BadShape,         ///< a node reporting a non-positive dimension
    NonFinite,        ///< a diagonal with NaN/Inf entries
    NotConservative,  ///< a lowered op that changes the element count
  };

  Kind kind;
  std::string node;  ///< str() of the offending node / op
  std::string detail;

  std::string str() const;
};

struct VerifyReport {
  std::size_t nodes = 0;   ///< nodes (or ops) visited
  std::size_t opaque = 0;  ///< nodes of unknown type (skipped, not errors)
  std::vector<VerifyIssue> issues;

  bool ok() const { return issues.empty(); }
  std::string str() const;
};

/// Recursively verify an expression tree. Unknown Expr subclasses are
/// counted as opaque and their reported shape is sanity-checked, but their
/// children (if any) cannot be reached.
VerifyReport verify(const Expr& e);

/// Shape-check a factor list as a would-be composition A0 ∘ A1 ∘ ... —
/// usable on lists the Compose constructor would reject, which is how
/// mismatched ⊗/∘ combinations are diagnosed without throwing.
VerifyReport verify_compose(const std::vector<ExprPtr>& factors);

/// Verify a lowered Program: every op must conserve the element count
/// (batch·n·lanes == length for FFTs, batch·rows·cols·lanes == length for
/// transposes, |diag| == length for scales) and carry a usable plan.
VerifyReport verify(const Program& p);

/// Probe a square operator for permutation-ness by applying it to the
/// index-encoding vector x[j] = j+1: the result must be exactly a
/// rearrangement of the inputs. Exact for 0/1 operators; returns false for
/// anything that scales, mixes, or drops elements. Operators larger than
/// `limit` are rejected (the probe is O(n) space and apply time).
bool is_permutation(const Expr& e, idx_t limit = idx_t(1) << 22);

/// Throw bwfft::Error carrying the report if verification fails.
void verify_or_throw(const Expr& e);
void verify_or_throw(const Program& p);

}  // namespace bwfft::spl
