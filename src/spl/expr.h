// SPL (Signal Processing Language) expression library.
//
// The paper derives every data-movement and compute operator of the
// double-buffered FFT in the SPL / Kronecker-product formalism (§II-C,
// Table I, Table III). This module implements that formalism as an
// expression tree with exact linear-operator semantics:
//
//   * terminals:    I_n, rectangular I_{m x n}, O_{m x n}, DFT_n, diagonal
//                   matrices (twiddle factors D_n^{mn}), the stride
//                   permutation L, gather G_{n,b,i} and scatter S_{n,b,i}
//   * combinators:  matrix product (compose), Kronecker product, direct sum
//
// Every node can be applied to a vector (y = M x) and materialised as a
// dense matrix, which is how the hand-optimised kernels in src/layout and
// src/fft are validated: each kernel's semantics is stated as an SPL term
// and the test suite checks the kernel against the term's dense semantics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/error.h"
#include "common/types.h"

namespace bwfft::spl {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Abstract linear operator of shape rows() x cols().
class Expr {
 public:
  virtual ~Expr() = default;

  virtual idx_t rows() const = 0;
  virtual idx_t cols() const = 0;

  /// y = M x. `x` has cols() elements, `y` rows(); they must not alias.
  virtual void apply(const cplx* x, cplx* y) const = 0;

  /// Human-readable rendering, e.g. "(DFT_4 (x) I_8)".
  virtual std::string str() const = 0;

  /// Convenience overload on vectors; checks dimensions.
  cvec operator()(const cvec& x) const;
};

// ---------------------------------------------------------------------------
// Terminals
// ---------------------------------------------------------------------------

/// Identity matrix I_n.
class Identity final : public Expr {
 public:
  explicit Identity(idx_t n);
  idx_t rows() const override { return n_; }
  idx_t cols() const override { return n_; }
  void apply(const cplx* x, cplx* y) const override;
  std::string str() const override;

 private:
  idx_t n_;
};

/// Rectangular identity I_{m x n} (§II-C): the top-left identity padded
/// with zero rows (m > n) or truncated columns (m < n).
class RectIdentity final : public Expr {
 public:
  RectIdentity(idx_t m, idx_t n);
  idx_t rows() const override { return m_; }
  idx_t cols() const override { return n_; }
  void apply(const cplx* x, cplx* y) const override;
  std::string str() const override;

 private:
  idx_t m_, n_;
};

/// All-zero matrix O_{m x n}.
class Zero final : public Expr {
 public:
  Zero(idx_t m, idx_t n);
  idx_t rows() const override { return m_; }
  idx_t cols() const override { return n_; }
  void apply(const cplx* x, cplx* y) const override;
  std::string str() const override;

 private:
  idx_t m_, n_;
};

/// Dense DFT_n with entries w_n^{kl}; applied as the O(n^2) matrix-vector
/// product. This is the semantic ground truth every FFT engine is tested
/// against.
class Dft final : public Expr {
 public:
  Dft(idx_t n, Direction dir);
  idx_t rows() const override { return n_; }
  idx_t cols() const override { return n_; }
  void apply(const cplx* x, cplx* y) const override;
  std::string str() const override;
  Direction direction() const { return dir_; }

 private:
  idx_t n_;
  Direction dir_;
};

/// Arbitrary diagonal matrix.
class Diag final : public Expr {
 public:
  explicit Diag(cvec d);
  idx_t rows() const override { return static_cast<idx_t>(d_.size()); }
  idx_t cols() const override { return static_cast<idx_t>(d_.size()); }
  void apply(const cplx* x, cplx* y) const override;
  std::string str() const override;
  const cvec& values() const { return d_; }

 private:
  cvec d_;
};

/// Stride permutation L_sub^{total} (§II-C): the input vector, viewed as a
/// (total/sub) x sub row-major matrix, is transposed. The paper's
/// L_n^{mn} : in+j -> jm+i (0<=i<m, 0<=j<n) is StridePerm(total=mn, sub=n).
class StridePerm final : public Expr {
 public:
  StridePerm(idx_t total, idx_t sub);
  idx_t rows() const override { return total_; }
  idx_t cols() const override { return total_; }
  void apply(const cplx* x, cplx* y) const override;
  std::string str() const override;
  idx_t total() const { return total_; }
  idx_t sub() const { return sub_; }

 private:
  idx_t total_, sub_;
};

/// Gather G_{n,b,i} (§III-B): the b x n matrix selecting the i-th
/// contiguous window of b elements; the transpose slice of the identity.
class Gather final : public Expr {
 public:
  Gather(idx_t n, idx_t b, idx_t i);
  idx_t rows() const override { return b_; }
  idx_t cols() const override { return n_; }
  void apply(const cplx* x, cplx* y) const override;
  std::string str() const override;
  idx_t n() const { return n_; }
  idx_t window() const { return b_; }
  idx_t index() const { return i_; }

 private:
  idx_t n_, b_, i_;
};

/// Scatter S_{n,b,i} (§III-B): the n x b matrix writing a block of b
/// elements into the i-th window of an n-vector (zeros elsewhere).
class Scatter final : public Expr {
 public:
  Scatter(idx_t n, idx_t b, idx_t i);
  idx_t rows() const override { return n_; }
  idx_t cols() const override { return b_; }
  void apply(const cplx* x, cplx* y) const override;
  std::string str() const override;
  idx_t n() const { return n_; }
  idx_t window() const { return b_; }
  idx_t index() const { return i_; }

 private:
  idx_t n_, b_, i_;
};

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Matrix product A_0 A_1 ... A_{k-1}; factors apply right-to-left, exactly
/// like the formulas in the paper.
class Compose final : public Expr {
 public:
  explicit Compose(std::vector<ExprPtr> factors);
  idx_t rows() const override { return factors_.front()->rows(); }
  idx_t cols() const override { return factors_.back()->cols(); }
  void apply(const cplx* x, cplx* y) const override;
  std::string str() const override;
  const std::vector<ExprPtr>& factors() const { return factors_; }

 private:
  std::vector<ExprPtr> factors_;
};

/// Kronecker (tensor) product A (x) B. Applied via the factorisation
/// (A (x) B) = (A (x) I)(I (x) B), which needs one temporary.
class Kron final : public Expr {
 public:
  Kron(ExprPtr a, ExprPtr b);
  idx_t rows() const override { return a_->rows() * b_->rows(); }
  idx_t cols() const override { return a_->cols() * b_->cols(); }
  void apply(const cplx* x, cplx* y) const override;
  std::string str() const override;
  const ExprPtr& a() const { return a_; }
  const ExprPtr& b() const { return b_; }

 private:
  ExprPtr a_, b_;
};

/// Direct sum diag(A_0, ..., A_{k-1}): block-diagonal stacking.
class DirectSum final : public Expr {
 public:
  explicit DirectSum(std::vector<ExprPtr> blocks);
  idx_t rows() const override { return rows_; }
  idx_t cols() const override { return cols_; }
  void apply(const cplx* x, cplx* y) const override;
  std::string str() const override;
  const std::vector<ExprPtr>& blocks() const { return blocks_; }

 private:
  std::vector<ExprPtr> blocks_;
  idx_t rows_ = 0, cols_ = 0;
};

// ---------------------------------------------------------------------------
// Factory helpers (the notation used throughout the library and its tests)
// ---------------------------------------------------------------------------

ExprPtr identity(idx_t n);
ExprPtr rect_identity(idx_t m, idx_t n);
ExprPtr zero(idx_t m, idx_t n);
ExprPtr dft(idx_t n, Direction dir = Direction::Forward);
ExprPtr diag(cvec d);
/// Twiddle diagonal D_n^{mn} of the Cooley–Tukey factorisation: entries
/// w_{mn}^{ij} for the (i,j) grid, i<m rows of j<n.
ExprPtr twiddle_diag(idx_t m, idx_t n, Direction dir = Direction::Forward);
/// L_sub^{total}; `total` must be a multiple of `sub`.
ExprPtr stride_perm(idx_t total, idx_t sub);
ExprPtr gather(idx_t n, idx_t b, idx_t i);
ExprPtr scatter(idx_t n, idx_t b, idx_t i);
ExprPtr compose(std::vector<ExprPtr> factors);
ExprPtr kron(ExprPtr a, ExprPtr b);
ExprPtr direct_sum(std::vector<ExprPtr> blocks);

/// Dense row-major materialisation (rows() x cols() entries) obtained by
/// applying the operator to unit vectors. Intended for test-scale sizes.
std::vector<cvec> dense(const Expr& e);

/// Max |a-b| over two operators' dense forms; throws if shapes mismatch.
double max_abs_diff(const Expr& a, const Expr& b);

}  // namespace bwfft::spl
