#include "spl/verify.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/intervals.h"

namespace bwfft::spl {

namespace {

const char* kind_name(VerifyIssue::Kind k) {
  switch (k) {
    case VerifyIssue::Kind::ComposeMismatch: return "compose-mismatch";
    case VerifyIssue::Kind::NotPermutation: return "not-a-permutation";
    case VerifyIssue::Kind::WindowBounds: return "window-out-of-bounds";
    case VerifyIssue::Kind::BadShape: return "bad-shape";
    case VerifyIssue::Kind::NonFinite: return "non-finite";
    case VerifyIssue::Kind::NotConservative: return "not-conservative";
  }
  return "?";
}

void add(VerifyReport& rep, VerifyIssue::Kind k, std::string node,
         std::string detail) {
  rep.issues.push_back({k, std::move(node), std::move(detail)});
}

void check_chain(const std::vector<ExprPtr>& factors, VerifyReport& rep) {
  for (std::size_t i = 0; i + 1 < factors.size(); ++i) {
    if (factors[i] == nullptr || factors[i + 1] == nullptr) continue;
    if (factors[i]->cols() != factors[i + 1]->rows()) {
      std::ostringstream os;
      os << factors[i]->str() << " has " << factors[i]->cols()
         << " columns but " << factors[i + 1]->str() << " has "
         << factors[i + 1]->rows() << " rows";
      add(rep, VerifyIssue::Kind::ComposeMismatch,
          factors[i]->str() + " . " + factors[i + 1]->str(), os.str());
    }
  }
}

void visit(const Expr& e, VerifyReport& rep) {
  ++rep.nodes;
  if (e.rows() < 1 || e.cols() < 1) {
    std::ostringstream os;
    os << "reports shape " << e.rows() << " x " << e.cols();
    add(rep, VerifyIssue::Kind::BadShape, e.str(), os.str());
    return;  // downstream checks would index with these dimensions
  }

  if (const auto* c = dynamic_cast<const Compose*>(&e)) {
    check_chain(c->factors(), rep);
    for (const auto& f : c->factors()) {
      if (f) visit(*f, rep);
    }
    return;
  }
  if (const auto* k = dynamic_cast<const Kron*>(&e)) {
    if (k->a()) visit(*k->a(), rep);
    if (k->b()) visit(*k->b(), rep);
    return;
  }
  if (const auto* s = dynamic_cast<const DirectSum*>(&e)) {
    for (const auto& b : s->blocks()) {
      if (b) visit(*b, rep);
    }
    return;
  }
  if (const auto* l = dynamic_cast<const StridePerm*>(&e)) {
    const idx_t total = l->total(), sub = l->sub();
    if (sub < 1 || total % sub != 0) {
      std::ostringstream os;
      os << "sub " << sub << " does not divide total " << total;
      add(rep, VerifyIssue::Kind::NotPermutation, e.str(), os.str());
      return;
    }
    // Symbolic bijectivity (common/intervals.h): the image of residue
    // class r under j -> (j mod sub)*(total/sub) + j div sub is the
    // contiguous block [r*m, (r+1)*m), and the sub blocks tile
    // [0, total) — O(1) instead of the former O(n) seen-vector probe.
    if (!stride_perm_is_bijection(total, sub)) {
      add(rep, VerifyIssue::Kind::NotPermutation, e.str(),
          "index map is not a bijection");
    }
    return;
  }
  if (const auto* g = dynamic_cast<const Gather*>(&e)) {
    if (g->window() < 1 || (g->index() + 1) * g->window() > g->n()) {
      std::ostringstream os;
      os << "window " << g->index() << " of width " << g->window()
         << " exceeds vector length " << g->n();
      add(rep, VerifyIssue::Kind::WindowBounds, e.str(), os.str());
    }
    return;
  }
  if (const auto* s = dynamic_cast<const Scatter*>(&e)) {
    if (s->window() < 1 || (s->index() + 1) * s->window() > s->n()) {
      std::ostringstream os;
      os << "window " << s->index() << " of width " << s->window()
         << " exceeds vector length " << s->n();
      add(rep, VerifyIssue::Kind::WindowBounds, e.str(), os.str());
    }
    return;
  }
  if (const auto* d = dynamic_cast<const Diag*>(&e)) {
    for (std::size_t i = 0; i < d->values().size(); ++i) {
      const cplx v = d->values()[i];
      if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
        std::ostringstream os;
        os << "entry " << i << " is " << v.real() << (v.imag() < 0 ? "" : "+")
           << v.imag() << "i";
        add(rep, VerifyIssue::Kind::NonFinite, e.str(), os.str());
        break;  // one finding per diagonal is enough
      }
    }
    return;
  }
  if (dynamic_cast<const Identity*>(&e) != nullptr ||
      dynamic_cast<const RectIdentity*>(&e) != nullptr ||
      dynamic_cast<const Zero*>(&e) != nullptr ||
      dynamic_cast<const Dft*>(&e) != nullptr) {
    return;  // shape already checked above; nothing else can go wrong
  }
  ++rep.opaque;  // unknown subclass: shape checked, children unreachable
}

}  // namespace

std::string VerifyIssue::str() const {
  return std::string("[") + kind_name(kind) + "] " + node + ": " + detail;
}

std::string VerifyReport::str() const {
  std::ostringstream os;
  if (ok()) {
    os << "spl verify: clean (" << nodes << " nodes";
    if (opaque > 0) os << ", " << opaque << " opaque";
    os << ")";
    return os.str();
  }
  os << "spl verify: " << issues.size() << " issue(s) over " << nodes
     << " nodes";
  for (const auto& i : issues) os << "\n  " << i.str();
  return os.str();
}

VerifyReport verify(const Expr& e) {
  VerifyReport rep;
  visit(e, rep);
  return rep;
}

VerifyReport verify_compose(const std::vector<ExprPtr>& factors) {
  VerifyReport rep;
  check_chain(factors, rep);
  for (const auto& f : factors) {
    if (f) visit(*f, rep);
  }
  return rep;
}

VerifyReport verify(const Program& p) {
  VerifyReport rep;
  const idx_t len = p.length();
  for (const LowerOp& op : p.ops()) {
    ++rep.nodes;
    idx_t touched = 0;
    switch (op.kind) {
      case LowerOp::Kind::BatchFft:
        touched = op.batch * op.n * op.lanes;
        if (op.plan == nullptr) {
          add(rep, VerifyIssue::Kind::NotConservative, op.str(),
              "batch FFT op carries no 1D plan");
        }
        break;
      case LowerOp::Kind::BatchTranspose:
        touched = op.batch * op.rows * op.cols * op.lanes;
        break;
      case LowerOp::Kind::Scale:
        touched = static_cast<idx_t>(op.diag.size());
        for (const cplx v : op.diag) {
          if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
            add(rep, VerifyIssue::Kind::NonFinite, op.str(),
                "scale diagonal contains a non-finite entry");
            break;
          }
        }
        break;
    }
    if (touched != len) {
      std::ostringstream os;
      os << "op touches " << touched << " elements but the program vector "
         << "holds " << len;
      add(rep, VerifyIssue::Kind::NotConservative, op.str(), os.str());
    }
  }
  return rep;
}

bool is_permutation(const Expr& e, idx_t limit) {
  const idx_t n = e.rows();
  if (n != e.cols() || n < 1 || n > limit) return false;
  cvec x(static_cast<std::size_t>(n));
  for (idx_t j = 0; j < n; ++j) {
    x[static_cast<std::size_t>(j)] = cplx(static_cast<double>(j + 1), 0.0);
  }
  cvec y(static_cast<std::size_t>(n));
  e.apply(x.data(), y.data());
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (idx_t k = 0; k < n; ++k) {
    const cplx v = y[static_cast<std::size_t>(k)];
    if (v.imag() != 0.0) return false;
    const double r = v.real();
    const auto p = static_cast<idx_t>(r);
    if (static_cast<double>(p) != r || p < 1 || p > n) return false;
    if (seen[static_cast<std::size_t>(p - 1)]) return false;
    seen[static_cast<std::size_t>(p - 1)] = 1;
  }
  return true;
}

void verify_or_throw(const Expr& e) {
  const VerifyReport rep = verify(e);
  BWFFT_CHECK(rep.ok(), "SPL term failed verification:\n" + rep.str());
}

void verify_or_throw(const Program& p) {
  const VerifyReport rep = verify(p);
  BWFFT_CHECK(rep.ok(), "lowered program failed verification:\n" + rep.str());
}

}  // namespace bwfft::spl
