// SPL lowering — from formula to executable plan (§III-D).
//
// The paper generates its compute and data-movement code from SPL terms
// with SPIRAL. This module plays that role at plan level: a restricted
// SPL grammar (compositions of I (x) DFT (x) I, stride permutations
// tensored with identities, and diagonals — exactly the shapes appearing
// in the paper's factorisations) is compiled into a linear Program of
// three primitive operations:
//
//   BatchFft       {batch, n, lanes}  -> Fft1d::apply_lanes     (in place)
//   BatchTranspose {batch, r, c, mu}  -> transpose_packets      (ping-pong)
//   Scale          {diag}             -> pointwise multiply     (in place)
//
// Running the program reproduces the operator's semantics using the same
// optimised kernels the engines use, which closes the loop formula ->
// plan -> kernels and is tested against the SPL term's dense semantics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fft1d/fft1d.h"
#include "spl/expr.h"

namespace bwfft::spl {

struct LowerOp {
  enum class Kind { BatchFft, BatchTranspose, Scale };
  Kind kind;
  idx_t batch = 1;  ///< outer repetitions (from I_batch (x) ...)
  idx_t n = 1;      ///< FFT length (BatchFft)
  idx_t rows = 1, cols = 1;  ///< transpose grid (BatchTranspose)
  idx_t lanes = 1;  ///< inner vector width (from ... (x) I_lanes)
  Direction dir = Direction::Forward;
  cvec diag;        ///< expanded diagonal (Scale)
  std::shared_ptr<const Fft1d> plan;  ///< created at lower() time

  std::string str() const;
};

class Program {
 public:
  explicit Program(idx_t length) : length_(length) {}

  idx_t length() const { return length_; }
  const std::vector<LowerOp>& ops() const { return ops_; }
  void push(LowerOp op) { ops_.push_back(std::move(op)); }

  /// Execute the plan on a vector of length().
  cvec run(const cvec& in) const;

  /// Multi-line rendering of the op sequence (the "generated code").
  std::string describe() const;

 private:
  idx_t length_;
  std::vector<LowerOp> ops_;
};

/// Compile an SPL term into a Program. Throws bwfft::Error if the term
/// falls outside the lowerable grammar. The BatchFft ops dispatch into
/// the batched split-format codelets; `isa` pins their instruction set
/// (default Auto = resolve from cpuid / BWFFT_ISA at run time).
Program lower(const Expr& e, kernels::Isa isa = kernels::Isa::Auto);

}  // namespace bwfft::spl
