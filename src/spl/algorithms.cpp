#include "spl/algorithms.h"

namespace bwfft::spl {

namespace {
void check_divides(idx_t a, idx_t b, const char* what) {
  BWFFT_CHECK(a > 0 && b > 0 && b % a == 0, std::string(what));
}
}  // namespace

// ------------------------------------------------------------------ 1D FFT

ExprPtr cooley_tukey(idx_t m, idx_t n, Direction dir) {
  BWFFT_CHECK(m > 1 && n > 1, "cooley_tukey needs m,n > 1");
  return compose({
      kron(dft(m, dir), identity(n)),
      twiddle_diag(m, n, dir),
      kron(identity(m), dft(n, dir)),
      stride_perm(m * n, m),
  });
}

ExprPtr dft1d_four_step(idx_t a, idx_t b, Direction dir) {
  BWFFT_CHECK(a > 1 && b > 1, "four-step needs a,b > 1");
  return compose({
      stride_perm(a * b, b),
      kron(identity(a), dft(b, dir)),
      twiddle_diag(a, b, dir),
      kron(dft(a, dir), identity(b)),
  });
}

// ------------------------------------------------------------------ 2D FFT

ExprPtr dft2d_pencil(idx_t n, idx_t m, Direction dir) {
  return compose({
      kron(dft(n, dir), identity(m)),
      kron(identity(n), dft(m, dir)),
  });
}

ExprPtr dft2d_transposed(idx_t n, idx_t m, Direction dir) {
  return compose({
      stride_perm(m * n, n),                 // L_n^{mn}: m x n -> n x m
      kron(identity(m), dft(n, dir)),        // columns as unit-stride rows
      stride_perm(m * n, m),                 // L_m^{mn}: n x m -> m x n
      kron(identity(n), dft(m, dir)),        // rows
  });
}

ExprPtr dft2d_blocked(idx_t n, idx_t m, idx_t mu, Direction dir) {
  check_divides(mu, m, "dft2d_blocked needs mu | m");
  return compose({
      kron(stride_perm(m * n / mu, n), identity(mu)),
      kron(kron(identity(m / mu), dft(n, dir)), identity(mu)),
      kron(stride_perm(m * n / mu, m / mu), identity(mu)),
      kron(identity(n), dft(m, dir)),
  });
}

// ------------------------------------------------------------------ 3D FFT

ExprPtr dft3d_pencil(idx_t k, idx_t n, idx_t m, Direction dir) {
  return compose({
      kron(dft(k, dir), identity(n * m)),
      kron(kron(identity(k), dft(n, dir)), identity(m)),
      kron(identity(k * n), dft(m, dir)),
  });
}

ExprPtr dft3d_slab_pencil(idx_t k, idx_t n, idx_t m, Direction dir) {
  // The slab DFT_{n x m} is itself the pencil 2D factorisation; fusing the
  // first two stages is the P3DFFT trick that reduces round trips.
  return compose({
      kron(dft(k, dir), identity(n * m)),
      kron(identity(k), dft2d_pencil(n, m, dir)),
  });
}

ExprPtr rotation_k(idx_t a, idx_t b, idx_t c) {
  // K_c^{a,b} = (L_c^{ca} (x) I_b) (I_a (x) L_c^{cb})
  return compose({
      kron(stride_perm(c * a, c), identity(b)),
      kron(identity(a), stride_perm(c * b, c)),
  });
}

ExprPtr rotation_k_blocked(idx_t a, idx_t b, idx_t c, idx_t mu) {
  check_divides(mu, c, "rotation_k_blocked needs mu | c");
  return kron(rotation_k(a, b, c / mu), identity(mu));
}

ExprPtr dft3d_rotated(idx_t k, idx_t n, idx_t m, idx_t mu, Direction dir) {
  check_divides(mu, m, "dft3d_rotated needs mu | m");
  // Stage 1: cube k x n x m, pencils along x (size m, unit stride).
  ExprPtr stage1 = compose({
      rotation_k_blocked(k, n, m, mu),               // -> packets [xp][z][y]
      kron(identity(k * n), dft(m, dir)),
  });
  // Stage 2: layout [xp][z][y][xl]; pencils along y at stride mu.
  ExprPtr stage2 = compose({
      kron(rotation_k(m / mu, k, n), identity(mu)),  // -> [y][xp][z][xl]
      kron(kron(identity((m / mu) * k), dft(n, dir)), identity(mu)),
  });
  // Stage 3: layout [y][xp][z][xl]; pencils along z at stride mu; the final
  // rotation restores the natural k x n x m order.
  ExprPtr stage3 = compose({
      kron(rotation_k(n, m / mu, k), identity(mu)),  // -> [z][y][xp][xl]
      kron(kron(identity(n * (m / mu)), dft(k, dir)), identity(mu)),
  });
  return compose({stage3, stage2, stage1});
}

// ------------------------------------------- Tiled stage / W and R matrices

ExprPtr read_matrix(idx_t total, idx_t b, idx_t i) {
  return gather(total, b, i);
}

ExprPtr write_matrix_stage1(idx_t k, idx_t n, idx_t m, idx_t mu, idx_t b,
                            idx_t i) {
  return compose({
      rotation_k_blocked(k, n, m, mu),
      scatter(k * n * m, b, i),
  });
}

std::vector<ExprPtr> stage1_tiled(idx_t k, idx_t n, idx_t m, idx_t mu, idx_t b,
                                  Direction dir) {
  const idx_t total = k * n * m;
  check_divides(m, b, "stage1_tiled needs m | b");
  check_divides(b, total, "stage1_tiled needs b | knm");
  std::vector<ExprPtr> iters;
  for (idx_t i = 0; i < total / b; ++i) {
    iters.push_back(compose({
        write_matrix_stage1(k, n, m, mu, b, i),
        kron(identity(b / m), dft(m, dir)),
        read_matrix(total, b, i),
    }));
  }
  return iters;
}

// ------------------------------------------------ Dual socket (Table III)

ExprPtr dual_socket_w1(idx_t k, idx_t n, idx_t m, idx_t mu, idx_t sk) {
  check_divides(sk, k, "dual socket needs sk | k");
  const idx_t ksl = k / sk;
  // Per-socket blocked rotation of the local slab ksl x n x m; data stays
  // within the socket (Fig 8, stage 1 writes locally).
  return kron(identity(sk), rotation_k_blocked(ksl, n, m, mu));
}

ExprPtr dual_socket_w2(idx_t k, idx_t n, idx_t m, idx_t mu, idx_t sk) {
  check_divides(sk, k, "dual socket needs sk | k");
  const idx_t ksl = k / sk;
  // Local rotation [xp][zl][y] -> [y][xp][zl], then the cross-socket
  // exchange (L_{nm/mu}^{sk nm/mu} (x) I_{ksl mu}) reassembles full-z
  // pencils distributed by y (Fig 8, stage 2 writes across sockets).
  return compose({
      kron(stride_perm(sk * n * m / mu, n * m / mu), identity(ksl * mu)),
      kron(identity(sk), kron(rotation_k(m / mu, ksl, n), identity(mu))),
  });
}

ExprPtr dual_socket_w3(idx_t k, idx_t n, idx_t m, idx_t mu, idx_t sk) {
  check_divides(sk, k, "dual socket needs sk | k");
  check_divides(sk, n, "dual socket needs sk | n");
  const idx_t nsl = n / sk;
  // Local rotation [yl][xp][z] -> [z][yl][xp], then the exchange
  // (L_k^{sk k} (x) I_{nm/sk}) restores the natural global order
  // distributed by z (Fig 8, stage 3 writes across sockets).
  return compose({
      kron(stride_perm(sk * k, k), identity(n * m / sk)),
      kron(identity(sk), kron(rotation_k(nsl, m / mu, k), identity(mu))),
  });
}

ExprPtr dft3d_dual_socket(idx_t k, idx_t n, idx_t m, idx_t mu, idx_t sk,
                          Direction dir) {
  check_divides(mu, m, "dual socket needs mu | m");
  check_divides(sk, k, "dual socket needs sk | k");
  check_divides(sk, n, "dual socket needs sk | n");
  const idx_t ksl = k / sk;
  const idx_t nsl = n / sk;

  // Stage 1: per-socket pencils along x on the local ksl x n x m slab.
  ExprPtr stage1 = compose({
      dual_socket_w1(k, n, m, mu, sk),
      kron(identity(sk), kron(identity(ksl * n), dft(m, dir))),
  });
  // Stage 2: per-socket pencils along y; write across the interconnect.
  ExprPtr stage2 = compose({
      dual_socket_w2(k, n, m, mu, sk),
      kron(identity(sk),
           kron(kron(identity((m / mu) * ksl), dft(n, dir)), identity(mu))),
  });
  // Stage 3: per-socket full-length z pencils; write across to restore the
  // natural order distributed by z.
  ExprPtr stage3 = compose({
      dual_socket_w3(k, n, m, mu, sk),
      kron(identity(sk),
           kron(kron(identity(nsl * (m / mu)), dft(k, dir)), identity(mu))),
  });
  return compose({stage3, stage2, stage1});
}

}  // namespace bwfft::spl
