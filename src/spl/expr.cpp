#include "spl/expr.h"

#include <cmath>
#include <cstring>
#include <numbers>
#include <sstream>

namespace bwfft::spl {

namespace {
constexpr double kPi = std::numbers::pi_v<double>;

/// Primitive n-th root of unity to the power p, with the direction's sign.
cplx omega(idx_t n, idx_t p, Direction dir) {
  const double ang = sign_of(dir) * 2.0 * kPi * static_cast<double>(p) /
                     static_cast<double>(n);
  return cplx(std::cos(ang), std::sin(ang));
}
}  // namespace

cvec Expr::operator()(const cvec& x) const {
  BWFFT_CHECK(static_cast<idx_t>(x.size()) == cols(),
              "operand size does not match operator columns: " + str());
  cvec y(static_cast<std::size_t>(rows()));
  apply(x.data(), y.data());
  return y;
}

// --------------------------------------------------------------- Identity

Identity::Identity(idx_t n) : n_(n) { BWFFT_CHECK(n > 0, "I_n needs n>0"); }

void Identity::apply(const cplx* x, cplx* y) const {
  std::memcpy(y, x, static_cast<std::size_t>(n_) * sizeof(cplx));
}

std::string Identity::str() const {
  std::ostringstream os;
  os << "I_" << n_;
  return os.str();
}

// ----------------------------------------------------------- RectIdentity

RectIdentity::RectIdentity(idx_t m, idx_t n) : m_(m), n_(n) {
  BWFFT_CHECK(m > 0 && n > 0, "I_{m x n} needs m,n>0");
}

void RectIdentity::apply(const cplx* x, cplx* y) const {
  const idx_t copy = std::min(m_, n_);
  std::memcpy(y, x, static_cast<std::size_t>(copy) * sizeof(cplx));
  for (idx_t i = copy; i < m_; ++i) y[i] = cplx(0.0, 0.0);
}

std::string RectIdentity::str() const {
  std::ostringstream os;
  os << "I_{" << m_ << "x" << n_ << "}";
  return os.str();
}

// ------------------------------------------------------------------- Zero

Zero::Zero(idx_t m, idx_t n) : m_(m), n_(n) {
  BWFFT_CHECK(m > 0 && n > 0, "O_{m x n} needs m,n>0");
}

void Zero::apply(const cplx*, cplx* y) const {
  for (idx_t i = 0; i < m_; ++i) y[i] = cplx(0.0, 0.0);
}

std::string Zero::str() const {
  std::ostringstream os;
  os << "O_{" << m_ << "x" << n_ << "}";
  return os.str();
}

// -------------------------------------------------------------------- Dft

Dft::Dft(idx_t n, Direction dir) : n_(n), dir_(dir) {
  BWFFT_CHECK(n > 0, "DFT_n needs n>0");
}

void Dft::apply(const cplx* x, cplx* y) const {
  // Direct O(n^2) evaluation; k*l is reduced mod n to keep the root-power
  // table exact for large n.
  for (idx_t k = 0; k < n_; ++k) {
    cplx acc(0.0, 0.0);
    for (idx_t l = 0; l < n_; ++l) {
      acc += omega(n_, (k * l) % n_, dir_) * x[l];
    }
    y[k] = acc;
  }
}

std::string Dft::str() const {
  std::ostringstream os;
  os << (dir_ == Direction::Forward ? "DFT_" : "IDFT_") << n_;
  return os.str();
}

// ------------------------------------------------------------------- Diag

Diag::Diag(cvec d) : d_(std::move(d)) {
  BWFFT_CHECK(!d_.empty(), "diag needs at least one entry");
}

void Diag::apply(const cplx* x, cplx* y) const {
  const idx_t n = rows();
  for (idx_t i = 0; i < n; ++i) y[i] = d_[static_cast<std::size_t>(i)] * x[i];
}

std::string Diag::str() const {
  std::ostringstream os;
  os << "diag_" << d_.size();
  return os.str();
}

// ------------------------------------------------------------- StridePerm

StridePerm::StridePerm(idx_t total, idx_t sub) : total_(total), sub_(sub) {
  BWFFT_CHECK(total > 0 && sub > 0 && total % sub == 0,
              "L_sub^total needs sub | total");
}

void StridePerm::apply(const cplx* x, cplx* y) const {
  // Input viewed as (total/sub) x sub row-major; output is the transpose.
  const idx_t rows = total_ / sub_;
  const idx_t cols = sub_;
  for (idx_t r = 0; r < rows; ++r) {
    for (idx_t c = 0; c < cols; ++c) {
      y[c * rows + r] = x[r * cols + c];
    }
  }
}

std::string StridePerm::str() const {
  std::ostringstream os;
  os << "L^" << total_ << "_" << sub_;
  return os.str();
}

// ----------------------------------------------------------------- Gather

Gather::Gather(idx_t n, idx_t b, idx_t i) : n_(n), b_(b), i_(i) {
  BWFFT_CHECK(b > 0 && n >= b, "G_{n,b,i} needs 0<b<=n");
  BWFFT_CHECK(i >= 0 && (i + 1) * b <= n, "G_{n,b,i} window out of range");
}

void Gather::apply(const cplx* x, cplx* y) const {
  std::memcpy(y, x + i_ * b_, static_cast<std::size_t>(b_) * sizeof(cplx));
}

std::string Gather::str() const {
  std::ostringstream os;
  os << "G_{" << n_ << "," << b_ << "," << i_ << "}";
  return os.str();
}

// ---------------------------------------------------------------- Scatter

Scatter::Scatter(idx_t n, idx_t b, idx_t i) : n_(n), b_(b), i_(i) {
  BWFFT_CHECK(b > 0 && n >= b, "S_{n,b,i} needs 0<b<=n");
  BWFFT_CHECK(i >= 0 && (i + 1) * b <= n, "S_{n,b,i} window out of range");
}

void Scatter::apply(const cplx* x, cplx* y) const {
  for (idx_t j = 0; j < n_; ++j) y[j] = cplx(0.0, 0.0);
  std::memcpy(y + i_ * b_, x, static_cast<std::size_t>(b_) * sizeof(cplx));
}

std::string Scatter::str() const {
  std::ostringstream os;
  os << "S_{" << n_ << "," << b_ << "," << i_ << "}";
  return os.str();
}

// ---------------------------------------------------------------- Compose

Compose::Compose(std::vector<ExprPtr> factors) : factors_(std::move(factors)) {
  BWFFT_CHECK(!factors_.empty(), "compose needs at least one factor");
  for (std::size_t i = 0; i + 1 < factors_.size(); ++i) {
    BWFFT_CHECK(factors_[i]->cols() == factors_[i + 1]->rows(),
                "compose dimension mismatch between " + factors_[i]->str() +
                    " and " + factors_[i + 1]->str());
  }
}

void Compose::apply(const cplx* x, cplx* y) const {
  // Apply right-to-left, ping-ponging through two temporaries.
  const std::size_t k = factors_.size();
  if (k == 1) {
    factors_[0]->apply(x, y);
    return;
  }
  cvec t0, t1;
  const cplx* src = x;
  for (std::size_t f = k; f-- > 0;) {
    const Expr& op = *factors_[f];
    if (f == 0) {
      op.apply(src, y);
    } else {
      cvec& dst = (src == t0.data() && !t0.empty()) ? t1 : t0;
      dst.resize(static_cast<std::size_t>(op.rows()));
      op.apply(src, dst.data());
      src = dst.data();
    }
  }
}

std::string Compose::str() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    if (i) os << " . ";
    os << factors_[i]->str();
  }
  os << ")";
  return os.str();
}

// ------------------------------------------------------------------- Kron

Kron::Kron(ExprPtr a, ExprPtr b) : a_(std::move(a)), b_(std::move(b)) {
  BWFFT_CHECK(a_ != nullptr && b_ != nullptr, "kron needs two operands");
}

void Kron::apply(const cplx* x, cplx* y) const {
  // (A (x) B) = (A (x) I_rb) (I_ca (x) B)
  const idx_t ca = a_->cols(), ra = a_->rows();
  const idx_t cb = b_->cols(), rb = b_->rows();

  // Step 1: z = (I_ca (x) B) x — B applied to each contiguous segment.
  cvec z(static_cast<std::size_t>(ca * rb));
  for (idx_t i = 0; i < ca; ++i) {
    b_->apply(x + i * cb, z.data() + i * rb);
  }

  // Step 2: y = (A (x) I_rb) z — A applied to each of the rb strided
  // columns of z viewed as a ca x rb matrix.
  cvec col_in(static_cast<std::size_t>(ca)), col_out(static_cast<std::size_t>(ra));
  for (idx_t c = 0; c < rb; ++c) {
    for (idx_t r = 0; r < ca; ++r) col_in[static_cast<std::size_t>(r)] = z[r * rb + c];
    a_->apply(col_in.data(), col_out.data());
    for (idx_t r = 0; r < ra; ++r) y[r * rb + c] = col_out[static_cast<std::size_t>(r)];
  }
}

std::string Kron::str() const {
  return "(" + a_->str() + " (x) " + b_->str() + ")";
}

// -------------------------------------------------------------- DirectSum

DirectSum::DirectSum(std::vector<ExprPtr> blocks) : blocks_(std::move(blocks)) {
  BWFFT_CHECK(!blocks_.empty(), "direct sum needs at least one block");
  for (const auto& b : blocks_) {
    rows_ += b->rows();
    cols_ += b->cols();
  }
}

void DirectSum::apply(const cplx* x, cplx* y) const {
  idx_t xo = 0, yo = 0;
  for (const auto& b : blocks_) {
    b->apply(x + xo, y + yo);
    xo += b->cols();
    yo += b->rows();
  }
}

std::string DirectSum::str() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (i) os << " (+) ";
    os << blocks_[i]->str();
  }
  os << ")";
  return os.str();
}

// ---------------------------------------------------------------- helpers

ExprPtr identity(idx_t n) { return std::make_shared<Identity>(n); }
ExprPtr rect_identity(idx_t m, idx_t n) {
  return std::make_shared<RectIdentity>(m, n);
}
ExprPtr zero(idx_t m, idx_t n) { return std::make_shared<Zero>(m, n); }
ExprPtr dft(idx_t n, Direction dir) { return std::make_shared<Dft>(n, dir); }
ExprPtr diag(cvec d) { return std::make_shared<Diag>(std::move(d)); }

ExprPtr twiddle_diag(idx_t m, idx_t n, Direction dir) {
  cvec d(static_cast<std::size_t>(m * n));
  for (idx_t i = 0; i < m; ++i) {
    for (idx_t j = 0; j < n; ++j) {
      d[static_cast<std::size_t>(i * n + j)] = omega(m * n, (i * j) % (m * n), dir);
    }
  }
  return diag(std::move(d));
}

ExprPtr stride_perm(idx_t total, idx_t sub) {
  return std::make_shared<StridePerm>(total, sub);
}
ExprPtr gather(idx_t n, idx_t b, idx_t i) {
  return std::make_shared<Gather>(n, b, i);
}
ExprPtr scatter(idx_t n, idx_t b, idx_t i) {
  return std::make_shared<Scatter>(n, b, i);
}
ExprPtr compose(std::vector<ExprPtr> factors) {
  return std::make_shared<Compose>(std::move(factors));
}
ExprPtr kron(ExprPtr a, ExprPtr b) {
  return std::make_shared<Kron>(std::move(a), std::move(b));
}
ExprPtr direct_sum(std::vector<ExprPtr> blocks) {
  return std::make_shared<DirectSum>(std::move(blocks));
}

std::vector<cvec> dense(const Expr& e) {
  const idx_t r = e.rows(), c = e.cols();
  std::vector<cvec> m(static_cast<std::size_t>(r),
                      cvec(static_cast<std::size_t>(c)));
  cvec unit(static_cast<std::size_t>(c), cplx(0.0, 0.0));
  cvec col(static_cast<std::size_t>(r));
  for (idx_t j = 0; j < c; ++j) {
    unit[static_cast<std::size_t>(j)] = cplx(1.0, 0.0);
    e.apply(unit.data(), col.data());
    unit[static_cast<std::size_t>(j)] = cplx(0.0, 0.0);
    for (idx_t i = 0; i < r; ++i) {
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          col[static_cast<std::size_t>(i)];
    }
  }
  return m;
}

double max_abs_diff(const Expr& a, const Expr& b) {
  BWFFT_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "operator shapes differ: " + a.str() + " vs " + b.str());
  const auto da = dense(a);
  const auto db = dense(b);
  double worst = 0.0;
  for (std::size_t i = 0; i < da.size(); ++i) {
    for (std::size_t j = 0; j < da[i].size(); ++j) {
      worst = std::max(worst, std::abs(da[i][j] - db[i][j]));
    }
  }
  return worst;
}

}  // namespace bwfft::spl
