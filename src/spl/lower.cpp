#include "spl/lower.h"

#include <sstream>

#include "fft1d/fft1d.h"
#include "layout/transpose.h"
#include "spl/verify.h"

namespace bwfft::spl {

namespace {

/// Recursive lowering context: the term being lowered sits inside
/// I_batch (x) . (x) I_lanes.
void lower_into(const Expr& e, idx_t batch, idx_t lanes, kernels::Isa isa,
                Program& prog) {
  if (dynamic_cast<const Identity*>(&e) != nullptr) {
    return;  // no-op factor
  }
  if (const auto* c = dynamic_cast<const Compose*>(&e)) {
    // Factors apply right-to-left.
    const auto& fs = c->factors();
    for (std::size_t i = fs.size(); i-- > 0;) {
      lower_into(*fs[i], batch, lanes, isa, prog);
    }
    return;
  }
  if (const auto* k = dynamic_cast<const Kron*>(&e)) {
    if (const auto* ia = dynamic_cast<const Identity*>(k->a().get())) {
      lower_into(*k->b(), batch * ia->rows(), lanes, isa, prog);
      return;
    }
    if (const auto* ib = dynamic_cast<const Identity*>(k->b().get())) {
      lower_into(*k->a(), batch, lanes * ib->rows(), isa, prog);
      return;
    }
    throw Error("unlowerable Kron (neither side is an identity): " + e.str());
  }
  if (const auto* d = dynamic_cast<const Dft*>(&e)) {
    LowerOp op;
    op.kind = LowerOp::Kind::BatchFft;
    op.batch = batch;
    op.n = d->rows();
    op.lanes = lanes;
    op.dir = d->direction();
    op.plan = std::make_shared<Fft1d>(op.n, op.dir, isa);
    prog.push(std::move(op));
    return;
  }
  if (const auto* l = dynamic_cast<const StridePerm*>(&e)) {
    LowerOp op;
    op.kind = LowerOp::Kind::BatchTranspose;
    op.batch = batch;
    op.rows = l->total() / l->sub();
    op.cols = l->sub();
    op.lanes = lanes;
    prog.push(std::move(op));
    return;
  }
  if (const auto* dg = dynamic_cast<const Diag*>(&e)) {
    // Expand the diagonal across the batch and lane tensor structure:
    // (I_batch (x) diag(d) (x) I_lanes) is the diagonal of the full vector.
    LowerOp op;
    op.kind = LowerOp::Kind::Scale;
    const idx_t n = dg->rows();
    op.diag.resize(static_cast<std::size_t>(batch * n * lanes));
    for (idx_t b = 0; b < batch; ++b) {
      for (idx_t i = 0; i < n; ++i) {
        for (idx_t l2 = 0; l2 < lanes; ++l2) {
          op.diag[static_cast<std::size_t>((b * n + i) * lanes + l2)] =
              dg->values()[static_cast<std::size_t>(i)];
        }
      }
    }
    prog.push(std::move(op));
    return;
  }
  throw Error("unlowerable SPL node: " + e.str());
}

}  // namespace

std::string LowerOp::str() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::BatchFft:
      os << "batch_fft(batch=" << batch << ", n=" << n << ", lanes=" << lanes
         << ", dir=" << (dir == Direction::Forward ? "fwd" : "inv") << ")";
      break;
    case Kind::BatchTranspose:
      os << "batch_transpose(batch=" << batch << ", " << rows << "x" << cols
         << ", mu=" << lanes << ")";
      break;
    case Kind::Scale:
      os << "scale(n=" << diag.size() << ")";
      break;
  }
  return os.str();
}

cvec Program::run(const cvec& in) const {
  BWFFT_CHECK(static_cast<idx_t>(in.size()) == length_,
              "program input length mismatch");
#ifdef BWFFT_CHECKED
  // Checked builds re-verify element-count conservation before executing:
  // hand-assembled or rewritten programs throw here instead of silently
  // reading/writing out of step with the vector.
  verify_or_throw(*this);
#endif
  cvec cur = in;
  cvec scratch(in.size());
  for (const LowerOp& op : ops_) {
    switch (op.kind) {
      case LowerOp::Kind::BatchFft: {
        // One tile per batch element: n x lanes, contiguous.
        op.plan->apply_lanes(cur.data(), op.lanes, op.batch);
        break;
      }
      case LowerOp::Kind::BatchTranspose: {
        const idx_t tile = op.rows * op.cols * op.lanes;
        for (idx_t b = 0; b < op.batch; ++b) {
          transpose_packets(cur.data() + b * tile, scratch.data() + b * tile,
                            op.rows, op.cols, op.lanes);
        }
        std::swap(cur, scratch);
        break;
      }
      case LowerOp::Kind::Scale: {
        for (std::size_t i = 0; i < cur.size(); ++i) cur[i] *= op.diag[i];
        break;
      }
    }
  }
  return cur;
}

std::string Program::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    os << i << ": " << ops_[i].str() << "\n";
  }
  return os.str();
}

Program lower(const Expr& e, kernels::Isa isa) {
  BWFFT_CHECK(e.rows() == e.cols(),
              "only square (size-preserving) terms are lowerable");
#ifdef BWFFT_CHECKED
  // Checked builds statically verify the term (dimension chains,
  // permutations, windows, diagonals) before compiling it to a plan.
  verify_or_throw(e);
#endif
  Program prog(e.cols());
  lower_into(e, 1, 1, isa, prog);
#ifdef BWFFT_CHECKED
  verify_or_throw(prog);
#endif
  return prog;
}

}  // namespace bwfft::spl
