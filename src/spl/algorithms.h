// SPL factorisations of the DFT / MDFT used by the paper.
//
// Each function builds an SPL term from §II-D / §III / §IV-B of the paper.
// All terms are *specifications*: the optimised kernels in src/layout,
// src/pipeline and src/fft are tested to agree with these terms' dense
// semantics at small sizes, so the factorisations double as the library's
// correctness oracle (the role SPIRAL plays for the paper's authors).
//
// Convention for the rotation operator (paper §III-A, Fig 5):
//   K_c^{a,b} = (L_c^{ca} (x) I_b) (I_a (x) L_c^{cb})
// maps a row-major cube a x b x c (c fastest) to the rotated cube c x a x b.
// The paper writes the two superscripts in the opposite order; the
// semantics below are validated against the dense multidimensional DFT, so
// the convention is pinned down by the tests rather than the typography.
#pragma once

#include "spl/expr.h"

namespace bwfft::spl {

// ------------------------------------------------------------------ 1D FFT

/// Cooley–Tukey factorisation of DFT_{m n} (§II-D):
///   DFT_mn = (DFT_m (x) I_n) D_n^{mn} (I_m (x) DFT_n) L_m^{mn}.
ExprPtr cooley_tukey(idx_t m, idx_t n, Direction dir = Direction::Forward);

/// Transposed ("four-step") factorisation used by the double-buffered
/// large 1D engine — permutation last, strided-lanes stage first:
///   DFT_ab = L_b^{ab} (I_a (x) DFT_b) D_b^{ab} (DFT_a (x) I_b).
ExprPtr dft1d_four_step(idx_t a, idx_t b, Direction dir = Direction::Forward);

// ------------------------------------------------------------------ 2D FFT

/// Pencil–pencil decomposition (§II-D):
///   DFT_{n x m} = (DFT_n (x) I_m)(I_n (x) DFT_m).
ExprPtr dft2d_pencil(idx_t n, idx_t m, Direction dir = Direction::Forward);

/// Transposed (row–column) form (§III-A):
///   DFT_{n x m} = L_n^{mn}(I_m (x) DFT_n) . L_m^{mn}(I_n (x) DFT_m).
ExprPtr dft2d_transposed(idx_t n, idx_t m, Direction dir = Direction::Forward);

/// Cacheline-blocked form (§III-A):
///   DFT_{n x m} = (L_n^{mn/mu} (x) I_mu)(I_{m/mu} (x) DFT_n (x) I_mu)
///                 (L_{m/mu}^{mn/mu} (x) I_mu)(I_n (x) DFT_m).
ExprPtr dft2d_blocked(idx_t n, idx_t m, idx_t mu,
                      Direction dir = Direction::Forward);

// ------------------------------------------------------------------ 3D FFT

/// Pencil–pencil–pencil decomposition (§II-D):
///   DFT_{k x n x m} = (DFT_k (x) I_nm)(I_k (x) DFT_n (x) I_m)(I_kn (x) DFT_m).
ExprPtr dft3d_pencil(idx_t k, idx_t n, idx_t m,
                     Direction dir = Direction::Forward);

/// Slab–pencil decomposition (§II-B, P3DFFT-style; used by FFTW on AMD):
///   DFT_{k x n x m} = (DFT_k (x) I_nm)(I_k (x) DFT_{n x m}).
ExprPtr dft3d_slab_pencil(idx_t k, idx_t n, idx_t m,
                          Direction dir = Direction::Forward);

/// Rotation K_c^{a,b} (§III-A): cube a x b x c -> cube c x a x b.
ExprPtr rotation_k(idx_t a, idx_t b, idx_t c);

/// Blocked rotation (K_{c/mu}^{a,b} (x) I_mu) moving mu-element cacheline
/// packets: cube a x b x c with c = (c/mu)*mu -> packets rotated.
ExprPtr rotation_k_blocked(idx_t a, idx_t b, idx_t c, idx_t mu);

/// The paper's adopted 3D decomposition (§III-A): three stages, each a
/// batch of unit-stride 1D FFTs followed by a blocked rotation; after the
/// third rotation data is back in natural k x n x m order.
ExprPtr dft3d_rotated(idx_t k, idx_t n, idx_t m, idx_t mu,
                      Direction dir = Direction::Forward);

// ------------------------------------------- Tiled stage / W and R matrices

/// Read matrix R_{b,i} = G_{total,b,i} (§III-B): loads the i-th contiguous
/// block of b elements.
ExprPtr read_matrix(idx_t total, idx_t b, idx_t i);

/// Stage-1 write matrix W_{b,i} = (K_{m/mu}^{k,n} (x) I_mu) S_{knm,b,i}
/// (§III-B): scatters a computed block back through the blocked rotation.
ExprPtr write_matrix_stage1(idx_t k, idx_t n, idx_t m, idx_t mu, idx_t b,
                            idx_t i);

/// The tiled-and-blocked stage 1 (§III-B):
///   sum_i W_{b,i} (I_{b/m} (x) DFT_m) R_{b,i}
/// returned as a vector of the per-iteration compositions; the caller sums
/// their applications (the S windows are disjoint, so the sum is exact).
std::vector<ExprPtr> stage1_tiled(idx_t k, idx_t n, idx_t m, idx_t mu,
                                  idx_t b, Direction dir = Direction::Forward);

// ------------------------------------------------ Dual socket (Table III)

/// Table III write matrices for sk sockets, whole-stage (untiled) form,
/// i.e. without the trailing S_{knm,b,i} window: these are the full
/// rotation+exchange operators; the windowed forms are obtained by
/// composing with scatter().
ExprPtr dual_socket_w1(idx_t k, idx_t n, idx_t m, idx_t mu, idx_t sk);
ExprPtr dual_socket_w2(idx_t k, idx_t n, idx_t m, idx_t mu, idx_t sk);
ExprPtr dual_socket_w3(idx_t k, idx_t n, idx_t m, idx_t mu, idx_t sk);

/// Full dual-socket 3D factorisation (§IV-B, Fig 8): data distributed by z
/// across sk sockets; stage 1 reads and writes locally, stages 2 and 3
/// write across the interconnect. Composes to DFT_{k x n x m}.
ExprPtr dft3d_dual_socket(idx_t k, idx_t n, idx_t m, idx_t mu, idx_t sk,
                          Direction dir = Direction::Forward);

}  // namespace bwfft::spl
