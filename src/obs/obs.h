// Low-overhead observability layer: counters, scoped timers, trace export.
//
// The paper's entire claim is quantitative (74–92% of the STREAM-derived
// achievable peak, §V), so the runtime needs to show where time and bytes
// go. This module provides three facilities:
//
//   * Monotonic counters — bytes loaded/stored per pipeline stage,
//     non-temporal stores issued, barrier-wait nanoseconds, per-role busy
//     time. Each thread accumulates into a thread-local block (no atomics
//     on the hot path); blocks are merged under a registry mutex when
//     read, reset, or when the owning thread exits.
//
//   * A ring-buffered slice recorder. When tracing is armed, ScopedSlice
//     records {name, phase, t0, t1, arg, tid} into a fixed per-thread
//     ring (overwriting the oldest entries), again without locks. The
//     slices extend the pipeline's schedule-order TraceEvent stream with
//     wall-clock timestamps.
//
//   * Exporters: a chrome://tracing JSON writer (one track per thread;
//     load/compute/store slices make a Table II schedule visually
//     inspectable in about:tracing / Perfetto) and a roofline report that
//     combines per-stage wall time with the measured STREAM bandwidth to
//     print %-of-achievable-peak per stage.
//
// Instrumentation sites use the BWFFT_OBS_* macros below. With the CMake
// option BWFFT_OBS=OFF the macros expand to nothing, so the hot paths
// compile to the uninstrumented code — no atomics, no timer syscalls.
// With BWFFT_OBS=ON, counter updates cost one thread-local add and slices
// are recorded only while tracing is armed (one relaxed flag load
// otherwise).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bwfft::obs {

// ---------------------------------------------------------------------------
// Counters

enum class Counter : int {
  BytesLoaded = 0,  ///< bytes streamed from source arrays (pipeline loads)
  BytesStored,      ///< bytes scattered to destination arrays (stores)
  NtStores,         ///< non-temporal stores, in 32-byte equivalents
  BarrierWaitNs,    ///< nanoseconds spent waiting at team barriers
  LoadBusyNs,       ///< data-thread busy time in load tasks
  ComputeBusyNs,    ///< compute-thread busy time in FFT kernels
  StoreBusyNs,      ///< data-thread busy time in rotated stores
  PlanCacheHit,     ///< tune::PlanCache lookups served from cache
  PlanCacheMiss,    ///< tune::PlanCache lookups that built a new plan
  TuneMeasure,      ///< candidate configs timed by the autotuner
  // The fault_* counters mirror the src/fault harness tallies (merged in
  // at snapshot time, not accumulated thread-locally here).
  FaultInjected,    ///< fault-injection probes that fired
  FaultRetry,       ///< recovery retries (plan rebuilt and re-run)
  FaultDegrade,     ///< graceful degradations (fallback path taken)
  TeamSpawn,        ///< thread teams spawned by the parallel::TeamPool
  TeamReuse,        ///< TeamPool acquires served by an existing team
  ExecSubmit,       ///< requests accepted by a BatchExecutor queue
  ExecReject,       ///< submits rejected (queue-full backpressure)
  ExecTimeout,      ///< requests expired before execution started
  ExecComplete,     ///< requests whose ExecReport was fulfilled
  ExecBatch,        ///< coalesced same-shape batches dispatched
  ExecQueueNs,      ///< total enqueue-to-start wait across requests
  BatchScalar,      ///< batched-codelet dispatches resolved to scalar
  BatchAvx2,        ///< batched-codelet dispatches resolved to AVX2+FMA
  BatchAvx512,      ///< batched-codelet dispatches resolved to AVX-512
  ExecShed,         ///< requests shed by CoDel / exec.shed admission
  ExecQuotaExceeded, ///< submits rejected by a tenant token bucket
  ExecRetry,        ///< transient failures re-queued by the RetryPolicy
  ExecQuarantine,   ///< plans evicted and rebuilt after repeated failure
  ExecIntegrityCheck, ///< output spot-checks performed (Parseval energy)
  ExecDataCorrupt,  ///< spot-checks that failed (kDataCorrupt reports)
  ExecSlowBatch,    ///< watchdog heartbeat flags on a stuck batch
};
inline constexpr int kCounterCount = 31;

/// Stable snake_case name (JSON keys in BENCH_*.json use these).
const char* counter_name(Counter c);

/// Add `delta` to a counter. Thread-local accumulation: never blocks,
/// no atomics. Safe from any thread.
void counter_add(Counter c, std::uint64_t delta);

/// Aggregate value of one counter across all threads (live and exited).
std::uint64_t counter_total(Counter c);

struct CounterSnapshot {
  std::uint64_t value[kCounterCount] = {};
  std::uint64_t operator[](Counter c) const {
    return value[static_cast<int>(c)];
  }
};

/// Aggregate all counters at once.
CounterSnapshot counters();

/// Zero every counter (live thread blocks and the retired accumulator).
/// Call between runs, not while a team is executing.
void reset_counters();

// ---------------------------------------------------------------------------
// Wall clock

/// Nanoseconds since an arbitrary process-local epoch (steady clock).
std::uint64_t now_ns();

// ---------------------------------------------------------------------------
// Trace recorder

/// Slice phases: 'L' load, 'C' compute, 'S' store, 'B' barrier wait,
/// 'G' whole engine stage, 'X' other.
struct Slice {
  const char* name = "";  ///< static-lifetime label
  char phase = 'X';
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  std::int64_t arg = -1;  ///< iteration / stage index (-1 = none)
  int tid = -1;           ///< obs-assigned thread id (registration order)
};

/// Arm the recorder; clears previously recorded slices.
void start_trace();
/// Disarm the recorder (recorded slices stay until the next start_trace).
void stop_trace();
bool trace_active();

/// Record one slice (no-op unless tracing is armed). `name` must outlive
/// the trace — pass string literals.
void record_slice(const char* name, char phase, std::uint64_t t0_ns,
                  std::uint64_t t1_ns, std::int64_t arg);

/// All recorded slices from every thread, sorted by start time. Slices
/// beyond each thread's ring capacity are dropped oldest-first;
/// dropped_slices() tells how many.
std::vector<Slice> drain_trace();
std::uint64_t dropped_slices();

/// RAII slice: times its scope, optionally accumulating the duration into
/// a busy counter even when tracing is off. `busy_counter` is
/// static_cast<int>(Counter::...) or kNoCounter.
inline constexpr int kNoCounter = -1;
class ScopedSlice {
 public:
  ScopedSlice(const char* name, char phase, std::int64_t arg = -1,
              int busy_counter = kNoCounter)
      : name_(name), phase_(phase), arg_(arg), busy_(busy_counter),
        active_(busy_counter != kNoCounter || trace_active()) {
    if (active_) t0_ = now_ns();
  }
  ~ScopedSlice() {
    if (!active_) return;
    const std::uint64_t t1 = now_ns();
    if (busy_ != kNoCounter) {
      counter_add(static_cast<Counter>(busy_), t1 - t0_);
    }
    record_slice(name_, phase_, t0_, t1, arg_);
  }
  ScopedSlice(const ScopedSlice&) = delete;
  ScopedSlice& operator=(const ScopedSlice&) = delete;

 private:
  const char* name_;
  char phase_;
  std::int64_t arg_;
  int busy_;
  bool active_;
  std::uint64_t t0_ = 0;
};

// ---------------------------------------------------------------------------
// Exporters

/// chrome://tracing "trace event format" JSON: one complete ('X') event
/// per slice, one track per obs thread id. Loadable in about:tracing and
/// Perfetto.
std::string chrome_trace_json(const std::vector<Slice>& slices);

/// Write chrome_trace_json to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<Slice>& slices);

/// Per-stage roofline: wall time of each 'G' slice against the time a
/// perfect streaming implementation would need for one read+write round
/// trip over `stage_bytes` at `bandwidth_gbs`.
struct StageRoofline {
  std::string name;
  double seconds = 0.0;
  double io_bound_seconds = 0.0;
  double pct_of_peak = 0.0;  ///< io_bound_seconds / seconds * 100
};

/// Extract 'G' slices (engine stages) from a trace and rate each against
/// the streaming bound. `stage_bytes` is the per-stage traffic of one
/// read + one write pass over the working set (2 * N * sizeof(cplx)).
std::vector<StageRoofline> roofline_from_trace(
    const std::vector<Slice>& slices, double stage_bytes,
    double bandwidth_gbs);

/// Human-readable roofline table to stdout.
void print_roofline(const std::vector<StageRoofline>& stages,
                    double bandwidth_gbs);

/// Human-readable counter dump to stdout (skips zero counters).
void print_counters(const CounterSnapshot& snap);

}  // namespace bwfft::obs

// ---------------------------------------------------------------------------
// Instrumentation macros — compile to nothing when BWFFT_OBS is off.

#if defined(BWFFT_OBS)
/// Add to a counter: BWFFT_OBS_COUNT(BytesLoaded, n).
#define BWFFT_OBS_COUNT(counter, delta) \
  ::bwfft::obs::counter_add(::bwfft::obs::Counter::counter, \
                            static_cast<std::uint64_t>(delta))
/// Scoped slice that also accumulates its duration into a busy counter.
#define BWFFT_OBS_TASK(var, name, phase, arg, busy_counter)       \
  ::bwfft::obs::ScopedSlice var(                                  \
      (name), (phase), static_cast<std::int64_t>(arg),            \
      static_cast<int>(::bwfft::obs::Counter::busy_counter))
/// Scoped slice recorded only while tracing is armed.
#define BWFFT_OBS_SCOPE(var, name, phase, arg) \
  ::bwfft::obs::ScopedSlice var((name), (phase), \
                                static_cast<std::int64_t>(arg))
#else
#define BWFFT_OBS_COUNT(counter, delta) ((void)0)
#define BWFFT_OBS_TASK(var, name, phase, arg, busy_counter) ((void)0)
#define BWFFT_OBS_SCOPE(var, name, phase, arg) ((void)0)
#endif
