#include "obs/obs.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>

#include "fault/fault.h"

namespace bwfft::obs {

namespace {

constexpr std::size_t kRingCap = std::size_t{1} << 14;  // slices per thread

struct ThreadLog;

/// Global registry of per-thread logs. Leaked on purpose: worker threads
/// may still be draining their thread-locals while process statics are
/// destroyed, so the registry must never die first.
struct Registry {
  std::mutex mu;
  std::vector<ThreadLog*> live;
  std::uint64_t retired_counters[kCounterCount] = {};
  std::vector<Slice> retired_slices;
  std::uint64_t dropped = 0;
  int next_tid = 0;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

std::atomic<bool> g_trace{false};

/// Per-thread accumulation block. Counter adds and slice pushes touch
/// only this (no locks); the registry mutex guards the live list and the
/// merge on thread exit.
struct ThreadLog {
  std::uint64_t counters[kCounterCount] = {};
  std::vector<Slice> ring;
  std::uint64_t pushed = 0;  // total pushes; ring index = pushed % cap
  int tid = -1;

  ThreadLog() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    tid = r.next_tid++;
    r.live.push_back(this);
  }

  ~ThreadLog() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (int i = 0; i < kCounterCount; ++i) {
      r.retired_counters[i] += counters[i];
    }
    append_slices_locked(r.retired_slices, r.dropped);
    r.live.erase(std::remove(r.live.begin(), r.live.end(), this),
                 r.live.end());
  }

  void push(const Slice& s) {
    if (ring.empty()) ring.resize(kRingCap);
    ring[static_cast<std::size_t>(pushed % kRingCap)] = s;
    ++pushed;
  }

  /// Copy recorded slices (oldest first) into `out`; counts overwritten
  /// entries into `dropped`. Caller holds the registry mutex.
  void append_slices_locked(std::vector<Slice>& out,
                            std::uint64_t& dropped) const {
    if (pushed == 0) return;
    if (pushed > kRingCap) dropped += pushed - kRingCap;
    const std::uint64_t kept = std::min<std::uint64_t>(pushed, kRingCap);
    for (std::uint64_t i = pushed - kept; i < pushed; ++i) {
      out.push_back(ring[static_cast<std::size_t>(i % kRingCap)]);
    }
  }

  void clear_slices() {
    pushed = 0;
  }
};

ThreadLog& tls() {
  thread_local ThreadLog log;
  return log;
}

std::uint64_t epoch_offset() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// JSON string escaping for slice names (conservative: names are ASCII
/// literals, but keep the exporter safe for arbitrary input).
void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

const char* phase_track(char phase) {
  switch (phase) {
    case 'L': return "load";
    case 'C': return "compute";
    case 'S': return "store";
    case 'B': return "barrier";
    case 'G': return "stage";
    default: return "other";
  }
}

}  // namespace

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::BytesLoaded: return "bytes_loaded";
    case Counter::BytesStored: return "bytes_stored";
    case Counter::NtStores: return "nt_stores";
    case Counter::BarrierWaitNs: return "barrier_wait_ns";
    case Counter::LoadBusyNs: return "load_busy_ns";
    case Counter::ComputeBusyNs: return "compute_busy_ns";
    case Counter::StoreBusyNs: return "store_busy_ns";
    case Counter::PlanCacheHit: return "plan_cache_hit";
    case Counter::PlanCacheMiss: return "plan_cache_miss";
    case Counter::TuneMeasure: return "tune_measure";
    case Counter::FaultInjected: return "fault_injected";
    case Counter::FaultRetry: return "fault_retry";
    case Counter::FaultDegrade: return "fault_degrade";
    case Counter::TeamSpawn: return "team_spawn";
    case Counter::TeamReuse: return "team_reuse";
    case Counter::ExecSubmit: return "exec_submit";
    case Counter::ExecReject: return "exec_reject";
    case Counter::ExecTimeout: return "exec_timeout";
    case Counter::ExecComplete: return "exec_complete";
    case Counter::ExecBatch: return "exec_batch";
    case Counter::ExecQueueNs: return "exec_queue_ns";
    case Counter::BatchScalar: return "batch_scalar";
    case Counter::BatchAvx2: return "batch_avx2";
    case Counter::BatchAvx512: return "batch_avx512";
    case Counter::ExecShed: return "exec_shed";
    case Counter::ExecQuotaExceeded: return "exec_quota_exceeded";
    case Counter::ExecRetry: return "exec_retry";
    case Counter::ExecQuarantine: return "exec_quarantine";
    case Counter::ExecIntegrityCheck: return "exec_integrity_check";
    case Counter::ExecDataCorrupt: return "exec_data_corrupt";
    case Counter::ExecSlowBatch: return "exec_slow_batch";
  }
  return "?";
}

void counter_add(Counter c, std::uint64_t delta) {
  tls().counters[static_cast<int>(c)] += delta;
}

std::uint64_t counter_total(Counter c) {
  return counters()[c];
}

CounterSnapshot counters() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  CounterSnapshot snap;
  for (int i = 0; i < kCounterCount; ++i) snap.value[i] = r.retired_counters[i];
  for (const ThreadLog* log : r.live) {
    for (int i = 0; i < kCounterCount; ++i) snap.value[i] += log->counters[i];
  }
  // The fault harness keeps its own tallies (it sits below this layer in
  // the dependency graph); mirror them into the snapshot here.
  snap.value[static_cast<int>(Counter::FaultInjected)] =
      fault::injected_count();
  snap.value[static_cast<int>(Counter::FaultRetry)] = fault::retried_count();
  snap.value[static_cast<int>(Counter::FaultDegrade)] =
      fault::degraded_count();
  return snap;
}

void reset_counters() {
  fault::reset_stats();
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (auto& v : r.retired_counters) v = 0;
  for (ThreadLog* log : r.live) {
    for (auto& v : log->counters) v = 0;
  }
}

std::uint64_t now_ns() { return epoch_offset(); }

void start_trace() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.retired_slices.clear();
  r.dropped = 0;
  for (ThreadLog* log : r.live) log->clear_slices();
  g_trace.store(true, std::memory_order_release);
}

void stop_trace() { g_trace.store(false, std::memory_order_release); }

bool trace_active() { return g_trace.load(std::memory_order_relaxed); }

void record_slice(const char* name, char phase, std::uint64_t t0_ns,
                  std::uint64_t t1_ns, std::int64_t arg) {
  if (!trace_active()) return;
  ThreadLog& log = tls();
  log.push(Slice{name, phase, t0_ns, t1_ns, arg, log.tid});
}

std::vector<Slice> drain_trace() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::vector<Slice> out = r.retired_slices;
  std::uint64_t dropped = 0;
  for (const ThreadLog* log : r.live) {
    log->append_slices_locked(out, dropped);
  }
  std::sort(out.begin(), out.end(),
            [](const Slice& a, const Slice& b) { return a.t0_ns < b.t0_ns; });
  return out;
}

std::uint64_t dropped_slices() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::uint64_t dropped = r.dropped;
  for (const ThreadLog* log : r.live) {
    if (log->pushed > kRingCap) dropped += log->pushed - kRingCap;
  }
  return dropped;
}

std::string chrome_trace_json(const std::vector<Slice>& slices) {
  std::string out;
  out.reserve(slices.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Slice& s : slices) {
    if (!first) out += ',';
    first = false;
    // Timestamps and durations are microseconds (doubles) per the trace
    // event format; phase 'X' = complete event.
    char buf[160];
    out += "{\"name\":\"";
    append_escaped(out, s.name);
    out += "\",\"cat\":\"";
    out += phase_track(s.phase);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,"
                  "\"tid\":%d,\"args\":{\"iter\":%" PRId64 "}}",
                  static_cast<double>(s.t0_ns) / 1e3,
                  static_cast<double>(s.t1_ns - s.t0_ns) / 1e3, s.tid,
                  static_cast<std::int64_t>(s.arg));
    out += buf;
  }
  out += "]}";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<Slice>& slices) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = chrome_trace_json(slices);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  return written == json.size() && closed;
}

std::vector<StageRoofline> roofline_from_trace(
    const std::vector<Slice>& slices, double stage_bytes,
    double bandwidth_gbs) {
  std::vector<StageRoofline> out;
  const double io_secs =
      bandwidth_gbs > 0 ? stage_bytes / (bandwidth_gbs * 1e9) : 0.0;
  for (const Slice& s : slices) {
    if (s.phase != 'G') continue;
    StageRoofline r;
    r.name = s.name;
    r.seconds = static_cast<double>(s.t1_ns - s.t0_ns) / 1e9;
    r.io_bound_seconds = io_secs;
    r.pct_of_peak = r.seconds > 0 ? 100.0 * io_secs / r.seconds : 0.0;
    out.push_back(std::move(r));
  }
  return out;
}

void print_roofline(const std::vector<StageRoofline>& stages,
                    double bandwidth_gbs) {
  std::printf("roofline (STREAM %.1f GB/s):\n", bandwidth_gbs);
  for (const StageRoofline& s : stages) {
    std::printf("  %-24s %8.3f ms  io-bound %8.3f ms  %5.1f%% of peak\n",
                s.name.c_str(), s.seconds * 1e3, s.io_bound_seconds * 1e3,
                s.pct_of_peak);
  }
}

void print_counters(const CounterSnapshot& snap) {
  std::printf("counters:\n");
  for (int i = 0; i < kCounterCount; ++i) {
    if (snap.value[i] == 0) continue;
    std::printf("  %-18s %" PRIu64 "\n",
                counter_name(static_cast<Counter>(i)), snap.value[i]);
  }
}

}  // namespace bwfft::obs
