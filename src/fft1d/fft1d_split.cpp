#include "fft1d/fft1d_split.h"

#include <cstring>

#include "common/error.h"
#include "kernels/twiddle.h"
#include "kernels/vecops.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace bwfft {

namespace {

double* split_scratch(std::size_t doubles) {
  static thread_local dvec scratch;
  if (scratch.size() < doubles) scratch.resize(doubles);
  return scratch.data();
}

/// One split butterfly over a packet of `lanes` values:
///   lo = a + b;  hi = (a - b) * w   (complex, by components)
/// All four streams (a_re, a_im, ...) are homogeneous doubles — no lane
/// shuffles, the point of the block-interleaved format.
inline void split_butterfly(const double* a, const double* b, double wr,
                            double wi, double* lo, double* hi, idx_t lanes) {
  const double* a_re = a;
  const double* a_im = a + lanes;
  const double* b_re = b;
  const double* b_im = b + lanes;
  double* lo_re = lo;
  double* lo_im = lo + lanes;
  double* hi_re = hi;
  double* hi_im = hi + lanes;
  idx_t j = 0;
#if defined(__AVX2__) && defined(__FMA__)
  if (!force_scalar()) {
    const __m256d vwr = _mm256_set1_pd(wr);
    const __m256d vwi = _mm256_set1_pd(wi);
    for (; j + 4 <= lanes; j += 4) {
      const __m256d ar = _mm256_loadu_pd(a_re + j);
      const __m256d ai = _mm256_loadu_pd(a_im + j);
      const __m256d br = _mm256_loadu_pd(b_re + j);
      const __m256d bi = _mm256_loadu_pd(b_im + j);
      _mm256_storeu_pd(lo_re + j, _mm256_add_pd(ar, br));
      _mm256_storeu_pd(lo_im + j, _mm256_add_pd(ai, bi));
      const __m256d dr = _mm256_sub_pd(ar, br);
      const __m256d di = _mm256_sub_pd(ai, bi);
      // (dr + i di)(wr + i wi) = (dr wr - di wi) + i (dr wi + di wr)
      _mm256_storeu_pd(hi_re + j,
                       _mm256_fmsub_pd(dr, vwr, _mm256_mul_pd(di, vwi)));
      _mm256_storeu_pd(hi_im + j,
                       _mm256_fmadd_pd(dr, vwi, _mm256_mul_pd(di, vwr)));
    }
  }
#endif
  for (; j < lanes; ++j) {
    lo_re[j] = a_re[j] + b_re[j];
    lo_im[j] = a_im[j] + b_im[j];
    const double dr = a_re[j] - b_re[j];
    const double di = a_im[j] - b_im[j];
    hi_re[j] = dr * wr - di * wi;
    hi_im[j] = dr * wi + di * wr;
  }
}

}  // namespace

SplitFft1d::SplitFft1d(idx_t n, Direction dir) : n_(n), dir_(dir) {
  BWFFT_CHECK(is_pow2(n), "split kernel requires power-of-two n");
  levels_ = log2_floor(n_);
  for (idx_t len = n_; len > 1; len >>= 1) {
    const cvec t = root_table(len, len / 2, dir_);
    dvec re(t.size()), im(t.size());
    for (std::size_t p = 0; p < t.size(); ++p) {
      re[p] = t[p].real();
      im[p] = t[p].imag();
    }
    tw_re_.push_back(std::move(re));
    tw_im_.push_back(std::move(im));
  }
}

void SplitFft1d::stockham_tile(double* tile, double* scratch,
                               idx_t lanes) const {
  // Same DIF Stockham schedule as the interleaved kernel; a "packet" here
  // is the 2*lanes-double split block of one logical row.
  const idx_t packet = 2 * lanes;
  double* src = tile;
  double* dst = scratch;
  idx_t len = n_;
  idx_t s = 1;  // packet stride of this level
  for (int level = 0; level < levels_; ++level) {
    const idx_t half = len / 2;
    const dvec& wr = tw_re_[static_cast<std::size_t>(level)];
    const dvec& wi = tw_im_[static_cast<std::size_t>(level)];
    for (idx_t p = 0; p < half; ++p) {
      for (idx_t q = 0; q < s; ++q) {
        split_butterfly(src + (q + s * p) * packet,
                        src + (q + s * (p + half)) * packet,
                        wr[static_cast<std::size_t>(p)],
                        wi[static_cast<std::size_t>(p)],
                        dst + (q + s * 2 * p) * packet,
                        dst + (q + s * (2 * p + 1)) * packet, lanes);
      }
    }
    std::swap(src, dst);
    len >>= 1;
    s <<= 1;
  }
  if (src != tile) {
    std::memcpy(tile, src,
                static_cast<std::size_t>(n_ * packet) * sizeof(double));
  }
}

void SplitFft1d::apply_lanes(double* data, idx_t lanes, idx_t count) const {
  BWFFT_CHECK(lanes >= 1 && count >= 0, "bad lanes/count");
  if (n_ == 1 || count == 0) return;
  const std::size_t tile_doubles = static_cast<std::size_t>(2 * n_ * lanes);
  double* scratch = split_scratch(tile_doubles);
  for (idx_t t = 0; t < count; ++t) {
    stockham_tile(data + static_cast<idx_t>(tile_doubles) * t, scratch, lanes);
  }
}

void SplitFft1d::pack(const cplx* in, double* out, idx_t n, idx_t lanes) {
  for (idx_t j = 0; j < n; ++j) {
    const cplx* row = in + j * lanes;
    double* re = out + 2 * j * lanes;
    double* im = re + lanes;
    for (idx_t l = 0; l < lanes; ++l) {
      re[l] = row[l].real();
      im[l] = row[l].imag();
    }
  }
}

void SplitFft1d::unpack(const double* in, cplx* out, idx_t n, idx_t lanes) {
  for (idx_t j = 0; j < n; ++j) {
    const double* re = in + 2 * j * lanes;
    const double* im = re + lanes;
    cplx* row = out + j * lanes;
    for (idx_t l = 0; l < lanes; ++l) row[l] = cplx(re[l], im[l]);
  }
}

}  // namespace bwfft
