// Mixed-radix Cooley–Tukey engine for smooth non-power-of-two sizes.
//
// Factorises n into codelet radices (2..8, 16) and applies the recursive
// decomposition DFT_n = (combine with twiddles) . (I_a (x) DFT_{n/a}) .
// (decimate by a) — the general form of the factorisation in §II-D. Sizes
// whose prime factors exceed 7 fall back to Bluestein in Fft1d. Exact
// (no chirp approximation) and O(n log n) for smooth n.
#pragma once

#include <vector>

#include "common/aligned.h"
#include "common/types.h"

namespace bwfft {

class MixedRadixFft {
 public:
  /// True if n factorises completely into codelet radices.
  static bool supported(idx_t n);

  MixedRadixFft(idx_t n, Direction dir);

  idx_t size() const { return n_; }

  /// In-place transform of one contiguous pencil of length n.
  void apply(cplx* data) const;

 private:
  struct Level {
    idx_t radix;    ///< codelet size a of this level
    idx_t sub;      ///< remaining transform length b = N_l / a
    cvec twiddles;  ///< w_{N_l}^{p q}, p < a (row), q < b (column)
  };

  void recurse(const cplx* in, idx_t is, cplx* out, std::size_t level) const;

  idx_t n_;
  Direction dir_;
  std::vector<Level> levels_;
};

}  // namespace bwfft
