// Real-to-complex 1D FFT (extension beyond the paper's complex-only
// scope, provided for downstream users).
//
// An n-point real sequence is packed into an n/2-point complex sequence
// (even samples real part, odd samples imaginary part), transformed with
// the complex engine, and untangled into the n/2+1 non-redundant spectrum
// bins; the inverse reverses the untangling. Cost: one half-length
// complex FFT plus an O(n) pass.
#pragma once

#include "common/aligned.h"
#include "common/types.h"
#include "fft1d/fft1d.h"

namespace bwfft {

class RealFft1d {
 public:
  /// n must be even and >= 2 (the half-length transform handles any
  /// factorisation the complex engine does).
  explicit RealFft1d(idx_t n);

  idx_t size() const { return n_; }
  /// Number of complex bins the forward transform produces: n/2 + 1
  /// (bins 0 and n/2 are purely real for real input).
  idx_t spectrum_size() const { return n_ / 2 + 1; }

  /// out[k] = sum_j in[j] e^{-2 pi i j k / n}, k = 0 .. n/2. The remaining
  /// bins are conj-symmetric: X[n-k] = conj(X[k]).
  void forward(const double* in, cplx* out) const;

  /// Reconstruct the real sequence from the half spectrum. Without
  /// normalisation the output is n * x (matching the unnormalised complex
  /// inverse); with normalize = true it is x.
  void inverse(const cplx* in, double* out, bool normalize = false) const;

 private:
  idx_t n_, h_;
  Fft1d fwd_, inv_;
  cvec w_;  // w_n^k, k = 0 .. h
};

}  // namespace bwfft
