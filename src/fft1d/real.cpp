#include "fft1d/real.h"

#include "common/error.h"
#include "kernels/twiddle.h"

namespace bwfft {

RealFft1d::RealFft1d(idx_t n)
    : n_(n),
      h_(n / 2),
      fwd_(n / 2 > 0 ? n / 2 : 1, Direction::Forward),
      inv_(n / 2 > 0 ? n / 2 : 1, Direction::Inverse),
      w_(root_table(n, n / 2 + 1, Direction::Forward)) {
  BWFFT_CHECK(n >= 2 && n % 2 == 0, "real FFT needs even n >= 2");
}

void RealFft1d::forward(const double* in, cplx* out) const {
  // Pack even/odd samples and transform at half length.
  cvec z(static_cast<std::size_t>(h_));
  for (idx_t j = 0; j < h_; ++j) z[static_cast<std::size_t>(j)] = cplx(in[2 * j], in[2 * j + 1]);
  fwd_.apply_batch(z.data(), 1);

  // Untangle: X[k] = Fe[k] + w_n^k Fo[k] with
  //   Fe[k] = (Z[k] + conj(Z[h-k]))/2,  Fo[k] = (Z[k] - conj(Z[h-k]))/(2i)
  // and Z[h] == Z[0].
  for (idx_t k = 0; k <= h_; ++k) {
    const cplx zk = z[static_cast<std::size_t>(k % h_)];
    const cplx zc = std::conj(z[static_cast<std::size_t>((h_ - k) % h_)]);
    const cplx fe = 0.5 * (zk + zc);
    const cplx diff = zk - zc;
    const cplx fo(0.5 * diff.imag(), -0.5 * diff.real());  // diff / (2i)
    out[k] = fe + w_[static_cast<std::size_t>(k)] * fo;
  }
}

void RealFft1d::inverse(const cplx* in, double* out, bool normalize) const {
  // Retangle: Z[k] = Fe[k] + i Fo[k] with
  //   Fe[k] = (X[k] + conj(X[h-k]))/2
  //   Fo[k] = conj(w_n^k) (X[k] - conj(X[h-k]))/2
  cvec z(static_cast<std::size_t>(h_));
  for (idx_t k = 0; k < h_; ++k) {
    const cplx xk = in[k];
    const cplx xc = std::conj(in[h_ - k]);
    const cplx fe = 0.5 * (xk + xc);
    const cplx fo = std::conj(w_[static_cast<std::size_t>(k)]) * (0.5 * (xk - xc));
    z[static_cast<std::size_t>(k)] = fe + cplx(-fo.imag(), fo.real());  // fe + i fo
  }
  inv_.apply_batch(z.data(), 1);

  // The unnormalised half-length inverse yields h * (x_even + i x_odd):
  // scale by 2 for the n * x convention of the complex engine, or by 1/h
  // to recover x directly.
  const double scale = normalize ? 1.0 / static_cast<double>(h_) : 2.0;
  for (idx_t j = 0; j < h_; ++j) {
    out[2 * j] = scale * z[static_cast<std::size_t>(j)].real();
    out[2 * j + 1] = scale * z[static_cast<std::size_t>(j)].imag();
  }
}

}  // namespace bwfft
