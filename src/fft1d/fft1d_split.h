// Split-format (block-interleaved) 1D FFT kernel — the "cache aware FFT"
// data layout of §IV-A (mixed data layout kernels, ref [18]).
//
// Complex-interleaved storage forces every SIMD complex multiply to
// shuffle real/imaginary lanes. Storing blocks of mu real parts followed
// by the matching mu imaginary parts makes all AVX lanes homogeneous: a
// butterfly on one packet is pure vertical adds/mults with no shuffles.
// The paper changes format once on entry to the first stage, computes all
// stages block-interleaved, and changes back in the last stage; this class
// provides the compute kernel of that scheme plus the in-cache format
// changes, and the ablation benchmark quantifies the difference against
// the interleaved kernel.
//
// Tile layout (one tile = one transform batch element): n logical complex
// rows of `lanes` values, stored as alternating blocks
//   [re x lanes][im x lanes] [re x lanes][im x lanes] ...
// i.e. row j's real parts at doubles [2*j*lanes, 2*j*lanes+lanes) and its
// imaginary parts immediately after.
#pragma once

#include <vector>

#include "common/aligned.h"
#include "common/types.h"

namespace bwfft {

class SplitFft1d {
 public:
  /// Power-of-two n only (this is a compute kernel for the rotated-stage
  /// engines, whose pencil lengths are the transform dimensions).
  SplitFft1d(idx_t n, Direction dir);

  idx_t size() const { return n_; }

  /// In-place transform of `count` block-interleaved tiles of n x lanes.
  /// `data` holds 2*n*lanes doubles per tile.
  void apply_lanes(double* data, idx_t lanes, idx_t count) const;

  /// Format changes between complex-interleaved tiles and the split tile
  /// layout (both n x lanes); dst has 2*n*lanes doubles / n*lanes cplx.
  static void pack(const cplx* in, double* out, idx_t n, idx_t lanes);
  static void unpack(const double* in, cplx* out, idx_t n, idx_t lanes);

 private:
  void stockham_tile(double* tile, double* scratch, idx_t lanes) const;

  idx_t n_;
  Direction dir_;
  int levels_ = 0;
  // Per-level twiddles in structure-of-arrays form for broadcast loads.
  std::vector<dvec> tw_re_, tw_im_;
};

}  // namespace bwfft
