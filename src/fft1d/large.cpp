#include "fft1d/large.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "fft/stage.h"
#include "kernels/batch.h"
#include "kernels/twiddle.h"
#include "layout/stream_copy.h"
#include "obs/obs.h"
#include "parallel/team_pool.h"

namespace bwfft {

namespace {

/// Refresh the twiddle recurrence with an exactly computed root every this
/// many steps, bounding the multiplicative drift to ~128 eps (well under
/// the transform's own O(sqrt(log n)) rounding growth).
constexpr idx_t kTwiddleRefresh = 128;

/// Group-width caps: the column pass keeps its twiddle recurrence state
/// (w, step) in stack arrays and the row pass gathers output runs into a
/// stack array, so both widths are bounded at compile time. 32 columns
/// (512 B rows — a whole n1 x 32 tile stays L2-resident up to n1 = 4096)
/// and 128 rows (2 KiB output runs) make every strided access in either
/// pass a TLB-friendly multi-line run instead of a single cacheline.
constexpr idx_t kColGroupCap = 32;
constexpr idx_t kRowGroupCap = 128;

/// Strided column-pass reads walk n1 addresses a full row apart — a
/// pattern no hardware prefetcher follows — so the gather issues its own
/// prefetches this many rows ahead.
constexpr idx_t kPrefetchRows = 8;

/// Width of one pass's groups: the caller's packet_elems when it fits
/// (kBadPlan otherwise — the tuner never enumerates a misfit), else the
/// largest divisor of `dim` within the block budget, pushed toward `cap`
/// so the strided side of the pass moves long contiguous runs.
idx_t pick_width(idx_t dim, idx_t block_budget, idx_t cap, idx_t requested) {
  if (requested > 0) {
    BWFFT_CHECK(requested <= cap && dim % requested == 0,
                "packet_elems must divide both four-step factors");
    return requested;
  }
  const idx_t hi = std::min(cap, dim);
  const idx_t lo = std::min<idx_t>(4, hi);
  return rows_per_block(dim, std::clamp(block_budget, lo, hi));
}

}  // namespace

namespace {

/// Column-tile budget: the default n1 keeps one n1 x kColGroupCap column
/// tile within ~256 KiB, so the column-pass lanes transform runs on
/// core-private cache instead of the shared LLC.
constexpr idx_t kColTileTargetElems = 16384;

/// Row-length ceiling: n2 is kept small enough that one row (plus its
/// Stockham ping-pong scratch) stays cache-resident during the row pass.
constexpr idx_t kMaxRowFitElems = 65536;

}  // namespace

std::pair<idx_t, idx_t> Fft1dLarge::choose_factors(idx_t n,
                                                   idx_t requested_n1) {
  BWFFT_CHECK(n >= 1, "transform size must be positive");
  if (requested_n1 > 0) {
    BWFFT_CHECK(n % requested_n1 == 0,
                "factor_n1 must divide the transform size");
    return {requested_n1, n / requested_n1};
  }
  // Skewed default: the largest divisor of n that keeps the column tile
  // core-private (n1 <= ~kColTileTargetElems / W) while capping the row
  // length (n2 <= kMaxRowFitElems once n is big enough to force it).
  // Measured against near-square splits this is 15-30% faster across
  // 2^22..2^26: short column FFTs run in L2 and the long n2 rows stay
  // contiguous. Below n ~ 2^18 the sqrt bound takes over and the split
  // degrades gracefully to near-square (n1 <= n2). Primes (and n < 4)
  // have no divisor in [2, n/2] and degenerate to the flat path.
  idx_t root = 1;
  while ((root + 1) * (root + 1) <= n) ++root;
  const idx_t target =
      std::min(std::max<idx_t>(kColTileTargetElems / kColGroupCap,
                               n / kMaxRowFitElems),
               root);
  for (idx_t d = std::min(target, n / 2); d >= 2; --d) {
    if (n % d == 0) return {d, n / d};
  }
  return {1, n};
}

Fft1dLarge::Fft1dLarge(idx_t n, Direction dir, const FftOptions& opts)
    : n_(n), dir_(dir), opts_(opts) {
  std::tie(n1_, n2_) = choose_factors(n_, opts_.factor_n1);
  if (n1_ <= 1) {
    // No usable split: one flat pass. Still a valid plan — the facade
    // must not reject sizes the tuner or exec layer routes here.
    n1_ = 1;
    n2_ = n_;
    cols_per_group_ = rows_per_group_ = 1;
    flat_ = std::make_shared<Fft1d>(n_, dir_, opts_.isa);
    return;
  }
  const idx_t block_req = opts_.block_elems > 0
                              ? opts_.block_elems
                              : default_block_elems(opts_.topo);
  cols_per_group_ =
      pick_width(n2_, block_req / n1_, kColGroupCap, opts_.packet_elems);
  rows_per_group_ =
      pick_width(n1_, block_req / n2_, kRowGroupCap, opts_.packet_elems);

  fft_n1_ = std::make_shared<Fft1d>(n1_, dir_, opts_.isa);
  fft_n2_ = std::make_shared<Fft1d>(n2_, dir_, opts_.isa);

  const int p = opts_.threads > 0 ? opts_.threads : opts_.topo.total_threads();
  const int pc = opts_.compute_threads >= 0 ? opts_.compute_threads
                                            : (p <= 1 ? p : p / 2);
  roles_ = make_role_plan(p, pc, opts_.topo);
  team_ = parallel::make_team(
      p, opts_.pin_threads ? roles_.cpu : std::vector<int>{},
      opts_.team_pool);

  // Column-pass blocks are whole column groups (n1 * cols_per_group_
  // elems); row-pass blocks whole row groups (rows_per_group_ * n2).
  idx_t block = block_req;
  block = std::max(block, n1_ * cols_per_group_);
  block = std::max(block, rows_per_group_ * n2_);
  pipeline_ = std::make_unique<DoubleBufferPipeline>(*team_, roles_, block);

  col_roots_ = root_table(n_, n2_, dir_);
}

void Fft1dLarge::column_pass(cplx* data) {
  // (DFT_{n1} (x) I_{n2}) then D_{n2}^{n1 n2}, tiled over groups of W
  // contiguous columns. Tiles are row-major n1 x W, so the strided side
  // of the loads and stores moves W-element (up to 1 KiB) contiguous
  // runs and the lanes kernel sweeps W-wide SIMD rows.
  const idx_t W = cols_per_group_;
  const idx_t groups_total = n2_ / W;
  const idx_t group_elems = n1_ * W;
  const idx_t groups_per_block =
      rows_per_block(groups_total, pipeline_->block_elems() / group_elems);
  const bool nt = opts_.nontemporal;

  BWFFT_OBS_SCOPE(obs_stage, "large1d-cols", 'G', groups_total);
  PipelineStage stage;
  stage.iterations = groups_total / groups_per_block;
  stage.load = [=, this](idx_t i, cplx* buf, int rank, int parts) {
    auto [g0, g1] = ThreadTeam::chunk(groups_per_block, parts, rank);
    for (idx_t g = g0; g < g1; ++g) {
      const idx_t col0 = (i * groups_per_block + g) * W;
      cplx* tile = buf + g * group_elems;
      for (idx_t r = 0; r < n1_; ++r) {
        if (r + kPrefetchRows < n1_) {
          const char* next = reinterpret_cast<const char*>(
              data + (r + kPrefetchRows) * n2_ + col0);
          for (idx_t b = 0; b < W * static_cast<idx_t>(sizeof(cplx));
               b += 64) {
            __builtin_prefetch(next + b, 0, 0);
          }
        }
        std::memcpy(tile + r * W, data + r * n2_ + col0,
                    static_cast<std::size_t>(W) * sizeof(cplx));
      }
    }
    if (g1 > g0) {
      BWFFT_OBS_COUNT(BytesLoaded, (g1 - g0) * group_elems * sizeof(cplx));
    }
  };
  stage.compute = [=, this](idx_t i, cplx* buf, int rank, int parts) {
    auto [g0, g1] = ThreadTeam::chunk(groups_per_block, parts, rank);
    if (g1 <= g0) return;
    fft_n1_->apply_lanes(buf + g0 * group_elems, W, g1 - g0);
    // Twiddle scale D: element (r, q) *= w_N^{r q}. All W columns step
    // their geometric recurrence together through the SIMD diagonal
    // kernel; each kTwiddleRefresh-row chunk re-anchors the recurrence
    // to exactly computed roots to bound drift.
    cplx w[kColGroupCap], step[kColGroupCap];
    for (idx_t g = g0; g < g1; ++g) {
      cplx* tile = buf + g * group_elems;
      const idx_t col0 = (i * groups_per_block + g) * W;
      for (idx_t l = 0; l < W; ++l) {
        step[l] = col_roots_[static_cast<std::size_t>(col0 + l)];
      }
      for (idx_t r0 = 0; r0 < n1_; r0 += kTwiddleRefresh) {
        for (idx_t l = 0; l < W; ++l) {
          w[l] = root_of_unity(n_, (r0 * (col0 + l)) % n_, dir_);
        }
        kernels::diag_scale_rows(tile + r0 * W,
                                 std::min(kTwiddleRefresh, n1_ - r0), W, w,
                                 step, opts_.isa);
      }
    }
  };
  stage.store = [=, this](idx_t i, const cplx* buf, int rank, int parts) {
    auto [g0, g1] = ThreadTeam::chunk(groups_per_block, parts, rank);
    for (idx_t g = g0; g < g1; ++g) {
      const idx_t col0 = (i * groups_per_block + g) * W;
      const cplx* tile = buf + g * group_elems;
      for (idx_t r = 0; r < n1_; ++r) {
        store_packet(data + r * n2_ + col0, tile + r * W, W, nt);
      }
    }
    if (g1 > g0) {
      BWFFT_OBS_COUNT(BytesStored, (g1 - g0) * group_elems * sizeof(cplx));
    }
  };
  pipeline_->execute(stage);
}

void Fft1dLarge::row_pass(const cplx* src, cplx* dst) {
  // (I_{n1} (x) DFT_{n2}) then the final L_{n2}^{n1 n2}: contiguous rows
  // in, transposing scatter out. Blocks are R-row groups, so the output
  // side writes R-element (up to 2 KiB) contiguous runs — the gather
  // feeding each run walks R cached rows of the tile in lockstep.
  const idx_t R = rows_per_group_;
  const idx_t row_groups = n1_ / R;
  const idx_t group_elems = R * n2_;
  const idx_t groups_per_block =
      rows_per_block(row_groups, pipeline_->block_elems() / group_elems);
  const bool nt = opts_.nontemporal;

  BWFFT_OBS_SCOPE(obs_stage, "large1d-rows", 'G', row_groups);
  PipelineStage stage;
  stage.iterations = row_groups / groups_per_block;
  stage.load = [=, this](idx_t i, cplx* buf, int rank, int parts) {
    auto [g0, g1] = ThreadTeam::chunk(groups_per_block, parts, rank);
    if (g1 > g0) {
      const idx_t row0 = (i * groups_per_block + g0) * R;
      std::memcpy(buf + g0 * group_elems, src + row0 * n2_,
                  static_cast<std::size_t>((g1 - g0) * group_elems) *
                      sizeof(cplx));
      BWFFT_OBS_COUNT(BytesLoaded, (g1 - g0) * group_elems * sizeof(cplx));
    }
  };
  stage.compute = [=, this](idx_t, cplx* buf, int rank, int parts) {
    auto [g0, g1] = ThreadTeam::chunk(groups_per_block, parts, rank);
    if (g1 > g0) fft_n2_->apply_batch(buf + g0 * group_elems, (g1 - g0) * R);
  };
  stage.store = [=, this](idx_t i, const cplx* buf, int rank, int parts) {
    auto [g0, g1] = ThreadTeam::chunk(groups_per_block, parts, rank);
    cplx run[kRowGroupCap];
    for (idx_t g = g0; g < g1; ++g) {
      const idx_t row0 = (i * groups_per_block + g) * R;
      const cplx* tile = buf + g * group_elems;
      // The output run for column q is the q-th element of each of the R
      // rows. Consecutive q revisit the same R cachelines, so the gather
      // stays L1-resident between the contiguous NT stores.
      for (idx_t q = 0; q < n2_; ++q) {
        for (idx_t l = 0; l < R; ++l) run[l] = tile[l * n2_ + q];
        store_packet(dst + q * n1_ + row0, run, R, nt);
      }
    }
    if (g1 > g0) {
      BWFFT_OBS_COUNT(BytesStored, (g1 - g0) * group_elems * sizeof(cplx));
    }
  };
  pipeline_->execute(stage);
}

void Fft1dLarge::execute(cplx* in, cplx* out) {
  BWFFT_CHECK(in != out, "four-step large 1D is out of place");
  if (flat_) {
    flat_->apply_oop(in, out);
    if (dir_ == Direction::Inverse && opts_.normalize_inverse) {
      flat_->scale_inverse(out, n_);
    }
    return;
  }
  column_pass(in);
  row_pass(in, out);
  if (dir_ == Direction::Inverse && opts_.normalize_inverse) {
    const double s = 1.0 / static_cast<double>(n_);
    parallel_for_chunks(*team_, n_, [&](int, idx_t lo, idx_t hi) {
      for (idx_t i = lo; i < hi; ++i) out[i] *= s;
    });
  }
}

}  // namespace bwfft
