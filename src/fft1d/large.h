// Tuned four-step facade for out-of-LLC 1D transforms.
//
// The paper's §V leaves huge 1D FFTs open: once a single transform
// outgrows the shared cache-resident buffer, the multidimensional
// pipeline has nothing to tile. Fft1dLarge closes the gap by viewing the
// 1D problem as a tiled 2D one — the SPL Cooley–Tukey rewrite the spl
// layer expresses as spl::dft1d_four_step(n1, n2, dir):
//
//   DFT_{n1 n2} = L_{n2}^{n1 n2} (I_{n1} (x) DFT_{n2}) D_{n2}^{n1 n2}
//                 (DFT_{n1} (x) I_{n2})
//
// run as two tiled, software-pipelined passes through the load/compute/
// store double buffer (pipeline/pipeline.h) on a pinned ThreadTeam:
//
//   column pass  (DFT_{n1} (x) I_{n2}), then D:  groups of up to 64
//       contiguous columns are gathered row by row (each strided read
//       moves a ~1 KiB run), transformed with the wide-lane kernel,
//       scaled by the twiddle diagonal while cached (all columns step a
//       geometric recurrence together over contiguous rows, exactly
//       refreshed every kTwiddleRefresh rows to bound drift), and
//       streamed back as the same contiguous runs;
//   row pass     (I_{n1} (x) DFT_{n2}), then L:  contiguous rows are
//       streamed in, transformed with the batched codelets, and scattered
//       through the final stride permutation — per output column an
//       in-cache gather over up to 128 tile rows feeds one contiguous
//       ~2 KiB NT store.
//
// A transform larger than the LLC therefore streams exactly twice
// through DRAM with all reshaping hidden behind compute. The n = n1*n2
// factorization is a tunable (FftOptions::factor_n1; 0 = a skewed
// cache-sized split — short core-private column FFTs, long contiguous
// rows),
// exposed to the tuner as a grid axis and persisted in wisdom. Factors
// need not be powers of two: any n1 | n works — each factor runs through
// Fft1d (Stockham / mixed-radix / Bluestein) and the packet widths adapt
// to the largest power of two dividing each factor. Sizes too small or
// too prime to split (no divisor in [2, n/2]) degenerate to one flat
// Fft1d pass.
#pragma once

#include <memory>
#include <utility>

#include "common/aligned.h"
#include "fft/options.h"
#include "fft1d/fft1d.h"
#include "parallel/roles.h"
#include "parallel/team.h"
#include "pipeline/pipeline.h"

namespace bwfft {

class Fft1dLarge {
 public:
  /// Plan a 1D transform of size n (n >= 1). opts.factor_n1 requests a
  /// specific n = n1*n2 split (kBadPlan unless it divides n); 0 picks a
  /// skewed split whose column tile is core-private (n1 ~ 512, larger
  /// only when needed to cap the row length). Inputs without any divisor
  /// in [2, n/2] (primes, n < 4) run the flat fallback.
  Fft1dLarge(idx_t n, Direction dir, const FftOptions& opts = {});

  idx_t size() const { return n_; }
  /// The resolved split (n1 * n2 == n; n1 == 1 on the flat fallback).
  idx_t factor_n1() const { return n1_; }
  idx_t factor_n2() const { return n2_; }

  /// Out-of-place transform (in != out); `in` is used as scratch.
  void execute(cplx* in, cplx* out);

  /// Resolve a factorization request against n: a valid requested n1 is
  /// honoured, 0 yields the skewed cache-sized default, and an n with no
  /// divisor in [2, n/2] yields {1, n} (the flat fallback). Throws
  /// kBadPlan when `requested_n1` does not divide n.
  static std::pair<idx_t, idx_t> choose_factors(idx_t n, idx_t requested_n1);

 private:
  void column_pass(cplx* data);                // in place on `in`
  void row_pass(const cplx* src, cplx* dst);

  idx_t n_, n1_, n2_;
  idx_t cols_per_group_;  // column-pass group width (divides n2)
  idx_t rows_per_group_;  // row-pass group height (divides n1)
  Direction dir_;
  FftOptions opts_;
  std::shared_ptr<Fft1d> fft_n1_, fft_n2_;
  std::shared_ptr<Fft1d> flat_;       // degenerate path (n1 == 1)
  std::shared_ptr<ThreadTeam> team_;  // pooled or private (FftOptions::team_pool)
  RolePlan roles_;
  std::unique_ptr<DoubleBufferPipeline> pipeline_;
  cvec col_roots_;  // w_N^q for q < n2: column-pass twiddle generators
};

}  // namespace bwfft
