// 1D FFT engine.
//
// Three execution styles, matching the roles 1D transforms play in the
// paper's multidimensional algorithms:
//
//  * apply_lanes(data, lanes, count) — the compute kernel of the
//    double-buffered stages: `count` tiles, each holding an n x lanes
//    row-major block, are transformed along the n dimension in place.
//    This is the SPL construct I_count (x) DFT_n (x) I_lanes. With
//    lanes = mu (one cacheline) every butterfly streams whole cachelines,
//    which is the paper's "cache aware FFT" (§IV-A). Stockham autosort,
//    AVX2+FMA vectorised over the lane packets.
//
//  * apply_batch(data, count) — lanes = 1 special case (I_count (x) DFT_n),
//    the stage-1 kernel operating on contiguous pencils.
//
//  * apply_strided_inplace(data, stride) — a single pencil transformed in
//    place at an element stride, the access pattern of the *naive* pencil
//    baseline the paper criticises. Iterative DIT with bit-reversal; no
//    buffering, so large strides hit main memory hard — deliberately.
//
// Power-of-two sizes run the Stockham/DIT paths; other sizes use small-DFT
// codelets (n <= 16), the mixed-radix Cooley–Tukey engine (smooth sizes,
// prime factors <= 7), or Bluestein's chirp-z algorithm on top of the
// power-of-two engine (everything else).
#pragma once

#include <memory>
#include <vector>

#include "common/aligned.h"
#include "common/types.h"
#include "fft1d/mixed_radix.h"
#include "kernels/twiddle.h"

namespace bwfft {

class Fft1d {
 public:
  /// Plan a transform of size n (n >= 1, any n) in the given direction.
  /// Planning precomputes all twiddles; apply* methods are const and
  /// thread-safe (scratch is per-thread).
  Fft1d(idx_t n, Direction dir);

  idx_t size() const { return n_; }
  Direction direction() const { return dir_; }

  /// In-place transform of `count` tiles, each an n x lanes row-major
  /// block: element (j,l) of tile t lives at data[t*n*lanes + j*lanes + l].
  void apply_lanes(cplx* data, idx_t lanes, idx_t count) const;

  /// In-place transform of `count` contiguous pencils of length n.
  void apply_batch(cplx* data, idx_t count) const {
    apply_lanes(data, 1, count);
  }

  /// Out-of-place transform of one contiguous pencil (in != out).
  void apply_oop(const cplx* in, cplx* out) const;

  /// In-place transform of one n x lanes tile whose rows sit at
  /// `row_stride` elements (element (j,l) at base[j*row_stride + l],
  /// lanes <= row_stride). The tile is gathered into cache-resident
  /// scratch, transformed, and scattered back — the buffering approach of
  /// Frigo et al. [11] used by the slab–pencil baseline's z stage.
  /// Power-of-two sizes only.
  void apply_lanes_strided(cplx* base, idx_t lanes, idx_t row_stride) const;

  /// In-place transform of one pencil whose elements sit at `stride`
  /// (stride >= 1). This path intentionally keeps the strided access
  /// pattern (naive baseline); power-of-two only.
  void apply_strided_inplace(cplx* data, idx_t stride) const;

  /// Multiply `count` elements by 1/n — the conventional inverse scaling,
  /// kept separate so engines can fold it into whichever pass they like.
  void scale_inverse(cplx* data, idx_t count) const;

 private:
  void stockham_tile(cplx* tile, cplx* scratch, idx_t lanes) const;
  void bluestein(cplx* data) const;

  /// One Stockham level: radix 4 while the remaining length divides 4,
  /// then a final radix-2 level for odd log2(n). Radix-4 halves the number
  /// of passes over the cached tile relative to pure radix-2.
  struct StockhamLevel {
    idx_t radix;  // 4 or 2
    cvec tw;      // radix-4: {w^p, w^2p, w^3p} triplets; radix-2: w^p
  };

  idx_t n_;
  Direction dir_;
  std::vector<StockhamLevel> slevels_;  // Stockham schedule (pow2 sizes)
  cvec dit_tw_;                     // DIT twiddles w_n^j, j < n/2
  std::vector<idx_t> bitrev_;       // bit-reversal permutation

  // Mixed-radix engine (smooth non-power-of-two sizes).
  std::unique_ptr<MixedRadixFft> mixed_;

  // Bluestein state (non-power-of-two, non-codelet sizes).
  idx_t conv_n_ = 0;                // power-of-two convolution length
  cvec chirp_;                      // c[j] = w^{j^2/2}: conjugate chirp
  cvec chirp_fft_;                  // FFT of the zero-padded chirp kernel
  std::shared_ptr<const Fft1d> conv_fwd_;
  std::shared_ptr<const Fft1d> conv_inv_;
};

}  // namespace bwfft
