// 1D FFT engine.
//
// Three execution styles, matching the roles 1D transforms play in the
// paper's multidimensional algorithms:
//
//  * apply_lanes(data, lanes, count) — the compute kernel of the
//    double-buffered stages: `count` tiles, each holding an n x lanes
//    row-major block, are transformed along the n dimension in place.
//    This is the SPL construct I_count (x) DFT_n (x) I_lanes. With
//    lanes = mu (one cacheline) every butterfly streams whole cachelines,
//    which is the paper's "cache aware FFT" (§IV-A). Stockham autosort
//    over the batched split-format codelets (kernels/batch.h), radices
//    {16, 8, 4, 2}, SIMD-dispatched at run time (scalar / AVX2+FMA /
//    AVX-512 from cpuid).
//
//  * apply_batch(data, count) — lanes = 1 special case (I_count (x) DFT_n),
//    the stage-1 kernel operating on contiguous pencils.
//
//  * apply_strided_inplace(data, stride) — a single pencil transformed in
//    place at an element stride, the access pattern of the *naive* pencil
//    baseline the paper criticises. Iterative DIT with bit-reversal; no
//    buffering, so large strides hit main memory hard — deliberately.
//
// Power-of-two sizes run the Stockham/DIT paths; other sizes use the
// batched small-DFT codelets (n <= 16), the mixed-radix Cooley–Tukey
// engine (smooth sizes, prime factors <= 7), or Bluestein's chirp-z
// algorithm on top of the power-of-two engine (everything else).
#pragma once

#include <memory>
#include <vector>

#include "common/aligned.h"
#include "common/types.h"
#include "fft1d/mixed_radix.h"
#include "kernels/batch.h"
#include "kernels/twiddle.h"

namespace bwfft {

class Fft1d {
 public:
  /// Plan a transform of size n (n >= 1, any n) in the given direction.
  /// Planning precomputes all twiddles; apply* methods are const and
  /// thread-safe (scratch is per-thread). `isa` is the instruction-set
  /// REQUEST for the batched codelets: the default Auto follows the
  /// kernels/isa.h decision path (env override, cpuid) at apply time, so
  /// a plan built once still honours later BWFFT_ISA / force_scalar
  /// toggles; a concrete request pins the plan (clamped to the host).
  Fft1d(idx_t n, Direction dir, kernels::Isa isa = kernels::Isa::Auto);

  idx_t size() const { return n_; }
  Direction direction() const { return dir_; }
  kernels::Isa isa() const { return isa_; }

  /// In-place transform of `count` tiles, each an n x lanes row-major
  /// block: element (j,l) of tile t lives at data[t*n*lanes + j*lanes + l].
  void apply_lanes(cplx* data, idx_t lanes, idx_t count) const;

  /// In-place transform of `count` contiguous pencils of length n.
  void apply_batch(cplx* data, idx_t count) const {
    apply_lanes(data, 1, count);
  }

  /// Out-of-place transform of one contiguous pencil (in != out).
  void apply_oop(const cplx* in, cplx* out) const;

  /// In-place transform of one n x lanes tile whose rows sit at
  /// `row_stride` elements (element (j,l) at base[j*row_stride + l],
  /// lanes <= row_stride). The tile is gathered into cache-resident
  /// scratch, transformed, and scattered back — the buffering approach of
  /// Frigo et al. [11] used by the slab–pencil baseline's z stage.
  /// Power-of-two sizes only.
  void apply_lanes_strided(cplx* base, idx_t lanes, idx_t row_stride) const;

  /// In-place transform of one pencil whose elements sit at `stride`
  /// (stride >= 1). This path intentionally keeps the strided access
  /// pattern (naive baseline); power-of-two only.
  void apply_strided_inplace(cplx* data, idx_t stride) const;

  /// Multiply `count` elements by 1/n — the conventional inverse scaling,
  /// kept separate so engines can fold it into whichever pass they like.
  void scale_inverse(cplx* data, idx_t count) const;

 private:
  void stockham_tile(cplx* tile, cplx* scratch, idx_t lanes,
                     const kernels::BatchTable& bt) const;
  void bluestein(cplx* data) const;

  /// One Stockham DIF level of radix r in {16, 8, 4, 2}: the greedy
  /// high-radix schedule (16 while it divides, then one 8/4/2 level)
  /// minimises passes over the cached tile — n = 128 takes two levels
  /// where the old radix-4/2 schedule took four. Twiddles are laid out
  /// per output packet p: tw[(r-1)*p + (k-1)] = w_len^{p*k}, exactly the
  /// `tw` row the batched codelet ABI consumes; packet p = 0 has unit
  /// twiddles and is passed tw = nullptr.
  struct StockhamLevel {
    idx_t radix;
    cvec tw;
  };

  idx_t n_;
  Direction dir_;
  kernels::Isa isa_;                // dispatch request (Auto = decide late)
  std::vector<StockhamLevel> slevels_;  // Stockham schedule (pow2 sizes)
  cvec dit_tw_;                     // DIT twiddles w_n^j, j < n/2
  std::vector<idx_t> bitrev_;       // bit-reversal permutation

  // Mixed-radix engine (smooth non-power-of-two sizes).
  std::unique_ptr<MixedRadixFft> mixed_;

  // Bluestein state (non-power-of-two, non-codelet sizes).
  idx_t conv_n_ = 0;                // power-of-two convolution length
  cvec chirp_;                      // c[j] = w^{j^2/2}: conjugate chirp
  cvec chirp_fft_;                  // FFT of the zero-padded chirp kernel
  std::shared_ptr<const Fft1d> conv_fwd_;
  std::shared_ptr<const Fft1d> conv_inv_;
};

}  // namespace bwfft
