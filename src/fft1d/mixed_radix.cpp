#include "fft1d/mixed_radix.h"

#include <cstring>

#include "common/error.h"
#include "kernels/codelets.h"
#include "kernels/twiddle.h"

namespace bwfft {

namespace {

/// Greedy radix chain: largest codelet factor first. Returns empty if n
/// cannot be reduced to 1 with codelet radices.
std::vector<idx_t> radix_chain(idx_t n) {
  static constexpr idx_t kRadices[] = {16, 8, 7, 6, 5, 4, 3, 2};
  std::vector<idx_t> chain;
  while (n > 1) {
    idx_t picked = 0;
    for (idx_t r : kRadices) {
      if (n % r == 0) {
        picked = r;
        break;
      }
    }
    if (picked == 0) return {};
    chain.push_back(picked);
    n /= picked;
  }
  return chain;
}

}  // namespace

bool MixedRadixFft::supported(idx_t n) {
  return n >= 1 && !radix_chain(n).empty();
}

MixedRadixFft::MixedRadixFft(idx_t n, Direction dir) : n_(n), dir_(dir) {
  BWFFT_CHECK(n >= 2, "mixed radix needs n >= 2");
  auto chain = radix_chain(n);
  BWFFT_CHECK(!chain.empty(), "size has prime factors > 7");
  idx_t len = n;
  for (idx_t r : chain) {
    Level lvl;
    lvl.radix = r;
    lvl.sub = len / r;
    if (lvl.sub > 1) {
      lvl.twiddles.resize(static_cast<std::size_t>(r * lvl.sub));
      for (idx_t p = 0; p < r; ++p) {
        for (idx_t q = 0; q < lvl.sub; ++q) {
          lvl.twiddles[static_cast<std::size_t>(p * lvl.sub + q)] =
              root_of_unity(len, (p * q) % len, dir_);
        }
      }
    }
    levels_.push_back(std::move(lvl));
    len /= r;
  }
}

void MixedRadixFft::recurse(const cplx* in, idx_t is, cplx* out,
                            std::size_t level) const {
  const Level& lvl = levels_[level];
  const idx_t a = lvl.radix;
  const idx_t b = lvl.sub;
  codelets::CodeletFn fn = codelets::lookup(a);
  BWFFT_ASSERT(fn != nullptr);

  if (b == 1) {
    fn(in, is, out, 1, dir_);
    return;
  }

  // Decimate: sub-transform p covers in[p], in[p+a], ... (stride is*a).
  for (idx_t p = 0; p < a; ++p) {
    recurse(in + p * is, is * a, out + p * b, level + 1);
  }

  // Combine column-by-column: X[q + b r] = DFT_a over p of w^{pq} B_p[q].
  // Column q only touches out indices {p b + q} = {q + b r}, so the
  // gather-codelet-scatter is safely in place.
  cplx t[codelets::kMaxCodelet], u[codelets::kMaxCodelet];
  for (idx_t q = 0; q < b; ++q) {
    for (idx_t p = 0; p < a; ++p) {
      t[p] = lvl.twiddles[static_cast<std::size_t>(p * b + q)] * out[p * b + q];
    }
    fn(t, 1, u, 1, dir_);
    for (idx_t r = 0; r < a; ++r) out[q + b * r] = u[r];
  }
}

void MixedRadixFft::apply(cplx* data) const {
  static thread_local cvec scratch;
  if (scratch.size() < static_cast<std::size_t>(n_)) {
    scratch.resize(static_cast<std::size_t>(n_));
  }
  std::memcpy(scratch.data(), data, static_cast<std::size_t>(n_) * sizeof(cplx));
  recurse(scratch.data(), 1, data, 0);
}

}  // namespace bwfft
