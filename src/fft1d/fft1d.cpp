#include "fft1d/fft1d.h"

#include <cstring>

#include "common/error.h"
#include "kernels/codelets.h"

namespace bwfft {

namespace {

/// Per-thread scratch that grows monotonically; avoids an allocation per
/// apply call without sharing state across threads.
cplx* thread_scratch(std::size_t elems) {
  static thread_local cvec scratch;
  if (scratch.size() < elems) scratch.resize(elems);
  return scratch.data();
}

}  // namespace

Fft1d::Fft1d(idx_t n, Direction dir, kernels::Isa isa)
    : n_(n), dir_(dir), isa_(isa) {
  BWFFT_CHECK(n >= 1, "FFT size must be >= 1");
  if (is_pow2(n_)) {
    // Greedy high-radix Stockham schedule: radix-16 levels while the
    // remaining length divides 16, then one radix-8/4/2 level for the
    // leftover. Each level is executed by the batched radix-r codelet
    // with the per-packet twiddle rows precomputed here.
    for (idx_t len = n_; len > 1;) {
      const idx_t r = len % 16 == 0 ? 16 : len;  // leftover is 2, 4, or 8
      const idx_t q = len / r;
      StockhamLevel lvl;
      lvl.radix = r;
      lvl.tw.resize(static_cast<std::size_t>((r - 1) * q));
      for (idx_t p = 0; p < q; ++p) {
        for (idx_t k = 1; k < r; ++k) {
          lvl.tw[static_cast<std::size_t>((r - 1) * p + (k - 1))] =
              root_of_unity(len, (k * p) % len, dir_);
        }
      }
      slevels_.push_back(std::move(lvl));
      len = q;
    }
    const int levels = log2_floor(n_);
    dit_tw_ = root_table(n_, std::max<idx_t>(n_ / 2, 1), dir_);
    bitrev_.resize(static_cast<std::size_t>(n_));
    for (idx_t i = 0; i < n_; ++i) {
      idx_t r = 0, v = i;
      for (int b = 0; b < levels; ++b) {
        r = (r << 1) | (v & 1);
        v >>= 1;
      }
      bitrev_[static_cast<std::size_t>(i)] = r;
    }
  } else if (n_ <= codelets::kMaxCodelet) {
    // Small sizes run the batched codelets directly; no plan state.
  } else if (MixedRadixFft::supported(n_)) {
    mixed_ = std::make_unique<MixedRadixFft>(n_, dir_);
  } else {
    // Bluestein chirp-z setup: convolution length M = next pow2 >= 2n-1.
    conv_n_ = 1;
    while (conv_n_ < 2 * n_ - 1) conv_n_ <<= 1;
    chirp_.resize(static_cast<std::size_t>(n_));
    for (idx_t j = 0; j < n_; ++j) {
      chirp_[static_cast<std::size_t>(j)] =
          root_of_unity(2 * n_, (j * j) % (2 * n_), dir_);
    }
    conv_fwd_ = std::make_shared<Fft1d>(conv_n_, Direction::Forward, isa_);
    conv_inv_ = std::make_shared<Fft1d>(conv_n_, Direction::Inverse, isa_);
    // Kernel b[j] = conj(c[j]) for |j| < n, wrapped mod M, then FFT'd.
    cvec kernel(static_cast<std::size_t>(conv_n_), cplx(0.0, 0.0));
    for (idx_t j = 0; j < n_; ++j) {
      const cplx b = std::conj(chirp_[static_cast<std::size_t>(j)]);
      kernel[static_cast<std::size_t>(j)] = b;
      if (j != 0) kernel[static_cast<std::size_t>(conv_n_ - j)] = b;
    }
    conv_fwd_->apply_batch(kernel.data(), 1);
    chirp_fft_ = std::move(kernel);
  }
}

void Fft1d::stockham_tile(cplx* tile, cplx* scratch, idx_t lanes,
                          const kernels::BatchTable& bt) const {
  // Iterative DIF Stockham autosort over the precomputed radix schedule.
  // A level of radix r splits sub-length `len` into q = len/r input
  // packets at stride s: the batched codelet reads rows src + s*(p + j*q)
  // (row stride s*q), writes rows dst + s*(r*p + k) (row stride s), and
  // scales output row k by w_len^{p*k} — afterwards len /= r, s *= r, and
  // the buffers swap. The result is copied back if it ends in scratch.
  cplx* src = tile;
  cplx* dst = scratch;
  idx_t len = n_;
  idx_t s = lanes;
  for (const StockhamLevel& lvl : slevels_) {
    const idx_t r = lvl.radix;
    const idx_t q = len / r;
    const kernels::BatchFn fn = bt.fn[r];
    const cplx* tw = lvl.tw.data();
    fn(src, s * q, dst, s, s, nullptr, dir_);  // p = 0: unit twiddles
    for (idx_t p = 1; p < q; ++p) {
      fn(src + s * p, s * q, dst + s * r * p, s, s, tw + (r - 1) * p, dir_);
    }
    len = q;
    s *= r;
    std::swap(src, dst);
  }
  if (src != tile) {
    std::memcpy(tile, src, static_cast<std::size_t>(n_ * lanes) * sizeof(cplx));
  }
}

void Fft1d::apply_lanes(cplx* data, idx_t lanes, idx_t count) const {
  BWFFT_CHECK(lanes >= 1 && count >= 0, "bad lanes/count");
  if (n_ == 1 || count == 0) return;

  if (is_pow2(n_)) {
    const kernels::BatchTable& bt = kernels::dispatch_batch_table(isa_);
    cplx* scratch = thread_scratch(static_cast<std::size_t>(n_ * lanes));
    for (idx_t t = 0; t < count; ++t) {
      stockham_tile(data + t * n_ * lanes, scratch, lanes, bt);
    }
    return;
  }

  if (n_ <= codelets::kMaxCodelet) {
    // One batched call per tile, in place (is == os == lanes).
    const kernels::BatchFn fn = kernels::dispatch_batch_table(isa_).fn[n_];
    for (idx_t t = 0; t < count; ++t) {
      cplx* tile = data + t * n_ * lanes;
      fn(tile, lanes, tile, lanes, lanes, nullptr, dir_);
    }
    return;
  }

  if (mixed_) {
    // Smooth sizes: exact mixed-radix per lane pencil.
    cvec pencil(static_cast<std::size_t>(n_));
    for (idx_t t = 0; t < count; ++t) {
      cplx* tile = data + t * n_ * lanes;
      for (idx_t l = 0; l < lanes; ++l) {
        if (lanes == 1) {
          mixed_->apply(tile);
        } else {
          for (idx_t j = 0; j < n_; ++j) pencil[static_cast<std::size_t>(j)] = tile[j * lanes + l];
          mixed_->apply(pencil.data());
          for (idx_t j = 0; j < n_; ++j) tile[j * lanes + l] = pencil[static_cast<std::size_t>(j)];
        }
      }
    }
    return;
  }

  // Bluestein path: transform each lane pencil through a gathered copy.
  // A local buffer is used (not thread_scratch) because the inner
  // power-of-two transforms use thread_scratch themselves.
  cvec pencil(static_cast<std::size_t>(n_));
  for (idx_t t = 0; t < count; ++t) {
    cplx* tile = data + t * n_ * lanes;
    for (idx_t l = 0; l < lanes; ++l) {
      if (lanes == 1) {
        bluestein(tile);
      } else {
        for (idx_t j = 0; j < n_; ++j) pencil[static_cast<std::size_t>(j)] = tile[j * lanes + l];
        bluestein(pencil.data());
        for (idx_t j = 0; j < n_; ++j) tile[j * lanes + l] = pencil[static_cast<std::size_t>(j)];
      }
    }
  }
}

void Fft1d::bluestein(cplx* data) const {
  // y = c .* IFFT(FFT(pad(c .* x)) .* chirp_fft) / M
  cvec work(static_cast<std::size_t>(conv_n_), cplx(0.0, 0.0));
  for (idx_t j = 0; j < n_; ++j) {
    work[static_cast<std::size_t>(j)] = data[j] * chirp_[static_cast<std::size_t>(j)];
  }
  conv_fwd_->apply_batch(work.data(), 1);
  for (idx_t j = 0; j < conv_n_; ++j) {
    work[static_cast<std::size_t>(j)] *= chirp_fft_[static_cast<std::size_t>(j)];
  }
  conv_inv_->apply_batch(work.data(), 1);
  const double inv_m = 1.0 / static_cast<double>(conv_n_);
  for (idx_t k = 0; k < n_; ++k) {
    data[k] = work[static_cast<std::size_t>(k)] * chirp_[static_cast<std::size_t>(k)] * inv_m;
  }
}

void Fft1d::apply_lanes_strided(cplx* base, idx_t lanes,
                                idx_t row_stride) const {
  BWFFT_CHECK(is_pow2(n_), "strided lanes path requires power-of-two n");
  BWFFT_CHECK(lanes >= 1 && row_stride >= lanes, "bad lanes/row_stride");
  if (n_ == 1) return;
  const kernels::BatchTable& bt = kernels::dispatch_batch_table(isa_);
  // One allocation holds the gathered tile and the Stockham scratch.
  cplx* tile = thread_scratch(static_cast<std::size_t>(2 * n_ * lanes));
  cplx* scratch = tile + n_ * lanes;
  for (idx_t j = 0; j < n_; ++j) {
    std::memcpy(tile + j * lanes, base + j * row_stride,
                static_cast<std::size_t>(lanes) * sizeof(cplx));
  }
  stockham_tile(tile, scratch, lanes, bt);
  for (idx_t j = 0; j < n_; ++j) {
    std::memcpy(base + j * row_stride, tile + j * lanes,
                static_cast<std::size_t>(lanes) * sizeof(cplx));
  }
}

void Fft1d::apply_oop(const cplx* in, cplx* out) const {
  std::memcpy(out, in, static_cast<std::size_t>(n_) * sizeof(cplx));
  apply_batch(out, 1);
}

void Fft1d::apply_strided_inplace(cplx* data, idx_t stride) const {
  BWFFT_CHECK(is_pow2(n_), "strided in-place path requires power-of-two n");
  if (n_ == 1) return;

  // Bit-reversal permutation at the given stride.
  for (idx_t i = 0; i < n_; ++i) {
    const idx_t r = bitrev_[static_cast<std::size_t>(i)];
    if (r > i) std::swap(data[i * stride], data[r * stride]);
  }

  // Iterative DIT butterflies; twiddle for (len, j) is w_n^{j * n/len}.
  for (idx_t len = 2; len <= n_; len <<= 1) {
    const idx_t half = len / 2;
    const idx_t tw_step = n_ / len;
    for (idx_t base = 0; base < n_; base += len) {
      for (idx_t j = 0; j < half; ++j) {
        const cplx w = dit_tw_[static_cast<std::size_t>(j * tw_step)];
        cplx& lo = data[(base + j) * stride];
        cplx& hi = data[(base + j + half) * stride];
        const cplx v = hi * w;
        hi = lo - v;
        lo = lo + v;
      }
    }
  }
}

void Fft1d::scale_inverse(cplx* data, idx_t count) const {
  const double s = 1.0 / static_cast<double>(n_);
  for (idx_t i = 0; i < count; ++i) data[i] *= s;
}

}  // namespace bwfft
