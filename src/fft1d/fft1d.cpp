#include "fft1d/fft1d.h"

#include <cstring>

#include "common/error.h"
#include "kernels/codelets.h"
#include "kernels/vecops.h"

namespace bwfft {

namespace {

/// Per-thread scratch that grows monotonically; avoids an allocation per
/// apply call without sharing state across threads.
cplx* thread_scratch(std::size_t elems) {
  static thread_local cvec scratch;
  if (scratch.size() < elems) scratch.resize(elems);
  return scratch.data();
}

}  // namespace

Fft1d::Fft1d(idx_t n, Direction dir) : n_(n), dir_(dir) {
  BWFFT_CHECK(n >= 1, "FFT size must be >= 1");
  if (is_pow2(n_)) {
    // Stockham schedule: radix-4 levels, with one trailing radix-2 level
    // when log2(n) is odd.
    for (idx_t len = n_; len > 1;) {
      StockhamLevel lvl;
      if (len % 4 == 0) {
        lvl.radix = 4;
        const idx_t quarter = len / 4;
        lvl.tw.resize(static_cast<std::size_t>(3 * quarter));
        for (idx_t p = 0; p < quarter; ++p) {
          lvl.tw[static_cast<std::size_t>(3 * p)] = root_of_unity(len, p, dir_);
          lvl.tw[static_cast<std::size_t>(3 * p + 1)] =
              root_of_unity(len, (2 * p) % len, dir_);
          lvl.tw[static_cast<std::size_t>(3 * p + 2)] =
              root_of_unity(len, (3 * p) % len, dir_);
        }
        len >>= 2;
      } else {
        lvl.radix = 2;
        lvl.tw = root_table(len, len / 2, dir_);
        len >>= 1;
      }
      slevels_.push_back(std::move(lvl));
    }
    const int levels = log2_floor(n_);
    dit_tw_ = root_table(n_, std::max<idx_t>(n_ / 2, 1), dir_);
    bitrev_.resize(static_cast<std::size_t>(n_));
    for (idx_t i = 0; i < n_; ++i) {
      idx_t r = 0, v = i;
      for (int b = 0; b < levels; ++b) {
        r = (r << 1) | (v & 1);
        v >>= 1;
      }
      bitrev_[static_cast<std::size_t>(i)] = r;
    }
  } else if (codelets::lookup(n_) != nullptr) {
    // Small sizes use the hand-unrolled codelets directly.
  } else if (MixedRadixFft::supported(n_)) {
    mixed_ = std::make_unique<MixedRadixFft>(n_, dir_);
  } else {
    // Bluestein chirp-z setup: convolution length M = next pow2 >= 2n-1.
    conv_n_ = 1;
    while (conv_n_ < 2 * n_ - 1) conv_n_ <<= 1;
    chirp_.resize(static_cast<std::size_t>(n_));
    for (idx_t j = 0; j < n_; ++j) {
      chirp_[static_cast<std::size_t>(j)] =
          root_of_unity(2 * n_, (j * j) % (2 * n_), dir_);
    }
    conv_fwd_ = std::make_shared<Fft1d>(conv_n_, Direction::Forward);
    conv_inv_ = std::make_shared<Fft1d>(conv_n_, Direction::Inverse);
    // Kernel b[j] = conj(c[j]) for |j| < n, wrapped mod M, then FFT'd.
    cvec kernel(static_cast<std::size_t>(conv_n_), cplx(0.0, 0.0));
    for (idx_t j = 0; j < n_; ++j) {
      const cplx b = std::conj(chirp_[static_cast<std::size_t>(j)]);
      kernel[static_cast<std::size_t>(j)] = b;
      if (j != 0) kernel[static_cast<std::size_t>(conv_n_ - j)] = b;
    }
    conv_fwd_->apply_batch(kernel.data(), 1);
    chirp_fft_ = std::move(kernel);
  }
}

void Fft1d::stockham_tile(cplx* tile, cplx* scratch, idx_t lanes) const {
  // Iterative DIF Stockham autosort over the precomputed radix schedule.
  // A level of radix r transforms sub-length `len` with packet stride `s`;
  // afterwards len /= r and s *= r, and the buffers swap. The result is
  // copied back if it ends in the scratch buffer.
  cplx* src = tile;
  cplx* dst = scratch;
  idx_t len = n_;
  idx_t s = lanes;
  const bool scalar = force_scalar() || !vecops::kHaveAvx2Fma;
  for (const StockhamLevel& lvl : slevels_) {
    if (lvl.radix == 4) {
      const idx_t q = len / 4;
      for (idx_t p = 0; p < q; ++p) {
        const cplx w1 = lvl.tw[static_cast<std::size_t>(3 * p)];
        const cplx w2 = lvl.tw[static_cast<std::size_t>(3 * p + 1)];
        const cplx w3 = lvl.tw[static_cast<std::size_t>(3 * p + 2)];
        const cplx* a = src + s * p;
        const cplx* b = src + s * (p + q);
        const cplx* c = src + s * (p + 2 * q);
        const cplx* d = src + s * (p + 3 * q);
        cplx* y0 = dst + s * 4 * p;
        cplx* y1 = dst + s * (4 * p + 1);
        cplx* y2 = dst + s * (4 * p + 2);
        cplx* y3 = dst + s * (4 * p + 3);
        if (!scalar && s % 2 == 0) {
          vecops::butterfly4_packets(a, b, c, d, w1, w2, w3, y0, y1, y2, y3,
                                     s, dir_);
        } else {
          vecops::butterfly4_packets_scalar(a, b, c, d, w1, w2, w3, y0, y1,
                                            y2, y3, s, dir_);
        }
      }
      len >>= 2;
      s <<= 2;
    } else {
      const idx_t half = len / 2;
      for (idx_t p = 0; p < half; ++p) {
        const cplx w = lvl.tw[static_cast<std::size_t>(p)];
        if (!scalar && s % 2 == 0) {
          vecops::butterfly_packets(src + s * p, src + s * (p + half), w,
                                    dst + s * 2 * p, dst + s * (2 * p + 1), s);
        } else {
          vecops::butterfly_packets_scalar(src + s * p, src + s * (p + half),
                                           w, dst + s * 2 * p,
                                           dst + s * (2 * p + 1), s);
        }
      }
      len >>= 1;
      s <<= 1;
    }
    std::swap(src, dst);
  }
  if (src != tile) {
    std::memcpy(tile, src, static_cast<std::size_t>(n_ * lanes) * sizeof(cplx));
  }
}

void Fft1d::apply_lanes(cplx* data, idx_t lanes, idx_t count) const {
  BWFFT_CHECK(lanes >= 1 && count >= 0, "bad lanes/count");
  if (n_ == 1 || count == 0) return;

  if (is_pow2(n_)) {
    cplx* scratch = thread_scratch(static_cast<std::size_t>(n_ * lanes));
    for (idx_t t = 0; t < count; ++t) {
      stockham_tile(data + t * n_ * lanes, scratch, lanes);
    }
    return;
  }

  if (codelets::CodeletFn fn = codelets::lookup(n_)) {
    cplx tmp[codelets::kMaxCodelet];
    for (idx_t t = 0; t < count; ++t) {
      cplx* tile = data + t * n_ * lanes;
      for (idx_t l = 0; l < lanes; ++l) {
        fn(tile + l, lanes, tmp, 1, dir_);
        for (idx_t j = 0; j < n_; ++j) tile[j * lanes + l] = tmp[j];
      }
    }
    return;
  }

  if (mixed_) {
    // Smooth sizes: exact mixed-radix per lane pencil.
    cvec pencil(static_cast<std::size_t>(n_));
    for (idx_t t = 0; t < count; ++t) {
      cplx* tile = data + t * n_ * lanes;
      for (idx_t l = 0; l < lanes; ++l) {
        if (lanes == 1) {
          mixed_->apply(tile);
        } else {
          for (idx_t j = 0; j < n_; ++j) pencil[static_cast<std::size_t>(j)] = tile[j * lanes + l];
          mixed_->apply(pencil.data());
          for (idx_t j = 0; j < n_; ++j) tile[j * lanes + l] = pencil[static_cast<std::size_t>(j)];
        }
      }
    }
    return;
  }

  // Bluestein path: transform each lane pencil through a gathered copy.
  // A local buffer is used (not thread_scratch) because the inner
  // power-of-two transforms use thread_scratch themselves.
  cvec pencil(static_cast<std::size_t>(n_));
  for (idx_t t = 0; t < count; ++t) {
    cplx* tile = data + t * n_ * lanes;
    for (idx_t l = 0; l < lanes; ++l) {
      if (lanes == 1) {
        bluestein(tile);
      } else {
        for (idx_t j = 0; j < n_; ++j) pencil[static_cast<std::size_t>(j)] = tile[j * lanes + l];
        bluestein(pencil.data());
        for (idx_t j = 0; j < n_; ++j) tile[j * lanes + l] = pencil[static_cast<std::size_t>(j)];
      }
    }
  }
}

void Fft1d::bluestein(cplx* data) const {
  // y = c .* IFFT(FFT(pad(c .* x)) .* chirp_fft) / M
  cvec work(static_cast<std::size_t>(conv_n_), cplx(0.0, 0.0));
  for (idx_t j = 0; j < n_; ++j) {
    work[static_cast<std::size_t>(j)] = data[j] * chirp_[static_cast<std::size_t>(j)];
  }
  conv_fwd_->apply_batch(work.data(), 1);
  for (idx_t j = 0; j < conv_n_; ++j) {
    work[static_cast<std::size_t>(j)] *= chirp_fft_[static_cast<std::size_t>(j)];
  }
  conv_inv_->apply_batch(work.data(), 1);
  const double inv_m = 1.0 / static_cast<double>(conv_n_);
  for (idx_t k = 0; k < n_; ++k) {
    data[k] = work[static_cast<std::size_t>(k)] * chirp_[static_cast<std::size_t>(k)] * inv_m;
  }
}

void Fft1d::apply_lanes_strided(cplx* base, idx_t lanes,
                                idx_t row_stride) const {
  BWFFT_CHECK(is_pow2(n_), "strided lanes path requires power-of-two n");
  BWFFT_CHECK(lanes >= 1 && row_stride >= lanes, "bad lanes/row_stride");
  if (n_ == 1) return;
  // One allocation holds the gathered tile and the Stockham scratch.
  cplx* tile = thread_scratch(static_cast<std::size_t>(2 * n_ * lanes));
  cplx* scratch = tile + n_ * lanes;
  for (idx_t j = 0; j < n_; ++j) {
    std::memcpy(tile + j * lanes, base + j * row_stride,
                static_cast<std::size_t>(lanes) * sizeof(cplx));
  }
  stockham_tile(tile, scratch, lanes);
  for (idx_t j = 0; j < n_; ++j) {
    std::memcpy(base + j * row_stride, tile + j * lanes,
                static_cast<std::size_t>(lanes) * sizeof(cplx));
  }
}

void Fft1d::apply_oop(const cplx* in, cplx* out) const {
  std::memcpy(out, in, static_cast<std::size_t>(n_) * sizeof(cplx));
  apply_batch(out, 1);
}

void Fft1d::apply_strided_inplace(cplx* data, idx_t stride) const {
  BWFFT_CHECK(is_pow2(n_), "strided in-place path requires power-of-two n");
  if (n_ == 1) return;

  // Bit-reversal permutation at the given stride.
  for (idx_t i = 0; i < n_; ++i) {
    const idx_t r = bitrev_[static_cast<std::size_t>(i)];
    if (r > i) std::swap(data[i * stride], data[r * stride]);
  }

  // Iterative DIT butterflies; twiddle for (len, j) is w_n^{j * n/len}.
  for (idx_t len = 2; len <= n_; len <<= 1) {
    const idx_t half = len / 2;
    const idx_t tw_step = n_ / len;
    for (idx_t base = 0; base < n_; base += len) {
      for (idx_t j = 0; j < half; ++j) {
        const cplx w = dit_tw_[static_cast<std::size_t>(j * tw_step)];
        cplx& lo = data[(base + j) * stride];
        cplx& hi = data[(base + j + half) * stride];
        const cplx v = hi * w;
        hi = lo - v;
        lo = lo + v;
      }
    }
  }
}

void Fft1d::scale_inverse(cplx* data, idx_t count) const {
  const double s = 1.0 / static_cast<double>(n_);
  for (idx_t i = 0; i < count; ++i) data[i] *= s;
}

}  // namespace bwfft
