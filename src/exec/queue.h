// Bounded MPMC queues — the submission channels of the exec service.
//
// Multiple producer threads (request handlers) push, multiple consumers
// (the dispatcher) pop. Both queues are deliberately a mutex + condition
// variables over deques: submissions are milliseconds-scale FFT requests,
// so queue overhead is noise, and the simple implementation is trivially
// correct under TSan — which matters more here than lock-free throughput.
// Capacity is fixed at construction; a full queue is the backpressure
// signal the BatchExecutor turns into kQueueFull.
//
// Two containers:
//
//   * BoundedQueue<T> — the single-lane original. Push results are a
//     typed PushResult so "full at the deadline" and "closed while
//     waiting" are distinguishable: a close racing a timed wait must
//     surface as kClosed ("executor shut down"), never as a spurious
//     timeout — the decision is taken under the lock, not re-derived
//     afterwards.
//
//   * LaneQueue<T> — two priority lanes (interactive / batch) under one
//     lock and one shared capacity. The batch lane may not occupy the
//     last `interactive_reserve` slots, so a batch flood can never wedge
//     interactive submits out of the queue. Draining is weighted
//     anti-starvation: interactive wins whenever both lanes hold work,
//     except that after `batch_starvation_limit` consecutive interactive
//     pops one batch item is drained (so with limit=2 and backlogs on
//     both lanes the pop order is I I B I I B ...). requeue() re-inserts
//     a retried item at the back of its lane, exempt from the capacity
//     check — a retry must never be lost to backpressure, only to
//     shutdown.
//
// Lock discipline is compile-time checked (clang -Wthread-safety via
// src/common/thread_safety.h): queue state is GUARDED_BY(mu_), and every
// wait is an explicit loop so the analysis sees the condition reads
// happen under the lock. Notifications are issued after the lock is
// dropped — legal for condition variables and one fewer wake-up into a
// held lock.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/thread_safety.h"

namespace bwfft::exec {

/// All exec deadline and backoff math uses the steady clock — wall-clock
/// (system_clock) adjustments must never expire or extend a deadline.
using Clock = std::chrono::steady_clock;

/// Typed push outcome: the reason for a rejection is decided atomically
/// under the queue lock, so callers can map kFull -> kQueueFull and
/// kClosed -> "executor shut down" without racy after-the-fact checks.
enum class PushResult {
  kAccepted,  ///< item enqueued
  kFull,      ///< capacity reached (and still reached at the deadline)
  kClosed,    ///< queue closed before the item could be accepted
};

/// Priority lane of a request. Interactive is latency-sensitive (drained
/// first, never shed by CoDel); batch is throughput work that absorbs
/// the shedding and the anti-starvation weighting.
enum class Lane : int {
  kInteractive = 0,
  kBatch = 1,
};
inline constexpr std::size_t kLaneCount = 2;

inline const char* lane_name(Lane lane) {
  return lane == Lane::kInteractive ? "interactive" : "batch";
}

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking push.
  PushResult try_push(T&& item) {
    {
      MutexLock lk(mu_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    cv_pop_.notify_one();
    return PushResult::kAccepted;
  }

  /// Push, waiting for space until `deadline`. kFull on a queue still
  /// full at the deadline; kClosed when the queue closed first — checked
  /// under the lock at the moment the wait gives up, so a close racing
  /// the timeout reports kClosed.
  PushResult push_until(T&& item, Clock::time_point deadline) {
    {
      MutexLock lk(mu_);
      for (;;) {
        if (closed_) return PushResult::kClosed;
        if (items_.size() < capacity_) break;
        if (cv_push_.wait_until(mu_, deadline) == std::cv_status::timeout) {
          if (closed_) return PushResult::kClosed;
          if (items_.size() < capacity_) break;
          return PushResult::kFull;
        }
      }
      items_.push_back(std::move(item));
    }
    cv_pop_.notify_one();
    return PushResult::kAccepted;
  }

  /// Push, waiting for space indefinitely. kClosed is the only failure.
  PushResult push_wait(T&& item) {
    {
      MutexLock lk(mu_);
      while (!closed_ && items_.size() >= capacity_) cv_push_.wait(mu_);
      if (closed_) return PushResult::kClosed;
      items_.push_back(std::move(item));
    }
    cv_pop_.notify_one();
    return PushResult::kAccepted;
  }

  /// Blocking pop: waits for an item. Empty optional once the queue is
  /// closed AND drained — the consumer's shutdown signal.
  std::optional<T> pop() {
    std::optional<T> out;
    {
      MutexLock lk(mu_);
      while (!closed_ && items_.empty()) cv_pop_.wait(mu_);
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    cv_push_.notify_one();
    return out;
  }

  /// Non-blocking pop (batch coalescing uses this to drain followers).
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      MutexLock lk(mu_);
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    cv_push_.notify_one();
    return out;
  }

  /// Reject future pushes and wake every waiter. Items already queued
  /// stay poppable (graceful drain).
  void close() {
    {
      MutexLock lk(mu_);
      closed_ = true;
    }
    cv_push_.notify_all();
    cv_pop_.notify_all();
  }

  bool closed() const {
    MutexLock lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar cv_push_;  // space became available
  CondVar cv_pop_;   // an item became available
  std::deque<T> items_ BWFFT_GUARDED_BY(mu_);
  bool closed_ BWFFT_GUARDED_BY(mu_) = false;
};

/// Two-lane bounded queue with an interactive capacity reserve and
/// weighted anti-starvation draining (see the header comment).
template <typename T>
class LaneQueue {
 public:
  LaneQueue(std::size_t capacity, std::size_t interactive_reserve,
            int batch_starvation_limit)
      : capacity_(capacity),
        interactive_reserve_(
            interactive_reserve < capacity ? interactive_reserve
                                           : capacity - 1),
        starvation_limit_(batch_starvation_limit < 1
                              ? 1
                              : batch_starvation_limit) {}

  PushResult try_push(Lane lane, T&& item) {
    {
      MutexLock lk(mu_);
      PushResult r = admit_locked(lane);
      if (r != PushResult::kAccepted) return r;
      lanes_[idx(lane)].push_back(std::move(item));
    }
    cv_pop_.notify_one();
    return PushResult::kAccepted;
  }

  PushResult push_until(Lane lane, T&& item, Clock::time_point deadline) {
    {
      MutexLock lk(mu_);
      for (;;) {
        PushResult r = admit_locked(lane);
        if (r == PushResult::kAccepted) break;
        if (r == PushResult::kClosed) return r;
        if (cv_push_.wait_until(mu_, deadline) == std::cv_status::timeout) {
          r = admit_locked(lane);
          if (r != PushResult::kAccepted) return r;
          break;
        }
      }
      lanes_[idx(lane)].push_back(std::move(item));
    }
    cv_pop_.notify_one();
    return PushResult::kAccepted;
  }

  PushResult push_wait(Lane lane, T&& item) {
    {
      MutexLock lk(mu_);
      for (;;) {
        PushResult r = admit_locked(lane);
        if (r == PushResult::kAccepted) break;
        if (r == PushResult::kClosed) return r;
        cv_push_.wait(mu_);
      }
      lanes_[idx(lane)].push_back(std::move(item));
    }
    cv_pop_.notify_one();
    return PushResult::kAccepted;
  }

  /// Re-insert a retried item at the back of its lane, exempt from the
  /// capacity check (the slot it vacated may already be refilled; a
  /// retry must not be lost to backpressure). False only when closed —
  /// retries do not survive shutdown.
  bool requeue(Lane lane, T&& item) {
    {
      MutexLock lk(mu_);
      if (closed_) return false;
      lanes_[idx(lane)].push_back(std::move(item));
    }
    cv_pop_.notify_one();
    return true;
  }

  /// Blocking pop in lane-priority order. Empty optional once closed AND
  /// both lanes drained.
  std::optional<T> pop() {
    std::optional<T> out;
    {
      MutexLock lk(mu_);
      while (!closed_ && total_locked() == 0) cv_pop_.wait(mu_);
      if (total_locked() == 0) return std::nullopt;
      out.emplace(pop_locked());
    }
    cv_push_.notify_one();
    return out;
  }

  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      MutexLock lk(mu_);
      if (total_locked() == 0) return std::nullopt;
      out.emplace(pop_locked());
    }
    cv_push_.notify_one();
    return out;
  }

  void close() {
    {
      MutexLock lk(mu_);
      closed_ = true;
    }
    cv_push_.notify_all();
    cv_pop_.notify_all();
  }

  bool closed() const {
    MutexLock lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lk(mu_);
    return total_locked();
  }

  std::size_t size(Lane lane) const {
    MutexLock lk(mu_);
    return lanes_[idx(lane)].size();
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t interactive_reserve() const { return interactive_reserve_; }

 private:
  static std::size_t idx(Lane lane) {
    return static_cast<std::size_t>(static_cast<int>(lane));
  }

  std::size_t total_locked() const BWFFT_REQUIRES(mu_) {
    return lanes_[0].size() + lanes_[1].size();
  }

  PushResult admit_locked(Lane lane) const BWFFT_REQUIRES(mu_) {
    if (closed_) return PushResult::kClosed;
    const std::size_t limit = lane == Lane::kBatch
                                  ? capacity_ - interactive_reserve_
                                  : capacity_;
    return total_locked() < limit ? PushResult::kAccepted : PushResult::kFull;
  }

  T pop_locked() BWFFT_REQUIRES(mu_) {
    auto& interactive = lanes_[idx(Lane::kInteractive)];
    auto& batch = lanes_[idx(Lane::kBatch)];
    Lane pick;
    if (interactive.empty()) {
      pick = Lane::kBatch;
    } else if (batch.empty()) {
      pick = Lane::kInteractive;
    } else {
      pick = consec_interactive_ >= starvation_limit_ ? Lane::kBatch
                                                      : Lane::kInteractive;
    }
    auto& lane = lanes_[idx(pick)];
    T out = std::move(lane.front());
    lane.pop_front();
    if (pick == Lane::kInteractive) {
      ++consec_interactive_;
    } else {
      consec_interactive_ = 0;
    }
    return out;
  }

  const std::size_t capacity_;
  const std::size_t interactive_reserve_;
  const int starvation_limit_;
  mutable Mutex mu_;
  CondVar cv_push_;  // space became available
  CondVar cv_pop_;   // an item became available
  std::array<std::deque<T>, kLaneCount> lanes_ BWFFT_GUARDED_BY(mu_);
  int consec_interactive_ BWFFT_GUARDED_BY(mu_) = 0;
  bool closed_ BWFFT_GUARDED_BY(mu_) = false;
};

}  // namespace bwfft::exec
