// Bounded MPMC queue — the submission channel of the exec service.
//
// Multiple producer threads (request handlers) push, multiple consumers
// (the dispatcher) pop. The queue is deliberately a mutex + two condition
// variables over a ring: submissions are milliseconds-scale FFT requests,
// so queue overhead is noise, and the simple implementation is trivially
// correct under TSan — which matters more here than lock-free throughput.
// Capacity is fixed at construction; a full queue is the backpressure
// signal the BatchExecutor turns into kQueueFull.
//
// Lock discipline is compile-time checked (clang -Wthread-safety via
// src/common/thread_safety.h): items_ and closed_ are GUARDED_BY(mu_),
// and every wait is an explicit while loop so the analysis sees the
// condition reads happen under the lock. Notifications are issued after
// the lock is dropped — legal for condition variables and one fewer
// wake-up into a held lock.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/thread_safety.h"

namespace bwfft::exec {

template <typename T>
class BoundedQueue {
 public:
  using Clock = std::chrono::steady_clock;

  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking push. False when the queue is full or closed.
  bool try_push(T&& item) {
    {
      MutexLock lk(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_pop_.notify_one();
    return true;
  }

  /// Push, waiting for space until `deadline`. False on a queue still
  /// full at the deadline or closed while waiting.
  bool push_until(T&& item, Clock::time_point deadline) {
    {
      MutexLock lk(mu_);
      while (!closed_ && items_.size() >= capacity_) {
        if (cv_push_.wait_until(mu_, deadline) == std::cv_status::timeout &&
            !closed_ && items_.size() >= capacity_) {
          return false;
        }
      }
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_pop_.notify_one();
    return true;
  }

  /// Push, waiting for space indefinitely. False only when closed.
  bool push_wait(T&& item) {
    {
      MutexLock lk(mu_);
      while (!closed_ && items_.size() >= capacity_) cv_push_.wait(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_pop_.notify_one();
    return true;
  }

  /// Blocking pop: waits for an item. Empty optional once the queue is
  /// closed AND drained — the consumer's shutdown signal.
  std::optional<T> pop() {
    std::optional<T> out;
    {
      MutexLock lk(mu_);
      while (!closed_ && items_.empty()) cv_pop_.wait(mu_);
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    cv_push_.notify_one();
    return out;
  }

  /// Non-blocking pop (batch coalescing uses this to drain followers).
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      MutexLock lk(mu_);
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    cv_push_.notify_one();
    return out;
  }

  /// Reject future pushes and wake every waiter. Items already queued
  /// stay poppable (graceful drain).
  void close() {
    {
      MutexLock lk(mu_);
      closed_ = true;
    }
    cv_push_.notify_all();
    cv_pop_.notify_all();
  }

  bool closed() const {
    MutexLock lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar cv_push_;  // space became available
  CondVar cv_pop_;   // an item became available
  std::deque<T> items_ BWFFT_GUARDED_BY(mu_);
  bool closed_ BWFFT_GUARDED_BY(mu_) = false;
};

}  // namespace bwfft::exec
