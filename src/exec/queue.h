// Bounded MPMC queue — the submission channel of the exec service.
//
// Multiple producer threads (request handlers) push, multiple consumers
// (the dispatcher) pop. The queue is deliberately a mutex + two condition
// variables over a ring: submissions are milliseconds-scale FFT requests,
// so queue overhead is noise, and the simple implementation is trivially
// correct under TSan — which matters more here than lock-free throughput.
// Capacity is fixed at construction; a full queue is the backpressure
// signal the BatchExecutor turns into kQueueFull.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace bwfft::exec {

template <typename T>
class BoundedQueue {
 public:
  using Clock = std::chrono::steady_clock;

  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking push. False when the queue is full or closed.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_pop_.notify_one();
    return true;
  }

  /// Push, waiting for space until `deadline`. False on a queue still
  /// full at the deadline or closed while waiting.
  bool push_until(T&& item, Clock::time_point deadline) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (!cv_push_.wait_until(lk, deadline, [&] {
            return closed_ || items_.size() < capacity_;
          })) {
        return false;
      }
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_pop_.notify_one();
    return true;
  }

  /// Push, waiting for space indefinitely. False only when closed.
  bool push_wait(T&& item) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_push_.wait(lk, [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_pop_.notify_one();
    return true;
  }

  /// Blocking pop: waits for an item. Empty optional once the queue is
  /// closed AND drained — the consumer's shutdown signal.
  std::optional<T> pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_pop_.wait(lk, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    cv_push_.notify_one();
    return out;
  }

  /// Non-blocking pop (batch coalescing uses this to drain followers).
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    cv_push_.notify_one();
    return out;
  }

  /// Reject future pushes and wake every waiter. Items already queued
  /// stay poppable (graceful drain).
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_push_.notify_all();
    cv_pop_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_push_;  // space became available
  std::condition_variable cv_pop_;   // an item became available
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace bwfft::exec
