#include "exec/batch_executor.h"

#include <algorithm>
#include <utility>

#include "common/topology.h"
#include "obs/obs.h"
#include "parallel/roles.h"

namespace bwfft::exec {

namespace {

ExecReport rejected_report(ErrorCode code, const std::string& what) {
  ExecReport rep;
  rep.status = Status(code, what);
  return rep;
}

bool has_deadline(const Request& req) {
  return req.deadline.time_since_epoch().count() != 0;
}

bool deadline_passed(const Request& req) {
  return has_deadline(req) && Clock::now() >= req.deadline;
}

}  // namespace

std::string BatchExecutor::key_of(const Request& req) {
  std::string k;
  for (std::size_t i = 0; i < req.dims.size(); ++i) {
    k += (i ? "x" : "") + std::to_string(req.dims[i]);
  }
  k += req.dir == Direction::Forward ? ":f" : ":i";
  return k;
}

FftOptions BatchExecutor::plan_options() const {
  FftOptions o = opts_.plan;
  o.threads = threads_;
  o.pin_threads = opts_.pin_threads;
  // Every plan draws from the TeamPool, so plans whose role split matches
  // the executor's persistent team attach to exactly it — the team is
  // spawned once for the life of the service.
  o.team_pool = true;
  return o;
}

BatchExecutor::BatchExecutor(ServeOptions opts)
    : opts_(opts), queue_(opts.queue_capacity) {
  BWFFT_CHECK(opts_.queue_capacity >= 1, "queue capacity must be >= 1");
  BWFFT_CHECK(opts_.max_batch >= 1, "max_batch must be >= 1");
  threads_ = opts_.threads > 0 ? opts_.threads
                               : host_topology().total_threads();

  // Pre-spawn the persistent team the default engine will ask for: the
  // double-buffer role plan's pin list for this thread budget. Plans with
  // other pin shapes (unpinned engines, degraded budgets) pool their own
  // teams on first use; this one is the steady-state workhorse.
  const int pc = opts_.plan.compute_threads >= 0
                     ? opts_.plan.compute_threads
                     : (threads_ <= 1 ? threads_ : threads_ / 2);
  const RolePlan roles = make_role_plan(threads_, pc, opts_.plan.topo);
  team_cpus_ = opts_.pin_threads ? roles.cpu : std::vector<int>{};
  team_ = parallel::TeamPool::global().acquire(threads_, team_cpus_);

  if (opts_.cache) {
    cache_ = opts_.cache;
  } else {
    owned_cache_ = std::make_unique<tune::PlanCache>();
    cache_ = owned_cache_.get();
  }
  {
    // The dispatcher is not running yet, but paused_ is GUARDED_BY and
    // the annotation does not know that — take the lock for the analysis
    // (uncontended, so it costs one atomic).
    MutexLock lk(pause_mu_);
    paused_ = opts_.start_paused;
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

BatchExecutor::~BatchExecutor() { shutdown(); }

std::future<ExecReport> BatchExecutor::submit(Request req) {
  Job job;
  job.enqueue_ns = obs::now_ns();
  job.key = key_of(req);
  job.req = std::move(req);
  std::future<ExecReport> fut = job.promise.get_future();

  const bool with_deadline = has_deadline(job.req);
  const Clock::time_point deadline = job.req.deadline;
  std::promise<ExecReport>* promise = &job.promise;
  bool pushed;
  if (with_deadline) {
    // Backpressure with a bound: wait for space until the request's
    // deadline, then reject. A deadline already behind us rejects
    // immediately (kTimeout — the request can never start in time).
    if (Clock::now() >= deadline) {
      BWFFT_OBS_COUNT(ExecTimeout, 1);
      {
        MutexLock lk(stats_mu_);
        ++stats_.timed_out;
      }
      promise->set_value(
          rejected_report(ErrorCode::kTimeout, "deadline expired on submit"));
      return fut;
    }
    pushed = queue_.push_until(std::move(job), deadline);
  } else {
    pushed = queue_.try_push(std::move(job));
  }
  if (!pushed) {
    // NB: job was not consumed on a failed push? It was moved-from only on
    // success; BoundedQueue moves only after deciding to accept, so the
    // promise here is still ours to fulfil.
    BWFFT_OBS_COUNT(ExecReject, 1);
    {
      MutexLock lk(stats_mu_);
      ++stats_.rejected_full;
    }
    promise->set_value(rejected_report(
        ErrorCode::kQueueFull,
        queue_.closed() ? "executor shut down" : "submission queue full"));
    return fut;
  }
  BWFFT_OBS_COUNT(ExecSubmit, 1);
  {
    MutexLock lk(stats_mu_);
    ++stats_.submitted;
    stats_.peak_queue_depth =
        std::max(stats_.peak_queue_depth, queue_.size());
  }
  return fut;
}

Status BatchExecutor::execute_many(std::vector<Request> reqs,
                                   std::vector<ExecReport>* reports) {
  std::vector<std::future<ExecReport>> futures;
  futures.reserve(reqs.size());
  for (Request& r : reqs) {
    if (!has_deadline(r)) {
      // Blocking semantics: wait for queue space rather than bouncing.
      Job job;
      job.enqueue_ns = obs::now_ns();
      job.key = key_of(r);
      job.req = std::move(r);
      futures.push_back(job.promise.get_future());
      std::promise<ExecReport>* promise = &job.promise;
      if (!queue_.push_wait(std::move(job))) {
        promise->set_value(
            rejected_report(ErrorCode::kQueueFull, "executor shut down"));
      } else {
        BWFFT_OBS_COUNT(ExecSubmit, 1);
        MutexLock lk(stats_mu_);
        ++stats_.submitted;
        stats_.peak_queue_depth =
            std::max(stats_.peak_queue_depth, queue_.size());
      }
    } else {
      futures.push_back(submit(std::move(r)));
    }
  }
  Status first;
  if (reports) reports->resize(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ExecReport rep = futures[i].get();
    if (first.ok() && !rep.status.ok()) first = rep.status;
    if (reports) (*reports)[i] = std::move(rep);
  }
  return first;
}

void BatchExecutor::pause() {
  MutexLock lk(pause_mu_);
  paused_ = true;
}

void BatchExecutor::resume() {
  {
    MutexLock lk(pause_mu_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void BatchExecutor::shutdown() {
  {
    MutexLock lk(pause_mu_);
    if (stopping_) {
      // Second caller (or the destructor after an explicit shutdown):
      // nothing to do once the dispatcher is joined.
      if (!dispatcher_.joinable()) return;
    }
    stopping_ = true;
    paused_ = false;
  }
  pause_cv_.notify_all();
  queue_.close();  // pop() drains the backlog, then returns nullopt
  if (dispatcher_.joinable()) dispatcher_.join();
}

ExecStats BatchExecutor::stats() const {
  MutexLock lk(stats_mu_);
  ExecStats s = stats_;
  s.queue_depth = queue_.size();
  return s;
}

void BatchExecutor::dispatch_loop() {
  std::uint64_t batch_seq = 0;
  for (;;) {
    {
      MutexLock lk(pause_mu_);
      while (paused_ && !stopping_) pause_cv_.wait(pause_mu_);
    }
    std::optional<Job> first = queue_.pop();
    if (!first) return;  // closed and drained

    // Coalesce: opportunistically drain up to max_batch-1 followers, then
    // group same-shape requests so each group runs its cached plan
    // back-to-back (one plan lookup, warm twiddles, warm team).
    std::vector<Job> jobs;
    jobs.push_back(std::move(*first));
    while (jobs.size() < opts_.max_batch) {
      std::optional<Job> next = queue_.try_pop();
      if (!next) break;
      jobs.push_back(std::move(*next));
    }
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const Job& a, const Job& b) { return a.key < b.key; });

    std::size_t lo = 0;
    while (lo < jobs.size()) {
      std::size_t hi = lo + 1;
      while (hi < jobs.size() && jobs[hi].key == jobs[lo].key) ++hi;
      std::vector<Job> group(std::make_move_iterator(jobs.begin() + lo),
                             std::make_move_iterator(jobs.begin() + hi));
      {
        BWFFT_OBS_SCOPE(obs_batch, "exec.batch", 'X', ++batch_seq);
        run_batch(group);
      }
      lo = hi;
    }
  }
}

void BatchExecutor::run_batch(std::vector<Job>& batch) {
  BWFFT_OBS_COUNT(ExecBatch, 1);
  {
    MutexLock lk(stats_mu_);
    ++stats_.batches;
    stats_.batched_requests += batch.size();
    stats_.max_batch_occupancy =
        std::max(stats_.max_batch_occupancy, batch.size());
  }

  // One plan for the whole group. Plan construction already runs the
  // recovering builder inside CachedPlan; if even that fails, the group
  // fails — and the dispatcher moves on to the next batch, which is the
  // degradation the service promises (a bad shape cannot take the
  // process down).
  std::shared_ptr<tune::CachedPlan> plan;
  Status build_status;
  try {
    plan = cache_->acquire(batch.front().req.dims, batch.front().req.dir,
                           plan_options());
  } catch (const Error& e) {
    build_status = Status(e.code(), e.what());
  } catch (const std::exception& e) {
    build_status = Status(ErrorCode::kInternal, e.what());
  }

  for (Job& job : batch) {
    const std::uint64_t start_ns = obs::now_ns();
    const std::uint64_t waited = start_ns - job.enqueue_ns;
    BWFFT_OBS_COUNT(ExecQueueNs, waited);
    {
      MutexLock lk(stats_mu_);
      stats_.queue_wait.add(waited);
    }
    if (deadline_passed(job.req)) {
      BWFFT_OBS_COUNT(ExecTimeout, 1);
      {
        MutexLock lk(stats_mu_);
        ++stats_.timed_out;
      }
      finish(job,
             rejected_report(ErrorCode::kTimeout,
                             "deadline expired before execution"),
             obs::now_ns());
      continue;
    }
    if (!plan) {
      finish(job, rejected_report(build_status.code(), build_status.message()),
             obs::now_ns());
      continue;
    }
    ExecReport rep;
    BWFFT_OBS_SCOPE(obs_req, "exec.request", 'X', plan->total_elems());
    rep.status = plan->try_execute(job.req.in, job.req.out, &rep);
    finish(job, rep, obs::now_ns());
  }
}

void BatchExecutor::finish(Job& job, const ExecReport& rep,
                           std::uint64_t end_ns) {
  {
    MutexLock lk(stats_mu_);
    stats_.end_to_end.add(end_ns - job.enqueue_ns);
    if (rep.status.ok()) {
      ++stats_.completed;
    } else if (rep.status.code() != ErrorCode::kTimeout) {
      ++stats_.failed;
    }
  }
  if (rep.status.ok()) BWFFT_OBS_COUNT(ExecComplete, 1);
  job.promise.set_value(rep);
}

}  // namespace bwfft::exec
