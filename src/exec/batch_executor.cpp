#include "exec/batch_executor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/topology.h"
#include "fault/fault.h"
#include "obs/obs.h"
#include "parallel/roles.h"

namespace bwfft::exec {

namespace {

ExecReport rejected_report(ErrorCode code, const std::string& what) {
  ExecReport rep;
  rep.status = Status(code, what);
  return rep;
}

bool has_deadline(const Request& req) {
  return req.deadline.time_since_epoch().count() != 0;
}

bool deadline_passed(const Request& req) {
  return has_deadline(req) && Clock::now() >= req.deadline;
}

std::size_t lane_idx(Lane lane) {
  return static_cast<std::size_t>(static_cast<int>(lane));
}

/// A rejection is not an execution failure: timeouts, sheds and quota
/// bounces are the service working as designed, so they stay out of the
/// failed counter (and out of the plan-health bookkeeping).
bool is_rejection(ErrorCode code) {
  return code == ErrorCode::kTimeout || code == ErrorCode::kOverloaded ||
         code == ErrorCode::kQuotaExceeded;
}

double energy_of(const cplx* p, idx_t n) {
  double e = 0.0;
  for (idx_t i = 0; i < n; ++i) e += std::norm(p[i]);
  return e;
}

std::uint64_t to_ns(std::chrono::milliseconds ms) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(ms).count());
}

}  // namespace

std::string BatchExecutor::key_of(const Request& req) {
  std::string k;
  for (std::size_t i = 0; i < req.dims.size(); ++i) {
    k += (i ? "x" : "") + std::to_string(req.dims[i]);
  }
  k += req.dir == Direction::Forward ? ":f" : ":i";
  return k;
}

FftOptions BatchExecutor::plan_options() const {
  FftOptions o = opts_.plan;
  o.threads = threads_;
  o.pin_threads = opts_.pin_threads;
  // Every plan draws from the TeamPool, so plans whose role split matches
  // the executor's persistent team attach to exactly it — the team is
  // spawned once for the life of the service.
  o.team_pool = true;
  return o;
}

FftOptions BatchExecutor::plan_options_for(int generation) const {
  FftOptions o = plan_options();
  if (generation > 0) {
    // Quarantine rebuild: no measuring pass on a plan that keeps failing
    // (an Estimate-ranked candidate is ready immediately, and a broken
    // machine state would poison measurements anyway).
    o.tune_level = TuneLevel::Estimate;
  }
  return o;
}

std::string BatchExecutor::variant_of(int generation) {
  return generation == 0 ? std::string()
                         : "q" + std::to_string(generation);
}

BatchExecutor::BatchExecutor(ServeOptions opts)
    : opts_(opts),
      queue_(opts.queue_capacity, opts.admission.interactive_reserve,
             opts.admission.batch_starvation_limit),
      admission_(opts.admission),
      codel_(opts.admission.codel_target, opts.admission.codel_interval) {
  BWFFT_CHECK(opts_.queue_capacity >= 1, "queue capacity must be >= 1");
  BWFFT_CHECK(opts_.max_batch >= 1, "max_batch must be >= 1");
  // interactive_reserve is an upper bound: LaneQueue clamps it to
  // capacity - 1, so the default reserve works with tiny test queues.
  BWFFT_CHECK(opts_.admission.batch_starvation_limit >= 1,
              "batch_starvation_limit must be >= 1");
  BWFFT_CHECK(opts_.admission.quota_rate >= 0.0,
              "quota_rate must be >= 0");
  BWFFT_CHECK(opts_.admission.quota_rate == 0.0 ||
                  opts_.admission.quota_burst >= 1.0,
              "quota_burst must be >= 1 when quotas are on");
  BWFFT_CHECK(opts_.admission.codel_target.count() > 0 &&
                  opts_.admission.codel_interval.count() > 0,
              "CoDel target/interval must be positive");
  BWFFT_CHECK(opts_.integrity_fraction >= 0.0 &&
                  opts_.integrity_fraction <= 1.0,
              "integrity_fraction must be in [0, 1]");
  BWFFT_CHECK(opts_.quarantine_after >= 1, "quarantine_after must be >= 1");
  BWFFT_CHECK(opts_.watchdog_interval.count() > 0,
              "watchdog_interval must be positive");
  BWFFT_CHECK(opts_.slow_batch_after.count() > 0,
              "slow_batch_after must be positive");
  BWFFT_CHECK(opts_.drift_factor >= 1.0, "drift_factor must be >= 1");
  threads_ = opts_.threads > 0 ? opts_.threads
                               : host_topology().total_threads();

  // Pre-spawn the persistent team the default engine will ask for: the
  // double-buffer role plan's pin list for this thread budget. Plans with
  // other pin shapes (unpinned engines, degraded budgets) pool their own
  // teams on first use; this one is the steady-state workhorse.
  const int pc = opts_.plan.compute_threads >= 0
                     ? opts_.plan.compute_threads
                     : (threads_ <= 1 ? threads_ : threads_ / 2);
  const RolePlan roles = make_role_plan(threads_, pc, opts_.plan.topo);
  team_cpus_ = opts_.pin_threads ? roles.cpu : std::vector<int>{};
  team_ = parallel::TeamPool::global().acquire(threads_, team_cpus_);

  if (opts_.cache) {
    cache_ = opts_.cache;
  } else {
    owned_cache_ = std::make_unique<tune::PlanCache>();
    cache_ = owned_cache_.get();
  }
  {
    // The dispatcher is not running yet, but paused_ is GUARDED_BY and
    // the annotation does not know that — take the lock for the analysis
    // (uncontended, so it costs one atomic).
    MutexLock lk(pause_mu_);
    paused_ = opts_.start_paused;
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
  if (opts_.watchdog) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

BatchExecutor::~BatchExecutor() { shutdown(); }

std::future<ExecReport> BatchExecutor::submit(Request req) {
  Job job;
  job.enqueue_ns = obs::now_ns();
  job.key = key_of(req);
  job.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  const Lane lane = req.lane;
  job.req = std::move(req);
  std::future<ExecReport> fut = job.promise.get_future();

  const bool with_deadline = has_deadline(job.req);
  const Clock::time_point deadline = job.req.deadline;
  std::promise<ExecReport>* promise = &job.promise;
  if (with_deadline && Clock::now() >= deadline) {
    // A deadline already behind us rejects immediately (kTimeout — the
    // request can never start in time).
    BWFFT_OBS_COUNT(ExecTimeout, 1);
    {
      MutexLock lk(stats_mu_);
      ++stats_.timed_out;
    }
    promise->set_value(
        rejected_report(ErrorCode::kTimeout, "deadline expired on submit"));
    return fut;
  }
  // Tenant quota before the queue: a tenant over its token budget is
  // bounced without occupying a slot others could use.
  Status admit = admission_.admit(job.req.tenant, job.enqueue_ns);
  if (!admit.ok()) {
    BWFFT_OBS_COUNT(ExecQuotaExceeded, 1);
    {
      MutexLock lk(stats_mu_);
      ++stats_.quota_rejected;
    }
    promise->set_value(rejected_report(admit.code(), admit.message()));
    return fut;
  }
  // Backpressure: reject immediately on a full queue, or — with a
  // deadline — wait for space until that deadline. The typed PushResult
  // decides the rejection message under the queue lock, so a close
  // racing the wait reports the shutdown, not a spurious "full".
  const PushResult pushed =
      with_deadline ? queue_.push_until(lane, std::move(job), deadline)
                    : queue_.try_push(lane, std::move(job));
  if (pushed != PushResult::kAccepted) {
    // The job is moved only on acceptance; the promise here is still
    // ours to fulfil.
    BWFFT_OBS_COUNT(ExecReject, 1);
    {
      MutexLock lk(stats_mu_);
      ++stats_.rejected_full;
    }
    promise->set_value(rejected_report(
        ErrorCode::kQueueFull, pushed == PushResult::kClosed
                                   ? "executor shut down"
                                   : "submission queue full"));
    return fut;
  }
  BWFFT_OBS_COUNT(ExecSubmit, 1);
  {
    MutexLock lk(stats_mu_);
    ++stats_.submitted;
    ++stats_.submitted_by_lane[lane_idx(lane)];
    stats_.peak_queue_depth =
        std::max(stats_.peak_queue_depth, queue_.size());
  }
  return fut;
}

Status BatchExecutor::execute_many(std::vector<Request> reqs,
                                   std::vector<ExecReport>* reports) {
  std::vector<std::future<ExecReport>> futures;
  futures.reserve(reqs.size());
  for (Request& r : reqs) {
    if (!has_deadline(r)) {
      // Blocking semantics: wait for queue space rather than bouncing.
      Job job;
      job.enqueue_ns = obs::now_ns();
      job.key = key_of(r);
      job.seq = seq_.fetch_add(1, std::memory_order_relaxed);
      const Lane lane = r.lane;
      job.req = std::move(r);
      futures.push_back(job.promise.get_future());
      std::promise<ExecReport>* promise = &job.promise;
      Status admit = admission_.admit(job.req.tenant, job.enqueue_ns);
      if (!admit.ok()) {
        BWFFT_OBS_COUNT(ExecQuotaExceeded, 1);
        {
          MutexLock lk(stats_mu_);
          ++stats_.quota_rejected;
        }
        promise->set_value(rejected_report(admit.code(), admit.message()));
      } else if (queue_.push_wait(lane, std::move(job)) !=
                 PushResult::kAccepted) {
        promise->set_value(
            rejected_report(ErrorCode::kQueueFull, "executor shut down"));
      } else {
        BWFFT_OBS_COUNT(ExecSubmit, 1);
        MutexLock lk(stats_mu_);
        ++stats_.submitted;
        ++stats_.submitted_by_lane[lane_idx(lane)];
        stats_.peak_queue_depth =
            std::max(stats_.peak_queue_depth, queue_.size());
      }
    } else {
      futures.push_back(submit(std::move(r)));
    }
  }
  Status first;
  if (reports) reports->resize(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ExecReport rep = futures[i].get();
    if (first.ok() && !rep.status.ok()) first = rep.status;
    if (reports) (*reports)[i] = std::move(rep);
  }
  return first;
}

void BatchExecutor::pause() {
  MutexLock lk(pause_mu_);
  paused_ = true;
}

void BatchExecutor::resume() {
  {
    MutexLock lk(pause_mu_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void BatchExecutor::shutdown() {
  {
    MutexLock lk(pause_mu_);
    if (stopping_) {
      // Second caller (or the destructor after an explicit shutdown):
      // nothing to do once the threads are joined.
      if (!dispatcher_.joinable() && !watchdog_.joinable()) return;
    }
    stopping_ = true;
    paused_ = false;
  }
  pause_cv_.notify_all();
  queue_.close();  // pop() drains the backlog, then returns nullopt
  if (dispatcher_.joinable()) dispatcher_.join();
  if (watchdog_.joinable()) watchdog_.join();
}

void BatchExecutor::check_health() {
  BWFFT_OBS_SCOPE(obs_scan, "exec.watchdog", 'X', -1);
  const std::uint64_t now = obs::now_ns();

  // Stuck-batch heartbeat: the dispatcher stamps batch_start_ns_ around
  // every run_batch. One flag per batch (the exchange keeps the edge).
  const std::uint64_t start =
      batch_start_ns_.load(std::memory_order_relaxed);
  if (start != 0 && now - start >= to_ns(opts_.slow_batch_after) &&
      last_slow_flag_ns_.exchange(start, std::memory_order_relaxed) !=
          start) {
    BWFFT_OBS_COUNT(ExecSlowBatch, 1);
    MutexLock lk(stats_mu_);
    ++stats_.slow_batches;
  }

  MutexLock lk(stats_mu_);
  ++stats_.watchdog_scans;
  if (baseline_p99_ns_ == 0) {
    // Establish the drift baseline once enough completions exist to make
    // the p99 meaningful.
    if (stats_.end_to_end.count >= 32) {
      baseline_p99_ns_ = stats_.end_to_end.quantile_ns(0.99);
    }
  } else {
    const bool drift = latency_drift(stats_.end_to_end, baseline_p99_ns_,
                                     opts_.drift_factor);
    if (drift && !in_drift_) ++stats_.latency_drift_events;
    in_drift_ = drift;
  }
}

void BatchExecutor::watchdog_loop() {
  for (;;) {
    {
      MutexLock lk(pause_mu_);
      if (stopping_) return;
      // pause_cv_ doubles as the shutdown signal; a resume() wake-up
      // just runs one extra scan.
      pause_cv_.wait_until(pause_mu_,
                           Clock::now() + opts_.watchdog_interval);
      if (stopping_) return;
    }
    check_health();
  }
}

ExecStats BatchExecutor::stats() const {
  MutexLock lk(stats_mu_);
  ExecStats s = stats_;
  s.queue_depth = queue_.size();
  return s;
}

bool BatchExecutor::maybe_shed(Job& job, std::uint64_t now_ns) {
  bool shed = false;
  if (job.req.lane == Lane::kBatch) {
    // CoDel watches the batch lane's sojourn time only: interactive
    // requests are protected by drain priority + the capacity reserve,
    // and shedding them would defeat that protection.
    shed = codel_.should_shed(now_ns, now_ns - job.enqueue_ns);
  }
  if (BWFFT_FAULT_POINT(fault::kSiteExecShed)) shed = true;
  if (!shed) return false;
  BWFFT_OBS_COUNT(ExecShed, 1);
  {
    MutexLock lk(stats_mu_);
    ++stats_.shed;
  }
  finish(job,
         rejected_report(ErrorCode::kOverloaded,
                         "shed by admission control (standing queue delay)"),
         obs::now_ns());
  return true;
}

void BatchExecutor::dispatch_loop() {
  std::uint64_t batch_seq = 0;
  for (;;) {
    {
      MutexLock lk(pause_mu_);
      while (paused_ && !stopping_) pause_cv_.wait(pause_mu_);
    }
    std::optional<Job> first = queue_.pop();
    if (!first) return;  // closed and drained

    // Retry pacing: honour the lead job's backoff gate before starting
    // the sweep (best effort for coalesced followers). Shutdown
    // interrupts the wait and the drain proceeds immediately.
    if (first->not_before.time_since_epoch().count() != 0) {
      MutexLock lk(pause_mu_);
      while (!stopping_ && Clock::now() < first->not_before) {
        pause_cv_.wait_until(pause_mu_, first->not_before);
      }
    }

    // Coalesce: opportunistically drain up to max_batch-1 followers, then
    // group same-shape requests so each group runs its cached plan
    // back-to-back (one plan lookup, warm twiddles, warm team). Shedding
    // happens here, at dequeue — CoDel controls the standing delay the
    // popped request actually experienced.
    std::vector<Job> jobs;
    if (!maybe_shed(*first, obs::now_ns())) jobs.push_back(std::move(*first));
    while (jobs.size() < opts_.max_batch) {
      std::optional<Job> next = queue_.try_pop();
      if (!next) break;
      if (!maybe_shed(*next, obs::now_ns())) jobs.push_back(std::move(*next));
    }
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const Job& a, const Job& b) { return a.key < b.key; });

    std::size_t lo = 0;
    while (lo < jobs.size()) {
      std::size_t hi = lo + 1;
      while (hi < jobs.size() && jobs[hi].key == jobs[lo].key) ++hi;
      std::vector<Job> group(std::make_move_iterator(jobs.begin() + lo),
                             std::make_move_iterator(jobs.begin() + hi));
      {
        BWFFT_OBS_SCOPE(obs_batch, "exec.batch", 'X', ++batch_seq);
        run_batch(group);
      }
      lo = hi;
    }
  }
}

void BatchExecutor::run_batch(std::vector<Job>& batch) {
  BWFFT_OBS_COUNT(ExecBatch, 1);
  const std::uint64_t batch_start = obs::now_ns();
  batch_start_ns_.store(batch_start, std::memory_order_relaxed);
  // exec.slow_batch=<ms>: synthetically age this batch and scan inline,
  // so the heartbeat path is deterministic under test — no real stall,
  // no sleeps.
  std::int64_t age_ms = 0;
  if (BWFFT_FAULT_VALUE(fault::kSiteExecSlowBatch, -1, &age_ms)) {
    batch_start_ns_.store(
        batch_start - static_cast<std::uint64_t>(age_ms) * 1000000ull,
        std::memory_order_relaxed);
    check_health();
  }
  {
    MutexLock lk(stats_mu_);
    ++stats_.batches;
    stats_.batched_requests += batch.size();
    stats_.max_batch_occupancy =
        std::max(stats_.max_batch_occupancy, batch.size());
  }

  // One plan for the whole group, under the key's current quarantine
  // generation. Plan construction already runs the recovering builder
  // inside CachedPlan; if even that fails, the group fails — and the
  // dispatcher moves on to the next batch, which is the degradation the
  // service promises (a bad shape cannot take the process down).
  PlanHealth& health = plan_health_[batch.front().key];
  std::shared_ptr<tune::CachedPlan> plan;
  Status build_status;
  try {
    plan = cache_->acquire(batch.front().req.dims, batch.front().req.dir,
                           plan_options_for(health.generation),
                           variant_of(health.generation));
  } catch (const Error& e) {
    build_status = Status(e.code(), e.what());
  } catch (const std::exception& e) {
    build_status = Status(ErrorCode::kInternal, e.what());
  }

  const std::uint64_t integrity_stride =
      opts_.integrity_fraction > 0.0
          ? std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       std::llround(1.0 / opts_.integrity_fraction)))
          : 0;

  for (Job& job : batch) {
    const std::uint64_t start_ns = obs::now_ns();
    const std::uint64_t waited = start_ns - job.enqueue_ns;
    BWFFT_OBS_COUNT(ExecQueueNs, waited);
    {
      MutexLock lk(stats_mu_);
      stats_.queue_wait.add(waited);
      stats_.lane_queue_wait[lane_idx(job.req.lane)].add(waited);
    }
    if (deadline_passed(job.req)) {
      BWFFT_OBS_COUNT(ExecTimeout, 1);
      {
        MutexLock lk(stats_mu_);
        ++stats_.timed_out;
      }
      finish(job,
             rejected_report(ErrorCode::kTimeout,
                             "deadline expired before execution"),
             obs::now_ns());
      continue;
    }
    if (!plan) {
      finish(job, rejected_report(build_status.code(), build_status.message()),
             obs::now_ns());
      continue;
    }

    // The integrity sample is decided before execution: the input energy
    // must be read now — engines may clobber `in` (DESTROY_INPUT).
    bool check_output = false;
    double in_energy = 0.0;
    if (integrity_stride != 0 && (++integrity_seq_ % integrity_stride) == 0) {
      check_output = true;
      in_energy = energy_of(job.req.in, plan->total_elems());
    }

    ExecReport rep;
    if (BWFFT_FAULT_POINT(fault::kSitePlanPoison)) {
      // Poisoned plan: fail as a transient stall WITHOUT executing, so
      // the caller's input is untouched and a retry is bit-exact.
      rep.status =
          Status(ErrorCode::kStall, "injected plan poison (exec)");
    } else {
      BWFFT_OBS_SCOPE(obs_req, "exec.request", 'X', plan->total_elems());
      rep.status = plan->try_execute(job.req.in, job.req.out, &rep);
    }

    if (rep.status.ok() && BWFFT_FAULT_POINT(fault::kSiteResultCorrupt)) {
      // Silent corruption: perturb the DC bin by a magnitude the energy
      // check cannot miss. Only the integrity sampler can catch this.
      job.req.out[0] +=
          cplx(1e3 * (std::abs(job.req.out[0]) + 1.0), 0.0);
    }

    if (rep.status.ok() && check_output) {
      BWFFT_OBS_COUNT(ExecIntegrityCheck, 1);
      {
        MutexLock lk(stats_mu_);
        ++stats_.integrity_checked;
      }
      BWFFT_OBS_SCOPE(obs_chk, "exec.integrity", 'X', plan->total_elems());
      Status verdict = integrity_check(job, in_energy, plan->options());
      if (!verdict.ok()) {
        BWFFT_OBS_COUNT(ExecDataCorrupt, 1);
        {
          MutexLock lk(stats_mu_);
          ++stats_.integrity_failed;
        }
        rep.status = verdict;
      }
    }

    if (rep.status.ok()) {
      health.consecutive_failures = 0;
      finish(job, rep, obs::now_ns());
      continue;
    }

    // Failure: quarantine bookkeeping first, then retry or surface.
    const ErrorCode code = rep.status.code();
    if (!is_rejection(code)) ++health.consecutive_failures;
    if (code == ErrorCode::kDataCorrupt ||
        health.consecutive_failures >= opts_.quarantine_after) {
      quarantine_plan(job, health);
    }
    const bool transient =
        code == ErrorCode::kStall || code == ErrorCode::kWorkerLost;
    if (transient && job.attempt < job.req.retry.max_attempts) {
      const std::chrono::nanoseconds backoff =
          retry_backoff(job.req.retry, job.attempt + 1, job.seq);
      ++job.attempt;
      job.not_before = Clock::now() + backoff;
      const Lane lane = job.req.lane;
      BWFFT_OBS_COUNT(ExecRetry, 1);
      fault::note_retry();
      {
        MutexLock lk(stats_mu_);
        ++stats_.retried;
      }
      if (queue_.requeue(lane, std::move(job))) continue;
      // Closed: the retry cannot be delivered (requeue moves only on
      // acceptance) — surface the failure instead of losing the future.
      finish(job, rep, obs::now_ns());
      continue;
    }
    finish(job, rep, obs::now_ns());
  }
  batch_start_ns_.store(0, std::memory_order_relaxed);
}

Status BatchExecutor::integrity_check(const Job& job, double in_energy,
                                      const FftOptions& resolved) const {
  // Parseval: for the unnormalized DFT, sum|out|^2 = N * sum|in|^2 (both
  // directions); the 1/N-normalized inverse lands at sum|in|^2 / N.
  idx_t total = 1;
  for (idx_t d : job.req.dims) total *= d;
  const double n = static_cast<double>(total);
  const double scale =
      (job.req.dir == Direction::Inverse && resolved.normalize_inverse)
          ? 1.0 / n
          : n;
  const double want = in_energy * scale;
  const double got = energy_of(job.req.out, total);
  // 1e-6 relative is orders looser than double-precision FFT rounding
  // (~1e-12 for the sizes served here) and orders tighter than any real
  // corruption — a robust separator, not a tuned threshold.
  const double tol = 1e-6 * (want > 1.0 ? want : 1.0);
  if (std::abs(got - want) <= tol) return Status::Ok();
  return Status(ErrorCode::kDataCorrupt,
                "Parseval energy mismatch: output " + std::to_string(got) +
                    " vs expected " + std::to_string(want));
}

void BatchExecutor::quarantine_plan(const Job& job, PlanHealth& health) {
  // Evict the poisoned generation; the next acquire of this key rebuilds
  // under the bumped variant tag at TuneLevel::Estimate. Callers still
  // holding the evicted plan keep it alive (shared_ptr), they just stop
  // getting it from the cache.
  cache_->erase(job.req.dims, job.req.dir,
                plan_options_for(health.generation),
                variant_of(health.generation));
  ++health.generation;
  health.consecutive_failures = 0;
  BWFFT_OBS_COUNT(ExecQuarantine, 1);
  fault::note_degrade("exec: plan quarantined, rebuilt at estimate");
  {
    MutexLock lk(stats_mu_);
    ++stats_.quarantined;
  }
}

void BatchExecutor::finish(Job& job, const ExecReport& rep,
                           std::uint64_t end_ns) {
  {
    MutexLock lk(stats_mu_);
    stats_.end_to_end.add(end_ns - job.enqueue_ns);
    if (rep.status.ok()) {
      ++stats_.completed;
      ++stats_.completed_by_lane[lane_idx(job.req.lane)];
    } else if (!is_rejection(rep.status.code())) {
      ++stats_.failed;
    }
    if (stats_.completion_order.size() < kCompletionOrderCap) {
      stats_.completion_order.push_back(static_cast<int>(job.req.lane));
    }
  }
  if (rep.status.ok()) BWFFT_OBS_COUNT(ExecComplete, 1);
  job.promise.set_value(rep);
}

}  // namespace bwfft::exec
