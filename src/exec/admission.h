// Admission control for the exec service: per-tenant token-bucket
// quotas, CoDel-style queue-delay shedding, and the retry backoff
// schedule (docs/INTERNALS.md §14).
//
// The split of responsibilities:
//
//   * TokenBucket / AdmissionController run at submit time, in the
//     producer's thread: a tenant out of tokens is rejected with
//     kQuotaExceeded before the request ever touches the queue, so one
//     greedy tenant cannot crowd out the rest even below the queue's
//     capacity limit.
//
//   * CoDelState runs at dequeue time, in the dispatcher: it watches the
//     sojourn time (enqueue -> pop) of batch-lane requests and, when the
//     delay has stayed above `codel_target` for a full `codel_interval`,
//     starts shedding with the classic interval/sqrt(count) control law
//     until the delay recovers. Shedding at dequeue (not enqueue) is
//     what makes CoDel robust to bursts: a short spike drains without
//     losses, only a standing queue is controlled. Interactive-lane
//     requests are never shed — their protection is the capacity reserve
//     and the drain priority in LaneQueue.
//
//   * RetryPolicy / retry_backoff schedule the dispatcher-level retry of
//     transient failures (kStall / kWorkerLost): exponential backoff
//     from `base_backoff`, capped at `max_backoff`, plus a deterministic
//     jitter derived from the request's sequence number — reproducible
//     under test, decorrelated in production.
//
// Everything here is time-fed by the caller (steady-clock nanoseconds),
// never self-clocked, so tests drive the control laws with synthetic
// timestamps and zero sleeps.
#pragma once

#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>

#include "common/error.h"
#include "common/thread_safety.h"

namespace bwfft::exec {

/// Power-of-two-bucketed nanosecond histogram (bucket i covers
/// [2^i, 2^{i+1}) ns). Coarse on purpose: serving latencies span six
/// orders of magnitude, and a quantile within 2x is enough to see a
/// regression — or, for the watchdog, a drift.
struct LatencyHistogram {
  std::array<std::uint64_t, 64> bucket{};
  std::uint64_t count = 0;

  void add(std::uint64_t ns) {
    int b = 0;
    while ((std::uint64_t{1} << (b + 1)) <= ns && b < 63) ++b;
    ++bucket[static_cast<std::size_t>(b)];
    ++count;
  }
  /// Upper bound of the bucket holding quantile q (0 when empty).
  std::uint64_t quantile_ns(double q) const {
    if (count == 0) return 0;
    const double target = q * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < bucket.size(); ++b) {
      seen += bucket[b];
      if (static_cast<double>(seen) >= target) {
        return (std::uint64_t{1} << (b + 1)) - 1;
      }
    }
    return ~std::uint64_t{0};
  }
};

/// Knobs of the admission layer. Defaults are permissive: no tenant
/// quota, CoDel tuned for millisecond-scale FFT serving.
struct AdmissionOptions {
  /// Tenant refill rate in requests/second; 0 disables quotas entirely
  /// (every tenant admitted).
  double quota_rate = 0.0;
  /// Bucket capacity: the burst a tenant may submit instantly.
  double quota_burst = 16.0;
  /// CoDel: acceptable standing queue delay for batch-lane requests.
  std::chrono::nanoseconds codel_target = std::chrono::milliseconds(50);
  /// CoDel: how long the delay must stay above target before shedding.
  std::chrono::nanoseconds codel_interval = std::chrono::milliseconds(100);
  /// LaneQueue: capacity slots only interactive submits may occupy.
  std::size_t interactive_reserve = 4;
  /// LaneQueue: consecutive interactive pops before one batch item is
  /// drained (anti-starvation weight).
  int batch_starvation_limit = 2;
};

/// Classic leaky token bucket over caller-supplied timestamps.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst, std::uint64_t now_ns)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst),
        last_ns_(now_ns) {}

  /// Take one token if available; refills from the elapsed time first.
  bool try_acquire(std::uint64_t now_ns) {
    if (now_ns > last_ns_) {
      const double elapsed_s =
          static_cast<double>(now_ns - last_ns_) * 1e-9;
      tokens_ = tokens_ + elapsed_s * rate_;
      if (tokens_ > burst_) tokens_ = burst_;
      last_ns_ = now_ns;
    }
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  std::uint64_t last_ns_;
};

/// Submit-side admission: one token bucket per tenant name. Thread-safe
/// (producers race on submit); the per-call cost is one short critical
/// section over a map lookup.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions opts) : opts_(opts) {}

  /// Ok, or kQuotaExceeded when `tenant`'s bucket is dry. With
  /// quota_rate == 0 every request is admitted without touching the map.
  Status admit(const std::string& tenant, std::uint64_t now_ns) {
    if (opts_.quota_rate <= 0.0) return Status::Ok();
    MutexLock lk(mu_);
    auto it = buckets_.find(tenant);
    if (it == buckets_.end()) {
      it = buckets_
               .emplace(tenant, TokenBucket(opts_.quota_rate,
                                            opts_.quota_burst, now_ns))
               .first;
    }
    if (it->second.try_acquire(now_ns)) return Status::Ok();
    return Status(ErrorCode::kQuotaExceeded,
                  "tenant '" + tenant + "' over quota");
  }

  const AdmissionOptions& options() const { return opts_; }

 private:
  const AdmissionOptions opts_;
  Mutex mu_;
  std::map<std::string, TokenBucket> buckets_ BWFFT_GUARDED_BY(mu_);
};

/// Dequeue-side CoDel control law. Single-consumer state — lives in the
/// dispatcher, no locking. Feed it the sojourn time of every batch-lane
/// pop; it says which requests to shed.
class CoDelState {
 public:
  CoDelState(std::chrono::nanoseconds target,
             std::chrono::nanoseconds interval)
      : target_ns_(static_cast<std::uint64_t>(target.count())),
        interval_ns_(static_cast<std::uint64_t>(interval.count())) {}

  /// True when the request popped at `now_ns` after waiting `sojourn_ns`
  /// should be shed (completed with kOverloaded instead of executed).
  bool should_shed(std::uint64_t now_ns, std::uint64_t sojourn_ns) {
    if (sojourn_ns < target_ns_) {
      // Delay recovered: leave the dropping state, restart the clock.
      first_above_ns_ = 0;
      dropping_ = false;
      return false;
    }
    if (first_above_ns_ == 0) {
      // First sample above target: arm the interval timer; shed only if
      // the delay is still above target a full interval from now.
      first_above_ns_ = now_ns + interval_ns_;
      return false;
    }
    if (!dropping_) {
      if (now_ns < first_above_ns_) return false;
      // Above target for a whole interval: start shedding.
      dropping_ = true;
      drop_count_ = 1;
      next_drop_ns_ = now_ns + control_law(drop_count_);
      return true;
    }
    if (now_ns < next_drop_ns_) return false;
    // Still dropping: shed again, tightening the cadence as
    // interval/sqrt(count) — the CoDel control law.
    ++drop_count_;
    next_drop_ns_ += control_law(drop_count_);
    return true;
  }

  bool dropping() const { return dropping_; }
  std::uint64_t drop_count() const { return drop_count_; }

 private:
  std::uint64_t control_law(std::uint64_t count) const {
    const double s = std::sqrt(static_cast<double>(count));
    return static_cast<std::uint64_t>(static_cast<double>(interval_ns_) /
                                      (s > 1.0 ? s : 1.0));
  }

  const std::uint64_t target_ns_;
  const std::uint64_t interval_ns_;
  std::uint64_t first_above_ns_ = 0;  // 0 = below target
  bool dropping_ = false;
  std::uint64_t drop_count_ = 0;
  std::uint64_t next_drop_ns_ = 0;
};

/// Per-request retry schedule for transient execution failures. The
/// default (max_attempts = 1) disables retries: a request is tried once
/// and its failure surfaces.
struct RetryPolicy {
  /// Total execution attempts (first try included). 1 = no retry.
  int max_attempts = 1;
  /// Backoff before attempt k (k >= 2) is base * 2^(k-2), capped.
  std::chrono::nanoseconds base_backoff = std::chrono::milliseconds(1);
  std::chrono::nanoseconds max_backoff = std::chrono::milliseconds(100);
};

/// Backoff before retry attempt `attempt` (2-based: the first retry is
/// attempt 2): exponential from base, capped at max, plus a
/// deterministic jitter in [0, backoff/2) derived from `seed` (the
/// request's sequence number) — reproducible, decorrelated across
/// requests. base_backoff == 0 yields 0 (the zero-sleep test mode).
std::chrono::nanoseconds retry_backoff(const RetryPolicy& policy,
                                       int attempt, std::uint64_t seed);

/// Watchdog drift test: true when the histogram's p99 has drifted above
/// `factor` times `baseline_p99_ns`. Baselines of 0 (no samples yet)
/// never drift.
bool latency_drift(const LatencyHistogram& hist, std::uint64_t baseline_p99_ns,
                   double factor);

}  // namespace bwfft::exec
