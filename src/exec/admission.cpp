#include "exec/admission.h"

namespace bwfft::exec {

namespace {

// splitmix64 — the standard seed scrambler. Deterministic jitter wants a
// well-mixed function of the request sequence number, not a stateful RNG
// (stateless = reproducible regardless of retry interleaving).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::chrono::nanoseconds retry_backoff(const RetryPolicy& policy,
                                       int attempt, std::uint64_t seed) {
  if (policy.base_backoff.count() <= 0) return std::chrono::nanoseconds(0);
  const int exp = attempt < 2 ? 0 : attempt - 2;
  // Saturating shift: past 62 doublings the cap below decides anyway.
  std::uint64_t backoff_ns =
      static_cast<std::uint64_t>(policy.base_backoff.count());
  if (exp >= 63 || (backoff_ns << exp) >> exp != backoff_ns) {
    backoff_ns = ~std::uint64_t{0} >> 1;
  } else {
    backoff_ns <<= exp;
  }
  const std::uint64_t cap =
      static_cast<std::uint64_t>(policy.max_backoff.count());
  if (backoff_ns > cap) backoff_ns = cap;
  const std::uint64_t jitter =
      backoff_ns ? mix64(seed * 2654435761ULL + static_cast<std::uint64_t>(
                                                    attempt)) %
                       (backoff_ns / 2 + 1)
                 : 0;
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(backoff_ns + jitter));
}

bool latency_drift(const LatencyHistogram& hist, std::uint64_t baseline_p99_ns,
                   double factor) {
  if (baseline_p99_ns == 0 || hist.count == 0) return false;
  const double limit = static_cast<double>(baseline_p99_ns) * factor;
  return static_cast<double>(hist.quantile_ns(0.99)) > limit;
}

}  // namespace bwfft::exec
