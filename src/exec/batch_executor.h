// Persistent batch-execution service — the serving layer.
//
// The facades (Fft2d/Fft3d) assume one exclusive caller per machine:
// every plan spawns its own thread team, so concurrent callers
// oversubscribe the cores and pay plan + thread startup per call. The
// BatchExecutor is the multi-tenant answer: it owns one persistent,
// pinned thread team (drawn from parallel::TeamPool, sized from
// host_topology()) and a bounded MPMC submission queue. Producers call
// submit(request) -> std::future<ExecReport>; a dispatcher thread pops
// requests, coalesces same-shape neighbours into batches, runs each
// batch through a shared tune::PlanCache plan (plans built once, teams
// never respawned) and fulfils the futures.
//
// Backpressure and deadlines use the typed-error layer:
//   * a full queue rejects the submit with kQueueFull (immediately, or —
//     when the request carries a deadline — after waiting for space until
//     that deadline);
//   * a request whose deadline passes before its batch starts is
//     completed with kTimeout without executing.
// Execution failures route through the PR-4 recovery policy
// (CachedPlan::try_execute): a stalled or lost worker degrades that
// plan — fewer threads, then the reference engine — so one bad request
// degrades instead of killing the service.
//
// Instrumented with obs counters (exec_submit/reject/timeout/complete/
// batch, exec_queue_ns) plus local queue-wait and end-to-end latency
// histograms, and a chrome-trace track for the dispatcher
// (docs/INTERNALS.md §11).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/thread_safety.h"
#include "common/types.h"
#include "exec/queue.h"
#include "fft/fft.h"
#include "fft/options.h"
#include "parallel/team_pool.h"
#include "tune/plan_cache.h"

namespace bwfft::exec {

using Clock = std::chrono::steady_clock;

/// One transform request. `in`/`out` stay owned by the caller and must
/// outlive the future's completion; engines may clobber `in` (the
/// FFTW_DESTROY_INPUT convention).
struct Request {
  std::vector<idx_t> dims;  ///< 2 or 3 entries, slowest first
  Direction dir = Direction::Forward;
  cplx* in = nullptr;
  cplx* out = nullptr;
  /// Latest acceptable start time. Default (epoch zero) = no deadline.
  /// Also bounds how long submit() waits for queue space.
  Clock::time_point deadline{};
};

struct ServeOptions {
  /// Thread budget of the persistent team; 0 = host_topology() total.
  int threads = 0;
  /// Pin the team per the role plan (the paper's compute/soft-DMA
  /// pairing). Best effort, like every pin in the library.
  bool pin_threads = true;
  std::size_t queue_capacity = 256;
  /// Most requests coalesced into one dispatch sweep.
  std::size_t max_batch = 16;
  /// Base options for every plan the service builds (engine, tune level,
  /// block/packet knobs). threads/pin_threads/team_pool are overridden by
  /// the executor so all plans share its persistent team.
  FftOptions plan{};
  /// Plan store; null = an executor-private cache.
  tune::PlanCache* cache = nullptr;
  /// Construct with the dispatcher parked (resume() starts it). Lets
  /// tests fill the queue deterministically; a running service created
  /// paused accepts submits but completes none until resumed.
  bool start_paused = false;
};

/// Power-of-two-bucketed nanosecond histogram (bucket i covers
/// [2^i, 2^{i+1}) ns). Coarse on purpose: serving latencies span six
/// orders of magnitude, and a quantile within 2x is enough to see a
/// regression.
struct LatencyHistogram {
  std::array<std::uint64_t, 64> bucket{};
  std::uint64_t count = 0;

  void add(std::uint64_t ns) {
    int b = 0;
    while ((std::uint64_t{1} << (b + 1)) <= ns && b < 63) ++b;
    ++bucket[static_cast<std::size_t>(b)];
    ++count;
  }
  /// Upper bound of the bucket holding quantile q (0 when empty).
  std::uint64_t quantile_ns(double q) const {
    if (count == 0) return 0;
    const double target = q * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < bucket.size(); ++b) {
      seen += bucket[b];
      if (static_cast<double>(seen) >= target) {
        return (std::uint64_t{1} << (b + 1)) - 1;
      }
    }
    return ~std::uint64_t{0};
  }
};

struct ExecStats {
  std::uint64_t submitted = 0;      ///< accepted into the queue
  std::uint64_t rejected_full = 0;  ///< kQueueFull backpressure rejections
  std::uint64_t timed_out = 0;      ///< kTimeout deadline expiries
  std::uint64_t completed = 0;      ///< futures fulfilled with ok status
  std::uint64_t failed = 0;         ///< futures fulfilled with an error
  std::uint64_t batches = 0;        ///< coalesced dispatches
  std::uint64_t batched_requests = 0;  ///< requests across those batches
  std::size_t max_batch_occupancy = 0; ///< largest same-shape batch seen
  std::size_t queue_depth = 0;      ///< at snapshot time
  std::size_t peak_queue_depth = 0;
  LatencyHistogram queue_wait;  ///< enqueue -> dispatch start
  LatencyHistogram end_to_end;  ///< enqueue -> future fulfilled

  /// Mean requests per batch (batch occupancy).
  double batch_occupancy() const {
    return batches ? static_cast<double>(batched_requests) /
                         static_cast<double>(batches)
                   : 0.0;
  }
};

class BatchExecutor {
 public:
  explicit BatchExecutor(ServeOptions opts = {});
  ~BatchExecutor();  // drains the queue, then stops

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Enqueue one request. The returned future is always eventually
  /// fulfilled — with the execution's ExecReport, or with a kQueueFull /
  /// kTimeout report when backpressure or the deadline rejected it.
  std::future<ExecReport> submit(Request req);

  /// Blocking convenience: submit every request (waiting for queue space,
  /// bounded by each request's deadline) and wait for all results.
  /// `reports`, if non-null, is resized to match. Returns the first
  /// non-ok status, else Ok.
  Status execute_many(std::vector<Request> reqs,
                      std::vector<ExecReport>* reports = nullptr);

  /// Stop dispatching (in-flight batch finishes). Queued and newly
  /// submitted requests wait until resume(). Used for drain windows and
  /// deterministic backpressure tests.
  void pause();
  void resume();

  /// Reject new submits, execute everything already queued, stop the
  /// dispatcher. Idempotent; the destructor calls it.
  void shutdown();

  ExecStats stats() const;
  int threads() const { return threads_; }
  const tune::PlanCache& cache() const { return *cache_; }

 private:
  struct Job {
    Request req;
    std::promise<ExecReport> promise;
    std::uint64_t enqueue_ns = 0;
    std::string key;  // dims + direction: the coalescing identity
  };

  static std::string key_of(const Request& req);
  FftOptions plan_options() const;
  void dispatch_loop();
  void run_batch(std::vector<Job>& batch);
  void finish(Job& job, const ExecReport& rep, std::uint64_t end_ns);

  ServeOptions opts_;
  int threads_ = 0;
  std::shared_ptr<ThreadTeam> team_;  // the persistent, pinned team
  std::vector<int> team_cpus_;        // its pin list (for plan matching)
  std::unique_ptr<tune::PlanCache> owned_cache_;
  tune::PlanCache* cache_ = nullptr;
  BoundedQueue<Job> queue_;

  // Lock discipline (checked by the clang -Wthread-safety CI legs):
  // stats_mu_ guards the counter block, pause_mu_ guards the dispatcher
  // gate. Neither is ever held across an execute or a queue wait.
  mutable Mutex stats_mu_;
  ExecStats stats_ BWFFT_GUARDED_BY(stats_mu_);

  Mutex pause_mu_;
  CondVar pause_cv_;  // signalled on resume() and shutdown()
  bool paused_ BWFFT_GUARDED_BY(pause_mu_) = false;
  bool stopping_ BWFFT_GUARDED_BY(pause_mu_) = false;

  std::thread dispatcher_;
};

}  // namespace bwfft::exec
