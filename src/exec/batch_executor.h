// Persistent batch-execution service — the serving layer.
//
// The facades (Fft2d/Fft3d) assume one exclusive caller per machine:
// every plan spawns its own thread team, so concurrent callers
// oversubscribe the cores and pay plan + thread startup per call. The
// BatchExecutor is the multi-tenant answer: it owns one persistent,
// pinned thread team (drawn from parallel::TeamPool, sized from
// host_topology()) and a bounded two-lane MPMC submission queue.
// Producers call submit(request) -> std::future<ExecReport>; a
// dispatcher thread pops requests, coalesces same-shape neighbours into
// batches, runs each batch through a shared tune::PlanCache plan (plans
// built once, teams never respawned) and fulfils the futures.
//
// Overload control and self-healing (docs/INTERNALS.md §14):
//   * submit-side admission — per-tenant token-bucket quotas reject with
//     kQuotaExceeded; a full queue rejects with kQueueFull (immediately,
//     or — when the request carries a deadline — after waiting for space
//     until that deadline);
//   * priority lanes — interactive requests drain first (with a bounded
//     anti-starvation weight for the batch lane) and hold a capacity
//     reserve batch submits may not occupy;
//   * dequeue-side shedding — CoDel on the batch lane's sojourn time
//     completes requests with kOverloaded instead of letting a standing
//     queue grow latency without bound;
//   * retry — a request whose execution fails transiently (kStall /
//     kWorkerLost) is re-queued with exponential backoff + jitter, up to
//     its RetryPolicy's attempt budget, on top of the per-execution
//     PR-4 recovery inside CachedPlan::try_execute;
//   * quarantine — a plan whose executions keep failing (or that fails
//     an integrity check) is evicted from the PlanCache and rebuilt
//     under a new variant tag at TuneLevel::Estimate;
//   * integrity spot-checks — a configurable fraction of served requests
//     is energy-checked (Parseval) after execution; a mismatch turns a
//     silently-wrong result into a typed kDataCorrupt report;
//   * health watchdog — an optional background thread (plus the
//     check_health() entry point) that flags stuck batches via the
//     dispatcher heartbeat and end-to-end latency drift against an
//     established baseline.
//
// A request whose deadline passes before its batch starts is completed
// with kTimeout without executing. Execution failures route through the
// PR-4 recovery policy (CachedPlan::try_execute): a stalled or lost
// worker degrades that plan — fewer threads, then the reference
// engine — so one bad request degrades instead of killing the service.
//
// Instrumented with obs counters (exec_submit/reject/timeout/complete/
// batch/shed/quota_exceeded/retry/quarantine/integrity_check/
// data_corrupt/slow_batch, exec_queue_ns) plus local queue-wait and
// end-to-end latency histograms, and a chrome-trace track for the
// dispatcher (docs/INTERNALS.md §11).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/thread_safety.h"
#include "common/types.h"
#include "exec/admission.h"
#include "exec/queue.h"
#include "fft/fft.h"
#include "fft/options.h"
#include "parallel/team_pool.h"
#include "tune/plan_cache.h"

namespace bwfft::exec {

/// One transform request. `in`/`out` stay owned by the caller and must
/// outlive the future's completion; engines may clobber `in` (the
/// FFTW_DESTROY_INPUT convention).
struct Request {
  std::vector<idx_t> dims;  ///< 1, 2 or 3 entries, slowest first; a
                            ///< single entry is a (large) 1D transform
                            ///< routed through the fft1d/large.h engines
  Direction dir = Direction::Forward;
  cplx* in = nullptr;
  cplx* out = nullptr;
  /// Latest acceptable start time. Default (epoch zero) = no deadline.
  /// Also bounds how long submit() waits for queue space.
  Clock::time_point deadline{};
  /// Priority class. Interactive (the default) drains first, is never
  /// shed by CoDel, and may use the queue's reserved slots; mark bulk
  /// work kBatch so it absorbs the shedding instead.
  Lane lane = Lane::kInteractive;
  /// Quota identity. Tenants share the executor; each name gets its own
  /// token bucket when ServeOptions::admission.quota_rate > 0.
  std::string tenant;
  /// Dispatcher-level retry budget for transient execution failures.
  RetryPolicy retry{};
};

struct ServeOptions {
  /// Thread budget of the persistent team; 0 = host_topology() total.
  int threads = 0;
  /// Pin the team per the role plan (the paper's compute/soft-DMA
  /// pairing). Best effort, like every pin in the library.
  bool pin_threads = true;
  std::size_t queue_capacity = 256;
  /// Most requests coalesced into one dispatch sweep.
  std::size_t max_batch = 16;
  /// Base options for every plan the service builds (engine, tune level,
  /// block/packet knobs). threads/pin_threads/team_pool are overridden by
  /// the executor so all plans share its persistent team.
  FftOptions plan{};
  /// Plan store; null = an executor-private cache.
  tune::PlanCache* cache = nullptr;
  /// Construct with the dispatcher parked (resume() starts it). Lets
  /// tests fill the queue deterministically; a running service created
  /// paused accepts submits but completes none until resumed.
  bool start_paused = false;

  /// Quotas, CoDel shedding and lane weighting (exec/admission.h).
  AdmissionOptions admission{};
  /// Fraction of successfully-executed requests energy-checked after
  /// execution (Parseval). 0 disables; 1 checks every request. Sampling
  /// is deterministic (every round(1/fraction)-th request).
  double integrity_fraction = 0.0;
  /// Consecutive execution failures of one plan key before the plan is
  /// quarantined (evicted and rebuilt at TuneLevel::Estimate). A failed
  /// integrity check quarantines immediately.
  int quarantine_after = 2;
  /// Run the background health watchdog thread. check_health() performs
  /// the same scan on demand either way.
  bool watchdog = false;
  std::chrono::milliseconds watchdog_interval{100};
  /// A batch still running after this long is flagged (exec_slow_batch).
  std::chrono::milliseconds slow_batch_after{1000};
  /// End-to-end p99 above drift_factor x the established baseline p99
  /// counts a latency-drift event.
  double drift_factor = 8.0;
};

/// Capacity of ExecStats::completion_order (oldest kept; the cap bounds
/// the stats copy, not the service).
inline constexpr std::size_t kCompletionOrderCap = 1024;

struct ExecStats {
  std::uint64_t submitted = 0;      ///< accepted into the queue
  std::uint64_t rejected_full = 0;  ///< kQueueFull backpressure rejections
  std::uint64_t timed_out = 0;      ///< kTimeout deadline expiries
  std::uint64_t completed = 0;      ///< futures fulfilled with ok status
  std::uint64_t failed = 0;         ///< futures fulfilled with an error
  std::uint64_t batches = 0;        ///< coalesced dispatches
  std::uint64_t batched_requests = 0;  ///< requests across those batches
  std::size_t max_batch_occupancy = 0; ///< largest same-shape batch seen
  std::size_t queue_depth = 0;      ///< at snapshot time
  std::size_t peak_queue_depth = 0;
  LatencyHistogram queue_wait;  ///< enqueue -> dispatch start
  LatencyHistogram end_to_end;  ///< enqueue -> future fulfilled

  // Overload-control tallies (§14).
  std::uint64_t shed = 0;             ///< kOverloaded (CoDel / exec.shed)
  std::uint64_t quota_rejected = 0;   ///< kQuotaExceeded at submit
  std::uint64_t retried = 0;          ///< transient failures re-queued
  std::uint64_t quarantined = 0;      ///< plans evicted and rebuilt
  std::uint64_t integrity_checked = 0;
  std::uint64_t integrity_failed = 0; ///< kDataCorrupt reports
  std::uint64_t slow_batches = 0;     ///< watchdog stuck-batch flags
  std::uint64_t latency_drift_events = 0;
  std::uint64_t watchdog_scans = 0;
  /// Per-lane accounting, indexed by static_cast<int>(Lane).
  std::array<std::uint64_t, kLaneCount> submitted_by_lane{};
  std::array<std::uint64_t, kLaneCount> completed_by_lane{};
  std::array<LatencyHistogram, kLaneCount> lane_queue_wait{};
  /// Lane of each fulfilled request in completion order (first
  /// kCompletionOrderCap entries) — the starvation tests read the
  /// documented I I B I I B ... drain pattern off this.
  std::vector<int> completion_order;

  /// Mean requests per batch (batch occupancy).
  double batch_occupancy() const {
    return batches ? static_cast<double>(batched_requests) /
                         static_cast<double>(batches)
                   : 0.0;
  }
};

class BatchExecutor {
 public:
  explicit BatchExecutor(ServeOptions opts = {});
  ~BatchExecutor();  // drains the queue, then stops

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Enqueue one request. The returned future is always eventually
  /// fulfilled — with the execution's ExecReport, or with a typed
  /// rejection (kQueueFull / kQuotaExceeded / kTimeout at submit,
  /// kOverloaded / kTimeout at dispatch).
  std::future<ExecReport> submit(Request req);

  /// Blocking convenience: submit every request (waiting for queue space,
  /// bounded by each request's deadline) and wait for all results.
  /// `reports`, if non-null, is resized to match. Returns the first
  /// non-ok status, else Ok.
  Status execute_many(std::vector<Request> reqs,
                      std::vector<ExecReport>* reports = nullptr);

  /// Stop dispatching (in-flight batch finishes). Queued and newly
  /// submitted requests wait until resume(). Used for drain windows and
  /// deterministic backpressure tests.
  void pause();
  void resume();

  /// Reject new submits, execute everything already queued, stop the
  /// dispatcher. Idempotent; the destructor calls it.
  void shutdown();

  /// One watchdog scan, on the caller's thread: stuck-batch heartbeat
  /// check plus latency-drift detection. The background watchdog thread
  /// (ServeOptions::watchdog) calls this on its interval; tests and
  /// operators call it directly for deterministic coverage.
  void check_health();

  ExecStats stats() const;
  int threads() const { return threads_; }
  const tune::PlanCache& cache() const { return *cache_; }

 private:
  struct Job {
    Request req;
    std::promise<ExecReport> promise;
    std::uint64_t enqueue_ns = 0;
    std::string key;  // dims + direction: the coalescing identity
    std::uint64_t seq = 0;  // submit order; seeds the retry jitter
    int attempt = 1;        // execution attempts so far, this one included
    Clock::time_point not_before{};  // retry backoff gate (epoch 0 = none)
  };

  /// Dispatcher-private health record of one plan key.
  struct PlanHealth {
    int consecutive_failures = 0;
    int generation = 0;  // bumped on quarantine; keys the rebuilt variant
  };

  static std::string key_of(const Request& req);
  FftOptions plan_options() const;
  FftOptions plan_options_for(int generation) const;
  static std::string variant_of(int generation);
  void dispatch_loop();
  void run_batch(std::vector<Job>& batch);
  void finish(Job& job, const ExecReport& rep, std::uint64_t end_ns);
  /// True when the popped job was shed (kOverloaded) instead of batched.
  bool maybe_shed(Job& job, std::uint64_t now_ns);
  /// Post-execute Parseval check; non-ok = kDataCorrupt.
  Status integrity_check(const Job& job, double in_energy,
                         const FftOptions& resolved) const;
  void quarantine_plan(const Job& job, PlanHealth& health);
  void watchdog_loop();

  ServeOptions opts_;
  int threads_ = 0;
  std::shared_ptr<ThreadTeam> team_;  // the persistent, pinned team
  std::vector<int> team_cpus_;        // its pin list (for plan matching)
  std::unique_ptr<tune::PlanCache> owned_cache_;
  tune::PlanCache* cache_ = nullptr;
  LaneQueue<Job> queue_;
  AdmissionController admission_;
  std::atomic<std::uint64_t> seq_{0};

  // Dispatcher-private state: CoDel control law, plan health map and the
  // integrity sampling counter are touched only from dispatch_loop() /
  // run_batch(), so they need no lock.
  CoDelState codel_;
  std::map<std::string, PlanHealth> plan_health_;
  std::uint64_t integrity_seq_ = 0;

  // Watchdog heartbeat: obs::now_ns() when the in-flight batch started,
  // 0 while the dispatcher is between batches. last_slow_flag_ns_ keeps
  // one flag per batch (rising edge).
  std::atomic<std::uint64_t> batch_start_ns_{0};
  std::atomic<std::uint64_t> last_slow_flag_ns_{0};

  // Lock discipline (checked by the clang -Wthread-safety CI legs):
  // stats_mu_ guards the counter block and the drift baseline, pause_mu_
  // guards the dispatcher gate. Neither is ever held across an execute
  // or a queue wait.
  mutable Mutex stats_mu_;
  ExecStats stats_ BWFFT_GUARDED_BY(stats_mu_);
  std::uint64_t baseline_p99_ns_ BWFFT_GUARDED_BY(stats_mu_) = 0;
  bool in_drift_ BWFFT_GUARDED_BY(stats_mu_) = false;

  Mutex pause_mu_;
  CondVar pause_cv_;  // signalled on resume() and shutdown()
  bool paused_ BWFFT_GUARDED_BY(pause_mu_) = false;
  bool stopping_ BWFFT_GUARDED_BY(pause_mu_) = false;

  std::thread dispatcher_;
  std::thread watchdog_;
};

}  // namespace bwfft::exec
