#include "layout/format.h"

#include "common/error.h"

namespace bwfft {

void to_split(const cplx* in, double* re, double* im, idx_t n) {
  for (idx_t i = 0; i < n; ++i) {
    re[i] = in[i].real();
    im[i] = in[i].imag();
  }
}

void from_split(const double* re, const double* im, cplx* out, idx_t n) {
  for (idx_t i = 0; i < n; ++i) out[i] = cplx(re[i], im[i]);
}

void to_block_interleaved(const cplx* in, double* out, idx_t n, idx_t block) {
  BWFFT_CHECK(block > 0 && n % block == 0, "block must divide n");
  for (idx_t g = 0; g < n / block; ++g) {
    double* re = out + 2 * g * block;
    double* im = re + block;
    const cplx* src = in + g * block;
    for (idx_t j = 0; j < block; ++j) {
      re[j] = src[j].real();
      im[j] = src[j].imag();
    }
  }
}

void from_block_interleaved(const double* in, cplx* out, idx_t n,
                            idx_t block) {
  BWFFT_CHECK(block > 0 && n % block == 0, "block must divide n");
  for (idx_t g = 0; g < n / block; ++g) {
    const double* re = in + 2 * g * block;
    const double* im = re + block;
    cplx* dst = out + g * block;
    for (idx_t j = 0; j < block; ++j) dst[j] = cplx(re[j], im[j]);
  }
}

}  // namespace bwfft
