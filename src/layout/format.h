// Complex data-format changes (§IV-A, "cache aware FFT", ref [18]).
//
// The paper's compute kernels switch from complex-interleaved storage
// (re,im,re,im,...) to a block-interleaved format — blocks of `block`
// real parts followed by the matching imaginary parts — because separating
// components lets AVX operate on homogeneous lanes. The format change is
// applied once on entry to the first stage and undone in the last; between
// stages data stays block-interleaved. These kernels implement the change
// and are used by the format-ablation benchmark and the split-format
// compute path.
#pragma once

#include "common/types.h"

namespace bwfft {

/// Fully split: re[i] = in[i].re, im[i] = in[i].im.
void to_split(const cplx* in, double* re, double* im, idx_t n);
void from_split(const double* re, const double* im, cplx* out, idx_t n);

/// Block-interleaved with block size `block` (block | n): each group of
/// `block` complex values is stored as `block` reals then `block` imags,
/// in place of the interleaved pairs. `out` must hold 2*n doubles.
void to_block_interleaved(const cplx* in, double* out, idx_t n, idx_t block);
void from_block_interleaved(const double* in, cplx* out, idx_t n, idx_t block);

}  // namespace bwfft
