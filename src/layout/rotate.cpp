#include "layout/rotate.h"

#include "common/error.h"
#include "layout/stream_copy.h"

namespace bwfft {

void rotate_cube(const cplx* in, cplx* out, idx_t a, idx_t b, idx_t c) {
  BWFFT_ASSERT(in != out);
  for (idx_t ai = 0; ai < a; ++ai) {
    for (idx_t bi = 0; bi < b; ++bi) {
      const cplx* row = in + (ai * b + bi) * c;
      for (idx_t ci = 0; ci < c; ++ci) {
        out[ci * a * b + ai * b + bi] = row[ci];
      }
    }
  }
}

void rotate_cube_packets(const cplx* in, cplx* out, idx_t a, idx_t b,
                         idx_t cp, idx_t mu, bool nontemporal) {
  rotate_store_rows(in, out, 0, a * b, a, b, cp, mu, nontemporal);
}

void rotate_store_rows(const cplx* buf, cplx* out, idx_t row0, idx_t nrows,
                       idx_t a, idx_t b, idx_t cp, idx_t mu,
                       bool nontemporal) {
  const idx_t plane = a * b;  // packets per output "ci" plane
  for (idx_t r = 0; r < nrows; ++r) {
    const idx_t row = row0 + r;
    const cplx* src = buf + r * cp * mu;
    // The cp packets of one row scatter at stride plane*mu — the large
    // write stride the paper pays for with non-temporal stores.
    for (idx_t p = 0; p < cp; ++p) {
      store_packet(out + (p * plane + row) * mu, src + p * mu, mu,
                   nontemporal);
    }
  }
}

}  // namespace bwfft
