// 3D rotation kernels — the K operators of §III-A (Fig 5).
//
// K_c^{a,b} rotates a row-major cube a x b x c (c fastest) into the cube
// c x a x b, moving the just-transformed dimension out of the fast slot and
// the next transform dimension into it. The blocked form (K (x) I_mu)
// rotates mu-element cacheline packets; its per-row variant is the store
// half of the paper's W_{b,i} matrices and is what the soft-DMA data
// threads execute.
#pragma once

#include "common/types.h"

namespace bwfft {

/// Element rotation: out[ci*(a*b) + ai*b + bi] = in[ai*(b*c) + bi*c + ci].
/// Equivalent to spl::rotation_k(a, b, c). in != out.
void rotate_cube(const cplx* in, cplx* out, idx_t a, idx_t b, idx_t c);

/// Blocked rotation (K_{cp}^{a,b} (x) I_mu): the cube is a x b x cp in
/// mu-element packets. Equivalent to spl::rotation_k_blocked(a,b,cp*mu,mu).
void rotate_cube_packets(const cplx* in, cplx* out, idx_t a, idx_t b,
                         idx_t cp, idx_t mu, bool nontemporal = false);

/// Store side of the tiled stage (§III-B): rows [row0, row0+nrows) of the
/// cube's a*b rows — each row is cp mu-packets, contiguous in `buf`
/// starting at its local row 0 — are scattered to their rotated positions
/// in `out` (the full cube). Row r (global index over a*b) packet p lands
/// at out[(p*(a*b) + r) * mu]. This is exactly
/// W_{b,i} = (K (x) I_mu) . S_{...,b,i} restricted to the given rows.
void rotate_store_rows(const cplx* buf, cplx* out, idx_t row0, idx_t nrows,
                       idx_t a, idx_t b, idx_t cp, idx_t mu,
                       bool nontemporal = true);

}  // namespace bwfft
