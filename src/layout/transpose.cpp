#include "layout/transpose.h"

#include <algorithm>

#include "common/error.h"
#include "layout/stream_copy.h"

namespace bwfft {

void transpose(const cplx* in, cplx* out, idx_t rows, idx_t cols) {
  BWFFT_ASSERT(in != out);
  for (idx_t r = 0; r < rows; ++r) {
    for (idx_t c = 0; c < cols; ++c) {
      out[c * rows + r] = in[r * cols + c];
    }
  }
}

void transpose_packets(const cplx* in, cplx* out, idx_t rows, idx_t cols,
                       idx_t mu, bool nontemporal) {
  BWFFT_ASSERT(in != out);
  // Tile the packet grid so both the reads and the writes keep some
  // locality; the store side may stream past the cache.
  constexpr idx_t kTile = 16;
  for (idx_t r0 = 0; r0 < rows; r0 += kTile) {
    const idx_t r1 = std::min(r0 + kTile, rows);
    for (idx_t c0 = 0; c0 < cols; c0 += kTile) {
      const idx_t c1 = std::min(c0 + kTile, cols);
      for (idx_t r = r0; r < r1; ++r) {
        for (idx_t c = c0; c < c1; ++c) {
          store_packet(out + (c * rows + r) * mu, in + (r * cols + c) * mu, mu,
                       nontemporal);
        }
      }
    }
  }
}

void transpose_tiled(const cplx* in, cplx* out, idx_t rows, idx_t cols,
                     idx_t tile) {
  BWFFT_ASSERT(in != out);
  for (idx_t r0 = 0; r0 < rows; r0 += tile) {
    const idx_t r1 = std::min(r0 + tile, rows);
    for (idx_t c0 = 0; c0 < cols; c0 += tile) {
      const idx_t c1 = std::min(c0 + tile, cols);
      for (idx_t r = r0; r < r1; ++r) {
        for (idx_t c = c0; c < c1; ++c) {
          out[c * rows + r] = in[r * cols + c];
        }
      }
    }
  }
}

}  // namespace bwfft
