// Streaming (non-temporal) memory movement.
//
// §IV-A of the paper: only the R (read) and W (write) matrices touch main
// memory, so only they use non-temporal instructions. R must read
// non-temporally but store *temporally* into the shared cache buffer (the
// compute threads consume it next iteration); W may both read and write
// non-temporally because the computed block is not needed until the next
// FFT stage. These helpers implement the store side; non-temporal loads on
// x86 (MOVNTDQA) only help from WC memory, so loads use regular temporal
// instructions plus the hardware prefetcher, like production FFT codes do.
#pragma once

#include "common/types.h"

namespace bwfft {

/// Copy `count` complex elements. When `nontemporal` and the destination is
/// 32-byte aligned, whole cachelines are written with streaming stores that
/// bypass the cache hierarchy; otherwise a regular copy.
void copy_stream(cplx* dst, const cplx* src, idx_t count, bool nontemporal);

/// Store one mu-element packet (dst and src do not overlap).
void store_packet(cplx* dst, const cplx* src, idx_t mu, bool nontemporal);

/// Order streaming stores before subsequent loads (SFENCE); call once per
/// pipeline iteration after the W-matrix stores.
void stream_fence();

/// Fill with streaming stores (used by STREAM-style initialisation). An
/// odd `count` streams the even prefix and writes the last element
/// normally. The NT path ends with its own stream_fence(), so the filled
/// range is visible to any thread after a plain barrier/lock handoff.
void fill_stream(cplx* dst, cplx value, idx_t count, bool nontemporal);

}  // namespace bwfft
