#include "layout/stream_copy.h"

#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX__)
#include <immintrin.h>
#endif

#include "kernels/batch.h"
#include "obs/obs.h"

namespace bwfft {

namespace {

inline bool aligned32(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & 31u) == 0;
}

}  // namespace

void copy_stream(cplx* dst, const cplx* src, idx_t count, bool nontemporal) {
  if (nontemporal && count > 0) {
    // Runtime-dispatched streaming copy: 64-byte AVX-512 streams when the
    // host has them, 32-byte AVX streams otherwise, 16-byte SSE2 streams
    // for heads/tails — so odd packet sizes and 16-byte-aligned
    // destinations stay non-temporal instead of falling back to memcpy.
    const idx_t nt = kernels::nt_copy(dst, src, count);
    if (nt >= 0) {
      if (nt > 0) BWFFT_OBS_COUNT(NtStores, nt);
      return;
    }
  }
  std::memcpy(dst, src, static_cast<std::size_t>(count) * sizeof(cplx));
}

void store_packet(cplx* dst, const cplx* src, idx_t mu, bool nontemporal) {
  copy_stream(dst, src, mu, nontemporal);
}

void stream_fence() {
#if defined(__SSE2__)
  _mm_sfence();
#endif
}

void fill_stream(cplx* dst, cplx value, idx_t count, bool nontemporal) {
#if defined(__AVX__)
  if (nontemporal && aligned32(dst) && count >= 2) {
    const __m256d v = _mm256_set_pd(value.imag(), value.real(), value.imag(),
                                    value.real());
    double* d = reinterpret_cast<double*>(dst);
    const idx_t doubles = 2 * count;
    idx_t j = 0;
    // Stream the even prefix; an odd count keeps NT for all but the last
    // element instead of abandoning it for the whole range.
    for (; j + 4 <= doubles; j += 4) _mm256_stream_pd(d + j, v);
    BWFFT_OBS_COUNT(NtStores, j / 4);
    if (j < doubles) dst[count - 1] = value;
    // NT stores bypass the cache hierarchy through write-combining
    // buffers: fence before returning so a thread that synchronizes only
    // via a barrier/lock (no fence of its own) cannot observe stale data.
    stream_fence();
    return;
  }
#endif
  (void)nontemporal;
  for (idx_t i = 0; i < count; ++i) dst[i] = value;
}

}  // namespace bwfft
