// Transposition kernels — the L (stride permutation) operators of §III-A.
//
// `transpose` is the element-wise L; `transpose_packets` is the blocked
// form (L (x) I_mu) that moves whole cacheline packets, which the paper
// adopts because it vectorises with SIMD and avoids false sharing. Both
// are out-of-place (in != out) and validated against spl::StridePerm.
#pragma once

#include "common/types.h"

namespace bwfft {

/// Element transpose: `in` viewed as rows x cols row-major; `out` becomes
/// cols x rows. Equivalent to spl::stride_perm(rows*cols, cols).
void transpose(const cplx* in, cplx* out, idx_t rows, idx_t cols);

/// Blocked transpose (L_{cols}^{rows*cols} (x) I_mu) on mu-element packets:
/// `in` is a rows x cols row-major grid of packets; `out` the transposed
/// grid. With nontemporal=true the packet stores bypass the cache.
void transpose_packets(const cplx* in, cplx* out, idx_t rows, idx_t cols,
                       idx_t mu, bool nontemporal = false);

/// Loop-tiled element transpose used by the baselines for large matrices;
/// same semantics as transpose().
void transpose_tiled(const cplx* in, cplx* out, idx_t rows, idx_t cols,
                     idx_t tile = 32);

}  // namespace bwfft
