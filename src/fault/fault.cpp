#include "fault/fault.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace bwfft::fault {

namespace {

/// Installed spec plus its live hit/fire counters.
struct SpecState {
  FaultSpec spec;
  long long hits = 0;
  std::uint64_t fires = 0;
};

/// All mutable harness state. Probes are cold paths (allocation, spawn,
/// pinning, wisdom I/O) or only reached while a plan is installed, so a
/// single mutex is fine; the `armed` atomic keeps the no-plan fast path
/// to one relaxed load.
struct State {
  std::mutex mu;
  std::vector<SpecState> specs;
  std::atomic<bool> armed{false};
  bool env_checked = false;

  std::atomic<std::uint64_t> injected{0};
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> retried{0};
  std::vector<std::string> degrade_notes;  // guarded by mu
};

State& state() {
  static State* s = new State;  // leaked: probes may run during exit
  return *s;
}

bool valid_site_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

bool parse_ll(const std::string& tok, long long* out) {
  if (tok.empty()) return false;
  std::size_t pos = 0;
  long long v;
  try {
    v = std::stoll(tok, &pos, 10);
  } catch (...) {
    return false;
  }
  if (pos != tok.size()) return false;
  *out = v;
  return true;
}

/// Parse one `site[/ctx][@skip][:count][=value]` spec.
bool parse_spec(const std::string& text, FaultSpec* out, std::string* err) {
  FaultSpec s;
  std::size_t i = 0;
  while (i < text.size() && valid_site_char(text[i])) ++i;
  s.site = text.substr(0, i);
  if (s.site.empty()) {
    if (err) *err = "fault spec has no site name: \"" + text + "\"";
    return false;
  }
  while (i < text.size()) {
    const char tag = text[i++];
    std::size_t j = i;
    while (j < text.size() && text[j] != '/' && text[j] != '@' &&
           text[j] != ':' && text[j] != '=') {
      ++j;
    }
    const std::string tok = text.substr(i, j - i);
    i = j;
    long long v = 0;
    switch (tag) {
      case '/':
        if (!parse_ll(tok, &v) || v < 0) {
          if (err) *err = "bad /ctx in fault spec \"" + text + "\"";
          return false;
        }
        s.ctx = v;
        break;
      case '@':
        if (!parse_ll(tok, &v) || v < 0) {
          if (err) *err = "bad @skip in fault spec \"" + text + "\"";
          return false;
        }
        s.skip = v;
        break;
      case ':':
        if (tok == "*") {
          s.count = -1;
        } else if (parse_ll(tok, &v) && v >= 1) {
          s.count = v;
        } else {
          if (err) *err = "bad :count in fault spec \"" + text + "\"";
          return false;
        }
        break;
      case '=':
        if (!parse_ll(tok, &v)) {
          if (err) *err = "bad =value in fault spec \"" + text + "\"";
          return false;
        }
        s.value = v;
        break;
      default:
        if (err) {
          *err = std::string("unexpected '") + tag + "' in fault spec \"" +
                 text + "\"";
        }
        return false;
    }
  }
  *out = std::move(s);
  return true;
}

void install_locked(State& st, const FaultPlan& plan) {
  st.specs.clear();
  st.specs.reserve(plan.specs.size());
  for (const FaultSpec& s : plan.specs) st.specs.push_back({s, 0, 0});
  st.armed.store(!st.specs.empty(), std::memory_order_release);
}

/// BWFFT_FAULTS is consulted once, lazily, the first time a probe runs
/// with no programmatic plan installed. A malformed value is reported to
/// stderr and ignored (a fault harness must not itself crash the run).
void maybe_load_env_locked(State& st) {
  if (st.env_checked) return;
  st.env_checked = true;
  const char* env = std::getenv("BWFFT_FAULTS");
  if (!env || !*env) return;
  FaultPlan plan;
  std::string err;
  if (!plan.parse(env, &err)) {
    std::fprintf(stderr, "bwfft: ignoring BWFFT_FAULTS: %s\n", err.c_str());
    return;
  }
  install_locked(st, plan);
}

/// Core probe. Counts the hit against every matching spec; fires when any
/// matching spec's window covers this hit.
bool fire_locked(State& st, const char* site, long long ctx,
                 std::int64_t* value) {
  bool fired = false;
  for (SpecState& ss : st.specs) {
    if (ss.spec.site != site) continue;
    if (ss.spec.ctx >= 0 && ss.spec.ctx != ctx) continue;
    const long long hit = ++ss.hits;
    if (hit <= ss.spec.skip) continue;
    if (ss.spec.count >= 0 && hit > ss.spec.skip + ss.spec.count) continue;
    ++ss.fires;
    if (!fired && value) *value = ss.spec.value;
    fired = true;
  }
  if (fired) st.injected.fetch_add(1, std::memory_order_relaxed);
  return fired;
}

}  // namespace

bool FaultPlan::parse(const std::string& text, std::string* err) {
  std::vector<FaultSpec> parsed;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find(';', pos);
    if (end == std::string::npos) end = text.size();
    const std::string piece = text.substr(pos, end - pos);
    pos = end + 1;
    if (piece.empty()) {
      if (end == text.size()) break;
      continue;  // tolerate empty segments ("a;;b", trailing ';')
    }
    FaultSpec s;
    if (!parse_spec(piece, &s, err)) return false;
    parsed.push_back(std::move(s));
  }
  specs = std::move(parsed);
  return true;
}

bool active() { return state().armed.load(std::memory_order_acquire); }

void set_plan(const FaultPlan& plan) {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  st.env_checked = true;  // a programmatic plan overrides the environment
  install_locked(st, plan);
}

bool set_plan_from_spec(const std::string& spec, std::string* err) {
  FaultPlan plan;
  if (!plan.parse(spec, err)) return false;
  set_plan(plan);
  return true;
}

void clear() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  st.env_checked = true;
  st.specs.clear();
  st.armed.store(false, std::memory_order_release);
}

bool should_fire(const char* site, long long ctx) {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  maybe_load_env_locked(st);
  if (st.specs.empty()) return false;
  return fire_locked(st, site, ctx, nullptr);
}

bool should_fire_value(const char* site, long long ctx, std::int64_t* value) {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  maybe_load_env_locked(st);
  if (st.specs.empty()) return false;
  return fire_locked(st, site, ctx, value);
}

bool site_armed(const char* site) {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  maybe_load_env_locked(st);
  for (const SpecState& ss : st.specs) {
    if (ss.spec.site == site) return true;
  }
  return false;
}

std::uint64_t fired_count(const char* site) {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  std::uint64_t n = 0;
  for (const SpecState& ss : st.specs) {
    if (ss.spec.site == site) n += ss.fires;
  }
  return n;
}

void note_degrade(const char* what) {
  State& st = state();
  st.degraded.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(st.mu);
  // Deduplicate: a fallback that fires per-allocation would otherwise
  // flood the report.
  for (const std::string& n : st.degrade_notes) {
    if (n == what) return;
  }
  st.degrade_notes.emplace_back(what);
}

void note_retry() {
  state().retried.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t injected_count() {
  return state().injected.load(std::memory_order_relaxed);
}
std::uint64_t degraded_count() {
  return state().degraded.load(std::memory_order_relaxed);
}
std::uint64_t retried_count() {
  return state().retried.load(std::memory_order_relaxed);
}

std::vector<std::string> degrade_notes() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  return st.degrade_notes;
}

void reset_stats() {
  State& st = state();
  st.injected.store(0, std::memory_order_relaxed);
  st.degraded.store(0, std::memory_order_relaxed);
  st.retried.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(st.mu);
  st.degrade_notes.clear();
}

std::string report() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  std::string out;
  for (const SpecState& ss : st.specs) {
    if (ss.fires == 0) continue;
    out += "fault " + ss.spec.site + ": fired " + std::to_string(ss.fires) +
           " of " + std::to_string(ss.hits) + " hits\n";
  }
  for (const std::string& n : st.degrade_notes) {
    out += "degraded: " + n + "\n";
  }
  return out;
}

}  // namespace bwfft::fault
