// Deterministic fault-injection harness.
//
// Production failures — an allocation that cannot be satisfied, a thread
// that cannot be spawned or pinned, a worker that stalls at a barrier, a
// wisdom file torn by a crash — are routine, not exceptional, and every
// one of them must degrade to a correct (if slower) plan instead of
// crashing the engine. This module lets tests and operators *prove* that:
// injection points threaded through the stack fire deterministically
// according to a FaultPlan, and the recovery layer (common/error.h Status,
// Fft2d/Fft3d::try_execute) is exercised end to end.
//
// A plan is a set of specs, one per injection site, installed either
// programmatically (set_plan / set_plan_from_spec) or via the BWFFT_FAULTS
// environment variable. Spec grammar (specs separated by ';'):
//
//   site[/ctx][@skip][:count][=value]
//
//   site    stable site name, e.g. "alloc.huge" (see kSite* below)
//   /ctx    only hits whose context matches fire (default: any context);
//           the pipeline passes its barrier step as context, so
//           "pipeline.stall/3" stalls a thread at step 3
//   @skip   let this many matching hits pass before firing (default 0)
//   :count  fire on this many consecutive hits after the skip; '*' means
//           every hit (default 1)
//   =value  integer payload delivered to the site when it fires, e.g. a
//           straggler delay in milliseconds (default 0)
//
// Examples:
//   BWFFT_FAULTS="alloc.huge:*"            every huge-page alloc fails
//   BWFFT_FAULTS="spawn.thread@2"          the 3rd thread spawn fails once
//   BWFFT_FAULTS="pipeline.stall/3=500"    one thread sleeps 500 ms at
//                                          pipeline barrier step 3
//   BWFFT_FAULTS="pin:*;wisdom.torn"       two families at once
//
// Sites call the BWFFT_FAULT_POINT / BWFFT_FAULT_VALUE macros. With the
// CMake option BWFFT_FAULT=OFF the macros compile to constant-false (like
// the obs macros compile to ((void)0)), so release hot paths carry no
// probes. With the option ON but no plan installed, a probe is one
// relaxed atomic load.
//
// The harness also keeps the aggregate robustness tallies — faults
// injected, degradations taken, recovery retries — that the obs layer
// mirrors as the fault_injected / fault_degrade / fault_retry counters.
// Degradation call sites below the obs layer (e.g. the allocator) report
// through note_degrade(), which needs no dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bwfft::fault {

// Stable site names. Keyed strings rather than an enum so out-of-tree
// experiments can add probes without touching this header.
inline constexpr const char* kSiteAllocAligned = "alloc.aligned";
inline constexpr const char* kSiteAllocHuge = "alloc.huge";
inline constexpr const char* kSiteAllocNuma = "alloc.numa";
inline constexpr const char* kSitePin = "pin";
inline constexpr const char* kSiteSpawnThread = "spawn.thread";
inline constexpr const char* kSiteBarrierStall = "barrier.stall";
inline constexpr const char* kSitePipelineStall = "pipeline.stall";
inline constexpr const char* kSiteWisdomTorn = "wisdom.torn";
inline constexpr const char* kSiteWisdomCorrupt = "wisdom.corrupt";
// Exec-service resilience sites (docs/INTERNALS.md §14): shed a popped
// request, synthetically age a batch for the watchdog (=value is the age
// in ms), fail a plan's execution as a transient stall, and corrupt one
// output element after a successful execute.
inline constexpr const char* kSiteExecShed = "exec.shed";
inline constexpr const char* kSiteExecSlowBatch = "exec.slow_batch";
inline constexpr const char* kSitePlanPoison = "plan.poison";
inline constexpr const char* kSiteResultCorrupt = "result.corrupt";

/// One parsed spec of a FaultPlan (see the grammar above).
struct FaultSpec {
  std::string site;
  long long ctx = -1;    ///< required context; -1 matches any
  long long skip = 0;    ///< matching hits to let pass before firing
  long long count = 1;   ///< firings after the skip; -1 = every hit
  std::int64_t value = 0;  ///< payload handed to the site when firing
};

/// A set of fault specs. Parsing accepts the BWFFT_FAULTS grammar; a
/// malformed spec fails the whole parse with a diagnostic.
struct FaultPlan {
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }
  bool parse(const std::string& text, std::string* err);
};

/// True when a non-empty plan is installed (one relaxed load; the macros
/// bail out on false before any locking).
bool active();

/// Install a plan (replaces any previous one and zeroes its hit/fire
/// counters). An empty plan is equivalent to clear().
void set_plan(const FaultPlan& plan);

/// Parse `spec` and install it. False (and no plan change) on a grammar
/// error.
bool set_plan_from_spec(const std::string& spec, std::string* err);

/// Remove the installed plan; all probes return false again.
void clear();

/// Probe an injection site: true when the installed plan says this hit
/// fires. Also bumps the site's fired counter and the aggregate injected
/// tally. `ctx` is matched against the spec's /ctx filter.
bool should_fire(const char* site, long long ctx = -1);

/// Probe with payload: like should_fire, additionally storing the spec's
/// =value into *value when firing.
bool should_fire_value(const char* site, long long ctx, std::int64_t* value);

/// True when the installed plan has a spec for `site` (fired or not) —
/// used to arm watchdogs only when a stall is actually scheduled.
bool site_armed(const char* site);

/// Total firings of `site` since the plan was installed.
std::uint64_t fired_count(const char* site);

// ---------------------------------------------------------------------------
// Aggregate robustness tallies (mirrored into obs counters).

/// Record one graceful degradation (fallback taken instead of failing).
/// `what` is a short static description, kept for the CLI report.
void note_degrade(const char* what);

/// Record one recovery retry (a run aborted and re-planned).
void note_retry();

std::uint64_t injected_count();
std::uint64_t degraded_count();
std::uint64_t retried_count();

/// Snapshot of the recorded degradation notes (deduplicated, in the
/// order first taken) — ExecReport and the CLI verbose report use this.
std::vector<std::string> degrade_notes();

/// Zero the aggregate tallies and the recorded degradation notes (the
/// installed plan and its per-site counters are untouched).
void reset_stats();

/// Human-readable robustness report: per-site firings of the installed
/// plan plus the degradation notes, one line each. Empty string when
/// nothing fired and nothing degraded.
std::string report();

}  // namespace bwfft::fault

// ---------------------------------------------------------------------------
// Probe macros — constant-false when BWFFT_FAULT is off, so the guarded
// failure branches fold away entirely.

#if defined(BWFFT_FAULT)
#define BWFFT_FAULT_POINT(site) ::bwfft::fault::should_fire((site))
#define BWFFT_FAULT_POINT_CTX(site, ctx) \
  ::bwfft::fault::should_fire((site), (ctx))
#define BWFFT_FAULT_VALUE(site, ctx, value_out) \
  ::bwfft::fault::should_fire_value((site), (ctx), (value_out))
#else
#define BWFFT_FAULT_POINT(site) false
#define BWFFT_FAULT_POINT_CTX(site, ctx) false
#define BWFFT_FAULT_VALUE(site, ctx, value_out) false
#endif
