#include "analysis/static_verify.h"

#include <algorithm>
#include <sstream>

#include "fft/stage.h"
#include "kernels/twiddle.h"
#include "pipeline/pipeline.h"

namespace bwfft::analysis {

namespace {

const char* issue_kind_name(StaticIssue::Kind k) {
  switch (k) {
    case StaticIssue::Kind::PartitionOverlap: return "partition-overlap";
    case StaticIssue::Kind::PartitionGap: return "partition-gap";
    case StaticIssue::Kind::OutOfBounds: return "out-of-bounds";
    case StaticIssue::Kind::NotConservative: return "not-conservative";
    case StaticIssue::Kind::MissingFence: return "missing-fence";
    case StaticIssue::Kind::EpochAlias: return "epoch-alias";
    case StaticIssue::Kind::BadModel: return "bad-model";
  }
  return "?";
}

const char* engine_label(EngineKind k) {
  switch (k) {
    case EngineKind::Reference: return "reference";
    case EngineKind::Pencil: return "pencil";
    case EngineKind::StageParallel: return "stage-parallel";
    case EngineKind::SlabPencil: return "slab-pencil";
    case EngineKind::DoubleBuffer: return "double-buffer";
    case EngineKind::Auto: return "auto";
  }
  return "?";
}

void add_issue(StaticReport& rep, StaticIssue::Kind kind, std::string stage,
               std::string detail) {
  rep.issues.push_back({kind, std::move(stage), std::move(detail)});
}

/// Decode the owner tag (iter * parts + rank) for violation messages.
std::string owner_str(int owner, int parts) {
  if (owner < 0 || parts < 1) return "?";
  std::ostringstream os;
  os << "iter " << owner / parts << " rank " << owner % parts;
  return os.str();
}

/// True when two strided windows share any element. Expands the smaller
/// run list and tests each run against the other interval's arithmetic —
/// the buffer windows this guards are one or two runs each.
bool windows_overlap(const StridedInterval& a, const StridedInterval& b) {
  if (a.elems() <= 0 || b.elems() <= 0) return false;
  for (idx_t i = 0; i < a.count; ++i) {
    const idx_t ab = a.begin + i * a.stride;
    const idx_t ae = ab + a.width;
    for (idx_t j = 0; j < b.count; ++j) {
      const idx_t bb = b.begin + j * b.stride;
      if (ab < bb + b.width && bb < ae) return true;
    }
  }
  return false;
}

/// Geometry-derived windows shared by the double-buffer and
/// stage-parallel builders: the load of rows [r0, r1) of block `i` reads
/// a contiguous row range of the input; the rotated store scatters one
/// mu-packet of each of those rows every rows*mu elements of the output
/// (rotate_store_rows: row r packet p lands at out[(p*(a*b) + r) * mu]).
StridedInterval rotated_store_window(const StageGeometry& g, idx_t first_row,
                                     idx_t nrows) {
  return {first_row * g.mu, nrows * g.mu, g.rows() * g.mu, g.cp()};
}

void build_tiled_stage(const StageGeometry& g, idx_t total, int parts,
                       idx_t block_rows, bool pipelined, bool nt,
                       const std::string& name, StageModel* out) {
  const idx_t row_elems = g.row_elems();
  StageModel st;
  st.name = name;
  st.in_elems = total;
  st.out_elems = total;
  st.iterations = g.rows() / block_rows;
  st.parts = parts;
  st.nt_store = nt;
  st.fence_before_publish = true;  // pipeline fences every store step
  st.pipelined = pipelined;
  st.buf_elems = block_rows * row_elems;
  for (idx_t i = 0; i < st.iterations; ++i) {
    for (int d = 0; d < parts; ++d) {
      auto [r0, r1] = ThreadTeam::chunk(block_rows, parts, d);
      if (r1 <= r0) continue;
      const int owner = static_cast<int>(i) * parts + d;
      const idx_t row = i * block_rows + r0;
      st.loads.push_back(
          {owner, StridedInterval::contiguous(row * row_elems,
                                              (r1 - r0) * row_elems)});
      st.stores.push_back({owner, rotated_store_window(g, row, r1 - r0)});
      if (pipelined && i == 0) {
        // Per-rank buffer windows are iteration-independent (the chunk
        // depends only on rank), so one iteration's worth describes all.
        st.buf_loads.push_back(
            {d, StridedInterval::contiguous(r0 * row_elems,
                                            (r1 - r0) * row_elems)});
        st.buf_stores.push_back(
            {d, StridedInterval::contiguous(r0 * row_elems,
                                            (r1 - r0) * row_elems)});
      }
    }
  }
  *out = std::move(st);
}

bool build_double_buffer(const std::vector<idx_t>& dims,
                         const FftOptions& opts, PlanModel* out,
                         std::string* why) {
  const idx_t m = dims.back();
  if (opts.packet_elems > 0 && m % opts.packet_elems != 0) {
    *why = "packet_elems does not divide the fast dimension";
    return false;
  }
  const idx_t mu = resolve_packet_size(opts.packet_elems, m);

  const int p = opts.threads > 0 ? opts.threads : opts.topo.total_threads();
  const int pc = opts.compute_threads >= 0 ? opts.compute_threads
                                           : (p <= 1 ? p : p / 2);
  if (pc < 0 || pc > p) {
    *why = "compute_threads outside [0, threads]";
    return false;
  }
  const int pd = p - pc;
  const bool pipelined = pd > 0;
  // Sequential degraded schedule partitions over the compute group; the
  // Table II schedule gives load/store to the data group.
  const int parts = pipelined ? pd : pc;
  if (parts < 1) {
    *why = "no thread left to move data";
    return false;
  }

  std::vector<StageGeometry> stages;
  if (dims.size() == 2) {
    auto s = make_2d_stages(dims[0], dims[1], mu);
    stages.assign(s.begin(), s.end());
  } else {
    auto s = make_3d_stages(dims[0], dims[1], dims[2], mu);
    stages.assign(s.begin(), s.end());
  }

  idx_t block = opts.block_elems > 0 ? opts.block_elems
                                     : default_block_elems(opts.topo);
  for (const auto& g : stages) block = std::max(block, g.row_elems());

  out->engine = engine_label(EngineKind::DoubleBuffer);
  out->threads = p;
  out->compute_threads = pc;
  out->data_threads = pd;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const StageGeometry& g = stages[s];
    const idx_t block_rows =
        rows_per_block(g.rows(), block / g.row_elems());
    StageModel st;
    build_tiled_stage(g, out->total, parts, block_rows, pipelined,
                      opts.nontemporal, "stage-" + std::to_string(s), &st);
    out->stages.push_back(std::move(st));
  }
  return true;
}

bool build_stage_parallel(const std::vector<idx_t>& dims,
                          const FftOptions& opts, PlanModel* out,
                          std::string* why) {
  const idx_t m = dims.back();
  if (opts.packet_elems > 0 && m % opts.packet_elems != 0) {
    *why = "packet_elems does not divide the fast dimension";
    return false;
  }
  const idx_t mu = resolve_packet_size(opts.packet_elems, m);
  const int p = opts.threads > 0 ? opts.threads : opts.topo.total_threads();

  std::vector<StageGeometry> stages;
  if (dims.size() == 2) {
    auto s = make_2d_stages(dims[0], dims[1], mu);
    stages.assign(s.begin(), s.end());
  } else {
    auto s = make_3d_stages(dims[0], dims[1], dims[2], mu);
    stages.assign(s.begin(), s.end());
  }

  out->engine = engine_label(EngineKind::StageParallel);
  out->threads = p;
  out->compute_threads = p;
  out->data_threads = 0;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    // One un-tiled pass per stage: every thread transforms and rotates
    // its whole row chunk, temporal stores, no pipeline.
    StageModel st;
    build_tiled_stage(stages[s], out->total, p, stages[s].rows(),
                      /*pipelined=*/false, /*nt=*/false,
                      "stage-" + std::to_string(s), &st);
    out->stages.push_back(std::move(st));
  }
  return true;
}

/// In-place pass whose per-rank window serves as both read and write set.
StageModel inplace_pass(const std::string& name, idx_t total, int parts,
                        std::vector<OwnedWindow> windows) {
  StageModel st;
  st.name = name;
  st.in_elems = total;
  st.out_elems = total;
  st.parts = parts;
  st.in_place = true;
  st.fence_before_publish = true;  // temporal stores; vacuous
  st.loads = windows;
  st.stores = std::move(windows);
  return st;
}

bool build_pencil(const std::vector<idx_t>& dims, const FftOptions& opts,
                  PlanModel* out, std::string* why) {
  for (idx_t d : dims) {
    if (!is_pow2(d)) {
      *why = "pencil engine requires power-of-two sizes";
      return false;
    }
  }
  const int p = opts.threads > 0 ? opts.threads : opts.topo.total_threads();
  out->engine = engine_label(EngineKind::Pencil);
  out->threads = p;
  out->compute_threads = p;
  out->data_threads = 0;
  const idx_t total = out->total;

  if (dims.size() == 2) {
    const idx_t n = dims[0], m = dims[1];
    std::vector<OwnedWindow> x, y;
    for (int t = 0; t < p; ++t) {
      auto [b, e] = ThreadTeam::chunk(n, p, t);
      if (e > b) x.push_back({t, StridedInterval::contiguous(b * m,
                                                             (e - b) * m)});
      auto [cb, ce] = ThreadTeam::chunk(m, p, t);
      if (ce > cb) y.push_back({t, {cb, ce - cb, m, n}});
    }
    out->stages.push_back(inplace_pass("x-pass", total, p, std::move(x)));
    out->stages.push_back(inplace_pass("y-pass", total, p, std::move(y)));
  } else {
    const idx_t k = dims[0], n = dims[1], m = dims[2];
    std::vector<OwnedWindow> x, y, z;
    for (int t = 0; t < p; ++t) {
      auto [b, e] = ThreadTeam::chunk(k * n, p, t);
      if (e > b) x.push_back({t, StridedInterval::contiguous(b * m,
                                                             (e - b) * m)});
      // y pencils are indexed by (z, x) pairs; a rank's chunk can span
      // several z slabs, each contributing one strided window of its
      // x sub-range.
      auto [ib, ie] = ThreadTeam::chunk(k * m, p, t);
      for (idx_t i = ib; i < ie;) {
        const idx_t zz = i / m;
        const idx_t seg_end = std::min(ie, (zz + 1) * m);
        const idx_t x0 = i % m;
        y.push_back({t, {zz * n * m + x0, seg_end - i, m, n}});
        i = seg_end;
      }
      auto [cb, ce] = ThreadTeam::chunk(n * m, p, t);
      if (ce > cb) z.push_back({t, {cb, ce - cb, n * m, k}});
    }
    out->stages.push_back(inplace_pass("x-pass", total, p, std::move(x)));
    out->stages.push_back(inplace_pass("y-pass", total, p, std::move(y)));
    out->stages.push_back(inplace_pass("z-pass", total, p, std::move(z)));
  }
  return true;
}

bool build_slab_pencil(const std::vector<idx_t>& dims, const FftOptions& opts,
                       PlanModel* out, std::string* why) {
  if (dims.size() != 3) {
    *why = "slab-pencil engine is 3D only";
    return false;
  }
  const idx_t k = dims[0], n = dims[1], m = dims[2];
  const idx_t slab = n * m;
  const idx_t mu = packet_size_for(m);
  const int p = opts.threads > 0 ? opts.threads : opts.topo.total_threads();
  out->engine = engine_label(EngineKind::SlabPencil);
  out->threads = p;
  out->compute_threads = p;
  out->data_threads = 0;

  // Phase 1: a 2D FFT per z slab; a rank owns whole slabs, so its output
  // window is the contiguous slab range (the per-thread scratch in
  // between is private and never shared).
  StageModel s1;
  s1.name = "slabs-2d";
  s1.in_elems = s1.out_elems = out->total;
  s1.parts = p;
  s1.fence_before_publish = true;
  for (int t = 0; t < p; ++t) {
    auto [zb, ze] = ThreadTeam::chunk(k, p, t);
    if (ze <= zb) continue;
    s1.loads.push_back({t, StridedInterval::contiguous(zb * slab,
                                                       (ze - zb) * slab)});
    s1.stores.push_back({t, StridedInterval::contiguous(zb * slab,
                                                        (ze - zb) * slab)});
  }
  out->stages.push_back(std::move(s1));

  // Phase 2: z pencils in mu-lane groups, in place on the output.
  std::vector<OwnedWindow> zw;
  for (int t = 0; t < p; ++t) {
    auto [b, e] = ThreadTeam::chunk(slab / mu, p, t);
    if (e > b) zw.push_back({t, {b * mu, (e - b) * mu, slab, k}});
  }
  out->stages.push_back(
      inplace_pass("z-pencils", out->total, p, std::move(zw)));
  return true;
}

}  // namespace

std::string PlanModel::label() const {
  std::ostringstream os;
  os << engine << " ";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    os << (i ? "x" : "") << dims[i];
  }
  os << " p=" << threads << " pc=" << compute_threads
     << " pd=" << data_threads;
  return os.str();
}

std::string StaticIssue::str() const {
  std::string s = std::string("[") + issue_kind_name(kind) + "] ";
  if (!stage.empty()) s += stage + ": ";
  return s + detail;
}

std::string StaticReport::str() const {
  std::ostringstream os;
  if (ok()) {
    os << "static verify: clean (" << plan << ", " << checks << " checks)";
    return os.str();
  }
  os << "static verify: " << issues.size() << " issue(s) (" << plan << ")";
  for (const auto& i : issues) os << "\n  " << i.str();
  return os.str();
}

bool build_plan_model(const std::vector<idx_t>& dims, const FftOptions& opts,
                      PlanModel* out, std::string* why) {
  std::string unused;
  if (why == nullptr) why = &unused;
  *out = PlanModel{};
  out->dims = dims;
  out->total = 1;
  for (idx_t d : dims) out->total *= d;
  if (dims.size() != 2 && dims.size() != 3) {
    *why = "engines support 2D and 3D only";
    return false;
  }
  for (idx_t d : dims) {
    if (d < 1) {
      *why = "dimensions must be positive";
      return false;
    }
  }
  switch (opts.engine) {
    case EngineKind::DoubleBuffer:
      return build_double_buffer(dims, opts, out, why);
    case EngineKind::StageParallel:
      return build_stage_parallel(dims, opts, out, why);
    case EngineKind::Pencil:
      return build_pencil(dims, opts, out, why);
    case EngineKind::SlabPencil:
      return build_slab_pencil(dims, opts, out, why);
    default:
      *why = "no symbolic model for this engine kind";
      return false;
  }
}

StaticReport verify_plan(const PlanModel& model) {
  StaticReport rep;
  rep.plan = model.label();

  for (std::size_t s = 0; s < model.stages.size(); ++s) {
    const StageModel& st = model.stages[s];

    // (1) Store windows: pairwise disjoint, in bounds, exact cover.
    ++rep.checks;
    const PartitionReport stores =
        check_partition(st.stores, st.out_elems, /*require_cover=*/true);
    for (const IntervalIssue& i : stores.issues) {
      StaticIssue::Kind kind = StaticIssue::Kind::PartitionOverlap;
      if (i.kind == IntervalIssue::Kind::Gap) {
        kind = StaticIssue::Kind::PartitionGap;
      } else if (i.kind == IntervalIssue::Kind::OutOfBounds) {
        kind = StaticIssue::Kind::OutOfBounds;
      }
      std::ostringstream os;
      os << i.str();
      if (i.kind == IntervalIssue::Kind::Overlap) {
        os << " (" << owner_str(i.owner_a, st.parts) << " vs "
           << owner_str(i.owner_b, st.parts) << ")";
      }
      add_issue(rep, kind, st.name, os.str());
    }

    // Read coverage: every input element is consumed (overlapping reads
    // are legal — in-place passes read what they write — so only gaps
    // and bounds escapes count).
    ++rep.checks;
    const PartitionReport loads =
        check_partition(st.loads, st.in_elems, /*require_cover=*/true);
    for (const IntervalIssue& i : loads.issues) {
      if (i.kind == IntervalIssue::Kind::Overlap) continue;
      add_issue(rep,
                i.kind == IntervalIssue::Kind::Gap
                    ? StaticIssue::Kind::PartitionGap
                    : StaticIssue::Kind::OutOfBounds,
                st.name, "read set: " + i.str());
    }

    // (4) Conservation: the write element count balances the stage
    // output, and the stage consumes exactly what the previous one
    // produced.
    ++rep.checks;
    idx_t written = 0;
    for (const OwnedWindow& w : st.stores) written += w.iv.elems();
    if (written != st.out_elems) {
      std::ostringstream os;
      os << "windows write " << written << " elements but the stage output "
         << "holds " << st.out_elems;
      add_issue(rep, StaticIssue::Kind::NotConservative, st.name, os.str());
    }
    if (st.in_elems != st.out_elems) {
      std::ostringstream os;
      os << "stage reads " << st.in_elems << " elements but writes "
         << st.out_elems;
      add_issue(rep, StaticIssue::Kind::NotConservative, st.name, os.str());
    }
    if (s > 0 && model.stages[s - 1].out_elems != st.in_elems) {
      add_issue(rep, StaticIssue::Kind::NotConservative, st.name,
                "stage input size does not match the previous stage output");
    }

    // (2) Fence pairing: non-temporal stores must reach a stream fence
    // on the storing thread before the barrier that publishes them —
    // otherwise a reader on another core can observe stale data after
    // the barrier.
    ++rep.checks;
    if (st.nt_store && !st.fence_before_publish) {
      add_issue(rep, StaticIssue::Kind::MissingFence, st.name,
                "non-temporal stores are published by a barrier with no "
                "stream_fence() before it");
    }

    // (3) Buffer epoch aliasing: in the Table II schedule Store(i-2) and
    // Load(i) run concurrently on DIFFERENT data threads with no
    // ordering until the step barrier, so a Load window may only alias
    // the SAME rank's Store window (program order serialises those two).
    ++rep.checks;
    if (st.pipelined) {
      for (const OwnedWindow& ld : st.buf_loads) {
        for (const OwnedWindow& sw : st.buf_stores) {
          if (ld.owner == sw.owner) continue;
          if (windows_overlap(ld.iv, sw.iv)) {
            std::ostringstream os;
            os << "Load window of rank " << ld.owner << " " << ld.iv.str()
               << " aliases the pending Store window of rank " << sw.owner
               << " " << sw.iv.str() << " in the shared buffer";
            add_issue(rep, StaticIssue::Kind::EpochAlias, st.name, os.str());
          }
        }
      }
    }
  }
  return rep;
}

Trace make_table2_trace(idx_t iterations, const RolePlan& roles) {
  using Kind = DoubleBufferPipeline::TraceEvent::Kind;
  Trace t;
  if (roles.data == 0) {
    // Degraded sequential schedule: barriers separate the three phases
    // of each iteration, so any correct trace is phase-major.
    for (idx_t i = 0; i < iterations; ++i) {
      const int h = static_cast<int>(i % 2);
      for (int tid = 0; tid < roles.total; ++tid) {
        t.push_back({i, Kind::Load, i, h, tid});
      }
      for (int tid = 0; tid < roles.total; ++tid) {
        t.push_back({i, Kind::Compute, i, h, tid});
      }
      for (int tid = 0; tid < roles.total; ++tid) {
        t.push_back({i, Kind::Store, i, h, tid});
      }
    }
    return t;
  }
  for (idx_t step = 0; step < iterations + 2; ++step) {
    const int h = static_cast<int>(step % 2);
    for (int tid = 0; tid < roles.total; ++tid) {
      if (roles.is_compute(tid)) {
        if (step >= 1 && step <= iterations) {
          t.push_back({step, Kind::Compute, step - 1,
                       static_cast<int>((step + 1) % 2), tid});
        }
      } else {
        // Per-thread program order: Store(step-2) retires the half
        // before Load(step) refills it.
        if (step >= 2) t.push_back({step, Kind::Store, step - 2, h, tid});
        if (step < iterations) t.push_back({step, Kind::Load, step, h, tid});
      }
    }
  }
  return t;
}

HazardReport verify_schedule_symbolic(const Trace& trace, idx_t iterations,
                                      const RolePlan& roles) {
  using Kind = DoubleBufferPipeline::TraceEvent::Kind;
  HazardReport rep;
  rep.iterations = iterations;
  rep.events = trace.size();
  const bool table2 = roles.data > 0;

  auto violation = [&](HazardViolation::Kind k,
                       const DoubleBufferPipeline::TraceEvent& ev,
                       std::string detail) {
    rep.violations.push_back(
        {k, ev.step, ev.iter, ev.half, ev.tid, std::move(detail)});
  };

  // Expected slot table: for every (kind, tid, iter) the unique
  // (step, half) the recurrences allow, plus a seen flag.
  auto slot_index = [&](Kind k, int tid, idx_t iter) -> std::size_t {
    const std::size_t kind_idx = k == Kind::Load ? 0 : k == Kind::Compute
                                                           ? 1
                                                           : 2;
    return (kind_idx * static_cast<std::size_t>(roles.total) +
            static_cast<std::size_t>(tid)) *
               static_cast<std::size_t>(iterations) +
           static_cast<std::size_t>(iter);
  };
  std::vector<char> seen(3 * static_cast<std::size_t>(roles.total) *
                             static_cast<std::size_t>(iterations),
                         0);

  // Per-(tid, step) flag for the S4 ordering rule in the Table II
  // schedule: Load(step) recorded before Store(step-2) on the same
  // thread means the half was refilled before it was retired.
  std::vector<char> load_seen_at_step(
      static_cast<std::size_t>(roles.total) *
          static_cast<std::size_t>(iterations + 2),
      0);

  for (const auto& ev : trace) {
    if (ev.tid < 0 || ev.tid >= roles.total) {
      violation(HazardViolation::Kind::RoleMismatch, ev,
                "event from a thread outside the team");
      continue;
    }
    if (ev.iter < 0 || ev.iter >= iterations) {
      violation(HazardViolation::Kind::WrongStep, ev,
                "iteration outside [0, iterations)");
      continue;
    }
    const bool is_compute_ev = ev.kind == Kind::Compute;
    if (table2 && roles.is_compute(ev.tid) != is_compute_ev) {
      violation(HazardViolation::Kind::RoleMismatch, ev,
                is_compute_ev ? "compute task on a data thread"
                              : "data task on a compute thread");
      continue;
    }

    // The unique slot this event may occupy.
    idx_t want_step = 0;
    int want_half = 0;
    if (!table2) {
      want_step = ev.iter;
      want_half = static_cast<int>(ev.iter % 2);
    } else if (ev.kind == Kind::Load) {
      want_step = ev.iter;
      want_half = static_cast<int>(ev.iter % 2);
    } else if (ev.kind == Kind::Store) {
      want_step = ev.iter + 2;
      want_half = static_cast<int>(ev.iter % 2);
    } else {
      want_step = ev.iter + 1;
      want_half = static_cast<int>(ev.iter % 2);
    }

    const std::size_t idx = slot_index(ev.kind, ev.tid, ev.iter);
    if (seen[idx]) {
      violation(HazardViolation::Kind::DuplicateTask, ev,
                "slot executed more than once");
      continue;
    }
    seen[idx] = 1;

    if (ev.step != want_step) {
      violation(HazardViolation::Kind::WrongStep, ev,
                "expected step " + std::to_string(want_step));
      continue;
    }
    if (ev.half != want_half) {
      violation(HazardViolation::Kind::WrongHalf, ev,
                "expected half " + std::to_string(want_half));
      continue;
    }

    if (table2 && !roles.is_compute(ev.tid)) {
      const std::size_t ts = static_cast<std::size_t>(ev.tid) *
                                 static_cast<std::size_t>(iterations + 2) +
                             static_cast<std::size_t>(ev.step);
      if (ev.kind == Kind::Load) {
        load_seen_at_step[ts] = 1;
      } else if (load_seen_at_step[ts]) {
        violation(HazardViolation::Kind::StoreLoadOrder, ev,
                  "Store(i-2) recorded after Load(i) in the same step");
      }
    }
  }

  // Every slot the schedule demands must have been filled.
  for (int tid = 0; tid < roles.total; ++tid) {
    const bool compute_thread = roles.is_compute(tid);
    for (idx_t i = 0; i < iterations; ++i) {
      const bool want_data = !table2 || !compute_thread;
      const bool want_compute = !table2 || compute_thread;
      auto require = [&](Kind k, const char* what) {
        if (!seen[slot_index(k, tid, i)]) {
          rep.violations.push_back({HazardViolation::Kind::MissingTask, -1, i,
                                    -1, tid,
                                    std::string(what) + " never executed"});
        }
      };
      if (want_data) {
        require(Kind::Load, "Load");
        require(Kind::Store, "Store");
      }
      if (want_compute) require(Kind::Compute, "Compute");
    }
  }
  return rep;
}

}  // namespace bwfft::analysis
