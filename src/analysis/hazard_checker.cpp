#include "analysis/hazard_checker.h"

#include <cstdlib>
#include <sstream>

#include "common/aligned.h"
#include "common/error.h"

namespace bwfft::analysis {

namespace {

using Kind = DoubleBufferPipeline::TraceEvent::Kind;
using VKind = HazardViolation::Kind;

const char* kind_name(VKind k) {
  switch (k) {
    case VKind::RoleMismatch: return "role-mismatch";
    case VKind::WrongStep: return "wrong-step";
    case VKind::WrongHalf: return "wrong-half";
    case VKind::ComputeOverlap: return "compute-overlap";
    case VKind::StoreLoadOrder: return "store-load-order";
    case VKind::MissingTask: return "missing-task";
    case VKind::DuplicateTask: return "duplicate-task";
    case VKind::PartitionOverlap: return "partition-overlap";
    case VKind::PartitionGap: return "partition-gap";
  }
  return "?";
}

const char* task_name(Kind k) {
  switch (k) {
    case Kind::Load: return "load";
    case Kind::Compute: return "compute";
    case Kind::Store: return "store";
  }
  return "?";
}

// The probe sentinel: an arbitrary, fixed bit pattern far outside the
// range of any real signal. An element still equal to it after a task ran
// was not written by that task.
const cplx kSentinel(-5.4861240687936887e+303, 7.2911220195563593e+303);

}  // namespace

std::string HazardViolation::str() const {
  std::ostringstream os;
  os << "[" << kind_name(kind) << "]";
  if (step >= 0) os << " step " << step;
  if (iter >= 0) os << " iter " << iter;
  if (half >= 0) os << " half " << half;
  if (tid >= 0) os << " tid " << tid;
  os << ": " << detail;
  return os.str();
}

std::string HazardReport::str() const {
  std::ostringstream os;
  if (clean()) {
    os << "hazard report: clean (" << events << " events, " << iterations
       << " iterations)";
    return os.str();
  }
  os << "hazard report: " << violations.size() << " violation(s) over "
     << events << " events, " << iterations << " iterations";
  for (const auto& v : violations) os << "\n  " << v.str();
  return os.str();
}

HazardReport audit_schedule(const Trace& trace, idx_t iterations,
                            const RolePlan& roles) {
  HazardReport rep;
  rep.iterations = iterations;
  rep.events = trace.size();
  BWFFT_CHECK(iterations >= 1, "schedule audit needs >= 1 iteration");
  BWFFT_CHECK(roles.total >= 1, "schedule audit needs a role plan");

  auto add = [&rep](VKind k, idx_t step, idx_t iter, int half, int tid,
                    std::string detail) {
    rep.violations.push_back({k, step, iter, half, tid, std::move(detail)});
  };

  const bool table2 = roles.data > 0;  // overlap schedule vs sequential
  const idx_t nsteps = table2 ? iterations + 2 : iterations;

  // counts[tid][step * 3 + kind]; first/last trace index of each data
  // thread's store/load per step for the S4 ordering check.
  const auto nslots = static_cast<std::size_t>(nsteps) * 3;
  std::vector<std::vector<int>> counts(
      static_cast<std::size_t>(roles.total), std::vector<int>(nslots, 0));
  struct StepOrder {
    long store = -1;
    long load = -1;
  };
  std::vector<std::vector<StepOrder>> order(
      static_cast<std::size_t>(roles.total),
      std::vector<StepOrder>(static_cast<std::size_t>(nsteps)));

  for (std::size_t idx = 0; idx < trace.size(); ++idx) {
    const auto& ev = trace[idx];
    if (ev.tid < 0 || ev.tid >= roles.total) {
      add(VKind::RoleMismatch, ev.step, ev.iter, ev.half, ev.tid,
          "thread id outside the team");
      continue;
    }
    const bool is_compute = roles.is_compute(ev.tid);
    bool in_window = false;
    if (table2) {
      switch (ev.kind) {
        case Kind::Load:
          if (is_compute) {
            add(VKind::RoleMismatch, ev.step, ev.iter, ev.half, ev.tid,
                "load executed by a compute thread");
          }
          in_window = ev.step >= 0 && ev.step < iterations;
          if (!in_window || ev.step != ev.iter) {
            add(VKind::WrongStep, ev.step, ev.iter, ev.half, ev.tid,
                "load(i) must run at step i, steps [0, iters)");
          }
          break;
        case Kind::Store:
          if (is_compute) {
            add(VKind::RoleMismatch, ev.step, ev.iter, ev.half, ev.tid,
                "store executed by a compute thread");
          }
          in_window = ev.step >= 2 && ev.step < iterations + 2;
          if (!in_window || ev.step != ev.iter + 2) {
            add(VKind::WrongStep, ev.step, ev.iter, ev.half, ev.tid,
                "store(i) must run at step i+2, steps [2, iters+2)");
          }
          break;
        case Kind::Compute:
          if (!is_compute) {
            add(VKind::RoleMismatch, ev.step, ev.iter, ev.half, ev.tid,
                "compute executed by a data thread");
          }
          in_window = ev.step >= 1 && ev.step <= iterations;
          if (!in_window || ev.step != ev.iter + 1) {
            add(VKind::WrongStep, ev.step, ev.iter, ev.half, ev.tid,
                "compute(i) must run at step i+1, steps [1, iters]");
          }
          break;
      }
    } else {
      in_window = ev.step >= 0 && ev.step < iterations;
      if (!in_window || ev.step != ev.iter) {
        add(VKind::WrongStep, ev.step, ev.iter, ev.half, ev.tid,
            "sequential schedule runs every task of iteration i at step i");
      }
    }
    // All tasks of iteration i touch half i mod 2 — for compute that is
    // automatically the half opposite to the one loaded/stored that step.
    if (ev.half != static_cast<int>(ev.iter % 2)) {
      add(VKind::WrongHalf, ev.step, ev.iter, ev.half, ev.tid,
          std::string(task_name(ev.kind)) + "(i) must use half i mod 2");
    }
    if (ev.step >= 0 && ev.step < nsteps) {
      const auto tid = static_cast<std::size_t>(ev.tid);
      const auto su = static_cast<std::size_t>(ev.step);
      ++counts[tid][su * 3 + static_cast<std::size_t>(ev.kind)];
      if (!is_compute || !table2) {
        if (ev.kind == Kind::Store && order[tid][su].store < 0) {
          order[tid][su].store = static_cast<long>(idx);
        }
        if (ev.kind == Kind::Load && order[tid][su].load < 0) {
          order[tid][su].load = static_cast<long>(idx);
        }
      }
    }
  }

  // S3 cross-check from the raw halves: a compute event sharing a step AND
  // a half with any load/store is the exact overlap bug the double buffer
  // exists to prevent, so it gets its own violation kind on top of any
  // wrong-step/wrong-half diagnostics above.
  if (table2) {
    std::vector<int> data_half_mask(static_cast<std::size_t>(nsteps), 0);
    for (const auto& ev : trace) {
      if (ev.kind != Kind::Compute && ev.step >= 0 && ev.step < nsteps &&
          (ev.half == 0 || ev.half == 1)) {
        data_half_mask[static_cast<std::size_t>(ev.step)] |= 1 << ev.half;
      }
    }
    for (const auto& ev : trace) {
      if (ev.kind == Kind::Compute && ev.step >= 0 && ev.step < nsteps &&
          (ev.half == 0 || ev.half == 1) &&
          (data_half_mask[static_cast<std::size_t>(ev.step)] &
           (1 << ev.half)) != 0) {
        add(VKind::ComputeOverlap, ev.step, ev.iter, ev.half, ev.tid,
            "compute ran on a half being loaded/stored at the same step");
      }
    }
  }

  // S5: every expected slot exactly once; S4: store before load per step.
  auto scan_slot = [&](int tid, idx_t step, Kind kind) {
    const int n = counts[static_cast<std::size_t>(tid)]
                        [static_cast<std::size_t>(step) * 3 +
                         static_cast<std::size_t>(kind)];
    if (n == 0) {
      add(VKind::MissingTask, step, -1, -1, tid,
          std::string("expected ") + task_name(kind) + " did not run");
    } else if (n > 1) {
      add(VKind::DuplicateTask, step, -1, -1, tid,
          std::string(task_name(kind)) + " ran " + std::to_string(n) +
              " times in one step");
    }
  };
  for (int tid = 0; tid < roles.total; ++tid) {
    if (!table2) {
      for (idx_t s = 0; s < iterations; ++s) {
        scan_slot(tid, s, Kind::Load);
        scan_slot(tid, s, Kind::Compute);
        scan_slot(tid, s, Kind::Store);
      }
      continue;
    }
    if (roles.is_compute(tid)) {
      for (idx_t s = 1; s <= iterations; ++s) scan_slot(tid, s, Kind::Compute);
    } else {
      for (idx_t s = 0; s < iterations; ++s) scan_slot(tid, s, Kind::Load);
      for (idx_t s = 2; s < iterations + 2; ++s) scan_slot(tid, s, Kind::Store);
      for (idx_t s = 2; s < iterations; ++s) {
        const auto& o = order[static_cast<std::size_t>(tid)]
                             [static_cast<std::size_t>(s)];
        if (o.store >= 0 && o.load >= 0 && o.load < o.store) {
          add(VKind::StoreLoadOrder, s, s, static_cast<int>(s % 2), tid,
              "load(" + std::to_string(s) + ") ran before store(" +
                  std::to_string(s - 2) + ") retired the half");
        }
      }
    }
  }
  return rep;
}

PartitionMap probe_partition(
    const std::function<void(idx_t, cplx*, int, int)>& task, idx_t iter,
    idx_t block_elems, int parts) {
  BWFFT_CHECK(task != nullptr, "cannot probe an empty task");
  BWFFT_CHECK(block_elems >= 1, "probe needs a non-empty block");
  BWFFT_CHECK(parts >= 1, "probe needs >= 1 partition");

  PartitionMap map;
  map.block_elems = block_elems;
  map.parts = parts;
  map.writers.resize(static_cast<std::size_t>(block_elems));

  AlignedBuffer<cplx> buf(static_cast<std::size_t>(block_elems));
  for (int rank = 0; rank < parts; ++rank) {
    for (idx_t e = 0; e < block_elems; ++e) buf.data()[e] = kSentinel;
    task(iter, buf.data(), rank, parts);
    for (idx_t e = 0; e < block_elems; ++e) {
      if (buf.data()[e] != kSentinel) {
        map.writers[static_cast<std::size_t>(e)].push_back(rank);
      }
    }
  }
  return map;
}

void audit_partition(const PartitionMap& map, bool require_cover,
                     const std::string& task_name, HazardReport& out) {
  // Classify every element, then collapse maximal runs with an identical
  // defect (and identical writer set) into single violations.
  auto classify = [&](idx_t e) -> int {
    const std::size_t n = map.writers[static_cast<std::size_t>(e)].size();
    if (n > 1) return 2;
    if (n == 0 && require_cover) return 1;
    return 0;
  };
  idx_t e = 0;
  while (e < map.block_elems) {
    const int cls = classify(e);
    if (cls == 0) {
      ++e;
      continue;
    }
    const auto& ws = map.writers[static_cast<std::size_t>(e)];
    idx_t end = e + 1;
    while (end < map.block_elems && classify(end) == cls &&
           map.writers[static_cast<std::size_t>(end)] == ws) {
      ++end;
    }
    std::ostringstream os;
    os << task_name << " elements [" << e << ", " << end << ") of block "
       << map.block_elems << " (" << map.parts << " partitions): ";
    if (cls == 2) {
      os << "written by ranks {";
      for (std::size_t i = 0; i < ws.size(); ++i) os << (i ? "," : "") << ws[i];
      os << "}";
      out.violations.push_back(
          {HazardViolation::Kind::PartitionOverlap, -1, -1, -1, -1, os.str()});
    } else {
      os << "written by no rank";
      out.violations.push_back(
          {HazardViolation::Kind::PartitionGap, -1, -1, -1, -1, os.str()});
    }
    e = end;
  }
}

HazardChecker::HazardChecker(DoubleBufferPipeline& pipe)
    : HazardChecker(pipe, Options()) {}

HazardChecker::HazardChecker(DoubleBufferPipeline& pipe, Options opts)
    : pipe_(pipe), opts_(opts) {}

HazardReport HazardChecker::check(const PipelineStage& stage) {
  Trace trace;
  pipe_.set_trace(&trace);
  try {
    pipe_.execute(stage);
  } catch (...) {
    pipe_.set_trace(nullptr);
    throw;
  }
  pipe_.set_trace(nullptr);

  HazardReport rep = audit_schedule(trace, stage.iterations, pipe_.roles());
  if (opts_.probe_partitions) {
    const RolePlan& roles = pipe_.roles();
    const int data_parts = roles.data > 0 ? roles.data : roles.compute;
    if (stage.load) {
      audit_partition(probe_partition(stage.load, opts_.probe_iter,
                                      pipe_.block_elems(), data_parts),
                      opts_.require_cover, "load", rep);
    }
    if (stage.compute) {
      audit_partition(probe_partition(stage.compute, opts_.probe_iter,
                                      pipe_.block_elems(), roles.compute),
                      opts_.require_cover, "compute", rep);
    }
  }
  return rep;
}

void HazardChecker::run_checked(const PipelineStage& stage) {
  const HazardReport rep = check(stage);
  BWFFT_CHECK(rep.clean(), "pipeline hazards detected:\n" + rep.str());
}

bool self_check_enabled() {
  static const bool on = [] {
    const char* e = std::getenv("BWFFT_SELF_CHECK");
#ifdef BWFFT_CHECKED
    return !(e != nullptr && e[0] == '0');
#else
    return e != nullptr && e[0] == '1';
#endif
  }();
  return on;
}

}  // namespace bwfft::analysis
