// Pipeline hazard checker — checked-build validation of the Table II
// software-pipeline schedule.
//
// The double-buffer pipeline is racy by design: data threads stream one
// buffer half while compute threads transform the other, synchronised only
// by the team spin barrier. A scheduling or partitioning bug here corrupts
// results silently — it does not crash. This module proves, after the
// fact, that an execution obeyed the invariants the design depends on:
//
//   Schedule (from the TraceEvent stream of one execute() call):
//     S1  load(i) happens at step i on half i mod 2, steps 0..iters-1;
//     S2  store(i) happens at step i+2 on half i mod 2, steps 2..iters+1;
//     S3  compute(i) happens at step i+1 on half i mod 2 — which is the
//         OTHER half from the one being loaded/stored at that step;
//     S4  on every data thread, store(i-2) precedes load(i) within a step
//         (the store must retire the half before it is refilled);
//     S5  prologue/steady/epilogue counts match: every data thread emits
//         exactly one load per step in [0, iters) and one store per step in
//         [2, iters+2); every compute thread exactly one compute per step
//         in [1, iters]; nothing else.
//
//   Partitioning (from a shadow access map): the (rank, parts) partitions
//     of a task are pairwise disjoint and, together, cover the whole block.
//     Each rank's write-set is discovered by probing the task callback
//     sequentially against a sentinel-poisoned buffer, so no cooperation
//     from the stage implementation is needed.
//
// Violations carry (step, iteration, half, thread) context and render into
// a human-readable report; HazardChecker::run_checked turns a dirty report
// into a bwfft::Error via BWFFT_CHECK.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "parallel/roles.h"
#include "pipeline/pipeline.h"

namespace bwfft::analysis {

using Trace = std::vector<DoubleBufferPipeline::TraceEvent>;

struct HazardViolation {
  enum class Kind {
    RoleMismatch,      ///< task kind executed by a thread of the wrong role
    WrongStep,         ///< task at a step inconsistent with its iteration
    WrongHalf,         ///< task touched the wrong buffer half
    ComputeOverlap,    ///< compute on a half being loaded/stored that step
    StoreLoadOrder,    ///< load(i) ran before store(i-2) released the half
    MissingTask,       ///< schedule slot with no recorded task
    DuplicateTask,     ///< schedule slot executed more than once
    PartitionOverlap,  ///< two ranks wrote the same block element
    PartitionGap,      ///< no rank wrote a block element
  };

  Kind kind;
  idx_t step = -1;  ///< pipeline step (-1 when not applicable)
  idx_t iter = -1;  ///< block iteration (-1 when not applicable)
  int half = -1;    ///< buffer half (-1 when not applicable)
  int tid = -1;     ///< team thread id (-1 when not applicable)
  std::string detail;

  std::string str() const;
};

struct HazardReport {
  idx_t iterations = 0;
  std::size_t events = 0;  ///< trace events inspected
  std::vector<HazardViolation> violations;

  bool clean() const { return violations.empty(); }
  /// Multi-line rendering: one header plus one line per violation.
  std::string str() const;
};

/// Validate the schedule invariants S1–S5 against a recorded trace.
/// With data threads in the role plan the Table II overlap schedule is
/// expected; with roles.data == 0 the degraded sequential schedule
/// (load/compute/store per step, all threads) is expected instead.
HazardReport audit_schedule(const Trace& trace, idx_t iterations,
                            const RolePlan& roles);

/// Shadow access map of one pipeline task: writers[e] lists the ranks that
/// wrote block element e during the sequential per-rank probe.
struct PartitionMap {
  idx_t block_elems = 0;
  int parts = 0;
  std::vector<std::vector<int>> writers;
};

/// Discover each rank's write-set by running `task(iter, buf, rank, parts)`
/// once per rank against a buffer poisoned with a sentinel value; elements
/// that no longer hold the sentinel afterwards belong to that rank. (A
/// task that writes the exact sentinel bit pattern would go unnoticed; the
/// sentinel is chosen to make that astronomically unlikely for real data.)
PartitionMap probe_partition(
    const std::function<void(idx_t, cplx*, int, int)>& task, idx_t iter,
    idx_t block_elems, int parts);

/// Append PartitionOverlap/PartitionGap violations for `map` to `out`.
/// Contiguous runs of elements with the same defect collapse into one
/// violation. `require_cover` enables the gap check (disable for tasks
/// that legitimately touch a sub-range, e.g. a tail iteration).
void audit_partition(const PartitionMap& map, bool require_cover,
                     const std::string& task_name, HazardReport& out);

/// Convenience wrapper: executes stages on a pipeline with tracing on and
/// audits both the schedule and the load/compute partitions afterwards.
class HazardChecker {
 public:
  struct Options {
    bool probe_partitions = true;  ///< sentinel-probe load and compute
    idx_t probe_iter = 0;          ///< iteration to probe (0 = a full block)
    bool require_cover = true;     ///< partitions must cover the block
  };

  explicit HazardChecker(DoubleBufferPipeline& pipe);
  HazardChecker(DoubleBufferPipeline& pipe, Options opts);

  /// Run `stage` through pipe.execute() with tracing enabled, then audit.
  /// The stage's data is processed exactly once, as in a bare execute().
  HazardReport check(const PipelineStage& stage);

  /// check(), then throw bwfft::Error carrying the report if it is dirty.
  void run_checked(const PipelineStage& stage);

 private:
  DoubleBufferPipeline& pipe_;
  Options opts_;
};

/// True when pipeline/engine self-checks should run: always in
/// BWFFT_CHECKED builds unless BWFFT_SELF_CHECK=0, and in release builds
/// when BWFFT_SELF_CHECK=1 is exported. Cached after the first call.
bool self_check_enabled();

}  // namespace bwfft::analysis
