// Symbolic plan verifier — proves schedule and layout invariants over a
// planned configuration WITHOUT executing it.
//
// The PR-1 hazard checker (hazard_checker.h) is a dynamic auditor: it
// replays the trace of one real execution and probes partitions with
// sentinel values, so it only covers the (dims, threads, block, packet)
// points that actually run. This module is the static complement. From a
// transform shape and an FftOptions configuration it derives the exact
// access pattern every engine would execute — each (iteration, rank)
// write window as a StridedInterval, each buffer half window, the
// non-temporal store placement — and proves, by interval algebra instead
// of execution:
//
//   1. per-thread store windows are pairwise disjoint and jointly cover
//      the stage output (sort + sweep over run endpoints; coverage is
//      equivalent to element-count conservation once disjointness and
//      bounds hold);
//   2. every non-temporal store region reaches a stream_fence() on the
//      storing thread before the barrier that publishes it to readers;
//   3. buffer lifetimes across double-buffer epochs never alias live
//      reads: the Load(i) buffer window of one data rank never overlaps
//      the Store(i-2) window of ANOTHER rank in the same step (the same
//      rank serialises the two by program order — Table II's S4);
//   4. element counts are conserved stage to stage.
//
// The schedule itself is verified symbolically as well: the Table II
// recurrences (load(i)@step i, compute(i-1)@step i, store(i-2)@step i,
// halves alternating) generate the one trace a correct execution can
// record, and verify_schedule_symbolic() diffs any trace against that
// expectation. make_table2_trace() emits the expected trace, which is how
// the symbolic and runtime checkers are cross-checked on identical input
// (tests/static_runtime_crosscheck_test.cpp) and how tools/bwfft_lint
// sweeps the tuner's whole candidate grid in milliseconds.
#pragma once

#include <string>
#include <vector>

#include "analysis/hazard_checker.h"
#include "common/intervals.h"
#include "common/types.h"
#include "fft/options.h"
#include "parallel/roles.h"

namespace bwfft::analysis {

/// Symbolic model of one engine stage (or pass/phase). Windows carry an
/// encoded owner = iter * parts + rank, so a violation names both the
/// iteration and the thread.
struct StageModel {
  std::string name;
  idx_t in_elems = 0;   ///< elements read from the stage input array
  idx_t out_elems = 0;  ///< elements written to the stage output array
  idx_t iterations = 1; ///< pipeline blocks (1 for single-pass stages)
  int parts = 1;        ///< ranks partitioning each iteration
  bool in_place = false;    ///< input and output are the same array
  bool nt_store = false;    ///< stores are non-temporal
  bool fence_before_publish = false;  ///< stream_fence precedes the
                                      ///< barrier that publishes stores
  bool pipelined = false;   ///< driven by the Table II overlap schedule

  std::vector<OwnedWindow> loads;   ///< read-set over the input array
  std::vector<OwnedWindow> stores;  ///< write-set over the output array

  /// Buffer-half windows (double-buffered stages only), one per data
  /// rank, owner = rank: what Load writes and what Store reads of one
  /// block. Empty for stages that do not stream through a shared buffer.
  std::vector<OwnedWindow> buf_loads;
  std::vector<OwnedWindow> buf_stores;
  idx_t buf_elems = 0;  ///< elements of one buffer half used per block
};

/// Symbolic model of a whole planned transform.
struct PlanModel {
  std::string engine;        ///< engine label, e.g. "double-buffer"
  std::vector<idx_t> dims;
  idx_t total = 0;
  int threads = 0;           ///< team size p
  int compute_threads = 0;   ///< resolved p_c
  int data_threads = 0;      ///< resolved p_d
  std::vector<StageModel> stages;

  std::string label() const;
};

struct StaticIssue {
  enum class Kind {
    PartitionOverlap,  ///< two (iter, rank) windows write the same element
    PartitionGap,      ///< an output element no window writes
    OutOfBounds,       ///< a window escapes the stage array
    NotConservative,   ///< stage element counts do not balance
    MissingFence,      ///< NT stores published by a barrier with no fence
    EpochAlias,        ///< a Load window aliases another rank's pending
                       ///< Store window in the shared buffer
    BadModel,          ///< the configuration cannot be modelled
  };

  Kind kind;
  std::string stage;   ///< StageModel::name ("" for plan-level issues)
  std::string detail;

  std::string str() const;
};

struct StaticReport {
  std::string plan;        ///< PlanModel::label() of the verified plan
  std::size_t checks = 0;  ///< individual proofs attempted
  std::vector<StaticIssue> issues;

  bool ok() const { return issues.empty(); }
  std::string str() const;
};

/// Derive the symbolic model the given engine would execute for (dims,
/// opts). opts.engine must be concrete (not Auto/Reference). Returns
/// false with a reason in *why when the engine cannot run this shape at
/// all (e.g. Pencil on non-power-of-two dims, SlabPencil in 2D, a packet
/// size that does not divide the fast dimension) — callers treat that as
/// a skipped configuration, not a failure.
bool build_plan_model(const std::vector<idx_t>& dims, const FftOptions& opts,
                      PlanModel* out, std::string* why);

/// Prove invariants 1–4 over a model. Pure; never executes anything.
StaticReport verify_plan(const PlanModel& model);

/// The trace a correct execution of the Table II schedule (or, with
/// roles.data == 0, the degraded sequential schedule) must record for
/// `iterations` blocks. Event order matches per-thread program order.
Trace make_table2_trace(idx_t iterations, const RolePlan& roles);

/// Verify a trace against the schedule recurrences, independently of
/// audit_schedule(): every event must sit in its unique expected
/// (step, half, tid) slot, every slot must be filled exactly once, and
/// each data thread must retire Store(i-2) before Load(i) within a step.
/// Returns the same HazardReport shape as the runtime checker so the two
/// can be diffed directly.
HazardReport verify_schedule_symbolic(const Trace& trace, idx_t iterations,
                                      const RolePlan& roles);

}  // namespace bwfft::analysis
