#include "fft/pencil.h"

#include <cstring>

#include "common/error.h"
#include "kernels/twiddle.h"
#include "obs/obs.h"
#include "parallel/team_pool.h"

namespace bwfft {

PencilEngine::PencilEngine(std::vector<idx_t> dims, Direction dir,
                           const FftOptions& opts)
    : dims_(std::move(dims)), dir_(dir), opts_(opts) {
  BWFFT_CHECK(dims_.size() == 2 || dims_.size() == 3,
              "pencil engine supports 2D and 3D");
  for (idx_t d : dims_) {
    BWFFT_CHECK(is_pow2(d), "pencil engine requires power-of-two sizes");
    total_ *= d;
    ffts_.push_back(std::make_shared<Fft1d>(d, dir_, opts_.isa));
  }
  const int p = opts_.threads > 0 ? opts_.threads : opts_.topo.total_threads();
  team_ = parallel::make_team(p, {}, opts_.team_pool);
}

void PencilEngine::execute(cplx* in, cplx* out) {
  BWFFT_CHECK(in != out, "engines are out of place");
  std::memcpy(out, in, static_cast<std::size_t>(total_) * sizeof(cplx));

  // Each pass reads and writes the whole array in place once.
  [[maybe_unused]] const std::uint64_t pass_bytes =
      static_cast<std::uint64_t>(total_) * sizeof(cplx);
  if (dims_.size() == 2) {
    const idx_t n = dims_[0], m = dims_[1];
    {
      // x: n contiguous rows of length m.
      BWFFT_OBS_SCOPE(obs_stage, "x-pass", 'G', n);
      BWFFT_OBS_COUNT(BytesLoaded, pass_bytes);
      BWFFT_OBS_COUNT(BytesStored, pass_bytes);
      parallel_for_chunks(*team_, n, [&](int, idx_t b, idx_t e) {
        ffts_[1]->apply_batch(out + b * m, e - b);
      });
    }
    {
      // y: m pencils of length n at stride m.
      BWFFT_OBS_SCOPE(obs_stage, "y-pass", 'G', m);
      BWFFT_OBS_COUNT(BytesLoaded, pass_bytes);
      BWFFT_OBS_COUNT(BytesStored, pass_bytes);
      parallel_for_chunks(*team_, m, [&](int, idx_t b, idx_t e) {
        for (idx_t c = b; c < e; ++c)
          ffts_[0]->apply_strided_inplace(out + c, m);
      });
    }
  } else {
    const idx_t k = dims_[0], n = dims_[1], m = dims_[2];
    {
      // x: k*n contiguous rows.
      BWFFT_OBS_SCOPE(obs_stage, "x-pass", 'G', k * n);
      BWFFT_OBS_COUNT(BytesLoaded, pass_bytes);
      BWFFT_OBS_COUNT(BytesStored, pass_bytes);
      parallel_for_chunks(*team_, k * n, [&](int, idx_t b, idx_t e) {
        ffts_[2]->apply_batch(out + b * m, e - b);
      });
    }
    {
      // y: for each (z, x), a pencil of length n at stride m.
      BWFFT_OBS_SCOPE(obs_stage, "y-pass", 'G', k * m);
      BWFFT_OBS_COUNT(BytesLoaded, pass_bytes);
      BWFFT_OBS_COUNT(BytesStored, pass_bytes);
      parallel_for_chunks(*team_, k * m, [&](int, idx_t b, idx_t e) {
        for (idx_t i = b; i < e; ++i) {
          const idx_t z = i / m, x = i % m;
          ffts_[1]->apply_strided_inplace(out + z * n * m + x, m);
        }
      });
    }
    {
      // z: for each (y, x), a pencil of length k at stride n*m.
      BWFFT_OBS_SCOPE(obs_stage, "z-pass", 'G', n * m);
      BWFFT_OBS_COUNT(BytesLoaded, pass_bytes);
      BWFFT_OBS_COUNT(BytesStored, pass_bytes);
      parallel_for_chunks(*team_, n * m, [&](int, idx_t b, idx_t e) {
        for (idx_t i = b; i < e; ++i) {
          ffts_[0]->apply_strided_inplace(out + i, n * m);
        }
      });
    }
  }

  if (dir_ == Direction::Inverse && opts_.normalize_inverse) {
    const double s = 1.0 / static_cast<double>(total_);
    parallel_for_chunks(*team_, total_, [&](int, idx_t b, idx_t e) {
      for (idx_t i = b; i < e; ++i) out[i] *= s;
    });
  }
}

}  // namespace bwfft
