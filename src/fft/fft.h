// bwfft public API — bandwidth-efficient large multidimensional FFTs.
//
// Reproduction of Popovici, Low, Franchetti, "Large Bandwidth-Efficient
// FFTs on Multicore and Multi-Socket Systems" (IPDPS 2018).
//
// Quickstart:
//
//   #include "fft/fft.h"
//   bwfft::Fft3d plan(256, 256, 256, bwfft::Direction::Forward, {});
//   plan.execute(input.data(), output.data());   // input is clobbered
//
// Plans are created once (twiddles, thread team, cache-resident buffer)
// and executed many times. All engines are out of place and may use the
// input array as scratch (FFTW_DESTROY_INPUT semantics). Select an
// algorithm via FftOptions::engine; the default is the paper's
// double-buffered soft-DMA algorithm.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/error.h"
#include "common/types.h"
#include "fft/engine.h"
#include "fft/options.h"

namespace bwfft {

/// What a try_execute call did to produce (or fail to produce) a result:
/// the final status, how many times the recovery policy re-planned, and
/// which degraded configuration the plan ended up on. Degradations are
/// sticky — once a plan has fallen back (fewer threads, plain memory,
/// reference engine) it stays there for subsequent calls.
struct ExecReport {
  Status status;
  int retries = 0;       ///< recovery re-plans taken by this call
  int threads_used = 0;  ///< thread budget of the plan that ran last
  std::string engine;    ///< engine that produced the result (or last tried)
  std::vector<std::string> degradations;  ///< fallbacks taken, one line each
};

/// Engine construction with the recovery policy of docs/INTERNALS.md §10:
/// recoverable construction failures (spawn failure, placed-alloc
/// exhaustion) degrade `opts` in place — halved thread budget, then the
/// reference engine — and retry instead of failing the plan. kBadPlan
/// still throws: the request itself is invalid.
std::unique_ptr<MdEngine> make_engine_recovering(const std::vector<idx_t>& dims,
                                                 Direction dir,
                                                 FftOptions& opts);

/// The shared no-throw execute-with-recovery body behind
/// Fft2d/Fft3d::try_execute and tune::CachedPlan::try_execute: attempts
/// `engine` (building it from `opts` if null); on failure classifies the
/// error, degrades `opts` in place (sticky for later calls), rebuilds and
/// retries with backoff, bounded. Returns the status of the last attempt;
/// `rep` (optional) receives retries/threads/engine/degradations.
Status try_execute_recovering(const std::vector<idx_t>& dims, Direction dir,
                              FftOptions& opts,
                              std::unique_ptr<MdEngine>& engine, cplx* in,
                              cplx* out, ExecReport* rep = nullptr);

/// 2D complex transform of an n x m row-major array.
class Fft2d {
 public:
  Fft2d(idx_t n, idx_t m, Direction dir, FftOptions opts = {});
  ~Fft2d();
  Fft2d(Fft2d&&) noexcept;
  Fft2d& operator=(Fft2d&&) noexcept;

  /// Transform `in` into `out` (both n*m elements, in != out). `in` may be
  /// overwritten.
  void execute(cplx* in, cplx* out);

  /// No-throw execute with recovery: on a stalled or lost worker the plan
  /// is rebuilt with half the thread budget and retried (bounded, with
  /// backoff); on allocation failure it falls back to the reference
  /// engine. Returns the status of the last attempt; `rep` (optional)
  /// receives the retry count and degradations taken.
  Status try_execute(cplx* in, cplx* out, ExecReport* rep = nullptr);

  /// In-place convenience: transforms `data` through an internal work
  /// array (allocated lazily on first use and kept for reuse).
  void execute_inplace(cplx* data);

  idx_t rows() const { return n_; }
  idx_t cols() const { return m_; }
  idx_t size() const { return n_ * m_; }
  const char* engine_name() const;

 private:
  idx_t n_, m_;
  Direction dir_;
  FftOptions opts_;  // mutated as recovery degrades the plan
  std::unique_ptr<MdEngine> engine_;
  bool nontemporal_ = true;  // copy-back path of execute_inplace
  cvec inplace_work_;
};

/// 3D complex transform of a k x n x m row-major cube (k slowest).
class Fft3d {
 public:
  Fft3d(idx_t k, idx_t n, idx_t m, Direction dir, FftOptions opts = {});
  ~Fft3d();
  Fft3d(Fft3d&&) noexcept;
  Fft3d& operator=(Fft3d&&) noexcept;

  /// Transform `in` into `out` (both k*n*m elements, in != out). `in` may
  /// be overwritten.
  void execute(cplx* in, cplx* out);

  /// No-throw execute with recovery — see Fft2d::try_execute.
  Status try_execute(cplx* in, cplx* out, ExecReport* rep = nullptr);

  /// In-place convenience: transforms `data` through an internal work
  /// array (allocated lazily on first use and kept for reuse).
  void execute_inplace(cplx* data);

  idx_t dim0() const { return k_; }
  idx_t dim1() const { return n_; }
  idx_t dim2() const { return m_; }
  idx_t size() const { return k_ * n_ * m_; }
  const char* engine_name() const;

 private:
  idx_t k_, n_, m_;
  Direction dir_;
  FftOptions opts_;  // mutated as recovery degrades the plan
  std::unique_ptr<MdEngine> engine_;
  bool nontemporal_ = true;  // copy-back path of execute_inplace
  cvec inplace_work_;
};

}  // namespace bwfft
