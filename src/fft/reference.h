// Reference multidimensional DFT — the library's ground truth.
//
// Separable evaluation with the dense O(n^2) 1D DFT in each dimension.
// Independent of every optimised code path (no Stockham, no rotations),
// so agreement between an engine and this oracle is meaningful evidence.
// Intended for test-scale problems.
#pragma once

#include "common/aligned.h"
#include "common/types.h"

namespace bwfft {

/// y = DFT_n x (dense matrix-vector product).
void reference_dft_1d(const cplx* in, cplx* out, idx_t n, Direction dir);

/// 2D transform of an n x m row-major array.
void reference_dft_2d(const cplx* in, cplx* out, idx_t n, idx_t m,
                      Direction dir);

/// 3D transform of a k x n x m row-major cube.
void reference_dft_3d(const cplx* in, cplx* out, idx_t k, idx_t n, idx_t m,
                      Direction dir);

}  // namespace bwfft
