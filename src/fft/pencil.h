// Naive pencil-decomposition engine (the lower baseline).
//
// Every dimension is transformed in place at its natural stride
// (§II-D): unit stride for x, stride m for y, stride n*m for z. No
// transposes, no buffering — each non-unit-stride stage walks main memory
// one cacheline per element, which is exactly the bandwidth-wasting
// behaviour the paper sets out to fix. Parallelised over pencils.
#pragma once

#include <memory>
#include <vector>

#include "fft/engine.h"
#include "fft1d/fft1d.h"
#include "parallel/team.h"

namespace bwfft {

class PencilEngine final : public MdEngine {
 public:
  PencilEngine(std::vector<idx_t> dims, Direction dir, const FftOptions& opts);
  void execute(cplx* in, cplx* out) override;
  const char* name() const override { return "pencil"; }

 private:
  std::vector<idx_t> dims_;
  Direction dir_;
  FftOptions opts_;
  std::vector<std::shared_ptr<Fft1d>> ffts_;  // one per dimension
  std::shared_ptr<ThreadTeam> team_;  // pooled or private (FftOptions::team_pool)
  idx_t total_ = 1;
};

}  // namespace bwfft
