#include "fft/slab_pencil.h"

#include <cstring>

#include "common/error.h"
#include "layout/rotate.h"
#include "obs/obs.h"
#include "parallel/team_pool.h"

namespace bwfft {

SlabPencilEngine::SlabPencilEngine(std::vector<idx_t> dims, Direction dir,
                                   const FftOptions& opts)
    : dims_(std::move(dims)), dir_(dir), opts_(opts) {
  BWFFT_CHECK(dims_.size() == 3, "slab-pencil engine is 3D only");
  const idx_t k = dims_[0], n = dims_[1], m = dims_[2];
  total_ = k * n * m;
  const idx_t mu = packet_size_for(m);
  slab_stages_ = make_2d_stages(n, m, mu);
  fft_m_ = std::make_shared<Fft1d>(m, dir_, opts_.isa);
  fft_n_ = std::make_shared<Fft1d>(n, dir_, opts_.isa);
  fft_k_ = std::make_shared<Fft1d>(k, dir_, opts_.isa);
  const int p = opts_.threads > 0 ? opts_.threads : opts_.topo.total_threads();
  team_ = parallel::make_team(p, {}, opts_.team_pool);
  slab_work_.reserve(static_cast<std::size_t>(p));
  for (int t = 0; t < p; ++t) {
    slab_work_.emplace_back(static_cast<std::size_t>(n * m),
                            AllocPlacement::HugePage);
  }
}

void SlabPencilEngine::execute(cplx* in, cplx* out) {
  BWFFT_CHECK(in != out, "engines are out of place");
  const idx_t k = dims_[0], n = dims_[1], m = dims_[2];
  const idx_t slab = n * m;

  [[maybe_unused]] const std::uint64_t vol_bytes =
      static_cast<std::uint64_t>(total_) * sizeof(cplx);

  // Phase 1: 2D FFT per z-slab. Stage A transforms rows and rotates into
  // the per-thread scratch; stage B transforms the rotated pencils and
  // rotates back into the output slab in natural order.
  {
    BWFFT_OBS_SCOPE(obs_slabs, "slabs-2d", 'G', k);
    BWFFT_OBS_COUNT(BytesLoaded, vol_bytes);
    BWFFT_OBS_COUNT(BytesStored, vol_bytes);
    parallel_for_chunks(*team_, k, [&](int tid, idx_t zb, idx_t ze) {
      cplx* work = slab_work_[static_cast<std::size_t>(tid)].data();
      const auto& g0 = slab_stages_[0];
      const auto& g1 = slab_stages_[1];
      for (idx_t z = zb; z < ze; ++z) {
        cplx* src = in + z * slab;
        cplx* dst = out + z * slab;
        for (idx_t r = 0; r < g0.rows(); ++r) {
          cplx* row = src + r * g0.row_elems();
          fft_m_->apply_lanes(row, g0.lanes, 1);
          rotate_store_rows(row, work, r, 1, g0.a, g0.b, g0.cp(), g0.mu,
                            false);
        }
        for (idx_t r = 0; r < g1.rows(); ++r) {
          cplx* row = work + r * g1.row_elems();
          fft_n_->apply_lanes(row, g1.lanes, 1);
          rotate_store_rows(row, dst, r, 1, g1.a, g1.b, g1.cp(), g1.mu,
                            false);
        }
      }
    });
  }

  // Phase 2: z pencils at stride n*m, buffered through scratch in
  // mu-lane groups.
  {
    BWFFT_OBS_SCOPE(obs_pencils, "z-pencils", 'G', slab);
    BWFFT_OBS_COUNT(BytesLoaded, vol_bytes);
    BWFFT_OBS_COUNT(BytesStored, vol_bytes);
    const idx_t mu = packet_size_for(m);
    parallel_for_chunks(*team_, slab / mu, [&](int, idx_t b, idx_t e) {
      for (idx_t t = b; t < e; ++t) {
        fft_k_->apply_lanes_strided(out + t * mu, mu, slab);
      }
    });
  }

  if (dir_ == Direction::Inverse && opts_.normalize_inverse) {
    const double s = 1.0 / static_cast<double>(total_);
    parallel_for_chunks(*team_, total_, [&](int, idx_t bb, idx_t ee) {
      for (idx_t i = bb; i < ee; ++i) out[i] *= s;
    });
  }
}

}  // namespace bwfft
