// Plan options shared by all multidimensional FFT engines.
#pragma once

#include <string>

#include "common/topology.h"
#include "common/types.h"
#include "kernels/isa.h"

namespace bwfft {

/// Which algorithm executes the transform.
enum class EngineKind {
  /// O(n^2)-per-dimension reference oracle; exact but slow.
  Reference,
  /// Naive pencil decomposition: every dimension transformed in place at
  /// its natural stride. The worst-case memory behaviour the paper opens
  /// with (§II-D).
  Pencil,
  /// Transpose-based row–column algorithm: per stage, unit-stride batch
  /// FFTs then a full-array blocked rotation, all threads on each phase,
  /// no overlap. Stand-in for the MKL/FFTW large-size strategy.
  StageParallel,
  /// Slab–pencil decomposition (3D only): per-slab 2D FFT then z pencils;
  /// the strategy FFTW picks on the paper's AMD machines (§V).
  SlabPencil,
  /// The paper's contribution: tiled stages double-buffered in the LLC
  /// with dedicated soft-DMA data threads overlapping loads/rotated
  /// stores with the batch FFT compute (§III).
  DoubleBuffer,
  /// Let the src/tune planner pick the engine and knobs: wisdom lookup
  /// first, then the cost model / measurement selected by
  /// FftOptions::tune_level. FFTW itself switches strategies per machine
  /// (§V: slab-pencil on the AMD boxes), so the engine is a tunable too.
  Auto,
};

const char* engine_name(EngineKind k);

/// How hard the planner works when engine == EngineKind::Auto
/// (FFTW's ESTIMATE/MEASURE/EXHAUSTIVE ladder).
enum class TuneLevel {
  /// Rank candidates with the bandwidth cost model only; never executes.
  Estimate,
  /// Time the top-K model-ranked candidates (plus the default
  /// double-buffer config) on warm-up executes; pick the fastest.
  Measure,
  /// Time every candidate in the grid.
  Exhaustive,
};

const char* tune_level_name(TuneLevel level);

/// Parse an engine name — the canonical engine_name() spellings plus the
/// CLI aliases (dbuf, stagepar, slab, auto). False on unknown names.
bool engine_kind_from_name(const std::string& name, EngineKind* out);

/// Parse a tune level name ("estimate" / "measure" / "exhaustive").
bool tune_level_from_name(const std::string& name, TuneLevel* out);

struct FftOptions {
  EngineKind engine = EngineKind::DoubleBuffer;

  /// Machine model: sizes the shared buffer, the thread team and the CPU
  /// pinning. Defaults to the host.
  MachineTopology topo = host_topology();

  /// Team size p; 0 = topo.total_threads().
  int threads = 0;

  /// Compute threads p_c (rest are data threads); -1 = even split (the
  /// paper's default).
  int compute_threads = -1;

  /// Per-half pipeline block b in complex elements; 0 = the LLC/2 policy.
  idx_t block_elems = 0;

  /// Use non-temporal stores in the W matrices (§IV-A). The ablation
  /// bench flips this off.
  bool nontemporal = true;

  /// Rotation packet size mu in complex elements; 0 = auto (one cacheline,
  /// i.e. 4 complex doubles, when it divides the fast dimension). Setting
  /// 1 forces the element-wise rotation of the unblocked formulas — the
  /// blocked-vs-element ablation of §III-A.
  idx_t packet_elems = 0;

  /// 1D transforms only: the n = n1*n2 four-step factorization of
  /// Fft1dLarge (fft1d/large.h). 0 = the near-square divisor policy; a
  /// positive value must divide n (kBadPlan otherwise). Tuned as a grid
  /// axis and persisted in wisdom; 2D/3D engines ignore it.
  idx_t factor_n1 = 0;

  /// Instruction-set request for the batched codelets (kernels/isa.h):
  /// Auto (the default) resolves from cpuid / the BWFFT_ISA override at
  /// dispatch time; a concrete value pins the plan's kernels, clamped to
  /// what the host can execute. The ISA ablation benches and the tuner's
  /// dispatch-aware candidate grid set this.
  kernels::Isa isa = kernels::Isa::Auto;

  /// Planner effort when engine == EngineKind::Auto (ignored otherwise).
  TuneLevel tune_level = TuneLevel::Estimate;

  /// Pin team threads to the topology's suggested CPUs.
  bool pin_threads = false;

  /// Draw the engine's thread team from the process-wide
  /// parallel::TeamPool instead of spawning a private one. Plans with the
  /// same (size, pin list) then share one persistent team — executions
  /// serialise through it rather than oversubscribing the cores, and the
  /// spawn cost is paid once per process instead of once per plan. The
  /// exec::BatchExecutor sets this on every plan it builds.
  bool team_pool = false;

  /// Scale the inverse transform by 1/N (forward is never scaled).
  bool normalize_inverse = false;
};

}  // namespace bwfft
