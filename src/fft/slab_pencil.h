// Slab–pencil engine (3D): per-slab 2D FFT, then buffered z pencils.
//
// The decomposition FFTW selects on the paper's AMD machines (§V): the
// first two dimensions are fused into a 2D FFT computed slab-by-slab (two
// round trips stay inside one n x m slab, which fits AMD's larger caches),
// and the z dimension is transformed with strided pencils buffered through
// cache-resident scratch (Frigo-style copy-before-compute, ref [11]).
// This reduces main-memory round trips from three to two but still does
// not overlap data movement with computation.
#pragma once

#include <memory>
#include <vector>

#include "common/aligned.h"
#include "fft/engine.h"
#include "fft/stage.h"
#include "fft1d/fft1d.h"
#include "parallel/team.h"

namespace bwfft {

class SlabPencilEngine final : public MdEngine {
 public:
  SlabPencilEngine(std::vector<idx_t> dims, Direction dir,
                   const FftOptions& opts);
  void execute(cplx* in, cplx* out) override;
  const char* name() const override { return "slab-pencil"; }

 private:
  std::vector<idx_t> dims_;  // [k, n, m]
  Direction dir_;
  FftOptions opts_;
  std::array<StageGeometry, 2> slab_stages_;  // 2D stages within one slab
  std::shared_ptr<Fft1d> fft_m_, fft_n_, fft_k_;
  std::shared_ptr<ThreadTeam> team_;  // pooled or private (FftOptions::team_pool)
  // One n*m scratch per thread (huge-page preferred, plain fallback).
  std::vector<AlignedBuffer<cplx>> slab_work_;
  idx_t total_ = 1;
};

}  // namespace bwfft
