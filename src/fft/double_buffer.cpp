#include "fft/double_buffer.h"

#include <cstring>

#include "analysis/hazard_checker.h"
#include "common/error.h"
#include "common/timer.h"
#include "layout/rotate.h"
#include "layout/stream_copy.h"
#include "obs/obs.h"
#include "parallel/team_pool.h"

namespace bwfft {

namespace {
[[maybe_unused]] constexpr const char* kStageNames[3] = {"stage-0", "stage-1",
                                                         "stage-2"};
}  // namespace

DoubleBufferEngine::DoubleBufferEngine(std::vector<idx_t> dims, Direction dir,
                                       const FftOptions& opts)
    : dims_(std::move(dims)), dir_(dir), opts_(opts) {
  BWFFT_CHECK(dims_.size() == 2 || dims_.size() == 3,
              "double-buffer engine supports 2D and 3D");
  for (idx_t d : dims_) total_ *= d;
  if (dims_.size() == 2) {
    const idx_t mu = resolve_packet_size(opts_.packet_elems, dims_[1]);
    auto s = make_2d_stages(dims_[0], dims_[1], mu);
    stages_.assign(s.begin(), s.end());
    work_ = AlignedBuffer<cplx>(static_cast<std::size_t>(total_),
                                AllocPlacement::HugePage);
  } else {
    const idx_t mu = resolve_packet_size(opts_.packet_elems, dims_[2]);
    auto s = make_3d_stages(dims_[0], dims_[1], dims_[2], mu);
    stages_.assign(s.begin(), s.end());
  }
  for (const auto& g : stages_) {
    ffts_.push_back(std::make_shared<Fft1d>(g.fft_len, dir_, opts_.isa));
  }

  const int p = opts_.threads > 0 ? opts_.threads : opts_.topo.total_threads();
  const int pc = opts_.compute_threads >= 0
                     ? opts_.compute_threads
                     : (p <= 1 ? p : p / 2);
  roles_ = make_role_plan(p, pc, opts_.topo);
  team_ = parallel::make_team(
      p, opts_.pin_threads ? roles_.cpu : std::vector<int>{},
      opts_.team_pool);

  // Block size: the LLC policy, but always at least one row of the widest
  // stage so every stage tiles into whole rows.
  idx_t block = opts_.block_elems > 0 ? opts_.block_elems
                                      : default_block_elems(opts_.topo);
  for (const auto& g : stages_) block = std::max(block, g.row_elems());
  pipeline_ = std::make_unique<DoubleBufferPipeline>(*team_, roles_, block);
}

void DoubleBufferEngine::run_stage(const StageGeometry& g, const Fft1d& fft,
                                   const cplx* src, cplx* dst,
                                   bool pipelined) {
  const idx_t row_elems = g.row_elems();
  const idx_t block_rows =
      rows_per_block(g.rows(), pipeline_->block_elems() / row_elems);
  const bool nt = opts_.nontemporal;

  PipelineStage stage;
  stage.iterations = g.rows() / block_rows;
  // R_{b,i}: stream block i's rows into the buffer half. The stores are
  // temporal on purpose — the compute threads read them next iteration.
  stage.load = [=](idx_t i, cplx* buf, int rank, int parts) {
    auto [r0, r1] = ThreadTeam::chunk(block_rows, parts, rank);
    if (r1 > r0) {
      std::memcpy(buf + r0 * row_elems,
                  src + (i * block_rows + r0) * row_elems,
                  static_cast<std::size_t>((r1 - r0) * row_elems) *
                      sizeof(cplx));
      BWFFT_OBS_COUNT(BytesLoaded, (r1 - r0) * row_elems * sizeof(cplx));
    }
  };
  // Compute kernel: I_{rows} (x) DFT_L (x) I_lanes, in place on the half.
  stage.compute = [=, &fft](idx_t, cplx* buf, int rank, int parts) {
    auto [r0, r1] = ThreadTeam::chunk(block_rows, parts, rank);
    if (r1 > r0) fft.apply_lanes(buf + r0 * row_elems, g.lanes, r1 - r0);
  };
  // W_{b,i}: scatter the block through the blocked rotation with
  // non-temporal stores (the data is dead until the next stage).
  stage.store = [=](idx_t i, const cplx* buf, int rank, int parts) {
    auto [r0, r1] = ThreadTeam::chunk(block_rows, parts, rank);
    if (r1 > r0) {
      rotate_store_rows(buf + r0 * row_elems, dst, i * block_rows + r0,
                        r1 - r0, g.a, g.b, g.cp(), g.mu, nt);
      BWFFT_OBS_COUNT(BytesStored, (r1 - r0) * row_elems * sizeof(cplx));
    }
  };

  Timer timer;
  BWFFT_OBS_SCOPE(obs_stage, kStageNames[stats_.size() % 3], 'G', g.rows());
  if (pipelined) {
    if (analysis::self_check_enabled()) {
      // Self-audit (checked builds, or BWFFT_SELF_CHECK=1): record the
      // schedule and validate the Table II invariants after the stage.
      analysis::Trace trace;
      pipeline_->set_trace(&trace);
      try {
        pipeline_->execute(stage);
      } catch (...) {
        pipeline_->set_trace(nullptr);
        throw;
      }
      pipeline_->set_trace(nullptr);
      const auto rep = analysis::audit_schedule(trace, stage.iterations, roles_);
      BWFFT_CHECK(rep.clean(), "pipeline schedule hazard:\n" + rep.str());
    } else {
      pipeline_->execute(stage);
    }
  } else {
    pipeline_->execute_unpipelined(stage);
  }
  stats_.push_back({timer.seconds(), stage.iterations, block_rows,
                    pipeline_->last_utilization()});
}

void DoubleBufferEngine::run_all(cplx* in, cplx* out, bool pipelined) {
  BWFFT_CHECK(in != out, "engines are out of place");
  stats_.clear();
  if (dims_.size() == 2) {
    run_stage(stages_[0], *ffts_[0], in, work_.data(), pipelined);
    run_stage(stages_[1], *ffts_[1], work_.data(), out, pipelined);
  } else {
    run_stage(stages_[0], *ffts_[0], in, out, pipelined);
    run_stage(stages_[1], *ffts_[1], out, in, pipelined);
    run_stage(stages_[2], *ffts_[2], in, out, pipelined);
  }
  if (dir_ == Direction::Inverse && opts_.normalize_inverse) {
    const double s = 1.0 / static_cast<double>(total_);
    parallel_for_chunks(*team_, total_, [&](int, idx_t b, idx_t e) {
      for (idx_t i = b; i < e; ++i) out[i] *= s;
    });
  }
}

void DoubleBufferEngine::execute(cplx* in, cplx* out) {
  run_all(in, out, /*pipelined=*/true);
}

void DoubleBufferEngine::execute_unpipelined(cplx* in, cplx* out) {
  run_all(in, out, /*pipelined=*/false);
}

}  // namespace bwfft
