// Stage geometry shared by the rotated-stage engines.
//
// Every stage of the paper's 2D/3D decomposition (§III-A) has the same
// shape: the current array is a grid of `a*b` rows, each row holding one
// batch of `lanes`-wide pencils of length `fft_len` contiguously
// (row_elems = fft_len*lanes = cp mu-packets), and after the in-place
// batch FFT the rows are scattered through the blocked rotation
// K_{cp}^{a,b} (x) I_mu: packet p of row r lands at packet index p*a*b + r
// of the output array. Three chained stages return a 3D cube to natural
// order; two chained stages return a 2D array to natural order.
#pragma once

#include <array>

#include "common/error.h"
#include "common/types.h"
#include "kernels/isa.h"
#include "kernels/twiddle.h"

namespace bwfft {

struct StageGeometry {
  idx_t a = 1;       ///< slow rotation-grid dimension
  idx_t b = 1;       ///< mid rotation-grid dimension
  idx_t fft_len = 1; ///< pencil length L of this stage
  idx_t lanes = 1;   ///< SIMD lanes per pencil element (1 or mu)
  idx_t mu = 1;      ///< cacheline packet size for the rotation

  idx_t row_elems() const { return fft_len * lanes; }
  idx_t cp() const { return row_elems() / mu; }
  idx_t rows() const { return a * b; }
  idx_t total() const { return rows() * row_elems(); }
};

/// Largest packet size usable for the fast dimension m: a power of two
/// dividing m, at most `cap` (by default the cacheline packet kMu).
inline idx_t packet_size_for(idx_t m, idx_t cap = kMu) {
  idx_t mu = 1;
  while (mu < cap && (m % (2 * mu)) == 0) mu *= 2;
  return mu;
}

/// Cap for the *auto* packet under the current dispatch state. The
/// AVX-512 batch tables run 8 complex lanes per chunk, so a mu = 4
/// packet would leave their chunk loop empty and cascade down to 256-bit
/// ops; double the packet to two cachelines there. Narrower dispatch
/// keeps the one-cacheline packet of §III-A.
inline idx_t auto_packet_cap() {
  return kernels::active_isa() == kernels::Isa::Avx512 ? 2 * kMu : kMu;
}

/// Resolve a requested packet size against the fast dimension: 0 = auto
/// (the widest packet the dispatched ISA can fill, see auto_packet_cap).
inline idx_t resolve_packet_size(idx_t requested, idx_t m) {
  if (requested <= 0) return packet_size_for(m, auto_packet_cap());
  BWFFT_CHECK(m % requested == 0, "packet_elems must divide the fast dim");
  return requested;
}

/// Stage chain for the 3D cube k x n x m (paper §III-A):
///  stage 0: rows (z,y), pencils along x;   layout out: [xp][z][y][xl]
///  stage 1: rows (xp,z), pencils along y;  layout out: [y][xp][z][xl]
///  stage 2: rows (y,xp), pencils along z;  layout out: [z][y][x] (natural)
inline std::array<StageGeometry, 3> make_3d_stages(idx_t k, idx_t n, idx_t m,
                                                   idx_t mu) {
  BWFFT_CHECK(m % mu == 0, "packet size must divide m");
  return {StageGeometry{k, n, m, 1, mu},
          StageGeometry{m / mu, k, n, mu, mu},
          StageGeometry{n, m / mu, k, mu, mu}};
}

/// Stage chain for the 2D array n x m:
///  stage 0: rows y, pencils along x;   layout out: [xp][y][xl]
///  stage 1: rows xp, pencils along y;  layout out: [y][x] (natural)
inline std::array<StageGeometry, 2> make_2d_stages(idx_t n, idx_t m,
                                                   idx_t mu) {
  BWFFT_CHECK(m % mu == 0, "packet size must divide m");
  return {StageGeometry{n, 1, m, 1, mu}, StageGeometry{m / mu, 1, n, mu, mu}};
}

/// Largest divisor of `rows` that is <= budget (>= 1): the number of rows
/// per pipeline block, sized so a block fits the shared buffer half.
inline idx_t rows_per_block(idx_t rows, idx_t budget) {
  BWFFT_CHECK(budget >= 1, "block budget must hold at least one row");
  for (idx_t d = std::min(rows, budget); d >= 1; --d) {
    if (rows % d == 0) return d;
  }
  return 1;
}

}  // namespace bwfft
