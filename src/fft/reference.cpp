#include "fft/reference.h"

#include "common/error.h"
#include "kernels/twiddle.h"
#include "obs/obs.h"

namespace bwfft {

namespace {

/// Apply the dense DFT along one axis of a flattened array: `outer` slabs,
/// each containing `n` slices of `inner` contiguous elements; the
/// transform runs over the slice index.
void dense_dft_axis(const cplx* in, cplx* out, idx_t outer, idx_t n,
                    idx_t inner, Direction dir) {
  const cvec w = root_table(n, n, dir);
  for (idx_t o = 0; o < outer; ++o) {
    const cplx* slab_in = in + o * n * inner;
    cplx* slab_out = out + o * n * inner;
    for (idx_t k = 0; k < n; ++k) {
      for (idx_t i = 0; i < inner; ++i) {
        cplx acc(0.0, 0.0);
        for (idx_t l = 0; l < n; ++l) {
          acc += w[static_cast<std::size_t>((k * l) % n)] * slab_in[l * inner + i];
        }
        slab_out[k * inner + i] = acc;
      }
    }
  }
}

}  // namespace

void reference_dft_1d(const cplx* in, cplx* out, idx_t n, Direction dir) {
  BWFFT_CHECK(in != out, "reference DFT is out of place");
  BWFFT_OBS_SCOPE(obs_stage, "dense-x", 'G', n);
  dense_dft_axis(in, out, 1, n, 1, dir);
}

void reference_dft_2d(const cplx* in, cplx* out, idx_t n, idx_t m,
                      Direction dir) {
  BWFFT_CHECK(in != out, "reference DFT is out of place");
  cvec tmp(static_cast<std::size_t>(n * m));
  {
    BWFFT_OBS_SCOPE(obs_stage, "dense-x", 'G', n);
    dense_dft_axis(in, tmp.data(), n, m, 1, dir);  // rows (x)
  }
  {
    BWFFT_OBS_SCOPE(obs_stage, "dense-y", 'G', m);
    dense_dft_axis(tmp.data(), out, 1, n, m, dir);  // columns (y)
  }
}

void reference_dft_3d(const cplx* in, cplx* out, idx_t k, idx_t n, idx_t m,
                      Direction dir) {
  BWFFT_CHECK(in != out, "reference DFT is out of place");
  cvec t1(static_cast<std::size_t>(k * n * m));
  cvec t2(static_cast<std::size_t>(k * n * m));
  {
    BWFFT_OBS_SCOPE(obs_stage, "dense-x", 'G', m);
    dense_dft_axis(in, t1.data(), k * n, m, 1, dir);  // x
  }
  {
    BWFFT_OBS_SCOPE(obs_stage, "dense-y", 'G', n);
    dense_dft_axis(t1.data(), t2.data(), k, n, m, dir);  // y
  }
  {
    BWFFT_OBS_SCOPE(obs_stage, "dense-z", 'G', k);
    dense_dft_axis(t2.data(), out, 1, k, n * m, dir);  // z
  }
}

}  // namespace bwfft
