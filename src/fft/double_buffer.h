// Double-buffered FFT engine — the paper's contribution (§III, §IV).
//
// Each stage of the rotated decomposition is tiled into blocks that fit
// one half of a cache-resident shared buffer (b = LLC/2 policy, §IV-A).
// Half the threads are soft-DMA data threads: per Table II they stream
// block i from main memory into one buffer half (R_{b,i}) and scatter the
// previously computed block back through the blocked rotation with
// non-temporal stores (W_{b,i}), while the compute threads run the batch
// 1D FFT kernel in place on the other half. Data makes exactly one
// round-trip through DRAM per stage at streaming-friendly granularity;
// all strided traffic is hidden behind compute.
#pragma once

#include <memory>
#include <vector>

#include "common/aligned.h"
#include "fft/engine.h"
#include "fft/stage.h"
#include "fft1d/fft1d.h"
#include "parallel/roles.h"
#include "parallel/team.h"
#include "pipeline/pipeline.h"

namespace bwfft {

class DoubleBufferEngine final : public MdEngine {
 public:
  DoubleBufferEngine(std::vector<idx_t> dims, Direction dir,
                     const FftOptions& opts);
  void execute(cplx* in, cplx* out) override;
  const char* name() const override { return "double-buffer"; }

  /// Run with the Table II overlap disabled (load/compute/store in
  /// lockstep) — the pipelining-ablation benchmark uses this.
  void execute_unpipelined(cplx* in, cplx* out);

  const RolePlan& roles() const { return roles_; }
  idx_t block_elems() const { return pipeline_->block_elems(); }

  /// Wall time and iteration count of each stage in the last execute call
  /// (2 entries for 2D plans, 3 for 3D). Useful for stage-balance
  /// analysis: the paper's Fig 9 discussion of small iteration counts is
  /// directly visible here.
  struct StageStats {
    double seconds = 0.0;
    idx_t iterations = 0;
    idx_t block_rows = 0;
    /// Per-role busy time (filled when set_collect_utilization(true)).
    DoubleBufferPipeline::RoleUtilization util;
  };
  const std::vector<StageStats>& last_stats() const { return stats_; }

  /// Collect per-role busy times into last_stats() (small overhead).
  void set_collect_utilization(bool on) {
    pipeline_->set_collect_utilization(on);
  }

 private:
  void run_stage(const StageGeometry& g, const Fft1d& fft, const cplx* src,
                 cplx* dst, bool pipelined);
  void run_all(cplx* in, cplx* out, bool pipelined);

  std::vector<idx_t> dims_;
  Direction dir_;
  FftOptions opts_;
  std::vector<StageGeometry> stages_;
  std::vector<std::shared_ptr<Fft1d>> ffts_;
  std::shared_ptr<ThreadTeam> team_;  // pooled or private (FftOptions::team_pool)
  RolePlan roles_;
  std::unique_ptr<DoubleBufferPipeline> pipeline_;
  AlignedBuffer<cplx> work_;  // 2D intermediate (huge-page preferred)
  idx_t total_ = 1;
  std::vector<StageStats> stats_;
};

}  // namespace bwfft
