#include "fft/fft.h"

#include "common/error.h"
#include "fft/double_buffer.h"
#include "fft/pencil.h"
#include "fft/reference.h"
#include "fft/slab_pencil.h"
#include "fft/stage_parallel.h"

namespace bwfft {

const char* engine_name(EngineKind k) {
  switch (k) {
    case EngineKind::Reference: return "reference";
    case EngineKind::Pencil: return "pencil";
    case EngineKind::StageParallel: return "stage-parallel";
    case EngineKind::SlabPencil: return "slab-pencil";
    case EngineKind::DoubleBuffer: return "double-buffer";
  }
  return "?";
}

namespace {

/// Thin adapter running the dense oracle behind the engine interface.
class ReferenceEngine final : public MdEngine {
 public:
  ReferenceEngine(std::vector<idx_t> dims, Direction dir, FftOptions opts)
      : dims_(std::move(dims)), dir_(dir), opts_(opts) {}

  void execute(cplx* in, cplx* out) override {
    if (dims_.size() == 2) {
      reference_dft_2d(in, out, dims_[0], dims_[1], dir_);
    } else {
      reference_dft_3d(in, out, dims_[0], dims_[1], dims_[2], dir_);
    }
    if (dir_ == Direction::Inverse && opts_.normalize_inverse) {
      idx_t total = 1;
      for (idx_t d : dims_) total *= d;
      const double s = 1.0 / static_cast<double>(total);
      for (idx_t i = 0; i < total; ++i) out[i] *= s;
    }
  }
  const char* name() const override { return "reference"; }

 private:
  std::vector<idx_t> dims_;
  Direction dir_;
  FftOptions opts_;
};

}  // namespace

std::unique_ptr<MdEngine> make_engine(const std::vector<idx_t>& dims,
                                      Direction dir, const FftOptions& opts) {
  BWFFT_CHECK(dims.size() == 2 || dims.size() == 3,
              "only 2D and 3D transforms are supported");
  for (idx_t d : dims) BWFFT_CHECK(d >= 1, "dimensions must be positive");
  switch (opts.engine) {
    case EngineKind::Reference:
      return std::make_unique<ReferenceEngine>(dims, dir, opts);
    case EngineKind::Pencil:
      return std::make_unique<PencilEngine>(dims, dir, opts);
    case EngineKind::StageParallel:
      return std::make_unique<StageParallelEngine>(dims, dir, opts);
    case EngineKind::SlabPencil:
      return std::make_unique<SlabPencilEngine>(dims, dir, opts);
    case EngineKind::DoubleBuffer:
      return std::make_unique<DoubleBufferEngine>(dims, dir, opts);
  }
  throw Error("unknown engine kind");
}

Fft2d::Fft2d(idx_t n, idx_t m, Direction dir, FftOptions opts)
    : n_(n), m_(m), engine_(make_engine({n, m}, dir, opts)) {}
Fft2d::~Fft2d() = default;
Fft2d::Fft2d(Fft2d&&) noexcept = default;
Fft2d& Fft2d::operator=(Fft2d&&) noexcept = default;

void Fft2d::execute(cplx* in, cplx* out) { engine_->execute(in, out); }

void Fft2d::execute_inplace(cplx* data) {
  inplace_work_.resize(static_cast<std::size_t>(size()));
  engine_->execute(data, inplace_work_.data());
  std::copy(inplace_work_.begin(), inplace_work_.end(), data);
}

const char* Fft2d::engine_name() const { return engine_->name(); }

Fft3d::Fft3d(idx_t k, idx_t n, idx_t m, Direction dir, FftOptions opts)
    : k_(k), n_(n), m_(m), engine_(make_engine({k, n, m}, dir, opts)) {}
Fft3d::~Fft3d() = default;
Fft3d::Fft3d(Fft3d&&) noexcept = default;
Fft3d& Fft3d::operator=(Fft3d&&) noexcept = default;

void Fft3d::execute(cplx* in, cplx* out) { engine_->execute(in, out); }

void Fft3d::execute_inplace(cplx* data) {
  inplace_work_.resize(static_cast<std::size_t>(size()));
  engine_->execute(data, inplace_work_.data());
  std::copy(inplace_work_.begin(), inplace_work_.end(), data);
}

const char* Fft3d::engine_name() const { return engine_->name(); }

}  // namespace bwfft
