#include "fft/fft.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <new>
#include <thread>

#include "common/error.h"
#include "fault/fault.h"
#include "fft/double_buffer.h"
#include "fft/pencil.h"
#include "fft1d/large.h"
#include "fft/reference.h"
#include "fft/slab_pencil.h"
#include "fft/stage_parallel.h"
#include "layout/stream_copy.h"
#include "obs/obs.h"
#include "tune/tuner.h"

namespace bwfft {

const char* engine_name(EngineKind k) {
  switch (k) {
    case EngineKind::Reference: return "reference";
    case EngineKind::Pencil: return "pencil";
    case EngineKind::StageParallel: return "stage-parallel";
    case EngineKind::SlabPencil: return "slab-pencil";
    case EngineKind::DoubleBuffer: return "double-buffer";
    case EngineKind::Auto: return "auto";
  }
  return "?";
}

const char* tune_level_name(TuneLevel level) {
  switch (level) {
    case TuneLevel::Estimate: return "estimate";
    case TuneLevel::Measure: return "measure";
    case TuneLevel::Exhaustive: return "exhaustive";
  }
  return "?";
}

bool engine_kind_from_name(const std::string& name, EngineKind* out) {
  if (name == "reference") {
    *out = EngineKind::Reference;
  } else if (name == "pencil") {
    *out = EngineKind::Pencil;
  } else if (name == "stage-parallel" || name == "stagepar") {
    *out = EngineKind::StageParallel;
  } else if (name == "slab-pencil" || name == "slab") {
    *out = EngineKind::SlabPencil;
  } else if (name == "double-buffer" || name == "dbuf") {
    *out = EngineKind::DoubleBuffer;
  } else if (name == "auto") {
    *out = EngineKind::Auto;
  } else {
    return false;
  }
  return true;
}

bool tune_level_from_name(const std::string& name, TuneLevel* out) {
  if (name == "estimate") {
    *out = TuneLevel::Estimate;
  } else if (name == "measure") {
    *out = TuneLevel::Measure;
  } else if (name == "exhaustive") {
    *out = TuneLevel::Exhaustive;
  } else {
    return false;
  }
  return true;
}

namespace {

/// Thin adapter running the dense oracle behind the engine interface.
class ReferenceEngine final : public MdEngine {
 public:
  ReferenceEngine(std::vector<idx_t> dims, Direction dir, FftOptions opts)
      : dims_(std::move(dims)), dir_(dir), opts_(opts) {}

  void execute(cplx* in, cplx* out) override {
    if (dims_.size() == 1) {
      reference_dft_1d(in, out, dims_[0], dir_);
    } else if (dims_.size() == 2) {
      reference_dft_2d(in, out, dims_[0], dims_[1], dir_);
    } else {
      reference_dft_3d(in, out, dims_[0], dims_[1], dims_[2], dir_);
    }
    if (dir_ == Direction::Inverse && opts_.normalize_inverse) {
      idx_t total = 1;
      for (idx_t d : dims_) total *= d;
      const double s = 1.0 / static_cast<double>(total);
      for (idx_t i = 0; i < total; ++i) out[i] *= s;
    }
  }
  const char* name() const override { return "reference"; }

 private:
  std::vector<idx_t> dims_;
  Direction dir_;
  FftOptions opts_;
};

// ---------------------------------------------------------------------------
// 1D adapters (docs/INTERNALS.md §15). The EngineKind axis maps onto the
// 1D strategies the ext_large1d bench compares: DoubleBuffer is the
// tuned four-step Fft1dLarge, StageParallel the flat Stockham pass, and
// Pencil the naive strided-DIT baseline.

/// EngineKind::DoubleBuffer for dims.size() == 1: the four-step facade.
class Large1dEngine final : public MdEngine {
 public:
  Large1dEngine(idx_t n, Direction dir, const FftOptions& opts)
      : impl_(n, dir, opts) {}
  void execute(cplx* in, cplx* out) override { impl_.execute(in, out); }
  const char* name() const override { return "fft1d-large"; }

 private:
  Fft1dLarge impl_;
};

/// EngineKind::StageParallel for dims.size() == 1: one flat Stockham
/// pass over the whole array — correct at any size, but the working set
/// round-trips DRAM once per radix level once it outgrows the LLC.
class Flat1dEngine final : public MdEngine {
 public:
  Flat1dEngine(idx_t n, Direction dir, const FftOptions& opts)
      : n_(n), dir_(dir), opts_(opts), fft_(n, dir, opts.isa) {}
  void execute(cplx* in, cplx* out) override {
    fft_.apply_oop(in, out);
    if (dir_ == Direction::Inverse && opts_.normalize_inverse) {
      fft_.scale_inverse(out, n_);
    }
  }
  const char* name() const override { return "stockham-flat"; }

 private:
  idx_t n_;
  Direction dir_;
  FftOptions opts_;
  Fft1d fft_;
};

/// EngineKind::Pencil for dims.size() == 1: the naive in-place DIT with
/// bit-reversal — the cache-hostile baseline (§II-D applied to 1D).
class NaiveDit1dEngine final : public MdEngine {
 public:
  NaiveDit1dEngine(idx_t n, Direction dir, const FftOptions& opts)
      : n_(n), dir_(dir), opts_(opts), fft_(n, dir, opts.isa) {
    BWFFT_CHECK(is_pow2(n), "naive 1D DIT needs a power-of-two size");
  }
  void execute(cplx* in, cplx* out) override {
    std::memcpy(out, in, static_cast<std::size_t>(n_) * sizeof(cplx));
    fft_.apply_strided_inplace(out, 1);
    if (dir_ == Direction::Inverse && opts_.normalize_inverse) {
      fft_.scale_inverse(out, n_);
    }
  }
  const char* name() const override { return "naive-dit"; }

 private:
  idx_t n_;
  Direction dir_;
  FftOptions opts_;
  Fft1d fft_;
};

std::unique_ptr<MdEngine> make_engine_1d(idx_t n, Direction dir,
                                         const FftOptions& opts) {
  switch (opts.engine) {
    case EngineKind::Reference:
      return std::make_unique<ReferenceEngine>(std::vector<idx_t>{n}, dir,
                                               opts);
    case EngineKind::Pencil:
      return std::make_unique<NaiveDit1dEngine>(n, dir, opts);
    case EngineKind::StageParallel:
      return std::make_unique<Flat1dEngine>(n, dir, opts);
    case EngineKind::DoubleBuffer:
      return std::make_unique<Large1dEngine>(n, dir, opts);
    case EngineKind::SlabPencil:
      BWFFT_CHECK(false, "slab-pencil is a 3D decomposition");
      break;
    case EngineKind::Auto:
      return make_engine({n}, dir, tune::resolve_auto({n}, dir, opts));
  }
  throw Error("unknown engine kind");
}

}  // namespace

std::unique_ptr<MdEngine> make_engine(const std::vector<idx_t>& dims,
                                      Direction dir, const FftOptions& opts) {
  BWFFT_CHECK(dims.size() >= 1 && dims.size() <= 3,
              "only 1D, 2D and 3D transforms are supported");
  for (idx_t d : dims) BWFFT_CHECK(d >= 1, "dimensions must be positive");
  if (dims.size() == 1) return make_engine_1d(dims[0], dir, opts);
  switch (opts.engine) {
    case EngineKind::Reference:
      return std::make_unique<ReferenceEngine>(dims, dir, opts);
    case EngineKind::Pencil:
      return std::make_unique<PencilEngine>(dims, dir, opts);
    case EngineKind::StageParallel:
      return std::make_unique<StageParallelEngine>(dims, dir, opts);
    case EngineKind::SlabPencil:
      return std::make_unique<SlabPencilEngine>(dims, dir, opts);
    case EngineKind::DoubleBuffer:
      return std::make_unique<DoubleBufferEngine>(dims, dir, opts);
    case EngineKind::Auto:
      // The planner picks the engine and knobs (wisdom first, then the
      // cost model / measurement ladder); the resolved options are
      // guaranteed concrete, so this recursion terminates.
      return make_engine(dims, dir, tune::resolve_auto(dims, dir, opts));
  }
  throw Error("unknown engine kind");
}

namespace {

/// Copy-back of execute_inplace: the transformed data goes back through
/// the streaming-store path so the copy is visible to the obs counters
/// and — with NT stores — does not evict the cache-resident state the
/// plan was just tuned for.
void inplace_copy_back(cplx* dst, const cvec& work, bool nontemporal) {
  const idx_t count = static_cast<idx_t>(work.size());
  [[maybe_unused]] const std::uint64_t bytes =
      static_cast<std::uint64_t>(work.size()) * sizeof(cplx);
  BWFFT_OBS_COUNT(BytesLoaded, bytes);
  BWFFT_OBS_COUNT(BytesStored, bytes);
  copy_stream(dst, work.data(), count, nontemporal);
  if (nontemporal) stream_fence();
}

// ---------------------------------------------------------------------------
// Recovery policy (docs/INTERNALS.md §10) shared by the facades.

constexpr int kMaxRetries = 3;

int resolved_threads(const FftOptions& opts) {
  return opts.threads > 0 ? opts.threads : opts.topo.total_threads();
}

/// A stall or lost worker may be transient (or injected once): worth a
/// retry with a smaller team. Everything else either cannot recover
/// (kBadPlan, kInternal) or recovers by switching engines, not resizing.
bool transient(ErrorCode c) {
  return c == ErrorCode::kStall || c == ErrorCode::kWorkerLost;
}

/// Shrink the plan after a transient failure: halve the thread budget and
/// let the role split re-derive itself from the new size.
void halve_threads(FftOptions& opts) {
  opts.threads = std::max(1, resolved_threads(opts) / 2);
  opts.compute_threads = -1;
}

/// Degrade the engine after a non-transient failure. Multidimensional
/// plans fall straight to the dense reference oracle; 1D plans first try
/// the flat Stockham pass (stage-parallel) — it needs no team and no
/// placed buffers either, and unlike the O(n^2) oracle it stays usable
/// at the out-of-LLC sizes Fft1dLarge serves. False when already at the
/// last resort.
bool degrade_engine(const std::vector<idx_t>& dims, FftOptions& opts,
                    const char* what) {
  const std::string reason(what);
  if (dims.size() == 1 && opts.engine != EngineKind::StageParallel &&
      opts.engine != EngineKind::Reference) {
    fault::note_degrade(
        (reason + "; falling back to flat Stockham engine").c_str());
    fault::note_retry();
    opts.engine = EngineKind::StageParallel;
    return true;
  }
  if (opts.engine != EngineKind::Reference) {
    fault::note_degrade(
        (reason + "; falling back to reference engine").c_str());
    fault::note_retry();
    opts.engine = EngineKind::Reference;
    return true;
  }
  return false;
}

}  // namespace

/// Engine construction for the facades and the exec/tune layers.
/// Recoverable construction failures (an injected or real spawn failure,
/// placed-alloc exhaustion) degrade the options and try again instead of
/// failing the plan; kBadPlan — the request itself is invalid — still
/// throws.
std::unique_ptr<MdEngine> make_engine_recovering(
    const std::vector<idx_t>& dims, Direction dir, FftOptions& opts) {
  for (int attempt = 0;; ++attempt) {
    ErrorCode code = ErrorCode::kInternal;
    try {
      return make_engine(dims, dir, opts);
    } catch (const Error& e) {
      code = e.code();
      if (code == ErrorCode::kBadPlan || code == ErrorCode::kInternal ||
          attempt >= kMaxRetries) {
        throw;
      }
    } catch (const std::bad_alloc&) {
      code = ErrorCode::kAllocFailed;
      if (attempt >= kMaxRetries) throw;
    }
    if (transient(code) && resolved_threads(opts) > 1) {
      halve_threads(opts);
      fault::note_retry();
    } else if (!degrade_engine(dims, opts, "plan construction failed")) {
      // Terminal fallback exhausted: the dense oracle needs no team and
      // no placed buffers, so it survives anything short of heap
      // exhaustion — if even it fails, surface the error.
      throw Error(code, "reference engine failed to build");
    }
  }
}

/// Shared body of Fft2d/Fft3d::try_execute and CachedPlan::try_execute.
/// Attempts the current engine; on failure classifies the error, degrades
/// the stored options (so the fallback sticks for later calls), rebuilds
/// and retries with a short backoff, bounded by kMaxRetries.
Status try_execute_recovering(const std::vector<idx_t>& dims, Direction dir,
                              FftOptions& opts,
                              std::unique_ptr<MdEngine>& engine, cplx* in,
                              cplx* out, ExecReport* rep) {
  Status st;
  int retries = 0;
  for (int attempt = 0;; ++attempt) {
    try {
      if (!engine) engine = make_engine(dims, dir, opts);
      engine->execute(in, out);
      st = Status::Ok();
      break;
    } catch (const Error& e) {
      st = Status(e.code(), e.what());
    } catch (const std::bad_alloc&) {
      st = Status(ErrorCode::kAllocFailed,
                  "allocation failed while executing plan");
    } catch (const std::exception& e) {
      st = Status(ErrorCode::kInternal, e.what());
    }
    // The failed engine's team and buffers are suspect — rebuild.
    engine.reset();
    if (st.code() == ErrorCode::kBadPlan ||
        st.code() == ErrorCode::kInternal || attempt >= kMaxRetries) {
      break;
    }
    if (transient(st.code()) && resolved_threads(opts) > 1) {
      halve_threads(opts);
      fault::note_retry();
      ++retries;
      // Brief backoff: an injected straggler or a genuinely overloaded
      // host both benefit from not re-spawning the team immediately.
      std::this_thread::sleep_for(std::chrono::milliseconds(1LL << attempt));
    } else if (degrade_engine(dims, opts, "engine execution failed")) {
      ++retries;
    } else {
      break;
    }
  }
  if (rep) {
    rep->status = st;
    rep->retries = retries;
    rep->threads_used =
        (engine && opts.engine == EngineKind::Reference) ? 1
                                                         : resolved_threads(opts);
    rep->engine = engine ? engine->name() : engine_name(opts.engine);
    rep->degradations = fault::degrade_notes();
  }
  return st;
}

Fft2d::Fft2d(idx_t n, idx_t m, Direction dir, FftOptions opts)
    : n_(n), m_(m), dir_(dir), opts_(std::move(opts)),
      nontemporal_(opts_.nontemporal) {
  engine_ = make_engine_recovering({n_, m_}, dir_, opts_);
}
Fft2d::~Fft2d() = default;
Fft2d::Fft2d(Fft2d&&) noexcept = default;
Fft2d& Fft2d::operator=(Fft2d&&) noexcept = default;

void Fft2d::execute(cplx* in, cplx* out) {
  // A failed try_execute leaves no engine; rebuild (and throw on failure,
  // as this is the throwing API).
  if (!engine_) engine_ = make_engine({n_, m_}, dir_, opts_);
  engine_->execute(in, out);
}

Status Fft2d::try_execute(cplx* in, cplx* out, ExecReport* rep) {
  return try_execute_recovering({n_, m_}, dir_, opts_, engine_, in,
                                out, rep);
}

void Fft2d::execute_inplace(cplx* data) {
  inplace_work_.resize(static_cast<std::size_t>(size()));
  execute(data, inplace_work_.data());
  inplace_copy_back(data, inplace_work_, nontemporal_);
}

const char* Fft2d::engine_name() const { return engine_->name(); }

Fft3d::Fft3d(idx_t k, idx_t n, idx_t m, Direction dir, FftOptions opts)
    : k_(k), n_(n), m_(m), dir_(dir), opts_(std::move(opts)),
      nontemporal_(opts_.nontemporal) {
  engine_ = make_engine_recovering({k_, n_, m_}, dir_, opts_);
}
Fft3d::~Fft3d() = default;
Fft3d::Fft3d(Fft3d&&) noexcept = default;
Fft3d& Fft3d::operator=(Fft3d&&) noexcept = default;

void Fft3d::execute(cplx* in, cplx* out) {
  if (!engine_) engine_ = make_engine({k_, n_, m_}, dir_, opts_);
  engine_->execute(in, out);
}

Status Fft3d::try_execute(cplx* in, cplx* out, ExecReport* rep) {
  return try_execute_recovering({k_, n_, m_}, dir_, opts_, engine_,
                                in, out, rep);
}

void Fft3d::execute_inplace(cplx* data) {
  inplace_work_.resize(static_cast<std::size_t>(size()));
  execute(data, inplace_work_.data());
  inplace_copy_back(data, inplace_work_, nontemporal_);
}

const char* Fft3d::engine_name() const { return engine_->name(); }

}  // namespace bwfft
