// Internal engine interface implemented by each algorithm.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "fft/options.h"

namespace bwfft {

class MdEngine {
 public:
  virtual ~MdEngine() = default;

  /// Out-of-place transform (in != out). Engines may clobber `in` — it is
  /// a working array, matching the FFTW_DESTROY_INPUT convention the
  /// paper's large-size runs rely on.
  virtual void execute(cplx* in, cplx* out) = 0;

  virtual const char* name() const = 0;
};

/// Build an engine for the given dimensions (size 2 => [n, m] 2D; size 3
/// => [k, n, m] 3D cube, slowest first).
std::unique_ptr<MdEngine> make_engine(const std::vector<idx_t>& dims,
                                      Direction dir, const FftOptions& opts);

}  // namespace bwfft
