// Dual-socket double-buffered 3D FFT (§IV-B, Fig 8, Table III).
//
// Data is distributed across the sockets' NUMA domains by the z dimension
// (each socket owns a contiguous k/sk x n x m slab). Every stage reads
// only from the socket's local memory; stage 1 also writes locally (its
// rotation stays inside the slab, Table III W^1), while stages 2 and 3
// write across the interconnect (W^2 reassembles full-z pencils
// distributed by y; W^3 restores the natural order distributed by z).
// Within each socket the stage runs the same Table II software pipeline as
// the single-socket engine, with the socket's own compute/data threads,
// cache buffer and barrier. Cross-socket write traffic is recorded so the
// harness can apply the QPI/HT bandwidth term of the paper's Fig 10
// analysis.
#pragma once

#include <memory>
#include <vector>

#include "fft/engine.h"
#include "fft/stage.h"
#include "fft1d/fft1d.h"
#include "parallel/barrier.h"
#include "parallel/numa.h"
#include "parallel/roles.h"
#include "parallel/team.h"

namespace bwfft {

class DualSocketFft3d {
 public:
  /// Cube k x n x m over `sockets` NUMA domains; sk must divide k and n.
  DualSocketFft3d(idx_t k, idx_t n, idx_t m, Direction dir,
                  const FftOptions& opts, int sockets = 2);

  /// Distributed transform: both arrays have one k/sk x n x m slab per
  /// domain; `x` is the input and is clobbered, the result lands in `y`.
  void execute_distributed(NumaArray& x, NumaArray& y);

  /// Convenience contiguous API: scatters `in` over the domains, runs,
  /// gathers into `out` (adds two copies; the distributed API is the
  /// intended hot path).
  void execute(cplx* in, cplx* out);

  int sockets() const { return sk_; }
  idx_t size() const { return k_ * n_ * m_; }

  /// Cross-socket bytes written by the last execute_* call.
  const LinkTraffic& traffic() const { return traffic_; }

 private:
  struct SocketState {
    std::unique_ptr<SpinBarrier> barrier;
    AlignedBuffer<cplx> buffer;  // two halves of block_elems each
  };

  void run_stage(int stage, NumaArray& src, NumaArray& dst);

  idx_t k_, n_, m_, mu_;
  idx_t ksl_, nsl_;  // per-socket slab extents k/sk, n/sk
  Direction dir_;
  FftOptions opts_;
  int sk_;
  std::array<StageGeometry, 3> stages_;  // per-socket local geometry
  std::vector<std::shared_ptr<Fft1d>> ffts_;
  std::shared_ptr<ThreadTeam> team_;  // pooled or private (FftOptions::team_pool)
  int per_socket_threads_ = 1;
  RolePlan socket_roles_;
  idx_t block_elems_ = 0;
  std::vector<SocketState> socket_;
  LinkTraffic traffic_;
};

}  // namespace bwfft
