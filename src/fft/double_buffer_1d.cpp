#include "fft/double_buffer_1d.h"

#include "common/error.h"

namespace bwfft {

DoubleBuffer1d::DoubleBuffer1d(idx_t n, Direction dir,
                               const FftOptions& opts) {
  // Any n >= 1 plans: composite sizes run the tiled four-step split
  // (factors need not be powers of two), primes and tiny sizes take the
  // facade's flat fallback.
  impl_ = std::make_unique<Fft1dLarge>(n, dir, opts);
}

}  // namespace bwfft
