#include "fft/double_buffer_1d.h"

#include <cstring>

#include "common/error.h"
#include "fft/stage.h"
#include "kernels/twiddle.h"
#include "layout/stream_copy.h"
#include "parallel/team_pool.h"

namespace bwfft {

namespace {
/// Refresh the twiddle recurrence with an exactly computed root every this
/// many steps, bounding the multiplicative drift to ~64 eps.
constexpr idx_t kTwiddleRefresh = 64;
}  // namespace

DoubleBuffer1d::DoubleBuffer1d(idx_t n, Direction dir, const FftOptions& opts)
    : n_(n), dir_(dir), opts_(opts) {
  BWFFT_CHECK(is_pow2(n) && n >= 16, "double-buffer 1D needs a power of two >= 16");
  // Near-square split a <= b, both powers of two.
  const int t = log2_floor(n_);
  a_ = idx_t{1} << (t / 2);
  b_ = n_ / a_;
  mu_ = std::min(std::min(kMu, a_), b_);

  fft_a_ = std::make_shared<Fft1d>(a_, dir_, opts_.isa);
  fft_b_ = std::make_shared<Fft1d>(b_, dir_, opts_.isa);

  const int p = opts_.threads > 0 ? opts_.threads : opts_.topo.total_threads();
  const int pc = opts_.compute_threads >= 0 ? opts_.compute_threads
                                            : (p <= 1 ? p : p / 2);
  roles_ = make_role_plan(p, pc, opts_.topo);
  team_ = parallel::make_team(
      p, opts_.pin_threads ? roles_.cpu : std::vector<int>{},
      opts_.team_pool);

  idx_t block = opts_.block_elems > 0 ? opts_.block_elems
                                      : default_block_elems(opts_.topo);
  // Stage 1 blocks are whole column groups (a*mu elems); stage 2 blocks
  // whole mu-row groups (mu*b elems).
  block = std::max(block, a_ * mu_);
  block = std::max(block, mu_ * b_);
  pipeline_ = std::make_unique<DoubleBufferPipeline>(*team_, roles_, block);

  col_roots_ = root_table(n_, b_, dir_);
}

void DoubleBuffer1d::stage1(cplx* data) {
  // (DFT_a (x) I_b) then D_b^{ab}, tiled over column groups of mu lanes.
  const idx_t groups_total = b_ / mu_;
  const idx_t group_elems = a_ * mu_;
  const idx_t groups_per_block =
      rows_per_block(groups_total, pipeline_->block_elems() / group_elems);
  const bool nt = opts_.nontemporal;

  PipelineStage stage;
  stage.iterations = groups_total / groups_per_block;
  stage.load = [=, this](idx_t i, cplx* buf, int rank, int parts) {
    auto [g0, g1] = ThreadTeam::chunk(groups_per_block, parts, rank);
    for (idx_t g = g0; g < g1; ++g) {
      const idx_t col0 = (i * groups_per_block + g) * mu_;
      cplx* tile = buf + g * group_elems;
      for (idx_t r = 0; r < a_; ++r) {
        std::memcpy(tile + r * mu_, data + r * b_ + col0,
                    static_cast<std::size_t>(mu_) * sizeof(cplx));
      }
    }
  };
  stage.compute = [=, this](idx_t i, cplx* buf, int rank, int parts) {
    auto [g0, g1] = ThreadTeam::chunk(groups_per_block, parts, rank);
    if (g1 <= g0) return;
    fft_a_->apply_lanes(buf + g0 * group_elems, mu_, g1 - g0);
    // Twiddle scale D: element (r, q) *= w_N^{r q}, by per-column
    // recurrence with periodic exact refresh.
    for (idx_t g = g0; g < g1; ++g) {
      cplx* tile = buf + g * group_elems;
      for (idx_t l = 0; l < mu_; ++l) {
        const idx_t q = (i * groups_per_block + g) * mu_ + l;
        const cplx step = col_roots_[static_cast<std::size_t>(q)];
        cplx w(1.0, 0.0);
        for (idx_t r = 0; r < a_; ++r) {
          if (r % kTwiddleRefresh == 0) {
            w = root_of_unity(n_, (r * q) % n_, dir_);
          }
          tile[r * mu_ + l] *= w;
          w *= step;
        }
      }
    }
  };
  stage.store = [=, this](idx_t i, const cplx* buf, int rank, int parts) {
    auto [g0, g1] = ThreadTeam::chunk(groups_per_block, parts, rank);
    for (idx_t g = g0; g < g1; ++g) {
      const idx_t col0 = (i * groups_per_block + g) * mu_;
      const cplx* tile = buf + g * group_elems;
      for (idx_t r = 0; r < a_; ++r) {
        store_packet(data + r * b_ + col0, tile + r * mu_, mu_, nt);
      }
    }
  };
  pipeline_->execute(stage);
}

void DoubleBuffer1d::stage2(const cplx* src, cplx* dst) {
  // (I_a (x) DFT_b) then the final L_b^{ab}: contiguous rows in, packet-
  // transposed scatter out. Blocks are mu-row groups so the in-cache
  // micro-transpose always has its mu rows available.
  const idx_t row_groups = a_ / mu_;
  const idx_t group_elems = mu_ * b_;
  const idx_t groups_per_block =
      rows_per_block(row_groups, pipeline_->block_elems() / group_elems);
  const bool nt = opts_.nontemporal;

  PipelineStage stage;
  stage.iterations = row_groups / groups_per_block;
  stage.load = [=, this](idx_t i, cplx* buf, int rank, int parts) {
    auto [g0, g1] = ThreadTeam::chunk(groups_per_block, parts, rank);
    if (g1 > g0) {
      const idx_t row0 = (i * groups_per_block + g0) * mu_;
      std::memcpy(buf + g0 * group_elems, src + row0 * b_,
                  static_cast<std::size_t>((g1 - g0) * group_elems) *
                      sizeof(cplx));
    }
  };
  stage.compute = [=, this](idx_t, cplx* buf, int rank, int parts) {
    auto [g0, g1] = ThreadTeam::chunk(groups_per_block, parts, rank);
    if (g1 > g0) fft_b_->apply_batch(buf + g0 * group_elems, (g1 - g0) * mu_);
  };
  stage.store = [=, this](idx_t i, const cplx* buf, int rank, int parts) {
    auto [g0, g1] = ThreadTeam::chunk(groups_per_block, parts, rank);
    cplx packet[kMu];
    for (idx_t g = g0; g < g1; ++g) {
      const idx_t row0 = (i * groups_per_block + g) * mu_;
      const cplx* tile = buf + g * group_elems;
      // Output packet for column q is the q-th element of each of the mu
      // rows: an in-cache gather feeding one contiguous NT store at
      // dst[q*a + row0].
      for (idx_t q = 0; q < b_; ++q) {
        for (idx_t l = 0; l < mu_; ++l) packet[l] = tile[l * b_ + q];
        store_packet(dst + q * a_ + row0, packet, mu_, nt);
      }
    }
  };
  pipeline_->execute(stage);
}

void DoubleBuffer1d::execute(cplx* in, cplx* out) {
  BWFFT_CHECK(in != out, "double-buffer 1D is out of place");
  stage1(in);
  stage2(in, out);
  if (dir_ == Direction::Inverse && opts_.normalize_inverse) {
    const double s = 1.0 / static_cast<double>(n_);
    parallel_for_chunks(*team_, n_, [&](int, idx_t lo, idx_t hi) {
      for (idx_t i = lo; i < hi; ++i) out[i] *= s;
    });
  }
}

}  // namespace bwfft
