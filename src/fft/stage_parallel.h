// Transpose-based row–column engine (the "MKL/FFTW-like" comparator).
//
// Each stage reads every row once, transforms it with the unit-stride
// batch kernel, and immediately scatters its cacheline packets through the
// blocked rotation to the destination array (temporal stores). Good
// kernels, good per-stage access patterns — but every stage is a full
// round trip through main memory with no overlap of data movement and
// computation, which is the structural property (§I, Fig 1) that caps
// MKL/FFTW below 50% of achievable peak.
#pragma once

#include <memory>
#include <vector>

#include "common/aligned.h"
#include "fft/engine.h"
#include "fft/stage.h"
#include "fft1d/fft1d.h"
#include "parallel/team.h"

namespace bwfft {

class StageParallelEngine final : public MdEngine {
 public:
  StageParallelEngine(std::vector<idx_t> dims, Direction dir,
                      const FftOptions& opts);
  void execute(cplx* in, cplx* out) override;
  const char* name() const override { return "stage-parallel"; }

 private:
  void run_stage(int stage_idx, const StageGeometry& g, const Fft1d& fft,
                 cplx* src, cplx* dst);

  std::vector<idx_t> dims_;
  Direction dir_;
  FftOptions opts_;
  std::vector<StageGeometry> stages_;
  std::vector<std::shared_ptr<Fft1d>> ffts_;  // per stage
  std::shared_ptr<ThreadTeam> team_;  // pooled or private (FftOptions::team_pool)
  // 2D needs an intermediate so the result lands in `out` (huge-page
  // preferred; degrades to plain aligned memory).
  AlignedBuffer<cplx> work_;
  idx_t total_ = 1;
};

}  // namespace bwfft
