// Double-buffered large 1D FFT — the paper's future-work direction.
//
// §V leaves open "other methods of separating data movement from
// computation for cases where the size of the 1D FFT is equal or greater
// than the size of the shared buffer". The four-step implementation that
// provides that method lives in fft1d/large.h (Fft1dLarge), where it
// also serves non-power-of-two factorizations and the tuner's
// factorization axis; this class is the original power-of-two entry
// point, kept as a thin delegate so the §V ablation benches and the 2D
// large-row reduction keep their narrow pow2 contract.
#pragma once

#include <memory>

#include "fft/options.h"
#include "fft1d/large.h"

namespace bwfft {

class DoubleBuffer1d {
 public:
  /// n must be a power of two >= 16; the split n = a*b honours
  /// opts.factor_n1 (0 = near-square with mu | a,b).
  DoubleBuffer1d(idx_t n, Direction dir, const FftOptions& opts = {});

  idx_t size() const { return impl_->size(); }
  idx_t factor_a() const { return impl_->factor_n1(); }
  idx_t factor_b() const { return impl_->factor_n2(); }

  /// Out-of-place transform (in != out); `in` is used as scratch.
  void execute(cplx* in, cplx* out) { impl_->execute(in, out); }

 private:
  std::unique_ptr<Fft1dLarge> impl_;
};

}  // namespace bwfft
