// Double-buffered large 1D FFT — the paper's future-work direction.
//
// §V leaves open "other methods of separating data movement from
// computation for cases where the size of the 1D FFT is equal or greater
// than the size of the shared buffer". This engine provides that method:
// a four-step decomposition
//
//   DFT_{ab} = L_b^{ab} (I_a (x) DFT_b) D_b^{ab} (DFT_a (x) I_b)
//
// run as two tiled, software-pipelined stages through the same
// cache-resident double buffer as the multidimensional engines:
//
//   stage 1  (DFT_a (x) I_b), D:  column groups of mu lanes are gathered
//            at cacheline granularity (reads and writes at stride b but
//            always whole packets), transformed with the lanes kernel,
//            scaled by the twiddle diagonal *while cached*, and streamed
//            back non-temporally;
//   stage 2  (I_a (x) DFT_b), L:  contiguous rows are streamed in,
//            transformed, and scattered through the final stride
//            permutation with in-cache packet transposes feeding
//            contiguous non-temporal stores.
//
// Both stages use the Table II pipeline, so a 1D transform larger than
// the LLC streams exactly twice through DRAM with all reshaping hidden
// behind compute — the 2D large-row case reduces to this per row batch.
#pragma once

#include <memory>

#include "common/aligned.h"
#include "fft/options.h"
#include "fft1d/fft1d.h"
#include "parallel/roles.h"
#include "parallel/team.h"
#include "pipeline/pipeline.h"

namespace bwfft {

class DoubleBuffer1d {
 public:
  /// n must be a power of two with n >= 4 cachelines (n >= 64 in
  /// practice); the split n = a*b is chosen near-square with mu | a,b.
  DoubleBuffer1d(idx_t n, Direction dir, const FftOptions& opts = {});

  idx_t size() const { return n_; }
  idx_t factor_a() const { return a_; }
  idx_t factor_b() const { return b_; }

  /// Out-of-place transform (in != out); `in` is used as scratch.
  void execute(cplx* in, cplx* out);

 private:
  void stage1(cplx* data);              // in place on `in`
  void stage2(const cplx* src, cplx* dst);

  idx_t n_, a_, b_, mu_;
  Direction dir_;
  FftOptions opts_;
  std::shared_ptr<Fft1d> fft_a_, fft_b_;
  std::shared_ptr<ThreadTeam> team_;  // pooled or private (FftOptions::team_pool)
  RolePlan roles_;
  std::unique_ptr<DoubleBufferPipeline> pipeline_;
  cvec col_roots_;  // w_N^q for q < b: stage-1 twiddle column generators
};

}  // namespace bwfft
