#include "fft/stage_parallel.h"

#include "common/error.h"
#include "layout/rotate.h"
#include "obs/obs.h"
#include "parallel/team_pool.h"

namespace bwfft {

namespace {
[[maybe_unused]] constexpr const char* kStageNames[3] = {"stage-0", "stage-1",
                                                         "stage-2"};
}  // namespace

StageParallelEngine::StageParallelEngine(std::vector<idx_t> dims,
                                         Direction dir,
                                         const FftOptions& opts)
    : dims_(std::move(dims)), dir_(dir), opts_(opts) {
  BWFFT_CHECK(dims_.size() == 2 || dims_.size() == 3,
              "stage-parallel engine supports 2D and 3D");
  for (idx_t d : dims_) total_ *= d;
  if (dims_.size() == 2) {
    const idx_t mu = resolve_packet_size(opts_.packet_elems, dims_[1]);
    auto s = make_2d_stages(dims_[0], dims_[1], mu);
    stages_.assign(s.begin(), s.end());
    work_ = AlignedBuffer<cplx>(static_cast<std::size_t>(total_),
                                AllocPlacement::HugePage);
  } else {
    const idx_t mu = resolve_packet_size(opts_.packet_elems, dims_[2]);
    auto s = make_3d_stages(dims_[0], dims_[1], dims_[2], mu);
    stages_.assign(s.begin(), s.end());
  }
  for (const auto& g : stages_) {
    ffts_.push_back(std::make_shared<Fft1d>(g.fft_len, dir_, opts_.isa));
  }
  const int p = opts_.threads > 0 ? opts_.threads : opts_.topo.total_threads();
  team_ = parallel::make_team(p, {}, opts_.team_pool);
}

void StageParallelEngine::run_stage([[maybe_unused]] int stage_idx,
                                    const StageGeometry& g, const Fft1d& fft,
                                    cplx* src, cplx* dst) {
  const idx_t row_elems = g.row_elems();
  BWFFT_OBS_SCOPE(obs_stage, kStageNames[stage_idx % 3], 'G', g.rows());
  BWFFT_OBS_COUNT(BytesLoaded, g.rows() * row_elems * sizeof(cplx));
  BWFFT_OBS_COUNT(BytesStored, g.rows() * row_elems * sizeof(cplx));
  parallel_for_chunks(*team_, g.rows(), [&](int, idx_t b, idx_t e) {
    for (idx_t r = b; r < e; ++r) {
      cplx* row = src + r * row_elems;
      fft.apply_lanes(row, g.lanes, 1);
      // Temporal scatter: the classic algorithm does not know the packets
      // will not be reused, so it pays the cache pollution.
      rotate_store_rows(row, dst, r, 1, g.a, g.b, g.cp(), g.mu,
                        /*nontemporal=*/false);
    }
  });
}

void StageParallelEngine::execute(cplx* in, cplx* out) {
  BWFFT_CHECK(in != out, "engines are out of place");
  if (dims_.size() == 2) {
    run_stage(0, stages_[0], *ffts_[0], in, work_.data());
    run_stage(1, stages_[1], *ffts_[1], work_.data(), out);
  } else {
    run_stage(0, stages_[0], *ffts_[0], in, out);
    run_stage(1, stages_[1], *ffts_[1], out, in);
    run_stage(2, stages_[2], *ffts_[2], in, out);
  }
  if (dir_ == Direction::Inverse && opts_.normalize_inverse) {
    const double s = 1.0 / static_cast<double>(total_);
    parallel_for_chunks(*team_, total_, [&](int, idx_t b, idx_t e) {
      for (idx_t i = b; i < e; ++i) out[i] *= s;
    });
  }
}

}  // namespace bwfft
