#include "fft/dual_socket.h"

#include <cstring>

#include "common/error.h"
#include "layout/rotate.h"
#include "layout/stream_copy.h"
#include "pipeline/pipeline.h"
#include "parallel/team_pool.h"

namespace bwfft {

DualSocketFft3d::DualSocketFft3d(idx_t k, idx_t n, idx_t m, Direction dir,
                                 const FftOptions& opts, int sockets)
    : k_(k), n_(n), m_(m), dir_(dir), opts_(opts), sk_(sockets) {
  BWFFT_CHECK(sk_ >= 1, "need at least one socket");
  BWFFT_CHECK(k_ % sk_ == 0, "socket count must divide k");
  BWFFT_CHECK(n_ % sk_ == 0, "socket count must divide n");
  ksl_ = k_ / sk_;
  nsl_ = n_ / sk_;
  mu_ = resolve_packet_size(opts_.packet_elems, m_);

  // Per-socket local stage geometry; rows/packets are per-slab. The cross-
  // socket part of W^2/W^3 lives in the store index functions below.
  stages_ = {StageGeometry{ksl_, n_, m_, 1, mu_},
             StageGeometry{m_ / mu_, ksl_, n_, mu_, mu_},
             StageGeometry{nsl_, m_ / mu_, k_, mu_, mu_}};
  for (const auto& g : stages_) {
    ffts_.push_back(std::make_shared<Fft1d>(g.fft_len, dir_, opts_.isa));
  }

  const int p = opts_.threads > 0 ? opts_.threads : opts_.topo.total_threads();
  per_socket_threads_ = std::max(1, p / sk_);
  const int pc = opts_.compute_threads >= 0
                     ? opts_.compute_threads
                     : (per_socket_threads_ <= 1 ? per_socket_threads_
                                                 : per_socket_threads_ / 2);
  socket_roles_ = make_role_plan(per_socket_threads_, pc, opts_.topo);
  team_ = parallel::make_team(per_socket_threads_ * sk_, {},
                               opts_.team_pool);

  // Buffer policy: each socket has its own LLC, so each gets the usual
  // half-LLC double buffer.
  block_elems_ = opts_.block_elems > 0 ? opts_.block_elems
                                       : default_block_elems(opts_.topo);
  for (const auto& g : stages_) {
    block_elems_ = std::max(block_elems_, g.row_elems());
  }
  socket_.resize(static_cast<std::size_t>(sk_));
  for (auto& s : socket_) {
    s.barrier = std::make_unique<SpinBarrier>(per_socket_threads_);
    s.buffer = AlignedBuffer<cplx>(static_cast<std::size_t>(2 * block_elems_),
                                   AllocPlacement::HugePage);
  }
}

void DualSocketFft3d::run_stage(int stage, NumaArray& src, NumaArray& dst) {
  const StageGeometry& g = stages_[static_cast<std::size_t>(stage)];
  const Fft1d& fft = *ffts_[static_cast<std::size_t>(stage)];
  const idx_t row_elems = g.row_elems();
  const idx_t block_rows = rows_per_block(g.rows(), block_elems_ / row_elems);
  const idx_t iters = g.rows() / block_rows;
  const bool nt = opts_.nontemporal;

  // Scatter one buffer row to its rotated destination. `row` is the
  // socket-local row index of the stage grid; `s` the owning socket.
  auto store_row = [&](int s, idx_t row, const cplx* src_row,
                       std::size_t& cross_bytes) {
    switch (stage) {
      case 0: {
        // W^1: local blocked rotation within the slab (Fig 8 stage 1).
        rotate_store_rows(src_row, dst.slab(s), row, 1, g.a, g.b, g.cp(), mu_,
                          nt);
        break;
      }
      case 1: {
        // W^2: local rotation + exchange; packets indexed by y land in the
        // domain owning that y range, reassembling full-z pencils.
        const idx_t xp = row / ksl_;
        const idx_t zl = row % ksl_;
        for (idx_t y = 0; y < n_; ++y) {
          const int dy = static_cast<int>(y / nsl_);
          const idx_t off =
              ((y % nsl_) * (m_ / mu_) + xp) * k_ * mu_ + (s * ksl_ + zl) * mu_;
          store_packet(dst.slab(dy) + off, src_row + y * mu_, mu_, nt);
          if (dy != s) cross_bytes += static_cast<std::size_t>(mu_) * sizeof(cplx);
        }
        break;
      }
      default: {
        // W^3: local rotation + exchange back to the natural order
        // distributed by z.
        const idx_t yl = row / (m_ / mu_);
        const idx_t xp = row % (m_ / mu_);
        const idx_t y = s * nsl_ + yl;
        for (idx_t z = 0; z < k_; ++z) {
          const int dz = static_cast<int>(z / ksl_);
          const idx_t off = ((z % ksl_) * n_ + y) * m_ + xp * mu_;
          store_packet(dst.slab(dz) + off, src_row + z * mu_, mu_, nt);
          if (dz != s) cross_bytes += static_cast<std::size_t>(mu_) * sizeof(cplx);
        }
        break;
      }
    }
  };

  team_->run([&](int tid) {
    const int s = tid / per_socket_threads_;
    const int lt = tid % per_socket_threads_;
    const bool is_compute = socket_roles_.is_compute(lt);
    const int rank = socket_roles_.group_rank(lt);
    SocketState& st = socket_[static_cast<std::size_t>(s)];
    cplx* buf0 = st.buffer.data();
    cplx* buf1 = st.buffer.data() + block_elems_;
    const cplx* local_src = src.slab(s);
    std::size_t cross_bytes = 0;

    auto do_load = [&](idx_t i, cplx* buf, int parts) {
      auto [r0, r1] = ThreadTeam::chunk(block_rows, parts, rank);
      if (r1 > r0) {
        std::memcpy(buf + r0 * row_elems,
                    local_src + (i * block_rows + r0) * row_elems,
                    static_cast<std::size_t>((r1 - r0) * row_elems) *
                        sizeof(cplx));
      }
    };
    auto do_compute = [&](cplx* buf, int parts) {
      auto [r0, r1] = ThreadTeam::chunk(block_rows, parts, rank);
      if (r1 > r0) fft.apply_lanes(buf + r0 * row_elems, g.lanes, r1 - r0);
    };
    auto do_store = [&](idx_t i, const cplx* buf, int parts) {
      auto [r0, r1] = ThreadTeam::chunk(block_rows, parts, rank);
      for (idx_t r = r0; r < r1; ++r) {
        store_row(s, i * block_rows + r, buf + r * row_elems, cross_bytes);
      }
    };

    if (socket_roles_.data == 0) {
      // Single-threaded (or compute-only) socket: sequential per block.
      const int parts = socket_roles_.compute;
      for (idx_t i = 0; i < iters; ++i) {
        cplx* buf = (i % 2 == 0) ? buf0 : buf1;
        do_load(i, buf, parts);
        st.barrier->arrive_and_wait();
        do_compute(buf, parts);
        st.barrier->arrive_and_wait();
        do_store(i, buf, parts);
        st.barrier->arrive_and_wait();
      }
    } else {
      // Table II within the socket.
      for (idx_t step = 0; step < iters + 2; ++step) {
        cplx* stepbuf = (step % 2 == 0) ? buf0 : buf1;
        if (!is_compute) {
          if (step >= 2) do_store(step - 2, stepbuf, socket_roles_.data);
          if (step < iters) do_load(step, stepbuf, socket_roles_.data);
          stream_fence();
        } else if (step >= 1 && step <= iters) {
          cplx* other = (step % 2 == 0) ? buf1 : buf0;
          do_compute(other, socket_roles_.compute);
        }
        st.barrier->arrive_and_wait();
      }
    }
    if (cross_bytes > 0) traffic_.record_write(cross_bytes);
  });
}

void DualSocketFft3d::execute_distributed(NumaArray& x, NumaArray& y) {
  BWFFT_CHECK(x.domains() == sk_ && y.domains() == sk_,
              "array domain count mismatch");
  BWFFT_CHECK(x.total_elems() == size() && y.total_elems() == size(),
              "array size mismatch");
  traffic_.reset();
  run_stage(0, x, y);  // local writes
  run_stage(1, y, x);  // exchange: full-z pencils distributed by y
  run_stage(2, x, y);  // exchange: natural order distributed by z
  if (dir_ == Direction::Inverse && opts_.normalize_inverse) {
    const double sc = 1.0 / static_cast<double>(size());
    for (int d = 0; d < sk_; ++d) {
      cplx* slab = y.slab(d);
      for (idx_t i = 0; i < y.elems_per_domain(); ++i) slab[i] *= sc;
    }
  }
}

void DualSocketFft3d::execute(cplx* in, cplx* out) {
  NumaArray x(sk_, size() / sk_), y(sk_, size() / sk_);
  for (int d = 0; d < sk_; ++d) {
    std::memcpy(x.slab(d), in + d * (size() / sk_),
                static_cast<std::size_t>(size() / sk_) * sizeof(cplx));
  }
  execute_distributed(x, y);
  for (int d = 0; d < sk_; ++d) {
    std::memcpy(out + d * (size() / sk_), y.slab(d),
                static_cast<std::size_t>(size() / sk_) * sizeof(cplx));
  }
}

}  // namespace bwfft
