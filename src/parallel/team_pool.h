// Process-wide pool of persistent thread teams.
//
// Every engine owns a ThreadTeam, and before this pool existed every plan
// construction spawned (and tore down) a fresh one — so a server building
// many plans paid thread startup per plan and concurrent plans
// oversubscribed the cores with rival teams. The pool keys teams by
// (size, pin list) and hands out shared_ptr<ThreadTeam>: the first
// request spawns the team, every later request with the same shape reuses
// it, and ThreadTeam::run's internal serialisation makes two plans
// sharing one team take turns instead of fighting for cores. Teams stay
// alive for the life of the pool (the point: "teams never respawned"),
// so a cached plan that is evicted and rebuilt re-attaches to the same
// OS threads.
//
// Opt-in: engines draw from the pool only when FftOptions::team_pool is
// set (the exec::BatchExecutor sets it on every plan it builds). The
// default stays per-engine private teams, which keeps the fault-injection
// semantics of spawn-failure tests — a pooled team would absorb the
// injected failure on reuse.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_safety.h"
#include "parallel/team.h"

namespace bwfft::parallel {

class TeamPool {
 public:
  struct Stats {
    std::uint64_t spawned = 0;  ///< teams created (cold acquires)
    std::uint64_t reused = 0;   ///< acquires served by an existing team
    std::size_t teams = 0;      ///< live teams held by the pool
  };

  /// The pooled team for (nthreads, pin_cpus), spawning it on first use.
  /// Throws what ThreadTeam's constructor throws (kWorkerLost on spawn
  /// failure) — nothing is cached on failure, so a later acquire retries.
  std::shared_ptr<ThreadTeam> acquire(int nthreads,
                                      std::vector<int> pin_cpus = {});

  Stats stats() const;

  /// Drop every pooled team (teams still referenced by live engines stay
  /// alive until those engines release them). Test hook.
  void clear();

  /// Process-wide pool used by callers that do not manage their own.
  static TeamPool& global();

 private:
  static std::string key_of(int nthreads, const std::vector<int>& pin_cpus);

  mutable Mutex mu_;
  /// Team construction happens OUTSIDE mu_ (spawn blocks on thread
  /// startup); only the map insert/lookup and the counters hold it.
  std::map<std::string, std::shared_ptr<ThreadTeam>> teams_
      BWFFT_GUARDED_BY(mu_);
  Stats stats_ BWFFT_GUARDED_BY(mu_);
};

/// Engine-side team factory: a pooled team from TeamPool::global() when
/// `pooled`, a private one otherwise.
std::shared_ptr<ThreadTeam> make_team(int nthreads, std::vector<int> pin_cpus,
                                      bool pooled);

}  // namespace bwfft::parallel
