#include "parallel/team_pool.h"

#include "obs/obs.h"

namespace bwfft::parallel {

std::string TeamPool::key_of(int nthreads, const std::vector<int>& pin_cpus) {
  std::string k = "p" + std::to_string(nthreads);
  for (int c : pin_cpus) k += ":" + std::to_string(c);
  return k;
}

std::shared_ptr<ThreadTeam> TeamPool::acquire(int nthreads,
                                              std::vector<int> pin_cpus) {
  const std::string key = key_of(nthreads, pin_cpus);
  {
    MutexLock lk(mu_);
    auto it = teams_.find(key);
    if (it != teams_.end()) {
      ++stats_.reused;
      BWFFT_OBS_COUNT(TeamReuse, 1);
      return it->second;
    }
  }
  // Spawn outside the lock: team construction blocks on thread startup
  // (and may throw through an injected spawn fault), and other keys
  // should not wait behind it. A racing acquire of the same key may
  // spawn a duplicate; the loser's team is discarded below and tears
  // itself down — rare, and correct.
  auto team = std::make_shared<ThreadTeam>(nthreads, std::move(pin_cpus));
  MutexLock lk(mu_);
  auto [it, inserted] = teams_.emplace(key, team);
  if (!inserted) {
    ++stats_.reused;
    BWFFT_OBS_COUNT(TeamReuse, 1);
    return it->second;
  }
  ++stats_.spawned;
  stats_.teams = teams_.size();
  BWFFT_OBS_COUNT(TeamSpawn, 1);
  return team;
}

TeamPool::Stats TeamPool::stats() const {
  MutexLock lk(mu_);
  return stats_;
}

void TeamPool::clear() {
  std::map<std::string, std::shared_ptr<ThreadTeam>> doomed;
  {
    MutexLock lk(mu_);
    doomed.swap(teams_);
    stats_.teams = 0;
  }
  // Teams join their workers in ~ThreadTeam outside the pool lock.
}

TeamPool& TeamPool::global() {
  static TeamPool* pool = new TeamPool;  // leaked: usable at exit
  return *pool;
}

std::shared_ptr<ThreadTeam> make_team(int nthreads, std::vector<int> pin_cpus,
                                      bool pooled) {
  if (pooled) return TeamPool::global().acquire(nthreads, std::move(pin_cpus));
  return std::make_shared<ThreadTeam>(nthreads, std::move(pin_cpus));
}

}  // namespace bwfft::parallel
