#include "parallel/affinity.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

#include "fault/fault.h"

namespace bwfft {

bool pin_current_thread(int cpu) {
  // Fault site "pin": simulate the container / cpuset EINVAL the paper's
  // affinity scheme hits on restricted hosts. Callers must treat a false
  // return as "run unpinned", never as fatal.
  if (BWFFT_FAULT_POINT(fault::kSitePin)) return false;
#if defined(__linux__)
  const long ncpus = sysconf(_SC_NPROCESSORS_ONLN);
  if (cpu < 0 || cpu >= ncpus) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

bool unpin_current_thread() {
#if defined(__linux__)
  const long ncpus = sysconf(_SC_NPROCESSORS_ONLN);
  cpu_set_t set;
  CPU_ZERO(&set);
  for (long c = 0; c < ncpus; ++c) CPU_SET(static_cast<int>(c), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace bwfft
