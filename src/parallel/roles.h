// Thread role assignment — compute threads vs soft-DMA data threads.
//
// §III-C / §IV-A: of the p threads, p_d move data and p_c compute
// (p = p_c + p_d, default an even split), and each data thread is paired
// with a compute thread on the same physical core so the two share
// functional units while issuing complementary instruction mixes. This
// module computes the role of every team thread and the logical CPU it
// should be pinned to for a given machine topology.
#pragma once

#include <vector>

#include "common/error.h"
#include "common/topology.h"
#include "common/types.h"

namespace bwfft {

enum class Role { Compute, Data };

struct RolePlan {
  int total = 0;           ///< team size p
  int compute = 0;         ///< p_c
  int data = 0;            ///< p_d
  std::vector<Role> role;  ///< role of each tid
  std::vector<int> index;  ///< rank within its role group (0..p_c-1 / 0..p_d-1)
  std::vector<int> cpu;    ///< suggested logical CPU per tid (-1 = unpinned)

  Role role_of(int tid) const { return role[static_cast<std::size_t>(tid)]; }
  bool is_compute(int tid) const { return role_of(tid) == Role::Compute; }
  /// Rank of tid within its role group.
  int group_rank(int tid) const { return index[static_cast<std::size_t>(tid)]; }
};

/// Build a role plan for `total` threads with `compute` of them computing
/// (the rest move data). Thread 2i is the compute thread and 2i+1 the data
/// thread of pair i while both groups last; leftovers are appended. CPU
/// suggestions pair pairs onto cores: on SMT machines (smt_per_core = 2)
/// the two hyperthreads of core i are 2i and 2i+1 under the usual Linux
/// enumeration, so pair i maps to CPUs {2i, 2i+1}; on non-SMT machines the
/// two threads of a pair share core i (both pinned to CPU i), matching the
/// paper's AMD configuration where threads time-share the core's units.
RolePlan make_role_plan(int total, int compute, const MachineTopology& topo);

/// Even split per the paper's default: half compute, half data. For
/// total == 1 the single thread computes and moves data sequentially.
inline RolePlan make_even_role_plan(int total, const MachineTopology& topo) {
  return make_role_plan(total, total <= 1 ? total : total / 2, topo);
}

}  // namespace bwfft
