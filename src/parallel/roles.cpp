#include "parallel/roles.h"

namespace bwfft {

RolePlan make_role_plan(int total, int compute, const MachineTopology& topo) {
  BWFFT_CHECK(total >= 1, "role plan needs >= 1 thread");
  BWFFT_CHECK(compute >= 0 && compute <= total,
              "compute thread count out of range");
  RolePlan plan;
  plan.total = total;
  plan.compute = compute;
  plan.data = total - compute;
  // Degenerate single-role teams: every thread does everything it is given;
  // a team with no data threads still works because the pipeline executor
  // falls back to compute threads doing their own loads/stores.
  plan.role.resize(static_cast<std::size_t>(total));
  plan.index.resize(static_cast<std::size_t>(total));
  plan.cpu.assign(static_cast<std::size_t>(total), -1);

  int next_compute = 0, next_data = 0;
  for (int tid = 0; tid < total; ++tid) {
    const bool pick_compute =
        (tid % 2 == 0 && next_compute < compute) || next_data >= plan.data;
    if (pick_compute) {
      plan.role[static_cast<std::size_t>(tid)] = Role::Compute;
      plan.index[static_cast<std::size_t>(tid)] = next_compute++;
    } else {
      plan.role[static_cast<std::size_t>(tid)] = Role::Data;
      plan.index[static_cast<std::size_t>(tid)] = next_data++;
    }
  }

  // CPU suggestions: pair 2i/2i+1 shares a core. With SMT the pair gets
  // the core's two hyperthreads; without SMT both land on the core itself.
  const int ncpus = topo.total_threads();
  for (int tid = 0; tid < total; ++tid) {
    int cpu;
    if (topo.smt_per_core >= 2) {
      cpu = tid;  // Linux enumerates hyperthread siblings adjacently
    } else {
      cpu = tid / 2;  // pair shares the physical core
    }
    if (cpu < ncpus) plan.cpu[static_cast<std::size_t>(tid)] = cpu;
  }
  return plan;
}

}  // namespace bwfft
