// Thread-to-core pinning.
//
// The paper pins one data thread and one compute thread to the two
// hardware threads of each core so they share the functional units while
// issuing disjoint instruction mixes (§IV-A). Pinning is best-effort: on
// machines with fewer CPUs than the modelled topology (or in containers
// that forbid affinity changes) the call fails gracefully and the team
// keeps running unpinned.
#pragma once

namespace bwfft {

/// Pin the calling thread to the given logical CPU; false if unsupported
/// or the CPU does not exist.
bool pin_current_thread(int cpu);

/// Remove any pinning from the calling thread (affinity = all CPUs).
bool unpin_current_thread();

}  // namespace bwfft
