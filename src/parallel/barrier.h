// Centralised generation-counting spin barrier.
//
// The paper synchronises its compute and data threads with barriers at
// every software-pipeline step (#pragma omp barrier in their template).
// This barrier spins briefly (the common case: all threads arrive within a
// pipeline iteration) and then yields, so it also behaves well when the
// team is oversubscribed on fewer physical cores.
#pragma once

#include <atomic>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

#include "common/error.h"

namespace bwfft {

inline void cpu_pause() {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) : parties_(parties) {
    BWFFT_CHECK(parties >= 1, "barrier needs >= 1 party");
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block until all parties have arrived. Safe for repeated use: a
  /// generation counter distinguishes consecutive phases.
  void arrive_and_wait() {
    const unsigned gen = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_release);
      return;
    }
    int spins = 0;
    while (gen_.load(std::memory_order_acquire) == gen) {
      if (++spins < 1024) {
        cpu_pause();
      } else {
        std::this_thread::yield();
      }
    }
  }

  int parties() const { return parties_; }

 private:
  const int parties_;
  std::atomic<int> count_{0};
  std::atomic<unsigned> gen_{0};
};

}  // namespace bwfft
