// Centralised generation-counting spin barrier.
//
// The paper synchronises its compute and data threads with barriers at
// every software-pipeline step (#pragma omp barrier in their template).
// This barrier spins briefly (the common case: all threads arrive within a
// pipeline iteration) and then yields, so it also behaves well when the
// team is oversubscribed on fewer physical cores.
//
// Deadlock aid: a stalled barrier (some party never arrives) normally
// hangs forever with zero diagnostics. When a stall timeout is armed, a
// waiter that exceeds it throws bwfft::Error naming how many of the
// expected parties arrived and at which generation — enough to tell a lost
// thread from a miscounted team. The timeout is armed by default in
// checked builds (BWFFT_CHECKED, 30 s) and off in release builds; the
// BWFFT_BARRIER_STALL_MS environment variable overrides either way
// (0 disables). The deadline is only consulted on the slow (yielding)
// path, so an armed timeout costs nothing while the barrier is healthy.
//
// Lock discipline (checked by the clang -Wthread-safety CI legs via
// src/common/thread_safety.h): SpinBarrier holds no capability at all —
// every member is an atomic with explicit ordering, and the only
// happens-before edges it provides are the acquire/release pairs on
// gen_/count_/aborted_. Code that needs mutual exclusion must bring its
// own annotated bwfft::Mutex; the barrier only rendezvouses.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

#include "common/error.h"
#include "fault/fault.h"

namespace bwfft {

inline void cpu_pause() {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

class SpinBarrier {
 public:
  explicit SpinBarrier(int parties)
      : parties_(parties), stall_timeout_ms_(default_stall_timeout_ms()) {
    BWFFT_CHECK(parties >= 1, "barrier needs >= 1 party");
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block until all parties have arrived. Safe for repeated use: a
  /// generation counter distinguishes consecutive phases. With a stall
  /// timeout armed, throws bwfft::Error after waiting that long. An
  /// aborted barrier (see abort()) throws immediately instead of waiting
  /// for a party that will never arrive.
  void arrive_and_wait() {
#if defined(BWFFT_FAULT)
    // Straggler injector: the fault plan can delay an arrival (spec
    // "barrier.stall=<ms>"), turning this thread into the lost party the
    // stall timeout diagnoses. The delay happens BEFORE arriving, so the
    // other waiters see a genuine straggler.
    if (fault::active()) {
      std::int64_t delay_ms = 0;
      if (fault::should_fire_value(fault::kSiteBarrierStall, -1, &delay_ms)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms > 0 ? delay_ms : 1000));
      }
    }
#endif
    if (aborted_.load(std::memory_order_acquire)) report_abort();
    const unsigned gen = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_release);
      return;
    }
    const long timeout_ms = stall_timeout_ms_.load(std::memory_order_relaxed);
    std::chrono::steady_clock::time_point deadline{};
    if (timeout_ms > 0) {
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(timeout_ms);
    }
    int spins = 0;
    unsigned long yields = 0;
    while (gen_.load(std::memory_order_acquire) == gen) {
      if (aborted_.load(std::memory_order_acquire)) report_abort();
      if (++spins < 1024) {
        cpu_pause();
      } else {
        std::this_thread::yield();
        // Check the clock only every 64 yields — the slow path is already
        // off the fast spin, but a syscall-per-yield would still hurt an
        // oversubscribed team.
        if (timeout_ms > 0 && (++yields & 63u) == 0 &&
            std::chrono::steady_clock::now() >= deadline) {
          report_stall(gen, timeout_ms);
        }
      }
    }
  }

  /// Poison the barrier: every current and future waiter throws instead
  /// of blocking. Used when a team thread dies mid-job — without this,
  /// release builds (no stall timeout) deadlock at the next barrier,
  /// waiting for the dead thread. The abort sticks until reset_abort().
  void abort() { aborted_.store(true, std::memory_order_release); }
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Re-arm an aborted barrier for reuse. Only safe once every thread
  /// has drained (no waiter inside arrive_and_wait) — ThreadTeam::run
  /// calls it after all workers finished the failed job.
  void reset_abort() {
    count_.store(0, std::memory_order_relaxed);
    aborted_.store(false, std::memory_order_release);
  }

  int parties() const { return parties_; }

  /// Arm (ms > 0) or disarm (ms == 0) the stall timeout for this barrier.
  void set_stall_timeout_ms(long ms) {
    stall_timeout_ms_.store(ms, std::memory_order_relaxed);
  }
  long stall_timeout_ms() const {
    return stall_timeout_ms_.load(std::memory_order_relaxed);
  }

  /// Process-wide default: BWFFT_BARRIER_STALL_MS if set (0 disables),
  /// else 30 s in checked builds and disabled in release builds.
  static long default_stall_timeout_ms() {
    static const long ms = [] {
      if (const char* e = std::getenv("BWFFT_BARRIER_STALL_MS")) {
        return std::atol(e);
      }
#ifdef BWFFT_CHECKED
      return 30000L;
#else
      return 0L;
#endif
    }();
    return ms;
  }

 private:
  [[noreturn]] void report_abort() const {
    ::bwfft::detail::throw_error(
        __FILE__, __LINE__,
        "SpinBarrier aborted: a team thread failed; draining waiters",
        ErrorCode::kWorkerLost);
  }

  [[noreturn]] void report_stall(unsigned gen, long timeout_ms) const {
    // count_ is a live value; by the time we throw it can only grow (or be
    // reset by a release that would also have bumped gen_, ending the
    // wait), so it faithfully bounds how many parties made it here.
    const int arrived = count_.load(std::memory_order_acquire);
    ::bwfft::detail::throw_error(
        __FILE__, __LINE__,
        "SpinBarrier stall: only " + std::to_string(arrived) + " of " +
            std::to_string(parties_) + " parties arrived at generation " +
            std::to_string(gen) + " after " + std::to_string(timeout_ms) +
            " ms — a team thread is lost or deadlocked",
        ErrorCode::kStall);
  }

  const int parties_;
  std::atomic<int> count_{0};
  std::atomic<unsigned> gen_{0};
  std::atomic<bool> aborted_{false};
  std::atomic<long> stall_timeout_ms_;
};

}  // namespace bwfft
