// NUMA-domain memory model (§IV-B, Fig 7).
//
// Each socket owns private main memory; local accesses run at the socket's
// DRAM bandwidth while remote accesses cross the QPI/HT link. On a real
// two-socket system the per-domain buffers would come from
// numa_alloc_onnode and the threads' first touch; on a single-domain
// machine (this reproduction's default) the domains are separate aligned
// allocations and the link is *accounted* rather than physically slower:
// every cross-domain write is recorded so the benchmark harness can apply
// the link-bandwidth term of the paper's roofline model (their Fig 10
// "cumulative bandwidth" analysis) without fabricating latency.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/error.h"
#include "common/types.h"

namespace bwfft {

/// A distributed array: one contiguous slab per NUMA domain.
class NumaArray {
 public:
  /// `domains` slabs of `elems_per_domain` complex elements each.
  NumaArray(int domains, idx_t elems_per_domain)
      : elems_per_domain_(elems_per_domain) {
    BWFFT_CHECK(domains >= 1 && elems_per_domain >= 0, "bad NUMA array shape");
    slabs_.reserve(static_cast<std::size_t>(domains));
    for (int d = 0; d < domains; ++d) {
      // NUMA-local preference with graceful fallback (fault site
      // "alloc.numa"): on a real two-socket host the owning domain's
      // threads first-touch their slab; on failure the slab degrades to
      // plain aligned memory and only the bandwidth model is off.
      slabs_.emplace_back(static_cast<std::size_t>(elems_per_domain),
                          AllocPlacement::NumaLocal);
    }
  }

  int domains() const { return static_cast<int>(slabs_.size()); }
  idx_t elems_per_domain() const { return elems_per_domain_; }
  idx_t total_elems() const { return elems_per_domain_ * domains(); }

  cplx* slab(int d) { return slabs_[static_cast<std::size_t>(d)].data(); }
  const cplx* slab(int d) const {
    return slabs_[static_cast<std::size_t>(d)].data();
  }

  /// Pointer to global element g; the array is the concatenation of slabs.
  cplx* at(idx_t g) {
    return slab(static_cast<int>(g / elems_per_domain_)) +
           g % elems_per_domain_;
  }

  /// Gather the distributed array into one contiguous vector (tests/IO).
  cvec to_contiguous() const {
    cvec out(static_cast<std::size_t>(total_elems()));
    for (int d = 0; d < domains(); ++d) {
      std::copy(slab(d), slab(d) + elems_per_domain_,
                out.begin() + static_cast<std::ptrdiff_t>(d) * elems_per_domain_);
    }
    return out;
  }

  /// Scatter a contiguous vector into the slabs.
  void from_contiguous(const cvec& in) {
    BWFFT_CHECK(static_cast<idx_t>(in.size()) == total_elems(),
                "size mismatch in from_contiguous");
    for (int d = 0; d < domains(); ++d) {
      std::copy(in.begin() + static_cast<std::ptrdiff_t>(d) * elems_per_domain_,
                in.begin() + static_cast<std::ptrdiff_t>(d + 1) * elems_per_domain_,
                slab(d));
    }
  }

 private:
  idx_t elems_per_domain_;
  std::vector<AlignedBuffer<cplx>> slabs_;
};

/// Cross-socket traffic accounting for the QPI/HT link model.
class LinkTraffic {
 public:
  void record_write(std::size_t bytes) {
    write_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void record_read(std::size_t bytes) {
    read_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void reset() {
    write_bytes_.store(0);
    read_bytes_.store(0);
  }
  std::size_t write_bytes() const { return write_bytes_.load(); }
  std::size_t read_bytes() const { return read_bytes_.load(); }

  /// Seconds the recorded traffic needs at the given link bandwidth —
  /// the penalty term of the paper's Fig 10 analysis.
  double modeled_seconds(double link_bw_gbs) const {
    if (link_bw_gbs <= 0.0) return 0.0;
    return static_cast<double>(write_bytes() + read_bytes()) /
           (link_bw_gbs * 1e9);
  }

 private:
  std::atomic<std::size_t> write_bytes_{0};
  std::atomic<std::size_t> read_bytes_{0};
};

}  // namespace bwfft
