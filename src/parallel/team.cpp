#include "parallel/team.h"

#include <cstdio>
#include <string>
#include <system_error>

#include "common/error.h"
#include "common/types.h"
#include "fault/fault.h"
#include "parallel/affinity.h"

namespace bwfft {

ThreadTeam::ThreadTeam(int nthreads, std::vector<int> pin_cpus)
    : barrier_(nthreads) {
  BWFFT_CHECK(nthreads >= 1, "team needs >= 1 thread");
  BWFFT_CHECK(pin_cpus.empty() ||
                  static_cast<int>(pin_cpus.size()) == nthreads,
              "pin_cpus must be empty or one entry per thread");
  workers_.reserve(static_cast<std::size_t>(nthreads));
  try {
    for (int t = 0; t < nthreads; ++t) {
      const int cpu =
          pin_cpus.empty() ? -1 : pin_cpus[static_cast<std::size_t>(t)];
      if (BWFFT_FAULT_POINT(fault::kSiteSpawnThread)) {
        throw Error(ErrorCode::kWorkerLost,
                    "injected thread-spawn failure (worker " +
                        std::to_string(t) + " of " +
                        std::to_string(nthreads) + ")");
      }
      workers_.emplace_back([this, t, cpu] { worker_loop(t, cpu); });
    }
  } catch (const Error&) {
    shutdown_spawned();
    throw;
  } catch (const std::system_error& e) {
    // std::thread construction failed (EAGAIN under thread-limit
    // pressure). Surface it through the typed layer so the facade's
    // recovery policy can re-plan with a smaller team.
    shutdown_spawned();
    throw Error(ErrorCode::kWorkerLost,
                std::string("cannot spawn team thread: ") + e.what());
  }

  // When a stall fault is scheduled, make sure the stall watchdog is
  // armed even in release builds (where the default timeout is off) and
  // tight enough to beat checked builds' 30 s default — an injected
  // straggler must surface as kStall promptly, never as a hang.
  if (fault::active() && (fault::site_armed(fault::kSiteBarrierStall) ||
                          fault::site_armed(fault::kSitePipelineStall))) {
    const long ms = barrier_.stall_timeout_ms();
    if (ms == 0 || ms > 250) barrier_.set_stall_timeout_ms(250);
  }
}

/// Shut down and join the workers spawned before a constructor failure;
/// without this the std::thread destructors would call std::terminate.
void ThreadTeam::shutdown_spawned() noexcept {
  {
    MutexLock lk(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

ThreadTeam::~ThreadTeam() {
  {
    MutexLock lk(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadTeam::worker_loop(int tid, int pin_cpu) {
  if (pin_cpu >= 0 && !pin_current_thread(pin_cpu)) {
    // Degradation policy: an unpinnable thread runs unpinned. One
    // process-wide warning (not one per thread) tells the operator the
    // paper's pairing is off; pin_failures() exposes the count.
    pin_failures_.fetch_add(1, std::memory_order_relaxed);
    fault::note_degrade("affinity pin rejected; thread runs unpinned");
    static std::once_flag warn_once;
    std::call_once(warn_once, [] {
      std::fprintf(stderr,
                   "bwfft: warning: thread pinning unavailable; "
                   "team runs unpinned (soft-DMA pairing degraded)\n");
    });
  }
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      MutexLock lk(mu_);
      while (!shutdown_ && epoch_ == seen_epoch) cv_start_.wait(mu_);
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    try {
      (*job)(tid);
    } catch (...) {
      {
        MutexLock lk(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      // Poison the team barrier AFTER recording the error: teammates
      // blocked at arrive_and_wait drain by throwing the abort diagnosis,
      // and since they observe the abort only after this thread's error
      // is recorded, first_error_ keeps the original exception. Without
      // this, a throwing job left its teammates waiting forever for a
      // party that would never arrive (release builds have no stall
      // timeout).
      barrier_.abort();
    }
    {
      MutexLock lk(mu_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadTeam::run(const std::function<void(int)>& f) {
  // One job at a time: a second caller parks here until the first job's
  // workers have all finished (mu_ alone cannot give that guarantee — it
  // is released inside the cv_done_ wait while workers still run).
  MutexLock run_lk(run_mu_);
  std::exception_ptr err;
  {
    MutexLock lk(mu_);
    job_ = &f;
    remaining_ = size();
    first_error_ = nullptr;
    ++epoch_;
    cv_start_.notify_all();
    while (remaining_ != 0) cv_done_.wait(mu_);
    job_ = nullptr;
    err = first_error_;
  }
  // All workers are idle again (remaining_ hit 0), so an aborted barrier
  // can be re-armed for the next run; stragglers may have left a partial
  // arrival count behind.
  if (barrier_.aborted()) barrier_.reset_abort();
  if (err) std::rethrow_exception(err);
}

std::pair<idx_t, idx_t> ThreadTeam::chunk(idx_t total, int parts, int which) {
  const idx_t base = total / parts;
  const idx_t extra = total % parts;
  const idx_t begin = which * base + std::min<idx_t>(which, extra);
  const idx_t len = base + (which < extra ? 1 : 0);
  return {begin, begin + len};
}

void parallel_for_chunks(ThreadTeam& team, idx_t total,
                         const std::function<void(int, idx_t, idx_t)>& f) {
  team.run([&](int tid) {
    auto [b, e] = ThreadTeam::chunk(total, team.size(), tid);
    f(tid, b, e);
  });
}

}  // namespace bwfft
