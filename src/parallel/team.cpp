#include "parallel/team.h"

#include "common/error.h"
#include "common/types.h"
#include "parallel/affinity.h"

namespace bwfft {

ThreadTeam::ThreadTeam(int nthreads, std::vector<int> pin_cpus)
    : barrier_(nthreads) {
  BWFFT_CHECK(nthreads >= 1, "team needs >= 1 thread");
  BWFFT_CHECK(pin_cpus.empty() ||
                  static_cast<int>(pin_cpus.size()) == nthreads,
              "pin_cpus must be empty or one entry per thread");
  workers_.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    const int cpu = pin_cpus.empty() ? -1 : pin_cpus[static_cast<std::size_t>(t)];
    workers_.emplace_back([this, t, cpu] { worker_loop(t, cpu); });
  }
}

ThreadTeam::~ThreadTeam() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadTeam::worker_loop(int tid, int pin_cpu) {
  if (pin_cpu >= 0) pin_current_thread(pin_cpu);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    try {
      (*job)(tid);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      // Poison the team barrier AFTER recording the error: teammates
      // blocked at arrive_and_wait drain by throwing the abort diagnosis,
      // and since they observe the abort only after this thread's error
      // is recorded, first_error_ keeps the original exception. Without
      // this, a throwing job left its teammates waiting forever for a
      // party that would never arrive (release builds have no stall
      // timeout).
      barrier_.abort();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadTeam::run(const std::function<void(int)>& f) {
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    job_ = &f;
    remaining_ = size();
    first_error_ = nullptr;
    ++epoch_;
    cv_start_.notify_all();
    cv_done_.wait(lk, [&] { return remaining_ == 0; });
    job_ = nullptr;
    err = first_error_;
  }
  // All workers are idle again (remaining_ hit 0), so an aborted barrier
  // can be re-armed for the next run; stragglers may have left a partial
  // arrival count behind.
  if (barrier_.aborted()) barrier_.reset_abort();
  if (err) std::rethrow_exception(err);
}

std::pair<idx_t, idx_t> ThreadTeam::chunk(idx_t total, int parts, int which) {
  const idx_t base = total / parts;
  const idx_t extra = total % parts;
  const idx_t begin = which * base + std::min<idx_t>(which, extra);
  const idx_t len = base + (which < extra ? 1 : 0);
  return {begin, begin + len};
}

void parallel_for_chunks(ThreadTeam& team, idx_t total,
                         const std::function<void(int, idx_t, idx_t)>& f) {
  team.run([&](int tid) {
    auto [b, e] = ThreadTeam::chunk(total, team.size(), tid);
    f(tid, b, e);
  });
}

}  // namespace bwfft
