// Persistent SPMD thread team — the parallel-region substrate.
//
// Mirrors the paper's use of `#pragma omp parallel`: a fixed team of
// threads executes the same function, branching on the thread id to decide
// whether it is a compute thread or a soft-DMA data thread, and meeting at
// team barriers between pipeline steps. Threads are created once and
// reused across invocations; each may be pinned to a logical CPU.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_safety.h"
#include "common/types.h"
#include "parallel/barrier.h"

namespace bwfft {

class ThreadTeam {
 public:
  /// Create `nthreads` workers. `pin_cpus`, if non-empty, gives the logical
  /// CPU for each worker (best effort: a failed pin leaves that worker
  /// unpinned, counted in pin_failures(), with a one-time process
  /// warning). Throws bwfft::Error(kWorkerLost) when a worker cannot be
  /// spawned — already-spawned workers are shut down and joined first, so
  /// a failed construction never leaks threads.
  explicit ThreadTeam(int nthreads, std::vector<int> pin_cpus = {});
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Execute f(tid) on every worker, tid in [0, size()); blocks the caller
  /// until all workers finish. Exceptions thrown inside f are rethrown on
  /// the calling thread (first one wins). A throwing worker aborts the
  /// team barrier so teammates blocked in arrive_and_wait drain (by
  /// throwing) instead of deadlocking; the team stays usable afterwards.
  ///
  /// Safe to call from multiple caller threads: concurrent run() calls
  /// serialise on an internal mutex, so a team shared through the
  /// parallel::TeamPool executes one job at a time instead of
  /// oversubscribing its workers with interleaved jobs.
  void run(const std::function<void(int)>& f);

  /// Team-wide barrier usable inside run() bodies.
  SpinBarrier& barrier() { return barrier_; }

  /// Workers whose affinity pin was rejected and who run unpinned (the
  /// graceful-degradation path of a failed pthread_setaffinity_np).
  int pin_failures() const {
    return pin_failures_.load(std::memory_order_relaxed);
  }

  /// Split [0, total) into size() near-equal chunks; returns [begin,end)
  /// for this tid. Chunks differ in size by at most one.
  static std::pair<idx_t, idx_t> chunk(idx_t total, int parts, int which);

 private:
  void worker_loop(int tid, int pin_cpu);
  void shutdown_spawned() noexcept;

  std::vector<std::thread> workers_;
  SpinBarrier barrier_;
  std::atomic<int> pin_failures_{0};

  Mutex run_mu_;  // serialises whole run() calls from distinct callers
  Mutex mu_;
  CondVar cv_start_;
  CondVar cv_done_;
  /// The job control block: all five fields are written by run() and the
  /// workers under mu_, with cv_start_/cv_done_ carrying the handoffs.
  const std::function<void(int)>* job_ BWFFT_GUARDED_BY(mu_) = nullptr;
  std::uint64_t epoch_ BWFFT_GUARDED_BY(mu_) = 0;  // bumped per run()
  int remaining_ BWFFT_GUARDED_BY(mu_) = 0;  // workers still on the job
  bool shutdown_ BWFFT_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ BWFFT_GUARDED_BY(mu_);
};

/// Convenience: distribute [0, total) across the team and call
/// f(tid, begin, end) on each worker.
void parallel_for_chunks(ThreadTeam& team, idx_t total,
                         const std::function<void(int, idx_t, idx_t)>& f);

}  // namespace bwfft
