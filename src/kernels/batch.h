// Batched split-format SIMD codelets with runtime ISA dispatch.
//
// The scalar codelets (kernels/codelets.h) transform ONE pencil at an
// element stride; the double-buffer compute stage and the SPL-lowered
// DFT_n (x) I_mu nodes used to loop them once per lane. The batched
// codelets instead transform `lanes` pencils at once, with SIMD vector
// lanes running ACROSS the batch dimension (the paper's DFT_n (x) I_mu
// shape): element (j, l) of the tile sits at in[j*is + l], interleaved
// complex, and each kernel deinterleaves a register-wide chunk of lanes
// into SPLIT real/imaginary vectors at its edges. In split format a
// complex multiply by a constant is four FMAs and a multiply-by-(+/-i)
// is a register rename plus a sign flip — no shuffles inside the
// butterflies, which is where the interleaved AVX path loses its cycles.
//
// Variants are generated from one template body (kernels/batch_gen.h)
// per instruction set — scalar always, AVX2+FMA and AVX-512F when the
// compiler can target them — compiled in separate translation units with
// per-file target flags, and selected at RUN TIME via kernels/isa.h.
//
// ABI (BatchFn):
//   out[k*os + l] = sum_j w_n^{jk} in[j*is + l]        for l < lanes
//   then, when tw != nullptr, output row k >= 1 is scaled by tw[k-1]
//   (a DIF butterfly: the codelet is the twiddled radix-n step of a
//   Stockham level; pass nullptr for a plain DFT).
//
// `is`/`os` are ROW strides in complex elements; the `lanes` elements of
// a row are contiguous. In-place operation (out == in) is allowed iff
// is == os: each register chunk loads all n rows of its lane slice
// before storing any of them. Distinct rows must not overlap.
#pragma once

#include "common/types.h"
#include "kernels/codelets.h"
#include "kernels/isa.h"

namespace bwfft::kernels {

/// Batched codelet: see the ABI contract above.
using BatchFn = void (*)(const cplx* in, idx_t is, cplx* out, idx_t os,
                         idx_t lanes, const cplx* tw, Direction dir);

/// Dispatch table of one ISA: fn[n] for n = 2..kMaxCodelet (16); fn[0]
/// and fn[1] are null (a 1-point DFT is the identity).
struct BatchTable {
  BatchFn fn[codelets::kMaxCodelet + 1] = {};
};

/// Table of a concrete ISA. Requests the host cannot execute (or that
/// were not compiled in) fall back to the scalar table, so the returned
/// table is always safe to call. `isa` must not be Auto.
const BatchTable& batch_table(Isa isa);

/// Resolve `isa` (Auto follows the kernels/isa.h decision path), bump the
/// per-ISA obs dispatch counter, and return the table. This is the one
/// call sites use once per tile/stage — hoist it out of inner loops.
const BatchTable& dispatch_batch_table(Isa isa = Isa::Auto);

/// Convenience lookup of one codelet (never null for 2 <= n <= 16).
BatchFn batch_lookup(idx_t n, Isa isa = Isa::Auto);

/// Non-temporal copy of `count` interleaved complex elements using the
/// widest streaming stores the resolved ISA offers: 64-byte AVX-512
/// streams, 32-byte AVX streams, with 16-byte SSE2 streams covering
/// heads, tails, and the whole range on the scalar path (SSE2 is x86-64
/// baseline). `dst` must be 16-byte aligned. Returns the number of
/// 32-byte-store equivalents issued, in whole units, for the NtStores
/// counter — or -1 when no streaming path applies (caller falls back to
/// a plain copy). Callers own the stream_fence() pairing, exactly as
/// with copy_stream.
idx_t nt_copy(cplx* dst, const cplx* src, idx_t count, Isa isa = Isa::Auto);

/// In-place twiddle-diagonal scale of a row-major tile with a stepped
/// per-column recurrence: each of `rows` rows of `width` contiguous
/// interleaved-complex elements is multiplied elementwise by w, after
/// which w advances one step (w[l] *= step[l]). This is the four-step
/// column pass's diagonal D_{n2}^{n1 n2}: the scale varies along BOTH
/// tile axes, so it cannot ride the per-row `tw` path of the batched
/// codelets above. `w` is updated in place; callers re-anchor it against
/// exactly computed roots periodically to bound recurrence drift.
void diag_scale_rows(cplx* tile, idx_t rows, idx_t width, cplx* w,
                     const cplx* step, Isa isa = Isa::Auto);

namespace detail {
// Per-ISA providers, defined in batch_scalar.cpp / batch_avx2.cpp /
// batch_avx512.cpp. The AVX providers return nullptr when the TU was
// compiled without the target flags (non-x86 hosts or toolchains).
const BatchTable& scalar_table();
const BatchTable* avx2_table();
const BatchTable* avx512_table();
idx_t nt_copy_sse2(cplx* dst, const cplx* src, idx_t count);    // -1 if n/a
idx_t nt_copy_avx2(cplx* dst, const cplx* src, idx_t count);    // -1 if n/a
idx_t nt_copy_avx512(cplx* dst, const cplx* src, idx_t count);  // -1 if n/a
void diag_scale_rows_scalar(cplx* tile, idx_t rows, idx_t width, cplx* w,
                            const cplx* step);
// The AVX variants return false when the TU was compiled without its
// target flags; the dispatcher then falls back to the scalar loop.
bool diag_scale_rows_avx2(cplx* tile, idx_t rows, idx_t width, cplx* w,
                          const cplx* step);
bool diag_scale_rows_avx512(cplx* tile, idx_t rows, idx_t width, cplx* w,
                            const cplx* step);
}  // namespace detail

}  // namespace bwfft::kernels
