// AVX-512F batched-codelet table: 512-bit registers, 8 complex lanes per
// split chunk. Deinterleave/interleave are single permutex2var shuffles
// per vector; everything between them is shuffle-free FMA arithmetic.
//
// Compiled with -mavx512f -mfma via per-file flags (-mavx512f implies
// AVX2 but NOT FMA in GCC, and the 256/128-bit cascade tails below want
// contracted multiplies); used only when cpuid reports AVX-512F at run
// time (kernels/isa.h).

#include "kernels/batch_gen.h"

#if defined(__AVX512F__) && defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>

#include <cstdint>

namespace bwfft::kernels::detail {

namespace {

struct Avx512Backend {
  static constexpr idx_t kWidth = 8;
  // Remainders under 8 lanes step down 512 -> 256 -> 128 -> scalar. The
  // engines' default packet width is mu = 4, so without this the chunk
  // loop above would never run and "AVX-512 dispatch" would mean an
  // all-scalar inner kernel.
  using Tail = gen::Avx2Backend;
  using V = __m512d;
  static V broadcast(double x) { return _mm512_set1_pd(x); }
  static V add(V a, V b) { return _mm512_add_pd(a, b); }
  static V sub(V a, V b) { return _mm512_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm512_mul_pd(a, b); }
  static V fmadd(V a, V b, V c) { return _mm512_fmadd_pd(a, b, c); }
  static V fmsub(V a, V b, V c) { return _mm512_fmsub_pd(a, b, c); }
  static V neg(V a) {
    // IEEE negate (sign-bit flip), bit-identical to scalar -x. _mm512_xor_pd
    // needs AVX512DQ, so go through the integer domain (plain AVX512F).
    const __m512i sign = _mm512_set1_epi64(0x8000000000000000LL);
    return _mm512_castsi512_pd(
        _mm512_xor_epi64(_mm512_castpd_si512(a), sign));
  }
  static void loadc(const cplx* p, V& re, V& im) {
    const auto* q = reinterpret_cast<const double*>(p);
    const __m512d a = _mm512_loadu_pd(q);      // r0 i0 .. r3 i3
    const __m512d b = _mm512_loadu_pd(q + 8);  // r4 i4 .. r7 i7
    const __m512i idx_re = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
    const __m512i idx_im = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
    re = _mm512_permutex2var_pd(a, idx_re, b);
    im = _mm512_permutex2var_pd(a, idx_im, b);
  }
  static void storec(cplx* p, V re, V im) {
    auto* q = reinterpret_cast<double*>(p);
    const __m512i idx_lo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
    const __m512i idx_hi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
    _mm512_storeu_pd(q, _mm512_permutex2var_pd(re, idx_lo, im));
    _mm512_storeu_pd(q + 8, _mm512_permutex2var_pd(re, idx_hi, im));
  }
};

}  // namespace

const BatchTable* avx512_table() {
  static const BatchTable t = gen::make_table<Avx512Backend>();
  return &t;
}

idx_t nt_copy_avx512(cplx* dst, const cplx* src, idx_t count) {
  auto* d = reinterpret_cast<double*>(dst);
  const auto* s = reinterpret_cast<const double*>(src);
  if ((reinterpret_cast<std::uintptr_t>(d) & 15u) != 0) return -1;
  idx_t bytes = 0;
  idx_t i = 0;
  // 16-byte head streams up to the first 64-byte boundary.
  while (i < count &&
         (reinterpret_cast<std::uintptr_t>(d + 2 * i) & 63u) != 0) {
    _mm_stream_pd(d + 2 * i, _mm_loadu_pd(s + 2 * i));
    ++i;
    bytes += 16;
  }
  for (; i + 4 <= count; i += 4) {
    _mm512_stream_pd(d + 2 * i, _mm512_loadu_pd(s + 2 * i));
    bytes += 64;
  }
  if (i + 2 <= count) {  // 32-byte tail (64-byte aligned here)
    _mm256_stream_pd(d + 2 * i, _mm256_loadu_pd(s + 2 * i));
    i += 2;
    bytes += 32;
  }
  if (i < count) {  // odd trailing element
    _mm_stream_pd(d + 2 * i, _mm_loadu_pd(s + 2 * i));
    ++i;
    bytes += 16;
  }
  return bytes / 32;
}

namespace {

/// Elementwise interleaved complex multiply of four complex doubles:
///   out = a * b  (re = a.re b.re - a.im b.im, im = a.re b.im + a.im b.re)
inline __m512d cmul512(__m512d a, __m512d b) {
  const __m512d bre = _mm512_movedup_pd(b);      // [b.re, b.re] per complex
  const __m512d bim = _mm512_permute_pd(b, 0xFF);  // [b.im, b.im]
  const __m512d asw = _mm512_permute_pd(a, 0x55);  // [a.im, a.re]
  return _mm512_fmaddsub_pd(a, bre, _mm512_mul_pd(asw, bim));
}

}  // namespace

bool diag_scale_rows_avx512(cplx* tile, idx_t rows, idx_t width, cplx* w,
                            const cplx* step) {
  auto* pw = reinterpret_cast<double*>(w);
  const auto* ps = reinterpret_cast<const double*>(step);
  const idx_t vec = width & ~idx_t{3};  // 4 complex doubles per register
  for (idx_t r = 0; r < rows; ++r) {
    auto* row = reinterpret_cast<double*>(tile + r * width);
    for (idx_t l = 0; l < 2 * vec; l += 8) {
      const __m512d vw = _mm512_loadu_pd(pw + l);
      _mm512_storeu_pd(row + l, cmul512(_mm512_loadu_pd(row + l), vw));
      _mm512_storeu_pd(pw + l, cmul512(vw, _mm512_loadu_pd(ps + l)));
    }
    for (idx_t c = vec; c < width; ++c) {
      tile[r * width + c] *= w[c];
      w[c] *= step[c];
    }
  }
  return true;
}

}  // namespace bwfft::kernels::detail

#else  // toolchain cannot target AVX-512F

namespace bwfft::kernels::detail {

const BatchTable* avx512_table() { return nullptr; }

idx_t nt_copy_avx512(cplx*, const cplx*, idx_t) { return -1; }

bool diag_scale_rows_avx512(cplx*, idx_t, idx_t, cplx*, const cplx*) {
  return false;
}

}  // namespace bwfft::kernels::detail

#endif
