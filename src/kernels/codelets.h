// Hand-written small-DFT codelets.
//
// Fully unrolled DFTs for sizes 2..8 and 16 plus a table-driven direct
// path for the remaining sizes up to 16, parameterised by input and
// output stride so they can serve as base cases of the mixed-radix
// engine and as strided pencil kernels. Each codelet is an exact
// implementation of spl::Dft(n) and is tested against it
// entry-for-entry.
#pragma once

#include "common/types.h"

namespace bwfft::codelets {

/// Apply an n-point DFT: out[k*os] = sum_l w^{kl} in[l*is]. `in` and `out`
/// must not alias (use a temporary for in-place application).
using CodeletFn = void (*)(const cplx* in, idx_t is, cplx* out, idx_t os,
                           Direction dir);

void dft2(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);
void dft3(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);
void dft4(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);
void dft5(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);
void dft6(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);
void dft7(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);
void dft8(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);
void dft16(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);

/// Largest size for which a codelet exists.
inline constexpr idx_t kMaxCodelet = 16;

/// Codelet lookup. Never returns nullptr for 2 <= n <= kMaxCodelet:
/// sizes without an unrolled body (9..15) get a table-driven direct DFT.
/// Sizes outside that range return nullptr.
CodeletFn lookup(idx_t n);

/// Forward-convention roots of unity of order n: c[j] = cos(2*pi*j/n),
/// s[j] = sin(2*pi*j/n) for j < n, computed once per process. The forward
/// root is w_n^j = (c[j], -s[j]); the inverse root is its conjugate.
struct TrigTable {
  double c[kMaxCodelet];
  double s[kMaxCodelet];
};

/// Shared trig constants for order n (2 <= n <= kMaxCodelet). The tables
/// are built on first use and reused by the scalar codelets, the direct
/// fallback, and the batched SIMD bodies (kernels/batch_gen.h), so every
/// variant of a given size agrees on its constants bit-for-bit.
const TrigTable& dft_trig(idx_t n);

}  // namespace bwfft::codelets
