// Hand-written small-DFT codelets.
//
// Fully unrolled DFTs for sizes 2..8 and 16, parameterised by input and
// output stride so they can serve as base cases of the mixed-radix engine
// and as strided pencil kernels. Each codelet is an exact implementation of
// spl::Dft(n) and is tested against it entry-for-entry.
#pragma once

#include "common/types.h"

namespace bwfft::codelets {

/// Apply an n-point DFT: out[k*os] = sum_l w^{kl} in[l*is]. `in` and `out`
/// must not alias (use a temporary for in-place application).
using CodeletFn = void (*)(const cplx* in, idx_t is, cplx* out, idx_t os,
                           Direction dir);

void dft2(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);
void dft3(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);
void dft4(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);
void dft5(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);
void dft6(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);
void dft7(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);
void dft8(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);
void dft16(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir);

/// Codelet lookup; returns nullptr if no codelet exists for n.
CodeletFn lookup(idx_t n);

/// Largest size for which a codelet exists.
inline constexpr idx_t kMaxCodelet = 16;

}  // namespace bwfft::codelets
