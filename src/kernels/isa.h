// Runtime instruction-set selection for the kernel layer.
//
// The batched codelets (kernels/batch.h) and the streaming-store helpers
// are compiled once per instruction set into separate translation units
// (scalar always; AVX2+FMA and AVX-512F when the compiler supports the
// target flags) and selected at *run time* from cpuid — not at compile
// time from __AVX2__. A portable binary built without -march=native
// therefore still vectorises on capable hosts, and the same binary can be
// forced down a narrower path for testing and ablation:
//
//   1. BWFFT_ISA environment variable ("scalar" | "avx2" | "avx512"),
//      read once at first use; requests above the host's capability
//      clamp down to the best available set.
//   2. set_isa_override() — the programmatic equivalent (tests, benches).
//   3. set_force_scalar() (kernels/vecops.h) — the pre-existing ablation
//      toggle; it wins over everything and forces Isa::Scalar.
//
// Decision path: force_scalar ? scalar
//              : override set ? min(override, detected)
//              : env set      ? min(env, detected)
//              : detected best.
#pragma once

#include <string>

namespace bwfft::kernels {

/// Instruction sets the kernel layer dispatches between, ordered from
/// narrowest to widest. `Auto` is only meaningful as a *request* (plan
/// options, candidate grids); active_isa() never returns it.
enum class Isa : int {
  Auto = -1,   ///< "use the best the host offers" (request-side only)
  Scalar = 0,  ///< portable C++ path, one complex at a time
  Avx2 = 1,    ///< AVX2+FMA, 4 complex lanes per split re/im vector pair
  Avx512 = 2,  ///< AVX-512F, 8 complex lanes per split re/im vector pair
};

/// Stable lower-case name ("auto", "scalar", "avx2", "avx512").
const char* isa_name(Isa isa);

/// Parse an isa_name() spelling; false on unknown names.
bool isa_from_name(const std::string& name, Isa* out);

/// Widest ISA the host CPU supports (cpuid; cached after first call).
/// Ignores overrides — this is the hardware's answer.
Isa detected_isa();

/// True when `isa` can execute on this host (Scalar always can).
bool isa_available(Isa isa);

/// The ISA the kernel layer will dispatch to right now, following the
/// decision path documented above. Never returns Auto.
Isa active_isa();

/// Resolve a request against the dispatch state: Auto -> active_isa(),
/// anything else clamps to the host capability (and to Scalar while
/// force_scalar() is set), so the result is always executable.
Isa resolve_isa(Isa requested);

/// Programmatic override (Auto clears it). Requests wider than the host
/// clamp down at resolve time, so forcing "avx512" on an AVX2 box is
/// safe — it just resolves to avx2.
void set_isa_override(Isa isa);

/// Currently installed override (Auto = none).
Isa isa_override();

/// Human-readable dispatch report: detected features, the env/override
/// state, and the active ISA — the text behind `bwfft_cli --dispatch`.
std::string dispatch_report();

}  // namespace bwfft::kernels
