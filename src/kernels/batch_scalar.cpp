// Scalar batched-codelet table + SSE2 streaming copy.
//
// This TU is compiled with no extra target flags, so it runs anywhere;
// it is also the tail path every SIMD variant falls back to for the
// lanes % width remainder. On x86-64 the baseline still includes SSE2,
// so even the "scalar" ISA can issue 16-byte streaming stores.

#include "kernels/batch_gen.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include <cstdint>

namespace bwfft::kernels::detail {

const BatchTable& scalar_table() {
  static const BatchTable t = gen::make_table<gen::ScalarBackend>();
  return t;
}

void diag_scale_rows_scalar(cplx* tile, idx_t rows, idx_t width, cplx* w,
                            const cplx* step) {
  for (idx_t r = 0; r < rows; ++r) {
    cplx* row = tile + r * width;
    for (idx_t l = 0; l < width; ++l) {
      row[l] *= w[l];
      w[l] *= step[l];
    }
  }
}

idx_t nt_copy_sse2(cplx* dst, const cplx* src, idx_t count) {
#if defined(__SSE2__)
  auto* d = reinterpret_cast<double*>(dst);
  const auto* s = reinterpret_cast<const double*>(src);
  if ((reinterpret_cast<std::uintptr_t>(d) & 15u) != 0) return -1;
  idx_t bytes = 0;
  for (idx_t i = 0; i < count; ++i) {
    _mm_stream_pd(d + 2 * i, _mm_loadu_pd(s + 2 * i));
    bytes += 16;
  }
  return bytes / 32;
#else
  (void)dst;
  (void)src;
  (void)count;
  return -1;
#endif
}

}  // namespace bwfft::kernels::detail
