#include "kernels/batch.h"

#include "common/error.h"
#include "obs/obs.h"

namespace bwfft::kernels {

namespace {

/// The ISA whose table will actually serve a resolved request: a resolved
/// ISA whose TU was compiled without its target flags (cross builds,
/// -mno-avx2 CI legs) degrades to the next narrower compiled-in set, so
/// the obs counters record what runs, not what was asked for.
Isa effective_isa(Isa resolved) {
  if (resolved == Isa::Avx512 && detail::avx512_table() != nullptr) {
    return Isa::Avx512;
  }
  if (static_cast<int>(resolved) >= static_cast<int>(Isa::Avx2) &&
      detail::avx2_table() != nullptr) {
    return Isa::Avx2;
  }
  return Isa::Scalar;
}

}  // namespace

const BatchTable& batch_table(Isa isa) {
  BWFFT_ASSERT(isa != Isa::Auto);
  switch (effective_isa(isa)) {
    case Isa::Avx512: return *detail::avx512_table();
    case Isa::Avx2: return *detail::avx2_table();
    default: return detail::scalar_table();
  }
}

const BatchTable& dispatch_batch_table(Isa isa) {
  const Isa eff = effective_isa(resolve_isa(isa));
  switch (eff) {
    case Isa::Avx512:
      obs::counter_add(obs::Counter::BatchAvx512, 1);
      return *detail::avx512_table();
    case Isa::Avx2:
      obs::counter_add(obs::Counter::BatchAvx2, 1);
      return *detail::avx2_table();
    default:
      obs::counter_add(obs::Counter::BatchScalar, 1);
      return detail::scalar_table();
  }
}

BatchFn batch_lookup(idx_t n, Isa isa) {
  if (n < 2 || n > codelets::kMaxCodelet) return nullptr;
  return dispatch_batch_table(isa).fn[n];
}

idx_t nt_copy(cplx* dst, const cplx* src, idx_t count, Isa isa) {
  switch (effective_isa(resolve_isa(isa))) {
    case Isa::Avx512: return detail::nt_copy_avx512(dst, src, count);
    case Isa::Avx2: return detail::nt_copy_avx2(dst, src, count);
    default: return detail::nt_copy_sse2(dst, src, count);
  }
}

void diag_scale_rows(cplx* tile, idx_t rows, idx_t width, cplx* w,
                     const cplx* step, Isa isa) {
  switch (effective_isa(resolve_isa(isa))) {
    case Isa::Avx512:
      if (detail::diag_scale_rows_avx512(tile, rows, width, w, step)) return;
      break;
    case Isa::Avx2:
      if (detail::diag_scale_rows_avx2(tile, rows, width, w, step)) return;
      break;
    default:
      break;
  }
  detail::diag_scale_rows_scalar(tile, rows, width, w, step);
}

}  // namespace bwfft::kernels
