// AVX2+FMA batched-codelet table: 256-bit registers, 4 complex lanes per
// split chunk (one vector of 4 reals + one of 4 imaginaries).
//
// Compiled with -mavx2 -mfma via per-file flags (see CMakeLists.txt), so
// the intrinsics below exist even in portable builds; whether this table
// is *used* is decided at run time by kernels/isa.h. When the toolchain
// cannot target AVX2 the providers degrade to nullptr / -1 and dispatch
// falls back to scalar.

#include "kernels/batch_gen.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>

#include <cstdint>

namespace bwfft::kernels::detail {

// The Avx2Backend itself lives in batch_gen.h (shared with the AVX-512
// TU, where it is the first tail step of the width cascade). Lane counts
// below 4 cascade through gen::Sse2Backend before reaching scalar.
const BatchTable* avx2_table() {
  static const BatchTable t = gen::make_table<gen::Avx2Backend>();
  return &t;
}

idx_t nt_copy_avx2(cplx* dst, const cplx* src, idx_t count) {
  auto* d = reinterpret_cast<double*>(dst);
  const auto* s = reinterpret_cast<const double*>(src);
  if ((reinterpret_cast<std::uintptr_t>(d) & 15u) != 0) return -1;
  idx_t bytes = 0;
  idx_t i = 0;
  // One 16-byte head stream to reach 32-byte alignment.
  if ((reinterpret_cast<std::uintptr_t>(d) & 31u) != 0 && i < count) {
    _mm_stream_pd(d, _mm_loadu_pd(s));
    ++i;
    bytes += 16;
  }
  for (; i + 2 <= count; i += 2) {
    _mm256_stream_pd(d + 2 * i, _mm256_loadu_pd(s + 2 * i));
    bytes += 32;
  }
  if (i < count) {  // odd trailing element, 32-byte aligned here
    _mm_stream_pd(d + 2 * i, _mm_loadu_pd(s + 2 * i));
    ++i;
    bytes += 16;
  }
  return bytes / 32;
}

namespace {

/// Elementwise interleaved complex multiply of two complex doubles:
///   out = a * b  (re = a.re b.re - a.im b.im, im = a.re b.im + a.im b.re)
inline __m256d cmul256(__m256d a, __m256d b) {
  const __m256d bre = _mm256_movedup_pd(b);       // [b.re, b.re] per complex
  const __m256d bim = _mm256_permute_pd(b, 0xF);  // [b.im, b.im]
  const __m256d asw = _mm256_permute_pd(a, 0x5);  // [a.im, a.re]
  return _mm256_fmaddsub_pd(a, bre, _mm256_mul_pd(asw, bim));
}

}  // namespace

bool diag_scale_rows_avx2(cplx* tile, idx_t rows, idx_t width, cplx* w,
                          const cplx* step) {
  auto* pw = reinterpret_cast<double*>(w);
  const auto* ps = reinterpret_cast<const double*>(step);
  const idx_t vec = width & ~idx_t{1};  // 2 complex doubles per register
  for (idx_t r = 0; r < rows; ++r) {
    auto* row = reinterpret_cast<double*>(tile + r * width);
    for (idx_t l = 0; l < 2 * vec; l += 4) {
      const __m256d vw = _mm256_loadu_pd(pw + l);
      _mm256_storeu_pd(row + l, cmul256(_mm256_loadu_pd(row + l), vw));
      _mm256_storeu_pd(pw + l, cmul256(vw, _mm256_loadu_pd(ps + l)));
    }
    for (idx_t c = vec; c < width; ++c) {
      tile[r * width + c] *= w[c];
      w[c] *= step[c];
    }
  }
  return true;
}

}  // namespace bwfft::kernels::detail

#else  // toolchain cannot target AVX2+FMA

namespace bwfft::kernels::detail {

const BatchTable* avx2_table() { return nullptr; }

idx_t nt_copy_avx2(cplx*, const cplx*, idx_t) { return -1; }

bool diag_scale_rows_avx2(cplx*, idx_t, idx_t, cplx*, const cplx*) {
  return false;
}

}  // namespace bwfft::kernels::detail

#endif
