#include "kernels/vecops.h"

#include <atomic>

namespace bwfft {

namespace {
std::atomic<bool> g_force_scalar{false};
}

bool force_scalar() { return g_force_scalar.load(std::memory_order_relaxed); }
void set_force_scalar(bool v) {
  g_force_scalar.store(v, std::memory_order_relaxed);
}

}  // namespace bwfft
