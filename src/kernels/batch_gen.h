// Batched codelet GENERATOR — one template body per DFT size, stamped out
// once per instruction set.
//
// This header is included only by the per-ISA translation units
// (batch_scalar.cpp, batch_avx2.cpp, batch_avx512.cpp), each of which
// supplies a Backend describing its vector type and instantiates
// make_table<Backend>(). A Backend models kWidth complex lanes held in
// SPLIT format — one vector of real parts, one of imaginary parts:
//
//   struct Backend {
//     static constexpr idx_t kWidth;          // complex lanes per vector
//     using V = ...;                          // kWidth doubles
//     static V broadcast(double);
//     static V add(V, V);  static V sub(V, V);  static V mul(V, V);
//     static V fmadd(V a, V b, V c);          // a*b + c
//     static V fmsub(V a, V b, V c);          // a*b - c
//     static V neg(V);
//     static void loadc(const cplx* p, V& re, V& im);   // deinterleave
//     static void storec(cplx* p, V re, V im);          // interleave
//   };
//
// Interleaved complex enters and leaves through loadc/storec (the only
// shuffles in the kernel); every butterfly in between runs on split
// vectors, where a complex multiply by a broadcast constant is two
// multiplies + two FMAs and a multiply by +/-i is a register rename plus
// one sign flip. The direction is a template parameter (SG = -1 forward,
// +1 inverse), so the sign folds into constants at compile time.
//
// Sizes 2, 4, 8, 16 use the radix-2 DIT recursions of the scalar
// codelets; 3, 5, 7 the symmetric/antisymmetric prime splits; 6 the
// Good–Thomas 2x3 map; 9..15 a table-driven direct DFT (exact, O(n^2)
// over the lane chunk — these sizes never appear in the hot power-of-two
// pipeline). All trig constants come from codelets::dft_trig, computed
// once per process.
#pragma once

#include <cmath>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "kernels/batch.h"
#include "kernels/codelets.h"

namespace bwfft::kernels::gen {

/// One register-wide chunk of complex lanes in split format.
template <class B>
struct CV {
  typename B::V re, im;
};

template <class B>
inline CV<B> cv_load(const cplx* p) {
  CV<B> v;
  B::loadc(p, v.re, v.im);
  return v;
}

template <class B>
inline void cv_store(cplx* p, CV<B> v) {
  B::storec(p, v.re, v.im);
}

template <class B>
inline CV<B> cv_add(CV<B> a, CV<B> b) {
  return {B::add(a.re, b.re), B::add(a.im, b.im)};
}

template <class B>
inline CV<B> cv_sub(CV<B> a, CV<B> b) {
  return {B::sub(a.re, b.re), B::sub(a.im, b.im)};
}

/// v * (wr + i*wi) with wr/wi broadcast: 2 muls + 2 FMAs, no shuffles.
template <class B>
inline CV<B> cv_mulw(CV<B> v, typename B::V wr, typename B::V wi) {
  return {B::fmsub(v.re, wr, B::mul(v.im, wi)),
          B::fmadd(v.re, wi, B::mul(v.im, wr))};
}

/// v * f with f a broadcast real.
template <class B>
inline CV<B> cv_scale(CV<B> v, typename B::V f) {
  return {B::mul(v.re, f), B::mul(v.im, f)};
}

/// v * (0 + i*SG): w_4^1 for the direction (forward w_4 = -i). In split
/// format this is a swap + one negation — zero multiplies.
template <class B, int SG>
inline CV<B> cv_rot90(CV<B> v) {
  if constexpr (SG < 0) {
    return {v.im, B::neg(v.re)};
  } else {
    return {B::neg(v.im), v.re};
  }
}

/// v * i (direction-independent; the odd-radix splits fold the direction
/// sign into their sine constants instead).
template <class B>
inline CV<B> cv_muli(CV<B> v) {
  return {B::neg(v.im), v.re};
}

// ---------------------------------------------------------------------------
// DFT bodies. Body<B, N, SG>::apply(x, y) computes y = DFT_N x on split
// register chunks; x and y are distinct arrays of N CVs.

/// Primary template: table-driven direct DFT (sizes 9..15).
template <class B, idx_t N, int SG>
struct Body {
  static void apply(const CV<B>* x, CV<B>* y) {
    const codelets::TrigTable& t = codelets::dft_trig(N);
    for (idx_t k = 0; k < N; ++k) {
      CV<B> acc = x[0];
      for (idx_t j = 1; j < N; ++j) {
        const idx_t m = (j * k) % N;
        acc = cv_add<B>(acc, cv_mulw<B>(x[j], B::broadcast(t.c[m]),
                                        B::broadcast(SG * t.s[m])));
      }
      y[k] = acc;
    }
  }
};

template <class B, int SG>
struct Body<B, 2, SG> {
  static void apply(const CV<B>* x, CV<B>* y) {
    y[0] = cv_add<B>(x[0], x[1]);
    y[1] = cv_sub<B>(x[0], x[1]);
  }
};

template <class B, int SG>
struct Body<B, 3, SG> {
  static void apply(const CV<B>* x, CV<B>* y) {
    const double s = SG * std::sqrt(3.0) / 2.0;
    const CV<B> t1 = cv_add<B>(x[1], x[2]);
    const CV<B> t2 = cv_sub<B>(x[1], x[2]);
    const CV<B> m1 = cv_add<B>(x[0], cv_scale<B>(t1, B::broadcast(-0.5)));
    const CV<B> m2 = cv_muli<B>(cv_scale<B>(t2, B::broadcast(s)));
    y[0] = cv_add<B>(x[0], t1);
    y[1] = cv_add<B>(m1, m2);
    y[2] = cv_sub<B>(m1, m2);
  }
};

template <class B, int SG>
struct Body<B, 4, SG> {
  static void apply(const CV<B>* x, CV<B>* y) {
    const CV<B> t0 = cv_add<B>(x[0], x[2]);
    const CV<B> t1 = cv_sub<B>(x[0], x[2]);
    const CV<B> t2 = cv_add<B>(x[1], x[3]);
    const CV<B> t3 = cv_rot90<B, SG>(cv_sub<B>(x[1], x[3]));
    y[0] = cv_add<B>(t0, t2);
    y[1] = cv_add<B>(t1, t3);
    y[2] = cv_sub<B>(t0, t2);
    y[3] = cv_sub<B>(t1, t3);
  }
};

template <class B, int SG>
struct Body<B, 5, SG> {
  static void apply(const CV<B>* x, CV<B>* y) {
    const codelets::TrigTable& t = codelets::dft_trig(5);
    const double c1 = t.c[1], s1 = SG * t.s[1];
    const double c2 = t.c[2], s2 = SG * t.s[2];
    const CV<B> p1 = cv_add<B>(x[1], x[4]);
    const CV<B> m1 = cv_sub<B>(x[1], x[4]);
    const CV<B> p2 = cv_add<B>(x[2], x[3]);
    const CV<B> m2 = cv_sub<B>(x[2], x[3]);
    y[0] = cv_add<B>(cv_add<B>(x[0], p1), p2);
    const CV<B> r1 = cv_add<B>(
        x[0], cv_add<B>(cv_scale<B>(p1, B::broadcast(c1)),
                        cv_scale<B>(p2, B::broadcast(c2))));
    const CV<B> r2 = cv_add<B>(
        x[0], cv_add<B>(cv_scale<B>(p1, B::broadcast(c2)),
                        cv_scale<B>(p2, B::broadcast(c1))));
    const CV<B> v1 = cv_add<B>(cv_scale<B>(m1, B::broadcast(s1)),
                               cv_scale<B>(m2, B::broadcast(s2)));
    const CV<B> v2 = cv_sub<B>(cv_scale<B>(m1, B::broadcast(s2)),
                               cv_scale<B>(m2, B::broadcast(s1)));
    const CV<B> i1 = cv_muli<B>(v1);
    const CV<B> i2 = cv_muli<B>(v2);
    y[1] = cv_add<B>(r1, i1);
    y[2] = cv_add<B>(r2, i2);
    y[3] = cv_sub<B>(r2, i2);
    y[4] = cv_sub<B>(r1, i1);
  }
};

template <class B, int SG>
struct Body<B, 6, SG> {
  static void apply(const CV<B>* x, CV<B>* y) {
    // Good–Thomas 6 = 2 x 3: CRT input map (i1, i2) <- (3 i1 + 4 i2) mod 6,
    // output map (k1, k2) -> (3 k1 + 2 k2) mod 6; no twiddles.
    const CV<B> col0[3] = {x[0], x[4], x[2]};
    const CV<B> col1[3] = {x[3], x[1], x[5]};
    CV<B> t0[3], t1[3];
    Body<B, 3, SG>::apply(col0, t0);
    Body<B, 3, SG>::apply(col1, t1);
    for (idx_t k2 = 0; k2 < 3; ++k2) {
      y[(2 * k2) % 6] = cv_add<B>(t0[k2], t1[k2]);
      y[(3 + 2 * k2) % 6] = cv_sub<B>(t0[k2], t1[k2]);
    }
  }
};

template <class B, int SG>
struct Body<B, 7, SG> {
  static void apply(const CV<B>* x, CV<B>* y) {
    const codelets::TrigTable& t = codelets::dft_trig(7);
    const double cs[3] = {t.c[1], t.c[2], t.c[3]};
    const double sn[3] = {SG * t.s[1], SG * t.s[2], SG * t.s[3]};
    CV<B> p[3], m[3];
    for (int j = 0; j < 3; ++j) {
      p[j] = cv_add<B>(x[j + 1], x[6 - j]);
      m[j] = cv_sub<B>(x[j + 1], x[6 - j]);
    }
    y[0] = cv_add<B>(cv_add<B>(cv_add<B>(x[0], p[0]), p[1]), p[2]);
    for (int k = 1; k <= 3; ++k) {
      CV<B> re = x[0];
      CV<B> im = {B::broadcast(0.0), B::broadcast(0.0)};
      for (int j = 1; j <= 3; ++j) {
        const int idx = (k * j) % 7;
        const int fold = idx <= 3 ? idx : 7 - idx;
        const double sign_im = idx <= 3 ? 1.0 : -1.0;
        re = cv_add<B>(re, cv_scale<B>(p[j - 1], B::broadcast(cs[fold - 1])));
        im = cv_add<B>(im, cv_scale<B>(m[j - 1],
                                       B::broadcast(sign_im * sn[fold - 1])));
      }
      const CV<B> rot = cv_muli<B>(im);
      y[k] = cv_add<B>(re, rot);
      y[7 - k] = cv_sub<B>(re, rot);
    }
  }
};

template <class B, int SG>
struct Body<B, 8, SG> {
  static void apply(const CV<B>* x, CV<B>* y) {
    const CV<B> e[4] = {x[0], x[2], x[4], x[6]};
    const CV<B> o[4] = {x[1], x[3], x[5], x[7]};
    CV<B> fe[4], fo[4];
    Body<B, 4, SG>::apply(e, fe);
    Body<B, 4, SG>::apply(o, fo);
    const double r = std::sqrt(0.5);
    const CV<B> t1 =
        cv_mulw<B>(fo[1], B::broadcast(r), B::broadcast(SG * r));   // w_8^1
    const CV<B> t2 = cv_rot90<B, SG>(fo[2]);                        // w_8^2
    const CV<B> t3 =
        cv_mulw<B>(fo[3], B::broadcast(-r), B::broadcast(SG * r));  // w_8^3
    y[0] = cv_add<B>(fe[0], fo[0]);
    y[4] = cv_sub<B>(fe[0], fo[0]);
    y[1] = cv_add<B>(fe[1], t1);
    y[5] = cv_sub<B>(fe[1], t1);
    y[2] = cv_add<B>(fe[2], t2);
    y[6] = cv_sub<B>(fe[2], t2);
    y[3] = cv_add<B>(fe[3], t3);
    y[7] = cv_sub<B>(fe[3], t3);
  }
};

template <class B, int SG>
struct Body<B, 16, SG> {
  static void apply(const CV<B>* x, CV<B>* y) {
    CV<B> e[8], o[8], fe[8], fo[8];
    for (idx_t j = 0; j < 8; ++j) {
      e[j] = x[2 * j];
      o[j] = x[2 * j + 1];
    }
    Body<B, 8, SG>::apply(e, fe);
    Body<B, 8, SG>::apply(o, fo);
    const codelets::TrigTable& t = codelets::dft_trig(16);
    for (idx_t k = 0; k < 8; ++k) {
      const CV<B> v =
          k == 0 ? fo[0]
                 : cv_mulw<B>(fo[k], B::broadcast(t.c[k]),
                              B::broadcast(SG * t.s[k]));  // w_16^k
      y[k] = cv_add<B>(fe[k], v);
      y[k + 8] = cv_sub<B>(fe[k], v);
    }
  }
};

// ---------------------------------------------------------------------------
// Driver: chunk the lane dimension at the backend width, then cascade the
// remainder down each backend's `Tail` (512 -> 256 -> 128 -> scalar), so a
// lane count below a backend's full width still runs the widest vectors
// that fit — the engines' default mu = 4 packets must not degrade to
// scalar just because the dispatched table is AVX-512.

// The anonymous namespace is deliberate, not an oversight: every type in
// it has internal linkage, so each per-ISA TU gets its OWN instantiations
// of run/run_dir/Body, compiled with that TU's target flags. Without it
// the identical symbols from batch_scalar.cpp and batch_avx512.cpp would
// be merged by the linker and the "scalar" table could end up pointing at
// AVX-512-compiled code — an illegal instruction on narrow hosts.
namespace {

/// Portable width-1 backend; also the tail path of every SIMD backend
/// (where it inherits the TU's target flags — safe, because that tail
/// only runs after cpuid approved the TU's ISA).
struct ScalarBackend {
  static constexpr idx_t kWidth = 1;
  using Tail = ScalarBackend;  // terminates the cascade
  using V = double;
  static V broadcast(double x) { return x; }
  static V add(V a, V b) { return a + b; }
  static V sub(V a, V b) { return a - b; }
  static V mul(V a, V b) { return a * b; }
  static V fmadd(V a, V b, V c) { return a * b + c; }
  static V fmsub(V a, V b, V c) { return a * b - c; }
  static V neg(V a) { return -a; }
  static void loadc(const cplx* p, V& re, V& im) {
    re = p->real();
    im = p->imag();
  }
  static void storec(cplx* p, V re, V im) { *p = cplx(re, im); }
};

#if defined(__SSE2__)
/// 128-bit backend, 2 complex lanes. Exists mainly as the cascade step
/// between the 256-bit chunk loop and the scalar remainder; FMA contraction
/// only when the TU targets it, plain mul+add otherwise.
struct Sse2Backend {
  static constexpr idx_t kWidth = 2;
  using Tail = ScalarBackend;
  using V = __m128d;
  static V broadcast(double x) { return _mm_set1_pd(x); }
  static V add(V a, V b) { return _mm_add_pd(a, b); }
  static V sub(V a, V b) { return _mm_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm_mul_pd(a, b); }
#if defined(__FMA__)
  static V fmadd(V a, V b, V c) { return _mm_fmadd_pd(a, b, c); }
  static V fmsub(V a, V b, V c) { return _mm_fmsub_pd(a, b, c); }
#else
  static V fmadd(V a, V b, V c) { return _mm_add_pd(_mm_mul_pd(a, b), c); }
  static V fmsub(V a, V b, V c) { return _mm_sub_pd(_mm_mul_pd(a, b), c); }
#endif
  static V neg(V a) { return _mm_xor_pd(a, _mm_set1_pd(-0.0)); }
  static void loadc(const cplx* p, V& re, V& im) {
    const auto* q = reinterpret_cast<const double*>(p);
    const __m128d ab = _mm_loadu_pd(q);      // r0 i0
    const __m128d cd = _mm_loadu_pd(q + 2);  // r1 i1
    re = _mm_unpacklo_pd(ab, cd);            // r0 r1
    im = _mm_unpackhi_pd(ab, cd);            // i0 i1
  }
  static void storec(cplx* p, V re, V im) {
    auto* q = reinterpret_cast<double*>(p);
    _mm_storeu_pd(q, _mm_unpacklo_pd(re, im));
    _mm_storeu_pd(q + 2, _mm_unpackhi_pd(re, im));
  }
};
#endif  // __SSE2__

#if defined(__AVX2__) && defined(__FMA__)
/// 256-bit backend, 4 complex lanes. Lives here (not in batch_avx2.cpp)
/// so the AVX-512 TU can name it as the tail step of the width cascade.
struct Avx2Backend {
  static constexpr idx_t kWidth = 4;
  using Tail = Sse2Backend;
  using V = __m256d;
  static V broadcast(double x) { return _mm256_set1_pd(x); }
  static V add(V a, V b) { return _mm256_add_pd(a, b); }
  static V sub(V a, V b) { return _mm256_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V fmadd(V a, V b, V c) { return _mm256_fmadd_pd(a, b, c); }
  static V fmsub(V a, V b, V c) { return _mm256_fmsub_pd(a, b, c); }
  static V neg(V a) { return _mm256_xor_pd(a, _mm256_set1_pd(-0.0)); }
  static void loadc(const cplx* p, V& re, V& im) {
    const auto* q = reinterpret_cast<const double*>(p);
    const __m256d ab = _mm256_loadu_pd(q);      // r0 i0 r1 i1
    const __m256d cd = _mm256_loadu_pd(q + 4);  // r2 i2 r3 i3
    const __m256d lo = _mm256_permute2f128_pd(ab, cd, 0x20);  // r0 i0 r2 i2
    const __m256d hi = _mm256_permute2f128_pd(ab, cd, 0x31);  // r1 i1 r3 i3
    re = _mm256_unpacklo_pd(lo, hi);  // r0 r1 r2 r3
    im = _mm256_unpackhi_pd(lo, hi);  // i0 i1 i2 i3
  }
  static void storec(cplx* p, V re, V im) {
    auto* q = reinterpret_cast<double*>(p);
    const __m256d lo = _mm256_unpacklo_pd(re, im);  // r0 i0 r2 i2
    const __m256d hi = _mm256_unpackhi_pd(re, im);  // r1 i1 r3 i3
    _mm256_storeu_pd(q, _mm256_permute2f128_pd(lo, hi, 0x20));
    _mm256_storeu_pd(q + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
  }
};
#endif  // __AVX2__ && __FMA__

template <class B, idx_t N, int SG>
void run_dir(const cplx* in, idx_t is, cplx* out, idx_t os, idx_t lanes,
             const cplx* tw) {
  idx_t l = 0;
  for (; l + B::kWidth <= lanes; l += B::kWidth) {
    CV<B> x[N], y[N];
    for (idx_t j = 0; j < N; ++j) x[j] = cv_load<B>(in + j * is + l);
    Body<B, N, SG>::apply(x, y);
    if (tw != nullptr) {
      for (idx_t k = 1; k < N; ++k) {
        y[k] = cv_mulw<B>(y[k], B::broadcast(tw[k - 1].real()),
                          B::broadcast(tw[k - 1].imag()));
      }
    }
    for (idx_t k = 0; k < N; ++k) cv_store<B>(out + k * os + l, y[k]);
  }
  if constexpr (B::kWidth > 1) {
    if (l < lanes) {
      // Cascade one width step down (e.g. 8 -> 4 -> 2 -> 1) instead of
      // jumping straight to scalar: an AVX-512 table asked for lanes = 4
      // must still run the whole packet in one 256-bit chunk.
      run_dir<typename B::Tail, N, SG>(in + l, is, out + l, os, lanes - l,
                                       tw);
    }
  }
}

template <class B, idx_t N>
void run(const cplx* in, idx_t is, cplx* out, idx_t os, idx_t lanes,
         const cplx* tw, Direction dir) {
  if (dir == Direction::Forward) {
    run_dir<B, N, -1>(in, is, out, os, lanes, tw);
  } else {
    run_dir<B, N, +1>(in, is, out, os, lanes, tw);
  }
}

template <class B>
BatchTable make_table() {
  BatchTable t;
  t.fn[2] = &run<B, 2>;
  t.fn[3] = &run<B, 3>;
  t.fn[4] = &run<B, 4>;
  t.fn[5] = &run<B, 5>;
  t.fn[6] = &run<B, 6>;
  t.fn[7] = &run<B, 7>;
  t.fn[8] = &run<B, 8>;
  t.fn[9] = &run<B, 9>;
  t.fn[10] = &run<B, 10>;
  t.fn[11] = &run<B, 11>;
  t.fn[12] = &run<B, 12>;
  t.fn[13] = &run<B, 13>;
  t.fn[14] = &run<B, 14>;
  t.fn[15] = &run<B, 15>;
  t.fn[16] = &run<B, 16>;
  return t;
}

}  // namespace (internal linkage — see above)

}  // namespace bwfft::kernels::gen
