// Twiddle-factor table generation.
//
// Twiddles are precomputed at plan time (never inside timed regions) and
// stored in aligned arrays so the SIMD kernels can broadcast from them.
#pragma once

#include "common/aligned.h"
#include "common/types.h"

namespace bwfft {

/// w_n^p for the given direction: exp(sign * 2 pi i p / n).
cplx root_of_unity(idx_t n, idx_t p, Direction dir);

/// Table of the first `count` powers w_n^0 .. w_n^{count-1}.
cvec root_table(idx_t n, idx_t count, Direction dir);

/// Per-level Stockham (DIF) twiddles for a power-of-two transform of size
/// n: level l covers sub-transform size n >> l and stores (n >> l)/2
/// twiddles w_{n>>l}^p.
std::vector<cvec> stockham_twiddles(idx_t n, Direction dir);

/// True if n is a power of two (n >= 1).
constexpr bool is_pow2(idx_t n) { return n > 0 && (n & (n - 1)) == 0; }

/// floor(log2(n)) for n >= 1.
constexpr int log2_floor(idx_t n) {
  int l = 0;
  while (n > 1) {
    n >>= 1;
    ++l;
  }
  return l;
}

}  // namespace bwfft
