#include "kernels/codelets.h"

#include <array>
#include <cmath>
#include <numbers>

#include "common/error.h"

namespace bwfft::codelets {

namespace {

constexpr double kPi = std::numbers::pi_v<double>;

/// Multiply by +/- i depending on direction: forward uses -i (since the
/// forward root of order 4 is w_4 = -i), inverse uses +i.
inline cplx rot90(cplx v, Direction dir) {
  return dir == Direction::Forward ? cplx(v.imag(), -v.real())
                                   : cplx(-v.imag(), v.real());
}

}  // namespace

const TrigTable& dft_trig(idx_t n) {
  BWFFT_ASSERT(n >= 2 && n <= kMaxCodelet);
  // The angle is evaluated as ((2.0 * pi) * j) / n — the same expression
  // shapes the unrolled codelets historically used (2*pi/5, 4*pi/5,
  // 2*pi*(j+1)/7, 2*pi*k/16), so hoisting the constants into this table
  // is bit-exact against the per-call computation it replaced.
  static const std::array<TrigTable, kMaxCodelet + 1> tables = [] {
    std::array<TrigTable, kMaxCodelet + 1> t{};
    for (idx_t n_ = 2; n_ <= kMaxCodelet; ++n_) {
      for (idx_t j = 0; j < n_; ++j) {
        const double ang = 2.0 * kPi * static_cast<double>(j) /
                           static_cast<double>(n_);
        t[n_].c[j] = std::cos(ang);
        t[n_].s[j] = std::sin(ang);
      }
    }
    return t;
  }();
  return tables[n];
}

void dft2(const cplx* in, idx_t is, cplx* out, idx_t os, Direction) {
  const cplx a = in[0], b = in[is];
  out[0] = a + b;
  out[os] = a - b;
}

void dft3(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir) {
  // Rader-style 3-point: w_3 = -1/2 +/- sqrt(3)/2 i.
  constexpr double c = -0.5;
  const double s = sign_of(dir) * std::sqrt(3.0) / 2.0;
  const cplx a = in[0], b = in[is], d = in[2 * is];
  const cplx t1 = b + d;
  const cplx t2 = b - d;
  const cplx m1 = a + c * t1;
  const cplx m2 = cplx(-s * t2.imag(), s * t2.real());
  out[0] = a + t1;
  out[os] = m1 + m2;
  out[2 * os] = m1 - m2;
}

void dft4(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir) {
  const cplx a = in[0], b = in[is], c = in[2 * is], d = in[3 * is];
  const cplx t0 = a + c, t1 = a - c;
  const cplx t2 = b + d, t3 = rot90(b - d, dir);
  out[0] = t0 + t2;
  out[os] = t1 + t3;
  out[2 * os] = t0 - t2;
  out[3 * os] = t1 - t3;
}

void dft5(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir) {
  // 5-point DFT via the standard symmetric/antisymmetric split.
  const TrigTable& tt = dft_trig(5);
  const double s = sign_of(dir);
  const double c1 = tt.c[1], s1 = s * tt.s[1];
  const double c2 = tt.c[2], s2 = s * tt.s[2];
  const cplx a = in[0];
  const cplx b = in[is], e = in[4 * is];
  const cplx c = in[2 * is], d = in[3 * is];
  const cplx p1 = b + e, m1 = b - e;
  const cplx p2 = c + d, m2 = c - d;
  out[0] = a + p1 + p2;
  const cplx r1 = a + c1 * p1 + c2 * p2;
  const cplx r2 = a + c2 * p1 + c1 * p2;
  // Imaginary contribution is +i * (s_a m1 + s_b m2): i*(x+iy) = (-y, x).
  const cplx v1 = s1 * m1 + s2 * m2;
  const cplx v2 = s2 * m1 - s1 * m2;
  const cplx i1 = cplx(-v1.imag(), v1.real());
  const cplx i2 = cplx(-v2.imag(), v2.real());
  out[os] = r1 + i1;
  out[2 * os] = r2 + i2;
  out[3 * os] = r2 - i2;
  out[4 * os] = r1 - i1;
}

void dft6(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir) {
  // Good–Thomas 6 = 2 x 3 (coprime): no twiddles needed.
  cplx col[2][3];
  // CRT input map: index (i1, i2) <- in[(3*i1 + 4*i2) mod 6].
  for (idx_t i1 = 0; i1 < 2; ++i1) {
    for (idx_t i2 = 0; i2 < 3; ++i2) {
      col[i1][i2] = in[((3 * i1 + 4 * i2) % 6) * is];
    }
  }
  cplx t[2][3];
  for (idx_t i1 = 0; i1 < 2; ++i1) dft3(col[i1], 1, t[i1], 1, dir);
  cplx u[3][2];
  for (idx_t i2 = 0; i2 < 3; ++i2) {
    const cplx pair[2] = {t[0][i2], t[1][i2]};
    cplx res[2];
    dft2(pair, 1, res, 1, dir);
    u[i2][0] = res[0];
    u[i2][1] = res[1];
  }
  // CRT output map: out[(3*k1 + 2*k2) mod 6] = u[k2][k1].
  for (idx_t k1 = 0; k1 < 2; ++k1) {
    for (idx_t k2 = 0; k2 < 3; ++k2) {
      out[((3 * k1 + 2 * k2) % 6) * os] = u[k2][k1];
    }
  }
}

void dft7(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir) {
  // Direct symmetric evaluation; 7 is prime and rarely hot, so clarity
  // over cleverness.
  const TrigTable& tt = dft_trig(7);
  const double s = sign_of(dir);
  const double cs[3] = {tt.c[1], tt.c[2], tt.c[3]};
  const double sn[3] = {s * tt.s[1], s * tt.s[2], s * tt.s[3]};
  const cplx a = in[0];
  cplx p[3], m[3];
  for (int j = 0; j < 3; ++j) {
    const cplx hi = in[(j + 1) * is];
    const cplx lo = in[(6 - j) * is];
    p[j] = hi + lo;
    m[j] = hi - lo;
  }
  out[0] = a + p[0] + p[1] + p[2];
  for (int k = 1; k <= 3; ++k) {
    cplx re = a;
    cplx im(0.0, 0.0);
    for (int j = 1; j <= 3; ++j) {
      const int idx = (k * j) % 7;
      const int fold = idx <= 3 ? idx : 7 - idx;
      const double sign_im = idx <= 3 ? 1.0 : -1.0;
      re += cs[fold - 1] * p[j - 1];
      im += sign_im * sn[fold - 1] * m[j - 1];
    }
    const cplx rot(-im.imag(), im.real());  // +i * im
    out[k * os] = re + rot;
    out[(7 - k) * os] = re - rot;
  }
}

void dft8(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir) {
  // Radix-2 DIT on top of two DFT4s, with the w_8 twiddles inlined.
  const double r = std::sqrt(0.5);
  cplx even[4], odd[4], fe[4], fo[4];
  for (idx_t j = 0; j < 4; ++j) {
    even[j] = in[2 * j * is];
    odd[j] = in[(2 * j + 1) * is];
  }
  dft4(even, 1, fe, 1, dir);
  dft4(odd, 1, fo, 1, dir);
  const double sg = sign_of(dir);
  const cplx w1(r, sg * r);        // w_8^1
  const cplx w2(0.0, sg);          // w_8^2
  const cplx w3(-r, sg * r);       // w_8^3
  const cplx t0 = fo[0], t1 = fo[1] * w1, t2 = fo[2] * w2, t3 = fo[3] * w3;
  out[0] = fe[0] + t0;
  out[os] = fe[1] + t1;
  out[2 * os] = fe[2] + t2;
  out[3 * os] = fe[3] + t3;
  out[4 * os] = fe[0] - t0;
  out[5 * os] = fe[1] - t1;
  out[6 * os] = fe[2] - t2;
  out[7 * os] = fe[3] - t3;
}

void dft16(const cplx* in, idx_t is, cplx* out, idx_t os, Direction dir) {
  // Radix-2 DIT on top of two DFT8s.
  cplx even[8], odd[8], fe[8], fo[8];
  for (idx_t j = 0; j < 8; ++j) {
    even[j] = in[2 * j * is];
    odd[j] = in[(2 * j + 1) * is];
  }
  dft8(even, 1, fe, 1, dir);
  dft8(odd, 1, fo, 1, dir);
  const TrigTable& tt = dft_trig(16);
  const double sg = sign_of(dir);
  for (idx_t k = 0; k < 8; ++k) {
    const cplx w(tt.c[k], sg * tt.s[k]);  // w_16^{+/-k}
    const cplx t = fo[k] * w;
    out[k * os] = fe[k] + t;
    out[(k + 8) * os] = fe[k] - t;
  }
}

namespace {

/// Table-driven direct DFT for the sizes without an unrolled body
/// (9..15). O(n^2), but these sizes only appear as mixed-radix leftovers,
/// never in the hot power-of-two schedules.
template <idx_t N>
void dft_direct(const cplx* in, idx_t is, cplx* out, idx_t os,
                Direction dir) {
  const TrigTable& tt = dft_trig(N);
  const double sg = sign_of(dir);
  for (idx_t k = 0; k < N; ++k) {
    cplx acc = in[0];
    for (idx_t j = 1; j < N; ++j) {
      const idx_t m = (j * k) % N;
      acc += in[j * is] * cplx(tt.c[m], sg * tt.s[m]);
    }
    out[k * os] = acc;
  }
}

}  // namespace

CodeletFn lookup(idx_t n) {
  switch (n) {
    case 2: return dft2;
    case 3: return dft3;
    case 4: return dft4;
    case 5: return dft5;
    case 6: return dft6;
    case 7: return dft7;
    case 8: return dft8;
    case 9: return dft_direct<9>;
    case 10: return dft_direct<10>;
    case 11: return dft_direct<11>;
    case 12: return dft_direct<12>;
    case 13: return dft_direct<13>;
    case 14: return dft_direct<14>;
    case 15: return dft_direct<15>;
    case 16: return dft16;
    default: return nullptr;
  }
}

}  // namespace bwfft::codelets
