#include "kernels/twiddle.h"

#include <cmath>
#include <numbers>

namespace bwfft {

cplx root_of_unity(idx_t n, idx_t p, Direction dir) {
  const double ang = sign_of(dir) * 2.0 * std::numbers::pi_v<double> *
                     static_cast<double>(p % n) / static_cast<double>(n);
  return cplx(std::cos(ang), std::sin(ang));
}

cvec root_table(idx_t n, idx_t count, Direction dir) {
  cvec t(static_cast<std::size_t>(count));
  for (idx_t p = 0; p < count; ++p) t[static_cast<std::size_t>(p)] = root_of_unity(n, p, dir);
  return t;
}

std::vector<cvec> stockham_twiddles(idx_t n, Direction dir) {
  std::vector<cvec> levels;
  for (idx_t len = n; len > 1; len >>= 1) {
    levels.push_back(root_table(len, len / 2, dir));
  }
  return levels;
}

}  // namespace bwfft
