// SIMD micro-operations on packets of interleaved complex doubles.
//
// The compute kernels operate on mu-element cacheline packets (§IV-A,
// "cache aware FFT"): a 64-byte packet holds four complex doubles, i.e.
// two AVX registers. The three primitives the Stockham butterfly needs are
// packet add, packet subtract, and multiply-packet-by-one-complex-scalar;
// each has an AVX2+FMA implementation and a portable scalar fallback
// selected at compile time. `force_scalar()` lets the ablation benchmarks
// disable the vector path at run time.
#pragma once

#include "common/types.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace bwfft {

/// Runtime switch (for ablation benches/tests): when true, all packet ops
/// take the scalar path even on AVX builds.
bool force_scalar();
void set_force_scalar(bool v);

namespace vecops {

/// dst[j] = a[j] + b[j], j < count (complex).
inline void cadd(const cplx* a, const cplx* b, cplx* dst, idx_t count) {
  for (idx_t j = 0; j < count; ++j) dst[j] = a[j] + b[j];
}

/// dst[j] = (a[j] - b[j]) * w, j < count — the twiddled half of a DIF
/// butterfly, with one complex scalar w broadcast over the packet.
inline void csub_mul_scalar(const cplx* a, const cplx* b, cplx w, cplx* dst,
                            idx_t count) {
  for (idx_t j = 0; j < count; ++j) dst[j] = (a[j] - b[j]) * w;
}

#if defined(__AVX2__) && defined(__FMA__)

/// Complex multiply of two interleaved-complex AVX registers by one
/// broadcast complex scalar (wr, wi):
///   out.re = v.re*wr - v.im*wi,  out.im = v.im*wr + v.re*wi
inline __m256d cmul_scalar(__m256d v, __m256d wr, __m256d wi) {
  const __m256d swapped = _mm256_permute_pd(v, 0b0101);  // [im, re, im, re]
  return _mm256_fmaddsub_pd(v, wr, _mm256_mul_pd(swapped, wi));
}

#if defined(__AVX512F__)
/// 512-bit variant: four interleaved complex doubles per register.
inline __m512d cmul_scalar512(__m512d v, __m512d wr, __m512d wi) {
  const __m512d swapped = _mm512_permute_pd(v, 0b01010101);
  return _mm512_fmaddsub_pd(v, wr, _mm512_mul_pd(swapped, wi));
}
#endif

/// Vector form of a whole DIF butterfly on `count` complex values:
///   lo[j] = a[j] + b[j];  hi[j] = (a[j] - b[j]) * w
/// `count` must be even (each __m256d holds two complex doubles).
inline void butterfly_packets(const cplx* a, const cplx* b, cplx w, cplx* lo,
                              cplx* hi, idx_t count) {
  const double* pa = reinterpret_cast<const double*>(a);
  const double* pb = reinterpret_cast<const double*>(b);
  double* plo = reinterpret_cast<double*>(lo);
  double* phi = reinterpret_cast<double*>(hi);
  idx_t j = 0;
#if defined(__AVX512F__)
  {
    const __m512d wr = _mm512_set1_pd(w.real());
    const __m512d wi = _mm512_set1_pd(w.imag());
    for (; j + 4 <= count; j += 4) {
      const __m512d va = _mm512_loadu_pd(pa + 2 * j);
      const __m512d vb = _mm512_loadu_pd(pb + 2 * j);
      _mm512_storeu_pd(plo + 2 * j, _mm512_add_pd(va, vb));
      _mm512_storeu_pd(phi + 2 * j,
                       cmul_scalar512(_mm512_sub_pd(va, vb), wr, wi));
    }
  }
#endif
  const __m256d wr = _mm256_set1_pd(w.real());
  const __m256d wi = _mm256_set1_pd(w.imag());
  for (; j < count; j += 2) {
    const __m256d va = _mm256_loadu_pd(pa + 2 * j);
    const __m256d vb = _mm256_loadu_pd(pb + 2 * j);
    _mm256_storeu_pd(plo + 2 * j, _mm256_add_pd(va, vb));
    _mm256_storeu_pd(phi + 2 * j, cmul_scalar(_mm256_sub_pd(va, vb), wr, wi));
  }
}

/// Multiply by -i (forward) / +i (inverse): (re,im) -> (im,-re) / (-im,re).
inline __m256d rot90v(__m256d v, Direction dir) {
  const __m256d swapped = _mm256_permute_pd(v, 0b0101);
  const __m256d mask = dir == Direction::Forward
                           ? _mm256_set_pd(-0.0, 0.0, -0.0, 0.0)
                           : _mm256_set_pd(0.0, -0.0, 0.0, -0.0);
  return _mm256_xor_pd(swapped, mask);
}

/// Radix-4 DIF butterfly on `count` complex values (count even):
///   y0 = (a+c) + (b+d)
///   y1 = w1 ((a-c) + rot90(b-d))
///   y2 = w2 ((a+c) - (b+d))
///   y3 = w3 ((a-c) - rot90(b-d))
/// where rot90 multiplies by -i forward / +i inverse.
inline void butterfly4_packets(const cplx* a, const cplx* b, const cplx* c,
                               const cplx* d, cplx w1, cplx w2, cplx w3,
                               cplx* y0, cplx* y1, cplx* y2, cplx* y3,
                               idx_t count, Direction dir) {
  const __m256d w1r = _mm256_set1_pd(w1.real()), w1i = _mm256_set1_pd(w1.imag());
  const __m256d w2r = _mm256_set1_pd(w2.real()), w2i = _mm256_set1_pd(w2.imag());
  const __m256d w3r = _mm256_set1_pd(w3.real()), w3i = _mm256_set1_pd(w3.imag());
  const double* pa = reinterpret_cast<const double*>(a);
  const double* pb = reinterpret_cast<const double*>(b);
  const double* pc = reinterpret_cast<const double*>(c);
  const double* pd = reinterpret_cast<const double*>(d);
  double* p0 = reinterpret_cast<double*>(y0);
  double* p1 = reinterpret_cast<double*>(y1);
  double* p2 = reinterpret_cast<double*>(y2);
  double* p3 = reinterpret_cast<double*>(y3);
  for (idx_t j = 0; j < count; j += 2) {
    const __m256d va = _mm256_loadu_pd(pa + 2 * j);
    const __m256d vb = _mm256_loadu_pd(pb + 2 * j);
    const __m256d vc = _mm256_loadu_pd(pc + 2 * j);
    const __m256d vd = _mm256_loadu_pd(pd + 2 * j);
    const __m256d apc = _mm256_add_pd(va, vc);
    const __m256d amc = _mm256_sub_pd(va, vc);
    const __m256d bpd = _mm256_add_pd(vb, vd);
    const __m256d rbd = rot90v(_mm256_sub_pd(vb, vd), dir);
    _mm256_storeu_pd(p0 + 2 * j, _mm256_add_pd(apc, bpd));
    _mm256_storeu_pd(p1 + 2 * j,
                     cmul_scalar(_mm256_add_pd(amc, rbd), w1r, w1i));
    _mm256_storeu_pd(p2 + 2 * j,
                     cmul_scalar(_mm256_sub_pd(apc, bpd), w2r, w2i));
    _mm256_storeu_pd(p3 + 2 * j,
                     cmul_scalar(_mm256_sub_pd(amc, rbd), w3r, w3i));
  }
}

inline constexpr bool kHaveAvx2Fma = true;

#else

inline void butterfly_packets(const cplx* a, const cplx* b, cplx w, cplx* lo,
                              cplx* hi, idx_t count) {
  cadd(a, b, lo, count);
  csub_mul_scalar(a, b, w, hi, count);
}

inline constexpr bool kHaveAvx2Fma = false;

#endif

/// Scalar fallback with identical semantics to butterfly_packets.
inline void butterfly_packets_scalar(const cplx* a, const cplx* b, cplx w,
                                     cplx* lo, cplx* hi, idx_t count) {
  cadd(a, b, lo, count);
  csub_mul_scalar(a, b, w, hi, count);
}

/// Scalar radix-4 DIF butterfly with identical semantics to
/// butterfly4_packets.
inline void butterfly4_packets_scalar(const cplx* a, const cplx* b,
                                      const cplx* c, const cplx* d, cplx w1,
                                      cplx w2, cplx w3, cplx* y0, cplx* y1,
                                      cplx* y2, cplx* y3, idx_t count,
                                      Direction dir) {
  for (idx_t j = 0; j < count; ++j) {
    const cplx apc = a[j] + c[j];
    const cplx amc = a[j] - c[j];
    const cplx bpd = b[j] + d[j];
    const cplx bmd = b[j] - d[j];
    const cplx rbd = dir == Direction::Forward
                         ? cplx(bmd.imag(), -bmd.real())
                         : cplx(-bmd.imag(), bmd.real());
    y0[j] = apc + bpd;
    y1[j] = w1 * (amc + rbd);
    y2[j] = w2 * (apc - bpd);
    y3[j] = w3 * (amc - rbd);
  }
}

#if !defined(__AVX2__) || !defined(__FMA__)
inline void butterfly4_packets(const cplx* a, const cplx* b, const cplx* c,
                               const cplx* d, cplx w1, cplx w2, cplx w3,
                               cplx* y0, cplx* y1, cplx* y2, cplx* y3,
                               idx_t count, Direction dir) {
  butterfly4_packets_scalar(a, b, c, d, w1, w2, w3, y0, y1, y2, y3, count,
                            dir);
}
#endif

}  // namespace vecops
}  // namespace bwfft
