#include "kernels/isa.h"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "common/cpu.h"
#include "kernels/vecops.h"

namespace bwfft::kernels {

namespace {

Isa clamp_to_host(Isa isa) {
  const Isa best = detected_isa();
  return static_cast<int>(isa) > static_cast<int>(best) ? best : isa;
}

/// BWFFT_ISA, parsed once. Unset or unparsable -> Auto (a typo should not
/// silently de-vectorise a production run; the dispatch report shows what
/// was read).
Isa env_request() {
  static const Isa parsed = [] {
    const char* v = std::getenv("BWFFT_ISA");
    if (v == nullptr || *v == '\0') return Isa::Auto;
    Isa isa = Isa::Auto;
    if (!isa_from_name(v, &isa)) return Isa::Auto;
    return isa;
  }();
  return parsed;
}

std::atomic<int> g_override{static_cast<int>(Isa::Auto)};

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Auto: return "auto";
    case Isa::Scalar: return "scalar";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
  }
  return "?";
}

bool isa_from_name(const std::string& name, Isa* out) {
  if (name == "auto") { *out = Isa::Auto; return true; }
  if (name == "scalar") { *out = Isa::Scalar; return true; }
  if (name == "avx2") { *out = Isa::Avx2; return true; }
  if (name == "avx512" || name == "avx512f") { *out = Isa::Avx512; return true; }
  return false;
}

Isa detected_isa() {
  static const Isa best = [] {
    const CpuFeatures& f = cpu_features();
    if (f.avx512f) return Isa::Avx512;
    if (f.avx2 && f.fma) return Isa::Avx2;
    return Isa::Scalar;
  }();
  return best;
}

bool isa_available(Isa isa) {
  if (isa == Isa::Auto) return true;
  return static_cast<int>(isa) <= static_cast<int>(detected_isa());
}

Isa active_isa() { return resolve_isa(Isa::Auto); }

Isa resolve_isa(Isa requested) {
  if (force_scalar()) return Isa::Scalar;
  if (requested != Isa::Auto) return clamp_to_host(requested);
  const Isa ovr = static_cast<Isa>(g_override.load(std::memory_order_relaxed));
  if (ovr != Isa::Auto) return clamp_to_host(ovr);
  if (env_request() != Isa::Auto) return clamp_to_host(env_request());
  return detected_isa();
}

void set_isa_override(Isa isa) {
  g_override.store(static_cast<int>(isa), std::memory_order_relaxed);
}

Isa isa_override() {
  return static_cast<Isa>(g_override.load(std::memory_order_relaxed));
}

std::string dispatch_report() {
  const CpuFeatures& f = cpu_features();
  std::ostringstream os;
  os << "cpu: " << cpu_summary() << "\n";
  os << "features: sse2=" << f.sse2 << " avx=" << f.avx << " avx2=" << f.avx2
     << " fma=" << f.fma << " avx512f=" << f.avx512f << "\n";
  os << "detected: " << isa_name(detected_isa()) << "\n";
  const char* env = std::getenv("BWFFT_ISA");
  os << "env BWFFT_ISA: " << (env != nullptr ? env : "(unset)") << "\n";
  os << "override: " << isa_name(isa_override()) << "\n";
  os << "force_scalar: " << (force_scalar() ? 1 : 0) << "\n";
  os << "active: " << isa_name(active_isa()) << "\n";
  return os.str();
}

}  // namespace bwfft::kernels
