// Tests for the paper's SPL factorisations: every decomposition of
// §II-D/§III-A/§III-B/§IV-B must equal the dense multidimensional DFT.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "spl/algorithms.h"
#include "test_util.h"

namespace bwfft::spl {
namespace {

using bwfft::test::max_err;

ExprPtr dense_2d(idx_t n, idx_t m, Direction dir = Direction::Forward) {
  return kron(dft(n, dir), dft(m, dir));
}

ExprPtr dense_3d(idx_t k, idx_t n, idx_t m, Direction dir = Direction::Forward) {
  return kron(dft(k, dir), kron(dft(n, dir), dft(m, dir)));
}

TEST(SplAlgorithms, CooleyTukeyEqualsDenseDft) {
  for (auto [m, n] : {std::pair<idx_t, idx_t>{2, 4},
                      {4, 4},
                      {8, 2},
                      {3, 5},
                      {4, 6}}) {
    auto ct = cooley_tukey(m, n);
    EXPECT_LT(max_abs_diff(*ct, *dft(m * n)), 1e-10)
        << "m=" << m << " n=" << n;
  }
}

TEST(SplAlgorithms, CooleyTukeyInverseDirection) {
  auto ct = cooley_tukey(4, 4, Direction::Inverse);
  EXPECT_LT(max_abs_diff(*ct, *dft(16, Direction::Inverse)), 1e-10);
}

TEST(SplAlgorithms, Pencil2dEqualsDense) {
  EXPECT_LT(max_abs_diff(*dft2d_pencil(4, 6), *dense_2d(4, 6)), 1e-10);
}

TEST(SplAlgorithms, Transposed2dEqualsDense) {
  EXPECT_LT(max_abs_diff(*dft2d_transposed(4, 6), *dense_2d(4, 6)), 1e-10);
  EXPECT_LT(max_abs_diff(*dft2d_transposed(8, 4), *dense_2d(8, 4)), 1e-10);
}

TEST(SplAlgorithms, Blocked2dEqualsDense) {
  // mu = 2 and 4 cover the cacheline-packet blocking of §III-A.
  EXPECT_LT(max_abs_diff(*dft2d_blocked(4, 8, 2), *dense_2d(4, 8)), 1e-10);
  EXPECT_LT(max_abs_diff(*dft2d_blocked(4, 8, 4), *dense_2d(4, 8)), 1e-10);
  EXPECT_LT(max_abs_diff(*dft2d_blocked(6, 4, 2), *dense_2d(6, 4)), 1e-10);
}

TEST(SplAlgorithms, Pencil3dEqualsDense) {
  EXPECT_LT(max_abs_diff(*dft3d_pencil(2, 4, 4), *dense_3d(2, 4, 4)), 1e-10);
}

TEST(SplAlgorithms, SlabPencil3dEqualsDense) {
  EXPECT_LT(max_abs_diff(*dft3d_slab_pencil(3, 2, 4), *dense_3d(3, 2, 4)),
            1e-10);
}

// Fig 5 semantics: K_c^{a,b} maps cube a x b x c to cube c x a x b with
// out[ci][ai][bi] = in[ai][bi][ci].
TEST(SplAlgorithms, RotationMovesCubeEntries) {
  const idx_t a = 2, b = 3, c = 4;
  auto x = random_cvec(a * b * c, 13);
  auto y = (*rotation_k(a, b, c))(x);
  for (idx_t ai = 0; ai < a; ++ai) {
    for (idx_t bi = 0; bi < b; ++bi) {
      for (idx_t ci = 0; ci < c; ++ci) {
        EXPECT_EQ(x[static_cast<std::size_t>(ai * b * c + bi * c + ci)],
                  y[static_cast<std::size_t>(ci * a * b + ai * b + bi)]);
      }
    }
  }
}

// Three rotations cycle the cube back to the original orientation.
TEST(SplAlgorithms, ThreeRotationsAreIdentity) {
  const idx_t k = 2, n = 3, m = 4;
  auto three = compose({
      rotation_k(n, m, k),  // n x m x k -> k x n x m
      rotation_k(m, k, n),  // m x k x n -> n x m x k
      rotation_k(k, n, m),  // k x n x m -> m x k x n
  });
  EXPECT_LT(max_abs_diff(*three, *identity(k * n * m)), 1e-15);
}

TEST(SplAlgorithms, BlockedRotationWithMuOneIsElementRotation) {
  EXPECT_LT(max_abs_diff(*rotation_k_blocked(2, 3, 4, 1), *rotation_k(2, 3, 4)),
            1e-15);
}

// The paper's adopted decomposition (§III-A) equals the dense 3D DFT and
// ends in natural order — for several shapes and packet sizes.
TEST(SplAlgorithms, Rotated3dEqualsDense) {
  struct Case {
    idx_t k, n, m, mu;
  };
  for (const Case& c : {Case{2, 2, 4, 2}, Case{2, 4, 4, 4}, Case{4, 2, 8, 4},
                        Case{3, 2, 4, 2}, Case{2, 3, 6, 2}}) {
    auto got = dft3d_rotated(c.k, c.n, c.m, c.mu);
    EXPECT_LT(max_abs_diff(*got, *dense_3d(c.k, c.n, c.m)), 1e-10)
        << c.k << "x" << c.n << "x" << c.m << " mu=" << c.mu;
  }
}

TEST(SplAlgorithms, Rotated2dViaBlockedFormulaEqualsDense) {
  EXPECT_LT(max_abs_diff(*dft2d_blocked(4, 8, 4), *dense_2d(4, 8)), 1e-10);
}

// §III-B: the tiled stage-1 sum over W_{b,i} . compute . R_{b,i} equals
// the untiled stage 1.
TEST(SplAlgorithms, TiledStage1SumEqualsWholeStage) {
  const idx_t k = 2, n = 4, m = 4, mu = 2, b = 16;
  auto whole = compose({rotation_k_blocked(k, n, m, mu),
                        kron(identity(k * n), dft(m))});
  auto iters = stage1_tiled(k, n, m, mu, b);
  ASSERT_EQ(static_cast<std::size_t>(k * n * m / b), iters.size());
  auto x = random_cvec(k * n * m, 14);
  cvec acc(static_cast<std::size_t>(k * n * m), cplx(0, 0));
  for (const auto& it : iters) {
    auto piece = (*it)(x);
    for (std::size_t j = 0; j < acc.size(); ++j) acc[j] += piece[j];
  }
  auto want = (*whole)(x);
  EXPECT_LT(max_err(want, acc), 1e-10);
}

// Read matrices load contiguous windows (streaming-friendly, §III-C).
TEST(SplAlgorithms, ReadMatrixIsContiguousWindow) {
  auto x = random_cvec(24, 15);
  auto y = (*read_matrix(24, 6, 2))(x);
  for (idx_t j = 0; j < 6; ++j) EXPECT_EQ(x[static_cast<std::size_t>(12 + j)], y[static_cast<std::size_t>(j)]);
}

// Table III / §IV-B: the dual-socket factorisation equals the dense 3D
// DFT for two sockets (and degrades to the single-socket one for sk = 1).
TEST(SplAlgorithms, DualSocketEqualsDense) {
  struct Case {
    idx_t k, n, m, mu, sk;
  };
  for (const Case& c : {Case{4, 4, 4, 2, 2}, Case{4, 2, 4, 2, 2},
                        Case{2, 2, 4, 2, 1}, Case{4, 4, 8, 4, 2}}) {
    auto got = dft3d_dual_socket(c.k, c.n, c.m, c.mu, c.sk);
    EXPECT_LT(max_abs_diff(*got, *dense_3d(c.k, c.n, c.m)), 1e-10)
        << c.k << "x" << c.n << "x" << c.m << " sk=" << c.sk;
  }
}

// Stage-1 writes must stay within the owning socket's slab: W1 applied to
// a vector supported on socket 0's slab stays in socket 0's slab.
TEST(SplAlgorithms, DualSocketW1IsSocketLocal) {
  const idx_t k = 4, n = 2, m = 4, mu = 2, sk = 2;
  const idx_t slab = k * n * m / sk;
  auto w1 = dual_socket_w1(k, n, m, mu, sk);
  cvec x(static_cast<std::size_t>(k * n * m), cplx(0, 0));
  fill_random(x.data(), slab, 16);  // support only on slab 0
  auto y = (*w1)(x);
  for (idx_t j = slab; j < k * n * m; ++j) {
    EXPECT_EQ(cplx(0, 0), y[static_cast<std::size_t>(j)]);
  }
}

TEST(SplAlgorithms, DualSocketRequiresDivisibility) {
  EXPECT_THROW(dft3d_dual_socket(3, 4, 4, 2, 2), Error);  // sk does not divide k
  EXPECT_THROW(dft3d_dual_socket(4, 3, 4, 2, 2), Error);  // sk does not divide n
}

}  // namespace
}  // namespace bwfft::spl
