// Cross-check of the symbolic schedule verifier against the PR-1 runtime
// hazard checker: on identical traces the two must agree — both clean on
// the canonical Table II trace (and on the trace of a REAL pipeline
// execution), both dirty on every corruption. A disagreement means one of
// the two models of the schedule has drifted from the other.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/hazard_checker.h"
#include "analysis/static_verify.h"
#include "common/rng.h"
#include "common/topology.h"
#include "parallel/roles.h"
#include "parallel/team.h"
#include "pipeline/pipeline.h"

namespace bwfft {
namespace {

using analysis::Trace;

RolePlan roles_for(int total, int compute) {
  return make_role_plan(total, compute, host_topology());
}

void expect_both_clean(const Trace& trace, idx_t iters,
                       const RolePlan& roles) {
  const auto sym = analysis::verify_schedule_symbolic(trace, iters, roles);
  const auto dyn = analysis::audit_schedule(trace, iters, roles);
  EXPECT_TRUE(sym.clean()) << "symbolic: " << sym.str();
  EXPECT_TRUE(dyn.clean()) << "runtime: " << dyn.str();
}

void expect_both_dirty(const Trace& trace, idx_t iters,
                       const RolePlan& roles) {
  EXPECT_FALSE(
      analysis::verify_schedule_symbolic(trace, iters, roles).clean());
  EXPECT_FALSE(analysis::audit_schedule(trace, iters, roles).clean());
}

TEST(CrossCheck, CanonicalTracesAgreeClean) {
  for (int threads : {2, 4, 8}) {
    for (int compute : {threads / 2, threads - 1, threads}) {
      if (compute < 1) continue;
      const RolePlan roles = roles_for(threads, compute);
      for (idx_t iters : {idx_t{1}, idx_t{2}, idx_t{6}}) {
        const Trace trace = analysis::make_table2_trace(iters, roles);
        expect_both_clean(trace, iters, roles);
      }
    }
  }
}

TEST(CrossCheck, DegradedSequentialScheduleAgrees) {
  // compute == total leaves no data threads: the degraded sequential
  // schedule, which both checkers must also accept.
  const RolePlan roles = roles_for(4, 4);
  ASSERT_EQ(roles.data, 0);
  for (idx_t iters : {idx_t{1}, idx_t{3}}) {
    expect_both_clean(analysis::make_table2_trace(iters, roles), iters,
                      roles);
  }
}

TEST(CrossCheck, SingleThreadTeamAgrees) {
  const RolePlan roles = roles_for(1, 1);
  expect_both_clean(analysis::make_table2_trace(4, roles), 4, roles);
}

// Every corruption of a valid trace must be rejected by BOTH checkers —
// this is the deliberately-corrupted-schedule case of the cross-check.
class CrossCheckCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    roles_ = roles_for(4, 2);
    ASSERT_GT(roles_.data, 0);
    trace_ = analysis::make_table2_trace(iters_, roles_);
    ASSERT_FALSE(trace_.empty());
  }

  idx_t iters_ = 4;
  RolePlan roles_;
  Trace trace_;
};

TEST_F(CrossCheckCorruption, WrongHalf) {
  trace_.front().half ^= 1;
  expect_both_dirty(trace_, iters_, roles_);
}

TEST_F(CrossCheckCorruption, DuplicateEvent) {
  trace_.push_back(trace_.front());
  expect_both_dirty(trace_, iters_, roles_);
}

TEST_F(CrossCheckCorruption, MissingEvent) {
  trace_.pop_back();
  expect_both_dirty(trace_, iters_, roles_);
}

TEST_F(CrossCheckCorruption, WrongStep) {
  trace_.front().step += 1;
  expect_both_dirty(trace_, iters_, roles_);
}

TEST_F(CrossCheckCorruption, StoreBeforeLoadSwap) {
  // Swap a data thread's store(i-2) with its load(i) inside one step:
  // the S4 retire-before-refill order is violated while every slot stays
  // filled.
  using Kind = DoubleBufferPipeline::TraceEvent::Kind;
  bool swapped = false;
  for (std::size_t i = 0; i + 1 < trace_.size() && !swapped; ++i) {
    auto& a = trace_[i];
    auto& b = trace_[i + 1];
    if (a.kind == Kind::Store && b.kind == Kind::Load && a.tid == b.tid &&
        a.step == b.step) {
      std::swap(a, b);
      swapped = true;
    }
  }
  ASSERT_TRUE(swapped) << "no store/load pair found to swap";
  expect_both_dirty(trace_, iters_, roles_);
}

TEST(CrossCheck, RealPipelineTraceAcceptedBySymbolicChecker) {
  // The strongest agreement statement: the trace of an actual pipelined
  // execution satisfies the symbolic checker, so the static model of the
  // schedule matches what the code really runs.
  const int threads = 4;
  const idx_t block = 256, iters = 5;
  ThreadTeam team(threads);
  const RolePlan roles = roles_for(threads, 2);
  DoubleBufferPipeline pipe(team, roles, block);

  const idx_t total = block * iters;
  cvec src = random_cvec(total, 11);
  cvec dst(static_cast<std::size_t>(total));
  PipelineStage stage;
  stage.iterations = iters;
  stage.load = [&](idx_t i, cplx* buf, int rank, int parts) {
    auto [b, e] = ThreadTeam::chunk(block, parts, rank);
    std::memcpy(buf + b, src.data() + i * block + b,
                static_cast<std::size_t>(e - b) * sizeof(cplx));
  };
  stage.compute = [](idx_t, cplx*, int, int) {};
  stage.store = [&](idx_t i, const cplx* buf, int rank, int parts) {
    auto [b, e] = ThreadTeam::chunk(block, parts, rank);
    std::memcpy(dst.data() + i * block + b, buf + b,
                static_cast<std::size_t>(e - b) * sizeof(cplx));
  };

  Trace trace;
  pipe.set_trace(&trace);
  pipe.execute(stage);
  pipe.set_trace(nullptr);

  const auto sym = analysis::verify_schedule_symbolic(trace, iters, roles);
  EXPECT_TRUE(sym.clean()) << sym.str();
  const auto dyn = analysis::audit_schedule(trace, iters, roles);
  EXPECT_TRUE(dyn.clean()) << dyn.str();
}

}  // namespace
}  // namespace bwfft
