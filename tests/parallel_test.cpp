// Tests for the parallel substrate: barrier under contention, team
// execution and exception propagation, chunking, role plans, NUMA arrays.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <numeric>
#include <thread>

#include "common/rng.h"
#include "parallel/numa.h"
#include "parallel/roles.h"
#include "parallel/team.h"

namespace bwfft {
namespace {

TEST(Barrier, PhasesStayInLockstep) {
  const int threads = 8, phases = 200;
  ThreadTeam team(threads);
  std::atomic<int> counter{0};
  std::atomic<bool> violation{false};
  team.run([&](int) {
    for (int ph = 0; ph < phases; ++ph) {
      counter.fetch_add(1);
      team.barrier().arrive_and_wait();
      // After the barrier every thread must observe the full phase count.
      if (counter.load() < threads * (ph + 1)) violation = true;
      team.barrier().arrive_and_wait();
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(threads * phases, counter.load());
}

// Reuse across many generations with an uneven arrival pattern: odd
// threads burn time before arriving, so the generation counter is
// exercised with stragglers in every phase.
TEST(Barrier, ReuseAcrossGenerationsWithStragglers) {
  const int threads = 4, generations = 500;
  ThreadTeam team(threads);
  std::vector<int> per_gen(generations, 0);
  std::mutex mu;
  team.run([&](int tid) {
    for (int g = 0; g < generations; ++g) {
      if (tid % 2 == 1) {
        for (volatile int spin = 0; spin < 50 * (g % 7); ++spin) {
        }
      }
      {
        std::lock_guard<std::mutex> lk(mu);
        per_gen[static_cast<std::size_t>(g)]++;
      }
      team.barrier().arrive_and_wait();
      // A generation may only be entered once the previous one fully
      // drained: after the barrier, this generation's count is complete.
      {
        std::lock_guard<std::mutex> lk(mu);
        if (per_gen[static_cast<std::size_t>(g)] != threads) {
          ADD_FAILURE() << "generation " << g << " saw "
                        << per_gen[static_cast<std::size_t>(g)] << " arrivals";
        }
      }
      team.barrier().arrive_and_wait();
    }
  });
  for (int g = 0; g < generations; ++g) EXPECT_EQ(threads, per_gen[g]);
}

// Deadlock aid: a party that never arrives makes the waiters throw a
// diagnostic naming the missing party count instead of hanging forever.
TEST(Barrier, StallTimeoutReportsMissingParties) {
  SpinBarrier barrier(3);
  barrier.set_stall_timeout_ms(100);
  EXPECT_EQ(100, barrier.stall_timeout_ms());
  // A second party arrives; the third never does, so both waiters throw.
  std::thread t([&] {
    try {
      barrier.arrive_and_wait();
    } catch (const Error&) {  // its own stall report
    }
  });
  try {
    barrier.arrive_and_wait();
    t.join();
    FAIL() << "expected the barrier to report a stall";
  } catch (const Error& e) {
    t.join();
    const std::string msg = e.what();
    EXPECT_NE(msg.find("SpinBarrier stall"), std::string::npos) << msg;
    EXPECT_NE(msg.find("of 3 parties"), std::string::npos) << msg;
    EXPECT_NE(msg.find("generation 0"), std::string::npos) << msg;
  }
}

TEST(Barrier, StallTimeoutDisarmedAllowsLateArrival) {
  SpinBarrier barrier(2);
  barrier.set_stall_timeout_ms(0);  // explicit off, any build type
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    barrier.arrive_and_wait();
  });
  barrier.arrive_and_wait();  // must simply wait the 50 ms out
  late.join();
}

TEST(Team, RunExecutesEveryThreadExactlyOnce) {
  ThreadTeam team(5);
  std::vector<std::atomic<int>> hits(5);
  team.run([&](int tid) { hits[static_cast<std::size_t>(tid)]++; });
  for (const auto& h : hits) EXPECT_EQ(1, h.load());
}

TEST(Team, ReusableAcrossManyRuns) {
  ThreadTeam team(3);
  std::atomic<int> total{0};
  for (int r = 0; r < 50; ++r) {
    team.run([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(150, total.load());
}

TEST(Team, PropagatesExceptions) {
  ThreadTeam team(4);
  EXPECT_THROW(team.run([&](int tid) {
    if (tid == 2) throw Error("boom");
  }),
               Error);
  // Team must remain usable after the failure.
  std::atomic<int> ok{0};
  team.run([&](int) { ok.fetch_add(1); });
  EXPECT_EQ(4, ok.load());
}

TEST(Team, ThrowingJobDoesNotDeadlockBarrierWaiters) {
  // Regression: a job that threw while its teammates were blocked in
  // arrive_and_wait() used to deadlock the team — the waiters spun
  // forever on a count the dead thread would never contribute, and run()
  // never returned. The barrier abort protocol drains the waiters (they
  // throw) and the ORIGINAL error is the one rethrown, not the drain
  // error of a surviving teammate.
  ThreadTeam team(4);
  try {
    team.run([&](int tid) {
      if (tid == 0) throw Error("original failure");
      team.barrier().arrive_and_wait();  // deadlocks without the abort
    });
    FAIL() << "run() must rethrow the job's exception";
  } catch (const Error& e) {
    EXPECT_NE(nullptr, std::strstr(e.what(), "original failure"));
  }
  // The abort flag must be reset: the team AND its barrier stay usable.
  std::atomic<int> crossed{0};
  team.run([&](int) {
    team.barrier().arrive_and_wait();
    crossed.fetch_add(1);
    team.barrier().arrive_and_wait();
  });
  EXPECT_EQ(4, crossed.load());
}

TEST(Team, AbortDrainsMultiplePipelineSteps) {
  // A throwing thread must also unblock teammates that are several
  // barrier rounds into a pipelined loop, mirroring the Table II step
  // structure where only some threads hit the failing task.
  ThreadTeam team(3);
  EXPECT_THROW(team.run([&](int tid) {
                 for (int step = 0; step < 8; ++step) {
                   if (tid == 1 && step == 3) throw Error("step failure");
                   team.barrier().arrive_and_wait();
                 }
               }),
               Error);
  std::atomic<int> ok{0};
  team.run([&](int) { ok.fetch_add(1); });
  EXPECT_EQ(3, ok.load());
}

TEST(Team, ChunkCoversRangeWithoutOverlap) {
  for (idx_t total : {0, 1, 7, 64, 1000}) {
    for (int parts : {1, 3, 8}) {
      idx_t covered = 0;
      idx_t prev_end = 0;
      for (int p = 0; p < parts; ++p) {
        auto [b, e] = ThreadTeam::chunk(total, parts, p);
        EXPECT_EQ(prev_end, b);
        EXPECT_LE(b, e);
        covered += e - b;
        prev_end = e;
      }
      EXPECT_EQ(total, covered);
      EXPECT_EQ(total, prev_end);
    }
  }
}

TEST(Team, ChunkSizesDifferByAtMostOne) {
  idx_t mn = 1 << 30, mx = 0;
  for (int p = 0; p < 7; ++p) {
    auto [b, e] = ThreadTeam::chunk(23, 7, p);
    mn = std::min(mn, e - b);
    mx = std::max(mx, e - b);
  }
  EXPECT_LE(mx - mn, 1);
}

TEST(ParallelFor, SumsCorrectly) {
  ThreadTeam team(4);
  const idx_t n = 1000;
  std::vector<int> data(static_cast<std::size_t>(n), 0);
  parallel_for_chunks(team, n, [&](int, idx_t b, idx_t e) {
    for (idx_t i = b; i < e; ++i) data[static_cast<std::size_t>(i)] = 1;
  });
  EXPECT_EQ(n, std::accumulate(data.begin(), data.end(), idx_t{0}));
}

TEST(Roles, EvenSplitPairsComputeAndData) {
  auto topo = machines::kabylake_7700k();
  RolePlan plan = make_even_role_plan(8, topo);
  EXPECT_EQ(4, plan.compute);
  EXPECT_EQ(4, plan.data);
  // Pairs (2i, 2i+1): compute first, data second (§IV-A pairing).
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(Role::Compute, plan.role_of(2 * i));
    EXPECT_EQ(Role::Data, plan.role_of(2 * i + 1));
    // On SMT topologies the pair shares a core's two hyperthreads.
    EXPECT_EQ(2 * i, plan.cpu[static_cast<std::size_t>(2 * i)]);
    EXPECT_EQ(2 * i + 1, plan.cpu[static_cast<std::size_t>(2 * i + 1)]);
  }
}

TEST(Roles, NonSmtSharesPhysicalCore) {
  auto topo = machines::amd_fx8350();  // no SMT
  RolePlan plan = make_even_role_plan(8, topo);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(plan.cpu[static_cast<std::size_t>(2 * i)],
              plan.cpu[static_cast<std::size_t>(2 * i + 1)]);
  }
}

TEST(Roles, GroupRanksAreDense) {
  RolePlan plan = make_role_plan(6, 4, host_topology());
  std::vector<int> comp, data;
  for (int t = 0; t < 6; ++t) {
    (plan.is_compute(t) ? comp : data).push_back(plan.group_rank(t));
  }
  std::sort(comp.begin(), comp.end());
  std::sort(data.begin(), data.end());
  for (std::size_t i = 0; i < comp.size(); ++i) EXPECT_EQ(static_cast<int>(i), comp[i]);
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(static_cast<int>(i), data[i]);
}

TEST(Roles, SingleThreadComputes) {
  RolePlan plan = make_even_role_plan(1, host_topology());
  EXPECT_EQ(1, plan.compute);
  EXPECT_EQ(0, plan.data);
  EXPECT_TRUE(plan.is_compute(0));
}

TEST(Numa, SlabsAreIndependentAndGatherable) {
  NumaArray arr(2, 8);
  for (idx_t i = 0; i < 8; ++i) {
    arr.slab(0)[i] = cplx(static_cast<double>(i), 0);
    arr.slab(1)[i] = cplx(0, static_cast<double>(i));
  }
  auto flat = arr.to_contiguous();
  ASSERT_EQ(16u, flat.size());
  EXPECT_EQ(cplx(3, 0), flat[3]);
  EXPECT_EQ(cplx(0, 5), flat[13]);
  EXPECT_EQ(cplx(0, 5), *arr.at(13));

  cvec back(16);
  for (idx_t i = 0; i < 16; ++i) back[static_cast<std::size_t>(i)] = cplx(1, 1);
  arr.from_contiguous(back);
  EXPECT_EQ(cplx(1, 1), arr.slab(1)[7]);
}

TEST(Numa, LinkTrafficModel) {
  LinkTraffic t;
  t.record_write(19'200'000'000ull);  // 19.2 GB
  EXPECT_NEAR(1.0, t.modeled_seconds(19.2), 1e-12);
  t.reset();
  EXPECT_EQ(0.0, t.modeled_seconds(19.2));
  EXPECT_EQ(0.0, t.modeled_seconds(0.0));
}

TEST(Topology, PaperMachineProfiles) {
  auto kaby = machines::kabylake_7700k();
  EXPECT_EQ(8, kaby.total_threads());
  EXPECT_EQ(40.0, kaby.stream_bw_gbs);
  // Shared buffer = LLC/2 elements.
  EXPECT_EQ(static_cast<idx_t>(4u << 20) / static_cast<idx_t>(sizeof(cplx)),
            kaby.shared_buffer_elems());

  auto two = machines::haswell_2667v3();
  EXPECT_EQ(2, two.sockets);
  EXPECT_EQ(16, two.total_threads());
  EXPECT_GT(two.link_bw_gbs, 0.0);
}

}  // namespace
}  // namespace bwfft
