// Tests for the data-movement kernels: every transpose/rotation kernel is
// checked against its SPL term's dense semantics, plus round-trip and
// format-change properties.
#include <gtest/gtest.h>

#include <thread>

#include "common/aligned.h"
#include "common/rng.h"
#include "layout/format.h"
#include "obs/obs.h"
#include "layout/rotate.h"
#include "layout/stream_copy.h"
#include "layout/transpose.h"
#include "spl/algorithms.h"
#include "test_util.h"

namespace bwfft {
namespace {

using test::max_err;

TEST(Transpose, MatchesStridePerm) {
  const idx_t r = 5, c = 7;
  auto x = random_cvec(r * c, 21);
  cvec got(x.size());
  transpose(x.data(), got.data(), r, c);
  auto want = (*spl::stride_perm(r * c, c))(x);
  EXPECT_EQ(0.0, max_err(want, got));
}

TEST(Transpose, TiledMatchesPlain) {
  const idx_t r = 37, c = 53;
  auto x = random_cvec(r * c, 22);
  cvec a(x.size()), b(x.size());
  transpose(x.data(), a.data(), r, c);
  transpose_tiled(x.data(), b.data(), r, c, 8);
  EXPECT_EQ(0.0, max_err(a, b));
}

TEST(Transpose, RoundTripIsIdentity) {
  const idx_t r = 12, c = 20;
  auto x = random_cvec(r * c, 23);
  cvec t(x.size()), back(x.size());
  transpose(x.data(), t.data(), r, c);
  transpose(t.data(), back.data(), c, r);
  EXPECT_EQ(0.0, max_err(x, back));
}

class TransposePackets
    : public ::testing::TestWithParam<std::tuple<idx_t, idx_t, idx_t, bool>> {};

TEST_P(TransposePackets, MatchesBlockedStridePerm) {
  const auto [r, c, mu, nt] = GetParam();
  auto x = random_cvec(r * c * mu, 24);
  cvec got(x.size());
  transpose_packets(x.data(), got.data(), r, c, mu, nt);
  // (L_c^{rc} (x) I_mu)
  auto want = (*spl::kron(spl::stride_perm(r * c, c), spl::identity(mu)))(x);
  EXPECT_EQ(0.0, max_err(want, got));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransposePackets,
    ::testing::Combine(::testing::Values<idx_t>(2, 17, 32),
                       ::testing::Values<idx_t>(3, 16),
                       ::testing::Values<idx_t>(1, 4),
                       ::testing::Bool()));

TEST(Rotate, MatchesRotationK) {
  const idx_t a = 3, b = 4, c = 5;
  auto x = random_cvec(a * b * c, 25);
  cvec got(x.size());
  rotate_cube(x.data(), got.data(), a, b, c);
  auto want = (*spl::rotation_k(a, b, c))(x);
  EXPECT_EQ(0.0, max_err(want, got));
}

class RotatePackets
    : public ::testing::TestWithParam<std::tuple<idx_t, idx_t, idx_t, idx_t>> {};

TEST_P(RotatePackets, MatchesBlockedRotation) {
  const auto [a, b, cp, mu] = GetParam();
  auto x = random_cvec(a * b * cp * mu, 26);
  cvec got(x.size());
  rotate_cube_packets(x.data(), got.data(), a, b, cp, mu, false);
  auto want = (*spl::rotation_k_blocked(a, b, cp * mu, mu))(x);
  EXPECT_EQ(0.0, max_err(want, got));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RotatePackets,
    ::testing::Combine(::testing::Values<idx_t>(2, 5), ::testing::Values<idx_t>(3, 4),
                       ::testing::Values<idx_t>(2, 6), ::testing::Values<idx_t>(1, 4)));

TEST(Rotate, ThreeRotationsRestoreCube) {
  const idx_t k = 4, n = 6, m = 8;
  auto x = random_cvec(k * n * m, 27);
  cvec t1(x.size()), t2(x.size()), t3(x.size());
  rotate_cube(x.data(), t1.data(), k, n, m);   // k x n x m -> m x k x n
  rotate_cube(t1.data(), t2.data(), m, k, n);  // -> n x m x k
  rotate_cube(t2.data(), t3.data(), n, m, k);  // -> k x n x m
  EXPECT_EQ(0.0, max_err(x, t3));
}

// rotate_store_rows is W_{b,i} restricted to a row range: storing all rows
// in two halves must equal the whole rotation.
TEST(Rotate, PartialRowStoresComposeToWholeRotation) {
  const idx_t a = 4, b = 3, cp = 5, mu = 2;
  auto x = random_cvec(a * b * cp * mu, 28);
  cvec whole(x.size()), parts(x.size());
  rotate_cube_packets(x.data(), whole.data(), a, b, cp, mu, false);
  const idx_t rows = a * b, half_rows = rows / 2;
  rotate_store_rows(x.data(), parts.data(), 0, half_rows, a, b, cp, mu, false);
  rotate_store_rows(x.data() + half_rows * cp * mu, parts.data(), half_rows,
                    rows - half_rows, a, b, cp, mu, false);
  EXPECT_EQ(0.0, max_err(whole, parts));
}

TEST(StreamCopy, NonTemporalEqualsMemcpy) {
  for (idx_t n : {1, 2, 3, 4, 7, 64, 1000}) {
    auto x = random_cvec(n, 29);
    cvec a(x.size()), b(x.size());
    copy_stream(a.data(), x.data(), n, true);
    stream_fence();
    copy_stream(b.data(), x.data(), n, false);
    EXPECT_EQ(0.0, max_err(a, b)) << n;
  }
}

TEST(StreamCopy, UnalignedDestinationFallsBack) {
  auto x = random_cvec(17, 30);
  cvec dst(18);
  copy_stream(dst.data() + 1, x.data(), 17, true);  // 16B-misaligned dst
  for (idx_t i = 0; i < 17; ++i) {
    EXPECT_EQ(x[static_cast<std::size_t>(i)], dst[static_cast<std::size_t>(i + 1)]);
  }
}

TEST(StreamCopy, FillStream) {
  cvec dst(64);
  fill_stream(dst.data(), cplx(3, -2), 64, true);
  stream_fence();
  for (const auto& v : dst) EXPECT_EQ(cplx(3, -2), v);
}

TEST(StreamCopy, FillStreamOddCountFillsEveryElement) {
  // Regression: an odd count used to take the all-scalar fallback for the
  // whole range; now the even prefix streams and only the final element
  // is stored normally — and every element must still be written.
  for (idx_t count : {1, 3, 33, 63}) {
    AlignedBuffer<cplx> dst(static_cast<std::size_t>(count) + 1);
    const cplx sentinel(-7.0, 7.0);
    const cplx value(3.0, -2.0);
    for (idx_t i = 0; i <= count; ++i) {
      dst[static_cast<std::size_t>(i)] = sentinel;
    }
    fill_stream(dst.data(), value, count, true);
    for (idx_t i = 0; i < count; ++i) {
      EXPECT_EQ(value, dst[static_cast<std::size_t>(i)]) << "i=" << i;
    }
    // No overrun past count.
    EXPECT_EQ(sentinel, dst[static_cast<std::size_t>(count)]);
  }
}

#if defined(BWFFT_OBS) && defined(__AVX__)
TEST(StreamCopy, FillStreamOddCountStillUsesNonTemporalStores) {
  // Regression (observable half of the odd-count bug): with a 33-element
  // aligned fill, the even 32-element prefix must go through NT stores —
  // 32 cplx = 64 doubles = 16 32-byte streams — instead of zero.
  AlignedBuffer<cplx> dst(33);
  obs::reset_counters();
  fill_stream(dst.data(), cplx(1.0, 2.0), 33, true);
  EXPECT_EQ(16u, obs::counter_total(obs::Counter::NtStores));
  obs::reset_counters();
}
#endif

TEST(StreamCopy, FillStreamVisibleToOtherThreadAfterJoin) {
  // The NT path now ends with its own stream_fence(), so a consumer that
  // synchronizes only via thread join / barrier (no explicit fence of its
  // own) must observe the filled values.
  AlignedBuffer<cplx> dst(1024);
  std::thread producer(
      [&] { fill_stream(dst.data(), cplx(5.0, -5.0), 1024, true); });
  producer.join();
  for (std::size_t i = 0; i < 1024; ++i) {
    ASSERT_EQ(cplx(5.0, -5.0), dst[i]) << "i=" << i;
  }
}

TEST(Format, SplitRoundTrip) {
  const idx_t n = 33;
  auto x = random_cvec(n, 31);
  dvec re(static_cast<std::size_t>(n)), im(static_cast<std::size_t>(n));
  to_split(x.data(), re.data(), im.data(), n);
  cvec back(x.size());
  from_split(re.data(), im.data(), back.data(), n);
  EXPECT_EQ(0.0, max_err(x, back));
}

TEST(Format, BlockInterleavedLayout) {
  const idx_t n = 8, block = 4;
  auto x = random_cvec(n, 32);
  dvec packed(static_cast<std::size_t>(2 * n));
  to_block_interleaved(x.data(), packed.data(), n, block);
  // First group: 4 reals then 4 imags.
  for (idx_t j = 0; j < block; ++j) {
    EXPECT_EQ(x[static_cast<std::size_t>(j)].real(), packed[static_cast<std::size_t>(j)]);
    EXPECT_EQ(x[static_cast<std::size_t>(j)].imag(),
              packed[static_cast<std::size_t>(block + j)]);
  }
  cvec back(x.size());
  from_block_interleaved(packed.data(), back.data(), n, block);
  EXPECT_EQ(0.0, max_err(x, back));
}

TEST(Format, BlockMustDivide) {
  cvec x(10);
  dvec out(20);
  EXPECT_THROW(to_block_interleaved(x.data(), out.data(), 10, 4), Error);
}

}  // namespace
}  // namespace bwfft
