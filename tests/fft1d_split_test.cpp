// Tests for the split-format (block-interleaved) kernel and the
// mixed-radix engine.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fft/reference.h"
#include "fft1d/fft1d.h"
#include "fft1d/fft1d_split.h"
#include "fft1d/mixed_radix.h"
#include "kernels/vecops.h"
#include "test_util.h"

namespace bwfft {
namespace {

using test::fft_tol;
using test::max_err;

class SplitSizes : public ::testing::TestWithParam<std::tuple<idx_t, idx_t>> {};

TEST_P(SplitSizes, MatchesInterleavedKernel) {
  const auto [n, lanes] = GetParam();
  auto x = random_cvec(n * lanes, 6000 + n);

  // Interleaved reference path.
  Fft1d inter(n, Direction::Forward);
  cvec want = x;
  inter.apply_lanes(want.data(), lanes, 1);

  // Split path: pack, transform, unpack.
  SplitFft1d split(n, Direction::Forward);
  dvec packed(static_cast<std::size_t>(2 * n * lanes));
  SplitFft1d::pack(x.data(), packed.data(), n, lanes);
  split.apply_lanes(packed.data(), lanes, 1);
  cvec got(x.size());
  SplitFft1d::unpack(packed.data(), got.data(), n, lanes);

  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SplitSizes,
    ::testing::Combine(::testing::Values<idx_t>(2, 8, 64, 512),
                       ::testing::Values<idx_t>(1, 2, 4, 8)));

TEST(SplitFft, BatchOfTiles) {
  const idx_t n = 32, lanes = 4, count = 6;
  auto x = random_cvec(n * lanes * count, 6100);
  Fft1d inter(n, Direction::Forward);
  cvec want = x;
  inter.apply_lanes(want.data(), lanes, count);

  SplitFft1d split(n, Direction::Forward);
  dvec packed(static_cast<std::size_t>(2 * n * lanes * count));
  for (idx_t t = 0; t < count; ++t) {
    SplitFft1d::pack(x.data() + t * n * lanes,
                     packed.data() + 2 * t * n * lanes, n, lanes);
  }
  split.apply_lanes(packed.data(), lanes, count);
  cvec got(x.size());
  for (idx_t t = 0; t < count; ++t) {
    SplitFft1d::unpack(packed.data() + 2 * t * n * lanes,
                       got.data() + t * n * lanes, n, lanes);
  }
  EXPECT_LT(max_err(want, got), fft_tol(32.0));
}

TEST(SplitFft, InverseDirection) {
  const idx_t n = 64, lanes = 4;
  auto x = random_cvec(n * lanes, 6200);
  Fft1d inter(n, Direction::Inverse);
  cvec want = x;
  inter.apply_lanes(want.data(), lanes, 1);

  SplitFft1d split(n, Direction::Inverse);
  dvec packed(static_cast<std::size_t>(2 * n * lanes));
  SplitFft1d::pack(x.data(), packed.data(), n, lanes);
  split.apply_lanes(packed.data(), lanes, 1);
  cvec got(x.size());
  SplitFft1d::unpack(packed.data(), got.data(), n, lanes);
  EXPECT_LT(max_err(want, got), fft_tol(64.0));
}

TEST(SplitFft, ScalarPathMatches) {
  const idx_t n = 128, lanes = 4;
  auto x = random_cvec(n * lanes, 6300);
  dvec a(static_cast<std::size_t>(2 * n * lanes)), b(a.size());
  SplitFft1d::pack(x.data(), a.data(), n, lanes);
  b = a;
  SplitFft1d split(n, Direction::Forward);
  split.apply_lanes(a.data(), lanes, 1);
  set_force_scalar(true);
  split.apply_lanes(b.data(), lanes, 1);
  set_force_scalar(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12);
  }
}

TEST(SplitFft, RejectsNonPow2) {
  EXPECT_THROW(SplitFft1d(12, Direction::Forward), Error);
}

TEST(SplitFft, PackUnpackRoundTrip) {
  const idx_t n = 16, lanes = 4;
  auto x = random_cvec(n * lanes, 6400);
  dvec packed(static_cast<std::size_t>(2 * n * lanes));
  SplitFft1d::pack(x.data(), packed.data(), n, lanes);
  // Layout: row j reals at [2 j lanes, 2 j lanes + lanes).
  EXPECT_EQ(x[0].real(), packed[0]);
  EXPECT_EQ(x[0].imag(), packed[static_cast<std::size_t>(lanes)]);
  EXPECT_EQ(x[static_cast<std::size_t>(lanes)].real(),
            packed[static_cast<std::size_t>(2 * lanes)]);
  cvec back(x.size());
  SplitFft1d::unpack(packed.data(), back.data(), n, lanes);
  EXPECT_EQ(0.0, max_err(x, back));
}

class MixedRadixSizes : public ::testing::TestWithParam<idx_t> {};

TEST_P(MixedRadixSizes, MatchesReference) {
  const idx_t n = GetParam();
  ASSERT_TRUE(MixedRadixFft::supported(n));
  for (Direction dir : {Direction::Forward, Direction::Inverse}) {
    MixedRadixFft plan(n, dir);
    auto x = random_cvec(n, 6500 + n);
    cvec want(x.size());
    reference_dft_1d(x.data(), want.data(), n, dir);
    cvec got = x;
    plan.apply(got.data());
    EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n))) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(SmoothSizes, MixedRadixSizes,
                         ::testing::Values<idx_t>(12, 18, 20, 24, 30, 36, 48,
                                                  60, 100, 120, 144, 210, 240,
                                                  360, 1000));

TEST(MixedRadix, SupportDetection) {
  EXPECT_TRUE(MixedRadixFft::supported(2 * 3 * 5 * 7));
  EXPECT_TRUE(MixedRadixFft::supported(1024));
  EXPECT_FALSE(MixedRadixFft::supported(11));
  EXPECT_FALSE(MixedRadixFft::supported(2 * 11));
  EXPECT_FALSE(MixedRadixFft::supported(13 * 3));
}

TEST(MixedRadix, Fft1dRoutesSmoothSizesToMixedRadix) {
  // 360 = 2^3 * 3^2 * 5 is smooth: Fft1d must be exact (Bluestein would
  // also pass, but this documents the intended routing via precision: the
  // mixed-radix path has no convolution round-off amplification).
  const idx_t n = 360;
  Fft1d plan(n, Direction::Forward);
  auto x = random_cvec(n, 6600);
  cvec want(x.size());
  reference_dft_1d(x.data(), want.data(), n, Direction::Forward);
  cvec got = x;
  plan.apply_batch(got.data(), 1);
  EXPECT_LT(max_err(want, got), fft_tol(360.0));
}

}  // namespace
}  // namespace bwfft
