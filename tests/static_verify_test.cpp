// Tests for the symbolic plan verifier (src/analysis/static_verify) and
// the interval algebra underneath it (src/common/intervals).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/static_verify.h"
#include "common/intervals.h"
#include "fft/options.h"

namespace bwfft {
namespace {

using analysis::PlanModel;
using analysis::StageModel;
using analysis::StaticIssue;
using analysis::StaticReport;

// ---------------------------------------------------------------------------
// Interval algebra.
// ---------------------------------------------------------------------------

TEST(Intervals, ContiguousPartitionCovers) {
  std::vector<OwnedWindow> w = {
      {0, StridedInterval::contiguous(0, 10)},
      {1, StridedInterval::contiguous(10, 30)},
      {2, StridedInterval::contiguous(40, 60)},
  };
  const PartitionReport rep = check_partition(w, 100, true);
  EXPECT_TRUE(rep.ok()) << rep.str();
  EXPECT_EQ(rep.covered, 100);
}

TEST(Intervals, OverlapDetected) {
  std::vector<OwnedWindow> w = {
      {0, StridedInterval::contiguous(0, 60)},
      {1, StridedInterval::contiguous(50, 50)},
  };
  const PartitionReport rep = check_partition(w, 100, true);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.issues.front().kind, IntervalIssue::Kind::Overlap);
  EXPECT_EQ(rep.issues.front().begin, 50);
  EXPECT_EQ(rep.issues.front().end, 60);
}

TEST(Intervals, GapDetected) {
  std::vector<OwnedWindow> w = {
      {0, StridedInterval::contiguous(0, 40)},
      {1, StridedInterval::contiguous(60, 40)},
  };
  const PartitionReport rep = check_partition(w, 100, true);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.issues.front().kind, IntervalIssue::Kind::Gap);
  EXPECT_EQ(rep.covered, 80);
}

TEST(Intervals, GapIgnoredWithoutCoverRequirement) {
  std::vector<OwnedWindow> w = {
      {0, StridedInterval::contiguous(0, 40)},
      {1, StridedInterval::contiguous(60, 40)},
  };
  EXPECT_TRUE(check_partition(w, 100, false).ok());
}

TEST(Intervals, OutOfBoundsDetected) {
  std::vector<OwnedWindow> w = {
      {0, StridedInterval::contiguous(0, 100)},
      {1, StridedInterval::contiguous(100, 8)},
  };
  const PartitionReport rep = check_partition(w, 100, true);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.issues.front().kind, IntervalIssue::Kind::OutOfBounds);
}

TEST(Intervals, StridedWindowsTile) {
  // Two ranks interleave rows of a 4 x 10 matrix: rank r owns rows
  // r, r+2 (runs of width 10, stride 20).
  std::vector<OwnedWindow> w = {
      {0, {0, 10, 20, 2}},
      {1, {10, 10, 20, 2}},
  };
  const PartitionReport rep = check_partition(w, 40, true);
  EXPECT_TRUE(rep.ok()) << rep.str();
}

TEST(Intervals, SelfOverlappingRunRejected) {
  // stride < width: consecutive runs of one window collide with
  // themselves before any pairwise check.
  std::vector<OwnedWindow> w = {{0, {0, 10, 5, 2}}};
  const PartitionReport rep = check_partition(w, 20, false);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.issues.front().kind, IntervalIssue::Kind::Overlap);
}

TEST(Intervals, IssueListIsCapped) {
  // 64 one-element windows, every second one missing: > 32 gaps must not
  // produce an unbounded issue list.
  std::vector<OwnedWindow> w;
  for (int i = 0; i < 64; ++i) {
    w.push_back({i, StridedInterval::contiguous(2 * i, 1)});
  }
  const PartitionReport rep = check_partition(w, 128, true);
  EXPECT_FALSE(rep.ok());
  EXPECT_LE(rep.issues.size(), 32u);
}

TEST(Intervals, StridePermBijection) {
  EXPECT_TRUE(stride_perm_is_bijection(12, 3));
  EXPECT_TRUE(stride_perm_is_bijection(64, 8));
  EXPECT_TRUE(stride_perm_is_bijection(1, 1));
  EXPECT_TRUE(stride_perm_is_bijection(7, 7));
  EXPECT_FALSE(stride_perm_is_bijection(12, 5));  // sub does not divide
  EXPECT_FALSE(stride_perm_is_bijection(0, 1));
  EXPECT_FALSE(stride_perm_is_bijection(12, 0));
}

// ---------------------------------------------------------------------------
// Engine models across the grid.
// ---------------------------------------------------------------------------

FftOptions opts_for(EngineKind engine, int threads) {
  FftOptions o;
  o.engine = engine;
  o.threads = threads;
  return o;
}

void expect_clean(const std::vector<idx_t>& dims, const FftOptions& opts) {
  PlanModel model;
  std::string why;
  ASSERT_TRUE(analysis::build_plan_model(dims, opts, &model, &why)) << why;
  const StaticReport rep = analysis::verify_plan(model);
  EXPECT_TRUE(rep.ok()) << rep.str();
  EXPECT_GT(rep.checks, 0u);
}

TEST(StaticVerify, EnginesCleanOnRepresentativeShapes) {
  for (const auto& dims : std::vector<std::vector<idx_t>>{
           {64, 64, 64}, {32, 64, 128}, {256, 256}}) {
    for (EngineKind e : {EngineKind::DoubleBuffer, EngineKind::StageParallel,
                         EngineKind::Pencil}) {
      expect_clean(dims, opts_for(e, 8));
    }
    if (dims.size() == 3) {
      expect_clean(dims, opts_for(EngineKind::SlabPencil, 8));
    }
  }
}

TEST(StaticVerify, NonPowerOfTwoShapeSkipsPencilOnly) {
  const std::vector<idx_t> dims = {48, 48, 48};
  PlanModel model;
  std::string why;
  EXPECT_FALSE(analysis::build_plan_model(
      dims, opts_for(EngineKind::Pencil, 8), &model, &why));
  EXPECT_FALSE(why.empty());
  expect_clean(dims, opts_for(EngineKind::DoubleBuffer, 8));
  expect_clean(dims, opts_for(EngineKind::StageParallel, 8));
}

TEST(StaticVerify, DegenerateUnitAxis) {
  // n = 1 axes collapse stages to single-row tiles; the partition proofs
  // must still hold.
  expect_clean({1, 64, 64}, opts_for(EngineKind::DoubleBuffer, 8));
  expect_clean({64, 1, 64}, opts_for(EngineKind::StageParallel, 8));
  expect_clean({1, 256}, opts_for(EngineKind::DoubleBuffer, 8));
}

TEST(StaticVerify, NonPowerOfTwoBlock) {
  FftOptions o = opts_for(EngineKind::DoubleBuffer, 8);
  o.block_elems = 3000;  // not a multiple of anything convenient
  expect_clean({64, 64, 64}, o);
  o.block_elems = 1;  // degenerates to one row per block
  expect_clean({32, 32, 32}, o);
}

TEST(StaticVerify, SingleThread) {
  // p = 1: no data threads, sequential schedule, one rank owns
  // everything.
  for (EngineKind e : {EngineKind::DoubleBuffer, EngineKind::StageParallel,
                       EngineKind::Pencil}) {
    expect_clean({32, 32, 32}, opts_for(e, 1));
    expect_clean({64, 64}, opts_for(e, 1));
  }
}

TEST(StaticVerify, AllComputeSplitIsUnpipelined) {
  FftOptions o = opts_for(EngineKind::DoubleBuffer, 8);
  o.compute_threads = 8;  // p_d = 0: degraded sequential schedule
  PlanModel model;
  std::string why;
  ASSERT_TRUE(analysis::build_plan_model({64, 64, 64}, o, &model, &why))
      << why;
  EXPECT_EQ(model.data_threads, 0);
  for (const auto& st : model.stages) EXPECT_FALSE(st.pipelined);
  EXPECT_TRUE(analysis::verify_plan(model).ok());
}

// ---------------------------------------------------------------------------
// Seeded defects must be rejected.
// ---------------------------------------------------------------------------

PlanModel valid_model() {
  PlanModel model;
  std::string why;
  FftOptions o = opts_for(EngineKind::DoubleBuffer, 8);
  EXPECT_TRUE(analysis::build_plan_model({64, 64, 64}, o, &model, &why))
      << why;
  return model;
}

bool has_issue(const StaticReport& rep, StaticIssue::Kind kind) {
  for (const auto& i : rep.issues) {
    if (i.kind == kind) return true;
  }
  return false;
}

TEST(StaticVerify, SeededOverlapRejected) {
  PlanModel model = valid_model();
  ASSERT_GE(model.stages.front().stores.size(), 2u);
  model.stages.front().stores[1].iv = model.stages.front().stores[0].iv;
  const StaticReport rep = analysis::verify_plan(model);
  EXPECT_TRUE(has_issue(rep, StaticIssue::Kind::PartitionOverlap))
      << rep.str();
  EXPECT_TRUE(has_issue(rep, StaticIssue::Kind::PartitionGap));
}

TEST(StaticVerify, SeededGapRejected) {
  PlanModel model = valid_model();
  model.stages.front().stores.pop_back();
  const StaticReport rep = analysis::verify_plan(model);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_issue(rep, StaticIssue::Kind::PartitionGap) ||
              has_issue(rep, StaticIssue::Kind::NotConservative))
      << rep.str();
}

TEST(StaticVerify, SeededMissingFenceRejected) {
  PlanModel model = valid_model();
  StageModel* nt = nullptr;
  for (auto& st : model.stages) {
    if (st.nt_store) nt = &st;
  }
  ASSERT_NE(nt, nullptr) << "expected an NT-store stage in the DB model";
  nt->fence_before_publish = false;
  EXPECT_TRUE(has_issue(analysis::verify_plan(model),
                        StaticIssue::Kind::MissingFence));
}

TEST(StaticVerify, SeededEpochAliasRejected) {
  PlanModel model = valid_model();
  StageModel* piped = nullptr;
  for (auto& st : model.stages) {
    if (st.pipelined && st.buf_loads.size() >= 2) piped = &st;
  }
  ASSERT_NE(piped, nullptr) << "expected a pipelined stage with >= 2 ranks";
  piped->buf_loads[1].iv = piped->buf_stores[0].iv;
  EXPECT_TRUE(has_issue(analysis::verify_plan(model),
                        StaticIssue::Kind::EpochAlias));
}

TEST(StaticVerify, SeededShortfallRejected) {
  // Shrinking one store window breaks conservation even where it leaves
  // no per-element gap a sweep in isolation would see (the counts check
  // is the backstop).
  PlanModel model = valid_model();
  auto& iv = model.stages.front().stores.back().iv;
  ASSERT_GT(iv.count, 1);
  iv.count -= 1;
  const StaticReport rep = analysis::verify_plan(model);
  EXPECT_FALSE(rep.ok());
}

}  // namespace
}  // namespace bwfft
