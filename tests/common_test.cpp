// Tests for the common substrate: aligned memory, CPU detection surface,
// topology profiles, timers, metrics and the table printer.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <thread>

#include "benchutil/metrics.h"
#include "benchutil/table.h"
#include "common/aligned.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "common/timer.h"
#include "common/topology.h"

namespace bwfft {
namespace {

TEST(Aligned, AllocationsAreCachelineAligned) {
  for (std::size_t n : {1u, 3u, 64u, 1000u}) {
    AlignedBuffer<cplx> buf(n);
    EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(buf.data()) %
                      kCachelineBytes);
    EXPECT_EQ(n, buf.size());
  }
  cvec v(100);
  EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(v.data()) % kCachelineBytes);
}

TEST(Aligned, BufferMoveSemantics) {
  AlignedBuffer<cplx> a(16);
  a[0] = cplx(7, 7);
  cplx* p = a.data();
  AlignedBuffer<cplx> b = std::move(a);
  EXPECT_EQ(p, b.data());
  EXPECT_EQ(cplx(7, 7), b[0]);
  EXPECT_EQ(nullptr, a.data());
  AlignedBuffer<cplx> c;
  c = std::move(b);
  EXPECT_EQ(p, c.data());
}

TEST(Aligned, ZeroSizeIsEmpty) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(nullptr, buf.data());
}

TEST(Rng, Deterministic) {
  auto a = random_cvec(32, 5);
  auto b = random_cvec(32, 5);
  auto c = random_cvec(32, 6);
  EXPECT_EQ(a[7], b[7]);
  EXPECT_NE(a[7], c[7]);
  for (const auto& v : a) {
    EXPECT_LE(std::abs(v.real()), 1.0);
    EXPECT_LE(std::abs(v.imag()), 1.0);
  }
}

TEST(Cpu, DetectionIsStableAndSane) {
  const auto& f1 = cpu_features();
  const auto& f2 = cpu_features();
  EXPECT_EQ(&f1, &f2);  // cached
  EXPECT_GE(online_cpus(), 1);
  EXPECT_GE(llc_bytes(), 256u * 1024);  // any real machine has >= 256 KiB
  EXPECT_FALSE(cpu_summary().empty());
#if defined(__AVX2__)
  EXPECT_TRUE(f1.avx2);  // compiled with -march=native implies host support
#endif
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Topology, HostIsBounded) {
  auto t = host_topology();
  EXPECT_EQ(1, t.sockets);
  EXPECT_GE(t.total_threads(), 1);
  // The modelled LLC is capped against virtualised misreports.
  EXPECT_LE(t.llc_bytes, 32u << 20);
  EXPECT_GT(t.shared_buffer_elems(), 0);
}

TEST(Metrics, FlopModel) {
  // 5 N log2 N at N=1024: 5 * 1024 * 10.
  EXPECT_DOUBLE_EQ(51200.0, fft_flops(1024.0));
  EXPECT_NEAR(51.2, fft_gflops(1024.0, 1e-6), 1e-9);
}

TEST(Metrics, AchievablePeakMatchesPaperFormula) {
  // P_io = 5 N log N * BW / (2 N stages sizeof(cplx)). For N = 2^27
  // (512^3), BW = 40 GB/s, 3 stages: 5*27*40e9/(2*3*16) bytes-cancelling.
  const double n = std::pow(2.0, 27.0);
  const double expect = 5.0 * n * 27.0 * 40e9 / (2.0 * n * 3 * 16) / 1e9;
  EXPECT_NEAR(expect, achievable_peak_gflops(n, 3, 40.0), 1e-9);
  // Sanity: Kaby Lake 512^3 at 40 GB/s is ~56 GF/s — consistent with the
  // paper's Fig 1 peak-normalised bars and its reported Gflop/s labels.
  EXPECT_NEAR(56.25, achievable_peak_gflops(n, 3, 40.0), 0.01);
}

TEST(Metrics, IoBoundSeconds) {
  // 2 accesses * N * stages * 16 bytes at BW.
  EXPECT_NEAR(2.0 * 1e6 * 3 * 16 / 10e9, io_bound_seconds(1e6, 3, 10.0),
              1e-15);
}

TEST(Table, AlignsAndPrints) {
  Table t({"col", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(std::string::npos, s.find("col"));
  EXPECT_NE(std::string::npos, s.find("longer"));
  EXPECT_NE(std::string::npos, s.find("---"));
}

TEST(Table, Formatters) {
  EXPECT_EQ("3.14", fmt_double(3.14159, 2));
  EXPECT_EQ("75.0%", fmt_percent(0.75, 1));
}

}  // namespace
}  // namespace bwfft
