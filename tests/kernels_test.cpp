// Tests for the kernel layer: twiddle tables, codelets against the dense
// DFT, and the SIMD butterfly micro-op against its scalar semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "kernels/codelets.h"
#include "kernels/twiddle.h"
#include "kernels/vecops.h"
#include "spl/expr.h"
#include "test_util.h"

namespace bwfft {
namespace {

using test::max_err;

constexpr double kPi = std::numbers::pi_v<double>;

TEST(Twiddle, RootsOfUnity) {
  // w_4^1 forward = -i; inverse = +i.
  auto f = root_of_unity(4, 1, Direction::Forward);
  EXPECT_NEAR(0.0, f.real(), 1e-15);
  EXPECT_NEAR(-1.0, f.imag(), 1e-15);
  auto i = root_of_unity(4, 1, Direction::Inverse);
  EXPECT_NEAR(1.0, i.imag(), 1e-15);
  // Period: w_n^{p} == w_n^{p mod n}.
  EXPECT_NEAR(0.0,
              std::abs(root_of_unity(8, 11, Direction::Forward) -
                       root_of_unity(8, 3, Direction::Forward)),
              1e-15);
}

TEST(Twiddle, TableMatchesScalar) {
  auto t = root_table(16, 16, Direction::Forward);
  for (idx_t p = 0; p < 16; ++p) {
    EXPECT_EQ(t[static_cast<std::size_t>(p)], root_of_unity(16, p, Direction::Forward));
  }
}

TEST(Twiddle, StockhamLevels) {
  auto levels = stockham_twiddles(16, Direction::Forward);
  ASSERT_EQ(4u, levels.size());
  EXPECT_EQ(8u, levels[0].size());
  EXPECT_EQ(4u, levels[1].size());
  EXPECT_EQ(2u, levels[2].size());
  EXPECT_EQ(1u, levels[3].size());
  // Level l twiddles are roots of order 16 >> l.
  EXPECT_NEAR(0.0,
              std::abs(levels[1][1] - root_of_unity(8, 1, Direction::Forward)),
              1e-15);
}

TEST(Twiddle, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(0, log2_floor(1));
  EXPECT_EQ(10, log2_floor(1024));
}

class CodeletSizes : public ::testing::TestWithParam<idx_t> {};

TEST_P(CodeletSizes, MatchesDenseDftBothDirections) {
  const idx_t n = GetParam();
  auto fn = codelets::lookup(n);
  ASSERT_NE(nullptr, fn);
  for (Direction dir : {Direction::Forward, Direction::Inverse}) {
    auto x = random_cvec(n, 600 + n);
    cvec got(x.size());
    fn(x.data(), 1, got.data(), 1, dir);
    auto want = (*spl::dft(n, dir))(x);
    EXPECT_LT(max_err(want, got), 1e-13) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(All, CodeletSizes,
                         ::testing::Values<idx_t>(2, 3, 4, 5, 6, 7, 8, 16));

TEST(Codelets, StridedInputAndOutput) {
  const idx_t n = 8, is = 3, os = 2;
  auto x = random_cvec(n * is, 700);
  cvec got(static_cast<std::size_t>(n * os), cplx(-9, -9));
  codelets::dft8(x.data(), is, got.data(), os, Direction::Forward);
  cvec gathered(static_cast<std::size_t>(n));
  for (idx_t j = 0; j < n; ++j) gathered[static_cast<std::size_t>(j)] = x[static_cast<std::size_t>(j * is)];
  auto want = (*spl::dft(n))(gathered);
  for (idx_t j = 0; j < n; ++j) {
    EXPECT_NEAR(0.0,
                std::abs(want[static_cast<std::size_t>(j)] -
                         got[static_cast<std::size_t>(j * os)]),
                1e-13);
  }
  // Holes between output strides must be untouched.
  EXPECT_EQ(cplx(-9, -9), got[1]);
}

TEST(Codelets, LookupCoversEverySupportedSize) {
  // 9..15 are served by the generic strided fallback; lookup() must never
  // return null inside [2, kMaxCodelet].
  for (idx_t n = 2; n <= codelets::kMaxCodelet; ++n) {
    EXPECT_NE(nullptr, codelets::lookup(n)) << "n=" << n;
  }
  EXPECT_EQ(nullptr, codelets::lookup(1));
  EXPECT_EQ(nullptr, codelets::lookup(32));
}

TEST(Codelets, FallbackSizesMatchDenseDftBothDirections) {
  for (idx_t n = 9; n <= 15; ++n) {
    auto fn = codelets::lookup(n);
    ASSERT_NE(nullptr, fn);
    for (Direction dir : {Direction::Forward, Direction::Inverse}) {
      auto x = random_cvec(n, 900 + n);
      cvec got(x.size());
      fn(x.data(), 1, got.data(), 1, dir);
      auto want = (*spl::dft(n, dir))(x);
      EXPECT_LT(max_err(want, got), 1e-12) << "n=" << n;
    }
  }
}

TEST(Codelets, TrigTablesAreBitExactWithPerCallExpressions) {
  // Satellite regression: dft5/dft7/dft16 hoisted their cos/sin calls into
  // dft_trig tables. The table builder must evaluate the *same* libm
  // expression shapes the codelets used per call, or results drift by an
  // ULP between builds. Recompute each angle exactly as the old code did
  // and demand bitwise equality.
  for (idx_t n : {idx_t{5}, idx_t{7}, idx_t{16}}) {
    const auto& t = codelets::dft_trig(n);
    for (idx_t j = 0; j < n; ++j) {
      const double ang = 2.0 * kPi * static_cast<double>(j) /
                         static_cast<double>(n);
      EXPECT_EQ(std::cos(ang), t.c[static_cast<std::size_t>(j)])
          << "cos n=" << n << " j=" << j;
      EXPECT_EQ(std::sin(ang), t.s[static_cast<std::size_t>(j)])
          << "sin n=" << n << " j=" << j;
    }
  }
  // dft16 derives its inverse twiddles from the same table via
  // cos(-x) == cos(x), sin(-x) == -sin(x); confirm libm honors that
  // symmetry bitwise for the angles in play.
  for (idx_t j = 0; j < 16; ++j) {
    const double ang = 2.0 * kPi * static_cast<double>(j) / 16.0;
    EXPECT_EQ(std::cos(-ang), std::cos(ang)) << "j=" << j;
    EXPECT_EQ(std::sin(-ang), -std::sin(ang)) << "j=" << j;
  }
}

TEST(VecOps, ButterflyPacketsMatchesScalar) {
  for (idx_t count : {2, 4, 8, 16}) {
    auto a = random_cvec(count, 800);
    auto b = random_cvec(count, 801);
    const cplx w(0.6, -0.8);
    cvec lo_v(a.size()), hi_v(a.size()), lo_s(a.size()), hi_s(a.size());
    vecops::butterfly_packets(a.data(), b.data(), w, lo_v.data(), hi_v.data(),
                              count);
    vecops::butterfly_packets_scalar(a.data(), b.data(), w, lo_s.data(),
                                     hi_s.data(), count);
    EXPECT_LT(max_err(lo_v, lo_s), 1e-15) << count;
    EXPECT_LT(max_err(hi_v, hi_s), 1e-15) << count;
  }
}

TEST(VecOps, ForceScalarToggle) {
  EXPECT_FALSE(force_scalar());
  set_force_scalar(true);
  EXPECT_TRUE(force_scalar());
  set_force_scalar(false);
  EXPECT_FALSE(force_scalar());
}

}  // namespace
}  // namespace bwfft
