// Unit tests for the SPL expression library: terminal semantics, the
// Table I construct-to-code mappings, and the algebraic identities of
// §II-C the paper's derivation relies on.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "spl/expr.h"
#include "test_util.h"

namespace bwfft::spl {
namespace {

using bwfft::test::max_err;

TEST(SplExpr, IdentityIsNoOp) {
  auto x = random_cvec(7, 1);
  auto y = (*identity(7))(x);
  EXPECT_EQ(0.0, max_err(x, y));
}

TEST(SplExpr, RectIdentityPadsWithZeros) {
  auto x = random_cvec(3, 2);
  auto y = (*rect_identity(5, 3))(x);
  ASSERT_EQ(5u, y.size());
  for (int i = 0; i < 3; ++i) EXPECT_EQ(x[i], y[i]);
  EXPECT_EQ(cplx(0, 0), y[3]);
  EXPECT_EQ(cplx(0, 0), y[4]);
}

TEST(SplExpr, RectIdentityTruncates) {
  auto x = random_cvec(5, 3);
  auto y = (*rect_identity(3, 5))(x);
  ASSERT_EQ(3u, y.size());
  for (int i = 0; i < 3; ++i) EXPECT_EQ(x[i], y[i]);
}

TEST(SplExpr, ZeroAnnihilates) {
  auto x = random_cvec(4, 4);
  auto y = (*zero(6, 4))(x);
  for (const auto& v : y) EXPECT_EQ(cplx(0, 0), v);
}

TEST(SplExpr, DftOfImpulseIsAllOnes) {
  cvec x(8, cplx(0, 0));
  x[0] = cplx(1, 0);
  auto y = (*dft(8))(x);
  for (const auto& v : y) {
    EXPECT_NEAR(1.0, v.real(), 1e-12);
    EXPECT_NEAR(0.0, v.imag(), 1e-12);
  }
}

TEST(SplExpr, DftOfConstantIsImpulse) {
  cvec x(8, cplx(1, 0));
  auto y = (*dft(8))(x);
  EXPECT_NEAR(8.0, y[0].real(), 1e-12);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_NEAR(0.0, std::abs(y[i]), 1e-12);
}

TEST(SplExpr, DftForwardInverseRoundTrip) {
  auto x = random_cvec(12, 5);
  auto y = (*dft(12, Direction::Forward))(x);
  auto z = (*dft(12, Direction::Inverse))(y);
  for (auto& v : z) v /= 12.0;
  EXPECT_LT(max_err(x, z), 1e-12);
}

TEST(SplExpr, DiagScales) {
  cvec d = {cplx(2, 0), cplx(0, 1), cplx(-1, 0)};
  cvec x = {cplx(1, 1), cplx(2, 0), cplx(0, 3)};
  auto y = (*diag(d))(x);
  EXPECT_EQ(cplx(2, 2), y[0]);
  EXPECT_EQ(cplx(0, 2), y[1]);
  EXPECT_EQ(cplx(0, -3), y[2]);
}

// Table I row: y = L_m^{mn} x  <=>  y[i + m*j] = x[n*i + j].
TEST(SplExpr, StridePermMatchesTableOne) {
  const idx_t m = 3, n = 4;
  auto x = random_cvec(m * n, 6);
  // Paper definition L_n^{mn}: in+j -> jm+i, 0<=i<m, 0<=j<n.
  auto y = (*stride_perm(m * n, n))(x);
  for (idx_t i = 0; i < m; ++i) {
    for (idx_t j = 0; j < n; ++j) {
      EXPECT_EQ(x[static_cast<std::size_t>(i * n + j)],
                y[static_cast<std::size_t>(j * m + i)]);
    }
  }
}

// §II-C identity: L_m^{mn} L_n^{mn} = I_mn.
TEST(SplExpr, StridePermInverse) {
  const idx_t m = 4, n = 6;
  auto both = compose({stride_perm(m * n, m), stride_perm(m * n, n)});
  EXPECT_LT(max_abs_diff(*both, *identity(m * n)), 1e-15);
}

// §II-C identity: A (x) B = L_m^{mn} (B (x) A) L_n^{mn} for A_m, B_n.
TEST(SplExpr, KronCommutationIdentity) {
  const idx_t m = 3, n = 4;
  auto a = dft(m);
  auto b = dft(n);
  auto lhs = kron(a, b);
  auto rhs = compose({stride_perm(m * n, m), kron(b, a),
                      stride_perm(m * n, n)});
  EXPECT_LT(max_abs_diff(*lhs, *rhs), 1e-12);
}

// Table I row: y = (I_m (x) B_n) x applies B on contiguous blocks.
TEST(SplExpr, KronIdentityLeftIsBlockApply) {
  const idx_t m = 3, n = 4;
  auto b = dft(n);
  auto op = kron(identity(m), b);
  auto x = random_cvec(m * n, 7);
  auto y = (*op)(x);
  for (idx_t i = 0; i < m; ++i) {
    cvec blk(x.begin() + i * n, x.begin() + (i + 1) * n);
    auto want = (*b)(blk);
    for (idx_t j = 0; j < n; ++j) {
      EXPECT_NEAR(0.0,
                  std::abs(want[static_cast<std::size_t>(j)] -
                           y[static_cast<std::size_t>(i * n + j)]),
                  1e-12);
    }
  }
}

// Table I row: y = (A_m (x) I_n) x applies A at stride n.
TEST(SplExpr, KronIdentityRightIsStridedApply) {
  const idx_t m = 4, n = 3;
  auto a = dft(m);
  auto op = kron(a, identity(n));
  auto x = random_cvec(m * n, 8);
  auto y = (*op)(x);
  for (idx_t c = 0; c < n; ++c) {
    cvec col(static_cast<std::size_t>(m));
    for (idx_t r = 0; r < m; ++r) col[static_cast<std::size_t>(r)] = x[static_cast<std::size_t>(r * n + c)];
    auto want = (*a)(col);
    for (idx_t r = 0; r < m; ++r) {
      EXPECT_NEAR(0.0,
                  std::abs(want[static_cast<std::size_t>(r)] -
                           y[static_cast<std::size_t>(r * n + c)]),
                  1e-12);
    }
  }
}

// §III-B: gathers/scatters slice the identity: sum_i S_{n,b,i} G_{n,b,i} = I.
TEST(SplExpr, GatherScatterPartitionOfIdentity) {
  const idx_t n = 12, b = 3;
  auto x = random_cvec(n, 9);
  cvec acc(static_cast<std::size_t>(n), cplx(0, 0));
  for (idx_t i = 0; i < n / b; ++i) {
    auto piece = (*compose({scatter(n, b, i), gather(n, b, i)}))(x);
    for (idx_t j = 0; j < n; ++j) acc[static_cast<std::size_t>(j)] += piece[static_cast<std::size_t>(j)];
  }
  EXPECT_LT(max_err(x, acc), 1e-15);
}

TEST(SplExpr, GatherPicksWindow) {
  const idx_t n = 10, b = 2;
  auto x = random_cvec(n, 10);
  auto y = (*gather(n, b, 3))(x);
  EXPECT_EQ(x[6], y[0]);
  EXPECT_EQ(x[7], y[1]);
}

TEST(SplExpr, DirectSumAppliesBlocks) {
  auto op = direct_sum({dft(2), identity(3)});
  EXPECT_EQ(5, op->rows());
  auto x = random_cvec(5, 11);
  auto y = (*op)(x);
  EXPECT_NEAR(0.0, std::abs(y[0] - (x[0] + x[1])), 1e-12);
  EXPECT_NEAR(0.0, std::abs(y[1] - (x[0] - x[1])), 1e-12);
  EXPECT_EQ(x[2], y[2]);
  EXPECT_EQ(x[3], y[3]);
  EXPECT_EQ(x[4], y[4]);
}

TEST(SplExpr, ComposeShapeMismatchThrows) {
  EXPECT_THROW(compose({dft(4), dft(5)}), Error);
}

TEST(SplExpr, OperandSizeMismatchThrows) {
  auto x = random_cvec(5, 12);
  EXPECT_THROW((*dft(4))(x), Error);
}

TEST(SplExpr, PrettyPrinting) {
  auto e = compose({kron(dft(4), identity(8)), stride_perm(32, 4)});
  EXPECT_EQ("((DFT_4 (x) I_8) . L^32_4)", e->str());
}

}  // namespace
}  // namespace bwfft::spl
