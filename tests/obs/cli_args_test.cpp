// Regression tests for the strict bwfft_cli argument parser.
//
// The original in-tool parser fed std::atoll results straight into plan
// construction: `--dims 0x0` produced zero-sized plans, `--dims x128` and
// `--dims 12ax34` silently parsed to 0/12, and `--threads -4` reached the
// team constructor. Every case below must now fail with a diagnostic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchutil/args.h"

namespace bwfft::cli {
namespace {

TEST(ParseInt, AcceptsWholeTokenIntegers) {
  long long v = 0;
  std::string err;
  EXPECT_TRUE(parse_int("42", 1, &v, &err));
  EXPECT_EQ(42, v);
  EXPECT_TRUE(parse_int("1", 1, &v, &err));
  EXPECT_EQ(1, v);
}

TEST(ParseInt, RejectsGarbageOverflowAndRange) {
  long long v = 0;
  std::string err;
  EXPECT_FALSE(parse_int("", 0, &v, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse_int("12a", 0, &v, &err));
  EXPECT_FALSE(parse_int("a12", 0, &v, &err));
  EXPECT_FALSE(parse_int("4.5", 0, &v, &err));
  EXPECT_FALSE(parse_int("99999999999999999999999", 0, &v, &err));
  EXPECT_FALSE(parse_int("0", 1, &v, &err));   // below min
  EXPECT_FALSE(parse_int("-4", 1, &v, &err));  // below min
}

TEST(ParseDims, AcceptsOneToThreeDimensions) {
  std::vector<idx_t> dims;
  std::string err;
  ASSERT_TRUE(parse_dims("128x64", &dims, &err));
  EXPECT_EQ((std::vector<idx_t>{128, 64}), dims);
  ASSERT_TRUE(parse_dims("4x8x16", &dims, &err));
  EXPECT_EQ((std::vector<idx_t>{4, 8, 16}), dims);
  // A single token is a huge-1D transform (docs/INTERNALS.md §15).
  ASSERT_TRUE(parse_dims("4194304", &dims, &err));
  EXPECT_EQ((std::vector<idx_t>{4194304}), dims);
}

TEST(ParseDims, RejectsMalformedSpecs) {
  std::vector<idx_t> dims;
  std::string err;
  // Each of these used to reach plan construction as garbage.
  EXPECT_FALSE(parse_dims("0x0", &dims, &err));      // atoll -> 0: div by zero
  EXPECT_FALSE(parse_dims("x128", &dims, &err));     // empty first token -> 0
  EXPECT_FALSE(parse_dims("12ax34", &dims, &err));   // atoll -> 12 silently
  EXPECT_FALSE(parse_dims("2x2x2x2", &dims, &err));  // 4 dims
  EXPECT_FALSE(parse_dims("", &dims, &err));
  EXPECT_FALSE(parse_dims("128x", &dims, &err));     // trailing separator
  EXPECT_FALSE(parse_dims("-8x16", &dims, &err));    // negative
  EXPECT_FALSE(err.empty());
}

TEST(ParseArgs, DefaultsSurviveEmptyArgv) {
  Options o;
  std::string err;
  ASSERT_TRUE(parse_args({}, &o, &err));
  EXPECT_EQ((std::vector<idx_t>{128, 128, 128}), o.dims);
  EXPECT_EQ("dbuf", o.engine);
  EXPECT_EQ(0, o.threads);
  EXPECT_EQ(3, o.reps);
  EXPECT_TRUE(o.nontemporal);
  EXPECT_TRUE(o.trace_path.empty());
}

TEST(ParseArgs, ParsesFullCommandLine) {
  Options o;
  std::string err;
  ASSERT_TRUE(parse_args({"--dims", "256x128", "--engine", "stagepar",
                          "--threads", "8", "--compute", "4", "--block",
                          "4096", "--mu", "4", "--reps", "5", "--inverse",
                          "--verify", "--no-nt", "--stats", "--trace",
                          "out.json"},
                         &o, &err))
      << err;
  EXPECT_EQ((std::vector<idx_t>{256, 128}), o.dims);
  EXPECT_EQ("stagepar", o.engine);
  EXPECT_EQ(8, o.threads);
  EXPECT_EQ(4, o.compute);
  EXPECT_EQ(4096, o.block);
  EXPECT_EQ(4, o.mu);
  EXPECT_EQ(5, o.reps);
  EXPECT_TRUE(o.inverse);
  EXPECT_TRUE(o.verify);
  EXPECT_FALSE(o.nontemporal);
  EXPECT_TRUE(o.stats);
  EXPECT_EQ("out.json", o.trace_path);
}

TEST(ParseArgs, RejectsInvalidNumericFlags) {
  Options o;
  std::string err;
  EXPECT_FALSE(parse_args({"--threads", "0"}, &o, &err));  // must be >= 1
  EXPECT_FALSE(parse_args({"--threads", "-4"}, &o, &err));
  EXPECT_FALSE(parse_args({"--threads", "4x"}, &o, &err));
  EXPECT_FALSE(parse_args({"--compute", "-1"}, &o, &err));  // flag min is 0
  EXPECT_FALSE(parse_args({"--reps", "0"}, &o, &err));
  EXPECT_FALSE(parse_args({"--block", "0"}, &o, &err));
  EXPECT_FALSE(parse_args({"--mu", "0"}, &o, &err));
  EXPECT_FALSE(parse_args({"--reps"}, &o, &err));  // missing value
  EXPECT_FALSE(err.empty());
}

TEST(ParseArgs, RejectsUnknownFlagsAndEngines) {
  Options o;
  std::string err;
  EXPECT_FALSE(parse_args({"--bogus"}, &o, &err));
  EXPECT_NE(std::string::npos, err.find("--bogus"));
  EXPECT_FALSE(parse_args({"--engine", "mkl"}, &o, &err));
  EXPECT_NE(std::string::npos, err.find("mkl"));
  EXPECT_FALSE(parse_args({"--trace"}, &o, &err));
}

TEST(ParseArgs, AcceptsEveryEngineSpelling) {
  for (const char* name :
       {"dbuf", "double-buffer", "stagepar", "stage-parallel", "slab",
        "slab-pencil", "pencil", "reference", "auto"}) {
    Options o;
    std::string err;
    EXPECT_TRUE(parse_args({"--engine", name}, &o, &err)) << name;
    EXPECT_EQ(name, o.engine);
  }
}

TEST(ParseArgs, TuneFlagSelectsTheAutoEngine) {
  for (const char* level : {"estimate", "measure", "exhaustive"}) {
    Options o;
    std::string err;
    ASSERT_TRUE(parse_args({"--tune", level}, &o, &err)) << err;
    EXPECT_EQ(level, o.tune);
    EXPECT_EQ("auto", o.engine);  // --tune implies the planner
  }
  // Flag order must not matter for the engine override.
  Options o;
  std::string err;
  ASSERT_TRUE(parse_args({"--tune", "measure", "--engine", "auto"}, &o, &err));
  EXPECT_EQ("auto", o.engine);
  ASSERT_TRUE(parse_args({"--engine", "auto", "--tune", "measure"}, &o, &err));
  EXPECT_EQ("auto", o.engine);
}

TEST(ParseArgs, TuneConflictsAndBadLevelsAreRejected) {
  Options o;
  std::string err;
  EXPECT_FALSE(parse_args({"--tune", "fast"}, &o, &err));
  EXPECT_NE(std::string::npos, err.find("fast"));
  EXPECT_FALSE(parse_args({"--tune"}, &o, &err));  // missing value
  // A deliberate non-auto engine contradicts --tune, in either order.
  EXPECT_FALSE(
      parse_args({"--engine", "pencil", "--tune", "estimate"}, &o, &err));
  EXPECT_NE(std::string::npos, err.find("--engine auto"));
  EXPECT_FALSE(
      parse_args({"--tune", "estimate", "--engine", "pencil"}, &o, &err));
}

TEST(ParseArgs, WisdomPathIsCaptured) {
  Options o;
  std::string err;
  ASSERT_TRUE(parse_args({"--wisdom", "w.json"}, &o, &err)) << err;
  EXPECT_EQ("w.json", o.wisdom_path);
  EXPECT_FALSE(parse_args({"--wisdom"}, &o, &err));
  EXPECT_FALSE(parse_args({"--wisdom", ""}, &o, &err));
}

TEST(ParseArgs, IsaAndDispatchFlags) {
  Options o;
  std::string err;
  ASSERT_TRUE(parse_args({}, &o, &err));
  EXPECT_FALSE(o.dispatch);
  EXPECT_TRUE(o.isa.empty());
  for (const char* name : {"auto", "scalar", "avx2", "avx512", "avx512f"}) {
    ASSERT_TRUE(parse_args({"--isa", name}, &o, &err)) << err;
    EXPECT_EQ(name, o.isa);
  }
  ASSERT_TRUE(parse_args({"--dispatch"}, &o, &err)) << err;
  EXPECT_TRUE(o.dispatch);
  EXPECT_FALSE(parse_args({"--isa"}, &o, &err));
  EXPECT_FALSE(parse_args({"--isa", "sse9"}, &o, &err));
  EXPECT_NE(std::string::npos, err.find("--isa"));
}

}  // namespace
}  // namespace bwfft::cli
