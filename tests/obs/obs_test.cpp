// Tests for the observability layer: thread-local counters, the slice
// recorder, the chrome-trace exporter and the roofline report.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "benchutil/json.h"
#include "obs/obs.h"

namespace bwfft::obs {
namespace {

TEST(ObsCounters, AccumulateAcrossThreadsAndSurviveThreadExit) {
  reset_counters();
  counter_add(Counter::BytesLoaded, 100);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) counter_add(Counter::BytesLoaded, 1);
      counter_add(Counter::NtStores, 7);
    });
  }
  for (auto& t : threads) t.join();

  // The worker threads have exited; their blocks must have been retired
  // into the registry, not lost.
  EXPECT_EQ(4100u, counter_total(Counter::BytesLoaded));
  EXPECT_EQ(28u, counter_total(Counter::NtStores));
  EXPECT_EQ(0u, counter_total(Counter::BytesStored));

  const CounterSnapshot snap = counters();
  EXPECT_EQ(4100u, snap[Counter::BytesLoaded]);
  EXPECT_EQ(28u, snap[Counter::NtStores]);

  reset_counters();
  EXPECT_EQ(0u, counter_total(Counter::BytesLoaded));
  EXPECT_EQ(0u, counter_total(Counter::NtStores));
}

TEST(ObsCounters, NamesAreStableSnakeCase) {
  EXPECT_STREQ("bytes_loaded", counter_name(Counter::BytesLoaded));
  EXPECT_STREQ("bytes_stored", counter_name(Counter::BytesStored));
  EXPECT_STREQ("nt_stores", counter_name(Counter::NtStores));
  EXPECT_STREQ("barrier_wait_ns", counter_name(Counter::BarrierWaitNs));
  EXPECT_STREQ("load_busy_ns", counter_name(Counter::LoadBusyNs));
  EXPECT_STREQ("compute_busy_ns", counter_name(Counter::ComputeBusyNs));
  EXPECT_STREQ("store_busy_ns", counter_name(Counter::StoreBusyNs));
}

TEST(ObsScopedSlice, FeedsBusyCounterEvenWithoutTracing) {
  reset_counters();
  ASSERT_FALSE(trace_active());
  {
    ScopedSlice s("work", 'C', 0,
                  static_cast<int>(Counter::ComputeBusyNs));
    // Arbitrary small delay so the duration is non-zero on any clock.
    volatile int sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  EXPECT_GT(counter_total(Counter::ComputeBusyNs), 0u);
  reset_counters();
}

TEST(ObsTrace, RecordsOnlyWhileArmed) {
  {
    ScopedSlice s("before", 'X');
  }
  start_trace();
  {
    ScopedSlice s("during-1", 'L', 3);
  }
  {
    ScopedSlice s("during-2", 'C', 4);
  }
  stop_trace();
  {
    ScopedSlice s("after", 'X');
  }

  const std::vector<Slice> slices = drain_trace();
  ASSERT_EQ(2u, slices.size());
  // drain_trace sorts by start time.
  EXPECT_LE(slices[0].t0_ns, slices[1].t0_ns);
  EXPECT_STREQ("during-1", slices[0].name);
  EXPECT_EQ('L', slices[0].phase);
  EXPECT_EQ(3, slices[0].arg);
  EXPECT_STREQ("during-2", slices[1].name);
  EXPECT_LE(slices[0].t0_ns, slices[0].t1_ns);
}

TEST(ObsTrace, StartTraceClearsPreviousSlices) {
  start_trace();
  {
    ScopedSlice s("old", 'X');
  }
  stop_trace();
  start_trace();
  {
    ScopedSlice s("new", 'X');
  }
  stop_trace();
  const std::vector<Slice> slices = drain_trace();
  ASSERT_EQ(1u, slices.size());
  EXPECT_STREQ("new", slices[0].name);
}

TEST(ObsTrace, RingOverflowDropsOldestAndCounts) {
  start_trace();
  const int n = (1 << 14) + 500;  // ring capacity is 1<<14 per thread
  for (int i = 0; i < n; ++i) {
    record_slice("s", 'X', static_cast<std::uint64_t>(i),
                 static_cast<std::uint64_t>(i) + 1, i);
  }
  stop_trace();
  EXPECT_GE(dropped_slices(), 500u);
  const std::vector<Slice> slices = drain_trace();
  EXPECT_EQ(std::size_t{1} << 14, slices.size());
  // The survivors are the newest entries.
  EXPECT_EQ(n - 1, slices.back().arg);
}

TEST(ObsChromeTrace, ExportsValidJsonWithOneEventPerSlice) {
  start_trace();
  {
    ScopedSlice s("load", 'L', 0);
  }
  {
    ScopedSlice s("compute", 'C', 1);
  }
  {
    ScopedSlice s("store", 'S', 2);
  }
  stop_trace();
  const std::vector<Slice> slices = drain_trace();
  ASSERT_EQ(3u, slices.size());

  const std::string json = chrome_trace_json(slices);
  std::string err;
  const Json doc = Json::parse(json, &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_TRUE(doc.is_object());

  const Json* events = doc.find("traceEvents");
  ASSERT_NE(nullptr, events);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(3u, events->size());
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& ev = (*events)[i];
    ASSERT_TRUE(ev.is_object());
    const Json* ph = ev.find("ph");
    ASSERT_NE(nullptr, ph);
    EXPECT_EQ("X", ph->as_string());  // complete events
    EXPECT_NE(nullptr, ev.find("name"));
    EXPECT_NE(nullptr, ev.find("cat"));
    EXPECT_NE(nullptr, ev.find("ts"));
    EXPECT_NE(nullptr, ev.find("dur"));
    EXPECT_NE(nullptr, ev.find("tid"));
    EXPECT_NE(nullptr, ev.find("pid"));
  }
  // Category comes from the phase code.
  EXPECT_EQ("load", (*events)[0].find("cat")->as_string());
}

TEST(ObsRoofline, RatesStageSlicesAgainstStreamingBound) {
  // Hand-built trace: one 'G' stage of 2 ms and one of 4 ms, plus a
  // non-stage slice that must be ignored.
  std::vector<Slice> slices;
  slices.push_back({"stage-0", 'G', 0, 2'000'000, 0, 0});
  slices.push_back({"load", 'L', 0, 500'000, 0, 1});
  slices.push_back({"stage-1", 'G', 2'000'000, 6'000'000, 1, 0});

  // stage_bytes = 1e7 at 10 GB/s -> io bound = 1 ms per stage.
  const auto roof = roofline_from_trace(slices, 1e7, 10.0);
  ASSERT_EQ(2u, roof.size());
  EXPECT_EQ("stage-0", roof[0].name);
  EXPECT_NEAR(2e-3, roof[0].seconds, 1e-9);
  EXPECT_NEAR(1e-3, roof[0].io_bound_seconds, 1e-9);
  EXPECT_NEAR(50.0, roof[0].pct_of_peak, 1e-6);
  EXPECT_EQ("stage-1", roof[1].name);
  EXPECT_NEAR(25.0, roof[1].pct_of_peak, 1e-6);
}

TEST(ObsRoofline, EmptyTraceYieldsNoStages) {
  EXPECT_TRUE(roofline_from_trace({}, 1e7, 10.0).empty());
}

}  // namespace
}  // namespace bwfft::obs
