// Tests for the BENCH_*.json schema helpers and the minimal JSON value.
#include <gtest/gtest.h>

#include <string>

#include "benchutil/bench_schema.h"
#include "benchutil/json.h"

namespace bwfft {
namespace {

BenchReport sample_report() {
  BenchReport rep;
  rep.label = "PRX";
  rep.stream_gbs = 21.5;
  BenchRow row;
  row.engine = "double-buffer";
  row.dims = {128, 128, 128};
  row.best_seconds = 0.012;
  row.pseudo_gflops = 36.9;
  row.pct_of_peak = 81.0;
  row.counters.emplace_back("bytes_loaded", std::uint64_t{100663296});
  row.counters.emplace_back("nt_stores", std::uint64_t{3145728});
  row.stages.push_back({"stage-0", 0.004, 83.0});
  row.stages.push_back({"stage-1", 0.004, 80.0});
  row.stages.push_back({"stage-2", 0.004, 79.5});
  rep.rows.push_back(row);
  BenchRow row2;
  row2.engine = "pencil";
  row2.dims = {512, 1024};
  row2.best_seconds = 0.05;
  row2.pseudo_gflops = 2.1;
  row2.pct_of_peak = 9.0;
  rep.rows.push_back(row2);
  return rep;
}

TEST(BenchSchema, SerializedReportValidates) {
  const Json doc = bench_report_to_json(sample_report());
  std::string err;
  EXPECT_TRUE(validate_bench_report(doc, &err)) << err;
}

TEST(BenchSchema, SurvivesDumpParseRoundTrip) {
  const Json doc = bench_report_to_json(sample_report());
  std::string err;
  const Json back = Json::parse(doc.dump(2), &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_TRUE(validate_bench_report(back, &err)) << err;

  const BenchReport rep = bench_report_from_json(back);
  ASSERT_EQ(2u, rep.rows.size());
  EXPECT_EQ("PRX", rep.label);
  EXPECT_DOUBLE_EQ(21.5, rep.stream_gbs);
  EXPECT_EQ("double-buffer", rep.rows[0].engine);
  EXPECT_EQ((std::vector<idx_t>{128, 128, 128}), rep.rows[0].dims);
  EXPECT_DOUBLE_EQ(0.012, rep.rows[0].best_seconds);
  ASSERT_EQ(2u, rep.rows[0].counters.size());
  EXPECT_EQ("bytes_loaded", rep.rows[0].counters[0].first);
  EXPECT_EQ(std::uint64_t{100663296}, rep.rows[0].counters[0].second);
  ASSERT_EQ(3u, rep.rows[0].stages.size());
  EXPECT_EQ("stage-2", rep.rows[0].stages[2].name);
  EXPECT_DOUBLE_EQ(79.5, rep.rows[0].stages[2].pct_of_peak);
  EXPECT_EQ((std::vector<idx_t>{512, 1024}), rep.rows[1].dims);
}

TEST(BenchSchema, OneDimensionalRowsValidate) {
  // The large-1D sweep emits dims like [4194304]; 4D and empty stay out.
  BenchReport rep = sample_report();
  BenchRow row;
  row.engine = "double-buffer";
  row.resolved = "fft1d-large";
  row.dims = {idx_t{1} << 22};
  row.best_seconds = 0.08;
  row.pseudo_gflops = 5.2;
  row.pct_of_peak = 20.5;
  rep.rows.push_back(row);
  std::string err;
  EXPECT_TRUE(validate_bench_report(bench_report_to_json(rep), &err)) << err;

  rep.rows.back().dims = {2, 2, 2, 2};
  EXPECT_FALSE(validate_bench_report(bench_report_to_json(rep), &err));
  rep.rows.back().dims = {};
  EXPECT_FALSE(validate_bench_report(bench_report_to_json(rep), &err));
}

TEST(BenchSchema, RejectsSchemaViolations) {
  std::string err;

  Json wrong_schema = bench_report_to_json(sample_report());
  wrong_schema.set("schema", "bwfft-bench-v0");
  EXPECT_FALSE(validate_bench_report(wrong_schema, &err));
  EXPECT_NE(std::string::npos, err.find("schema"));

  Json no_label = bench_report_to_json(sample_report());
  no_label.set("label", "");
  EXPECT_FALSE(validate_bench_report(no_label, &err));

  Json bad_bw = bench_report_to_json(sample_report());
  bad_bw.set("stream_gbs", 0.0);
  EXPECT_FALSE(validate_bench_report(bad_bw, &err));

  BenchReport empty = sample_report();
  empty.rows.clear();
  EXPECT_FALSE(validate_bench_report(bench_report_to_json(empty), &err));
  EXPECT_NE(std::string::npos, err.find("results"));

  BenchReport four_dim = sample_report();
  four_dim.rows[0].dims = {2, 2, 2, 2};
  EXPECT_FALSE(validate_bench_report(bench_report_to_json(four_dim), &err));

  BenchReport zero_dim = sample_report();
  zero_dim.rows[0].dims = {128, 0, 128};
  EXPECT_FALSE(validate_bench_report(bench_report_to_json(zero_dim), &err));

  BenchReport zero_secs = sample_report();
  zero_secs.rows[0].best_seconds = 0.0;
  EXPECT_FALSE(validate_bench_report(bench_report_to_json(zero_secs), &err));

  BenchReport bad_stage = sample_report();
  bad_stage.rows[0].stages[0].seconds = 0.0;
  EXPECT_FALSE(validate_bench_report(bench_report_to_json(bad_stage), &err));
  EXPECT_NE(std::string::npos, err.find("stage"));

  EXPECT_FALSE(validate_bench_report(Json(), &err));  // not an object
}

TEST(Json, ParsesAndPreservesIntegers) {
  std::string err;
  const Json doc = Json::parse(
      R"({"a": 9007199254740993, "b": [1, 2.5, true, null, "x\"y"]})", &err);
  ASSERT_TRUE(err.empty()) << err;
  // 2^53+1 is not representable as a double; as_int must preserve it.
  EXPECT_EQ(9007199254740993LL, doc.find("a")->as_int());
  const Json* b = doc.find("b");
  ASSERT_NE(nullptr, b);
  ASSERT_EQ(5u, b->size());
  EXPECT_EQ(1, (*b)[0].as_int());
  EXPECT_DOUBLE_EQ(2.5, (*b)[1].as_double());
  EXPECT_TRUE((*b)[2].as_bool());
  EXPECT_TRUE((*b)[3].is_null());
  EXPECT_EQ("x\"y", (*b)[4].as_string());
}

// ---------------------------------------------------------------------------
// The perf-regression gate behind `bench_report --check`.

BenchReport gate_report(double db_pct, double sp_pct, double ref_pct) {
  BenchReport rep;
  rep.label = "gate";
  rep.stream_gbs = 20.0;
  BenchRow db;
  db.engine = "double-buffer";
  db.dims = {1 << 22};
  db.pct_of_peak = db_pct;
  rep.rows.push_back(db);
  BenchRow sp;
  sp.engine = "stage-parallel";
  sp.dims = {64, 64};
  sp.pct_of_peak = sp_pct;
  rep.rows.push_back(sp);
  BenchRow ref;
  ref.engine = "reference";
  ref.dims = {64, 64};
  ref.pct_of_peak = ref_pct;  // below the floor in these tests
  rep.rows.push_back(ref);
  return rep;
}

TEST(BenchCheck, ConfigKeyNamesEngineAndDims) {
  BenchRow row;
  row.engine = "double-buffer";
  row.dims = {1 << 22};
  EXPECT_EQ("double-buffer 4194304", bench_config_key(row));
  row.resolved = "fft1d-large";  // resolution must not change the key
  EXPECT_EQ("double-buffer 4194304", bench_config_key(row));
  row.dims = {64, 128};
  EXPECT_EQ("double-buffer 64x128", bench_config_key(row));
}

TEST(BenchCheck, IdenticalReportsPass) {
  const BenchReport base = gate_report(40.0, 55.0, 1.0);
  const BenchCheckResult r = check_bench_regression(base, base, 10.0);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(2, r.compared);
  EXPECT_EQ(1, r.skipped);  // the sub-floor reference row
}

TEST(BenchCheck, InjectedRegressionFails) {
  const BenchReport base = gate_report(40.0, 55.0, 1.0);
  const BenchReport cur = gate_report(40.0, 20.0, 1.0);  // sp fell 64%
  const BenchCheckResult r = check_bench_regression(base, cur, 25.0);
  ASSERT_EQ(1u, r.regressions.size());
  EXPECT_EQ("stage-parallel 64x64", r.regressions[0].config);
  EXPECT_DOUBLE_EQ(55.0, r.regressions[0].baseline_pct);
  EXPECT_DOUBLE_EQ(20.0, r.regressions[0].current_pct);
}

TEST(BenchCheck, DropWithinTolerancePasses) {
  const BenchReport base = gate_report(40.0, 55.0, 1.0);
  const BenchReport cur = gate_report(36.0, 50.0, 1.0);  // ~10% drops
  EXPECT_TRUE(check_bench_regression(base, cur, 25.0).ok());
}

TEST(BenchCheck, SubFloorRowsNeverFlag) {
  // The dense reference rows live near the noise floor; halving 1% of
  // peak is scheduler jitter, not a regression.
  const BenchReport base = gate_report(40.0, 55.0, 1.0);
  const BenchReport cur = gate_report(40.0, 55.0, 0.4);
  EXPECT_TRUE(check_bench_regression(base, cur, 25.0).ok());
}

TEST(BenchCheck, VanishedConfigurationFails) {
  const BenchReport base = gate_report(40.0, 55.0, 1.0);
  BenchReport cur = gate_report(40.0, 55.0, 1.0);
  cur.rows.erase(cur.rows.begin());  // drop the double-buffer row
  const BenchCheckResult r = check_bench_regression(base, cur, 25.0);
  ASSERT_EQ(1u, r.regressions.size());
  EXPECT_EQ("double-buffer 4194304", r.regressions[0].config);
  EXPECT_LT(r.regressions[0].current_pct, 0.0);
}

TEST(BenchCheck, NewConfigurationsAreNotFlagged) {
  BenchReport base = gate_report(40.0, 55.0, 1.0);
  base.rows.pop_back();
  base.rows.pop_back();  // baseline only knows the double-buffer row
  const BenchReport cur = gate_report(40.0, 55.0, 1.0);
  const BenchCheckResult r = check_bench_regression(base, cur, 25.0);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(1, r.compared);
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\":1,}", "tru", "1 2",
        "{\"a\" 1}", "\"unterminated"}) {
    std::string err;
    Json::parse(bad, &err);
    EXPECT_FALSE(err.empty()) << "should reject: " << bad;
    EXPECT_FALSE(Json::valid(bad));
  }
}

}  // namespace
}  // namespace bwfft
