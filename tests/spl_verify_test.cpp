// Tests for the SPL static verifier: clean passes over the paper's
// factorisations, rejection of mismatched ⊗/∘ dimension chains and
// non-finite diagonals, permutation probing of L/K nodes, and element-
// count conservation of lowered programs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "spl/algorithms.h"
#include "spl/lower.h"
#include "spl/verify.h"

namespace bwfft::spl {
namespace {

bool has_issue(const VerifyReport& rep, VerifyIssue::Kind kind) {
  for (const auto& i : rep.issues) {
    if (i.kind == kind) return true;
  }
  return false;
}

TEST(SplVerify, PaperFactorisationsAreClean) {
  EXPECT_TRUE(verify(*cooley_tukey(4, 8)).ok());
  EXPECT_TRUE(verify(*dft1d_four_step(4, 4)).ok());
  EXPECT_TRUE(verify(*dft2d_blocked(8, 8, 2)).ok());
  EXPECT_TRUE(verify(*dft3d_rotated(4, 4, 8, 2)).ok());
  EXPECT_TRUE(verify(*dft3d_dual_socket(4, 4, 8, 2, 2)).ok());
  const auto rep = verify(*rotation_k_blocked(3, 4, 8, 2));
  EXPECT_TRUE(rep.ok()) << rep.str();
  EXPECT_GT(rep.nodes, 1u);
}

TEST(SplVerify, TiledStageTermsAreClean) {
  for (const auto& term : stage1_tiled(4, 4, 8, 2, 32)) {
    const auto rep = verify(*term);
    EXPECT_TRUE(rep.ok()) << rep.str();
  }
}

// The rejection case from the issue: two ⊗ factors whose total dimensions
// do not chain. The Compose constructor throws on this, so the verifier's
// non-throwing entry point is what a rewrite pass would consult first.
TEST(SplVerify, RejectsMismatchedKronComposition) {
  // (DFT_4 ⊗ I_2) is 8x8 but (I_4 ⊗ DFT_4) is 16x16.
  const auto rep = verify_compose(
      {kron(dft(4), identity(2)), kron(identity(4), dft(4))});
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_issue(rep, VerifyIssue::Kind::ComposeMismatch)) << rep.str();
  // The constructor keeps throwing for the same chain.
  EXPECT_THROW(compose({kron(dft(4), identity(2)), kron(identity(4), dft(4))}),
               Error);
}

TEST(SplVerify, RejectsMismatchedPlainComposition) {
  const auto rep = verify_compose({dft(4), dft(5)});
  EXPECT_TRUE(has_issue(rep, VerifyIssue::Kind::ComposeMismatch)) << rep.str();
  EXPECT_TRUE(verify_compose({dft(4), dft(4)}).ok());
}

TEST(SplVerify, FindsIssueInsideNestedTree) {
  // A bad diagonal buried under ⊗ and ∘ is still found.
  cvec d(4, cplx(1.0, 0.0));
  d[2] = cplx(std::nan(""), 0.0);
  const auto term =
      compose({kron(identity(2), diag(std::move(d))), identity(8)});
  const auto rep = verify(*term);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_issue(rep, VerifyIssue::Kind::NonFinite)) << rep.str();
}

TEST(SplVerify, StrideAndRotationNodesArePermutations) {
  EXPECT_TRUE(is_permutation(*stride_perm(12, 3)));
  EXPECT_TRUE(is_permutation(*stride_perm(16, 4)));
  EXPECT_TRUE(is_permutation(*rotation_k(2, 3, 4)));
  EXPECT_TRUE(is_permutation(*rotation_k_blocked(2, 3, 8, 2)));
  EXPECT_TRUE(is_permutation(*identity(7)));
  // Not permutations: anything that mixes or scales.
  EXPECT_FALSE(is_permutation(*dft(4)));
  EXPECT_FALSE(is_permutation(*diag(cvec(4, cplx(2.0, 0.0)))));
  EXPECT_FALSE(is_permutation(*zero(4, 4)));
  // Non-square operators cannot be permutations.
  EXPECT_FALSE(is_permutation(*gather(8, 2, 1)));
  // Over the probe limit: refused rather than guessed.
  EXPECT_FALSE(is_permutation(*stride_perm(16, 4), /*limit=*/8));
}

TEST(SplVerify, GatherScatterWindowsVerified) {
  EXPECT_TRUE(verify(*gather(16, 4, 3)).ok());   // last window: tight fit
  EXPECT_TRUE(verify(*scatter(16, 4, 0)).ok());
  EXPECT_THROW(gather(16, 4, 4), Error);   // constructor rejects
  EXPECT_THROW(scatter(16, 4, 4), Error);  // past the end
}

TEST(SplVerify, LoweredProgramConserves) {
  const auto term = dft1d_four_step(4, 8);
  const Program prog = lower(*term);
  const auto rep = verify(prog);
  EXPECT_TRUE(rep.ok()) << rep.str();
  EXPECT_EQ(rep.nodes, prog.ops().size());
}

TEST(SplVerify, FlagsNonConservativeProgram) {
  Program prog(32);
  LowerOp op;
  op.kind = LowerOp::Kind::BatchTranspose;
  op.batch = 2;
  op.rows = 4;
  op.cols = 2;
  op.lanes = 1;  // 2*4*2*1 = 16 != 32
  prog.push(std::move(op));
  const auto rep = verify(prog);
  EXPECT_TRUE(has_issue(rep, VerifyIssue::Kind::NotConservative)) << rep.str();
}

TEST(SplVerify, FlagsScaleLengthMismatchAndNonFinite) {
  Program prog(8);
  LowerOp op;
  op.kind = LowerOp::Kind::Scale;
  op.diag = cvec(4, cplx(1.0, 0.0));  // wrong length
  prog.push(std::move(op));
  EXPECT_TRUE(has_issue(verify(prog), VerifyIssue::Kind::NotConservative));

  Program prog2(4);
  LowerOp op2;
  op2.kind = LowerOp::Kind::Scale;
  op2.diag = cvec(4, cplx(1.0, 0.0));
  op2.diag[1] = cplx(0.0, std::numeric_limits<double>::infinity());
  prog2.push(std::move(op2));
  EXPECT_TRUE(has_issue(verify(prog2), VerifyIssue::Kind::NonFinite));
}

#ifdef BWFFT_CHECKED
// In checked builds a malformed hand-assembled program refuses to run.
TEST(SplVerify, CheckedRunRejectsMalformedProgram) {
  Program prog(32);
  LowerOp op;
  op.kind = LowerOp::Kind::Scale;
  op.diag = cvec(16, cplx(1.0, 0.0));
  prog.push(std::move(op));
  const cvec in(32, cplx(1.0, 0.0));
  EXPECT_THROW(prog.run(in), Error);
}
#endif

TEST(SplVerify, ReportRendersIssues) {
  const auto rep = verify_compose({dft(4), dft(5)});
  ASSERT_FALSE(rep.ok());
  const std::string s = rep.str();
  EXPECT_NE(s.find("compose-mismatch"), std::string::npos) << s;
  EXPECT_NE(s.find("DFT_4"), std::string::npos) << s;
}

}  // namespace
}  // namespace bwfft::spl
