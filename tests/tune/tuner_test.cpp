// Tests for the planner/autotuner behind EngineKind::Auto: the
// Estimate/Measure ladder, the never-worse-than-default guarantee and
// wisdom-warmed resolution that skips measurement entirely.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/topology.h"
#include "obs/obs.h"
#include "tune/tuner.h"
#include "tune/wisdom.h"

namespace bwfft::tune {
namespace {

// Every test pins a calibrated bandwidth up front so the tuner never
// pays for a real STREAM run, and starts from empty wisdom.
class TunerTest : public testing::Test {
 protected:
  void SetUp() override {
    calibrate_host_bandwidth(30.0);
    global_wisdom_clear();
  }
};

FftOptions auto_opts(TuneLevel level) {
  FftOptions o;
  o.engine = EngineKind::Auto;
  o.tune_level = level;
  o.threads = 4;
  return o;
}

TEST_F(TunerTest, BandwidthCalibrationSticks) {
  EXPECT_TRUE(host_bandwidth_calibrated());
  EXPECT_EQ(30.0, ensure_bandwidth_calibrated());
  EXPECT_EQ(30.0, host_topology().stream_bw_gbs);
}

TEST_F(TunerTest, EstimateResolvesConcreteWithoutExecuting) {
  TuneReport report;
  const FftOptions resolved =
      resolve_auto({32, 32}, Direction::Forward, auto_opts(TuneLevel::Estimate),
                   &report);
  EXPECT_NE(EngineKind::Auto, resolved.engine);
  EXPECT_FALSE(report.from_wisdom);
  EXPECT_EQ(0, report.measured_count);
  ASSERT_FALSE(report.candidates.empty());
  // Candidates come back ranked by the cost model, best first, and the
  // chosen config is the front of that ranking.
  EXPECT_TRUE(std::is_sorted(
      report.candidates.begin(), report.candidates.end(),
      [](const TuneCandidate& a, const TuneCandidate& b) {
        return a.est_seconds < b.est_seconds;
      }));
  EXPECT_TRUE(same_config(report.chosen, report.candidates.front()));
}

TEST_F(TunerTest, MeasureNeverLosesToTheDefaultConfig) {
  TuneReport report;
  resolve_auto({16, 16, 16}, Direction::Forward, auto_opts(TuneLevel::Measure),
               &report);
  EXPECT_FALSE(report.from_wisdom);
  EXPECT_GT(report.measured_count, 0);
  EXPECT_GE(report.chosen.measured_seconds, 0.0);

  // The untouched double-buffer default is always in the measured set,
  // so the winner is at worst the default (acceptance criterion).
  const TuneCandidate def = default_candidate();
  const auto it = std::find_if(
      report.candidates.begin(), report.candidates.end(),
      [&](const TuneCandidate& c) { return same_config(c, def); });
  ASSERT_NE(report.candidates.end(), it);
  ASSERT_GE(it->measured_seconds, 0.0);
  EXPECT_LE(report.chosen.measured_seconds, it->measured_seconds);
}

TEST_F(TunerTest, WisdomWarmedResolutionSkipsMeasurement) {
  const std::vector<idx_t> dims{16, 16, 16};
  TuneReport first;
  const FftOptions a =
      resolve_auto(dims, Direction::Forward, auto_opts(TuneLevel::Measure),
                   &first);
  EXPECT_FALSE(first.from_wisdom);
  EXPECT_GT(first.measured_count, 0);

#if defined(BWFFT_OBS)
  obs::reset_counters();
#endif
  TuneReport second;
  const FftOptions b =
      resolve_auto(dims, Direction::Forward, auto_opts(TuneLevel::Measure),
                   &second);
  EXPECT_TRUE(second.from_wisdom);
  EXPECT_EQ(0, second.measured_count);
  // Identical configuration, and provably no candidate was executed.
  EXPECT_TRUE(same_config(first.chosen, second.chosen));
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.compute_threads, b.compute_threads);
  EXPECT_EQ(a.block_elems, b.block_elems);
  EXPECT_EQ(a.packet_elems, b.packet_elems);
  EXPECT_EQ(a.nontemporal, b.nontemporal);
#if defined(BWFFT_OBS)
  EXPECT_EQ(0u, obs::counter_total(obs::Counter::TuneMeasure));
#endif
}

TEST_F(TunerTest, OneDimensionalWisdomPreservesTheFactorization) {
  // The 1D grid's tunable is the n = n1*n2 split. A Measure-level tune
  // must land the winning factorization in wisdom, and the second
  // resolution must replay it without re-measuring anything.
  const std::vector<idx_t> dims{idx_t{1} << 16};
  TuneReport first;
  const FftOptions a = resolve_auto(
      dims, Direction::Forward, auto_opts(TuneLevel::Measure), &first);
  EXPECT_FALSE(first.from_wisdom);
  EXPECT_GT(first.measured_count, 0);
  if (first.chosen.engine == EngineKind::DoubleBuffer) {
    EXPECT_GT(first.chosen.factor_n1, 0);
    EXPECT_EQ(0, dims[0] % first.chosen.factor_n1);
  }

  TuneReport second;
  const FftOptions b = resolve_auto(
      dims, Direction::Forward, auto_opts(TuneLevel::Measure), &second);
  EXPECT_TRUE(second.from_wisdom);
  EXPECT_EQ(0, second.measured_count);
  EXPECT_TRUE(same_config(first.chosen, second.chosen));
  EXPECT_EQ(first.chosen.factor_n1, second.chosen.factor_n1);
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.factor_n1, b.factor_n1);
}

TEST_F(TunerTest, ShallowWisdomDoesNotSatisfyDeeperRequests) {
  const std::vector<idx_t> dims{32, 32};
  resolve_auto(dims, Direction::Forward, auto_opts(TuneLevel::Estimate));

  // Estimate-level wisdom must not short-circuit a Measure request...
  TuneReport measure;
  resolve_auto(dims, Direction::Forward, auto_opts(TuneLevel::Measure),
               &measure);
  EXPECT_FALSE(measure.from_wisdom);
  EXPECT_GT(measure.measured_count, 0);

  // ...but the recorded Measure result now satisfies Estimate requests.
  TuneReport estimate;
  resolve_auto(dims, Direction::Forward, auto_opts(TuneLevel::Estimate),
               &estimate);
  EXPECT_TRUE(estimate.from_wisdom);
  EXPECT_TRUE(same_config(measure.chosen, estimate.chosen));
}

TEST_F(TunerTest, WisdomIsKeyedByDirection) {
  const std::vector<idx_t> dims{32, 32};
  resolve_auto(dims, Direction::Forward, auto_opts(TuneLevel::Estimate));
  TuneReport inverse;
  resolve_auto(dims, Direction::Inverse, auto_opts(TuneLevel::Estimate),
               &inverse);
  EXPECT_FALSE(inverse.from_wisdom);
}

TEST_F(TunerTest, PinnedEngineRestrictsTheGrid) {
  FftOptions req = auto_opts(TuneLevel::Estimate);
  req.engine = EngineKind::Auto;
  TuneReport report = tune_transform({32, 32}, Direction::Forward, req);
  EXPECT_GT(report.candidates.size(), 1u);

  req.compute_threads = 2;  // pinning a knob shrinks the grid
  const TuneReport pinned =
      tune_transform({32, 32}, Direction::Forward, req);
  EXPECT_LT(pinned.candidates.size(), report.candidates.size());
  for (const TuneCandidate& c : pinned.candidates) {
    if (c.engine == EngineKind::DoubleBuffer) {
      EXPECT_EQ(2, c.compute_threads);
    }
  }
}

}  // namespace
}  // namespace bwfft::tune
