// Tests for the tuning candidate grid and the bandwidth cost model.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/topology.h"
#include "tune/candidates.h"

namespace bwfft::tune {
namespace {

FftOptions auto_request() {
  FftOptions req;
  req.engine = EngineKind::Auto;
  return req;
}

bool contains_engine(const std::vector<TuneCandidate>& grid, EngineKind e) {
  return std::any_of(grid.begin(), grid.end(),
                     [&](const TuneCandidate& c) { return c.engine == e; });
}

TEST(Candidates, GridCoversEnginesPerRank) {
  const auto grid3 = enumerate_candidates({64, 64, 64}, auto_request());
  EXPECT_TRUE(contains_engine(grid3, EngineKind::DoubleBuffer));
  EXPECT_TRUE(contains_engine(grid3, EngineKind::StageParallel));
  EXPECT_TRUE(contains_engine(grid3, EngineKind::Pencil));
  EXPECT_TRUE(contains_engine(grid3, EngineKind::SlabPencil));
  EXPECT_FALSE(contains_engine(grid3, EngineKind::Reference));
  EXPECT_FALSE(contains_engine(grid3, EngineKind::Auto));

  const auto grid2 = enumerate_candidates({256, 256}, auto_request());
  EXPECT_FALSE(contains_engine(grid2, EngineKind::SlabPencil));
  EXPECT_TRUE(contains_engine(grid2, EngineKind::DoubleBuffer));
}

TEST(Candidates, GridContainsTheDefaultConfig) {
  const auto grid = enumerate_candidates({64, 64, 64}, auto_request());
  const TuneCandidate def = default_candidate();
  EXPECT_TRUE(std::any_of(
      grid.begin(), grid.end(),
      [&](const TuneCandidate& c) { return same_config(c, def); }));
}

TEST(Candidates, PinnedKnobsCollapseTheirAxis) {
  FftOptions req = auto_request();
  req.packet_elems = 2;
  const auto grid = enumerate_candidates({64, 64}, req);
  for (const TuneCandidate& c : grid) {
    if (c.engine == EngineKind::DoubleBuffer ||
        c.engine == EngineKind::StageParallel) {
      EXPECT_EQ(2, c.packet_elems) << candidate_label(c);
    }
  }

  FftOptions pinned_engine = auto_request();
  pinned_engine.engine = EngineKind::StageParallel;
  for (const TuneCandidate& c :
       enumerate_candidates({64, 64}, pinned_engine)) {
    EXPECT_EQ(EngineKind::StageParallel, c.engine);
  }
}

TEST(Candidates, PacketCandidatesDivideTheFastDimension) {
  // m = 15 is odd: the mu = 2 variant must not be enumerated.
  const auto grid = enumerate_candidates({32, 15}, auto_request());
  for (const TuneCandidate& c : grid) {
    EXPECT_NE(2, c.packet_elems) << candidate_label(c);
    if (c.packet_elems > 0) {
      EXPECT_EQ(0, 15 % c.packet_elems);
    }
  }
}

TEST(Candidates, OnlyOneToThreeDimensionalShapes) {
  EXPECT_FALSE(enumerate_candidates({1 << 18}, auto_request()).empty());
  EXPECT_THROW(enumerate_candidates({4, 4, 4, 4}, auto_request()), Error);
}

TEST(Candidates, OneDimensionalGridCarriesFactorAxis) {
  // The 1D grid swaps the packet axis for the n = n1*n2 factorization
  // axis: every four-step candidate names a divisor of n and at least
  // two distinct factorizations are offered for a pow2 size.
  const idx_t n = 1 << 20;
  const auto grid = enumerate_candidates({n}, auto_request());
  std::set<idx_t> factors;
  for (const TuneCandidate& c : grid) {
    EXPECT_EQ(0, c.packet_elems) << candidate_label(c);
    if (c.engine == EngineKind::DoubleBuffer) {
      EXPECT_GT(c.factor_n1, 0) << candidate_label(c);
      EXPECT_EQ(0, n % c.factor_n1) << candidate_label(c);
      factors.insert(c.factor_n1);
    }
  }
  EXPECT_GE(factors.size(), 2u);
}

TEST(Candidates, ApplyCandidateCopiesKnobs) {
  TuneCandidate c;
  c.engine = EngineKind::StageParallel;
  c.compute_threads = 3;
  c.block_elems = 4096;
  c.packet_elems = 2;
  c.nontemporal = false;
  FftOptions base;
  base.threads = 7;  // untouched by the candidate
  const FftOptions got = apply_candidate(c, base);
  EXPECT_EQ(EngineKind::StageParallel, got.engine);
  EXPECT_EQ(3, got.compute_threads);
  EXPECT_EQ(4096, got.block_elems);
  EXPECT_EQ(2, got.packet_elems);
  EXPECT_FALSE(got.nontemporal);
  EXPECT_EQ(7, got.threads);
}

TEST(Candidates, SameConfigIgnoresResults) {
  TuneCandidate a = default_candidate(), b = default_candidate();
  a.est_seconds = 1.0;
  b.measured_seconds = 2.0;
  EXPECT_TRUE(same_config(a, b));
  b.nontemporal = false;
  EXPECT_FALSE(same_config(a, b));
}

TEST(CostModel, GrowsWithProblemSize) {
  const MachineTopology topo = machines::kabylake_7700k();
  const TuneCandidate c = default_candidate();
  const double small = estimate_seconds(c, {64, 64, 64}, topo, 0);
  const double large = estimate_seconds(c, {128, 128, 128}, topo, 0);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, 2.0 * small);  // 8x the data must cost well over 2x
}

TEST(CostModel, WriteAllocatePenalisesTemporalStores) {
  const MachineTopology topo = machines::kabylake_7700k();
  TuneCandidate nt = default_candidate();
  TuneCandidate wa = default_candidate();
  wa.nontemporal = false;
  EXPECT_GT(estimate_seconds(wa, {256, 256, 256}, topo, 0),
            estimate_seconds(nt, {256, 256, 256}, topo, 0));
}

TEST(CostModel, StridedPencilCostsMoreThanDoubleBuffer) {
  const MachineTopology topo = machines::kabylake_7700k();
  TuneCandidate pencil;
  pencil.engine = EngineKind::Pencil;
  EXPECT_GT(estimate_seconds(pencil, {256, 256, 256}, topo, 0),
            estimate_seconds(default_candidate(), {256, 256, 256}, topo, 0));
}

TEST(CostModel, ScalesWithBandwidth) {
  MachineTopology slow = machines::kabylake_7700k();
  MachineTopology fast = slow;
  fast.stream_bw_gbs = 2.0 * slow.stream_bw_gbs;
  TuneCandidate pencil;  // pure-bandwidth engine: no iteration overhead
  pencil.engine = EngineKind::Pencil;
  const double t_slow = estimate_seconds(pencil, {128, 128, 128}, slow, 0);
  const double t_fast = estimate_seconds(pencil, {128, 128, 128}, fast, 0);
  EXPECT_NEAR(t_slow / 2.0, t_fast, 1e-12);
}

TEST(CostModel, LabelNamesTheEngine) {
  TuneCandidate c = default_candidate();
  EXPECT_NE(std::string::npos, candidate_label(c).find("double-buffer"));
  c.engine = EngineKind::SlabPencil;
  EXPECT_NE(std::string::npos, candidate_label(c).find("slab-pencil"));
}

}  // namespace
}  // namespace bwfft::tune
