// Tests for the thread-safe LRU plan cache: hit/miss accounting, LRU
// eviction by count and bytes, shared_ptr handout, concurrent lookups
// and end-to-end correctness of cached plans.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../test_util.h"
#include "common/rng.h"
#include "common/topology.h"
#include "fft/reference.h"
#include "obs/obs.h"
#include "parallel/team.h"
#include "tune/plan_cache.h"
#include "tune/wisdom.h"

namespace bwfft::tune {
namespace {

using test::fft_tol;
using test::max_err;

FftOptions small_opts() {
  FftOptions o;
  o.threads = 2;
  return o;
}

TEST(PlanCache, HitReturnsTheSameSharedPlan) {
  PlanCache cache;
  const auto a = cache.acquire({8, 8}, Direction::Forward, small_opts());
  const auto b = cache.acquire({8, 8}, Direction::Forward, small_opts());
  EXPECT_EQ(a.get(), b.get());
  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(1u, s.misses);
  EXPECT_EQ(1u, s.hits);
  EXPECT_EQ(1u, s.plans);
  EXPECT_GT(s.bytes, 0u);
}

TEST(PlanCache, KeyCoversDimsDirectionOptionsAndVariant) {
  PlanCache cache;
  const auto base = cache.acquire({8, 8}, Direction::Forward, small_opts());
  EXPECT_NE(base.get(),
            cache.acquire({8, 16}, Direction::Forward, small_opts()).get());
  EXPECT_NE(base.get(),
            cache.acquire({8, 8}, Direction::Inverse, small_opts()).get());
  FftOptions other = small_opts();
  other.nontemporal = false;
  EXPECT_NE(base.get(),
            cache.acquire({8, 8}, Direction::Forward, other).get());
  EXPECT_NE(
      base.get(),
      cache.acquire({8, 8}, Direction::Forward, small_opts(), "v2").get());
  EXPECT_EQ(5u, cache.stats().plans);
  EXPECT_EQ(5u, cache.stats().misses);
  EXPECT_EQ(0u, cache.stats().hits);
}

TEST(PlanCache, EvictsLeastRecentlyUsedByCount) {
  PlanCache::Limits limits;
  limits.max_plans = 2;
  PlanCache cache(limits);
  cache.acquire({8, 8}, Direction::Forward, small_opts());    // A
  cache.acquire({8, 16}, Direction::Forward, small_opts());   // B
  cache.acquire({8, 8}, Direction::Forward, small_opts());    // touch A
  cache.acquire({16, 16}, Direction::Forward, small_opts());  // evicts B
  PlanCache::Stats s = cache.stats();
  EXPECT_EQ(1u, s.evictions);
  EXPECT_EQ(2u, s.plans);

  // A survived (hit), B did not (miss rebuilds it).
  cache.acquire({8, 8}, Direction::Forward, small_opts());
  EXPECT_EQ(s.hits + 1, cache.stats().hits);
  cache.acquire({8, 16}, Direction::Forward, small_opts());
  EXPECT_EQ(s.misses + 1, cache.stats().misses);
}

TEST(PlanCache, EvictsByByteBoundButKeepsTheNewestPlan) {
  PlanCache::Limits limits;
  limits.max_bytes = 1;  // smaller than any plan
  PlanCache cache(limits);
  const auto a = cache.acquire({8, 8}, Direction::Forward, small_opts());
  EXPECT_EQ(1u, cache.stats().plans);  // over budget, but never empty
  cache.acquire({8, 16}, Direction::Forward, small_opts());
  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(1u, s.plans);
  EXPECT_EQ(1u, s.evictions);
  // The evicted plan stays alive for holders of the shared_ptr.
  EXPECT_EQ(8, a->dims()[0]);
}

TEST(PlanCache, ShrinkingLimitsEvictsExistingPlans) {
  PlanCache cache;
  cache.acquire({8, 8}, Direction::Forward, small_opts());
  cache.acquire({8, 16}, Direction::Forward, small_opts());
  cache.acquire({16, 16}, Direction::Forward, small_opts());
  PlanCache::Limits limits;
  limits.max_plans = 1;
  cache.set_limits(limits);
  EXPECT_EQ(1u, cache.stats().plans);
  EXPECT_EQ(2u, cache.stats().evictions);
}

TEST(PlanCache, ClearForgetsPlansAndKeepsHitMissHistory) {
  PlanCache cache;
  cache.acquire({8, 8}, Direction::Forward, small_opts());
  cache.acquire({8, 8}, Direction::Forward, small_opts());
  cache.clear();
  PlanCache::Stats s = cache.stats();
  EXPECT_EQ(0u, s.plans);
  EXPECT_EQ(0u, s.bytes);
  EXPECT_EQ(1u, s.hits);
  cache.acquire({8, 8}, Direction::Forward, small_opts());
  EXPECT_EQ(2u, cache.stats().misses);
}

#if defined(BWFFT_OBS)
TEST(PlanCache, CountsHitsAndMissesIntoObs) {
  obs::reset_counters();
  PlanCache cache;
  cache.acquire({8, 8}, Direction::Forward, small_opts());
  cache.acquire({8, 8}, Direction::Forward, small_opts());
  cache.acquire({8, 8}, Direction::Forward, small_opts());
  EXPECT_EQ(1u, obs::counter_total(obs::Counter::PlanCacheMiss));
  EXPECT_EQ(2u, obs::counter_total(obs::Counter::PlanCacheHit));
}
#endif

TEST(PlanCache, ConcurrentAcquireBuildsOnce) {
  PlanCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<CachedPlan>> got(kThreads);
  ThreadTeam team(kThreads);
  team.run([&](int tid) {
    got[static_cast<std::size_t>(tid)] =
        cache.acquire({4, 8, 8}, Direction::Forward, small_opts());
  });
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[0].get(), got[static_cast<std::size_t>(t)].get());
  }
  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(1u, s.misses);
  EXPECT_EQ(static_cast<std::uint64_t>(kThreads - 1), s.hits);
}

TEST(PlanCache, CachedPlanExecutesCorrectly) {
  const idx_t k = 4, n = 8, m = 8;
  auto x = random_cvec(k * n * m, 7300);
  cvec want(x.size());
  reference_dft_3d(x.data(), want.data(), k, n, m, Direction::Forward);

  PlanCache cache;
  const auto plan =
      cache.acquire({k, n, m}, Direction::Forward, small_opts());
  cvec in = x, out(x.size());
  plan->execute(in.data(), out.data());
  EXPECT_LT(max_err(want, out), fft_tol(static_cast<double>(k * n * m)));

  // In-place path: transform through the internal work array, same
  // result.
  cvec data = x;
  plan->execute_inplace(data.data());
  EXPECT_LT(max_err(want, data), fft_tol(static_cast<double>(k * n * m)));
}

TEST(PlanCache, AutoPlansAreKeyedByTheRequestAndResolveConcrete) {
  calibrate_host_bandwidth(25.0);  // keep the cost model off STREAM runs
  global_wisdom_clear();
  PlanCache cache;
  FftOptions opts = small_opts();
  opts.engine = EngineKind::Auto;
  opts.tune_level = TuneLevel::Estimate;
  const auto a = cache.acquire({16, 16}, Direction::Forward, opts);
  EXPECT_NE(EngineKind::Auto, a->options().engine);
  EXPECT_STRNE("auto", a->engine_name());
  // The same Auto request is one cache key: the tuning cost is paid once.
  const auto b = cache.acquire({16, 16}, Direction::Forward, opts);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(1u, cache.stats().misses);
}

TEST(PlanCache, GlobalCacheIsShared) {
  PlanCache& g1 = PlanCache::global();
  PlanCache& g2 = PlanCache::global();
  EXPECT_EQ(&g1, &g2);
}

}  // namespace
}  // namespace bwfft::tune
