// Tests for persistent planner wisdom: the replace-only-with-better
// store, JSON round-tripping, file I/O tolerance and the process-wide
// instance.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "benchutil/json.h"
#include "common/topology.h"
#include "tune/wisdom.h"

namespace bwfft::tune {
namespace {

WisdomEntry entry(std::vector<idx_t> dims, Direction dir, TuneLevel level,
                  double seconds, EngineKind engine = EngineKind::DoubleBuffer) {
  WisdomEntry e;
  e.dims = std::move(dims);
  e.dir = dir;
  e.fingerprint = "s1c4t2llc8388608";
  e.config.engine = engine;
  e.seconds = seconds;
  e.level = level;
  return e;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(Wisdom, FingerprintEncodesTopologyNotBandwidth) {
  MachineTopology a = machines::kabylake_7700k();
  MachineTopology b = a;
  b.stream_bw_gbs = 999.0;  // bandwidth varies run to run; must not key
  EXPECT_EQ(topology_fingerprint(a), topology_fingerprint(b));
  b.cores_per_socket += 1;
  EXPECT_NE(topology_fingerprint(a), topology_fingerprint(b));
}

TEST(Wisdom, RecordAndLookup) {
  Wisdom w;
  EXPECT_EQ(nullptr, w.lookup({64, 64}, Direction::Forward, "fp"));
  WisdomEntry e = entry({64, 64}, Direction::Forward, TuneLevel::Measure,
                        1e-3);
  e.fingerprint = "fp";
  w.record(e);
  ASSERT_EQ(1u, w.size());
  const WisdomEntry* got = w.lookup({64, 64}, Direction::Forward, "fp");
  ASSERT_NE(nullptr, got);
  EXPECT_EQ(TuneLevel::Measure, got->level);
  EXPECT_EQ(EngineKind::DoubleBuffer, got->config.engine);
  // Direction, dims and fingerprint all participate in the key.
  EXPECT_EQ(nullptr, w.lookup({64, 64}, Direction::Inverse, "fp"));
  EXPECT_EQ(nullptr, w.lookup({64, 32}, Direction::Forward, "fp"));
  EXPECT_EQ(nullptr, w.lookup({64, 64}, Direction::Forward, "other"));
}

TEST(Wisdom, OnlyDeeperWisdomReplaces) {
  Wisdom w;
  w.record(entry({32, 32}, Direction::Forward, TuneLevel::Measure, 2e-3));

  // A lower level never replaces, even with a "better" time.
  w.record(entry({32, 32}, Direction::Forward, TuneLevel::Estimate, 1e-9,
                 EngineKind::Pencil));
  const WisdomEntry* got =
      w.lookup({32, 32}, Direction::Forward, "s1c4t2llc8388608");
  ASSERT_NE(nullptr, got);
  EXPECT_EQ(TuneLevel::Measure, got->level);
  EXPECT_EQ(EngineKind::DoubleBuffer, got->config.engine);

  // Same level, faster measurement replaces.
  w.record(entry({32, 32}, Direction::Forward, TuneLevel::Measure, 1e-3,
                 EngineKind::StageParallel));
  got = w.lookup({32, 32}, Direction::Forward, "s1c4t2llc8388608");
  EXPECT_EQ(EngineKind::StageParallel, got->config.engine);
  EXPECT_EQ(1e-3, got->seconds);

  // Same level, slower measurement does not.
  w.record(entry({32, 32}, Direction::Forward, TuneLevel::Measure, 5e-3));
  got = w.lookup({32, 32}, Direction::Forward, "s1c4t2llc8388608");
  EXPECT_EQ(EngineKind::StageParallel, got->config.engine);

  // A higher level always replaces.
  w.record(entry({32, 32}, Direction::Forward, TuneLevel::Exhaustive, 9e-3));
  got = w.lookup({32, 32}, Direction::Forward, "s1c4t2llc8388608");
  EXPECT_EQ(TuneLevel::Exhaustive, got->level);
  EXPECT_EQ(1u, w.size());
}

TEST(Wisdom, MergeAppliesTheSameRule) {
  Wisdom a, b;
  a.record(entry({64, 64}, Direction::Forward, TuneLevel::Measure, 2e-3));
  b.record(entry({64, 64}, Direction::Forward, TuneLevel::Measure, 1e-3,
                 EngineKind::SlabPencil));
  b.record(entry({16, 16, 16}, Direction::Inverse, TuneLevel::Estimate, 0.0));
  a.merge(b);
  EXPECT_EQ(2u, a.size());
  const WisdomEntry* got =
      a.lookup({64, 64}, Direction::Forward, "s1c4t2llc8388608");
  ASSERT_NE(nullptr, got);
  EXPECT_EQ(EngineKind::SlabPencil, got->config.engine);
}

TEST(Wisdom, JsonRoundTrip) {
  Wisdom w;
  WisdomEntry e = entry({64, 32, 16}, Direction::Inverse, TuneLevel::Measure,
                        3.25e-3, EngineKind::StageParallel);
  e.config.compute_threads = 6;
  e.config.block_elems = 8192;
  e.config.packet_elems = 2;
  e.config.nontemporal = false;
  w.record(e);
  w.record(entry({128, 128}, Direction::Forward, TuneLevel::Estimate, 0.0));

  const Json doc = w.to_json();
  Wisdom back;
  std::string err;
  int skipped = -1;
  ASSERT_TRUE(back.from_json(doc, &err, &skipped)) << err;
  EXPECT_EQ(0, skipped);
  ASSERT_EQ(2u, back.size());
  const WisdomEntry* got =
      back.lookup({64, 32, 16}, Direction::Inverse, e.fingerprint);
  ASSERT_NE(nullptr, got);
  EXPECT_EQ(EngineKind::StageParallel, got->config.engine);
  EXPECT_EQ(6, got->config.compute_threads);
  EXPECT_EQ(8192, got->config.block_elems);
  EXPECT_EQ(2, got->config.packet_elems);
  EXPECT_FALSE(got->config.nontemporal);
  EXPECT_EQ(3.25e-3, got->seconds);
  EXPECT_EQ(TuneLevel::Measure, got->level);
}

TEST(Wisdom, WrongSchemaFailsWithoutTouchingTheStore) {
  Wisdom w;
  w.record(entry({8, 8}, Direction::Forward, TuneLevel::Estimate, 0.0));
  Json doc = Json::object();
  doc.set("schema", "not-wisdom");
  doc.set("entries", Json::array());
  std::string err;
  EXPECT_FALSE(w.from_json(doc, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_EQ(1u, w.size());
  EXPECT_FALSE(w.from_json(Json(), &err));
}

TEST(Wisdom, MalformedEntriesAreSkippedIndividually) {
  Wisdom good;
  good.record(entry({64, 64}, Direction::Forward, TuneLevel::Measure, 1e-3));
  const Json good_doc = good.to_json();
  const Json* good_entries = good_doc.find("entries");
  ASSERT_NE(nullptr, good_entries);
  ASSERT_EQ(1u, good_entries->size());
  const Json good_entry = (*good_entries)[0];

  // One valid entry plus damage: a non-object, an entry with bad dims,
  // an entry whose engine is "auto" (never valid wisdom).
  Json broken_dims = Json::object();
  broken_dims.set("dims", Json::array());
  Json auto_engine = good_entry;
  auto_engine.set("engine", "auto");
  Json entries = Json::array();
  entries.push_back(good_entry);
  entries.push_back(Json("not an object"));
  entries.push_back(std::move(broken_dims));
  entries.push_back(std::move(auto_engine));
  Json doc = Json::object();
  doc.set("schema", kWisdomSchemaName);
  doc.set("entries", std::move(entries));

  Wisdom w;
  std::string err;
  int skipped = 0;
  ASSERT_TRUE(w.from_json(doc, &err, &skipped)) << err;
  EXPECT_EQ(3, skipped);
  EXPECT_EQ(1u, w.size());
}

TEST(Wisdom, FileRoundTripAndCorruptFileTolerance) {
  const std::string path = temp_path("wisdom_roundtrip.json");
  Wisdom w;
  w.record(entry({64, 64, 64}, Direction::Forward, TuneLevel::Exhaustive,
                 4e-3));
  std::string err;
  ASSERT_TRUE(w.save_file(path, &err)) << err;

  Wisdom back;
  int skipped = -1;
  ASSERT_TRUE(back.load_file(path, &err, &skipped)) << err;
  EXPECT_EQ(0, skipped);
  ASSERT_EQ(1u, back.size());
  const WisdomEntry* got =
      back.lookup({64, 64, 64}, Direction::Forward, "s1c4t2llc8388608");
  ASSERT_NE(nullptr, got);
  EXPECT_EQ(TuneLevel::Exhaustive, got->level);

  // Missing file: diagnostic, no throw, store untouched.
  EXPECT_FALSE(back.load_file(temp_path("does_not_exist.json"), &err));
  EXPECT_EQ(1u, back.size());

  // Corrupt file: same.
  const std::string bad = temp_path("wisdom_corrupt.json");
  std::FILE* f = std::fopen(bad.c_str(), "wb");
  ASSERT_NE(nullptr, f);
  std::fputs("{\"schema\": \"bwfft-wisdom-v1\", \"entries\": [truncated", f);
  std::fclose(f);
  EXPECT_FALSE(back.load_file(bad, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_EQ(1u, back.size());
}

TEST(Wisdom, GlobalStoreRoundTrip) {
  global_wisdom_clear();
  WisdomEntry out;
  EXPECT_FALSE(
      global_wisdom_lookup({48, 48}, Direction::Forward, "gfp", &out));

  WisdomEntry e = entry({48, 48}, Direction::Forward, TuneLevel::Measure,
                        2e-3);
  e.fingerprint = "gfp";
  global_wisdom_record(e);
  ASSERT_TRUE(
      global_wisdom_lookup({48, 48}, Direction::Forward, "gfp", &out));
  EXPECT_EQ(TuneLevel::Measure, out.level);

  Wisdom extra;
  extra.record(entry({24, 24}, Direction::Inverse, TuneLevel::Estimate, 0.0));
  global_wisdom_merge(extra);
  EXPECT_EQ(2u, global_wisdom_snapshot().size());

  global_wisdom_clear();
  EXPECT_EQ(0u, global_wisdom_snapshot().size());
}

}  // namespace
}  // namespace bwfft::tune
