// Tests for the pipeline hazard checker: a clean bill of health for the
// real Table II schedule, and positive detection of every injected hazard
// class — wrong-half compute, reordered store/load, missing and duplicated
// tasks, overlapping and gappy partitions.
#include <gtest/gtest.h>

#include <cstring>

#include "analysis/hazard_checker.h"
#include "common/rng.h"
#include "pipeline/pipeline.h"
#include "test_util.h"

namespace bwfft {
namespace {

using analysis::audit_partition;
using analysis::audit_schedule;
using analysis::HazardChecker;
using analysis::HazardReport;
using analysis::HazardViolation;
using analysis::probe_partition;
using analysis::Trace;
using Kind = DoubleBufferPipeline::TraceEvent::Kind;
using VKind = HazardViolation::Kind;

bool has_violation(const HazardReport& rep, VKind kind) {
  for (const auto& v : rep.violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

/// The pipeline_test copy stage: disjoint per-rank chunks, full coverage.
struct CopyStage {
  cvec src, dst;
  idx_t block;
  PipelineStage stage;

  CopyStage(idx_t total, idx_t block_elems)
      : src(random_cvec(total, 99)),
        dst(static_cast<std::size_t>(total), cplx(0, 0)),
        block(block_elems) {
    stage.iterations = total / block;
    stage.load = [this](idx_t i, cplx* buf, int rank, int parts) {
      auto [b, e] = ThreadTeam::chunk(block, parts, rank);
      std::memcpy(buf + b, src.data() + i * block + b,
                  static_cast<std::size_t>(e - b) * sizeof(cplx));
    };
    stage.compute = [this](idx_t, cplx* buf, int rank, int parts) {
      auto [b, e] = ThreadTeam::chunk(block, parts, rank);
      for (idx_t j = b; j < e; ++j) buf[j] *= 2.0;
    };
    stage.store = [this](idx_t i, const cplx* buf, int rank, int parts) {
      auto [b, e] = ThreadTeam::chunk(block, parts, rank);
      std::memcpy(dst.data() + i * block + b, buf + b,
                  static_cast<std::size_t>(e - b) * sizeof(cplx));
    };
  }
};

/// Emit the exact Table II trace one data and one compute thread produce
/// for `iters` iterations (data tid 1, compute tid 0, matching
/// make_role_plan(2, 1, ...)); tests mutate it to inject hazards.
Trace correct_trace(idx_t iters) {
  Trace t;
  for (idx_t step = 0; step < iters + 2; ++step) {
    if (step >= 2) {
      t.push_back({step, Kind::Store, step - 2, static_cast<int>(step % 2), 1});
    }
    if (step < iters) {
      t.push_back({step, Kind::Load, step, static_cast<int>(step % 2), 1});
    }
    if (step >= 1 && step <= iters) {
      t.push_back(
          {step, Kind::Compute, step - 1, static_cast<int>((step + 1) % 2), 0});
    }
  }
  return t;
}

class CheckerRoles : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CheckerRoles, RealPipelineIsClean) {
  const auto [threads, compute] = GetParam();
  ThreadTeam team(threads);
  RolePlan roles = make_role_plan(threads, compute, host_topology());
  DoubleBufferPipeline pipe(team, roles, 64);
  CopyStage fx(1024, 64);

  HazardChecker checker(pipe);
  const HazardReport rep = checker.check(fx.stage);
  EXPECT_TRUE(rep.clean()) << rep.str();
  EXPECT_GT(rep.events, 0u);
  EXPECT_EQ(rep.iterations, 16);
  // The checked run still processed the data exactly once.
  for (std::size_t j = 0; j < fx.src.size(); ++j) {
    ASSERT_EQ(fx.src[j] * 2.0, fx.dst[j]) << "element " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(RoleSplits, CheckerRoles,
                         ::testing::Values(std::tuple<int, int>{2, 1},
                                           std::tuple<int, int>{4, 2},
                                           std::tuple<int, int>{4, 1},
                                           std::tuple<int, int>{1, 1},
                                           std::tuple<int, int>{3, 3}));

TEST(HazardChecker, CorrectSyntheticTraceIsClean) {
  RolePlan roles = make_role_plan(2, 1, host_topology());
  const HazardReport rep = audit_schedule(correct_trace(6), 6, roles);
  EXPECT_TRUE(rep.clean()) << rep.str();
}

TEST(HazardChecker, FlagsWrongHalfCompute) {
  RolePlan roles = make_role_plan(2, 1, host_topology());
  Trace t = correct_trace(6);
  for (auto& ev : t) {
    if (ev.kind == Kind::Compute && ev.step == 3) ev.half ^= 1;  // wrong half
  }
  const HazardReport rep = audit_schedule(t, 6, roles);
  EXPECT_FALSE(rep.clean());
  // Computing on the half being loaded/stored is the headline hazard.
  EXPECT_TRUE(has_violation(rep, VKind::ComputeOverlap)) << rep.str();
  EXPECT_TRUE(has_violation(rep, VKind::WrongHalf)) << rep.str();
}

TEST(HazardChecker, FlagsStoreLoadReordering) {
  RolePlan roles = make_role_plan(2, 1, host_topology());
  Trace t = correct_trace(6);
  // Swap the store/load pair at step 3: the load now precedes the store
  // that was supposed to retire the half.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].step == 3 && t[i].kind == Kind::Store &&
        t[i + 1].kind == Kind::Load) {
      std::swap(t[i], t[i + 1]);
    }
  }
  const HazardReport rep = audit_schedule(t, 6, roles);
  EXPECT_TRUE(has_violation(rep, VKind::StoreLoadOrder)) << rep.str();
}

TEST(HazardChecker, FlagsMissingAndDuplicateTasks) {
  RolePlan roles = make_role_plan(2, 1, host_topology());
  Trace t = correct_trace(6);
  // Delete the load of iteration 4 and run the compute of iteration 2 twice.
  Trace mutated;
  for (const auto& ev : t) {
    if (ev.kind == Kind::Load && ev.iter == 4) continue;
    mutated.push_back(ev);
    if (ev.kind == Kind::Compute && ev.iter == 2) mutated.push_back(ev);
  }
  const HazardReport rep = audit_schedule(mutated, 6, roles);
  EXPECT_TRUE(has_violation(rep, VKind::MissingTask)) << rep.str();
  EXPECT_TRUE(has_violation(rep, VKind::DuplicateTask)) << rep.str();
}

TEST(HazardChecker, FlagsWrongStepAndRole) {
  RolePlan roles = make_role_plan(2, 1, host_topology());
  Trace t = correct_trace(4);
  // A load claiming iteration != step, and a compute by the data thread.
  t.push_back({2, Kind::Load, 3, 0, 1});
  t.push_back({2, Kind::Compute, 1, 1, 1});
  const HazardReport rep = audit_schedule(t, 4, roles);
  EXPECT_TRUE(has_violation(rep, VKind::WrongStep)) << rep.str();
  EXPECT_TRUE(has_violation(rep, VKind::RoleMismatch)) << rep.str();
  EXPECT_TRUE(has_violation(rep, VKind::DuplicateTask)) << rep.str();
}

TEST(HazardChecker, ProbeRecoversDisjointPartitions) {
  const idx_t block = 96;
  auto task = [block](idx_t, cplx* buf, int rank, int parts) {
    auto [b, e] = ThreadTeam::chunk(block, parts, rank);
    for (idx_t j = b; j < e; ++j) buf[j] = cplx(1.0, -1.0);
  };
  const auto map = probe_partition(task, 0, block, 3);
  HazardReport rep;
  audit_partition(map, /*require_cover=*/true, "load", rep);
  EXPECT_TRUE(rep.clean()) << rep.str();
  // Each element is owned by exactly the rank chunk() assigns it to.
  for (idx_t e = 0; e < block; ++e) {
    ASSERT_EQ(1u, map.writers[static_cast<std::size_t>(e)].size());
  }
}

TEST(HazardChecker, FlagsOverlappingPartitions) {
  const idx_t block = 64;
  // Buggy load: every rank writes the whole block.
  auto task = [block](idx_t, cplx* buf, int, int) {
    for (idx_t j = 0; j < block; ++j) buf[j] = cplx(2.0, 0.0);
  };
  HazardReport rep;
  audit_partition(probe_partition(task, 0, block, 2), true, "load", rep);
  EXPECT_TRUE(has_violation(rep, VKind::PartitionOverlap)) << rep.str();
}

TEST(HazardChecker, FlagsPartitionGap) {
  const idx_t block = 64;
  // Buggy load: everyone only writes the first half of the block.
  auto task = [block](idx_t, cplx* buf, int rank, int parts) {
    auto [b, e] = ThreadTeam::chunk(block / 2, parts, rank);
    for (idx_t j = b; j < e; ++j) buf[j] = cplx(3.0, 0.0);
  };
  HazardReport rep;
  audit_partition(probe_partition(task, 0, block, 2), true, "load", rep);
  EXPECT_TRUE(has_violation(rep, VKind::PartitionGap)) << rep.str();
  // With coverage not required (tail blocks), the same map is acceptable
  // as long as no element has two writers.
  HazardReport lax;
  audit_partition(probe_partition(task, 0, block, 2), false, "load", lax);
  EXPECT_TRUE(lax.clean()) << lax.str();
}

// End-to-end: an injected partition-overlap bug in a real pipeline run is
// caught by check(), and run_checked() turns it into an Error.
TEST(HazardChecker, DetectsInjectedOverlapBugOnRealPipeline) {
#if defined(BWFFT_TSAN) || defined(__SANITIZE_THREAD__)
  // The injected bug makes both data threads memcpy the same bytes — a
  // genuine data race that TSan reports (correctly) before the checker
  // gets to diagnose it. The probe-based detection is still covered under
  // TSan by FlagsOverlappingPartitions, which never races.
  GTEST_SKIP() << "fault-injection test races by design; skipped under TSan";
#endif
  ThreadTeam team(4);
  RolePlan roles = make_role_plan(4, 2, host_topology());
  DoubleBufferPipeline pipe(team, roles, 64);
  CopyStage fx(512, 64);
  // Break the load: every data thread writes the whole block, ignoring its
  // rank — exactly the "thread writes outside its declared partition" bug.
  fx.stage.load = [&fx](idx_t i, cplx* buf, int, int) {
    std::memcpy(buf, fx.src.data() + i * fx.block,
                static_cast<std::size_t>(fx.block) * sizeof(cplx));
  };
  HazardChecker checker(pipe);
  const HazardReport rep = checker.check(fx.stage);
  EXPECT_FALSE(rep.clean());
  EXPECT_TRUE(has_violation(rep, VKind::PartitionOverlap)) << rep.str();
  EXPECT_THROW(checker.run_checked(fx.stage), Error);
}

TEST(HazardChecker, ReportRendersContext) {
  RolePlan roles = make_role_plan(2, 1, host_topology());
  Trace t = correct_trace(4);
  for (auto& ev : t) {
    if (ev.kind == Kind::Compute && ev.step == 2) ev.half ^= 1;
  }
  const HazardReport rep = audit_schedule(t, 4, roles);
  ASSERT_FALSE(rep.clean());
  const std::string s = rep.str();
  EXPECT_NE(s.find("step 2"), std::string::npos) << s;
  EXPECT_NE(s.find("compute-overlap"), std::string::npos) << s;
}

}  // namespace
}  // namespace bwfft
