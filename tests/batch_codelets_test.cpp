// Tests for the batched split-format codelets (kernels/batch.h): every
// size 2..16 under every compiled-in ISA variant, both directions, unit
// and non-unit row strides, full-vector and tail lane counts, twiddled
// and plain, in-place and out-of-place — all against a naive
// root_of_unity reference DFT. Plus the runtime dispatch machinery
// (override / env clamping, obs counters) and the nt_copy cascade.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/aligned.h"
#include "common/rng.h"
#include "kernels/batch.h"
#include "kernels/codelets.h"
#include "kernels/isa.h"
#include "kernels/twiddle.h"
#include "kernels/vecops.h"
#include "layout/stream_copy.h"
#include "obs/obs.h"
#include "test_util.h"

namespace bwfft {
namespace {

using kernels::Isa;

/// Naive ABI reference: out[k*os + l] = sum_j w_n^{jk} in[j*is + l],
/// then rows k >= 1 scaled by tw[k-1] when tw is given.
void reference_batch(const cplx* in, idx_t is, cplx* out, idx_t os, idx_t n,
                     idx_t lanes, const cplx* tw, Direction dir) {
  for (idx_t l = 0; l < lanes; ++l) {
    for (idx_t k = 0; k < n; ++k) {
      cplx acc(0.0, 0.0);
      for (idx_t j = 0; j < n; ++j) {
        acc += root_of_unity(n, (j * k) % n, dir) * in[j * is + l];
      }
      if (tw != nullptr && k >= 1) acc *= tw[k - 1];
      out[k * os + l] = acc;
    }
  }
}

std::vector<Isa> compiled_isas() {
  std::vector<Isa> out = {Isa::Scalar};
  if (kernels::isa_available(Isa::Avx2) &&
      kernels::detail::avx2_table() != nullptr) {
    out.push_back(Isa::Avx2);
  }
  if (kernels::isa_available(Isa::Avx512) &&
      kernels::detail::avx512_table() != nullptr) {
    out.push_back(Isa::Avx512);
  }
  return out;
}

/// Max |a-b| over the written rows only (holes between strided rows are
/// checked separately).
double run_and_compare(kernels::BatchFn fn, idx_t n, idx_t is, idx_t os,
                      idx_t lanes, const cplx* tw, Direction dir,
                      unsigned seed) {
  auto in = random_cvec(n * is, seed);
  cvec got(static_cast<std::size_t>(n * os), cplx(-7.0, -7.0));
  cvec want = got;
  fn(in.data(), is, got.data(), os, lanes, tw, dir);
  reference_batch(in.data(), is, want.data(), os, n, lanes, tw, dir);
  double worst = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    worst = std::max(worst, std::abs(want[i] - got[i]));
  }
  return worst;
}

class BatchCodelets : public ::testing::TestWithParam<Isa> {
 protected:
  void SetUp() override {
    if (std::find(compiled_isas().begin(), compiled_isas().end(), GetParam()) ==
        compiled_isas().end()) {
      GTEST_SKIP() << "ISA not available on this host/build";
    }
  }
};

TEST_P(BatchCodelets, AllSizesUnitStride) {
  const auto& bt = kernels::batch_table(GetParam());
  for (idx_t n = 2; n <= codelets::kMaxCodelet; ++n) {
    ASSERT_NE(nullptr, bt.fn[n]) << "n=" << n;
    for (Direction dir : {Direction::Forward, Direction::Inverse}) {
      // Lane counts straddling both SIMD widths: scalar tail only, one
      // full AVX2 vector, AVX2 + tail, one full AVX-512 vector, and a
      // mixed 8+4+tail count.
      for (idx_t lanes : {idx_t{1}, idx_t{3}, idx_t{4}, idx_t{5}, idx_t{8},
                          idx_t{13}}) {
        EXPECT_LT(run_and_compare(bt.fn[n], n, lanes, lanes, lanes, nullptr,
                                  dir, static_cast<unsigned>(1000 + 17 * n +
                                                             lanes)),
                  1e-12)
            << "n=" << n << " lanes=" << lanes << " dir="
            << (dir == Direction::Forward ? "fwd" : "inv");
      }
    }
  }
}

TEST_P(BatchCodelets, NonUnitRowStrides) {
  // Satellite 3: every codelet at is != os, both > lanes, both
  // directions. Holes between rows must stay untouched.
  const auto& bt = kernels::batch_table(GetParam());
  const idx_t lanes = 5;
  const idx_t is = lanes + 3, os = lanes + 2;
  for (idx_t n = 2; n <= codelets::kMaxCodelet; ++n) {
    for (Direction dir : {Direction::Forward, Direction::Inverse}) {
      auto in = random_cvec(n * is, static_cast<unsigned>(2000 + n));
      cvec got(static_cast<std::size_t>(n * os), cplx(-7.0, -7.0));
      cvec want = got;
      bt.fn[n](in.data(), is, got.data(), os, lanes, nullptr, dir);
      reference_batch(in.data(), is, want.data(), os, n, lanes, nullptr, dir);
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_LT(std::abs(want[i] - got[i]), 1e-12)
            << "n=" << n << " i=" << i;
      }
      // Hole check: elements past `lanes` in each row keep the sentinel.
      for (idx_t k = 0; k < n; ++k) {
        for (idx_t l = lanes; l < os; ++l) {
          EXPECT_EQ(cplx(-7.0, -7.0), got[static_cast<std::size_t>(k * os + l)])
              << "n=" << n << " row=" << k << " hole=" << l;
        }
      }
    }
  }
}

TEST_P(BatchCodelets, TwiddledRows) {
  // tw scaling is the DIF Stockham step: rows k >= 1 multiplied by
  // tw[k-1]. Use genuine level twiddles so the values are representative.
  const auto& bt = kernels::batch_table(GetParam());
  const idx_t lanes = 9;
  for (idx_t n : {idx_t{2}, idx_t{3}, idx_t{4}, idx_t{5}, idx_t{7}, idx_t{8},
                  idx_t{16}}) {
    for (Direction dir : {Direction::Forward, Direction::Inverse}) {
      cvec tw(static_cast<std::size_t>(n - 1));
      for (idx_t k = 1; k < n; ++k) {
        tw[static_cast<std::size_t>(k - 1)] =
            root_of_unity(4 * n, 3 * k % (4 * n), dir);
      }
      EXPECT_LT(run_and_compare(bt.fn[n], n, lanes, lanes, lanes, tw.data(),
                                dir, static_cast<unsigned>(3000 + n)),
                1e-12)
          << "n=" << n;
    }
  }
}

TEST_P(BatchCodelets, InPlaceWhenStridesMatch) {
  // The ABI allows out == in iff is == os.
  const auto& bt = kernels::batch_table(GetParam());
  const idx_t lanes = 11;
  for (idx_t n = 2; n <= codelets::kMaxCodelet; ++n) {
    for (Direction dir : {Direction::Forward, Direction::Inverse}) {
      auto x = random_cvec(n * lanes, static_cast<unsigned>(4000 + n));
      cvec want(x.size());
      reference_batch(x.data(), lanes, want.data(), lanes, n, lanes, nullptr,
                      dir);
      bt.fn[n](x.data(), lanes, x.data(), lanes, lanes, nullptr, dir);
      EXPECT_LT(test::max_err(want, x), 1e-12) << "n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, BatchCodelets,
                         ::testing::Values(Isa::Scalar, Isa::Avx2,
                                           Isa::Avx512),
                         [](const auto& info) {
                           return kernels::isa_name(info.param);
                         });

TEST(BatchDispatch, LookupNeverNullInRange) {
  for (Isa isa : compiled_isas()) {
    for (idx_t n = 2; n <= codelets::kMaxCodelet; ++n) {
      EXPECT_NE(nullptr, kernels::batch_lookup(n, isa))
          << kernels::isa_name(isa) << " n=" << n;
    }
  }
  EXPECT_NE(nullptr, kernels::batch_lookup(16, Isa::Auto));
}

TEST(BatchDispatch, OverrideClampsAndForcedScalarWins) {
  // Requesting wider than the host clamps down; force_scalar beats all.
  kernels::set_isa_override(Isa::Avx512);
  const Isa clamped = kernels::active_isa();
  EXPECT_TRUE(kernels::isa_available(clamped));
  kernels::set_isa_override(Isa::Auto);

  set_force_scalar(true);
  EXPECT_EQ(Isa::Scalar, kernels::active_isa());
  EXPECT_EQ(Isa::Scalar, kernels::resolve_isa(Isa::Avx512));
  set_force_scalar(false);
}

TEST(BatchDispatch, DispatchBumpsPerIsaCounter) {
#if !defined(BWFFT_OBS)
  GTEST_SKIP() << "observability disabled";
#else
  kernels::set_isa_override(Isa::Scalar);
  obs::reset_counters();
  (void)kernels::dispatch_batch_table(Isa::Auto);
  (void)kernels::dispatch_batch_table(Isa::Auto);
  EXPECT_EQ(2u, obs::counter_total(obs::Counter::BatchScalar));
  kernels::set_isa_override(Isa::Auto);
#endif
}

TEST(BatchDispatch, ReportNamesActiveIsa) {
  const std::string report = kernels::dispatch_report();
  EXPECT_NE(std::string::npos, report.find("active"));
  EXPECT_NE(std::string::npos,
            report.find(kernels::isa_name(kernels::active_isa())));
}

TEST(NtCopy, CopiesExactlyAtEveryCountAndIsa) {
  // Odd counts, sub-vector counts, and a large buffer; 64-byte-aligned
  // src/dst (the allocator's guarantee at call sites).
  for (Isa isa : compiled_isas()) {
    for (idx_t count : {idx_t{1}, idx_t{2}, idx_t{3}, idx_t{4}, idx_t{7},
                        idx_t{8}, idx_t{64}, idx_t{1000}, idx_t{1001}}) {
      cvec src(static_cast<std::size_t>(count));
      cvec dst(static_cast<std::size_t>(count), cplx(9.0, 9.0));
      for (idx_t i = 0; i < count; ++i) {
        src[static_cast<std::size_t>(i)] =
            cplx(static_cast<double>(i), -static_cast<double>(i));
      }
      const idx_t nt = kernels::nt_copy(dst.data(), src.data(), count, isa);
      ASSERT_GE(nt, 0) << kernels::isa_name(isa) << " count=" << count;
      // Whole-32-byte-equivalent accounting: count complex = count*16 B.
      EXPECT_EQ(count * 16 / 32, nt);
      stream_fence();
      EXPECT_EQ(0, std::memcmp(dst.data(), src.data(),
                               static_cast<std::size_t>(count) * sizeof(cplx)));
    }
  }
}

TEST(NtCopy, MisalignedDestinationDeclines) {
  cvec buf(16);
  cvec src(4);
  // Offset by 8 bytes: no 16-byte-aligned streaming store can hit it.
  cplx* dst = reinterpret_cast<cplx*>(reinterpret_cast<double*>(buf.data()) + 1);
  EXPECT_EQ(-1, kernels::nt_copy(dst, src.data(), 4));
}

}  // namespace
}  // namespace bwfft
