// Tests for the dual-socket 3D engine: correctness against the reference,
// the Fig 8 data-flow properties (stage-1 locality, cross-link traffic
// bounds) and degradation to the single-socket algorithm at sk = 1.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fft/dual_socket.h"
#include "fft/reference.h"
#include "test_util.h"

namespace bwfft {
namespace {

using test::fft_tol;
using test::max_err;

FftOptions ds_opts(int threads) {
  FftOptions o;
  o.threads = threads;
  o.block_elems = 256;
  return o;
}

class DualSocketCases
    : public ::testing::TestWithParam<std::tuple<idx_t, idx_t, idx_t, int>> {};

TEST_P(DualSocketCases, MatchesReference) {
  const auto [k, n, m, threads] = GetParam();
  const idx_t total = k * n * m;
  auto x = random_cvec(total, 4000 + total);
  cvec want(x.size());
  reference_dft_3d(x.data(), want.data(), k, n, m, Direction::Forward);

  DualSocketFft3d plan(k, n, m, Direction::Forward, ds_opts(threads), 2);
  cvec in = x, got(x.size());
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(total)))
      << k << "x" << n << "x" << m << " threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DualSocketCases,
    ::testing::ValuesIn(std::vector<std::tuple<idx_t, idx_t, idx_t, int>>{
        {4, 4, 8, 2},
        {4, 4, 8, 4},
        {8, 4, 16, 4},
        {2, 2, 4, 2},
        {16, 8, 8, 8},
        {4, 8, 4, 6}}));

TEST(DualSocket, SingleSocketDegenerate) {
  const idx_t k = 4, n = 4, m = 8;
  auto x = random_cvec(k * n * m, 5000);
  cvec want(x.size());
  reference_dft_3d(x.data(), want.data(), k, n, m, Direction::Forward);
  DualSocketFft3d plan(k, n, m, Direction::Forward, ds_opts(2), 1);
  cvec in = x, got(x.size());
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(k * n * m)));
  EXPECT_EQ(0u, plan.traffic().write_bytes());  // sk=1: nothing crosses
}

TEST(DualSocket, InverseRoundTrip) {
  const idx_t k = 8, n = 4, m = 8;
  auto x = random_cvec(k * n * m, 5001);
  auto fwd_opts = ds_opts(4);
  auto inv_opts = ds_opts(4);
  inv_opts.normalize_inverse = true;
  DualSocketFft3d fwd(k, n, m, Direction::Forward, fwd_opts, 2);
  DualSocketFft3d inv(k, n, m, Direction::Inverse, inv_opts, 2);
  cvec a = x, b(x.size()), c(x.size());
  fwd.execute(a.data(), b.data());
  inv.execute(b.data(), c.data());
  EXPECT_LT(max_err(x, c), fft_tol(static_cast<double>(k * n * m)));
}

TEST(DualSocket, DistributedApiMatchesContiguous) {
  const idx_t k = 4, n = 4, m = 8, total = k * n * m;
  auto x = random_cvec(total, 5002);
  DualSocketFft3d plan(k, n, m, Direction::Forward, ds_opts(2), 2);

  cvec in = x, got_c(x.size());
  plan.execute(in.data(), got_c.data());

  NumaArray xa(2, total / 2), ya(2, total / 2);
  xa.from_contiguous(x);
  plan.execute_distributed(xa, ya);
  auto got_d = ya.to_contiguous();
  EXPECT_LT(max_err(got_c, got_d), 1e-15);
}

// Fig 8: stage 2 and 3 each write at most half the data set across the
// link for sk=2 (only the packets owned by the other socket cross), so
// total cross traffic <= 2 * N/2 elements.
TEST(DualSocket, CrossLinkTrafficIsBounded) {
  const idx_t k = 8, n = 8, m = 8, total = k * n * m;
  auto x = random_cvec(total, 5003);
  DualSocketFft3d plan(k, n, m, Direction::Forward, ds_opts(4), 2);
  cvec in = x, out(x.size());
  plan.execute(in.data(), out.data());
  const std::size_t bytes = plan.traffic().write_bytes();
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(bytes, static_cast<std::size_t>(total) * sizeof(cplx));
  // Exactly half of each of the two exchange stages crosses for sk=2:
  // 2 stages * N/2 elements = N elements.
}

TEST(DualSocket, PacketAndStoreVariantsAgree) {
  const idx_t k = 8, n = 8, m = 8, total = k * n * m;
  auto x = random_cvec(total, 5004);
  DualSocketFft3d base(k, n, m, Direction::Forward, ds_opts(4), 2);
  cvec in = x, want(x.size());
  base.execute(in.data(), want.data());

  for (idx_t mu : {idx_t{1}, idx_t{2}}) {
    FftOptions o = ds_opts(4);
    o.packet_elems = mu;
    DualSocketFft3d plan(k, n, m, Direction::Forward, o, 2);
    cvec in2 = x, got(x.size());
    plan.execute(in2.data(), got.data());
    EXPECT_LT(max_err(want, got), 1e-12) << "mu=" << mu;
  }
  {
    FftOptions o = ds_opts(4);
    o.nontemporal = false;
    DualSocketFft3d plan(k, n, m, Direction::Forward, o, 2);
    cvec in2 = x, got(x.size());
    plan.execute(in2.data(), got.data());
    EXPECT_LT(max_err(want, got), 1e-12) << "temporal";
  }
}

TEST(DualSocket, FourSockets) {
  const idx_t k = 8, n = 8, m = 8;
  auto x = random_cvec(k * n * m, 5005);
  cvec want(x.size());
  reference_dft_3d(x.data(), want.data(), k, n, m, Direction::Forward);
  DualSocketFft3d plan(k, n, m, Direction::Forward, ds_opts(4), 4);
  cvec in = x, got(x.size());
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_err(want, got), fft_tol(512.0));
  // sk=4: each exchange stage keeps 1/4 local => 2 * (3/4) N crosses.
  EXPECT_EQ(static_cast<std::size_t>(2 * (k * n * m) * 3 / 4) * sizeof(cplx),
            plan.traffic().write_bytes());
}

TEST(DualSocket, RejectsIndivisibleShapes) {
  EXPECT_THROW(DualSocketFft3d(3, 4, 4, Direction::Forward, ds_opts(2), 2),
               Error);
  EXPECT_THROW(DualSocketFft3d(4, 3, 4, Direction::Forward, ds_opts(2), 2),
               Error);
}

}  // namespace
}  // namespace bwfft
