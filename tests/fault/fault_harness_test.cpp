// Tests for the fault-injection harness itself: the BWFFT_FAULTS spec
// grammar, the skip/count/ctx/value firing semantics, the aggregate
// robustness tallies, and the typed error layer the harness reports
// through (ErrorCode / Status / Error).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"
#include "fault/fault.h"
#include "obs/obs.h"

namespace bwfft::fault {
namespace {

/// Every test starts and ends with no plan installed and zeroed tallies,
/// so tests cannot leak injected faults into each other.
class FaultHarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clear();
    reset_stats();
  }
  void TearDown() override {
    clear();
    reset_stats();
  }
  void arm(const std::string& spec) {
    std::string err;
    ASSERT_TRUE(set_plan_from_spec(spec, &err)) << err;
  }
};

TEST_F(FaultHarnessTest, ParseAcceptsTheFullGrammar) {
  FaultPlan plan;
  std::string err;
  ASSERT_TRUE(plan.parse("alloc.huge", &err)) << err;
  ASSERT_EQ(1u, plan.specs.size());
  EXPECT_EQ("alloc.huge", plan.specs[0].site);
  EXPECT_EQ(-1, plan.specs[0].ctx);
  EXPECT_EQ(0, plan.specs[0].skip);
  EXPECT_EQ(1, plan.specs[0].count);
  EXPECT_EQ(0, plan.specs[0].value);

  ASSERT_TRUE(plan.parse("pipeline.stall/3@2:5=500", &err)) << err;
  ASSERT_EQ(1u, plan.specs.size());
  EXPECT_EQ("pipeline.stall", plan.specs[0].site);
  EXPECT_EQ(3, plan.specs[0].ctx);
  EXPECT_EQ(2, plan.specs[0].skip);
  EXPECT_EQ(5, plan.specs[0].count);
  EXPECT_EQ(500, plan.specs[0].value);

  ASSERT_TRUE(plan.parse("pin:*;wisdom.torn;alloc.numa:2", &err)) << err;
  ASSERT_EQ(3u, plan.specs.size());
  EXPECT_EQ(-1, plan.specs[0].count);  // ':*' = every hit
  EXPECT_EQ("wisdom.torn", plan.specs[1].site);
  EXPECT_EQ(2, plan.specs[2].count);

  // Empty segments are tolerated; an empty plan parses to no specs.
  ASSERT_TRUE(plan.parse("pin;;spawn.thread;", &err)) << err;
  EXPECT_EQ(2u, plan.specs.size());
  ASSERT_TRUE(plan.parse("", &err)) << err;
  EXPECT_TRUE(plan.empty());
}

TEST_F(FaultHarnessTest, ParseRejectsMalformedSpecs) {
  FaultPlan plan;
  std::string err;
  EXPECT_FALSE(plan.parse(":3", &err));  // no site name
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(plan.parse("pin/abc", &err));    // non-numeric ctx
  EXPECT_FALSE(plan.parse("pin/-1", &err));     // negative ctx
  EXPECT_FALSE(plan.parse("pin@x", &err));      // non-numeric skip
  EXPECT_FALSE(plan.parse("pin:0", &err));      // count must be >= 1
  EXPECT_FALSE(plan.parse("pin:", &err));       // empty count
  EXPECT_FALSE(plan.parse("pin=zz", &err));     // non-numeric value
  EXPECT_FALSE(plan.parse("pin;bad site", &err));  // space in site
  // One malformed spec fails the whole parse (no partial installs).
  EXPECT_FALSE(plan.parse("alloc.huge;pin:", &err));
}

TEST_F(FaultHarnessTest, DefaultSpecFiresExactlyOnce) {
  arm("spawn.thread");
  EXPECT_TRUE(active());
  EXPECT_TRUE(should_fire(kSiteSpawnThread));
  EXPECT_FALSE(should_fire(kSiteSpawnThread));
  EXPECT_FALSE(should_fire(kSiteSpawnThread));
  EXPECT_EQ(1u, fired_count(kSiteSpawnThread));
  EXPECT_EQ(1u, injected_count());
  // Other sites are unaffected.
  EXPECT_FALSE(should_fire(kSitePin));
  EXPECT_EQ(0u, fired_count(kSitePin));
}

TEST_F(FaultHarnessTest, SkipAndCountSelectAHitWindow) {
  arm("alloc.huge@2:2");
  EXPECT_FALSE(should_fire(kSiteAllocHuge));  // hit 1: skipped
  EXPECT_FALSE(should_fire(kSiteAllocHuge));  // hit 2: skipped
  EXPECT_TRUE(should_fire(kSiteAllocHuge));   // hit 3: fires
  EXPECT_TRUE(should_fire(kSiteAllocHuge));   // hit 4: fires
  EXPECT_FALSE(should_fire(kSiteAllocHuge));  // hit 5: window over
  EXPECT_EQ(2u, fired_count(kSiteAllocHuge));
}

TEST_F(FaultHarnessTest, StarCountFiresForever) {
  arm("pin:*");
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(should_fire(kSitePin));
  EXPECT_EQ(100u, fired_count(kSitePin));
  EXPECT_EQ(100u, injected_count());
}

TEST_F(FaultHarnessTest, CtxFiltersWhichHitsMatch) {
  arm("pipeline.stall/3:*");
  EXPECT_FALSE(should_fire(kSitePipelineStall, 0));
  EXPECT_FALSE(should_fire(kSitePipelineStall, 2));
  EXPECT_TRUE(should_fire(kSitePipelineStall, 3));
  EXPECT_TRUE(should_fire(kSitePipelineStall, 3));
  EXPECT_FALSE(should_fire(kSitePipelineStall, 4));
  // A ctx-less probe (-1) does not match a ctx-filtered spec.
  EXPECT_FALSE(should_fire(kSitePipelineStall));
}

TEST_F(FaultHarnessTest, ValuePayloadIsDeliveredOnFire) {
  arm("barrier.stall=750");
  std::int64_t v = -1;
  EXPECT_TRUE(should_fire_value(kSiteBarrierStall, -1, &v));
  EXPECT_EQ(750, v);
  v = -1;
  EXPECT_FALSE(should_fire_value(kSiteBarrierStall, -1, &v));
  EXPECT_EQ(-1, v);  // untouched when not firing
}

TEST_F(FaultHarnessTest, SiteArmedSeesSpecsThatHaveNotFired) {
  EXPECT_FALSE(site_armed(kSiteBarrierStall));
  arm("barrier.stall@1000");
  EXPECT_TRUE(site_armed(kSiteBarrierStall));
  EXPECT_FALSE(site_armed(kSitePin));
  clear();
  EXPECT_FALSE(site_armed(kSiteBarrierStall));
  EXPECT_FALSE(active());
}

TEST_F(FaultHarnessTest, InstallingAPlanResetsSiteCounters) {
  arm("pin");
  EXPECT_TRUE(should_fire(kSitePin));
  EXPECT_EQ(1u, fired_count(kSitePin));
  arm("pin");  // re-install: hit/fire counters start over
  EXPECT_EQ(0u, fired_count(kSitePin));
  EXPECT_TRUE(should_fire(kSitePin));
}

TEST_F(FaultHarnessTest, TalliesAndNotesAccumulateAndReset) {
  arm("pin:*");
  (void)should_fire(kSitePin);
  note_retry();
  note_retry();
  note_degrade("huge-page allocation unavailable; using plain memory");
  note_degrade("huge-page allocation unavailable; using plain memory");
  note_degrade("affinity pin rejected; thread runs unpinned");
  EXPECT_EQ(1u, injected_count());
  EXPECT_EQ(2u, retried_count());
  EXPECT_EQ(3u, degraded_count());
  // Notes deduplicate; tallies do not.
  EXPECT_EQ(2u, degrade_notes().size());

  const std::string rep = report();
  EXPECT_NE(std::string::npos, rep.find("fault pin: fired 1 of 1 hits"));
  EXPECT_NE(std::string::npos, rep.find("degraded: affinity pin rejected"));

  reset_stats();
  EXPECT_EQ(0u, injected_count());
  EXPECT_EQ(0u, retried_count());
  EXPECT_EQ(0u, degraded_count());
  EXPECT_TRUE(degrade_notes().empty());
  // The plan and its per-site counters survive a stats reset.
  EXPECT_TRUE(active());
  EXPECT_EQ(1u, fired_count(kSitePin));
}

TEST_F(FaultHarnessTest, ObsCountersMirrorTheFaultTallies) {
  obs::reset_counters();
  arm("pin:*");
  (void)should_fire(kSitePin);
  (void)should_fire(kSitePin);
  note_retry();
  note_degrade("mirror test degradation");
  const obs::CounterSnapshot snap = obs::counters();
  EXPECT_EQ(2u, snap[obs::Counter::FaultInjected]);
  EXPECT_EQ(1u, snap[obs::Counter::FaultRetry]);
  EXPECT_EQ(1u, snap[obs::Counter::FaultDegrade]);
  EXPECT_STREQ("fault_injected",
               obs::counter_name(obs::Counter::FaultInjected));
  EXPECT_STREQ("fault_retry", obs::counter_name(obs::Counter::FaultRetry));
  EXPECT_STREQ("fault_degrade",
               obs::counter_name(obs::Counter::FaultDegrade));
  // reset_counters also zeroes the fault tallies.
  obs::reset_counters();
  EXPECT_EQ(0u, injected_count());
  EXPECT_EQ(0u, obs::counters()[obs::Counter::FaultInjected]);
}

TEST_F(FaultHarnessTest, InactiveHarnessNeverFires) {
  EXPECT_FALSE(active());
  EXPECT_FALSE(should_fire(kSiteAllocAligned));
  EXPECT_FALSE(should_fire(kSiteAllocHuge));
  EXPECT_EQ(0u, injected_count());
}

// ---------------------------------------------------------------------------
// Typed error layer

TEST(ErrorLayer, ErrorCarriesItsCode) {
  const Error plain("old-style message");
  EXPECT_EQ(ErrorCode::kBadPlan, plain.code());  // legacy default
  const Error stall(ErrorCode::kStall, "worker never arrived");
  EXPECT_EQ(ErrorCode::kStall, stall.code());
  EXPECT_STREQ("worker never arrived", stall.what());
}

TEST(ErrorLayer, CheckThrowsBadPlanAssertThrowsInternal) {
  try {
    BWFFT_CHECK(false, "configuration rejected");
    FAIL() << "BWFFT_CHECK did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(ErrorCode::kBadPlan, e.code());
  }
  try {
    BWFFT_ASSERT(1 + 1 == 3);
    FAIL() << "BWFFT_ASSERT did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(ErrorCode::kInternal, e.code());
  }
}

TEST(ErrorLayer, StatusFormatsCodeAndMessage) {
  const Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ErrorCode::kOk, ok.code());
  EXPECT_EQ("ok", ok.str());

  const Status st(ErrorCode::kStall, "2 of 4 parties arrived");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(ErrorCode::kStall, st.code());
  EXPECT_EQ("stall: 2 of 4 parties arrived", st.str());

  EXPECT_STREQ("alloc-failed", error_code_name(ErrorCode::kAllocFailed));
  EXPECT_STREQ("worker-lost", error_code_name(ErrorCode::kWorkerLost));
  EXPECT_STREQ("wisdom-corrupt",
               error_code_name(ErrorCode::kWisdomCorrupt));
  EXPECT_STREQ("affinity-unavailable",
               error_code_name(ErrorCode::kAffinityUnavailable));
}

}  // namespace
}  // namespace bwfft::fault
