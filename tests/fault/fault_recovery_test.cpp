// End-to-end recovery tests: every fault family the harness can inject —
// allocation failure, pin rejection, spawn failure, barrier/pipeline
// stalls, wisdom corruption — must degrade to a correct result (bit-exact
// where the recovery does not change the algorithm) and report through
// the Status / ExecReport layer, never crash or deadlock.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/aligned.h"
#include "common/error.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "fft/dual_socket.h"
#include "fft/fft.h"
#include "fft/reference.h"
#include "parallel/barrier.h"
#include "parallel/team.h"
#include "tune/wisdom.h"

namespace bwfft {
namespace {

class FaultRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::clear();
    fault::reset_stats();
  }
  void TearDown() override {
    fault::clear();
    fault::reset_stats();
  }
  void arm(const std::string& spec) {
    std::string err;
    ASSERT_TRUE(fault::set_plan_from_spec(spec, &err)) << err;
  }
};

FftOptions engine_opts(EngineKind engine, int threads = 4) {
  FftOptions o;
  o.engine = engine;
  o.threads = threads;
  o.block_elems = 512;  // small buffer => several pipeline iterations
  return o;
}

/// Transform `input` with a fresh plan and return the output. Asserts
/// the no-throw path succeeds.
cvec run3d(idx_t k, idx_t n, idx_t m, const FftOptions& opts,
           ExecReport* rep = nullptr) {
  Fft3d plan(k, n, m, Direction::Forward, opts);
  cvec in = random_cvec(k * n * m);
  cvec out(in.size());
  const Status st = plan.try_execute(in.data(), out.data(), rep);
  EXPECT_TRUE(st.ok()) << st.str();
  return out;
}

cvec run2d(idx_t n, idx_t m, const FftOptions& opts) {
  Fft2d plan(n, m, Direction::Forward, opts);
  cvec in = random_cvec(n * m);
  cvec out(in.size());
  const Status st = plan.try_execute(in.data(), out.data());
  EXPECT_TRUE(st.ok()) << st.str();
  return out;
}

/// Bit-exact equality: degradations that only change *where* buffers live
/// or *how many* threads partition per-row work must not change a single
/// bit of the result.
void expect_identical(const cvec& a, const cvec& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)));
}

// ---------------------------------------------------------------------------
// Allocation-failure fallback at every engine's buffer setup

TEST_F(FaultRecoveryTest, PlacedAllocatorFallsBackToPlain) {
  arm("alloc.huge:*;alloc.numa:*");
  AllocPlacement got = AllocPlacement::HugePage;
  void* p = aligned_alloc_placed(1 << 20, AllocPlacement::HugePage, &got);
  ASSERT_NE(nullptr, p);
  EXPECT_EQ(AllocPlacement::Plain, got);
  aligned_free_placed(p);
  p = aligned_alloc_placed(1 << 20, AllocPlacement::NumaLocal, &got);
  ASSERT_NE(nullptr, p);
  EXPECT_EQ(AllocPlacement::Plain, got);
  aligned_free_placed(p);
  EXPECT_EQ(2u, fault::injected_count());
  EXPECT_GE(fault::degraded_count(), 2u);
}

TEST_F(FaultRecoveryTest, DoubleBuffer3dSurvivesHugePageFailureBitExact) {
  const cvec want = run3d(16, 16, 16, engine_opts(EngineKind::DoubleBuffer));
  arm("alloc.huge:*");
  const cvec got = run3d(16, 16, 16, engine_opts(EngineKind::DoubleBuffer));
  expect_identical(want, got);
  EXPECT_GE(fault::fired_count(fault::kSiteAllocHuge), 1u);
  EXPECT_GE(fault::degraded_count(), 1u);
}

TEST_F(FaultRecoveryTest, DoubleBuffer2dSurvivesHugePageFailureBitExact) {
  const cvec want = run2d(32, 32, engine_opts(EngineKind::DoubleBuffer));
  arm("alloc.huge:*");
  const cvec got = run2d(32, 32, engine_opts(EngineKind::DoubleBuffer));
  expect_identical(want, got);
  EXPECT_GE(fault::fired_count(fault::kSiteAllocHuge), 1u);
}

TEST_F(FaultRecoveryTest, StageParallel2dSurvivesHugePageFailureBitExact) {
  const cvec want = run2d(32, 32, engine_opts(EngineKind::StageParallel));
  arm("alloc.huge:*");
  const cvec got = run2d(32, 32, engine_opts(EngineKind::StageParallel));
  expect_identical(want, got);
  EXPECT_GE(fault::fired_count(fault::kSiteAllocHuge), 1u);
}

TEST_F(FaultRecoveryTest, SlabPencil3dSurvivesHugePageFailureBitExact) {
  const cvec want = run3d(16, 16, 16, engine_opts(EngineKind::SlabPencil));
  arm("alloc.huge:*");
  const cvec got = run3d(16, 16, 16, engine_opts(EngineKind::SlabPencil));
  expect_identical(want, got);
  // One scratch slab per thread, all degraded.
  EXPECT_GE(fault::fired_count(fault::kSiteAllocHuge), 4u);
}

TEST_F(FaultRecoveryTest, DualSocketSurvivesNumaAndHugeFailureBitExact) {
  const idx_t k = 16, n = 16, m = 16;
  FftOptions opts = engine_opts(EngineKind::DoubleBuffer);
  cvec in = random_cvec(k * n * m);
  cvec want(in.size()), got(in.size());
  {
    DualSocketFft3d fft(k, n, m, Direction::Forward, opts, /*sockets=*/2);
    cvec scratch = in;
    fft.execute(scratch.data(), want.data());
  }
  arm("alloc.numa:*;alloc.huge:*");
  {
    DualSocketFft3d fft(k, n, m, Direction::Forward, opts, /*sockets=*/2);
    cvec scratch = in;
    fft.execute(scratch.data(), got.data());
  }
  expect_identical(want, got);
  // NumaArray slabs degrade (two arrays x two domains inside execute)
  // and the per-socket pipeline buffers degrade at plan construction.
  EXPECT_GE(fault::fired_count(fault::kSiteAllocNuma), 4u);
  EXPECT_GE(fault::fired_count(fault::kSiteAllocHuge), 2u);
}

TEST_F(FaultRecoveryTest, PlainAllocFailureFallsBackToReferenceEngine) {
  const idx_t k = 8, n = 8, m = 8;
  cvec in = random_cvec(k * n * m);
  cvec want(in.size());
  {
    cvec scratch = in;
    reference_dft_3d(scratch.data(), want.data(), k, n, m,
                     Direction::Forward);
  }
  // The first aligned allocation of plan construction fails terminally
  // (no placement fallback exists for plain memory); the facade must
  // degrade to the reference engine rather than throw.
  arm("alloc.aligned");
  Fft3d plan(k, n, m, Direction::Forward,
             engine_opts(EngineKind::DoubleBuffer, 2));
  EXPECT_STREQ("reference", plan.engine_name());
  EXPECT_GE(fault::retried_count(), 1u);
  cvec out(in.size());
  ExecReport rep;
  cvec scratch = in;
  const Status st = plan.try_execute(scratch.data(), out.data(), &rep);
  ASSERT_TRUE(st.ok()) << st.str();
  EXPECT_EQ("reference", rep.engine);
  expect_identical(want, out);
}

// ---------------------------------------------------------------------------
// Affinity-pin rejection

TEST_F(FaultRecoveryTest, RejectedPinsRunUnpinnedAndAreCounted) {
  arm("pin:*");
  ThreadTeam team(2, {0, 1});
  // Run one job so both workers are past their pinning step.
  std::atomic<int> hits{0};
  team.run([&](int) { hits.fetch_add(1); });
  EXPECT_EQ(2, hits.load());
  EXPECT_EQ(2, team.pin_failures());
  EXPECT_EQ(2u, fault::fired_count(fault::kSitePin));
  EXPECT_GE(fault::degraded_count(), 2u);
  // The team stays fully usable unpinned.
  team.run([&](int) { hits.fetch_add(1); });
  EXPECT_EQ(4, hits.load());
}

TEST_F(FaultRecoveryTest, PinnedPlanSurvivesPinFailureBitExact) {
  FftOptions opts = engine_opts(EngineKind::DoubleBuffer);
  opts.pin_threads = true;
  const cvec want = run3d(16, 16, 16, opts);
  arm("pin:*");
  const cvec got = run3d(16, 16, 16, opts);
  expect_identical(want, got);
  EXPECT_GE(fault::fired_count(fault::kSitePin), 1u);
}

// ---------------------------------------------------------------------------
// Thread-spawn failure

TEST_F(FaultRecoveryTest, SpawnFailureRebuildsWithSmallerTeam) {
  const cvec want = run3d(16, 16, 16, engine_opts(EngineKind::DoubleBuffer));
  arm("spawn.thread");  // the first spawn attempt fails once
  ExecReport rep;
  const cvec got =
      run3d(16, 16, 16, engine_opts(EngineKind::DoubleBuffer), &rep);
  // The construction-time recovery halved the team; per-row FFT
  // arithmetic is partition-independent, so the result is identical.
  expect_identical(want, got);
  EXPECT_EQ(1u, fault::fired_count(fault::kSiteSpawnThread));
  EXPECT_GE(fault::retried_count(), 1u);
  EXPECT_TRUE(rep.status.ok());
}

TEST_F(FaultRecoveryTest, PersistentSpawnFailureFallsBackToReference) {
  arm("spawn.thread:*");  // every spawn fails: no team can ever be built
  Fft3d plan(8, 8, 8, Direction::Forward,
             engine_opts(EngineKind::DoubleBuffer, 2));
  EXPECT_STREQ("reference", plan.engine_name());
  cvec in = random_cvec(8 * 8 * 8), out(in.size()), want(in.size());
  {
    cvec scratch = in;
    reference_dft_3d(scratch.data(), want.data(), 8, 8, 8,
                     Direction::Forward);
  }
  const Status st = plan.try_execute(in.data(), out.data());
  ASSERT_TRUE(st.ok()) << st.str();
  expect_identical(want, out);
}

TEST_F(FaultRecoveryTest, ThreadTeamCtorCleansUpOnSpawnFailure) {
  // The third spawn fails; the two already-spawned workers must be
  // joined (not leaked to std::terminate) and the error must be typed.
  arm("spawn.thread@2");
  try {
    ThreadTeam team(4);
    FAIL() << "spawn fault did not surface";
  } catch (const Error& e) {
    EXPECT_EQ(ErrorCode::kWorkerLost, e.code());
  }
}

// ---------------------------------------------------------------------------
// Stalled workers

TEST_F(FaultRecoveryTest, BarrierStragglerSurfacesAsStallNotHang) {
  arm("barrier.stall=700");
  SpinBarrier barrier(2);
  barrier.set_stall_timeout_ms(100);
  std::vector<ErrorCode> thrown(2, ErrorCode::kOk);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      try {
        barrier.arrive_and_wait();
      } catch (const Error& e) {
        thrown[static_cast<std::size_t>(t)] = e.code();
      }
    });
  }
  for (auto& t : threads) t.join();  // must terminate: never a deadlock
  // Exactly one party was the injected straggler; the waiting party
  // diagnosed the stall. (The straggler itself completes the barrier on
  // arrival and returns normally.)
  const int stalls =
      static_cast<int>(thrown[0] == ErrorCode::kStall) +
      static_cast<int>(thrown[1] == ErrorCode::kStall);
  EXPECT_EQ(1, stalls) << "codes: " << error_code_name(thrown[0]) << ", "
                       << error_code_name(thrown[1]);
  EXPECT_EQ(1u, fault::fired_count(fault::kSiteBarrierStall));
}

TEST_F(FaultRecoveryTest, PipelineStallRecoversViaRetryBitExact) {
  const cvec want = run3d(16, 16, 16, engine_opts(EngineKind::DoubleBuffer));
  // One thread sleeps 600 ms at a pipeline barrier; the 250 ms watchdog
  // (armed automatically when a stall fault is scheduled) turns that
  // into kStall, and try_execute re-plans with a smaller team.
  arm("pipeline.stall=600");
  ExecReport rep;
  const cvec got =
      run3d(16, 16, 16, engine_opts(EngineKind::DoubleBuffer), &rep);
  expect_identical(want, got);
  EXPECT_TRUE(rep.status.ok());
  EXPECT_GE(rep.retries, 1);
  EXPECT_EQ(1u, fault::fired_count(fault::kSitePipelineStall));
  EXPECT_GE(fault::retried_count(), 1u);
}

TEST_F(FaultRecoveryTest, PipelineStallCanTargetABarrierEpoch) {
  // The pipeline passes its step index as the fault context, so /2 only
  // matches barrier arrivals at step 2 — the spec's count is spent on
  // that epoch, not on step 0.
  arm("pipeline.stall/2=600");
  const cvec got = run3d(16, 16, 16, engine_opts(EngineKind::DoubleBuffer));
  EXPECT_EQ(1u, fault::fired_count(fault::kSitePipelineStall));
  // The spec is exhausted now, so this run is fault-free.
  const cvec want = run3d(16, 16, 16, engine_opts(EngineKind::DoubleBuffer));
  expect_identical(want, got);
}

// ---------------------------------------------------------------------------
// Wisdom persistence

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

tune::Wisdom one_entry_wisdom(double seconds) {
  tune::WisdomEntry e;
  e.dims = {32, 32, 32};
  e.dir = Direction::Forward;
  e.fingerprint = "s1c4t2llc8388608";
  e.config.engine = EngineKind::DoubleBuffer;
  e.seconds = seconds;
  e.level = TuneLevel::Measure;
  tune::Wisdom w;
  w.record(e);
  return w;
}

TEST_F(FaultRecoveryTest, WisdomSaveIsAtomic) {
  const std::string path = temp_path("fault_wisdom_atomic.json");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::string err;
  ASSERT_TRUE(one_entry_wisdom(1e-3).save_file(path, &err)) << err;
  // The temp file was renamed away, not left behind.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(nullptr, tmp);
  if (tmp) std::fclose(tmp);
  tune::Wisdom loaded;
  ASSERT_TRUE(loaded.load_file(path, &err)) << err;
  EXPECT_EQ(1u, loaded.size());
  std::remove(path.c_str());
}

TEST_F(FaultRecoveryTest, TornWriteLeavesThePreviousFileIntact) {
  const std::string path = temp_path("fault_wisdom_torn.json");
  std::remove(path.c_str());
  std::string err;
  ASSERT_TRUE(one_entry_wisdom(1e-3).save_file(path, &err)) << err;

  arm("wisdom.torn");
  tune::Wisdom bigger = one_entry_wisdom(1e-3);
  tune::WisdomEntry e2;
  e2.dims = {64, 64};
  e2.dir = Direction::Inverse;
  e2.fingerprint = "s1c4t2llc8388608";
  e2.config.engine = EngineKind::StageParallel;
  e2.seconds = 2e-3;
  e2.level = TuneLevel::Measure;
  bigger.record(e2);
  EXPECT_FALSE(bigger.save_file(path, &err));  // the simulated crash
  EXPECT_EQ(1u, fault::fired_count(fault::kSiteWisdomTorn));

  // The destination still holds the previous, complete document.
  tune::Wisdom loaded;
  ASSERT_TRUE(loaded.load_file(path, &err)) << err;
  EXPECT_EQ(1u, loaded.size());

  // A later, healthy save replaces both the file and the stray .tmp.
  ASSERT_TRUE(bigger.save_file(path, &err)) << err;
  tune::Wisdom reloaded;
  ASSERT_TRUE(reloaded.load_file(path, &err)) << err;
  EXPECT_EQ(2u, reloaded.size());
  std::remove(path.c_str());
}

TEST_F(FaultRecoveryTest, CorruptWisdomIsQuarantined) {
  const std::string path = temp_path("fault_wisdom_corrupt.json");
  const std::string quarantine = path + ".corrupt";
  std::remove(quarantine.c_str());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(nullptr, f);
  std::fputs("{\"schema\": \"bwfft-wis", f);  // torn mid-document
  std::fclose(f);

  tune::Wisdom w;
  std::string err;
  EXPECT_FALSE(tune::load_wisdom_file_guarded(&w, path, &err));
  EXPECT_EQ(0u, w.size());
  // The bad file moved aside; the original name is free for a re-tune.
  EXPECT_EQ(nullptr, std::fopen(path.c_str(), "rb"));
  std::FILE* q = std::fopen(quarantine.c_str(), "rb");
  EXPECT_NE(nullptr, q);
  if (q) std::fclose(q);
  EXPECT_GE(fault::degraded_count(), 1u);
  std::remove(quarantine.c_str());
}

TEST_F(FaultRecoveryTest, InjectedCorruptionTriggersQuarantine) {
  const std::string path = temp_path("fault_wisdom_injected.json");
  std::string err;
  ASSERT_TRUE(one_entry_wisdom(1e-3).save_file(path, &err)) << err;
  arm("wisdom.corrupt");
  tune::Wisdom w;
  EXPECT_FALSE(tune::load_wisdom_file_guarded(&w, path, &err));
  EXPECT_EQ(1u, fault::fired_count(fault::kSiteWisdomCorrupt));
  std::FILE* q = std::fopen((path + ".corrupt").c_str(), "rb");
  EXPECT_NE(nullptr, q);
  if (q) std::fclose(q);
  std::remove((path + ".corrupt").c_str());
}

TEST_F(FaultRecoveryTest, MissingWisdomFileIsNotQuarantined) {
  const std::string path = temp_path("fault_wisdom_missing.json");
  std::remove(path.c_str());
  tune::Wisdom w;
  std::string err;
  EXPECT_FALSE(tune::load_wisdom_file_guarded(&w, path, &err));
  EXPECT_EQ(nullptr, std::fopen((path + ".corrupt").c_str(), "rb"));
}

// ---------------------------------------------------------------------------
// Facade status plumbing and the per-family acceptance sweep

TEST_F(FaultRecoveryTest, BadPlanIsNotRetried) {
  try {
    Fft3d plan(7, 16, 16, Direction::Forward,
               engine_opts(EngineKind::DoubleBuffer, 2));
    // Non-power-of-two leading dim may or may not be rejected here;
    // either way construction must not spin in the retry loop.
  } catch (const Error& e) {
    EXPECT_EQ(ErrorCode::kBadPlan, e.code());
  }
  EXPECT_EQ(0u, fault::retried_count());
}

TEST_F(FaultRecoveryTest, AcceptanceSweepEveryFamilyDegradesBitExact) {
  const idx_t k = 16, n = 16, m = 16;
  FftOptions base = engine_opts(EngineKind::DoubleBuffer);
  base.pin_threads = true;  // so the pin family has something to reject
  const cvec want = run3d(k, n, m, base);

  struct Family {
    const char* name;
    const char* spec;
    const char* site;
  };
  const Family families[] = {
      {"alloc", "alloc.huge:*", fault::kSiteAllocHuge},
      {"pin", "pin:*", fault::kSitePin},
      {"spawn", "spawn.thread", fault::kSiteSpawnThread},
      {"stall", "pipeline.stall=600", fault::kSitePipelineStall},
  };
  for (const Family& fam : families) {
    SCOPED_TRACE(fam.name);
    fault::clear();
    fault::reset_stats();
    arm(fam.spec);
    ExecReport rep;
    const cvec got = run3d(k, n, m, base, &rep);
    EXPECT_TRUE(rep.status.ok()) << rep.status.str();
    expect_identical(want, got);
    EXPECT_GE(fault::fired_count(fam.site), 1u)
        << "family did not inject anything";
    EXPECT_GE(fault::injected_count() + fault::degraded_count() +
                  fault::retried_count(),
              1u);
  }
}

}  // namespace
}  // namespace bwfft
