// Tests for SPL lowering: compiled programs must reproduce the dense
// semantics of their source terms using the optimised kernels.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "spl/algorithms.h"
#include "spl/lower.h"
#include "test_util.h"

namespace bwfft::spl {
namespace {

using bwfft::test::fft_tol;
using bwfft::test::max_err;

void expect_program_matches(const ExprPtr& e) {
  Program prog = lower(*e);
  auto x = random_cvec(e->cols(), 9000 + e->cols());
  auto want = (*e)(x);
  auto got = prog.run(x);
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(e->cols())))
      << e->str() << "\nprogram:\n"
      << prog.describe();
}

TEST(SplLower, BatchFftFromKron) {
  expect_program_matches(kron(identity(4), dft(8)));
  expect_program_matches(kron(dft(8), identity(4)));
  expect_program_matches(kron(identity(2), kron(dft(8), identity(4))));
}

TEST(SplLower, TransposeFromStridePerm) {
  expect_program_matches(stride_perm(24, 6));
  expect_program_matches(kron(stride_perm(16, 4), identity(4)));
  expect_program_matches(kron(identity(3), stride_perm(8, 2)));
}

TEST(SplLower, CooleyTukeyProgram) {
  expect_program_matches(cooley_tukey(4, 8));
  // The program must contain the diagonal twiddle scale.
  Program prog = lower(*cooley_tukey(4, 8));
  bool has_scale = false;
  for (const auto& op : prog.ops()) {
    if (op.kind == LowerOp::Kind::Scale) has_scale = true;
  }
  EXPECT_TRUE(has_scale);
}

TEST(SplLower, Blocked2dProgram) {
  expect_program_matches(dft2d_blocked(8, 16, 4));
}

TEST(SplLower, Rotated3dProgram) {
  expect_program_matches(dft3d_rotated(4, 4, 8, 4));
  expect_program_matches(dft3d_rotated(2, 8, 8, 2));
}

TEST(SplLower, ProgramAgainstDenseDft3d) {
  // Ultimate check: the compiled rotated 3D program equals the dense MDFT.
  auto e = dft3d_rotated(4, 4, 8, 4);
  auto dense3d = kron(dft(4), kron(dft(4), dft(8)));
  Program prog = lower(*e);
  auto x = random_cvec(e->cols(), 9999);
  auto want = (*dense3d)(x);
  auto got = prog.run(x);
  EXPECT_LT(max_err(want, got), fft_tol(128.0));
}

TEST(SplLower, DescribeListsOps) {
  Program prog = lower(*cooley_tukey(2, 4));
  const std::string desc = prog.describe();
  EXPECT_NE(std::string::npos, desc.find("batch_fft"));
  EXPECT_NE(std::string::npos, desc.find("batch_transpose"));
  EXPECT_NE(std::string::npos, desc.find("scale"));
}

TEST(SplLower, RejectsUnlowerableTerms) {
  EXPECT_THROW(lower(*kron(dft(2), dft(2))), Error);      // no identity side
  EXPECT_THROW(lower(*gather(8, 2, 0)), Error);           // non-square
  EXPECT_THROW(lower(*rect_identity(4, 4)), Error);       // unknown node
}

TEST(SplLower, InputLengthChecked) {
  Program prog = lower(*dft(8));
  cvec wrong(4);
  EXPECT_THROW(prog.run(wrong), Error);
}

}  // namespace
}  // namespace bwfft::spl
