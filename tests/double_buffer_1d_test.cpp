// Tests for the double-buffered large 1D engine (the paper's future-work
// path) and its four-step SPL specification.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fft/double_buffer_1d.h"
#include "fft/reference.h"
#include "spl/algorithms.h"
#include "test_util.h"

namespace bwfft {
namespace {

using test::fft_tol;
using test::max_err;

TEST(FourStepSpl, EqualsDenseDft) {
  for (auto [a, b] : {std::pair<idx_t, idx_t>{4, 4}, {4, 8}, {8, 4}, {3, 5}}) {
    auto got = spl::dft1d_four_step(a, b);
    EXPECT_LT(spl::max_abs_diff(*got, *spl::dft(a * b)), 1e-10)
        << a << "x" << b;
  }
}

FftOptions db1_opts(int threads) {
  FftOptions o;
  o.threads = threads;
  o.block_elems = 512;
  return o;
}

class DoubleBuffer1dSizes
    : public ::testing::TestWithParam<std::tuple<idx_t, int>> {};

TEST_P(DoubleBuffer1dSizes, MatchesReference) {
  const auto [n, threads] = GetParam();
  auto x = random_cvec(n, 8500 + n);
  cvec want(x.size());
  reference_dft_1d(x.data(), want.data(), n, Direction::Forward);
  DoubleBuffer1d plan(n, Direction::Forward, db1_opts(threads));
  cvec in = x, got(x.size());
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n)))
      << "n=" << n << " threads=" << threads << " a=" << plan.factor_a();
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DoubleBuffer1dSizes,
    ::testing::Combine(::testing::Values<idx_t>(16, 64, 256, 512, 4096),
                       ::testing::Values(1, 2, 4)));

TEST(DoubleBuffer1d, LargerThanBufferSize) {
  // n far exceeds the configured block: both stages must tile and
  // pipeline (this is exactly the future-work case: the 1D FFT does not
  // fit the shared buffer).
  const idx_t n = 1 << 16;
  FftOptions o = db1_opts(4);
  o.block_elems = 2048;  // 32 KiB halves << 1 MiB problem
  auto x = random_cvec(n, 8600);
  DoubleBuffer1d plan(n, Direction::Forward, o);
  cvec in = x, got(x.size());
  plan.execute(in.data(), got.data());

  // Check against the (fast) Stockham engine rather than the dense oracle.
  Fft1d ref(n, Direction::Forward);
  cvec want = x;
  ref.apply_batch(want.data(), 1);
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n)));
}

TEST(DoubleBuffer1d, InverseRoundTrip) {
  const idx_t n = 1024;
  auto x = random_cvec(n, 8700);
  auto fo = db1_opts(2);
  auto io = db1_opts(2);
  io.normalize_inverse = true;
  DoubleBuffer1d fwd(n, Direction::Forward, fo);
  DoubleBuffer1d inv(n, Direction::Inverse, io);
  cvec a = x, b(x.size()), c(x.size());
  fwd.execute(a.data(), b.data());
  inv.execute(b.data(), c.data());
  EXPECT_LT(max_err(x, c), fft_tol(static_cast<double>(n)));
}

TEST(DoubleBuffer1d, SplitIsNearSquare) {
  DoubleBuffer1d p1(1 << 10, Direction::Forward, db1_opts(1));
  EXPECT_EQ(32, p1.factor_a());
  EXPECT_EQ(32, p1.factor_b());
  DoubleBuffer1d p2(1 << 11, Direction::Forward, db1_opts(1));
  EXPECT_EQ(32, p2.factor_a());
  EXPECT_EQ(64, p2.factor_b());
}

TEST(DoubleBuffer1d, SmallAndNonPow2SizesPlan) {
  // The facade accepts any size now: composite sizes split (factors need
  // not be powers of two), so 12 = 3*4 and 8 = 2*4 both plan and match
  // the dense oracle.
  for (idx_t n : {idx_t{8}, idx_t{12}, idx_t{3 * 64}}) {
    auto x = random_cvec(n, 8800 + n);
    cvec want(x.size());
    reference_dft_1d(x.data(), want.data(), n, Direction::Forward);
    DoubleBuffer1d plan(n, Direction::Forward, db1_opts(1));
    cvec in = x, got(x.size());
    plan.execute(in.data(), got.data());
    EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n)))
        << "n=" << n;
  }
}

TEST(DoubleBuffer1d, RejectsMisfitFactor) {
  FftOptions o = db1_opts(1);
  o.factor_n1 = 5;  // does not divide 64
  EXPECT_THROW(DoubleBuffer1d(64, Direction::Forward, o), Error);
}

TEST(DoubleBuffer1d, HonoursRequestedFactor) {
  const idx_t n = 1 << 12;
  FftOptions o = db1_opts(2);
  o.factor_n1 = 16;  // non-square split by request
  DoubleBuffer1d plan(n, Direction::Forward, o);
  EXPECT_EQ(16, plan.factor_a());
  EXPECT_EQ(n / 16, plan.factor_b());
  auto x = random_cvec(n, 8900);
  cvec want(x.size());
  reference_dft_1d(x.data(), want.data(), n, Direction::Forward);
  cvec in = x, got(x.size());
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n)));
}

}  // namespace
}  // namespace bwfft
