// Chaos acceptance suite for the exec service (ISSUE-9): every fault in
// the exec family is injected deterministically (fault::set_plan_from_spec,
// zero sleeps, zero wall-clock dependence) and the service must respond
// with its documented resilience behavior — typed sheds instead of
// deadlock, bit-exact retries, corrupt results caught and the plan
// quarantined and rebuilt, interactive traffic never starved behind a
// batch backlog. check.sh chaos runs this label under ASan+UBSan and
// TSan; the tests also carry tier1 (they are fast and deterministic).
//
// gtest_discover_tests runs each TEST in its own process, so the
// process-global fault plan installed here cannot leak across tests.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/batch_executor.h"
#include "fault/fault.h"
#include "fft/reference.h"
#include "../test_util.h"

namespace bwfft::exec {
namespace {

using namespace std::chrono_literals;
using test::fft_tol;
using test::max_err;

/// Buffers + reference answer for one request (the executor borrows
/// in/out; this keeps them alive until the future resolves).
struct Case {
  std::vector<idx_t> dims;
  Direction dir = Direction::Forward;
  cvec in, out, want;

  Case(std::vector<idx_t> d, Direction dr, unsigned seed)
      : dims(std::move(d)), dir(dr) {
    idx_t total = 1;
    for (idx_t n : dims) total *= n;
    in = random_cvec(total, seed);
    out.assign(in.size(), cplx{-7.0, -7.0});  // sentinel: untouched on reject
    want.resize(in.size());
    if (dims.size() == 2) {
      reference_dft_2d(in.data(), want.data(), dims[0], dims[1], dir);
    } else {
      reference_dft_3d(in.data(), want.data(), dims[0], dims[1], dims[2],
                       dir);
    }
  }

  Request request() {
    Request r;
    r.dims = dims;
    r.dir = dir;
    r.in = in.data();
    r.out = out.data();
    return r;
  }

  void expect_correct() const {
    EXPECT_LT(max_err(want, out), fft_tol(static_cast<double>(want.size())));
  }
  void expect_untouched() const {
    for (const cplx& c : out) {
      ASSERT_EQ(cplx(-7.0, -7.0), c) << "rejected request ran anyway";
    }
  }
};

void arm(const std::string& spec) {
  std::string err;
  ASSERT_TRUE(fault::set_plan_from_spec(spec, &err)) << err;
}

// A request popped while exec.shed is armed completes with a typed
// kOverloaded — the caller gets an answer, not a hang, and the output
// buffer is never touched. The service keeps serving afterwards.
TEST(Chaos, ShedUnderOverloadIsTyped) {
  fault::clear();
  arm("exec.shed:1");
  ServeOptions o;
  o.start_paused = true;
  BatchExecutor ex(o);
  std::vector<Case> cases;
  std::vector<std::future<ExecReport>> futures;
  for (int i = 0; i < 3; ++i) {
    cases.emplace_back(std::vector<idx_t>{8, 8}, Direction::Forward,
                       static_cast<unsigned>(9000 + i));
  }
  for (Case& c : cases) futures.push_back(ex.submit(c.request()));
  ex.resume();

  int shed = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ExecReport rep = futures[i].get();
    if (rep.status.code() == ErrorCode::kOverloaded) {
      ++shed;
      EXPECT_NE(std::string::npos, rep.status.message().find("shed"))
          << rep.status.str();
      cases[i].expect_untouched();
    } else {
      EXPECT_TRUE(rep.status.ok()) << rep.status.str();
      cases[i].expect_correct();
    }
  }
  EXPECT_EQ(1, shed);
  const ExecStats s = ex.stats();
  EXPECT_EQ(1u, s.shed);
  EXPECT_EQ(2u, s.completed);
  EXPECT_EQ(0u, s.failed) << "a shed is a rejection, not a failure";
  EXPECT_EQ(1u, fault::fired_count(fault::kSiteExecShed));
  fault::clear();
}

// Per-tenant token buckets: one greedy tenant is bounced with
// kQuotaExceeded before touching the queue; other tenants are untouched.
TEST(Chaos, QuotaExceededPerTenant) {
  ServeOptions o;
  o.admission.quota_rate = 1e-3;  // ~1000 s per token: no refill in-test
  o.admission.quota_burst = 2.0;
  BatchExecutor ex(o);
  auto serve_as = [&](const char* tenant, Case& c) {
    Request r = c.request();
    r.tenant = tenant;
    return ex.submit(std::move(r)).get();
  };
  std::vector<Case> greedy;
  for (int i = 0; i < 3; ++i) {
    greedy.emplace_back(std::vector<idx_t>{8, 8}, Direction::Forward,
                        static_cast<unsigned>(9100 + i));
  }
  EXPECT_TRUE(serve_as("greedy", greedy[0]).status.ok());
  EXPECT_TRUE(serve_as("greedy", greedy[1]).status.ok());
  const ExecReport rejected = serve_as("greedy", greedy[2]);
  EXPECT_EQ(ErrorCode::kQuotaExceeded, rejected.status.code())
      << rejected.status.str();
  EXPECT_NE(std::string::npos, rejected.status.message().find("greedy"));
  greedy[2].expect_untouched();

  Case other({8, 8}, Direction::Forward, 9103);
  EXPECT_TRUE(serve_as("patient", other).status.ok())
      << "tenant isolation: another tenant's bucket is full";
  other.expect_correct();

  const ExecStats s = ex.stats();
  EXPECT_EQ(1u, s.quota_rejected);
  EXPECT_EQ(3u, s.submitted) << "the bounced request never entered the queue";
}

// A transient plan.poison failure is retried through the backoff
// schedule and the retry is bit-exact: poison fires before execution, so
// the input is untouched and the retried run equals a clean run of the
// same cached plan down to the last bit.
TEST(Chaos, RetriedRequestIsBitExact) {
  fault::clear();
  arm("plan.poison:1");
  BatchExecutor ex;
  Case poisoned({8, 16}, Direction::Forward, 9200);
  Request r = poisoned.request();
  r.retry.max_attempts = 2;
  r.retry.base_backoff = 0ms;  // zero-sleep test mode
  const ExecReport rep = ex.submit(std::move(r)).get();
  ASSERT_TRUE(rep.status.ok()) << rep.status.str();
  poisoned.expect_correct();
  fault::clear();

  // A clean run of the same input through the same executor (same cached
  // plan) must match the retried result exactly.
  Case clean({8, 16}, Direction::Forward, 9200);  // same seed, same input
  ASSERT_TRUE(ex.submit(clean.request()).get().status.ok());
  for (std::size_t i = 0; i < clean.out.size(); ++i) {
    ASSERT_EQ(clean.out[i], poisoned.out[i]) << "retry not bit-exact at " << i;
  }

  const ExecStats s = ex.stats();
  EXPECT_EQ(1u, s.retried);
  EXPECT_EQ(2u, s.completed);
  EXPECT_EQ(0u, s.failed) << "the retry absorbed the transient failure";
}

// Two consecutive unretried failures cross quarantine_after: the plan is
// evicted from the cache and the next request rebuilds it (at
// TuneLevel::Estimate) and serves correctly.
TEST(Chaos, PoisonedPlanQuarantinedAndRebuilt) {
  fault::clear();
  arm("plan.poison:2");
  ServeOptions o;
  o.quarantine_after = 2;
  BatchExecutor ex(o);
  const std::uint64_t invalidations_before =
      ex.cache().stats().invalidations;

  Case first({8, 8}, Direction::Forward, 9300);
  Case second({8, 8}, Direction::Forward, 9301);
  EXPECT_EQ(ErrorCode::kStall, ex.submit(first.request()).get().status.code());
  EXPECT_EQ(ErrorCode::kStall,
            ex.submit(second.request()).get().status.code());

  Case rebuilt({8, 8}, Direction::Forward, 9302);
  const ExecReport rep = ex.submit(rebuilt.request()).get();
  EXPECT_TRUE(rep.status.ok()) << rep.status.str();
  rebuilt.expect_correct();

  const ExecStats s = ex.stats();
  EXPECT_EQ(1u, s.quarantined);
  EXPECT_EQ(2u, s.failed);
  EXPECT_EQ(1u, s.completed);
  EXPECT_GE(ex.cache().stats().invalidations, invalidations_before + 1)
      << "quarantine must evict the poisoned cache entry";
  fault::clear();
}

// Silent output corruption: result.corrupt perturbs the DC bin after a
// successful execute. The sampled Parseval check catches it, types it
// kDataCorrupt, quarantines the plan, and the rebuilt plan serves the
// next request correctly.
TEST(Chaos, CorruptResultCaughtAndQuarantined) {
  fault::clear();
  arm("result.corrupt:1");
  ServeOptions o;
  o.integrity_fraction = 1.0;  // check every request
  BatchExecutor ex(o);

  Case corrupted({8, 8}, Direction::Forward, 9400);
  const ExecReport rep = ex.submit(corrupted.request()).get();
  EXPECT_EQ(ErrorCode::kDataCorrupt, rep.status.code()) << rep.status.str();
  EXPECT_NE(std::string::npos, rep.status.message().find("Parseval"))
      << rep.status.str();
  fault::clear();

  Case healthy({8, 8}, Direction::Forward, 9401);
  EXPECT_TRUE(ex.submit(healthy.request()).get().status.ok());
  healthy.expect_correct();

  const ExecStats s = ex.stats();
  EXPECT_GE(s.integrity_checked, 2u);
  EXPECT_EQ(1u, s.integrity_failed);
  EXPECT_EQ(1u, s.quarantined);
  EXPECT_EQ(1u, s.failed);
  EXPECT_GE(ex.cache().stats().invalidations, 1u);
}

// Inverse transforms use the normalized Parseval identity — a corrupted
// inverse result must be caught the same way.
TEST(Chaos, CorruptInverseResultCaughtToo) {
  fault::clear();
  arm("result.corrupt:1");
  ServeOptions o;
  o.integrity_fraction = 1.0;
  BatchExecutor ex(o);
  Case corrupted({4, 4, 4}, Direction::Inverse, 9450);
  EXPECT_EQ(ErrorCode::kDataCorrupt,
            ex.submit(corrupted.request()).get().status.code());
  fault::clear();
}

// A deep batch backlog must not starve interactive traffic: with the
// documented anti-starvation weave (limit=2), every interactive request
// completes within the first few pops even though batch work was queued
// first. max_batch=1 makes the completion order the pop order; the huge
// CoDel target keeps shedding out of the picture.
TEST(Chaos, InteractiveNeverStarvedBehindBatchBacklog) {
  ServeOptions o;
  o.start_paused = true;
  o.max_batch = 1;
  o.admission.batch_starvation_limit = 2;
  o.admission.codel_target = std::chrono::seconds(10);
  BatchExecutor ex(o);
  std::vector<Case> cases;
  std::vector<std::future<ExecReport>> futures;
  for (int i = 0; i < 9; ++i) {
    cases.emplace_back(std::vector<idx_t>{8, 8}, Direction::Forward,
                       static_cast<unsigned>(9500 + i));
  }
  for (int i = 0; i < 6; ++i) {  // the backlog lands first
    Request r = cases[static_cast<std::size_t>(i)].request();
    r.lane = Lane::kBatch;
    futures.push_back(ex.submit(std::move(r)));
  }
  for (int i = 6; i < 9; ++i) {
    futures.push_back(ex.submit(cases[static_cast<std::size_t>(i)].request()));
  }
  ex.resume();
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  for (const Case& c : cases) c.expect_correct();

  const ExecStats s = ex.stats();
  ASSERT_EQ(9u, s.completion_order.size());
  std::string order;
  for (int lane : s.completion_order) {
    order += lane == static_cast<int>(Lane::kInteractive) ? 'I' : 'B';
  }
  EXPECT_EQ("IIBIBBBBB", order)
      << "interactive first, batch woven in after the starvation limit";
  // The per-lane queue-wait histograms see every request of their lane.
  EXPECT_EQ(3u, s.lane_queue_wait[static_cast<int>(Lane::kInteractive)].count);
  EXPECT_EQ(6u, s.lane_queue_wait[static_cast<int>(Lane::kBatch)].count);
}

// exec.slow_batch=<ms> synthetically ages the running batch past
// slow_batch_after and scans inline: the heartbeat must flag exactly one
// slow batch — deterministically, with no real stall and no sleeps.
TEST(Chaos, SlowBatchFlaggedByWatchdog) {
  fault::clear();
  arm("exec.slow_batch=5000");
  ServeOptions o;
  o.slow_batch_after = 1000ms;
  BatchExecutor ex(o);
  Case c({8, 8}, Direction::Forward, 9600);
  EXPECT_TRUE(ex.submit(c.request()).get().status.ok());
  c.expect_correct();
  const ExecStats s = ex.stats();
  EXPECT_EQ(1u, s.slow_batches);
  EXPECT_GE(s.watchdog_scans, 1u);
  fault::clear();
}

// The acceptance scenario: more producers than queue capacity, all four
// exec fault families armed at once, integrity checking on every result
// and retries enabled. Every future must resolve (no deadlock), every
// non-ok outcome must be typed, every ok outcome must be correct, and
// the stats ledger must balance. Afterwards the service still serves.
TEST(Chaos, CombinedChaosAcceptance) {
  fault::clear();
  arm("exec.shed@1:2;plan.poison@4:2;result.corrupt@8:2;exec.slow_batch=5000");
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 8;
  ServeOptions o;
  o.queue_capacity = 8;  // smaller than the offered load: queue-full paths
  o.max_batch = 4;
  // Sheds in this test come from the injected fault only: a sky-high
  // CoDel target keeps the real control law from adding its own (which
  // it legitimately would under sanitizer scheduling delays).
  o.admission.codel_target = std::chrono::seconds(10);
  o.integrity_fraction = 1.0;
  o.watchdog = true;
  o.watchdog_interval = 10ms;
  BatchExecutor ex(o);

  std::vector<std::vector<Case>> cases(kProducers);
  std::vector<std::thread> producers;
  std::vector<int> untyped(kProducers, 0);
  std::vector<int> wrong(kProducers, 0);
  for (int p = 0; p < kProducers; ++p) {
    cases[static_cast<std::size_t>(p)].reserve(kPerProducer);
    for (int i = 0; i < kPerProducer; ++i) {
      cases[static_cast<std::size_t>(p)].emplace_back(
          std::vector<idx_t>{8, 8},
          i % 2 ? Direction::Inverse : Direction::Forward,
          static_cast<unsigned>(9700 + p * 100 + i));
    }
  }
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<std::future<ExecReport>> futures;
      for (Case& c : cases[static_cast<std::size_t>(p)]) {
        Request r = c.request();
        r.lane = (p % 2) ? Lane::kBatch : Lane::kInteractive;
        r.retry.max_attempts = 2;
        r.retry.base_backoff = 0ms;
        futures.push_back(ex.submit(std::move(r)));
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const ExecReport rep = futures[i].get();
        const Case& c = cases[static_cast<std::size_t>(p)][i];
        switch (rep.status.code()) {
          case ErrorCode::kOk:
            if (max_err(c.want, c.out) >=
                fft_tol(static_cast<double>(c.want.size()))) {
              ++wrong[static_cast<std::size_t>(p)];
            }
            break;
          case ErrorCode::kQueueFull:    // backpressure
          case ErrorCode::kOverloaded:   // injected shed
          case ErrorCode::kQuotaExceeded:
          case ErrorCode::kTimeout:
          case ErrorCode::kStall:        // poison past its retry budget
          case ErrorCode::kDataCorrupt:  // caught corruption
            break;  // typed, expected under chaos
          default:
            ++untyped[static_cast<std::size_t>(p)];
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  fault::clear();

  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(0, untyped[static_cast<std::size_t>(p)]) << "producer " << p;
    EXPECT_EQ(0, wrong[static_cast<std::size_t>(p)]) << "producer " << p;
  }
  const ExecStats s = ex.stats();
  EXPECT_EQ(2u, s.shed);
  EXPECT_EQ(s.submitted, s.completed + s.failed + s.shed + s.timed_out)
      << "every admitted request must be accounted for exactly once";
  // >= 1, not == 1: a sanitizer-stalled batch may legitimately trip the
  // real heartbeat on top of the injected one.
  EXPECT_GE(s.slow_batches, 1u);

  // The storm is over; the service still serves, correctly.
  Case after({8, 8}, Direction::Forward, 9999);
  EXPECT_TRUE(ex.submit(after.request()).get().status.ok());
  after.expect_correct();
}

}  // namespace
}  // namespace bwfft::exec
